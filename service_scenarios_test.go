package hft

// Differential tests for the replicated network service: a guest
// request/response server behind the shared NIC, under simulated client
// load. The paper's claim — the environment cannot distinguish the
// replicated system from a single processor — is pinned here as reply
// transcripts: the byte sequence the clients receive from a replicated
// cluster equals the bare machine's, exactly once and in order, across
// failovers, reintegration chains, and checkpoint/restore.

import (
	"bytes"
	"context"
	"testing"
)

// serveOptions builds a service scenario: the guest serves `requests`
// requests, the client population delivers them open-loop with a gap
// wide enough that failover windows land mid-load.
func serveOptions(requests uint32, gap Duration) []Option {
	return []Option{
		WithWorkload(ServeRequests(requests, 50)),
		WithClientLoad(ClientLoad{Clients: 8, MeanGap: gap}),
	}
}

func TestServiceDifferential(t *testing.T) {
	// Timeout well above the replicated tail (epoch-boundary delivery
	// plus ProtocolOld ack waits put healthy p50 near 5 ms): the
	// healthy-run assertion below is "no retransmissions", so the
	// timeout must not fire on ordinary replication overhead.
	base := []Option{
		WithWorkload(ServeRequests(24, 50)),
		WithClientLoad(ClientLoad{Clients: 8, MeanGap: 100 * Microsecond, Timeout: 50 * Millisecond}),
	}
	bare, cb := runScenario(t, append(base, withBare())...)
	if bare.NetReplies == "" {
		t.Fatal("bare run produced no reply transcript")
	}
	repl, cr := runScenario(t, base...)
	if repl.NetReplies != bare.NetReplies || repl.Checksum != bare.Checksum {
		t.Fatalf("replicated (%#x, %d reply bytes) != bare (%#x, %d reply bytes)",
			repl.Checksum, len(repl.NetReplies), bare.Checksum, len(bare.NetReplies))
	}
	// Both populations saw full service with no retransmissions (no
	// failures, timeout far above healthy latency).
	for _, c := range []*Cluster{cb, cr} {
		m, ok := c.ServiceLatencies()
		if !ok {
			t.Fatal("no client population")
		}
		if m.Requests != 24 || m.Answered != 24 {
			t.Fatalf("issued %d answered %d, want 24/24", m.Requests, m.Answered)
		}
		if m.Retransmits != 0 {
			t.Fatalf("healthy run forced %d retransmissions", m.Retransmits)
		}
		if m.P50 <= 0 || m.P99 < m.P50 || m.Max < m.P999 {
			t.Fatalf("implausible latency distribution: %+v", m)
		}
	}
}

func TestServiceFailoverDifferential(t *testing.T) {
	// Primary dies mid-load: requests keep arriving during the blackout
	// (clients retransmit; the NIC's dedup keeps duplicates out of the
	// guest), the promoted backup drains pending frames from its own
	// port (generalized P7) and re-emits the failover epoch's suppressed
	// replies exactly once. The client-visible reply stream equals the
	// bare run's for both protocols at every failure time.
	base := serveOptions(24, 500*Microsecond)
	bare, _ := runScenario(t, append(base, withBare())...)

	for _, proto := range []Protocol{ProtocolOld, ProtocolNew} {
		for _, failAt := range []Duration{3 * Millisecond, 6 * Millisecond, 10 * Millisecond} {
			repl, c := runScenario(t, append(base,
				WithProtocol(proto),
				WithFailPrimaryAt(failAt),
				WithDetectTimeout(3*Millisecond))...)
			if !repl.Promoted {
				t.Fatalf("proto=%v failAt=%v: no promotion", proto, failAt)
			}
			if repl.NetReplies != bare.NetReplies || repl.Checksum != bare.Checksum {
				t.Fatalf("proto=%v failAt=%v: replicated (%#x, %d reply bytes) != bare (%#x, %d reply bytes)",
					proto, failAt, repl.Checksum, len(repl.NetReplies), bare.Checksum, len(bare.NetReplies))
			}
			if bo := c.ServiceBlackout(failAt); bo <= 0 {
				t.Errorf("proto=%v failAt=%v: no observable blackout window", proto, failAt)
			}
		}
	}
}

func TestServiceRepairChainDifferential(t *testing.T) {
	// Failover, live reintegration, then a failstop of the promoted
	// backup — the reintegrated joiner finishes the request stream. The
	// joiner's NIC port is cloned from the acting coordinator at
	// AddBackup, so requests pending across the state transfer survive
	// the second failover too.
	base := serveOptions(40, 2*Millisecond)
	bare, _ := runScenario(t, append(base, withBare())...)

	c, err := NewCluster(append(base, WithDetectTimeout(3*Millisecond))...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.RunFor(8 * Millisecond); err != nil {
		t.Fatal(err)
	}
	c.FailPrimary()
	if _, err := c.RunUntil(func(s Snapshot) bool { return s.Promoted }); err != nil {
		t.Fatal(err)
	}
	n, err := c.AddBackup()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("joiner index = %d, want 2", n)
	}
	// Let the transfer land and the joiner catch up, then kill the
	// acting coordinator mid-load; the reintegrated node takes over.
	if _, err := c.RunFor(40 * Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := c.FailBackup(1); err != nil {
		t.Fatal(err)
	}
	res, err := c.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.GuestPanic != 0 {
		t.Fatalf("guest panic %#x", res.GuestPanic)
	}
	if res.NetReplies != bare.NetReplies || res.Checksum != bare.Checksum {
		t.Fatalf("repair chain (%#x, %d reply bytes) != bare (%#x, %d reply bytes)",
			res.Checksum, len(res.NetReplies), bare.Checksum, len(bare.NetReplies))
	}
	m, _ := c.ServiceLatencies()
	if m.Answered != 40 {
		t.Fatalf("answered %d of 40", m.Answered)
	}
	if m.Retransmits == 0 {
		t.Error("two mid-load failovers forced no retransmissions")
	}
}

func TestServiceSnapshotRoundTrip(t *testing.T) {
	// Save mid-load — requests in flight, replies outstanding, client
	// timers armed — and restore: the replayed session must carry every
	// in-flight connection (Restore's section-by-section verification
	// covers the NIC and client-population digests) and finish with a
	// terminal result identical to the uninterrupted original.
	base := serveOptions(24, 500*Microsecond)
	c, err := NewCluster(base...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.RunFor(4 * Millisecond); err != nil {
		t.Fatal(err)
	}
	s := c.Snapshot()
	if s.NetRequests == 0 || s.NetAnswered == s.NetRequests {
		t.Fatalf("checkpoint not mid-load: %d issued, %d answered", s.NetRequests, s.NetAnswered)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}

	res, err := c.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	r, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got != res {
		t.Fatalf("restored run diverged:\n got %+v\nwant %+v", got, res)
	}
	mo, _ := c.ServiceLatencies()
	mr, _ := r.ServiceLatencies()
	if mo != mr {
		t.Fatalf("restored latency distribution diverged:\n got %+v\nwant %+v", mr, mo)
	}
}

func TestServiceEventsAndValidation(t *testing.T) {
	c, err := NewCluster(serveOptions(10, 100*Microsecond)...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	events := c.Events()
	if _, err := c.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	c.Close()
	var reqs []uint32
	for ev := range events {
		if ev.Kind == EventNetRequest {
			if ev.Device() != "nic" {
				t.Fatalf("net-request device = %q, want nic", ev.Device())
			}
			reqs = append(reqs, ev.Request)
		}
	}
	if len(reqs) != 10 {
		t.Fatalf("saw %d net-request events, want 10", len(reqs))
	}
	for i, id := range reqs {
		if id != uint32(i+1) {
			t.Fatalf("request ids out of order: %v", reqs)
		}
	}

	// Eager cross-validation: a serve workload without clients, and
	// clients without a serve workload, are both rejected up front.
	if _, err := NewCluster(WithWorkload(ServeRequests(10, 50))); err == nil {
		t.Error("ServeRequests without WithClientLoad was accepted")
	}
	if _, err := NewCluster(WithWorkload(CPUIntensive(1000)), WithClientLoad(ClientLoad{})); err == nil {
		t.Error("WithClientLoad without ServeRequests was accepted")
	}
}
