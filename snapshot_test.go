package hft

// Tests for the snapshot/state-transfer subsystem: checkpoint
// round-trips pinned bit-identical against uninterrupted runs, backup
// reintegration through failover chains, version/corruption/tamper
// rejection, and the RunUntil boundary-sampling contract.

import (
	"bytes"
	"context"
	"errors"
	"hash/fnv"
	"strings"
	"testing"
)

// finishAndCompare drives both clusters to completion and asserts
// identical terminal results and snapshots.
func finishAndCompare(t *testing.T, name string, a, b *Cluster) {
	t.Helper()
	ra, errA := a.Wait(context.Background())
	rb, errB := b.Wait(context.Background())
	if (errA == nil) != (errB == nil) {
		t.Fatalf("%s: wait errors differ: %v vs %v", name, errA, errB)
	}
	if errA != nil {
		t.Fatalf("%s: wait: %v", name, errA)
	}
	if ra != rb {
		t.Fatalf("%s: results differ:\n  a: %+v\n  b: %+v", name, ra, rb)
	}
	if sa, sb := a.Snapshot(), b.Snapshot(); sa != sb {
		t.Fatalf("%s: final snapshots differ:\n  a: %+v\n  b: %+v", name, sa, sb)
	}
}

// TestSaveRestoreRoundTrip checkpoints a session mid-run — after live
// perturbations — and pins the restored session's remaining execution
// bit-identical to (a) the original continuing past its Save and (b) a
// fresh run that never snapshotted, for both protocols and both links.
func TestSaveRestoreRoundTrip(t *testing.T) {
	cases := []struct {
		name  string
		proto Protocol
		link  LinkModel
	}{
		{"old-ethernet", ProtocolOld, Ethernet10()},
		{"new-ethernet", ProtocolNew, Ethernet10()},
		{"old-atm", ProtocolOld, ATM155()},
		{"new-atm", ProtocolNew, ATM155()},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			mk := func() *Cluster {
				c, err := NewCluster(
					WithWorkload(DiskWrite(4, 8192)),
					WithEpochLength(4096),
					WithProtocol(tc.proto),
					WithLink(tc.link),
					WithDiskLatency(800*Microsecond, 900*Microsecond),
				)
				if err != nil {
					t.Fatal(err)
				}
				return c
			}
			drive := func(c *Cluster) {
				if _, err := c.RunFor(8 * Millisecond); err != nil {
					t.Fatal(err)
				}
				if err := c.SetLinkQuality(LinkQuality{BitsPerSecond: 4_000_000}); err != nil {
					t.Fatal(err)
				}
				if _, err := c.RunUntil(func(s Snapshot) bool { return s.Epochs >= 40 }); err != nil {
					t.Fatal(err)
				}
				c.FailPrimary()
			}

			orig := mk()
			defer orig.Close()
			drive(orig)

			var buf bytes.Buffer
			if err := orig.Save(&buf); err != nil {
				t.Fatalf("save: %v", err)
			}

			restored, err := Restore(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			defer restored.Close()
			finishAndCompare(t, "restored-vs-original", orig, restored)

			fresh := mk()
			defer fresh.Close()
			drive(fresh)
			finishAndCompare(t, "fresh-vs-original", orig, fresh)
		})
	}
}

// TestSaveRestoreAddBackupJournal checkpoints AFTER a full
// fail -> promote -> reintegrate chain; the restored session must
// replay the reintegration (including the state transfer) and continue
// bit-identically.
func TestSaveRestoreAddBackupJournal(t *testing.T) {
	mk := func() *Cluster {
		c, err := NewCluster(
			WithWorkload(DiskWrite(5, 8192)),
			WithDiskLatency(800*Microsecond, 900*Microsecond),
			WithProtocol(ProtocolNew),
		)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	drive := func(c *Cluster) {
		if _, err := c.RunFor(6 * Millisecond); err != nil {
			t.Fatal(err)
		}
		c.FailPrimary()
		if _, err := c.RunUntil(func(s Snapshot) bool { return s.Promoted }); err != nil {
			t.Fatal(err)
		}
		if _, err := c.AddBackup(); err != nil {
			t.Fatal(err)
		}
		if _, err := c.RunFor(4 * Millisecond); err != nil {
			t.Fatal(err)
		}
	}

	orig := mk()
	defer orig.Close()
	drive(orig)

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	restored, err := Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	defer restored.Close()
	finishAndCompare(t, "restored-vs-original", orig, restored)
}

// TestSaveRestoreCompleted checkpoints a finished session; the restored
// session must report the identical terminal result.
func TestSaveRestoreCompleted(t *testing.T) {
	c, err := NewCluster(WithWorkload(CPUIntensive(5000)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	restored, err := Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	defer restored.Close()
	res2, err := restored.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res != res2 {
		t.Fatalf("results differ:\n  original: %+v\n  restored: %+v", res, res2)
	}
}

// saveBlob produces a checkpoint of a small mid-run session.
func saveBlob(t *testing.T) []byte {
	t.Helper()
	c, err := NewCluster(WithWorkload(CPUIntensive(20000)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.RunFor(5 * Millisecond); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// reseal recomputes the checksum trailer after a deliberate tamper, so
// the test reaches the layer under study instead of the checksum gate.
func reseal(blob []byte) []byte {
	body := blob[:len(blob)-8]
	h := fnv.New64a()
	h.Write(body)
	sum := h.Sum64()
	out := append([]byte(nil), body...)
	for i := 0; i < 8; i++ {
		out = append(out, byte(sum>>(8*i)))
	}
	return out
}

// TestRestoreVersionMismatch pins the version gate: a snapshot from a
// different format version is rejected with ErrSnapshotVersion.
func TestRestoreVersionMismatch(t *testing.T) {
	blob := saveBlob(t)
	// The version word sits right after the 8-byte magic.
	blob[8]++
	_, err := Restore(bytes.NewReader(reseal(blob)))
	if !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("restore of future-version snapshot: got %v, want ErrSnapshotVersion", err)
	}
}

// TestRestoreCorrupt pins the integrity gate: flipped bytes fail the
// checksum before any state is reconstructed.
func TestRestoreCorrupt(t *testing.T) {
	blob := saveBlob(t)
	blob[len(blob)/2] ^= 0xFF
	_, err := Restore(bytes.NewReader(blob))
	if !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("restore of corrupted snapshot: got %v, want ErrSnapshotCorrupt", err)
	}
	if _, err := Restore(bytes.NewReader(blob[:16])); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("restore of truncated snapshot: got %v, want ErrSnapshotCorrupt", err)
	}
}

// TestRestoreVerifyCatchesTamper pins the post-replay verification: a
// snapshot whose embedded state capture disagrees with the replayed
// run (here: a resealed tamper deep in the capture section) is
// rejected, not silently resumed.
func TestRestoreVerifyCatchesTamper(t *testing.T) {
	blob := saveBlob(t)
	// Flip a byte near the end of the blob — inside the last capture
	// section's payload — and reseal so the checksum gate passes.
	blob[len(blob)-24] ^= 0x01
	tampered := reseal(blob)
	_, err := Restore(bytes.NewReader(tampered))
	if err == nil {
		t.Fatal("restore of tampered snapshot succeeded")
	}
	if !strings.Contains(err.Error(), "diverges") {
		t.Fatalf("restore of tampered snapshot: got %v, want state-divergence error", err)
	}
	// Verification off: the replayed session is still internally
	// consistent, so restore succeeds.
	c, err := Restore(bytes.NewReader(tampered), RestoreWithoutVerify())
	if err != nil {
		t.Fatalf("restore without verify: %v", err)
	}
	c.Close()
}

// TestAddBackupHealthy reintegrates a third replica into a HEALTHY
// running pair: the joiner's digest checks against the live stream
// must hold from its first epoch (a mismatch panics the divergence
// tripwire), and the workload result is unchanged.
func TestAddBackupHealthy(t *testing.T) {
	w := DiskWrite(4, 8192)
	bare, err := RunBare(Config{DiskReadLatency: 800 * Microsecond, DiskWriteLatency: 900 * Microsecond}, w)
	if err != nil {
		t.Fatal(err)
	}
	for _, proto := range []Protocol{ProtocolOld, ProtocolNew} {
		c, err := NewCluster(
			WithWorkload(w),
			WithProtocol(proto),
			WithDiskLatency(800*Microsecond, 900*Microsecond),
		)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.RunFor(6 * Millisecond); err != nil {
			t.Fatal(err)
		}
		n, err := c.AddBackup()
		if err != nil {
			t.Fatalf("proto %v: AddBackup: %v", proto, err)
		}
		if n != 2 {
			t.Fatalf("proto %v: joined as node %d, want 2", proto, n)
		}
		res, err := c.Wait(context.Background())
		if err != nil {
			t.Fatalf("proto %v: %v", proto, err)
		}
		if res.Checksum != bare.Checksum || res.GuestPanic != 0 {
			t.Fatalf("proto %v: checksum %#x (bare %#x), panic %#x", proto, res.Checksum, bare.Checksum, res.GuestPanic)
		}
		if res.Divergences != 0 {
			t.Fatalf("proto %v: %d divergences after reintegration", proto, res.Divergences)
		}
		if snap := c.Snapshot(); snap.Nodes != 3 {
			t.Fatalf("proto %v: %d nodes, want 3", proto, snap.Nodes)
		}
		c.Close()
	}
}

// TestAddBackupRepairChain is the full repair story: primary failstop,
// promotion, reintegration by state transfer, and a SECOND failstop
// that only the reintegrated backup survives. The environment result
// is the bare machine's.
func TestAddBackupRepairChain(t *testing.T) {
	w := DiskWrite(6, 8192)
	bare, err := RunBare(Config{DiskReadLatency: 800 * Microsecond, DiskWriteLatency: 900 * Microsecond}, w)
	if err != nil {
		t.Fatal(err)
	}

	c, err := NewCluster(
		WithWorkload(w),
		WithProtocol(ProtocolNew),
		WithDiskLatency(800*Microsecond, 900*Microsecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	events := c.Events()
	var added []Event
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range events {
			if ev.Kind == EventBackupAdded {
				added = append(added, ev)
			}
		}
	}()

	if _, err := c.RunFor(5 * Millisecond); err != nil {
		t.Fatal(err)
	}
	c.FailPrimary()
	snap, err := c.RunUntil(func(s Snapshot) bool { return s.Promoted })
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Promoted || snap.Acting != 1 {
		t.Fatalf("after failstop: promoted=%v acting=%d", snap.Promoted, snap.Acting)
	}

	n, err := c.AddBackup()
	if err != nil {
		t.Fatalf("AddBackup: %v", err)
	}
	if n != 2 {
		t.Fatalf("joined as node %d, want 2", n)
	}
	// Let the state transfer land (a ~25 KB image takes ~20 ms on the
	// 10 Mbps link); killing the source mid-flight would lose the image
	// and the reintegration with it.
	if _, err := c.RunFor(40 * Millisecond); err != nil {
		t.Fatal(err)
	}

	// Second failure: kill the acting (promoted) backup. Only the
	// reintegrated node can finish the workload.
	if err := c.FailBackup(1); err != nil {
		t.Fatal(err)
	}
	res, err := c.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Checksum != bare.Checksum || res.GuestPanic != 0 {
		t.Fatalf("checksum %#x (bare %#x), panic %#x", res.Checksum, bare.Checksum, res.GuestPanic)
	}
	final := c.Snapshot()
	if final.Acting != 2 {
		t.Fatalf("acting node %d after second failstop, want the reintegrated node 2", final.Acting)
	}
	c.Close()
	<-done
	if len(added) != 1 || added[0].Node != 2 || added[0].TransferBytes == 0 {
		t.Fatalf("backup-added events: %+v", added)
	}
}

// TestAddBackupTransferCharged pins that the state transfer is paid in
// SIMULATED time: the joiner starts executing only once the image has
// crossed the link and trails the coordinator by the transfer
// duration, so the session over a 100x slower transfer link completes
// (all replicas done) measurably later.
func TestAddBackupTransferCharged(t *testing.T) {
	run := func(link LinkModel) Duration {
		c, err := NewCluster(
			WithWorkload(CPUIntensive(60000)),
			WithProtocol(ProtocolOld),
		)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.RunFor(4 * Millisecond); err != nil {
			t.Fatal(err)
		}
		var opts []AddBackupOption
		if link != nil {
			opts = append(opts, AddBackupLink(link))
		}
		if _, err := c.AddBackup(opts...); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		return c.Snapshot().Now
	}

	fast := run(nil) // cluster default: 10 Mbps Ethernet
	slow := run(LinkParams{Name: "serial", BitsPerSecond: 100_000})
	if slow <= fast {
		t.Fatalf("slow transfer link finished at %v, fast at %v — transfer time not charged", slow, fast)
	}
}

// TestAddBackupLossyLink reintegrates a backup and then PARTITIONS the
// mesh (every future message dropped). Every replica must detect the
// silence through its cascaded timeout and finish the workload
// independently — including the freshly transferred joiner, whose
// failure-detection path never ran before the partition.
func TestAddBackupLossyLink(t *testing.T) {
	w := CPUIntensive(60000)
	bare, err := RunBare(Config{}, w)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(WithWorkload(w), WithProtocol(ProtocolNew))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.RunFor(4 * Millisecond); err != nil {
		t.Fatal(err)
	}
	c.FailPrimary()
	if _, err := c.RunUntil(func(s Snapshot) bool { return s.Promoted }); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddBackup(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunFor(4 * Millisecond); err != nil {
		t.Fatal(err)
	}
	// Total partition: every message on every link from now on is lost.
	if err := c.SetLinkQuality(LinkQuality{DropNext: 1 << 30}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Checksum != bare.Checksum || res.GuestPanic != 0 {
		t.Fatalf("checksum %#x (bare %#x), panic %#x", res.Checksum, bare.Checksum, res.GuestPanic)
	}
	if res.Divergences != 0 {
		t.Fatalf("%d divergences", res.Divergences)
	}
}

// TestSaveRejectsCustomPlugins pins that non-serializable sessions are
// refused up front.
func TestSaveRejectsCustomPlugins(t *testing.T) {
	c, err := NewCluster(WithWorkload(CPUIntensive(1000)), WithDiskBackend(zeroBackend{}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Save(&bytes.Buffer{}); err == nil {
		t.Fatal("Save accepted a session with a custom DiskBackend")
	}
}

// zeroBackend is a trivial custom DiskBackend for the rejection test.
type zeroBackend struct{}

func (zeroBackend) Block(b uint32) []byte { return make([]byte, 8192) }

// TestRunUntilBoundarySampling pins the RunUntil observation contract:
// a predicate that is true only within a window narrower than one
// epoch — between the protocol's commit points — is never observed,
// and the session runs on to completion.
func TestRunUntilBoundarySampling(t *testing.T) {
	c, err := NewCluster(
		WithWorkload(CPUIntensive(20000)),
		WithEpochLength(32768), // one epoch spans ~0.7 ms of virtual time
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The window (10us, 100us) closes long before the first epoch
	// commit: the condition is true for an interval of virtual time,
	// but RunUntil samples only at commits, so it never fires.
	fired := false
	snap, err := c.RunUntil(func(s Snapshot) bool {
		inWindow := s.Now > 10*Microsecond && s.Now < 100*Microsecond
		if inWindow {
			fired = true
		}
		return inWindow
	})
	if err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatalf("predicate observed inside an epoch (Now=%v) — boundary sampling broken", snap.Now)
	}
	if !snap.Done {
		t.Fatalf("session paused at %v without the predicate holding", snap.Now)
	}

	// The same condition phrased monotonically IS caught, at the first
	// commit at or after it becomes true.
	c2, err := NewCluster(WithWorkload(CPUIntensive(20000)), WithEpochLength(32768))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	snap2, err := c2.RunUntil(func(s Snapshot) bool { return s.Now > 10*Microsecond })
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Done || snap2.Epochs == 0 {
		t.Fatalf("monotonic predicate missed: %+v", snap2)
	}
}
