package hft

// Differential tests for WithSharedImage: a cluster whose replicas run
// on the content-interned copy-on-write base image must be observably
// indistinguishable — results, snapshots, checkpoints, reintegration
// transfers — from one with private RAM per machine.

import (
	"bytes"
	"context"
	"testing"
)

// TestSharedImageRunDifferential runs the same perturbed workload with
// and without the shared base image and requires identical terminal
// results and snapshots — including across a mid-run failover.
func TestSharedImageRunDifferential(t *testing.T) {
	mk := func(shared bool) *Cluster {
		opts := []Option{
			WithWorkload(DiskWrite(4, 8192)),
			WithProtocol(ProtocolNew),
			WithFailPrimaryAt(8 * Millisecond),
		}
		if shared {
			opts = append(opts, WithSharedImage())
		}
		c, err := NewCluster(opts...)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := mk(true), mk(false)
	defer a.Close()
	defer b.Close()
	finishAndCompare(t, "shared-vs-private", a, b)
}

// TestSharedImageSaveRestoreAddBackup exercises the checkpoint and
// reintegration paths over COW RAM: Save/Restore round-trips
// byte-for-byte (the restored cluster is COW-backed too — the option
// rides in the checkpoint config), an AddBackup state transfer from a
// COW-backed coordinator reintegrates cleanly, and the whole sequence
// ends bit-identical to the private-RAM control.
func TestSharedImageSaveRestoreAddBackup(t *testing.T) {
	drive := func(shared bool) (*Cluster, []byte) {
		opts := []Option{
			WithWorkload(DiskWrite(6, 8192)),
			WithProtocol(ProtocolNew),
		}
		if shared {
			opts = append(opts, WithSharedImage())
		}
		c, err := NewCluster(opts...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.RunFor(6 * Millisecond); err != nil {
			t.Fatal(err)
		}
		if _, err := c.AddBackup(); err != nil {
			t.Fatalf("AddBackup (shared=%v): %v", shared, err)
		}
		// Let the state transfer land before checkpointing (the image
		// crosses a 10 Mbps link), so both arms capture the joiner in
		// the same reintegrated state: on the COW arm the restore
		// re-shares almost every transferred page against the base
		// image.
		if _, err := c.RunFor(60 * Millisecond); err != nil {
			t.Fatal(err)
		}
		var first bytes.Buffer
		if err := c.Save(&first); err != nil {
			t.Fatalf("save (shared=%v): %v", shared, err)
		}
		restored, err := Restore(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("restore (shared=%v): %v", shared, err)
		}
		var second bytes.Buffer
		if err := restored.Save(&second); err != nil {
			t.Fatalf("re-save (shared=%v): %v", shared, err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("save/restore round trip not byte-identical (shared=%v)", shared)
		}
		c.Close()
		return restored, first.Bytes()
	}

	a, saveA := drive(true)
	b, saveB := drive(false)
	defer a.Close()
	defer b.Close()

	// The two checkpoints differ exactly in the serialized sharedImage
	// config bit (plus the blob checksum it perturbs), nowhere else —
	// in particular every captured machine image is byte-identical
	// across the two backings.
	if len(saveA) != len(saveB) {
		t.Fatalf("checkpoint sizes differ: shared %d bytes, private %d", len(saveA), len(saveB))
	}
	diff := 0
	for i := range saveA[:len(saveA)-8] { // trailing 8 bytes: blob checksum
		if saveA[i] != saveB[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("checkpoints differ in %d bytes beyond the checksum, want exactly the sharedImage flag", diff)
	}

	raShared, errA := a.Wait(context.Background())
	rbPrivate, errB := b.Wait(context.Background())
	if errA != nil || errB != nil {
		t.Fatalf("wait: shared %v, private %v", errA, errB)
	}
	if raShared != rbPrivate {
		t.Fatalf("terminal results differ:\n  shared:  %+v\n  private: %+v", raShared, rbPrivate)
	}
	if sa, sb := a.Snapshot(), b.Snapshot(); sa != sb {
		t.Fatalf("final snapshots differ:\n  shared:  %+v\n  private: %+v", sa, sb)
	}
}
