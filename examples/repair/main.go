// Repair: the full fault-tolerance lifecycle in one session. The
// paper's protocol survives ONE failstop per spare replica — after a
// failover the system runs unprotected until the failed processor is
// repaired and reintegrated (§5). This example closes that loop:
//
//  1. the primary failstops mid-workload; the backup promotes (P6/P7);
//  2. a repaired processor rejoins via AddBackup — the acting
//     coordinator's complete virtual-machine state is captured at an
//     epoch boundary and shipped through the simulated link (the
//     transfer is charged to virtual time);
//  3. the acting coordinator failstops TOO — a failure that would have
//     been fatal without reintegration — and the freshly transferred
//     backup promotes and finishes the workload;
//  4. the result matches the bare, never-failing machine bit for bit.
package main

import (
	"context"
	"fmt"
	"log"

	hft "repro"
)

func main() {
	w := hft.DiskWrite(6, 8192)

	// Baseline: what a single never-failing machine produces.
	bare, err := hft.RunBare(hft.Config{}, w)
	if err != nil {
		log.Fatal(err)
	}

	c, err := hft.NewCluster(
		hft.WithWorkload(w),
		hft.WithProtocol(hft.ProtocolNew),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	events := c.Events()
	go func() {
		for ev := range events {
			switch ev.Kind {
			case hft.EventFailstop, hft.EventPromoted, hft.EventBackupAdded, hft.EventCompleted:
				fmt.Printf("  event: %v\n", ev)
			}
		}
	}()

	// --- Failure #1: the primary dies mid-workload. ---
	if _, err := c.RunFor(10 * hft.Millisecond); err != nil {
		log.Fatal(err)
	}
	c.FailPrimary()
	snap, err := c.RunUntil(func(s hft.Snapshot) bool { return s.Promoted })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failover complete: node%d is acting; redundancy is GONE\n", snap.Acting)

	// --- Repair: a new backup joins by live state transfer. ---
	n, err := c.AddBackup()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node%d reintegrating; the cluster keeps running while the image flies\n", n)

	// Let the transfer land and the joiner fall into lockstep.
	if _, err := c.RunFor(60 * hft.Millisecond); err != nil {
		log.Fatal(err)
	}

	// --- Failure #2: the acting coordinator dies too. Without the
	// reintegration this would be the end of the computation. ---
	if err := c.FailBackup(1); err != nil {
		log.Fatal(err)
	}
	res, err := c.Wait(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	final := c.Snapshot()
	fmt.Printf("survived two failstops: acting node%d finished the workload\n", final.Acting)
	fmt.Printf("result: %#x vs bare %#x (uncertain synthesized: %d)\n",
		res.Checksum, bare.Checksum, final.UncertainSynthesized)
	if res.Checksum != bare.Checksum || res.GuestPanic != 0 {
		log.Fatalf("INCONSISTENT RESULT (panic=%#x)", res.GuestPanic)
	}
	fmt.Println("environment result identical to a never-failing machine")
}
