// Epochsweep: reproduce Figure 2's trade-off in miniature. Short epochs
// amortize badly (every boundary pays the coordination round-trip); long
// epochs delay interrupt delivery. The sweep prints measured normalized
// performance beside the paper's analytic model at the same epoch
// lengths, for both protocols.
package main

import (
	"fmt"
	"log"

	hft "repro"
	"repro/internal/perfmodel"
)

func main() {
	w := hft.CPUIntensive(12000)
	model := perfmodel.PaperCPU()
	modelNew := model.WithHEpoch(perfmodel.HEpochNew)

	fmt.Println("Epoch-length sweep, CPU-intensive workload (cf. Figure 2 / Table 1)")
	fmt.Println()
	fmt.Printf("%-8s  %-22s  %-22s\n", "", "original protocol", "revised protocol (§4.3)")
	fmt.Printf("%-8s  %-10s %-10s  %-10s %-10s\n", "EL", "measured", "model", "measured", "model")
	for _, el := range []uint64{1024, 2048, 4096, 8192, 16384, 32768} {
		oldNP, err := hft.NormalizedPerformance(hft.Config{EpochLength: el, Protocol: hft.ProtocolOld}, w)
		if err != nil {
			log.Fatal(err)
		}
		newNP, err := hft.NormalizedPerformance(hft.Config{EpochLength: el, Protocol: hft.ProtocolNew}, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d  %-10.2f %-10.2f  %-10.2f %-10.2f\n",
			el, oldNP, perfmodel.NPC(model, float64(el)), newNP, perfmodel.NPC(modelNew, float64(el)))
	}
	fmt.Println()
	fmt.Printf("HP-UX bound (385,000 instructions): model predicts %.2f — the paper's 1.24.\n",
		perfmodel.NPC(model, perfmodel.HPUXMaxEpoch))
}
