// Linkstorm: one long-lived session, two live perturbations. The
// cluster starts on a healthy 10 Mbps Ethernet; mid-run the link
// degrades to 1 Mbps with 500 µs latency (a failing transceiver, say),
// epochs stretch accordingly — and then the primary failstops on top of
// it. The backup promotes over the degraded link and finishes the
// workload with the exact bare-machine result.
//
// None of this requires pre-scheduling: the session API perturbs a
// RUNNING cluster, the way the paper's prototype was abused in the lab.
package main

import (
	"context"
	"fmt"
	"log"

	hft "repro"
)

func main() {
	w := hft.DiskWrite(6, 8192)
	bare, err := hft.RunBare(hft.Config{}, w)
	if err != nil {
		log.Fatal(err)
	}

	c, err := hft.NewCluster(
		hft.WithWorkload(w),
		hft.WithEpochLength(4096),
		hft.WithLink(hft.Ethernet10()),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	events := c.Events()
	go func() {
		for ev := range events {
			switch ev.Kind {
			case hft.EventLinkQualityChanged, hft.EventFailstop,
				hft.EventPromoted, hft.EventCompleted:
				fmt.Printf("  event: %v\n", ev)
			}
		}
	}()

	// Phase 1: healthy cluster.
	healthy, err := c.RunFor(30 * hft.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthy:  %d epochs in 30ms\n", healthy.Epochs)

	// Phase 2: the link degrades 10x while the cluster runs.
	if err := c.SetLinkQuality(hft.LinkQuality{
		BitsPerSecond: 1_000_000,
		Latency:       500 * hft.Microsecond,
	}); err != nil {
		log.Fatal(err)
	}
	degraded, err := c.RunFor(30 * hft.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("degraded: %d epochs in the next 30ms (acks crawl; P2 waits stretch)\n",
		degraded.Epochs-healthy.Epochs)

	// Phase 3: the primary dies on the degraded link.
	c.FailPrimary()
	res, err := c.Wait(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("promoted: %v, %d uncertain interrupt(s) synthesized (P7)\n",
		res.Promoted, res.UncertainSynthesized)
	fmt.Printf("result:   %#x vs bare %#x in %v\n", res.Checksum, bare.Checksum, res.Time)
	if res.Checksum != bare.Checksum || res.GuestPanic != 0 {
		log.Fatalf("INCONSISTENT RESULT (panic=%#x)", res.GuestPanic)
	}
	fmt.Println()
	fmt.Println("A degraded link slows the virtual machine; it never corrupts it.")
	fmt.Println("Failstop on top of degradation still yields the single-machine result.")
}
