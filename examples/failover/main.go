// Failover: kill the primary processor mid-workload — inside the
// two-generals window, with a disk write outstanding — and watch the
// backup take over. The environment (the shared disk) sees a sequence of
// I/O operations consistent with a single processor: the outstanding
// write is re-driven through a synthesized uncertain interrupt (rule P7)
// and the guest driver's ordinary retry path.
package main

import (
	"fmt"
	"log"

	hft "repro"
)

func main() {
	w := hft.DiskWrite(6, 8192)
	cfg := hft.Config{
		EpochLength: 4096,
		Protocol:    hft.ProtocolOld,
	}

	// Baseline: what a single never-failing machine produces.
	bare, err := hft.RunBare(cfg, w)
	if err != nil {
		log.Fatal(err)
	}

	// Failstop the primary 40 ms in: it will have a write in flight.
	cfg.FailPrimaryAt = 40 * hft.Millisecond
	repl, err := hft.Run(cfg, w)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("primary failstopped at:   %v\n", cfg.FailPrimaryAt)
	fmt.Printf("backup promoted:          %v\n", repl.Promoted)
	fmt.Printf("uncertain interrupts:     %d (rule P7)\n", repl.UncertainSynthesized)
	fmt.Printf("workload completed:       console %q\n", repl.Console)
	fmt.Printf("result vs bare machine:   %#x vs %#x\n", repl.Checksum, bare.Checksum)
	if repl.Checksum == bare.Checksum && repl.GuestPanic == 0 {
		fmt.Println()
		fmt.Println("The environment cannot tell the primary ever existed: every")
		fmt.Println("committed disk write matches what one processor would have done,")
		fmt.Println("with at most identical-content repetitions (which IO2 permits).")
	} else {
		log.Fatalf("INCONSISTENT RESULT after failover (panic=%#x)", repl.GuestPanic)
	}
}
