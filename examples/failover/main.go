// Failover: kill the primary processor LIVE, mid-workload — inside the
// two-generals window, with a disk write outstanding — and watch the
// backup take over through the session's event stream. The environment
// (the shared disk) sees a sequence of I/O operations consistent with a
// single processor: the outstanding write is re-driven through a
// synthesized uncertain interrupt (rule P7) and the guest driver's
// ordinary retry path.
package main

import (
	"context"
	"fmt"
	"log"

	hft "repro"
)

func main() {
	w := hft.DiskWrite(6, 8192)

	// Baseline: what a single never-failing machine produces.
	bare, err := hft.RunBare(hft.Config{}, w)
	if err != nil {
		log.Fatal(err)
	}

	c, err := hft.NewCluster(
		hft.WithWorkload(w),
		hft.WithEpochLength(4096),
		hft.WithProtocol(hft.ProtocolOld),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Watch the protocol milestones as they happen.
	events := c.Events()
	go func() {
		for ev := range events {
			switch ev.Kind {
			case hft.EventFailstop, hft.EventPromoted, hft.EventCompleted:
				fmt.Printf("  event: %v\n", ev)
			}
		}
	}()

	// Run 40 ms in — the guest will have a write in flight — then
	// failstop the primary at the current instant. No schedule needed.
	if _, err := c.RunFor(40 * hft.Millisecond); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failstopping the primary at %v...\n", c.Now())
	c.FailPrimary()

	repl, err := c.Wait(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("backup promoted:          %v\n", repl.Promoted)
	fmt.Printf("uncertain interrupts:     %d (rule P7)\n", repl.UncertainSynthesized)
	fmt.Printf("workload completed:       console %q\n", repl.Console)
	fmt.Printf("result vs bare machine:   %#x vs %#x\n", repl.Checksum, bare.Checksum)
	if repl.Checksum == bare.Checksum && repl.GuestPanic == 0 {
		fmt.Println()
		fmt.Println("The environment cannot tell the primary ever existed: every")
		fmt.Println("committed disk write matches what one processor would have done,")
		fmt.Println("with at most identical-content repetitions (which IO2 permits).")
	} else {
		log.Fatalf("INCONSISTENT RESULT after failover (panic=%#x)", repl.GuestPanic)
	}
}
