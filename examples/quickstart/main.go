// Quickstart: build a 1-fault-tolerant virtual machine, run the paper's
// CPU-intensive workload on it, and report the normalized performance —
// the cost of transparency.
package main

import (
	"fmt"
	"log"

	hft "repro"
)

func main() {
	// The paper's reference configuration: 4096-instruction epochs, the
	// original protocol, a 10 Mbps Ethernet between the hypervisors.
	cfg := hft.Config{
		EpochLength: 4096,
		Protocol:    hft.ProtocolOld,
		Link:        hft.LinkEthernet10,
	}
	w := hft.CPUIntensive(20000)

	bare, err := hft.RunBare(cfg, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bare hardware:          %v (console %q)\n", bare.Time, bare.Console)

	repl, err := hft.Run(cfg, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replicated (1-FT VM):   %v (console %q)\n", repl.Time, repl.Console)
	fmt.Printf("same result?            checksums %#x / %#x, divergences %d\n",
		bare.Checksum, repl.Checksum, repl.Divergences)
	fmt.Printf("normalized performance: %.2f  (paper, 4K epochs: 6.50)\n",
		float64(repl.Time)/float64(bare.Time))
	fmt.Println()
	fmt.Println("The guest kernel, its workload, and the disk are all unmodified:")
	fmt.Println("fault tolerance was added entirely below the operating system.")
}
