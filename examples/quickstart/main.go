// Quickstart: build a 1-fault-tolerant virtual machine as a live
// session, run the paper's CPU-intensive workload on it, and report the
// normalized performance — the cost of transparency.
package main

import (
	"context"
	"fmt"
	"log"

	hft "repro"
)

func main() {
	w := hft.CPUIntensive(20000)

	// Baseline: the same workload on a single bare machine.
	bare, err := hft.RunBare(hft.Config{}, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bare hardware:          %v (console %q)\n", bare.Time, bare.Console)

	// The replicated machine is a session: it boots lazily, can be
	// observed mid-run, and advances under caller control. This is the
	// paper's reference configuration: 4096-instruction epochs, the
	// original protocol, a 10 Mbps Ethernet between the hypervisors.
	c, err := hft.NewCluster(
		hft.WithWorkload(w),
		hft.WithEpochLength(4096),
		hft.WithProtocol(hft.ProtocolOld),
		hft.WithLink(hft.Ethernet10()),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Peek at the session mid-flight: protocol statistics are
	// first-class values at any virtual time.
	mid, err := c.RunFor(50 * hft.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("at %v:                  epoch %d, %d protocol messages, %d acks\n",
		mid.Now, mid.Epochs, mid.MessagesSent, mid.AcksReceived)

	repl, err := c.Wait(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replicated (1-FT VM):   %v (console %q)\n", repl.Time, repl.Console)
	fmt.Printf("same result?            checksums %#x / %#x, divergences %d\n",
		bare.Checksum, repl.Checksum, repl.Divergences)
	fmt.Printf("normalized performance: %.2f  (paper, 4K epochs: 6.50)\n",
		float64(repl.Time)/float64(bare.Time))
	fmt.Println()
	fmt.Println("The guest kernel, its workload, and the disk are all unmodified:")
	fmt.Println("fault tolerance was added entirely below the operating system.")
}
