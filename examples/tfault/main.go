// tfault: the t-fault-tolerant generalization (§2: "n processors
// implement a system that can tolerate n−1 faults"). A 2-fault-tolerant
// virtual machine — one primary, two backups — survives the loss of BOTH
// the primary and the first promoted backup: promotions cascade by
// priority, and each new primary replays its delivered-interrupt archive
// so the remaining replicas follow its stream.
package main

import (
	"fmt"
	"log"

	hft "repro"
)

func main() {
	w := hft.DiskWrite(5, 8192)
	cfg := hft.Config{
		EpochLength:      4096,
		Backups:          2, // t = 2
		DiskReadLatency:  2 * hft.Millisecond,
		DiskWriteLatency: 3 * hft.Millisecond,
	}

	bare, err := hft.RunBare(cfg, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bare machine result:      %#x in %v\n", bare.Checksum, bare.Time)

	// First failure: the primary, early in the run. Second failure: the
	// promoted backup, mid-run. Backup 2 must finish alone.
	cfg.FailPrimaryAt = 2 * hft.Millisecond
	cfg.FailBackupAt = []hft.Duration{120 * hft.Millisecond}

	repl, err := hft.Run(cfg, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after TWO failstops:      %#x in %v\n", repl.Checksum, repl.Time)
	fmt.Printf("promotions occurred:      %v\n", repl.Promoted)
	fmt.Printf("uncertain interrupts:     %d (rule P7, possibly at both failovers)\n",
		repl.UncertainSynthesized)
	fmt.Printf("console:                  %q\n", repl.Console)
	if repl.Checksum == bare.Checksum && repl.GuestPanic == 0 {
		fmt.Println()
		fmt.Println("Two processors died; the third finished the computation with the")
		fmt.Println("exact single-machine result. The guest OS never knew.")
	} else {
		log.Fatalf("INCONSISTENT after double failure (panic=%#x)", repl.GuestPanic)
	}
}
