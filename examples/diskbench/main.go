// Diskbench: the paper's §4.2 I/O benchmarks. Random-block writes and
// reads against the shared dual-ported disk, bare vs replicated, at the
// paper's device service times (26 ms writes, 24.2 ms reads, 8 KiB
// blocks). Reads cost more under replication: the primary's hypervisor
// must forward each block to the backup over the Ethernet model ("9
// messages for the data and 1 for an acknowledgement").
package main

import (
	"fmt"
	"log"

	hft "repro"
)

func run(name string, w hft.Workload, cfg hft.Config) {
	bare, err := hft.RunBare(cfg, w)
	if err != nil {
		log.Fatal(err)
	}
	repl, err := hft.Run(cfg, w)
	if err != nil {
		log.Fatal(err)
	}
	if repl.Checksum != bare.Checksum {
		log.Fatalf("%s: result mismatch", name)
	}
	fmt.Printf("%-12s bare %-12v replicated %-12v NP %.2f  (messages: %d)\n",
		name, bare.Time, repl.Time, float64(repl.Time)/float64(bare.Time), repl.MessagesSent)
}

func main() {
	cfg := hft.Config{EpochLength: 4096, Protocol: hft.ProtocolOld}
	fmt.Println("Disk benchmarks (paper device times; 8 KiB blocks; 4K epochs)")
	fmt.Println("paper: write NP 1.67, read NP 2.03 at this epoch length")
	fmt.Println()
	run("disk write", hft.DiskWrite(6, 8192), cfg)
	run("disk read", hft.DiskRead(6, 8192), cfg)
	fmt.Println()
	fmt.Println("Under the revised protocol (§4.3) the boundary waits disappear:")
	cfg.Protocol = hft.ProtocolNew
	run("write (new)", hft.DiskWrite(6, 8192), cfg)
	run("read (new)", hft.DiskRead(6, 8192), cfg)
}
