// Service: the step from "replicated virtual machine" to
// "fault-tolerant network service". A guest request/response server
// runs behind the cluster's virtual NIC while a simulated client
// population drives open-loop load into it; mid-load, the primary is
// failstopped. The clients keep sending (and retransmitting — the load
// is open loop, so the blackout is observed, never masked), the backup
// promotes, re-emits the failover epoch's suppressed replies exactly
// once, and finishes the request stream. The program prints the
// client-observed latency distribution, the blackout window around the
// failover, and the proof that the reply stream is byte-identical to a
// bare (never-failing) machine's.
package main

import (
	"context"
	"fmt"
	"log"

	hft "repro"
)

func main() {
	const requests = 32
	workload := hft.ServeRequests(requests, 50)
	load := hft.ClientLoad{
		Clients: 8,
		MeanGap: 500 * hft.Microsecond,
		// Far above the healthy replicated tail, so any retransmission
		// the run reports was forced by the failover, not by ordinary
		// replication overhead.
		Timeout: 50 * hft.Millisecond,
	}

	// Baseline: the same service on one never-failing bare machine.
	bareRes, err := hft.RunBare(hft.Config{ClientLoad: &load}, workload)
	if err != nil {
		log.Fatal(err)
	}

	// The replicated service, primary failstopped mid-load.
	failAt := 6 * hft.Millisecond
	c, err := hft.NewCluster(
		hft.WithWorkload(workload),
		hft.WithClientLoad(load),
		hft.WithFailPrimaryAt(failAt),
		hft.WithDetectTimeout(3*hft.Millisecond),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	events := c.Events()
	res, err := c.Wait(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	lat, _ := c.ServiceLatencies()
	blackout := c.ServiceBlackout(failAt)
	c.Close() // closes the subscription after the backlog drains

	requestsSeen := 0
	for ev := range events {
		switch ev.Kind {
		case hft.EventNetRequest:
			requestsSeen++
		case hft.EventFailstop, hft.EventPromoted, hft.EventCompleted:
			fmt.Printf("  event: %v\n", ev)
		}
	}
	fmt.Printf("  event: %d net-request deliveries into the guest\n", requestsSeen)

	fmt.Printf("\nclient population:   %d/%d answered, %d retransmissions\n",
		lat.Answered, lat.Requests, lat.Retransmits)
	fmt.Printf("latency (virtual):   p50 %v, p99 %v, p99.9 %v, max %v\n",
		lat.P50, lat.P99, lat.P999, lat.Max)
	fmt.Printf("backup promoted:     %v\n", res.Promoted)
	fmt.Printf("blackout window:     %v (last reply before the failstop at %v to first reply after)\n",
		blackout, failAt)
	if res.NetReplies == bareRes.NetReplies && res.Checksum == bareRes.Checksum {
		fmt.Println()
		fmt.Println("The clients cannot tell the primary ever existed: the reply")
		fmt.Println("stream is byte-identical to the bare machine's — every request")
		fmt.Println("answered exactly once, in order, across the failover.")
	} else {
		log.Fatalf("reply stream diverged from bare (%d vs %d bytes)",
			len(res.NetReplies), len(bareRes.NetReplies))
	}
}
