package hft_test

import (
	"context"
	"fmt"

	hft "repro"
)

// A Cluster is a long-lived session: create it, drive it, observe it.
// Here the paper's CPU-intensive workload runs on a 1-fault-tolerant
// virtual machine to completion.
func ExampleNewCluster() {
	c, err := hft.NewCluster(
		hft.WithWorkload(hft.CPUIntensive(3000)),
		hft.WithEpochLength(2048),
		hft.WithProtocol(hft.ProtocolOld),
		hft.WithLink(hft.Ethernet10()),
	)
	if err != nil {
		panic(err)
	}
	defer c.Close()

	res, err := c.Wait(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Println("completed cleanly:", res.GuestPanic == 0)
	fmt.Println("failover needed:", res.Promoted)
	// Output:
	// completed cleanly: true
	// failover needed: false
}

// Failures are injected live, while the session runs: advance to an
// interesting instant, failstop the primary, and let the backup finish
// the workload. The result matches what a single never-failing machine
// produces.
func ExampleCluster_FailPrimary() {
	w := hft.DiskWrite(3, 4096)
	bare, err := hft.RunBare(hft.Config{
		DiskReadLatency:  500 * hft.Microsecond,
		DiskWriteLatency: 600 * hft.Microsecond,
	}, w)
	if err != nil {
		panic(err)
	}

	c, err := hft.NewCluster(
		hft.WithWorkload(w),
		hft.WithDiskLatency(500*hft.Microsecond, 600*hft.Microsecond),
	)
	if err != nil {
		panic(err)
	}
	defer c.Close()

	// Run 5 ms into the workload — mid-epoch, with I/O in flight — then
	// kill the primary's processor.
	if _, err := c.RunFor(5 * hft.Millisecond); err != nil {
		panic(err)
	}
	c.FailPrimary()

	res, err := c.Wait(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Println("backup promoted:", res.Promoted)
	fmt.Println("result matches bare machine:", res.Checksum == bare.Checksum)
	// Output:
	// backup promoted: true
	// result matches bare machine: true
}

// The Events stream surfaces protocol milestones as they happen; a
// Snapshot summarizes any instant. Here a session is paused at its
// fifth epoch commit by a predicate.
func ExampleCluster_RunUntil() {
	c, err := hft.NewCluster(
		hft.WithWorkload(hft.CPUIntensive(6000)),
		hft.WithEpochLength(1024),
	)
	if err != nil {
		panic(err)
	}
	defer c.Close()

	snap, err := c.RunUntil(func(s hft.Snapshot) bool { return s.Epochs >= 5 })
	if err != nil {
		panic(err)
	}
	fmt.Println("paused with at least 5 epochs:", snap.Epochs >= 5)
	fmt.Println("workload still running:", !snap.Done)
	// Output:
	// paused with at least 5 epochs: true
	// workload still running: true
}
