package hft_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"

	hft "repro"
)

// A Cluster is a long-lived session: create it, drive it, observe it.
// Here the paper's CPU-intensive workload runs on a 1-fault-tolerant
// virtual machine to completion.
func ExampleNewCluster() {
	c, err := hft.NewCluster(
		hft.WithWorkload(hft.CPUIntensive(3000)),
		hft.WithEpochLength(2048),
		hft.WithProtocol(hft.ProtocolOld),
		hft.WithLink(hft.Ethernet10()),
	)
	if err != nil {
		panic(err)
	}
	defer c.Close()

	res, err := c.Wait(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Println("completed cleanly:", res.GuestPanic == 0)
	fmt.Println("failover needed:", res.Promoted)
	// Output:
	// completed cleanly: true
	// failover needed: false
}

// Failures are injected live, while the session runs: advance to an
// interesting instant, failstop the primary, and let the backup finish
// the workload. The result matches what a single never-failing machine
// produces.
func ExampleCluster_FailPrimary() {
	w := hft.DiskWrite(3, 4096)
	bare, err := hft.RunBare(hft.Config{
		DiskReadLatency:  500 * hft.Microsecond,
		DiskWriteLatency: 600 * hft.Microsecond,
	}, w)
	if err != nil {
		panic(err)
	}

	c, err := hft.NewCluster(
		hft.WithWorkload(w),
		hft.WithDiskLatency(500*hft.Microsecond, 600*hft.Microsecond),
	)
	if err != nil {
		panic(err)
	}
	defer c.Close()

	// Run 5 ms into the workload — mid-epoch, with I/O in flight — then
	// kill the primary's processor.
	if _, err := c.RunFor(5 * hft.Millisecond); err != nil {
		panic(err)
	}
	c.FailPrimary()

	res, err := c.Wait(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Println("backup promoted:", res.Promoted)
	fmt.Println("result matches bare machine:", res.Checksum == bare.Checksum)
	// Output:
	// backup promoted: true
	// result matches bare machine: true
}

// The Events stream surfaces protocol milestones as they happen; a
// Snapshot summarizes any instant. Here a session is paused at its
// fifth epoch commit by a predicate.
func ExampleCluster_RunUntil() {
	c, err := hft.NewCluster(
		hft.WithWorkload(hft.CPUIntensive(6000)),
		hft.WithEpochLength(1024),
	)
	if err != nil {
		panic(err)
	}
	defer c.Close()

	snap, err := c.RunUntil(func(s hft.Snapshot) bool { return s.Epochs >= 5 })
	if err != nil {
		panic(err)
	}
	fmt.Println("paused with at least 5 epochs:", snap.Epochs >= 5)
	fmt.Println("workload still running:", !snap.Done)
	// Output:
	// paused with at least 5 epochs: true
	// workload still running: true
}

// The repair half of the fault-tolerance story: after a failover the
// cluster runs unprotected; AddBackup reintegrates a new backup by
// shipping the acting coordinator's complete virtual-machine state
// through the simulated link. The reintegrated node survives a SECOND
// failstop that would otherwise have ended the computation.
func ExampleCluster_AddBackup() {
	c, err := hft.NewCluster(
		hft.WithWorkload(hft.CPUIntensive(30000)),
		hft.WithProtocol(hft.ProtocolNew),
	)
	if err != nil {
		panic(err)
	}
	defer c.Close()

	// Failure #1: the primary dies; the backup takes over.
	if _, err := c.RunFor(5 * hft.Millisecond); err != nil {
		panic(err)
	}
	c.FailPrimary()
	if _, err := c.RunUntil(func(s hft.Snapshot) bool { return s.Promoted }); err != nil {
		panic(err)
	}

	// Repair: a new backup joins by live state transfer and falls into
	// lockstep once the image lands.
	n, err := c.AddBackup()
	if err != nil {
		panic(err)
	}
	fmt.Println("joined as node:", n)
	if _, err := c.RunFor(40 * hft.Millisecond); err != nil {
		panic(err)
	}

	// Failure #2: only the reintegrated backup can finish the workload.
	if err := c.FailBackup(1); err != nil {
		panic(err)
	}
	res, err := c.Wait(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Println("completed cleanly:", res.GuestPanic == 0)
	fmt.Println("acting node:", c.Snapshot().Acting)
	// Output:
	// joined as node: 2
	// completed cleanly: true
	// acting node: 2
}

// A session checkpoints to any io.Writer and restores bit-identically:
// the snapshot carries the configuration, the perturbation journal and
// a complete state capture that Restore verifies after replay. Here
// the original and the restored session finish with identical results.
func ExampleCluster_Save() {
	c, err := hft.NewCluster(hft.WithWorkload(hft.CPUIntensive(8000)))
	if err != nil {
		panic(err)
	}
	defer c.Close()

	if _, err := c.RunFor(10 * hft.Millisecond); err != nil {
		panic(err)
	}
	c.FailPrimary() // journalled: the restore replays it at the same instant

	var checkpoint bytes.Buffer
	if err := c.Save(&checkpoint); err != nil {
		panic(err)
	}

	restored, err := hft.Restore(&checkpoint)
	if err != nil {
		panic(err)
	}
	defer restored.Close()

	res, err := c.Wait(context.Background())
	if err != nil {
		panic(err)
	}
	res2, err := restored.Wait(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Println("identical completion:", res == res2)
	fmt.Println("failover replayed:", res2.Promoted)
	// Output:
	// identical completion: true
	// failover replayed: true
}

// The Events stream delivers protocol milestones as first-class
// values; each subscription is independent and unbounded, so a slow
// consumer never stalls the simulation. Here the stream observes a
// scheduled failstop and the resulting promotion.
func ExampleCluster_Events() {
	c, err := hft.NewCluster(
		hft.WithWorkload(hft.CPUIntensive(20000)),
		hft.WithFailPrimaryAt(5*hft.Millisecond),
	)
	if err != nil {
		panic(err)
	}

	events := c.Events()
	if _, err := c.Wait(context.Background()); err != nil {
		panic(err)
	}
	c.Close() // closes the subscription after the backlog drains

	var kinds []string
	for ev := range events {
		switch ev.Kind {
		case hft.EventFailstop, hft.EventPromoted, hft.EventCompleted:
			kinds = append(kinds, ev.Kind.String())
		}
	}
	fmt.Println(strings.Join(kinds, " -> "))
	// Output:
	// failstop -> promoted -> completed
}

// A replicated network service: the ServeRequests workload answers
// requests arriving through the cluster's virtual NIC from a simulated
// client population (WithClientLoad). The primary is failstopped
// mid-load; the clients observe a finite blackout, the backup re-emits
// the failover epoch's suppressed replies exactly once, and the reply
// stream matches what one never-failing machine produces.
func ExampleNewCluster_service() {
	workload := hft.ServeRequests(24, 50)
	load := hft.ClientLoad{Clients: 8, MeanGap: 500 * hft.Microsecond, Timeout: 50 * hft.Millisecond}

	bare, err := hft.RunBare(hft.Config{ClientLoad: &load}, workload)
	if err != nil {
		panic(err)
	}

	failAt := 6 * hft.Millisecond
	c, err := hft.NewCluster(
		hft.WithWorkload(workload),
		hft.WithClientLoad(load),
		hft.WithFailPrimaryAt(failAt),
		hft.WithDetectTimeout(3*hft.Millisecond),
	)
	if err != nil {
		panic(err)
	}
	defer c.Close()

	res, err := c.Wait(context.Background())
	if err != nil {
		panic(err)
	}
	lat, _ := c.ServiceLatencies()
	fmt.Println("backup promoted:", res.Promoted)
	fmt.Printf("answered: %d/%d\n", lat.Answered, lat.Requests)
	fmt.Println("finite blackout observed:", c.ServiceBlackout(failAt) > 0)
	fmt.Println("reply stream matches bare machine:", res.NetReplies == bare.NetReplies)
	// Output:
	// backup promoted: true
	// answered: 24/24
	// finite blackout observed: true
	// reply stream matches bare machine: true
}

// Any LinkParams literal is a complete LinkModel: here a 1 Gbps
// low-latency interconnect replaces the paper's two built-ins. The
// same mechanism models degraded serial links, jumbo frames, or
// per-message setup costs.
func ExampleLinkParams() {
	fast := hft.LinkParams{
		Name:          "gige",
		BitsPerSecond: 1_000_000_000,
		Latency:       5 * hft.Microsecond,
		MTU:           9000,
	}
	c, err := hft.NewCluster(
		hft.WithWorkload(hft.CPUIntensive(5000)),
		hft.WithLink(fast),
	)
	if err != nil {
		panic(err)
	}
	defer c.Close()
	res, err := c.Wait(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Println("completed cleanly:", res.GuestPanic == 0)
	// Output:
	// completed cleanly: true
}

// patternBackend supplies deterministic synthetic content for every
// disk block — a custom DiskBackend in a dozen lines.
type patternBackend struct {
	blocks map[uint32][]byte
}

func (p *patternBackend) Block(b uint32) []byte {
	if p.blocks == nil {
		p.blocks = map[uint32][]byte{}
	}
	blk := p.blocks[b]
	if blk == nil {
		blk = make([]byte, 8192)
		for i := range blk {
			blk[i] = byte(b) ^ byte(i)
		}
		p.blocks[b] = blk
	}
	return blk
}

// DiskBackend plugs custom storage behind the shared disk: the guest's
// reads see the backend's bytes, identically on every replica.
func ExampleDiskBackend() {
	c, err := hft.NewCluster(
		hft.WithWorkload(hft.DiskRead(3, 8192)),
		hft.WithDiskBackend(&patternBackend{}),
		hft.WithDiskLatency(500*hft.Microsecond, 600*hft.Microsecond),
	)
	if err != nil {
		panic(err)
	}
	defer c.Close()
	res, err := c.Wait(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Println("completed cleanly:", res.GuestPanic == 0)
	fmt.Println("read checksum nonzero:", res.Checksum != 0)
	// Output:
	// completed cleanly: true
	// read checksum nonzero: true
}
