package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Every simulation the harness runs — one bare or replicated boot of the
// guest — is self-contained: it owns its simulation kernel, machines,
// devices and links, and is deterministic in its inputs. Experiment
// drivers therefore fan independent simulations (figure points, table
// cells, campaign injections) across worker goroutines and slot results
// by index, so the assembled output is bit-for-bit identical at any
// worker count.

var workerCount atomic.Int64

func init() { workerCount.Store(1) }

// SetWorkers sets how many simulations experiment drivers run
// concurrently. n < 1 selects GOMAXPROCS. The default is 1 (serial).
func SetWorkers(n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	workerCount.Store(int64(n))
}

// Workers returns the configured concurrency.
func Workers() int { return int(workerCount.Load()) }

// ForEach runs fn(i) for every i in [0, n), fanning across Workers()
// goroutines. fn must communicate results through index-addressed slots;
// ForEach imposes no output ordering of its own. A panic in any worker
// (the harness's consistency checks panic) is re-raised on the caller.
func ForEach(n int, fn func(i int)) {
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, fmt.Sprintf("%v", r))
				}
			}()
			for panicked.Load() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(fmt.Sprintf("harness: worker: %v", p))
	}
}
