package harness

import (
	"runtime"
	"sync/atomic"

	"repro/internal/sched"
)

// Every simulation the harness runs — one bare or replicated boot of the
// guest — is self-contained: it owns its simulation kernel, machines,
// devices and links, and is deterministic in its inputs. Experiment
// drivers therefore fan independent simulations (figure points, table
// cells, campaign injections) across worker goroutines and slot results
// by index, so the assembled output is bit-for-bit identical at any
// worker count.

var workerCount atomic.Int64

func init() { workerCount.Store(1) }

// SetWorkers sets how many simulations experiment drivers run
// concurrently. n < 1 selects GOMAXPROCS. The default is 1 (serial).
//
// Deprecated: SetWorkers is process-global mutable state; two drivers
// cannot run at different widths concurrently. Pass the worker count
// per call instead — Scale.Workers for the experiment drivers, or
// ForEachWorkers directly. SetWorkers remains as a shim: it sets the
// fallback used when a per-call count is zero.
func SetWorkers(n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	workerCount.Store(int64(n))
}

// Workers returns the configured fallback concurrency (see SetWorkers).
func Workers() int { return int(workerCount.Load()) }

// ForEachWorkers runs fn(i) for every i in [0, n) on an explicit
// worker count, fanning through the fleet work-stealing scheduler
// (internal/sched). fn must communicate results through
// index-addressed slots, so the assembled output is bit-for-bit
// identical at any worker count. workers == 0 falls back to the
// deprecated process-global SetWorkers value; workers < 0 selects
// GOMAXPROCS. A panic in any worker (the harness's consistency checks
// panic) is re-raised on the caller.
func ForEachWorkers(workers, n int, fn func(i int)) {
	if workers == 0 {
		workers = Workers()
	}
	sched.ForEach(workers, n, fn)
}

// ForEach runs fn(i) for every i in [0, n), fanning across Workers()
// goroutines.
//
// Deprecated: ForEach reads the process-global worker count; use
// ForEachWorkers.
func ForEach(n int, fn func(i int)) { ForEachWorkers(0, n, fn) }
