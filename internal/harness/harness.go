// Package harness runs the paper's experiments end to end on the
// simulated prototype: it boots the guest kernel bare (the RT baseline)
// and replicated (primary + backup under the coordination protocols),
// measures completion times, computes normalized performance, and
// regenerates every table and figure of §4.
package harness

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/hypervisor"
	"repro/internal/machine"
	"repro/internal/netsim"
	"repro/internal/replication"
	"repro/internal/scsi"
	"repro/internal/session"
	"repro/internal/sim"
)

// Scale selects workload sizing. Normalized performance is a ratio, so
// the curves' shape is scale-free; larger scales reduce quantization
// noise at the cost of simulation time.
type Scale struct {
	Name string
	// CPUIters is the CPU workload's iteration count (paper: 1e6
	// Dhrystone iterations ≈ 4.2e8 instructions).
	CPUIters uint32
	// DiskOps is the I/O benchmarks' operation count (paper: 2048).
	DiskOps uint32
	// PreOp is the per-op compute phase in 3-instruction iterations
	// (paper-calibrated: ≈ 15,500 instructions per op at paper scale).
	PreOp uint32
	// PrivOps is the per-op privileged-instruction count on the kernel
	// I/O path (paper-calibrated: ≈ 1030).
	PrivOps uint32
	// Count is bytes per disk op (paper: 8 KiB blocks).
	Count uint32
	// Disk provides the device service times (paper: 26 ms writes,
	// 24.2 ms reads).
	Disk scsi.DiskConfig
	// Workers is the per-call worker count drivers fan this scale's
	// independent simulations across (see ForEachWorkers). Zero falls
	// back to the deprecated process-global SetWorkers value, keeping
	// existing callers unchanged.
	Workers int
}

// forEach fans a driver's independent simulations across this scale's
// worker count.
func (s Scale) forEach(n int, fn func(i int)) { ForEachWorkers(s.Workers, n, fn) }

// QuickScale is small enough for unit tests and go-test benchmarks: the
// device times, per-op computation, privileged density and block size
// are all scaled down by 4x together, so every term of the NPW/NPR
// balance keeps its paper-calibrated ratio and the normalized
// performance lands where the paper's does.
func QuickScale() Scale {
	return Scale{
		Name:     "quick",
		CPUIters: 6000,
		DiskOps:  4,
		PreOp:    1300,
		PrivOps:  258,
		Count:    2048,
		Disk: scsi.DiskConfig{
			ReadLatency:  sim.Time(24.2 * float64(sim.Millisecond) / 4),
			WriteLatency: 26 * sim.Millisecond / 4,
		},
	}
}

// PaperScale uses the paper's device latencies, block size and per-op
// calibration with a reduced operation count (normalized performance is
// a ratio; simulating all 2048 paper operations adds nothing).
func PaperScale() Scale {
	return Scale{
		Name:     "paper",
		CPUIters: 12000,
		DiskOps:  8,
		PreOp:    5200,
		PrivOps:  1030,
		Count:    8192,
		Disk:     scsi.DiskConfig{}, // defaults = paper latencies
	}
}

// workload materializes a guest workload for this scale.
func (s Scale) workload(kind uint32) guest.Workload {
	switch kind {
	case guest.WorkloadCPU:
		return guest.CPUIntensive(s.CPUIters)
	case guest.WorkloadDiskWrite:
		w := guest.DiskWrite(s.DiskOps, s.Count)
		w.PreOp, w.PrivOps = s.PreOp, s.PrivOps
		return w
	case guest.WorkloadDiskRead:
		w := guest.DiskRead(s.DiskOps, s.Count)
		w.PreOp, w.PrivOps = s.PreOp, s.PrivOps
		return w
	}
	panic(fmt.Sprintf("harness: unknown workload kind %d", kind))
}

// RunResult reports one simulated run.
type RunResult struct {
	// Time is the workload completion time (virtual).
	Time sim.Time
	// Guest is the kernel's ABI report.
	Guest guest.Result
	// Console is the primary-side console transcript.
	Console string
	// Promoted reports whether a failover occurred.
	Promoted bool
	// PrimaryStats/BackupStats are the protocol engines' counters
	// (zero for bare runs).
	PrimaryStats replication.Stats
	BackupStats  replication.Stats
	// HVStats is the primary hypervisor's activity (zero for bare).
	HVStats hypervisor.Stats
}

// GuestMemBytes re-exports the per-machine RAM default (the session
// engine owns the platform wiring now).
const GuestMemBytes = session.GuestMemBytes

// RunBare executes the workload on bare hardware (the paper's baseline).
func RunBare(seed int64, w guest.Workload, disk scsi.DiskConfig) RunResult {
	e := session.New(session.Options{
		Seed:    seed,
		Program: session.WorkloadProgram(w),
		Bare:    true,
		Disk:    disk,
	})
	defer e.Close()
	return finish(e)
}

// ReplicatedOptions configures a replicated run.
type ReplicatedOptions struct {
	Seed        int64
	Workload    guest.Workload
	Disk        scsi.DiskConfig
	EpochLength uint64
	Protocol    replication.Protocol
	// Link configures the hypervisor channel (zero = 10 Mbps Ethernet).
	Link netsim.LinkConfig
	// FailPrimaryAt, if nonzero, failstops the primary at that virtual
	// time.
	FailPrimaryAt sim.Time
	// DetectTimeout is the backup's failure-detection timeout
	// (default 50 ms; backup i waits i x DetectTimeout).
	DetectTimeout sim.Time
	// Backups is the number of backup replicas t (default 1). The
	// resulting virtual machine is t-fault-tolerant.
	Backups int
	// FailBackupAt failstops backup i+1 at FailBackupAt[i] (0 = never).
	FailBackupAt []sim.Time
	// Machine overrides the processor configuration (TLB size/policy —
	// used by the §3.2 ablation).
	Machine machine.Config
	// NoTLBTakeover disables the hypervisor's §3.2 TLB takeover
	// (ablation: demonstrates the nondeterminism hazard).
	NoTLBTakeover bool
	// OnDivergence, when set, observes backup digest mismatches instead
	// of panicking.
	OnDivergence func(epoch uint64, primary, backup uint64)
}

// RunReplicated executes the workload on a replicated group: one primary
// plus o.Backups backups (a t-fault-tolerant virtual machine). It is a
// one-shot convenience over the session engine — build a session.Engine
// directly to drive, observe or perturb the cluster while it runs.
func RunReplicated(o ReplicatedOptions) RunResult {
	e := session.New(session.Options{
		Seed:          o.Seed,
		Program:       session.WorkloadProgram(o.Workload),
		Disk:          o.Disk,
		EpochLength:   o.EpochLength,
		Protocol:      o.Protocol,
		Link:          o.Link,
		FailPrimaryAt: o.FailPrimaryAt,
		DetectTimeout: o.DetectTimeout,
		Backups:       o.Backups,
		FailBackupAt:  o.FailBackupAt,
		Machine:       o.Machine,
		NoTLBTakeover: o.NoTLBTakeover,
		OnDivergence:  o.OnDivergence,
	})
	defer e.Close()
	return finish(e)
}

// finish drives a session to completion and converts its report,
// preserving the harness's historical panic-on-wedge tripwire.
func finish(e *session.Engine) RunResult {
	if err := e.RunToCompletion(nil); err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	r, err := e.Result()
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	return RunResult{
		Time:         r.Time,
		Guest:        r.Guest,
		Console:      r.Console,
		Promoted:     r.Promoted,
		PrimaryStats: r.PrimaryStats,
		BackupStats:  r.BackupStats,
		HVStats:      r.HVStats,
	}
}

// Measure computes normalized performance for one configuration: the
// replicated completion time over the bare completion time.
func Measure(scale Scale, kind uint32, el uint64, proto replication.Protocol, link netsim.LinkConfig) (np float64, bare, repl RunResult) {
	w := scale.workload(kind)
	bare = RunBare(1, w, scale.Disk)
	np, repl = measureAgainst(bare, scale, w, el, proto, link)
	return np, bare, repl
}

// measureAgainst runs the replicated half of a measurement against a
// precomputed bare baseline (RunBare is deterministic, so experiment
// drivers compute each workload's baseline once and share it across
// their figure points).
func measureAgainst(bare RunResult, scale Scale, w guest.Workload, el uint64, proto replication.Protocol, link netsim.LinkConfig) (float64, RunResult) {
	repl := RunReplicated(ReplicatedOptions{
		Seed:        1,
		Workload:    w,
		Disk:        scale.Disk,
		EpochLength: el,
		Protocol:    proto,
		Link:        link,
	})
	if bare.Guest.Panic != 0 || repl.Guest.Panic != 0 {
		panic(fmt.Sprintf("harness: guest panic (bare %#x, repl %#x)", bare.Guest.Panic, repl.Guest.Panic))
	}
	if bare.Guest.Checksum != repl.Guest.Checksum {
		panic(fmt.Sprintf("harness: checksum mismatch bare %#x repl %#x", bare.Guest.Checksum, repl.Guest.Checksum))
	}
	return float64(repl.Time) / float64(bare.Time), repl
}
