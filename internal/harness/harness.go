// Package harness runs the paper's experiments end to end on the
// simulated prototype: it boots the guest kernel bare (the RT baseline)
// and replicated (primary + backup under the coordination protocols),
// measures completion times, computes normalized performance, and
// regenerates every table and figure of §4.
package harness

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/hypervisor"
	"repro/internal/machine"
	"repro/internal/netsim"
	"repro/internal/platform"
	"repro/internal/replication"
	"repro/internal/scsi"
	"repro/internal/sim"
)

// Scale selects workload sizing. Normalized performance is a ratio, so
// the curves' shape is scale-free; larger scales reduce quantization
// noise at the cost of simulation time.
type Scale struct {
	Name string
	// CPUIters is the CPU workload's iteration count (paper: 1e6
	// Dhrystone iterations ≈ 4.2e8 instructions).
	CPUIters uint32
	// DiskOps is the I/O benchmarks' operation count (paper: 2048).
	DiskOps uint32
	// PreOp is the per-op compute phase in 3-instruction iterations
	// (paper-calibrated: ≈ 15,500 instructions per op at paper scale).
	PreOp uint32
	// PrivOps is the per-op privileged-instruction count on the kernel
	// I/O path (paper-calibrated: ≈ 1030).
	PrivOps uint32
	// Count is bytes per disk op (paper: 8 KiB blocks).
	Count uint32
	// Disk provides the device service times (paper: 26 ms writes,
	// 24.2 ms reads).
	Disk scsi.DiskConfig
}

// QuickScale is small enough for unit tests and go-test benchmarks: the
// device times, per-op computation, privileged density and block size
// are all scaled down by 4x together, so every term of the NPW/NPR
// balance keeps its paper-calibrated ratio and the normalized
// performance lands where the paper's does.
func QuickScale() Scale {
	return Scale{
		Name:     "quick",
		CPUIters: 6000,
		DiskOps:  4,
		PreOp:    1300,
		PrivOps:  258,
		Count:    2048,
		Disk: scsi.DiskConfig{
			ReadLatency:  sim.Time(24.2 * float64(sim.Millisecond) / 4),
			WriteLatency: 26 * sim.Millisecond / 4,
		},
	}
}

// PaperScale uses the paper's device latencies, block size and per-op
// calibration with a reduced operation count (normalized performance is
// a ratio; simulating all 2048 paper operations adds nothing).
func PaperScale() Scale {
	return Scale{
		Name:     "paper",
		CPUIters: 12000,
		DiskOps:  8,
		PreOp:    5200,
		PrivOps:  1030,
		Count:    8192,
		Disk:     scsi.DiskConfig{}, // defaults = paper latencies
	}
}

// workload materializes a guest workload for this scale.
func (s Scale) workload(kind uint32) guest.Workload {
	switch kind {
	case guest.WorkloadCPU:
		return guest.CPUIntensive(s.CPUIters)
	case guest.WorkloadDiskWrite:
		w := guest.DiskWrite(s.DiskOps, s.Count)
		w.PreOp, w.PrivOps = s.PreOp, s.PrivOps
		return w
	case guest.WorkloadDiskRead:
		w := guest.DiskRead(s.DiskOps, s.Count)
		w.PreOp, w.PrivOps = s.PreOp, s.PrivOps
		return w
	}
	panic(fmt.Sprintf("harness: unknown workload kind %d", kind))
}

// RunResult reports one simulated run.
type RunResult struct {
	// Time is the workload completion time (virtual).
	Time sim.Time
	// Guest is the kernel's ABI report.
	Guest guest.Result
	// Console is the primary-side console transcript.
	Console string
	// Promoted reports whether a failover occurred.
	Promoted bool
	// PrimaryStats/BackupStats are the protocol engines' counters
	// (zero for bare runs).
	PrimaryStats replication.Stats
	BackupStats  replication.Stats
	// HVStats is the primary hypervisor's activity (zero for bare).
	HVStats hypervisor.Stats
}

// GuestMemBytes is the physical RAM the harness gives each simulated
// machine. The guest kernel's physical footprint tops out below 0x60040
// (the memory-stride region), so 1 MiB leaves an order-of-magnitude
// margin while keeping machine construction (zeroing RAM) off the
// experiment runners' profile. Simulated timing and guest results are
// independent of RAM size; explicit machine overrides still win.
const GuestMemBytes = 1 << 20

// sizeMachine applies the harness RAM default to a machine config.
func sizeMachine(mc machine.Config) machine.Config {
	if mc.MemBytes == 0 {
		mc.MemBytes = GuestMemBytes
	}
	return mc
}

// RunBare executes the workload on bare hardware (the paper's baseline).
func RunBare(seed int64, w guest.Workload, disk scsi.DiskConfig) RunResult {
	k := sim.NewKernel(seed)
	defer k.Shutdown()
	s := platform.NewSingle(k, platform.Config{Disk: disk, Machine: sizeMachine(machine.Config{})})
	p := guest.Program()
	s.Bare.Boot(p.Origin, p.Words, 0)
	guest.Configure(s.Node.M, w)
	var done sim.Time
	k.Spawn("bare", func(pr *sim.Proc) {
		s.Bare.Run(pr)
		done = pr.Now()
	})
	k.RunUntil(20000 * sim.Second)
	if !s.Bare.Halted() {
		panic(fmt.Sprintf("harness: bare run did not halt (pc=%#x)", s.Node.M.PC))
	}
	return RunResult{
		Time:    done,
		Guest:   guest.ReadResult(s.Node.M),
		Console: s.Node.Console.Output(),
	}
}

// ReplicatedOptions configures a replicated run.
type ReplicatedOptions struct {
	Seed        int64
	Workload    guest.Workload
	Disk        scsi.DiskConfig
	EpochLength uint64
	Protocol    replication.Protocol
	// Link configures the hypervisor channel (zero = 10 Mbps Ethernet).
	Link netsim.LinkConfig
	// FailPrimaryAt, if nonzero, failstops the primary at that virtual
	// time.
	FailPrimaryAt sim.Time
	// DetectTimeout is the backup's failure-detection timeout
	// (default 50 ms; backup i waits i x DetectTimeout).
	DetectTimeout sim.Time
	// Backups is the number of backup replicas t (default 1). The
	// resulting virtual machine is t-fault-tolerant.
	Backups int
	// FailBackupAt failstops backup i+1 at FailBackupAt[i] (0 = never).
	FailBackupAt []sim.Time
	// Machine overrides the processor configuration (TLB size/policy —
	// used by the §3.2 ablation).
	Machine machine.Config
	// NoTLBTakeover disables the hypervisor's §3.2 TLB takeover
	// (ablation: demonstrates the nondeterminism hazard).
	NoTLBTakeover bool
	// OnDivergence, when set, observes backup digest mismatches instead
	// of panicking.
	OnDivergence func(epoch uint64, primary, backup uint64)
}

// RunReplicated executes the workload on a replicated group: one primary
// plus o.Backups backups (a t-fault-tolerant virtual machine).
func RunReplicated(o ReplicatedOptions) RunResult {
	if o.DetectTimeout == 0 {
		o.DetectTimeout = 50 * sim.Millisecond
	}
	if o.Backups == 0 {
		o.Backups = 1
	}
	n := o.Backups + 1
	k := sim.NewKernel(o.Seed)
	defer k.Shutdown()
	cluster := platform.NewCluster(k, platform.Config{
		Disk:    o.Disk,
		Link:    o.Link,
		Machine: sizeMachine(o.Machine),
		Hypervisor: hypervisor.Config{
			EpochLength:   o.EpochLength,
			NoTLBTakeover: o.NoTLBTakeover,
		},
	}, n)
	p := guest.Program()
	for _, node := range cluster.Nodes {
		node.HV.Boot(p.Origin, p.Words, 0)
		guest.Configure(node.M, o.Workload)
	}

	var peers []replication.Peer
	for j := 1; j < n; j++ {
		tx, rx := cluster.Channel(0, j)
		peers = append(peers, replication.Peer{TX: tx, RX: rx})
	}
	pri := replication.NewPrimaryMulti(cluster.Nodes[0].HV, peers, o.Protocol)
	var baks []*replication.Backup
	for i := 1; i < n; i++ {
		var ups, downs []replication.Peer
		for j := 0; j < i; j++ {
			tx, rx := cluster.Channel(i, j)
			ups = append(ups, replication.Peer{TX: tx, RX: rx})
		}
		for j := i + 1; j < n; j++ {
			tx, rx := cluster.Channel(i, j)
			downs = append(downs, replication.Peer{TX: tx, RX: rx})
		}
		bak := replication.NewBackupAt(
			cluster.Nodes[i].HV, i, ups, downs, o.DetectTimeout, o.Protocol)
		bak.OnDivergence = o.OnDivergence
		baks = append(baks, bak)
	}

	if o.FailPrimaryAt > 0 {
		k.At(o.FailPrimaryAt, func() {
			pri.Failstop()
			cluster.Nodes[0].Adapter.Detached = true
		})
	}
	for i, at := range o.FailBackupAt {
		if at > 0 && i < len(baks) {
			i, at := i, at
			k.At(at, func() {
				baks[i].Failstop()
				cluster.Nodes[i+1].Adapter.Detached = true
			})
		}
	}

	done := make([]sim.Time, n)
	k.Spawn("primary", func(pr *sim.Proc) { pri.Run(pr); done[0] = pr.Now() })
	for i, bak := range baks {
		i, bak := i, bak
		k.Spawn(fmt.Sprintf("backup%d", i+1), func(pr *sim.Proc) { bak.Run(pr); done[i+1] = pr.Now() })
	}
	k.RunUntil(20000 * sim.Second)

	res := RunResult{PrimaryStats: pri.Stats}
	if len(baks) > 0 {
		res.BackupStats = baks[0].Stats
	}
	for _, b := range baks {
		if b.Promoted() {
			res.Promoted = true
		}
	}
	// Report from the authoritative survivor: the primary if it never
	// failed, else the last promoted surviving node, else any node whose
	// guest HALTED before its processor was killed (a replica that
	// completed the workload and was failstopped afterwards still
	// produced the deterministic result).
	authority := -1
	switch {
	case cluster.Nodes[0].HV.Halted() && !pri.Failed():
		authority = 0
	default:
		for i := len(baks) - 1; i >= 0; i-- {
			if baks[i].Promoted() && baks[i].HV.Halted() && !baks[i].Failed() {
				authority = i + 1
				break
			}
		}
		if authority < 0 {
			for i := len(baks) - 1; i >= 0; i-- {
				if baks[i].HV.Halted() {
					authority = i + 1
					break
				}
			}
		}
		if authority < 0 && cluster.Nodes[0].HV.Halted() {
			authority = 0
		}
	}
	if authority < 0 {
		panic(fmt.Sprintf("harness: replicated run did not complete (pri pc=%#x promoted=%v)",
			cluster.Nodes[0].M.PC, res.Promoted))
	}
	res.Time = done[authority]
	res.Guest = guest.ReadResult(cluster.Nodes[authority].M)
	res.HVStats = cluster.Nodes[authority].HV.Stats
	for i := 0; i <= authority; i++ {
		res.Console += cluster.Nodes[i].Console.Output()
	}
	return res
}

// Measure computes normalized performance for one configuration: the
// replicated completion time over the bare completion time.
func Measure(scale Scale, kind uint32, el uint64, proto replication.Protocol, link netsim.LinkConfig) (np float64, bare, repl RunResult) {
	w := scale.workload(kind)
	bare = RunBare(1, w, scale.Disk)
	np, repl = measureAgainst(bare, scale, w, el, proto, link)
	return np, bare, repl
}

// measureAgainst runs the replicated half of a measurement against a
// precomputed bare baseline (RunBare is deterministic, so experiment
// drivers compute each workload's baseline once and share it across
// their figure points).
func measureAgainst(bare RunResult, scale Scale, w guest.Workload, el uint64, proto replication.Protocol, link netsim.LinkConfig) (float64, RunResult) {
	repl := RunReplicated(ReplicatedOptions{
		Seed:        1,
		Workload:    w,
		Disk:        scale.Disk,
		EpochLength: el,
		Protocol:    proto,
		Link:        link,
	})
	if bare.Guest.Panic != 0 || repl.Guest.Panic != 0 {
		panic(fmt.Sprintf("harness: guest panic (bare %#x, repl %#x)", bare.Guest.Panic, repl.Guest.Panic))
	}
	if bare.Guest.Checksum != repl.Guest.Checksum {
		panic(fmt.Sprintf("harness: checksum mismatch bare %#x repl %#x", bare.Guest.Checksum, repl.Guest.Checksum))
	}
	return float64(repl.Time) / float64(bare.Time), repl
}
