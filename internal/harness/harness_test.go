package harness

import (
	"math"
	"strings"
	"testing"

	"repro/internal/guest"
	"repro/internal/netsim"
	"repro/internal/replication"
	"repro/internal/sim"
)

func TestBareVsReplicatedCPU(t *testing.T) {
	np, bare, repl := Measure(QuickScale(), guest.WorkloadCPU, 4096, replication.ProtocolOld, netsim.LinkConfig{})
	if np <= 1 {
		t.Errorf("NP = %.3f, want > 1", np)
	}
	if bare.Console != repl.Console {
		t.Errorf("console mismatch: %q vs %q", bare.Console, repl.Console)
	}
	if repl.BackupStats.Divergences != 0 {
		t.Errorf("divergences = %d", repl.BackupStats.Divergences)
	}
	// The paper's CPU workload at 4K epochs: NP ≈ 6.5. Our simulator
	// should land in the same regime (dominated by hepoch/EL).
	if np < 3 || np > 12 {
		t.Errorf("NP@4K = %.2f, expected the paper's regime (~6.5)", np)
	}
}

func TestCPUNPDecreasesWithEpochLength(t *testing.T) {
	scale := QuickScale()
	var last float64 = math.Inf(1)
	for _, el := range []uint64{1024, 4096, 16384} {
		np, _, _ := Measure(scale, guest.WorkloadCPU, el, replication.ProtocolOld, netsim.LinkConfig{})
		if np >= last {
			t.Errorf("NP(%d) = %.2f not below NP at previous shorter epoch (%.2f)", el, np, last)
		}
		last = np
	}
}

func TestCPUMeasurementsTrackPaperShape(t *testing.T) {
	// The measured curve should be within ~35%% of the paper's quoted
	// values: the boundary cost (ack round trip on the Ethernet model)
	// matches the paper's measured hepoch by construction.
	paper := map[uint64]float64{1024: 22.24, 2048: 11.83, 4096: 6.50, 8192: 3.83}
	scale := QuickScale()
	for el, want := range paper {
		np, _, _ := Measure(scale, guest.WorkloadCPU, el, replication.ProtocolOld, netsim.LinkConfig{})
		if math.Abs(np-want)/want > 0.35 {
			t.Errorf("NP(%d) = %.2f, paper %.2f (>35%% off)", el, np, want)
		}
	}
}

func TestDiskWorkloadsRun(t *testing.T) {
	scale := QuickScale()
	for _, kind := range []uint32{guest.WorkloadDiskWrite, guest.WorkloadDiskRead} {
		np, _, repl := Measure(scale, kind, 4096, replication.ProtocolOld, netsim.LinkConfig{})
		if np <= 1 {
			t.Errorf("kind %d: NP = %.3f, want > 1", kind, np)
		}
		if np > 4 {
			t.Errorf("kind %d: NP = %.3f, unreasonably high for an I/O workload", kind, np)
		}
		if repl.BackupStats.Divergences != 0 {
			t.Errorf("kind %d: divergences", kind)
		}
	}
}

func TestReadNPAboveWriteNP(t *testing.T) {
	// Figure 3's key shape: reads cost more than writes under
	// replication (the block must be forwarded to the backup).
	scale := QuickScale()
	wnp, _, _ := Measure(scale, guest.WorkloadDiskWrite, 4096, replication.ProtocolOld, netsim.LinkConfig{})
	rnp, _, _ := Measure(scale, guest.WorkloadDiskRead, 4096, replication.ProtocolOld, netsim.LinkConfig{})
	if rnp <= wnp {
		t.Errorf("read NP %.3f <= write NP %.3f", rnp, wnp)
	}
}

func TestNewProtocolImprovesCPU(t *testing.T) {
	scale := QuickScale()
	oldNP, _, _ := Measure(scale, guest.WorkloadCPU, 4096, replication.ProtocolOld, netsim.LinkConfig{})
	newNP, _, _ := Measure(scale, guest.WorkloadCPU, 4096, replication.ProtocolNew, netsim.LinkConfig{})
	if newNP >= oldNP {
		t.Errorf("new NP %.2f >= old NP %.2f", newNP, oldNP)
	}
	// Table 1 shape: the improvement is large for the CPU workload
	// (paper: 6.50 -> 3.21 at 4K).
	if newNP > 0.8*oldNP {
		t.Errorf("new NP %.2f is not a substantial improvement over %.2f", newNP, oldNP)
	}
}

func TestATMImprovesOverEthernet(t *testing.T) {
	scale := QuickScale()
	eth, _, _ := Measure(scale, guest.WorkloadCPU, 4096, replication.ProtocolOld, netsim.Ethernet10(""))
	atm, _, _ := Measure(scale, guest.WorkloadCPU, 4096, replication.ProtocolOld, netsim.ATM155(""))
	if atm >= eth {
		t.Errorf("ATM NP %.2f >= Ethernet NP %.2f (Figure 4 shape violated)", atm, eth)
	}
}

func TestFailoverDuringWorkload(t *testing.T) {
	scale := QuickScale()
	w := scale.workload(guest.WorkloadDiskWrite)
	bare := RunBare(1, w, scale.Disk)
	repl := RunReplicated(ReplicatedOptions{
		Seed: 1, Workload: w, Disk: scale.Disk,
		EpochLength: 4096, Protocol: replication.ProtocolOld,
		FailPrimaryAt: 3 * sim.Millisecond,
	})
	if !repl.Promoted {
		t.Fatal("no promotion")
	}
	if repl.Guest.Panic != 0 {
		t.Fatalf("guest panic %#x", repl.Guest.Panic)
	}
	if repl.Guest.Checksum != bare.Guest.Checksum {
		t.Errorf("checksum after failover %#x != bare %#x", repl.Guest.Checksum, bare.Guest.Checksum)
	}
	if repl.Time <= bare.Time {
		t.Error("failover run faster than bare?")
	}
}

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("table regeneration is slow")
	}
	rows := Table1(QuickScale())
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	for _, r := range rows {
		if r.NewNP > r.OldNP*1.02 {
			t.Errorf("%s @%d: new %.2f worse than old %.2f", r.Workload, r.EL, r.NewNP, r.OldNP)
		}
		if r.OldNP <= 1 {
			t.Errorf("%s @%d: old NP %.2f <= 1", r.Workload, r.EL, r.OldNP)
		}
	}
	// CPU column decreasing in EL, as in the paper.
	var cpu []Table1Row
	for _, r := range rows {
		if r.Workload == "cpu" {
			cpu = append(cpu, r)
		}
	}
	for i := 1; i < len(cpu); i++ {
		if cpu[i].OldNP >= cpu[i-1].OldNP {
			t.Errorf("cpu old NP not decreasing: %v then %v", cpu[i-1].OldNP, cpu[i].OldNP)
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "cpu") {
		t.Error("FormatTable1 output malformed")
	}
}

func TestFigure2Generation(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration is slow")
	}
	points, end := Figure2(QuickScale())
	if len(points) != 32 {
		t.Fatalf("points = %d", len(points))
	}
	nMeasured := 0
	for _, p := range points {
		if !math.IsNaN(p.Measured) {
			nMeasured++
			if math.Abs(p.Measured-p.Predicted)/p.Predicted > 0.4 {
				t.Errorf("EL %.0f: measured %.2f far from predicted %.2f", p.EL, p.Measured, p.Predicted)
			}
		}
	}
	if nMeasured != 4 {
		t.Errorf("measured points = %d, want 4", nMeasured)
	}
	if math.Abs(end.Predicted-1.24) > 0.01 {
		t.Errorf("endpoint = %.3f, paper 1.24", end.Predicted)
	}
}

func TestFormatFigure(t *testing.T) {
	pts := []FigurePoint{
		{EL: 1024, Predicted: 2.0, Measured: 2.1},
		{EL: 1500, Predicted: 1.9, Measured: math.NaN()},
		{EL: 2048, Predicted: 1.8, Measured: math.NaN()},
	}
	out := FormatFigure("Fig", map[string][]FigurePoint{"x": pts}, []string{"x"})
	if !strings.Contains(out, "1024") || !strings.Contains(out, "2048") {
		t.Errorf("missing rows:\n%s", out)
	}
	if strings.Contains(out, "1500") {
		t.Errorf("non-measured non-pow2 row kept:\n%s", out)
	}
}

func TestDeliveryDelayGrowsWithEpochLength(t *testing.T) {
	// §4.2: "Increases to epoch length EL causes delayW(EL) and
	// delayR(EL) to increase, because interrupts from the disk are
	// buffered by the hypervisor for a longer period." This is the
	// mechanism behind Figure 3's upward drift at large EL.
	scale := QuickScale()
	delayAt := func(el uint64) sim.Time {
		_, _, repl := Measure(scale, guest.WorkloadDiskWrite, el, replication.ProtocolOld, netsim.LinkConfig{})
		if repl.HVStats.DeliveryDelayCount == 0 {
			t.Fatalf("EL=%d: no delivery delays recorded", el)
		}
		return repl.HVStats.MeanDeliveryDelay()
	}
	small := delayAt(1024)
	large := delayAt(32768)
	if large <= small {
		t.Errorf("mean delivery delay: EL=32K %v <= EL=1K %v", large, small)
	}
	// The delay is bounded by roughly one epoch's wall time.
	if large > 32768*20*sim.Nanosecond+5*sim.Millisecond {
		t.Errorf("delay %v implausibly large", large)
	}
}

func TestScalesDistinct(t *testing.T) {
	q, p := QuickScale(), PaperScale()
	if q.Name == p.Name {
		t.Error("scales share a name")
	}
	if p.Disk.ReadLatency != 0 {
		t.Error("PaperScale should use default (paper) disk latencies")
	}
}
