package harness

import (
	"fmt"
	"strings"

	"repro/internal/clientsim"
	"repro/internal/guest"
	"repro/internal/netsim"
	"repro/internal/replication"
	"repro/internal/session"
	"repro/internal/sim"
)

// ServiceRow reports one configuration of the replicated-service
// experiment: the client population's observed latency distribution and
// (for the replicated rows, which failstop the primary mid-load) the
// failover blackout window — last reply arrival before the failure to
// first reply arrival after it. Times are virtual microseconds.
type ServiceRow struct {
	Config      string  `json:"config"` // "bare" or "<protocol>/<link>"
	Requests    int     `json:"requests"`
	Answered    int     `json:"answered"`
	Retransmits uint64  `json:"retransmits"`
	P50         float64 `json:"p50_us"`
	P99         float64 `json:"p99_us"`
	P999        float64 `json:"p999_us"`
	Max         float64 `json:"max_us"`
	Blackout    float64 `json:"blackout_us"`
}

// serviceLoad sizes the service experiment for a scale: request count,
// per-request guest compute, and the open-loop arrival process. The
// client timeout sits far above the healthy replicated tail (epoch
// boundaries plus acknowledgment waits put it near 5 ms on the default
// configuration), so retransmissions isolate the failover blackout
// instead of firing on ordinary replication overhead.
func serviceLoad(scale Scale) (w guest.Workload, cl clientsim.Config, failAt, detect sim.Time) {
	requests, work := uint32(32), uint32(50)
	if scale.Name == "paper" {
		requests, work = 96, 200
	}
	w = guest.ServeRequests(requests, work)
	cl = clientsim.Config{
		Clients:  8,
		Requests: int(requests),
		MeanGap:  500 * sim.Microsecond,
		Timeout:  50 * sim.Millisecond,
	}
	return w, cl, 6 * sim.Millisecond, 3 * sim.Millisecond
}

// runService executes one service configuration to completion and
// measures the client population. A zero failAt means no failure is
// injected (and no blackout is reported).
func runService(o session.Options, failAt sim.Time) (session.Result, ServiceRow) {
	e := session.New(o)
	defer e.Close()
	if err := e.RunToCompletion(nil); err != nil {
		panic(fmt.Sprintf("harness: service: %v", err))
	}
	r, err := e.Result()
	if err != nil {
		panic(fmt.Sprintf("harness: service: %v", err))
	}
	m := e.Clients().Measure()
	row := ServiceRow{
		Requests:    m.Requests,
		Answered:    m.Answered,
		Retransmits: m.Retransmits,
		P50:         us(m.P50),
		P99:         us(m.P99),
		P999:        us(m.P999),
		Max:         us(m.Max),
	}
	if failAt != 0 {
		row.Blackout = us(e.Clients().Blackout(failAt))
	}
	return r, row
}

func us(t sim.Time) float64 { return float64(t) / float64(sim.Microsecond) }

// Service runs the replicated-network-service experiment: the guest
// request/response server under open-loop client load, bare and
// replicated under both protocols on both links, with the primary
// failstopped mid-load in every replicated configuration. The paper's
// transparency claim is enforced, not just measured: each replicated
// reply transcript must be byte-identical to the bare run's (exactly
// once, in order, across the failover) or the experiment panics.
func Service(scale Scale) []ServiceRow {
	w, cl, failAt, detect := serviceLoad(scale)

	bare, bareRow := runService(session.Options{
		Seed:       1,
		Program:    session.WorkloadProgram(w),
		Bare:       true,
		Disk:       scale.Disk,
		ClientLoad: &cl,
	}, 0)
	bareRow.Config = "bare"
	if bare.Guest.Panic != 0 {
		panic(fmt.Sprintf("harness: service: bare guest panic %#x", bare.Guest.Panic))
	}
	if bareRow.Answered != bareRow.Requests {
		panic(fmt.Sprintf("harness: service: bare answered %d of %d", bareRow.Answered, bareRow.Requests))
	}

	// The lock-step rows come first (their code path is untouched by the
	// output-commit engine, so their numbers are stable across its
	// introduction); the +oc rows run the identical load through the
	// output-commit engine at its service operating point: a short base
	// epoch (boundaries are cheap once simulations stay resident and
	// frames coalesce) and a commit window deep enough to cover the
	// acknowledgment round-trip at that epoch rate.
	oc := replication.OutputCommit{Enabled: true, Window: 16, Adaptive: true}
	type cfg struct {
		name  string
		proto replication.Protocol
		link  netsim.LinkConfig
		epoch uint64
		oc    replication.OutputCommit
	}
	cfgs := []cfg{
		{"old/ethernet", replication.ProtocolOld, netsim.Ethernet10(""), 1024, replication.OutputCommit{}},
		{"old/atm", replication.ProtocolOld, netsim.ATM155(""), 1024, replication.OutputCommit{}},
		{"new/ethernet", replication.ProtocolNew, netsim.Ethernet10(""), 1024, replication.OutputCommit{}},
		{"new/atm", replication.ProtocolNew, netsim.ATM155(""), 1024, replication.OutputCommit{}},
		{"old/ethernet+oc", replication.ProtocolOld, netsim.Ethernet10(""), 256, oc},
		{"old/atm+oc", replication.ProtocolOld, netsim.ATM155(""), 256, oc},
		{"new/ethernet+oc", replication.ProtocolNew, netsim.Ethernet10(""), 256, oc},
		{"new/atm+oc", replication.ProtocolNew, netsim.ATM155(""), 256, oc},
	}
	rows := make([]ServiceRow, len(cfgs))
	scale.forEach(len(cfgs), func(i int) {
		c := cfgs[i]
		r, row := runService(session.Options{
			Seed:          1,
			Program:       session.WorkloadProgram(w),
			Disk:          scale.Disk,
			EpochLength:   c.epoch,
			Protocol:      c.proto,
			Link:          c.link,
			FailPrimaryAt: failAt,
			DetectTimeout: detect,
			ClientLoad:    &cl,
			OutputCommit:  c.oc,
		}, failAt)
		row.Config = c.name
		if r.Guest.Panic != 0 {
			panic(fmt.Sprintf("harness: service: %s guest panic %#x", c.name, r.Guest.Panic))
		}
		if !r.Promoted {
			panic(fmt.Sprintf("harness: service: %s: primary failstop produced no promotion", c.name))
		}
		if r.NetReplies != bare.NetReplies || r.Guest.Checksum != bare.Guest.Checksum {
			panic(fmt.Sprintf("harness: service: %s reply stream diverged from bare (%d vs %d bytes, checksum %#x vs %#x)",
				c.name, len(r.NetReplies), len(bare.NetReplies), r.Guest.Checksum, bare.Guest.Checksum))
		}
		if row.Blackout <= 0 {
			panic(fmt.Sprintf("harness: service: %s: no finite blackout window around the failover", c.name))
		}
		rows[i] = row
	})
	return append([]ServiceRow{bareRow}, rows...)
}

// FormatService renders the service experiment as a text table.
func FormatService(rows []ServiceRow) string {
	var b strings.Builder
	b.WriteString("Replicated network service under client load\n")
	b.WriteString("(request/response guest server; primary failstopped mid-load in\n")
	b.WriteString("every replicated configuration; latencies are client-observed\n")
	b.WriteString("virtual time; blackout = last reply before the failure to first\n")
	b.WriteString("reply after it)\n\n")
	fmt.Fprintf(&b, "%-14s %-9s %-9s %-7s %10s %10s %10s %12s\n",
		"config", "requests", "answered", "rexmit", "p50 (us)", "p99 (us)", "p999 (us)", "blackout (us)")
	for _, r := range rows {
		blackout := "-"
		if r.Blackout > 0 {
			blackout = fmt.Sprintf("%.1f", r.Blackout)
		}
		fmt.Fprintf(&b, "%-14s %-9d %-9d %-7d %10.1f %10.1f %10.1f %12s\n",
			r.Config, r.Requests, r.Answered, r.Retransmits, r.P50, r.P99, r.P999, blackout)
	}
	return b.String()
}
