package harness

import (
	"fmt"

	"repro/internal/replication"
	"repro/internal/sim"
)

// CampaignResult summarizes one failure-injection run.
type CampaignResult struct {
	FailAt     sim.Time
	Promoted   bool
	Checksum   uint32
	Consistent bool
	Detail     string
}

// FailureCampaign sweeps primary failstop times across a workload's
// duration and verifies, for each, the paper's §2 guarantees:
//
//  1. the workload completes (the backup takes over when needed);
//  2. the guest-visible result equals the bare single-machine result
//     (instructions executed by the backup extend the primary's
//     sequence);
//  3. the environment is consistent with one processor: the disk log
//     contains, per block, only identical-content repetitions.
//
// Returns one result per injection time. times values at or beyond the
// workload's natural completion exercise the no-failover path.
// Each injection is an independent replicated simulation, so the sweep
// fans across SetWorkers goroutines; results keep the order of times.
func FailureCampaign(scale Scale, kind uint32, el uint64, proto replication.Protocol, times []sim.Time) []CampaignResult {
	w := scale.workload(kind)
	bare := RunBare(1, w, scale.Disk)
	out := make([]CampaignResult, len(times))
	scale.forEach(len(times), func(i int) {
		at := times[i]
		r := CampaignResult{FailAt: at}
		repl := RunReplicated(ReplicatedOptions{
			Seed: 1, Workload: w, Disk: scale.Disk,
			EpochLength: el, Protocol: proto,
			FailPrimaryAt: at,
		})
		r.Promoted = repl.Promoted
		r.Checksum = repl.Guest.Checksum
		switch {
		case repl.Guest.Panic != 0:
			r.Detail = fmt.Sprintf("guest panic %#x", repl.Guest.Panic)
		case repl.Guest.Checksum != bare.Guest.Checksum:
			r.Detail = fmt.Sprintf("checksum %#x != bare %#x", repl.Guest.Checksum, bare.Guest.Checksum)
		default:
			r.Consistent = true
		}
		out[i] = r
	})
	return out
}

// CampaignTimes builds n injection times spread over [lo, hi) with a
// deterministic low-discrepancy pattern (so sweeps cover boundaries,
// mid-epochs, and I/O windows without a fixed stride's aliasing).
func CampaignTimes(lo, hi sim.Time, n int) []sim.Time {
	out := make([]sim.Time, 0, n)
	span := float64(hi - lo)
	x := 0.0
	const golden = 0.6180339887498949
	for i := 0; i < n; i++ {
		x += golden
		x -= float64(int(x))
		out = append(out, lo+sim.Time(x*span))
	}
	return out
}
