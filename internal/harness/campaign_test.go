package harness

import (
	"testing"

	"repro/internal/guest"
	"repro/internal/replication"
	"repro/internal/scsi"
	"repro/internal/sim"
)

// campaignScale keeps injection sweeps fast.
func campaignScale() Scale {
	s := QuickScale()
	s.DiskOps = 3
	s.Disk = scsi.DiskConfig{
		ReadLatency:  400 * sim.Microsecond,
		WriteLatency: 500 * sim.Microsecond,
	}
	s.CPUIters = 3000
	return s
}

// TestFailureCampaignDiskWrite is the paper's core claim under fire: no
// matter when the primary failstops — mid-epoch, mid-I/O, inside the
// two-generals window, during boundary coordination — the workload
// completes with the single-machine result and a consistent environment.
func TestFailureCampaignDiskWrite(t *testing.T) {
	scale := campaignScale()
	// The replicated write workload runs ~15-30 ms at this scale; sweep
	// the first 20 ms densely.
	times := CampaignTimes(100*sim.Microsecond, 20*sim.Millisecond, 12)
	results := FailureCampaign(scale, guest.WorkloadDiskWrite, 4096, replication.ProtocolOld, times)
	promotions := 0
	for _, r := range results {
		if !r.Consistent {
			t.Errorf("fail at %v: %s", r.FailAt, r.Detail)
		}
		if r.Promoted {
			promotions++
		}
	}
	if promotions == 0 {
		t.Error("campaign never exercised failover")
	}
}

func TestFailureCampaignDiskRead(t *testing.T) {
	scale := campaignScale()
	times := CampaignTimes(200*sim.Microsecond, 15*sim.Millisecond, 8)
	results := FailureCampaign(scale, guest.WorkloadDiskRead, 2048, replication.ProtocolOld, times)
	for _, r := range results {
		if !r.Consistent {
			t.Errorf("fail at %v: %s", r.FailAt, r.Detail)
		}
	}
}

func TestFailureCampaignNewProtocol(t *testing.T) {
	// The revised protocol's window (§4.3): unacknowledged messages +
	// failstop. The I/O gate must keep the environment consistent.
	scale := campaignScale()
	times := CampaignTimes(100*sim.Microsecond, 12*sim.Millisecond, 8)
	results := FailureCampaign(scale, guest.WorkloadDiskWrite, 4096, replication.ProtocolNew, times)
	for _, r := range results {
		if !r.Consistent {
			t.Errorf("fail at %v: %s", r.FailAt, r.Detail)
		}
	}
}

func TestFailureCampaignCPU(t *testing.T) {
	scale := campaignScale()
	times := CampaignTimes(50*sim.Microsecond, 5*sim.Millisecond, 6)
	results := FailureCampaign(scale, guest.WorkloadCPU, 1024, replication.ProtocolOld, times)
	for _, r := range results {
		if !r.Consistent {
			t.Errorf("fail at %v: %s", r.FailAt, r.Detail)
		}
	}
}

func TestCampaignTimesCoverage(t *testing.T) {
	times := CampaignTimes(0, 1000, 100)
	if len(times) != 100 {
		t.Fatalf("len = %d", len(times))
	}
	// Low-discrepancy: all within range, reasonably spread (no half
	// empty).
	lowHalf := 0
	for _, x := range times {
		if x < 0 || x >= 1000 {
			t.Fatalf("out of range: %v", x)
		}
		if x < 500 {
			lowHalf++
		}
	}
	if lowHalf < 30 || lowHalf > 70 {
		t.Errorf("poor spread: %d/100 in low half", lowHalf)
	}
}
