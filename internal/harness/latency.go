package harness

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/netsim"
	"repro/internal/replication"
	"repro/internal/session"
	"repro/internal/sim"
)

// LatencyRow is one point of the output-commit latency/overhead
// frontier: the replicated service's client-observed latency at one
// (epoch length, commit window) coordinate, healthy (no failure
// injected), against the bare baseline. Times are virtual microseconds.
type LatencyRow struct {
	Config string `json:"config"` // "bare" or "<protocol>/<link>"
	Epoch  uint64 `json:"epoch"`
	// Window is the output-commit acknowledgment-window depth (0 =
	// classic lock-step protocol); Adaptive marks output-triggered
	// epoch boundaries.
	Window   int     `json:"window"`
	Adaptive bool    `json:"adaptive"`
	P50      float64 `json:"p50_us"`
	P99      float64 `json:"p99_us"`
	// CommitP50 is the median output-commit latency (generation of an
	// epoch's first deferred output to its release; zero for lock-step
	// rows, which gate instead of deferring).
	CommitP50 float64 `json:"commit_p50_us"`
	// Overhead is P50 normalized to the bare run's P50 — the frontier's
	// y axis.
	Overhead float64 `json:"overhead_p50"`
}

// latencyPoints is the sweep grid: every epoch length crossed with
// every commit-window depth. Window 0 is the lock-step protocol (the
// row the engine is measured against); 1 is classic output commit;
// deeper windows pipeline acknowledgments.
var (
	latencyEpochs  = []uint64{256, 1024, 4096}
	latencyWindows = []struct {
		window   int
		adaptive bool
	}{
		{0, false},
		{1, false},
		{1, true},
		{4, true},
		{16, true},
	}
)

// Latency sweeps the output-commit latency/overhead frontier: the
// replicated service under open-loop client load (no failure injected),
// old protocol on Ethernet, at every epoch-length x window-depth grid
// point. The lock-step rows (window 0) anchor the frontier; the engine
// rows show how much of the replication overhead the output-commit
// path removes and what window depth it takes.
func Latency(scale Scale) []LatencyRow {
	w, cl, _, _ := serviceLoad(scale)

	bare, bareRow := runService(session.Options{
		Seed:       1,
		Program:    session.WorkloadProgram(w),
		Bare:       true,
		Disk:       scale.Disk,
		ClientLoad: &cl,
	}, 0)
	if bare.Guest.Panic != 0 {
		panic(fmt.Sprintf("harness: latency: bare guest panic %#x", bare.Guest.Panic))
	}
	rows := []LatencyRow{{Config: "bare", P50: bareRow.P50, P99: bareRow.P99, Overhead: 1}}

	type point struct {
		epoch    uint64
		window   int
		adaptive bool
	}
	var grid []point
	for _, el := range latencyEpochs {
		for _, wd := range latencyWindows {
			grid = append(grid, point{el, wd.window, wd.adaptive})
		}
	}
	out := make([]LatencyRow, len(grid))
	scale.forEach(len(grid), func(i int) {
		p := grid[i]
		o := session.Options{
			Seed:        1,
			Program:     session.WorkloadProgram(w),
			Disk:        scale.Disk,
			EpochLength: p.epoch,
			Protocol:    replication.ProtocolOld,
			Link:        netsim.Ethernet10(""),
			ClientLoad:  &cl,
		}
		if p.window > 0 {
			o.OutputCommit = replication.OutputCommit{Enabled: true, Window: p.window, Adaptive: p.adaptive}
		}
		e := session.New(o)
		defer e.Close()
		if err := e.RunToCompletion(nil); err != nil {
			panic(fmt.Sprintf("harness: latency: epoch=%d window=%d: %v", p.epoch, p.window, err))
		}
		r, err := e.Result()
		if err != nil {
			panic(fmt.Sprintf("harness: latency: %v", err))
		}
		if r.NetReplies != bare.NetReplies || r.Guest.Checksum != bare.Guest.Checksum {
			panic(fmt.Sprintf("harness: latency: epoch=%d window=%d reply stream diverged from bare", p.epoch, p.window))
		}
		m := e.Clients().Measure()
		row := LatencyRow{
			Config:   "old/ethernet",
			Epoch:    p.epoch,
			Window:   p.window,
			Adaptive: p.adaptive,
			P50:      us(m.P50),
			P99:      us(m.P99),
			Overhead: us(m.P50) / bareRow.P50,
		}
		if lats := e.CommitLatencies(); len(lats) > 0 {
			sorted := make([]sim.Time, len(lats))
			copy(sorted, lats)
			sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
			row.CommitP50 = us(sorted[len(sorted)/2])
		}
		out[i] = row
	})
	return append(rows, out...)
}

// FormatLatency renders the frontier as a text table.
func FormatLatency(rows []LatencyRow) string {
	var b strings.Builder
	b.WriteString("Output-commit latency/overhead frontier\n")
	b.WriteString("(replicated request/response service, old protocol on Ethernet,\n")
	b.WriteString("no failure injected; window 0 = lock-step protocol; overhead is\n")
	b.WriteString("client-observed p50 normalized to bare)\n\n")
	fmt.Fprintf(&b, "%-14s %-6s %-9s %10s %10s %14s %9s\n",
		"config", "epoch", "window", "p50 (us)", "p99 (us)", "commit p50", "overhead")
	for _, r := range rows {
		win := "-"
		if r.Window > 0 {
			win = fmt.Sprint(r.Window)
			if r.Adaptive {
				win += "+a"
			}
		}
		commit := "-"
		if r.CommitP50 > 0 {
			commit = fmt.Sprintf("%.1f", r.CommitP50)
		}
		epoch := "-"
		if r.Epoch > 0 {
			epoch = fmt.Sprint(r.Epoch)
		}
		fmt.Fprintf(&b, "%-14s %-6s %-9s %10.1f %10.1f %14s %9.2f\n",
			r.Config, epoch, win, r.P50, r.P99, commit, r.Overhead)
	}
	return b.String()
}
