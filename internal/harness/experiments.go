package harness

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/guest"
	"repro/internal/machine"
	"repro/internal/netsim"
	"repro/internal/perfmodel"
	"repro/internal/replication"
)

// Table1Row is one cell group of the paper's Table 1: a workload at an
// epoch length under both protocols, measured on the simulator, next to
// the paper's values.
type Table1Row struct {
	Workload string
	EL       uint64
	OldNP    float64
	NewNP    float64
	PaperOld float64
	PaperNew float64
}

// workloadKinds maps table names to guest workload kinds.
var workloadKinds = map[string]uint32{
	"cpu":   guest.WorkloadCPU,
	"write": guest.WorkloadDiskWrite,
	"read":  guest.WorkloadDiskRead,
}

// Table1 regenerates the paper's Table 1 on the simulator: the three
// workloads at epoch lengths 1K/2K/4K/8K under the original (§2) and
// revised (§4.3) protocols.
func Table1(scale Scale) []Table1Row {
	paper := perfmodel.Table1Paper()
	var rows []Table1Row
	for _, wl := range []string{"cpu", "write", "read"} {
		kind := workloadKinds[wl]
		w := scale.workload(kind)
		bare := RunBare(1, w, scale.Disk)
		for _, el := range []uint64{1024, 2048, 4096, 8192} {
			row := Table1Row{Workload: wl, EL: el}
			row.PaperOld = paper[wl][int(el)][0]
			row.PaperNew = paper[wl][int(el)][1]
			for _, proto := range []replication.Protocol{replication.ProtocolOld, replication.ProtocolNew} {
				repl := RunReplicated(ReplicatedOptions{
					Seed: 1, Workload: w, Disk: scale.Disk,
					EpochLength: el, Protocol: proto,
				})
				check(bare, repl)
				np := float64(repl.Time) / float64(bare.Time)
				if proto == replication.ProtocolOld {
					row.OldNP = np
				} else {
					row.NewNP = np
				}
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// check panics on guest-visible inconsistency between a bare run and a
// replicated run of the same workload.
func check(bare, repl RunResult) {
	if bare.Guest.Panic != 0 || repl.Guest.Panic != 0 {
		panic(fmt.Sprintf("harness: guest panic (bare %#x, repl %#x)", bare.Guest.Panic, repl.Guest.Panic))
	}
	if bare.Guest.Checksum != repl.Guest.Checksum {
		panic(fmt.Sprintf("harness: checksum mismatch bare %#x repl %#x",
			bare.Guest.Checksum, repl.Guest.Checksum))
	}
}

// FormatTable1 renders Table 1 next to the paper's numbers.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1. Normalized Performance of Original and Revised Protocol\n")
	fmt.Fprintf(&b, "(measured on the simulator; paper values in parentheses)\n\n")
	fmt.Fprintf(&b, "%-8s %-6s  %-18s %-18s\n", "Workload", "Epoch", "Old", "New")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-6d  %6.2f (%6.2f)    %6.2f (%6.2f)\n",
			r.Workload, r.EL, r.OldNP, r.PaperOld, r.NewNP, r.PaperNew)
	}
	return b.String()
}

// FigurePoint pairs an epoch length with a predicted and (optionally) a
// measured normalized performance. Measured is NaN when not sampled.
type FigurePoint struct {
	EL        float64
	Predicted float64
	Measured  float64
}

// Figure2 regenerates the CPU-intensive figure: the analytic NPC curve
// at paper parameters over 1K..32K, simulator measurements at the
// paper's measured epoch lengths, and the 385K endpoint.
func Figure2(scale Scale) (points []FigurePoint, endpoint FigurePoint) {
	p := perfmodel.PaperCPU()
	measured := map[float64]float64{}
	for _, el := range perfmodel.MeasuredGrid() {
		np, _, _ := Measure(scale, guest.WorkloadCPU, uint64(el), replication.ProtocolOld, netsim.LinkConfig{})
		measured[el] = np
	}
	for _, el := range perfmodel.StandardGrid() {
		fp := FigurePoint{EL: el, Predicted: perfmodel.NPC(p, el), Measured: math.NaN()}
		if m, ok := measured[el]; ok {
			fp.Measured = m
		}
		points = append(points, fp)
	}
	endpoint = FigurePoint{
		EL:        perfmodel.HPUXMaxEpoch,
		Predicted: perfmodel.NPC(p, perfmodel.HPUXMaxEpoch),
		Measured:  math.NaN(),
	}
	return points, endpoint
}

// Figure3 regenerates the I/O figure: predicted NPW/NPR curves plus
// simulator measurements for the disk write and read benchmarks.
func Figure3(scale Scale) (write, read []FigurePoint) {
	w, r := perfmodel.PaperWrite(), perfmodel.PaperRead()
	mw := map[float64]float64{}
	mr := map[float64]float64{}
	for _, el := range perfmodel.MeasuredGrid() {
		np, _, _ := Measure(scale, guest.WorkloadDiskWrite, uint64(el), replication.ProtocolOld, netsim.LinkConfig{})
		mw[el] = np
		np, _, _ = Measure(scale, guest.WorkloadDiskRead, uint64(el), replication.ProtocolOld, netsim.LinkConfig{})
		mr[el] = np
	}
	for _, el := range perfmodel.StandardGrid() {
		fw := FigurePoint{EL: el, Predicted: perfmodel.NPIO(w, el), Measured: math.NaN()}
		fr := FigurePoint{EL: el, Predicted: perfmodel.NPIO(r, el), Measured: math.NaN()}
		if m, ok := mw[el]; ok {
			fw.Measured = m
		}
		if m, ok := mr[el]; ok {
			fr.Measured = m
		}
		write = append(write, fw)
		read = append(read, fr)
	}
	return write, read
}

// Figure4 regenerates the faster-communication figure: predicted NPC
// curves for the 10 Mbps Ethernet and the 155 Mbps ATM link, plus
// simulator measurements on both links at the measured grid.
func Figure4(scale Scale) (ethernet, atm []FigurePoint) {
	base := perfmodel.PaperCPU()
	ethModel := base.WithHEpoch(perfmodel.Ethernet10Model().HEpoch())
	atmModel := base.WithHEpoch(perfmodel.ATM155Model().HEpoch())
	me := map[float64]float64{}
	ma := map[float64]float64{}
	for _, el := range perfmodel.MeasuredGrid() {
		np, _, _ := Measure(scale, guest.WorkloadCPU, uint64(el), replication.ProtocolOld, netsim.Ethernet10(""))
		me[el] = np
		np, _, _ = Measure(scale, guest.WorkloadCPU, uint64(el), replication.ProtocolOld, netsim.ATM155(""))
		ma[el] = np
	}
	for _, el := range perfmodel.StandardGrid() {
		fe := FigurePoint{EL: el, Predicted: perfmodel.NPC(ethModel, el), Measured: math.NaN()}
		fa := FigurePoint{EL: el, Predicted: perfmodel.NPC(atmModel, el), Measured: math.NaN()}
		if m, ok := me[el]; ok {
			fe.Measured = m
		}
		if m, ok := ma[el]; ok {
			fa.Measured = m
		}
		ethernet = append(ethernet, fe)
		atm = append(atm, fa)
	}
	return ethernet, atm
}

// FormatFigure renders a figure's series as a text table (only rows with
// a measurement or on power-of-two epoch lengths, to stay readable).
func FormatFigure(title string, series map[string][]FigurePoint, order []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n\n", title)
	fmt.Fprintf(&b, "%-8s", "EL")
	for _, name := range order {
		fmt.Fprintf(&b, "  %-22s", name)
	}
	fmt.Fprintf(&b, "\n%-8s", "")
	for range order {
		fmt.Fprintf(&b, "  %-10s  %-10s", "predicted", "measured")
	}
	fmt.Fprintln(&b)
	if len(order) == 0 {
		return b.String()
	}
	ref := series[order[0]]
	for i, pt := range ref {
		keep := !math.IsNaN(pt.Measured) || isPow2(int(pt.EL))
		for _, name := range order[1:] {
			if !math.IsNaN(series[name][i].Measured) {
				keep = true
			}
		}
		if !keep {
			continue
		}
		fmt.Fprintf(&b, "%-8.0f", pt.EL)
		for _, name := range order {
			p := series[name][i]
			if math.IsNaN(p.Measured) {
				fmt.Fprintf(&b, "  %-10.2f  %-10s", p.Predicted, "-")
			} else {
				fmt.Fprintf(&b, "  %-10.2f  %-10.2f", p.Predicted, p.Measured)
			}
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// AblationResult reports one §3.2 TLB-takeover ablation configuration.
type AblationResult struct {
	Policy      string
	Takeover    bool
	Divergences int
	TLBFills    uint64
	GuestPanic  uint32
}

// TLBAblation runs the §3.2 demonstration matrix: the memory-stride
// workload under {random, lru} TLB replacement × {takeover on, off}.
// The hazard (divergence) must appear exactly in the random+off cell.
func TLBAblation() []AblationResult {
	var out []AblationResult
	for _, policy := range []string{"random", "lru"} {
		for _, takeover := range []bool{true, false} {
			div := 0
			res := RunReplicated(ReplicatedOptions{
				Seed:          1,
				Workload:      guest.MemoryStride(20000),
				EpochLength:   2048,
				Protocol:      replication.ProtocolOld,
				Machine:       machine.Config{TLBSize: 8, TLBPolicy: policy},
				NoTLBTakeover: !takeover,
				OnDivergence:  func(uint64, uint64, uint64) { div++ },
			})
			out = append(out, AblationResult{
				Policy:      policy,
				Takeover:    takeover,
				Divergences: div,
				TLBFills:    res.HVStats.TLBFills,
				GuestPanic:  res.Guest.Panic,
			})
		}
	}
	return out
}

// FormatAblation renders the ablation matrix.
func FormatAblation(rows []AblationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TLB-takeover ablation (§3.2): memory-stride workload, 8-entry TLB\n\n")
	fmt.Fprintf(&b, "%-10s %-10s %-12s %-10s\n", "policy", "takeover", "divergences", "hv fills")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-10v %-12d %-10d\n", r.Policy, r.Takeover, r.Divergences, r.TLBFills)
	}
	b.WriteString("\nExpected: divergences only with (random, takeover=false) — the\n")
	b.WriteString("nondeterministic hardware the paper found, hidden by the fix.\n")
	return b.String()
}
