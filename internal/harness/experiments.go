package harness

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/guest"
	"repro/internal/machine"
	"repro/internal/netsim"
	"repro/internal/perfmodel"
	"repro/internal/replication"
)

// Table1Row is one cell group of the paper's Table 1: a workload at an
// epoch length under both protocols, measured on the simulator, next to
// the paper's values.
type Table1Row struct {
	Workload string
	EL       uint64
	OldNP    float64
	NewNP    float64
	PaperOld float64
	PaperNew float64
}

// workloadKinds maps table names to guest workload kinds.
var workloadKinds = map[string]uint32{
	"cpu":   guest.WorkloadCPU,
	"write": guest.WorkloadDiskWrite,
	"read":  guest.WorkloadDiskRead,
}

// Table1 regenerates the paper's Table 1 on the simulator: the three
// workloads at epoch lengths 1K/2K/4K/8K under the original (§2) and
// revised (§4.3) protocols. The three bare baselines and the 24 table
// cells are all independent simulations, fanned across SetWorkers
// goroutines; rows are assembled in fixed order afterwards.
func Table1(scale Scale) []Table1Row {
	paper := perfmodel.Table1Paper()
	workloads := []string{"cpu", "write", "read"}
	els := []uint64{1024, 2048, 4096, 8192}
	protos := []replication.Protocol{replication.ProtocolOld, replication.ProtocolNew}

	bares := make([]RunResult, len(workloads))
	scale.forEach(len(workloads), func(i int) {
		bares[i] = RunBare(1, scale.workload(workloadKinds[workloads[i]]), scale.Disk)
	})

	type cell struct{ wl, el, proto int }
	var cells []cell
	for wi := range workloads {
		for ei := range els {
			for pi := range protos {
				cells = append(cells, cell{wi, ei, pi})
			}
		}
	}
	nps := make([]float64, len(cells))
	scale.forEach(len(cells), func(i int) {
		c := cells[i]
		w := scale.workload(workloadKinds[workloads[c.wl]])
		repl := RunReplicated(ReplicatedOptions{
			Seed: 1, Workload: w, Disk: scale.Disk,
			EpochLength: els[c.el], Protocol: protos[c.proto],
		})
		check(bares[c.wl], repl)
		nps[i] = float64(repl.Time) / float64(bares[c.wl].Time)
	})

	var rows []Table1Row
	for i, c := range cells {
		if c.proto == 0 {
			wl, el := workloads[c.wl], els[c.el]
			rows = append(rows, Table1Row{
				Workload: wl, EL: el,
				OldNP: nps[i], NewNP: nps[i+1],
				PaperOld: paper[wl][int(el)][0],
				PaperNew: paper[wl][int(el)][1],
			})
		}
	}
	return rows
}

// check panics on guest-visible inconsistency between a bare run and a
// replicated run of the same workload.
func check(bare, repl RunResult) {
	if bare.Guest.Panic != 0 || repl.Guest.Panic != 0 {
		panic(fmt.Sprintf("harness: guest panic (bare %#x, repl %#x)", bare.Guest.Panic, repl.Guest.Panic))
	}
	if bare.Guest.Checksum != repl.Guest.Checksum {
		panic(fmt.Sprintf("harness: checksum mismatch bare %#x repl %#x",
			bare.Guest.Checksum, repl.Guest.Checksum))
	}
}

// FormatTable1 renders Table 1 next to the paper's numbers.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1. Normalized Performance of Original and Revised Protocol\n")
	fmt.Fprintf(&b, "(measured on the simulator; paper values in parentheses)\n\n")
	fmt.Fprintf(&b, "%-8s %-6s  %-18s %-18s\n", "Workload", "Epoch", "Old", "New")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-6d  %6.2f (%6.2f)    %6.2f (%6.2f)\n",
			r.Workload, r.EL, r.OldNP, r.PaperOld, r.NewNP, r.PaperNew)
	}
	return b.String()
}

// FigurePoint pairs an epoch length with a predicted and (optionally) a
// measured normalized performance. Measured is NaN when not sampled.
type FigurePoint struct {
	EL        float64
	Predicted float64
	Measured  float64
}

// Figure2 regenerates the CPU-intensive figure: the analytic NPC curve
// at paper parameters over 1K..32K, simulator measurements at the
// paper's measured epoch lengths, and the 385K endpoint. The measured
// grid points run concurrently against one shared bare baseline.
func Figure2(scale Scale) (points []FigurePoint, endpoint FigurePoint) {
	p := perfmodel.PaperCPU()
	w := scale.workload(guest.WorkloadCPU)
	bare := RunBare(1, w, scale.Disk)
	grid := perfmodel.MeasuredGrid()
	nps := make([]float64, len(grid))
	scale.forEach(len(grid), func(i int) {
		nps[i], _ = measureAgainst(bare, scale, w, uint64(grid[i]), replication.ProtocolOld, netsim.LinkConfig{})
	})
	measured := map[float64]float64{}
	for i, el := range grid {
		measured[el] = nps[i]
	}
	for _, el := range perfmodel.StandardGrid() {
		fp := FigurePoint{EL: el, Predicted: perfmodel.NPC(p, el), Measured: math.NaN()}
		if m, ok := measured[el]; ok {
			fp.Measured = m
		}
		points = append(points, fp)
	}
	endpoint = FigurePoint{
		EL:        perfmodel.HPUXMaxEpoch,
		Predicted: perfmodel.NPC(p, perfmodel.HPUXMaxEpoch),
		Measured:  math.NaN(),
	}
	return points, endpoint
}

// Figure3 regenerates the I/O figure: predicted NPW/NPR curves plus
// simulator measurements for the disk write and read benchmarks. The
// two baselines and the 2×grid measurement matrix run concurrently.
func Figure3(scale Scale) (write, read []FigurePoint) {
	w, r := perfmodel.PaperWrite(), perfmodel.PaperRead()
	grid := perfmodel.MeasuredGrid()
	kinds := []uint32{guest.WorkloadDiskWrite, guest.WorkloadDiskRead}
	bares := make([]RunResult, len(kinds))
	scale.forEach(len(kinds), func(i int) {
		bares[i] = RunBare(1, scale.workload(kinds[i]), scale.Disk)
	})
	nps := make([]float64, 2*len(grid))
	scale.forEach(len(nps), func(i int) {
		k, gi := i/len(grid), i%len(grid)
		nps[i], _ = measureAgainst(bares[k], scale, scale.workload(kinds[k]),
			uint64(grid[gi]), replication.ProtocolOld, netsim.LinkConfig{})
	})
	mw := map[float64]float64{}
	mr := map[float64]float64{}
	for i, el := range grid {
		mw[el] = nps[i]
		mr[el] = nps[len(grid)+i]
	}
	for _, el := range perfmodel.StandardGrid() {
		fw := FigurePoint{EL: el, Predicted: perfmodel.NPIO(w, el), Measured: math.NaN()}
		fr := FigurePoint{EL: el, Predicted: perfmodel.NPIO(r, el), Measured: math.NaN()}
		if m, ok := mw[el]; ok {
			fw.Measured = m
		}
		if m, ok := mr[el]; ok {
			fr.Measured = m
		}
		write = append(write, fw)
		read = append(read, fr)
	}
	return write, read
}

// Figure4 regenerates the faster-communication figure: predicted NPC
// curves for the 10 Mbps Ethernet and the 155 Mbps ATM link, plus
// simulator measurements on both links at the measured grid.
func Figure4(scale Scale) (ethernet, atm []FigurePoint) {
	base := perfmodel.PaperCPU()
	ethModel := base.WithHEpoch(perfmodel.Ethernet10Model().HEpoch())
	atmModel := base.WithHEpoch(perfmodel.ATM155Model().HEpoch())
	w := scale.workload(guest.WorkloadCPU)
	bare := RunBare(1, w, scale.Disk)
	grid := perfmodel.MeasuredGrid()
	links := []netsim.LinkConfig{netsim.Ethernet10(""), netsim.ATM155("")}
	nps := make([]float64, 2*len(grid))
	scale.forEach(len(nps), func(i int) {
		l, gi := i/len(grid), i%len(grid)
		nps[i], _ = measureAgainst(bare, scale, w, uint64(grid[gi]), replication.ProtocolOld, links[l])
	})
	me := map[float64]float64{}
	ma := map[float64]float64{}
	for i, el := range grid {
		me[el] = nps[i]
		ma[el] = nps[len(grid)+i]
	}
	for _, el := range perfmodel.StandardGrid() {
		fe := FigurePoint{EL: el, Predicted: perfmodel.NPC(ethModel, el), Measured: math.NaN()}
		fa := FigurePoint{EL: el, Predicted: perfmodel.NPC(atmModel, el), Measured: math.NaN()}
		if m, ok := me[el]; ok {
			fe.Measured = m
		}
		if m, ok := ma[el]; ok {
			fa.Measured = m
		}
		ethernet = append(ethernet, fe)
		atm = append(atm, fa)
	}
	return ethernet, atm
}

// FormatFigure renders a figure's series as a text table (only rows with
// a measurement or on power-of-two epoch lengths, to stay readable).
func FormatFigure(title string, series map[string][]FigurePoint, order []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n\n", title)
	fmt.Fprintf(&b, "%-8s", "EL")
	for _, name := range order {
		fmt.Fprintf(&b, "  %-22s", name)
	}
	fmt.Fprintf(&b, "\n%-8s", "")
	for range order {
		fmt.Fprintf(&b, "  %-10s  %-10s", "predicted", "measured")
	}
	fmt.Fprintln(&b)
	if len(order) == 0 {
		return b.String()
	}
	ref := series[order[0]]
	for i, pt := range ref {
		keep := !math.IsNaN(pt.Measured) || isPow2(int(pt.EL))
		for _, name := range order[1:] {
			if !math.IsNaN(series[name][i].Measured) {
				keep = true
			}
		}
		if !keep {
			continue
		}
		fmt.Fprintf(&b, "%-8.0f", pt.EL)
		for _, name := range order {
			p := series[name][i]
			if math.IsNaN(p.Measured) {
				fmt.Fprintf(&b, "  %-10.2f  %-10s", p.Predicted, "-")
			} else {
				fmt.Fprintf(&b, "  %-10.2f  %-10.2f", p.Predicted, p.Measured)
			}
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// AblationResult reports one §3.2 TLB-takeover ablation configuration.
type AblationResult struct {
	Policy      string
	Takeover    bool
	Divergences int
	TLBFills    uint64
	GuestPanic  uint32
}

// TLBAblation runs the §3.2 demonstration matrix: the memory-stride
// workload under {random, lru} TLB replacement × {takeover on, off}.
// The hazard (divergence) must appear exactly in the random+off cell.
// The four cells are independent replicated runs, fanned concurrently
// across the process-global worker count; TLBAblationWorkers takes the
// count explicitly.
func TLBAblation() []AblationResult { return TLBAblationWorkers(0) }

// TLBAblationWorkers is TLBAblation with a per-call worker count
// (0: the deprecated process-global SetWorkers value).
func TLBAblationWorkers(workers int) []AblationResult {
	type cfg struct {
		policy   string
		takeover bool
	}
	var cfgs []cfg
	for _, policy := range []string{"random", "lru"} {
		for _, takeover := range []bool{true, false} {
			cfgs = append(cfgs, cfg{policy, takeover})
		}
	}
	out := make([]AblationResult, len(cfgs))
	ForEachWorkers(workers, len(cfgs), func(i int) {
		c := cfgs[i]
		div := 0
		res := RunReplicated(ReplicatedOptions{
			Seed:          1,
			Workload:      guest.MemoryStride(20000),
			EpochLength:   2048,
			Protocol:      replication.ProtocolOld,
			Machine:       machine.Config{TLBSize: 8, TLBPolicy: c.policy},
			NoTLBTakeover: !c.takeover,
			OnDivergence:  func(uint64, uint64, uint64) { div++ },
		})
		out[i] = AblationResult{
			Policy:      c.policy,
			Takeover:    c.takeover,
			Divergences: div,
			TLBFills:    res.HVStats.TLBFills,
			GuestPanic:  res.Guest.Panic,
		}
	})
	return out
}

// FormatAblation renders the ablation matrix.
func FormatAblation(rows []AblationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TLB-takeover ablation (§3.2): memory-stride workload, 8-entry TLB\n\n")
	fmt.Fprintf(&b, "%-10s %-10s %-12s %-10s\n", "policy", "takeover", "divergences", "hv fills")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-10v %-12d %-10d\n", r.Policy, r.Takeover, r.Divergences, r.TLBFills)
	}
	b.WriteString("\nExpected: divergences only with (random, takeover=false) — the\n")
	b.WriteString("nondeterministic hardware the paper found, hidden by the fix.\n")
	return b.String()
}
