package harness

import (
	"math"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/guest"
	"repro/internal/replication"
	"repro/internal/sim"
)

func TestForEachCoversAllIndices(t *testing.T) {
	defer SetWorkers(1)
	for _, w := range []int{1, 3, 8} {
		SetWorkers(w)
		var hits [57]atomic.Int64
		ForEach(len(hits), func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", w, i, got)
			}
		}
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	defer SetWorkers(1)
	SetWorkers(4)
	defer func() {
		if recover() == nil {
			t.Fatal("worker panic was swallowed")
		}
	}()
	ForEach(8, func(i int) {
		if i == 5 {
			panic("boom")
		}
	})
}

// TestParallelExperimentsDeterministic is the -parallel acceptance
// check in miniature: the same experiment fanned across 4 workers must
// produce results identical to the serial run.
func TestParallelExperimentsDeterministic(t *testing.T) {
	defer SetWorkers(1)
	scale := QuickScale()

	SetWorkers(1)
	f2serial, endSerial := Figure2(scale)
	SetWorkers(4)
	f2par, endPar := Figure2(scale)
	if len(f2serial) != len(f2par) {
		t.Fatalf("point counts differ: %d vs %d", len(f2serial), len(f2par))
	}
	for i := range f2serial {
		a, b := f2serial[i], f2par[i]
		if a.EL != b.EL || a.Predicted != b.Predicted ||
			(math.IsNaN(a.Measured) != math.IsNaN(b.Measured)) ||
			(!math.IsNaN(a.Measured) && a.Measured != b.Measured) {
			t.Fatalf("figure2 point %d differs: serial %+v parallel %+v", i, a, b)
		}
	}
	if endSerial.Predicted != endPar.Predicted {
		t.Fatalf("figure2 endpoint differs")
	}

	SetWorkers(1)
	campSerial := FailureCampaign(scale, guest.WorkloadCPU, 2048,
		replication.ProtocolOld, CampaignTimes(0, 100*sim.Millisecond, 3))
	SetWorkers(3)
	campPar := FailureCampaign(scale, guest.WorkloadCPU, 2048,
		replication.ProtocolOld, CampaignTimes(0, 100*sim.Millisecond, 3))
	if !reflect.DeepEqual(campSerial, campPar) {
		t.Fatalf("campaign differs:\nserial:   %+v\nparallel: %+v", campSerial, campPar)
	}
}
