package harness

import (
	"testing"

	"repro/internal/guest"
	"repro/internal/machine"
	"repro/internal/replication"
	"repro/internal/scsi"
)

// ablationOptions builds a replicated run with a SMALL, NONDETERMINISTIC
// TLB (random replacement, per-chip seeds) under the memory-stride
// workload — the §3.2 hazard scenario.
func ablationOptions(noTakeover bool, div *int) ReplicatedOptions {
	return ReplicatedOptions{
		Seed:        1,
		Workload:    guest.MemoryStride(20000),
		Disk:        scsi.DiskConfig{},
		EpochLength: 2048,
		Protocol:    replication.ProtocolOld,
		Machine: machine.Config{
			TLBSize:   8,
			TLBPolicy: "random",
		},
		NoTLBTakeover: noTakeover,
		OnDivergence: func(epoch uint64, primary, backup uint64) {
			*div++
		},
	}
}

// TestTLBTakeoverAblation reproduces the paper's §3.2 finding end to
// end:
//
//   - WITHOUT the hypervisor's TLB takeover, nondeterministic TLB
//     replacement makes the two replicas' instruction streams diverge
//     (the guests' software miss handlers run at different points);
//   - WITH the takeover (the paper's fix), the same nondeterministic
//     hardware is invisible and the replicas stay in lockstep.
func TestTLBTakeoverAblation(t *testing.T) {
	// Fix ON (default): zero divergences despite random TLBs.
	divOn := 0
	resOn := RunReplicated(ablationOptions(false, &divOn))
	if resOn.Guest.Panic != 0 {
		t.Fatalf("guest panic %#x with takeover", resOn.Guest.Panic)
	}
	if divOn != 0 {
		t.Errorf("takeover ON: %d divergences, want 0 (the §3.2 fix must hide TLB nondeterminism)", divOn)
	}
	if resOn.HVStats.TLBFills == 0 {
		t.Error("takeover ON: no hypervisor TLB fills — the stride workload should miss constantly")
	}

	// Fix OFF: divergence is detected (the hazard is real).
	divOff := 0
	resOff := RunReplicated(ablationOptions(true, &divOff))
	_ = resOff
	if divOff == 0 {
		t.Error("takeover OFF: no divergences detected — the hazard did not manifest")
	}
}

// TestTLBTakeoverDeterministicPolicyNeedsNoFix: with a deterministic
// (LRU) TLB, even the no-takeover configuration stays in lockstep —
// isolating the ROOT CAUSE to replacement nondeterminism, as the paper
// does.
func TestTLBTakeoverDeterministicPolicyNeedsNoFix(t *testing.T) {
	div := 0
	o := ablationOptions(true, &div)
	o.Machine.TLBPolicy = "lru"
	res := RunReplicated(o)
	if res.Guest.Panic != 0 {
		t.Fatalf("guest panic %#x", res.Guest.Panic)
	}
	if div != 0 {
		t.Errorf("LRU TLB without takeover diverged %d times; replacement policy is not the cause?", div)
	}
}
