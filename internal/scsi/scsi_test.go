package scsi

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

// fakeMem is a simple HostMemory for tests.
type fakeMem struct{ data []byte }

func newFakeMem(n int) *fakeMem { return &fakeMem{data: make([]byte, n)} }

func (m *fakeMem) ReadBytes(pa uint32, n int) []byte {
	out := make([]byte, n)
	copy(out, m.data[pa:int(pa)+n])
	return out
}

func (m *fakeMem) WriteBytes(pa uint32, data []byte) {
	copy(m.data[pa:int(pa)+len(data)], data)
}

// rig wires a disk + one adapter + an IRQ flag.
type rig struct {
	k    *sim.Kernel
	disk *Disk
	mem  *fakeMem
	ad   *Adapter
	irqs int
}

func newRig(t *testing.T, cfg DiskConfig) *rig {
	t.Helper()
	r := &rig{k: sim.NewKernel(1)}
	r.disk = NewDisk(r.k, cfg)
	r.mem = newFakeMem(1 << 20)
	r.ad = r.disk.NewAdapter(0, r.mem, func() { r.irqs++ })
	t.Cleanup(r.k.Shutdown)
	return r
}

// command programs the registers and rings the doorbell.
func (r *rig) command(cmd, block, addr, count uint32) {
	r.ad.MMIOStore(RegCmd, 4, cmd)
	r.ad.MMIOStore(RegBlock, 4, block)
	r.ad.MMIOStore(RegAddr, 4, addr)
	r.ad.MMIOStore(RegCount, 4, count)
	r.ad.MMIOStore(RegDoorbell, 4, 1)
}

func (r *rig) status() uint32 {
	v, _ := r.ad.MMIOLoad(RegStatus, 4)
	return v
}

func TestWriteThenRead(t *testing.T) {
	r := newRig(t, DiskConfig{})
	payload := bytes.Repeat([]byte{0xAB}, 8192)
	r.mem.WriteBytes(0x1000, payload)

	r.command(CmdWrite, 7, 0x1000, 8192)
	if r.status()&StatusBusy == 0 {
		t.Fatal("not busy after doorbell")
	}
	r.k.Run()
	if r.status()&StatusDone == 0 {
		t.Fatalf("status = %#x, want done", r.status())
	}
	if r.irqs != 1 {
		t.Errorf("irqs = %d, want 1 (IO1)", r.irqs)
	}
	if !bytes.Equal(r.disk.ReadBlockDirect(7), payload) {
		t.Error("block contents wrong after write")
	}

	// Clear status, read it back to a different address.
	r.ad.MMIOStore(RegStatus, 4, 0xFFFFFFFF)
	r.command(CmdRead, 7, 0x9000, 8192)
	r.k.Run()
	if r.status()&StatusDone == 0 {
		t.Fatalf("read status = %#x", r.status())
	}
	if !bytes.Equal(r.mem.ReadBytes(0x9000, 8192), payload) {
		t.Error("DMA'd read data wrong")
	}
	if r.irqs != 2 {
		t.Errorf("irqs = %d, want 2", r.irqs)
	}
}

func TestServiceTimes(t *testing.T) {
	r := newRig(t, DiskConfig{})
	r.command(CmdWrite, 1, 0, 8192)
	end := r.k.Run()
	if end != 26*sim.Millisecond {
		t.Errorf("write completed at %v, want 26ms (paper)", end)
	}
	r2 := newRig(t, DiskConfig{})
	r2.command(CmdRead, 1, 0, 8192)
	end2 := r2.k.Run()
	want := sim.Time(24.2 * float64(sim.Millisecond))
	if end2 != want {
		t.Errorf("read completed at %v, want 24.2ms (paper)", end2)
	}
}

func TestSerialization(t *testing.T) {
	// Two commands from two adapters share the device: second waits.
	k := sim.NewKernel(1)
	defer k.Shutdown()
	d := NewDisk(k, DiskConfig{})
	mem0, mem1 := newFakeMem(1<<16), newFakeMem(1<<16)
	var done0, done1 sim.Time
	a0 := d.NewAdapter(0, mem0, nil)
	a1 := d.NewAdapter(1, mem1, nil)
	issue := func(a *Adapter) {
		a.MMIOStore(RegCmd, 4, CmdRead)
		a.MMIOStore(RegBlock, 4, 0)
		a.MMIOStore(RegAddr, 4, 0)
		a.MMIOStore(RegCount, 4, 8192)
		a.MMIOStore(RegDoorbell, 4, 1)
	}
	a0.irq = func() { done0 = k.Now() }
	a1.irq = func() { done1 = k.Now() }
	issue(a0)
	issue(a1)
	k.Run()
	if done1 <= done0 {
		t.Errorf("second op done at %v, first at %v: no serialization", done1, done0)
	}
	if done1-done0 != d.Config().ReadLatency {
		t.Errorf("gap = %v, want one read latency", done1-done0)
	}
}

func TestUncertainInjectionIO2(t *testing.T) {
	r := newRig(t, DiskConfig{})
	r.disk.InjectUncertainNext(1)
	payload := bytes.Repeat([]byte{0x11}, 8192)
	r.mem.WriteBytes(0, payload)
	r.command(CmdWrite, 3, 0, 8192)
	r.k.Run()
	st := r.status()
	if st&StatusUncertain == 0 {
		t.Fatalf("status = %#x, want uncertain", st)
	}
	if r.irqs != 1 {
		t.Error("uncertain completion must still interrupt (IO1/IO2)")
	}
	// The write may or may not have committed; the log records which.
	if len(r.disk.Log) != 1 {
		t.Fatalf("log = %+v", r.disk.Log)
	}
	rec := r.disk.Log[0]
	if !rec.Uncertain {
		t.Error("log record not marked uncertain")
	}
	got := r.disk.ReadBlockDirect(3)
	if rec.Committed && !bytes.Equal(got, payload) {
		t.Error("log says committed but data absent")
	}
	if !rec.Committed && bytes.Equal(got, payload) {
		t.Error("log says not committed but data present")
	}
	// Driver retry: reissue the same write; device tolerates repetition.
	r.ad.MMIOStore(RegStatus, 4, 0xFFFFFFFF)
	r.command(CmdWrite, 3, 0, 8192)
	r.k.Run()
	if !bytes.Equal(r.disk.ReadBlockDirect(3), payload) {
		t.Error("retry did not commit the data")
	}
}

func TestUncertainRateDeterministic(t *testing.T) {
	count := func(seed int64) int {
		k := sim.NewKernel(1)
		defer k.Shutdown()
		d := NewDisk(k, DiskConfig{UncertainRate: 0.3, Seed: seed})
		mem := newFakeMem(1 << 16)
		a := d.NewAdapter(0, mem, nil)
		n := 0
		for i := 0; i < 40; i++ {
			a.MMIOStore(RegCmd, 4, CmdWrite)
			a.MMIOStore(RegBlock, 4, uint32(i))
			a.MMIOStore(RegAddr, 4, 0)
			a.MMIOStore(RegCount, 4, 512)
			a.MMIOStore(RegDoorbell, 4, 1)
			k.Run()
			if a.Status()&StatusUncertain != 0 {
				n++
			}
			a.MMIOStore(RegStatus, 4, 0xFFFFFFFF)
		}
		return n
	}
	a, b := count(5), count(5)
	if a != b {
		t.Errorf("same seed gave different injection counts %d vs %d", a, b)
	}
	if a == 0 || a == 40 {
		t.Errorf("rate 0.3 gave %d/40 uncertain", a)
	}
}

func TestInquiry(t *testing.T) {
	r := newRig(t, DiskConfig{})
	r.command(CmdInquiry, 0, 0, 0)
	r.k.Run()
	if r.status()&StatusDone == 0 {
		t.Fatalf("status = %#x", r.status())
	}
	info, _ := r.ad.MMIOLoad(RegInfo, 4)
	if info != 0x5C510001 {
		t.Errorf("info = %#x", info)
	}
}

func TestBadCommandsError(t *testing.T) {
	r := newRig(t, DiskConfig{})
	// Bad opcode.
	r.command(99, 0, 0, 0)
	if r.status()&StatusError == 0 {
		t.Error("bad opcode not flagged")
	}
	r.ad.MMIOStore(RegStatus, 4, 0xFFFFFFFF)
	// Block out of range.
	r.command(CmdRead, 1<<30, 0, 0)
	if r.status()&StatusError == 0 {
		t.Error("bad block not flagged")
	}
	// Doorbell while busy.
	r.ad.MMIOStore(RegStatus, 4, 0xFFFFFFFF)
	r.command(CmdRead, 0, 0, 0)
	r.command(CmdRead, 1, 0, 0) // second doorbell while busy
	if r.status()&StatusError == 0 {
		t.Error("doorbell-while-busy not flagged")
	}
	r.k.Run()
}

func TestBadRegister(t *testing.T) {
	r := newRig(t, DiskConfig{})
	if _, err := r.ad.MMIOLoad(0x1C, 4); err == nil {
		t.Error("bad offset load did not error")
	}
	if err := r.ad.MMIOStore(0x1C, 4, 0); err == nil {
		t.Error("bad offset store did not error")
	}
	if _, err := r.ad.MMIOLoad(RegStatus, 2); err == nil {
		t.Error("sub-word load did not error")
	}
}

func TestDetachedHostGetsNoInterrupt(t *testing.T) {
	// Models the failstop primary: the device completes the op (possibly
	// committing it!) but the dead host never sees the interrupt — the
	// lost-interrupt window that rule P7 must cover.
	r := newRig(t, DiskConfig{})
	payload := bytes.Repeat([]byte{0x77}, 8192)
	r.mem.WriteBytes(0, payload)
	r.command(CmdWrite, 5, 0, 8192)
	r.ad.Detached = true // host dies mid-flight
	r.k.Run()
	if r.irqs != 0 {
		t.Error("detached host received an interrupt")
	}
	// The write still committed on the platter.
	if !bytes.Equal(r.disk.ReadBlockDirect(5), payload) {
		t.Error("write lost despite device completion")
	}
}

func TestDualPortAccessibility(t *testing.T) {
	// The I/O Device Accessibility Assumption: the backup's adapter can
	// read what the primary's adapter wrote.
	k := sim.NewKernel(1)
	defer k.Shutdown()
	d := NewDisk(k, DiskConfig{})
	mem0, mem1 := newFakeMem(1<<16), newFakeMem(1<<16)
	a0 := d.NewAdapter(0, mem0, nil)
	a1 := d.NewAdapter(1, mem1, nil)
	payload := bytes.Repeat([]byte{0x42}, 8192)
	mem0.WriteBytes(0, payload)
	a0.MMIOStore(RegCmd, 4, CmdWrite)
	a0.MMIOStore(RegBlock, 4, 9)
	a0.MMIOStore(RegAddr, 4, 0)
	a0.MMIOStore(RegCount, 4, 8192)
	a0.MMIOStore(RegDoorbell, 4, 1)
	k.Run()
	a1.MMIOStore(RegCmd, 4, CmdRead)
	a1.MMIOStore(RegBlock, 4, 9)
	a1.MMIOStore(RegAddr, 4, 0x100)
	a1.MMIOStore(RegCount, 4, 8192)
	a1.MMIOStore(RegDoorbell, 4, 1)
	k.Run()
	if !bytes.Equal(mem1.ReadBytes(0x100, 8192), payload) {
		t.Error("backup host could not read primary's write")
	}
	// Log attributes hosts correctly.
	if d.Log[0].Host != 0 || d.Log[1].Host != 1 {
		t.Errorf("log hosts = %d,%d", d.Log[0].Host, d.Log[1].Host)
	}
}

func TestWriteHistory(t *testing.T) {
	r := newRig(t, DiskConfig{})
	write := func(b byte) {
		payload := bytes.Repeat([]byte{b}, 8192)
		r.mem.WriteBytes(0, payload)
		r.command(CmdWrite, 2, 0, 8192)
		r.k.Run()
		r.ad.MMIOStore(RegStatus, 4, 0xFFFFFFFF)
	}
	write(1)
	write(2)
	write(2) // idempotent repetition (like a P7 retry)
	h := r.disk.WriteHistory(2)
	if len(h) != 3 {
		t.Fatalf("history len = %d", len(h))
	}
	if h[1] != h[2] {
		t.Error("identical writes should hash identically")
	}
	if h[0] == h[1] {
		t.Error("distinct writes should hash differently")
	}
}

func TestPartialCount(t *testing.T) {
	r := newRig(t, DiskConfig{})
	r.mem.WriteBytes(0, []byte{1, 2, 3, 4})
	r.command(CmdWrite, 0, 0, 4)
	r.k.Run()
	got := r.disk.ReadBlockDirect(0)
	if got[0] != 1 || got[3] != 4 {
		t.Error("partial write wrong")
	}
	// Count larger than block size clamps.
	r.ad.MMIOStore(RegStatus, 4, 0xFFFFFFFF)
	r.command(CmdRead, 0, 0x2000, 1<<20)
	r.k.Run()
	if r.status()&StatusDone == 0 {
		t.Error("clamped read failed")
	}
}
