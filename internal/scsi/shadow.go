package scsi

import (
	"fmt"

	"repro/internal/device"
)

// Shadow is the hypervisor-side virtual adapter: the register bank the
// guest programs. Register state evolves identically on primary and
// backup (guest stores are deterministic; completion status is applied
// only at interrupt delivery), which is what makes guest MMIO loads
// deterministic without forwarding — the Environment Instruction
// Assumption for the disk.
type Shadow struct {
	cmd, block, addr, count, status, info uint32
}

// NewShadow returns a zeroed virtual adapter.
func NewShadow() *Shadow { return &Shadow{} }

var _ device.Shadow = (*Shadow)(nil)

// Load implements device.Shadow: serve a guest register read from
// shadow state.
func (s *Shadow) Load(off uint32) uint32 {
	switch off {
	case RegCmd:
		return s.cmd
	case RegBlock:
		return s.block
	case RegAddr:
		return s.addr
	case RegCount:
		return s.count
	case RegStatus:
		return s.status
	case RegInfo:
		return s.info
	}
	return 0
}

// Store implements device.Shadow: apply a guest register write. A
// doorbell store marks the virtual adapter busy on every replica and
// asks the hypervisor to start the operation (EffectStart); only an
// I/O-active hypervisor will actually program the real device.
func (s *Shadow) Store(off uint32, v uint32) device.Effect {
	switch off {
	case RegCmd:
		s.cmd = v
	case RegBlock:
		s.block = v
	case RegAddr:
		s.addr = v
	case RegCount:
		s.count = v
	case RegStatus:
		s.status &^= v // write-1-to-clear (virtual)
	case RegDoorbell:
		s.status |= StatusBusy
		return device.EffectStart
	}
	return device.EffectNone
}

// Output implements device.Shadow. The adapter has no output registers;
// nothing classifies as EffectOutput, so this is never called.
func (s *Shadow) Output(bus device.Bus, off, v uint32, ordinal uint32) {}

// Start implements device.Shadow: program the real adapter with the
// shadow registers and ring its doorbell.
func (s *Shadow) Start(bus device.Bus) {
	bus.Store(RegCmd, s.cmd)
	bus.Store(RegBlock, s.block)
	bus.Store(RegAddr, s.addr)
	bus.Store(RegCount, s.count)
	bus.Store(RegDoorbell, 1)
}

// Capture implements device.Shadow: snoop the real adapter's completion
// status, clear it for the next operation, and — for successful reads —
// capture the environment data (the DMA contents) so the backup can
// apply the identical bytes.
func (s *Shadow) Capture(bus device.Bus, mem device.Memory) (device.Completion, bool) {
	status := bus.Load(RegStatus)
	bus.Store(RegStatus, 0xFFFFFFFF)
	c := device.Completion{Status: status &^ StatusBusy}
	if s.cmd == CmdRead && status&StatusDone != 0 {
		count := s.count
		if count == 0 {
			count = 8192
		}
		c.Addr = s.addr
		c.Data = mem.ReadBytes(s.addr, int(count))
	}
	return c, true
}

// Apply implements device.Shadow: apply a delivered completion to the
// virtual adapter — DMA data into guest memory, final status into the
// shadow registers. Identical on every replica.
func (s *Shadow) Apply(c device.Completion, mem device.Memory, bus device.Bus) {
	if len(c.Data) > 0 {
		mem.WriteBytes(c.Addr, c.Data)
	}
	s.status &^= StatusBusy
	s.status |= c.Status
	s.info = 0
}

// Recover implements device.Shadow — rule P7 proper: for an I/O
// operation outstanding when a failover epoch ends, synthesize an
// UNCERTAIN completion. The guest's driver will retry, which IO2
// permits.
func (s *Shadow) Recover(bus device.Bus, mem device.Memory, outstanding bool, buffered []device.Completion) ([]device.Completion, int) {
	if !outstanding {
		return nil, 0
	}
	return []device.Completion{{Status: StatusUncertain}}, 1
}

// MarshalState implements device.Shadow.
func (s *Shadow) MarshalState() []byte {
	b := make([]byte, 0, 24)
	for _, v := range [...]uint32{s.cmd, s.block, s.addr, s.count, s.status, s.info} {
		b = device.AppendU32(b, v)
	}
	return b
}

// UnmarshalState implements device.Shadow.
func (s *Shadow) UnmarshalState(data []byte) error {
	vals := [6]uint32{}
	rest := data
	for i := range vals {
		v, r, ok := device.ReadU32(rest)
		if !ok {
			return fmt.Errorf("scsi: shadow state truncated at field %d", i)
		}
		vals[i], rest = v, r
	}
	if len(rest) != 0 {
		return fmt.Errorf("scsi: shadow state has %d trailing bytes", len(rest))
	}
	s.cmd, s.block, s.addr, s.count, s.status, s.info =
		vals[0], vals[1], vals[2], vals[3], vals[4], vals[5]
	return nil
}
