// Package scsi models the shared disk of the paper's prototype: a
// dual-ported SCSI-ish block device reachable from both the primary and
// the backup processor (the I/O Device Accessibility Assumption), with
// the two interface properties the replication protocol relies on (§2.2):
//
//	IO1: if an I/O instruction is issued and performed, the issuing
//	     processor receives a completion interrupt.
//	IO2: if the processor receives an UNCERTAIN interrupt, the I/O may or
//	     may not have been performed.
//
// Uncertain interrupts model SCSI CHECK_CONDITION: drivers must retry,
// and the device tolerates repetition — which rule P7 exploits at
// failover. Transient faults are injectable deterministically.
//
// Each host sees the disk through an Adapter: a bank of memory-mapped
// registers (command, block, DMA address, byte count, status, doorbell)
// that DMAs into the host's RAM and raises an interrupt line on
// completion. The Disk itself serializes commands from both adapters and
// keeps an operation log for environment-consistency checking.
package scsi

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"math/rand"

	"repro/internal/sim"
)

// Command opcodes written to the adapter's CMD register.
const (
	CmdRead    uint32 = 1 // disk block -> host memory
	CmdWrite   uint32 = 2 // host memory -> disk block
	CmdInquiry uint32 = 3 // device identification -> STATUS2 register
)

// Status register bits.
const (
	StatusBusy      uint32 = 1 << 0 // command in progress
	StatusDone      uint32 = 1 << 1 // completed successfully (IO1)
	StatusUncertain uint32 = 1 << 2 // CHECK_CONDITION: may or may not have happened (IO2)
	StatusError     uint32 = 1 << 3 // hard error (bad block/command)
)

// Adapter register offsets (word registers within the adapter window).
const (
	RegCmd      uint32 = 0x00
	RegBlock    uint32 = 0x04
	RegAddr     uint32 = 0x08
	RegCount    uint32 = 0x0C
	RegStatus   uint32 = 0x10 // read status; write 1-bits to clear
	RegDoorbell uint32 = 0x14 // write anything to start CMD
	RegInfo     uint32 = 0x18 // inquiry result / last-op detail

	// AdapterWindow is the size of the adapter's register bank.
	AdapterWindow uint32 = 0x20
)

// Backend supplies the storage behind the disk's blocks. Block returns
// the backing bytes for block b (length >= the configured BlockSize),
// faulting it in as needed; the device reads and writes the returned
// slice in place. Implementations must be deterministic — the disk is
// part of the replicated environment.
type Backend interface {
	Block(b uint32) []byte
}

// memBackend is the default backend: lazily allocated zeroed blocks.
type memBackend struct {
	blockSize uint32
	data      [][]byte
}

func (m *memBackend) Block(b uint32) []byte {
	if m.data[b] == nil {
		m.data[b] = make([]byte, m.blockSize)
	}
	return m.data[b]
}

// DiskConfig describes the shared disk.
type DiskConfig struct {
	// Blocks is the number of blocks (default 4096).
	Blocks uint32
	// BlockSize is bytes per block (default 8 KiB, the paper's unit).
	BlockSize uint32
	// ReadLatency is the device service time for a block read. The
	// paper's bare-hardware measurement: 24.2 ms for an 8 KiB read.
	ReadLatency sim.Time
	// WriteLatency is the device service time for a block write. The
	// paper: 26 ms.
	WriteLatency sim.Time
	// UncertainRate injects CHECK_CONDITION with this probability per
	// operation (deterministic via the seeded stream). Zero disables.
	UncertainRate float64
	// Seed seeds the fault-injection stream.
	Seed int64
	// Backend overrides the block storage (default: in-memory, lazily
	// allocated). Custom backends plug in synthetic content, golden
	// images, or instrumented stores.
	Backend Backend
}

func (c DiskConfig) withDefaults() DiskConfig {
	if c.Blocks == 0 {
		c.Blocks = 4096
	}
	if c.BlockSize == 0 {
		c.BlockSize = 8192
	}
	if c.ReadLatency == 0 {
		c.ReadLatency = sim.Time(24.2 * float64(sim.Millisecond))
	}
	if c.WriteLatency == 0 {
		c.WriteLatency = 26 * sim.Millisecond
	}
	return c
}

// OpRecord is one entry in the disk's operation log: the externally
// visible I/O behaviour used to check that the environment cannot
// distinguish the replicated system from a single processor.
type OpRecord struct {
	Seq       uint64
	Host      int    // which adapter issued the command
	Cmd       uint32 // CmdRead / CmdWrite
	Block     uint32
	Committed bool   // writes: data actually hit the platter
	Uncertain bool   // completion was CHECK_CONDITION
	DataHash  uint64 // writes: FNV-64a of the data DMA'd from the host
	At        sim.Time
}

// Disk is the shared dual-ported device.
type Disk struct {
	k       *sim.Kernel
	cfg     DiskConfig
	backend Backend
	rng     *rand.Rand

	// Log records every operation the device performed or reported
	// uncertain, in service order.
	Log []OpRecord

	// OnOp, when set, observes every completed operation as it is
	// logged (session event streams).
	OnOp func(OpRecord)

	busyUntil     sim.Time
	seq           uint64
	uncertainNext int // scripted injection: next N ops report uncertain
}

// NewDisk creates the disk owned by kernel k.
func NewDisk(k *sim.Kernel, cfg DiskConfig) *Disk {
	cfg = cfg.withDefaults()
	be := cfg.Backend
	if be == nil {
		be = &memBackend{blockSize: cfg.BlockSize, data: make([][]byte, cfg.Blocks)}
	}
	return &Disk{
		k:       k,
		cfg:     cfg,
		backend: be,
		rng:     rand.New(rand.NewSource(cfg.Seed ^ 0x5C51)),
	}
}

// Config returns the disk configuration (defaults applied).
func (d *Disk) Config() DiskConfig { return d.cfg }

// InjectUncertainNext makes the next n operations complete with
// CHECK_CONDITION (each op independently decides whether it committed).
func (d *Disk) InjectUncertainNext(n int) { d.uncertainNext += n }

// block returns the backing store for a block via the backend.
func (d *Disk) block(b uint32) []byte {
	return d.backend.Block(b)[:d.cfg.BlockSize]
}

// ReadBlockDirect copies a block's contents (test/verification backdoor,
// not part of the simulated environment).
func (d *Disk) ReadBlockDirect(b uint32) []byte {
	out := make([]byte, d.cfg.BlockSize)
	copy(out, d.block(b))
	return out
}

// WriteBlockDirect sets a block's contents directly (test setup).
func (d *Disk) WriteBlockDirect(b uint32, data []byte) {
	copy(d.block(b), data)
}

// hash64 hashes a buffer for the op log.
func hash64(p []byte) uint64 {
	h := fnv.New64a()
	h.Write(p)
	return h.Sum64()
}

// HostMemory is the DMA interface an adapter uses to move data to and
// from its host's RAM (implemented by *machine.Machine).
type HostMemory interface {
	ReadBytes(pa uint32, n int) []byte
	WriteBytes(pa uint32, data []byte)
}

// IRQLine raises an interrupt line on the host (implemented by
// *machine.Machine via a closure in the platform).
type IRQLine func()

// Adapter is one host's view of the disk: a register bank plus DMA and an
// interrupt line. It implements machine.MMIOHandler semantics for its
// window (the platform routes the window's offsets here).
type Adapter struct {
	disk *Disk
	host int
	mem  HostMemory
	irq  IRQLine

	// Registers.
	cmd, blockNo, addr, count, status, info uint32

	// Detached is set when the host has failstopped: completions are
	// discarded (no interrupt reaches a dead host).
	Detached bool

	// Stats.
	OpsIssued    uint64
	OpsCompleted uint64
	OpsUncertain uint64
}

// NewAdapter connects a host to the disk. host is 0 (primary's processor)
// or 1 (backup's); mem is the host's RAM for DMA; irq raises the host's
// external interrupt line on command completion.
func (d *Disk) NewAdapter(host int, mem HostMemory, irq IRQLine) *Adapter {
	return &Adapter{disk: d, host: host, mem: mem, irq: irq}
}

// MMIOLoad implements register reads.
func (a *Adapter) MMIOLoad(off uint32, size int) (uint32, error) {
	if size != 4 {
		return 0, fmt.Errorf("scsi: sub-word register access (size %d)", size)
	}
	switch off {
	case RegCmd:
		return a.cmd, nil
	case RegBlock:
		return a.blockNo, nil
	case RegAddr:
		return a.addr, nil
	case RegCount:
		return a.count, nil
	case RegStatus:
		return a.status, nil
	case RegDoorbell:
		return 0, nil
	case RegInfo:
		return a.info, nil
	}
	return 0, fmt.Errorf("scsi: bad register offset %#x", off)
}

// MMIOStore implements register writes; writing the doorbell issues the
// programmed command.
func (a *Adapter) MMIOStore(off uint32, size int, v uint32) error {
	if size != 4 {
		return fmt.Errorf("scsi: sub-word register access (size %d)", size)
	}
	switch off {
	case RegCmd:
		a.cmd = v
	case RegBlock:
		a.blockNo = v
	case RegAddr:
		a.addr = v
	case RegCount:
		a.count = v
	case RegStatus:
		a.status &^= v // write-1-to-clear
	case RegDoorbell:
		a.issue()
	case RegInfo:
		// read-only
	default:
		return fmt.Errorf("scsi: bad register offset %#x", off)
	}
	return nil
}

// Status returns the adapter's status register (for hypervisor snooping).
func (a *Adapter) Status() uint32 { return a.status }

// Busy reports whether a command is in flight on this adapter.
func (a *Adapter) Busy() bool { return a.status&StatusBusy != 0 }

// issue starts the programmed command on the shared disk.
func (a *Adapter) issue() {
	if a.status&StatusBusy != 0 {
		// Device busy: a second doorbell while busy is a programming
		// error; report a hard error immediately.
		a.status |= StatusError
		return
	}
	d := a.disk
	count := a.count
	if count == 0 || count > d.cfg.BlockSize {
		count = d.cfg.BlockSize
	}
	switch a.cmd {
	case CmdInquiry:
		a.status |= StatusBusy
		a.OpsIssued++
		d.k.After(100*sim.Microsecond, func() {
			a.info = 0x5C510001 // device model/version
			a.complete(StatusDone)
		})
		return
	case CmdRead, CmdWrite:
		if a.blockNo >= d.cfg.Blocks {
			a.status |= StatusError
			return
		}
	default:
		a.status |= StatusError
		return
	}
	a.status |= StatusBusy
	a.OpsIssued++

	cmd, blockNo, addr := a.cmd, a.blockNo, a.addr
	// For writes, latch the data at issue time (DMA from host memory).
	var buf []byte
	if cmd == CmdWrite {
		buf = a.mem.ReadBytes(addr, int(count))
	}

	// Serialize on the shared device.
	var latency sim.Time
	if cmd == CmdRead {
		latency = d.cfg.ReadLatency
	} else {
		latency = d.cfg.WriteLatency
	}
	start := d.k.Now()
	if d.busyUntil > start {
		start = d.busyUntil
	}
	done := start + latency
	d.busyUntil = done

	d.k.At(done, func() {
		// Decide certainty: scripted injections first, then random.
		uncertain := false
		if d.uncertainNext > 0 {
			d.uncertainNext--
			uncertain = true
		} else if d.cfg.UncertainRate > 0 && d.rng.Float64() < d.cfg.UncertainRate {
			uncertain = true
		}
		committed := true
		if uncertain {
			// IO2: the operation may or may not have been performed.
			committed = d.rng.Intn(2) == 0
		}
		if cmd == CmdRead {
			// Reads transfer data only on certain completion.
			committed = !uncertain
		}
		rec := OpRecord{
			Seq: d.seq, Host: a.host, Cmd: cmd, Block: blockNo,
			Committed: committed, Uncertain: uncertain,
			At: d.k.Now(),
		}
		d.seq++
		switch cmd {
		case CmdRead:
			if !uncertain {
				data := d.block(blockNo)[:count]
				if !a.Detached {
					a.mem.WriteBytes(addr, data)
				}
			}
		case CmdWrite:
			rec.DataHash = hash64(buf)
			if committed {
				copy(d.block(blockNo), buf)
			}
		}
		d.Log = append(d.Log, rec)
		if d.OnOp != nil {
			d.OnOp(rec)
		}
		if uncertain {
			a.complete(StatusUncertain)
		} else {
			a.complete(StatusDone)
		}
	})
}

// complete finishes the in-flight command: updates status and raises the
// host interrupt (IO1), unless the host is detached (failstopped).
func (a *Adapter) complete(bits uint32) {
	a.status &^= StatusBusy
	a.status |= bits
	a.OpsCompleted++
	if bits&StatusUncertain != 0 {
		a.OpsUncertain++
	}
	if a.Detached {
		return
	}
	if a.irq != nil {
		a.irq()
	}
}

// digestPut appends 64-bit values to a digest, little-endian.
func digestPut(h hash.Hash64, vs ...uint64) {
	var b [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
}

// StateDigest returns a deterministic hash of the disk's dynamic state:
// service-queue watermarks, the operation log, pending fault
// injections, and the contents of every materialized block (in-memory
// backend only; blocks behind a custom Backend are the caller's to
// verify). Snapshot verification compares it between an original and a
// replayed run.
func (d *Disk) StateDigest() uint64 {
	h := fnv.New64a()
	put := func(vs ...uint64) { digestPut(h, vs...) }
	put(uint64(d.busyUntil), d.seq, uint64(d.uncertainNext), uint64(len(d.Log)))
	for _, r := range d.Log {
		flags := uint64(0)
		if r.Committed {
			flags |= 1
		}
		if r.Uncertain {
			flags |= 2
		}
		put(r.Seq, uint64(r.Host), uint64(r.Cmd), uint64(r.Block), flags, r.DataHash, uint64(r.At))
	}
	if mb, ok := d.backend.(*memBackend); ok {
		for i, blk := range mb.data {
			if blk != nil {
				put(uint64(i), hash64(blk))
			}
		}
	}
	return h.Sum64()
}

// StateDigest returns a deterministic hash of the adapter's register
// bank, detach latch and counters (snapshot verification).
func (a *Adapter) StateDigest() uint64 {
	h := fnv.New64a()
	digestPut(h, uint64(a.cmd), uint64(a.blockNo), uint64(a.addr), uint64(a.count),
		uint64(a.status), uint64(a.info))
	flags := uint64(0)
	if a.Detached {
		flags |= 1
	}
	digestPut(h, flags, a.OpsIssued, a.OpsCompleted, a.OpsUncertain)
	return h.Sum64()
}

// WriteHistory returns the committed write hashes for a block, in order —
// used by tests to verify the single-processor-consistency claim: after
// failover plus retries, the sequence of committed writes must be a
// sequence a single processor could have produced (duplicates are
// allowed only as identical-content repetitions, which IO2 permits).
func (d *Disk) WriteHistory(block uint32) []uint64 {
	var out []uint64
	for _, r := range d.Log {
		if r.Cmd == CmdWrite && r.Block == block && r.Committed {
			out = append(out, r.DataHash)
		}
	}
	return out
}
