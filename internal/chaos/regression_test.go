package chaos

import (
	"testing"

	hft "repro"
)

// TestRegressionCampaignFinds pins the bugs the first full campaign
// sweep caught, as exact schedules. Each reproduced a replicated-state
// divergence before its fix:
//
//   - zombie epoch commit: a coordinator failstopped mid-boundary
//     (between the Tme send and the commit hook) under the §4.3
//     protocol still delivered, archived, and reported the epoch, so
//     AddBackup captured its state from a timeline the replica set
//     never received (coordinator.run now re-checks stopped() after
//     each boundary send);
//   - in-flight message loss: failstop severed frames already on the
//     wire, so a backup on a degraded (slow) link could miss an epoch
//     that a fast-linked peer completed, and the promoted backup's
//     post-failover line diverged irreconcilably from the peer's
//     (netsim links now deliver in-flight messages after Disconnect);
//   - joiner with an empty NIC port: a backup reintegrated mid-load
//     started with a fresh (empty) NIC port, so when a later failstop
//     promoted it, requests that had been pending across the state
//     transfer were lost and their replies never emitted — a VService
//     violation (AddBackup now clones the acting coordinator's port
//     into the joiner).
func TestRegressionCampaignFinds(t *testing.T) {
	ms := func(d int64) hft.Duration { return hft.Duration(d) * hft.Millisecond }
	cases := []struct {
		name string
		s    Schedule
	}{
		{"zombie-commit-before-addbackup", Schedule{
			Seed: 1589839639, Workload: "cpu", Epoch: 1024,
			Protocol: hft.ProtocolNew, Link: "atm", Backups: 2,
			Steps: []Step{
				{At: Coord{Time: ms(9)}, Op: OpFailPrimary},
				{At: Coord{Commit: 19}, Op: OpAddBackup},
			},
		}},
		{"inflight-loss-asymmetric-links", Schedule{
			Seed: 468989957, Workload: "cpu", Epoch: 4096,
			Protocol: hft.ProtocolNew, Link: "atm", Backups: 2,
			Steps: []Step{
				{At: Coord{Commit: 4}, Op: OpLinkDegrade, Bandwidth: 2000000, Latency: 500 * hft.Microsecond},
				{At: Coord{Commit: 7}, Op: OpAddBackup},
				{At: Coord{Time: ms(20)}, Op: OpFailPrimary},
			},
		}},
		{"failstop-cascade-then-join", Schedule{
			Seed: 46778682, Workload: "cpu", Epoch: 1024,
			Protocol: hft.ProtocolNew, Link: "ethernet", Backups: 2,
			Steps: []Step{
				{At: Coord{Time: ms(16)}, Op: OpFailBackup, Backup: 2},
				{At: Coord{Commit: 5}, Op: OpFailPrimary},
				{At: Coord{Commit: 16}, Op: OpAddBackup},
			},
		}},
		{"window-failstop-uncommitted-epochs", Schedule{
			// Output-commit engine with a deep pipeline on a
			// high-latency link: acknowledgments lag execution by
			// several epochs (the 500 us each-way degradation puts the
			// window 5+ deep), then the primary failstops with those
			// epochs' deferred output still retained. Exactly-once must
			// hold: the promoted backup's flush emits the uncommitted
			// tail once, the device ordinal dedup drops what the dead
			// primary already released, and the reply transcript stays
			// byte-identical to bare.
			Seed: 7, Workload: "serve", Epoch: 1024,
			Protocol: hft.ProtocolOld, Link: "ethernet", Backups: 1,
			Window: 8, Adaptive: true,
			Steps: []Step{
				{At: Coord{Commit: 2}, Op: OpLinkDegrade, Bandwidth: 10000000, Latency: 500 * hft.Microsecond},
				{At: Coord{Commit: 24}, Op: OpFailPrimary},
			},
		}},
		{"serve-join-then-promote-joiner", Schedule{
			// Mid-load failover, reintegration under live client load
			// (with a mid-load checkpoint round trip for good measure),
			// then a failstop of the promoted coordinator so the JOINER
			// must finish the request stream. Before AddBackup cloned
			// the acting coordinator's NIC port into the joiner, the
			// requests pending across the state transfer vanished here
			// and the reply transcript came up short.
			Seed: 1, Workload: "serve", Epoch: 1024,
			Protocol: hft.ProtocolOld, Link: "ethernet", Backups: 1,
			Steps: []Step{
				{At: Coord{Time: ms(6)}, Op: OpFailPrimary},
				{At: Coord{Commit: 13}, Op: OpAddBackup},
				{At: Coord{Commit: 15}, Op: OpSaveRestore},
				{At: Coord{Commit: 17}, Op: OpFailBackup, Backup: 1},
			},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if rep := Execute(tc.s); rep.Failed() {
				t.Errorf("schedule %v violated %v", tc.s, rep.Violation)
			}
		})
	}
}
