package chaos

import (
	"fmt"
	"strings"

	hft "repro"
)

// Scenario renders a schedule as an hftsim scenario script — the
// shrinker's output artifact. The header comments carry everything the
// script itself cannot: the full replay command line (scenario scripts
// deliberately have no configuration syntax; the cluster comes from
// flags) and the violation being reproduced. The body is one command
// per step, and the footer (`wait`, `check`) runs to completion and
// re-checks the digest/output invariants against a fresh bare
// baseline, so the replay itself fails loudly — exit status 1 — while
// the bug is alive, and passes once it is fixed.
func Scenario(s Schedule, v *Violation, note string) string {
	var b strings.Builder
	b.WriteString("# chaos reproduction")
	if note != "" {
		fmt.Fprintf(&b, " (%s)", note)
	}
	b.WriteString("\n")
	if v != nil {
		fmt.Fprintf(&b, "# violates: %v\n", v)
	}
	fmt.Fprintf(&b, "# replay: hftsim %s -scenario <this file>\n", strings.Join(s.Flags(), " "))
	b.WriteString("\n")
	for _, st := range s.Steps {
		b.WriteString(stepCommands(s, st))
	}
	b.WriteString("wait\ncheck\n")
	return b.String()
}

// Flags renders the hftsim flags that reconstruct the schedule's base
// configuration — including the canonical workload sizes, so a replay
// builds the byte-identical cluster even though hftsim's sizing flags
// default differently.
func (s Schedule) Flags() []string {
	proto := "old"
	if s.Protocol == hft.ProtocolNew {
		proto = "new"
	}
	flags := []string{
		"-workload", s.Workload,
		"-seed", fmt.Sprint(s.Seed),
		"-epoch", fmt.Sprint(s.Epoch),
		"-protocol", proto,
		"-link", s.Link,
		"-backups", fmt.Sprint(s.Backups),
	}
	if s.Window > 0 {
		flags = append(flags, "-window", fmt.Sprint(s.Window))
		if s.Adaptive {
			flags = append(flags, "-adaptive")
		}
	}
	switch s.Workload {
	case "cpu":
		flags = append(flags, "-iters", "4000")
	case "write", "read":
		flags = append(flags, "-ops", "3", "-count", "2048")
	case "copy":
		flags = append(flags, "-ops", "2", "-count", "2048")
	case "serve":
		flags = append(flags, "-ops", "24")
	}
	return flags
}

// stepCommands renders one step: an advance to its coordinate, then
// the perturbation command.
func stepCommands(s Schedule, st Step) string {
	var b strings.Builder
	if st.At.Commit > 0 {
		fmt.Fprintf(&b, "until-commit %d\n", st.At.Commit)
	} else {
		fmt.Fprintf(&b, "run-to %dns\n", int64(st.At.Time))
	}
	switch st.Op {
	case OpFailPrimary:
		b.WriteString("fail primary\n")
	case OpFailBackup:
		fmt.Fprintf(&b, "fail backup %d\n", st.Backup)
	case OpLinkDegrade:
		fmt.Fprintf(&b, "link bw=%d lat=%dns\n", st.Bandwidth, int64(st.Latency))
	case OpLinkRestore:
		p := s.LinkModel().LinkParams()
		fmt.Fprintf(&b, "link bw=%d lat=%dns\n", p.BitsPerSecond, int64(p.Latency))
	case OpAddBackup:
		b.WriteString("addbackup\n")
	case OpSaveRestore:
		b.WriteString("save chaos.ckpt\nrestore chaos.ckpt\n")
	}
	return b.String()
}

// CommandCount counts the perturbation/advance commands a scenario
// body would contain (excluding the wait/check footer) — the
// acceptance metric for "shrunk to a <=N-command scenario".
func CommandCount(s Schedule) int {
	n := 0
	for _, st := range s.Steps {
		n += 2 // advance + op
		if st.Op == OpSaveRestore {
			n++ // save + restore are two commands
		}
	}
	return n
}
