package chaos

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	hft "repro"
	"repro/internal/console"
)

// TestScheduleAtDeterministic pins the campaign's replay contract: a
// (campaign seed, run index) pair names one schedule, forever,
// independent of worker scheduling.
func TestScheduleAtDeterministic(t *testing.T) {
	for i := 0; i < 50; i++ {
		a := ScheduleAt(42, i)
		b := ScheduleAt(42, i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("run %d: ScheduleAt not deterministic:\n%v\n%v", i, a, b)
		}
	}
	if reflect.DeepEqual(ScheduleAt(42, 0), ScheduleAt(43, 0)) {
		t.Fatal("different campaign seeds produced identical schedules")
	}
}

// TestGenerateBounds pins the generator's safety envelope: failstops
// within budget, no message drops, bounded step counts.
func TestGenerateBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		s := Generate(rng)
		if len(s.Steps) > genMaxSteps {
			t.Fatalf("schedule %d has %d steps (max %d)", i, len(s.Steps), genMaxSteps)
		}
		fails, adds, saves := 0, 0, 0
		for _, st := range s.Steps {
			switch st.Op {
			case OpFailPrimary, OpFailBackup:
				fails++
			case OpAddBackup:
				adds++
			case OpSaveRestore:
				saves++
			case OpLinkDegrade:
				if st.Bandwidth < 1_000_000 {
					t.Fatalf("schedule %d degrades below 1 Mbps: %v", i, st)
				}
				if st.Latency > 2*hft.Millisecond {
					t.Fatalf("schedule %d latency %v approaches the detect timeout", i, st.Latency)
				}
			}
		}
		if fails > s.Backups {
			t.Fatalf("schedule %d: %d failstops with %d backups", i, fails, s.Backups)
		}
		if adds > genMaxAdds || saves > genMaxSaveRest {
			t.Fatalf("schedule %d: %d adds, %d save-restores", i, adds, saves)
		}
		if _, err := ParseWorkload(s.Workload); err != nil {
			t.Fatal(err)
		}
	}
}

// TestExecuteClean sanity-checks the executor on an unperturbed
// schedule: all invariants hold.
func TestExecuteClean(t *testing.T) {
	for _, w := range Workloads() {
		rep := Execute(Schedule{
			Seed: 1, Workload: w.Name, Epoch: 4096,
			Protocol: hft.ProtocolOld, Link: "ethernet", Backups: 1,
		})
		if rep.Failed() {
			t.Errorf("%s: clean run violated: %v", w.Name, rep.Violation)
		}
	}
}

// TestCampaignSmoke is the per-PR slice of the nightly campaign: a
// fixed-seed batch across the full generator envelope, every run
// checked against all four invariants. Any violation is a real bug.
func TestCampaignSmoke(t *testing.T) {
	runs := 25
	if testing.Short() {
		runs = 8
	}
	rep, err := RunCampaign(CampaignOptions{Runs: runs, Seed: 20260808, Log: testWriter{t}})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("run %d violated %v\nschedule: %v\nscenario:\n%s",
			v.Run, v.Report.Violation, v.Schedule, v.Scenario)
	}
}

// TestCampaignFull is the acceptance-scale campaign: a seeded
// 1000-run sweep covering both protocols, both links and all workload
// shapes. Skipped under -short (it is the nightly CI job's workload).
func TestCampaignFull(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-run campaign runs nightly; use go test -run TestCampaignFull without -short")
	}
	rep, err := RunCampaign(CampaignOptions{Runs: 1000, Seed: 19951203, Log: testWriter{t}})
	if err != nil {
		t.Fatal(err)
	}
	// Coverage proof: the sweep must actually exercise the whole
	// envelope, not degenerate into one corner.
	protos, links, shapes := map[hft.Protocol]int{}, map[string]int{}, map[string]int{}
	for i := 0; i < rep.Runs; i++ {
		s := ScheduleAt(19951203, i)
		protos[s.Protocol]++
		links[s.Link]++
		shapes[s.Workload]++
	}
	if len(protos) != 2 || len(links) != 2 || len(shapes) != len(Workloads()) {
		t.Errorf("coverage hole: protocols=%v links=%v workloads=%v", protos, links, shapes)
	}
	for _, v := range rep.Violations {
		t.Errorf("run %d violated %v\nschedule: %v\nscenario:\n%s",
			v.Run, v.Report.Violation, v.Schedule, v.Scenario)
	}
}

// TestInjectedBugCaughtAndShrunk is the end-to-end proof the engine
// works: disable the console's output-ordinal dedup (the mechanism
// that makes output commit exactly-once across failovers), run a
// campaign, and require that it (a) catches the duplicate output as a
// VOutput violation and (b) shrinks the failing schedule to a
// reproduction of at most 5 scenario commands that still reproduces
// deterministically.
func TestInjectedBugCaughtAndShrunk(t *testing.T) {
	console.DisableOutputDedup = true
	defer func() { console.DisableOutputDedup = false }()

	// The bug needs a failover while the backup still holds suppressed
	// terminal output the primary already performed: echo workload,
	// primary failstop inside the output window (~7.2-7.7 ms at this
	// scale). Scan a few seeds and times so the test does not hinge on
	// one magic number; the schedule carries decoy post-failover link
	// perturbations for the shrinker to strip.
	var failing *Report
	for seed := int64(1); seed <= 4 && failing == nil; seed++ {
		for _, us := range []int64{7300, 7450, 7550, 7650} {
			s := Schedule{
				Seed: seed, Workload: "echo", Epoch: 1024,
				Protocol: hft.ProtocolOld, Link: "ethernet", Backups: 1,
				Steps: []Step{
					{At: Coord{Time: hft.Duration(us) * hft.Microsecond}, Op: OpFailPrimary},
					{At: Coord{Time: 9 * hft.Millisecond}, Op: OpLinkDegrade, Bandwidth: 5_000_000, Latency: 500 * hft.Microsecond},
					{At: Coord{Time: 10 * hft.Millisecond}, Op: OpLinkRestore},
				},
			}
			rep := Execute(s)
			if rep.Failed() && rep.Violation.Kind == VOutput {
				failing = &rep
				break
			}
		}
	}
	if failing == nil {
		t.Fatal("injected dedup bug was not caught: no echo+failover schedule produced duplicate output")
	}
	t.Logf("caught: %v on %v", failing.Violation, failing.Schedule)

	sh := Shrink(failing.Schedule, *failing, 64)
	if n := CommandCount(sh.Schedule); n > 5 {
		t.Fatalf("shrunk reproduction has %d scenario commands (want <=5):\n%s",
			n, Scenario(sh.Schedule, sh.Report.Violation, "test"))
	}
	if !sh.Minimal {
		t.Errorf("shrinker did not reach 1-minimality in budget")
	}

	// The minimal schedule must reproduce deterministically.
	for i := 0; i < 2; i++ {
		rep := Execute(sh.Schedule)
		if !rep.Failed() || rep.Violation.Kind != VOutput {
			t.Fatalf("shrunk schedule did not reproduce on replay %d: %+v", i, rep.Violation)
		}
	}

	sc := Scenario(sh.Schedule, sh.Report.Violation, "injected dedup bug")
	for _, want := range []string{"fail primary", "wait\ncheck", "-workload echo", "-scenario"} {
		if !strings.Contains(sc, want) {
			t.Errorf("scenario missing %q:\n%s", want, sc)
		}
	}
	t.Logf("shrunk scenario:\n%s", sc)
}

// TestShrinkRemovesJunk pins the shrinker on a synthetic oracle — no
// simulation, just Execute-compatible semantics via a real schedule
// whose violation persists under any subset containing the trigger.
// (The injected-bug test covers the real-executor path; this one
// covers the ddmin bookkeeping itself.)
func TestShrinkScenarioEmission(t *testing.T) {
	s := Schedule{
		Seed: 9, Workload: "cpu", Epoch: 4096,
		Protocol: hft.ProtocolNew, Link: "atm", Backups: 2,
		Steps: []Step{
			{At: Coord{Commit: 3}, Op: OpFailBackup, Backup: 2},
			{At: Coord{Time: 5 * hft.Millisecond}, Op: OpLinkDegrade, Bandwidth: 1_000_000, Latency: 1 * hft.Millisecond},
			{At: Coord{Commit: 9}, Op: OpSaveRestore},
			{At: Coord{Commit: 12}, Op: OpAddBackup},
		},
	}
	sc := Scenario(s, &Violation{Kind: VOutput, Detail: "x"}, "unit")
	for _, want := range []string{
		"until-commit 3\nfail backup 2\n",
		"run-to 5000000ns\nlink bw=1000000 lat=1000000ns\n",
		"until-commit 9\nsave chaos.ckpt\nrestore chaos.ckpt\n",
		"until-commit 12\naddbackup\n",
		"wait\ncheck\n",
		"-workload cpu -seed 9 -epoch 4096 -protocol new -link atm -backups 2",
	} {
		if !strings.Contains(sc, want) {
			t.Errorf("scenario missing %q:\n%s", want, sc)
		}
	}
	if got, want := CommandCount(s), 9; got != want {
		t.Errorf("CommandCount = %d, want %d", got, want)
	}
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", strings.TrimRight(string(p), "\n"))
	return len(p), nil
}
