package chaos

// ShrinkResult is a minimized reproduction.
type ShrinkResult struct {
	// Schedule is the smallest schedule found that still violates the
	// same invariant as the original.
	Schedule Schedule
	// Report is that schedule's execution report.
	Report Report
	// Executions counts the runs the shrinker spent.
	Executions int
	// Minimal reports 1-minimality: removing any single remaining step
	// was tried and made the violation disappear. False when the
	// execution budget ran out first.
	Minimal bool
}

// Shrink minimizes a violating schedule by delta debugging:
//
//  1. ddmin over the perturbation list — remove chunks, halving the
//     chunk size, re-executing each candidate and keeping any that
//     still violates the SAME invariant kind;
//  2. coordinate reduction — each surviving step scheduled at an exact
//     virtual time is retried at the epoch-commit ordinal it was
//     observed to land on (commit coordinates survive timeline shifts
//     and replay exactly; times are fragile);
//  3. a final single-step pass proving 1-minimality.
//
// Matching on the violation KIND (not the exact detail string) is the
// classic delta-debugging compromise: strict equality makes shrinking
// brittle (details embed times and counters that shift as steps drop);
// no matching lets the shrinker wander onto a different bug. budget
// bounds total executions (<=0: a generous default).
func Shrink(s Schedule, rep Report, budget int) ShrinkResult {
	if !rep.Failed() {
		return ShrinkResult{Schedule: s, Report: rep}
	}
	if budget <= 0 {
		budget = 64
	}
	sh := &shrinker{kind: rep.Violation.Kind, budget: budget, best: s, bestRep: rep}

	sh.ddmin()
	sh.reduceCoords()
	minimal := sh.singles()

	return ShrinkResult{Schedule: sh.best, Report: sh.bestRep, Executions: sh.execs, Minimal: minimal}
}

type shrinker struct {
	kind    ViolationKind
	budget  int
	execs   int
	best    Schedule
	bestRep Report
}

// try executes a candidate; if it reproduces the violation kind it
// becomes the new best. Returns whether it reproduced (false also when
// the budget is exhausted).
func (sh *shrinker) try(cand Schedule) bool {
	if sh.execs >= sh.budget {
		return false
	}
	sh.execs++
	rep := Execute(cand)
	if rep.Failed() && rep.Violation.Kind == sh.kind {
		sh.best, sh.bestRep = cand, rep
		return true
	}
	return false
}

// without returns best with steps [i, i+n) removed.
func (sh *shrinker) without(i, n int) Schedule {
	cand := sh.best
	cand.Steps = append(append([]Step{}, sh.best.Steps[:i]...), sh.best.Steps[i+n:]...)
	return cand
}

// ddmin removes chunks of steps, halving the chunk size until 1.
func (sh *shrinker) ddmin() {
	for size := (len(sh.best.Steps) + 1) / 2; size >= 1; size /= 2 {
		for i := 0; i+size <= len(sh.best.Steps); {
			if sh.execs >= sh.budget {
				return
			}
			if sh.try(sh.without(i, size)) {
				continue // steps shifted left; retry the same window
			}
			i += size
		}
	}
}

// reduceCoords retries each exact-time step at its observed commit
// ordinal.
func (sh *shrinker) reduceCoords() {
	for i := 0; i < len(sh.best.Steps); i++ {
		st := sh.best.Steps[i]
		if st.At.Commit > 0 || i >= len(sh.bestRep.AppliedAt) {
			continue
		}
		obs := sh.bestRep.AppliedAt[i]
		if obs.Commit == 0 {
			continue // landed before the first commit; time stays
		}
		cand := sh.best
		cand.Steps = append([]Step{}, sh.best.Steps...)
		cand.Steps[i].At = Coord{Commit: obs.Commit}
		sh.try(cand)
	}
}

// singles is the 1-minimality pass: repeatedly try removing every
// single remaining step until none can go. Returns whether the pass
// ran to fixpoint within budget.
func (sh *shrinker) singles() bool {
	for {
		removed := false
		for i := 0; i < len(sh.best.Steps); i++ {
			if sh.execs >= sh.budget {
				return false
			}
			if sh.try(sh.without(i, 1)) {
				removed = true
				i-- // the slot now holds the next step
			}
		}
		if !removed {
			return true
		}
	}
}
