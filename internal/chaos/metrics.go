package chaos

import (
	"sync"

	hft "repro"
)

// Metrics are per-run aggregates a fleet collects from one executed
// schedule. Every field is a virtual-time or guest-visible quantity,
// so metrics are bit-identical across worker counts and hosts — they
// feed fleet-wide aggregate goldens.
type Metrics struct {
	// Commits counts epochs committed by acting coordinators over the
	// whole run (zero if the run violated an invariant before its
	// final snapshot).
	Commits uint64
	// Instructions is the guest instructions retired on the acting
	// node.
	Instructions uint64
	// Time is the workload completion time (zero if the run never
	// completed).
	Time hft.Duration
	// Failovers counts backup promotions.
	Failovers int
	// Blackout is the longest acting-coordinator outage: from the last
	// epoch commit before an acting-node failstop to the first commit
	// after the takeover. A gap still open when the cluster closes
	// (the service never recovered) is not counted — such runs report
	// a progress violation instead.
	Blackout hft.Duration
}

// evCollector folds a cluster's event stream into the order-sensitive
// Metrics fields (failovers, blackout). One goroutine drains each
// subscription; the collector's state has a single writer at any
// moment because rotate waits for the previous drain to finish before
// attaching to a restored cluster.
type evCollector struct {
	wg sync.WaitGroup

	acting     int
	lastCommit hft.Duration
	gapOpen    bool
	gapStart   hft.Duration
	failovers  int
	blackout   hft.Duration
}

// attach subscribes to a cluster's event stream and drains it until
// the cluster is closed.
func (col *evCollector) attach(c *hft.Cluster) {
	ch := c.Events()
	col.wg.Add(1)
	go func() {
		defer col.wg.Done()
		for ev := range ch {
			col.observe(ev)
		}
	}()
}

// rotate moves the collector to a restored cluster. The previous
// cluster must already be closed: its drain goroutine finishes on the
// closed channel, then the new subscription becomes the sole writer.
// Carried-over state (acting node, last commit time) is exactly what a
// restore preserves, so gap accounting continues seamlessly.
func (col *evCollector) rotate(c *hft.Cluster) {
	col.wg.Wait()
	col.attach(c)
}

func (col *evCollector) observe(ev hft.Event) {
	switch ev.Kind {
	case hft.EventEpochCommitted:
		if col.gapOpen {
			if gap := ev.Time - col.gapStart; gap > col.blackout {
				col.blackout = gap
			}
			col.gapOpen = false
		}
		col.lastCommit = ev.Time
	case hft.EventPromoted:
		col.acting = ev.Node
		col.failovers++
	case hft.EventFailstop:
		if ev.Node == col.acting && !col.gapOpen {
			col.gapOpen = true
			col.gapStart = col.lastCommit
		}
	}
}

// finish waits for the last drain goroutine (the caller closes the
// cluster first) and writes the event-derived fields into m.
func (col *evCollector) finish(m *Metrics) {
	col.wg.Wait()
	m.Failovers = col.failovers
	m.Blackout = col.blackout
}
