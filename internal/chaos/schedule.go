package chaos

import (
	"fmt"
	"math/rand"
	"strings"

	hft "repro"
)

// OpKind enumerates the perturbations a schedule can apply — the
// public Cluster API's live mutation surface.
type OpKind uint8

const (
	// OpFailPrimary failstops the primary's processor.
	OpFailPrimary OpKind = iota
	// OpFailBackup failstops backup Step.Backup (1-based).
	OpFailBackup
	// OpLinkDegrade degrades every inter-hypervisor link to
	// Step.Bandwidth / Step.Latency.
	OpLinkDegrade
	// OpLinkRestore restores the configured link model's parameters.
	OpLinkRestore
	// OpAddBackup reintegrates a new backup by live state transfer.
	OpAddBackup
	// OpSaveRestore checkpoints the session, restores it, re-saves the
	// restored session and compares the two blobs byte for byte
	// (invariant 4); execution continues on the restored session.
	OpSaveRestore
)

func (k OpKind) String() string {
	switch k {
	case OpFailPrimary:
		return "fail-primary"
	case OpFailBackup:
		return "fail-backup"
	case OpLinkDegrade:
		return "link-degrade"
	case OpLinkRestore:
		return "link-restore"
	case OpAddBackup:
		return "add-backup"
	case OpSaveRestore:
		return "save-restore"
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Coord is a replayable position in a run. Commit, when nonzero, names
// a cumulative epoch-commit ordinal — the protocol's natural, exactly
// reproducible pause coordinate. Otherwise Time names an exact virtual
// time. The shrinker prefers commits: "commit #12" survives schedule
// edits that shift the timeline, where "t=3.7ms" may land mid-epoch.
type Coord struct {
	Commit uint64
	Time   hft.Duration
}

func (c Coord) String() string {
	if c.Commit > 0 {
		return fmt.Sprintf("commit %d", c.Commit)
	}
	return fmt.Sprintf("t=%v", c.Time)
}

// Step is one perturbation at one coordinate.
type Step struct {
	At     Coord
	Op     OpKind
	Backup int // OpFailBackup target (1-based)
	// Bandwidth/Latency are OpLinkDegrade's parameters.
	Bandwidth int64
	Latency   hft.Duration
}

func (s Step) String() string {
	switch s.Op {
	case OpFailBackup:
		return fmt.Sprintf("%v @ %v (backup %d)", s.Op, s.At, s.Backup)
	case OpLinkDegrade:
		return fmt.Sprintf("%v @ %v (bw=%d lat=%v)", s.Op, s.At, s.Bandwidth, s.Latency)
	}
	return fmt.Sprintf("%v @ %v", s.Op, s.At)
}

// Schedule is a complete, self-contained run description: base
// configuration plus an ordered perturbation list. Everything needed
// to reconstruct the identical cluster is in here — no hidden state —
// which is what makes schedules shrinkable and emittable.
type Schedule struct {
	// Seed is the cluster's simulation seed.
	Seed int64
	// Workload names a canonical shape (ParseWorkload).
	Workload string
	// Epoch is the epoch length in instructions.
	Epoch uint64
	// Protocol selects §2 (Old) or §4.3 (New).
	Protocol hft.Protocol
	// Link names the channel model: "ethernet" or "atm".
	Link string
	// Backups is the initial replica count t.
	Backups int
	// Window, when nonzero, runs the output-commit latency engine with
	// this acknowledgment-window depth; Adaptive additionally enables
	// output-triggered epoch boundaries. Zero Window = classic
	// lock-step protocol.
	Window   int
	Adaptive bool
	// Steps are applied in order; each advances the session to its
	// coordinate first (a coordinate already in the past applies
	// immediately).
	Steps []Step
}

// LinkModel resolves the schedule's link name.
func (s Schedule) LinkModel() hft.LinkModel {
	if s.Link == "atm" {
		return hft.ATM155()
	}
	return hft.Ethernet10()
}

// String renders a compact one-line summary for logs.
func (s Schedule) String() string {
	proto := "old"
	if s.Protocol == hft.ProtocolNew {
		proto = "new"
	}
	var steps []string
	for _, st := range s.Steps {
		steps = append(steps, st.String())
	}
	oc := ""
	if s.Window > 0 {
		oc = fmt.Sprintf(" oc=w%d", s.Window)
		if s.Adaptive {
			oc += "+adaptive"
		}
	}
	return fmt.Sprintf("{%s seed=%d epoch=%d proto=%s link=%s t=%d%s: [%s]}",
		s.Workload, s.Seed, s.Epoch, proto, s.Link, s.Backups, oc, strings.Join(steps, "; "))
}

// Generator draw tables. Bounds are deliberate, not arbitrary:
//
//   - Link storms never drop messages and never push latency near the
//     50 ms failure-detection timeout: a generated storm must degrade,
//     not partition. A partition causes a spurious promotion with the
//     primary still alive — two acting coordinators — which the
//     simulation (correctly) reports as divergence. That is the
//     environment violating the paper's failstop assumption, not the
//     protocol violating its promises, so the generator stays inside
//     the assumption.
//   - Total failstops never exceed the initial backup count: the paper
//     tolerates t failures with t backups. (Reintegrated backups are
//     not credited — the joiner may still be in transit when a later
//     failstop lands.)
//   - Coordinates lean on commit ordinals (exactly replayable) over
//     virtual times, mirroring the shrinker's preference.
var (
	genEpochs      = []uint64{1024, 4096}
	genWindows     = []int{1, 2, 8}
	genBandwidths  = []int64{1_000_000, 2_000_000, 5_000_000, 10_000_000}
	genLatencies   = []hft.Duration{100 * hft.Microsecond, 500 * hft.Microsecond, 1 * hft.Millisecond, 2 * hft.Millisecond}
	genLinks       = []string{"ethernet", "atm"}
	genMaxSteps    = 5
	genMaxCommit   = uint64(48)
	genMaxTime     = 20 * hft.Millisecond
	genMaxAdds     = 2
	genMaxSaveRest = 1
)

// Generate draws one random schedule from rng. The same rng state
// always yields the same schedule — campaign reproducibility reduces
// to seed arithmetic.
func Generate(rng *rand.Rand) Schedule {
	shapes := Workloads()
	shape := shapes[rng.Intn(len(shapes))]

	s := Schedule{
		Seed:     1 + rng.Int63n(1<<31),
		Workload: shape.Name,
		Epoch:    genEpochs[rng.Intn(len(genEpochs))],
		Protocol: hft.ProtocolOld,
		Link:     genLinks[rng.Intn(len(genLinks))],
		Backups:  1,
	}
	if rng.Intn(2) == 1 {
		s.Protocol = hft.ProtocolNew
	}
	// Mostly pairs (the paper's prototype); occasionally deeper sets.
	switch rng.Intn(6) {
	case 0:
		s.Backups = 2
	case 1:
		s.Backups = 3
	}
	// Half the runs exercise the output-commit engine: window depth
	// drawn from the interesting points (1 = classic output commit,
	// 2 = shallow pipeline, 8 = deep), boundaries fixed or adaptive.
	if rng.Intn(2) == 1 {
		s.Window = genWindows[rng.Intn(len(genWindows))]
		s.Adaptive = rng.Intn(2) == 1
	}

	failBudget := s.Backups // total failstops (primary + backups)
	adds, saves := 0, 0
	n := rng.Intn(genMaxSteps + 1)
	for len(s.Steps) < n {
		st := Step{At: genCoord(rng)}
		switch rng.Intn(6) {
		case 0: // primary failstop
			if failBudget == 0 {
				continue
			}
			failBudget--
			st.Op = OpFailPrimary
		case 1: // backup failstop; may target an already-failed index
			if failBudget == 0 {
				continue
			}
			failBudget--
			st.Op = OpFailBackup
			st.Backup = 1 + rng.Intn(s.Backups+adds)
		case 2:
			st.Op = OpLinkDegrade
			st.Bandwidth = genBandwidths[rng.Intn(len(genBandwidths))]
			st.Latency = genLatencies[rng.Intn(len(genLatencies))]
		case 3:
			st.Op = OpLinkRestore
		case 4:
			if adds >= genMaxAdds {
				continue
			}
			adds++
			st.Op = OpAddBackup
		case 5:
			if saves >= genMaxSaveRest {
				continue
			}
			saves++
			st.Op = OpSaveRestore
		}
		s.Steps = append(s.Steps, st)
	}
	return s
}

// genCoord draws a step coordinate: mostly commit ordinals, sometimes
// exact virtual times (which exercise the RunFor pause path and give
// the shrinker's coordinate-reduction phase something to reduce).
func genCoord(rng *rand.Rand) Coord {
	if rng.Intn(10) < 7 {
		return Coord{Commit: 1 + uint64(rng.Intn(int(genMaxCommit)))}
	}
	return Coord{Time: hft.Duration(1+rng.Int63n(int64(genMaxTime/hft.Millisecond))) * hft.Millisecond}
}
