// Package chaos is the property-based campaign driver: it generates
// seeded random perturbation schedules over the public Cluster API,
// executes them at quick scale, and checks every run against the
// invariants the paper's protocol promises regardless of what the
// environment does to the replica set:
//
//  1. Digest — the replicated run's guest checksum equals the bare
//     (unreplicated) run of the same workload: replication is
//     transparent to the computation (§2's whole argument).
//  2. Output — the environment-visible console transcript equals the
//     bare run's byte for byte: output commit is exactly-once, even
//     across promotions and retransmissions (§2.2 case i).
//  3. Progress — the session never wedges: virtual time keeps
//     advancing until the workload completes (bounded by the session
//     watchdogs; a stall names the blocked process).
//  4. Snapshot — a Save/Restore round trip mid-run is byte-identical:
//     re-saving the restored session reproduces the checkpoint
//     exactly (the determinism contract, applied to itself).
//  5. Service — when the workload is a network service under client
//     load, the NIC's reply transcript equals the bare run's byte for
//     byte and every client request is answered exactly once: the
//     client population cannot distinguish the replicated service
//     from a single machine, whatever the schedule did to it.
//
// A violating schedule is automatically shrunk (delta debugging over
// the perturbation list, then coordinate reduction from exact virtual
// times to epoch-commit ordinals) until 1-minimal, and emitted as a
// replayable `hftsim -scenario` script plus the failing seed.
package chaos

import (
	"fmt"
	"sync"

	hft "repro"
	"repro/internal/clientsim"
	"repro/internal/console"
	"repro/internal/scsi"
	"repro/internal/session"
	"repro/internal/sim"
)

// Workload names the canonical quick-scale workload shapes the
// generator draws from. Each shape fixes the guest benchmark AND its
// device/terminal configuration, so a name + seed + epoch length fully
// determines a run — which is what makes emitted scenarios replayable.
type Workload struct {
	// Name is the shape's identifier ("cpu", "write", "read", "copy",
	// "echo", "serve") — also hftsim's -workload vocabulary.
	Name string
	// Guest is the benchmark program.
	Guest hft.Workload
	// ExtraDisks is the number of additional shared disks the platform
	// must carry (TwoDiskCopy needs one).
	ExtraDisks int
	// Terminal is the scripted console input (TerminalEcho needs a
	// script ending in TerminalEOT).
	Terminal []hft.TerminalInput
	// ClientLoad is the simulated client population (ServeRequests
	// needs one; the request count derives from the guest's op count).
	ClientLoad *hft.ClientLoad
}

// EchoScript is the canonical TerminalEcho input: two bursts, the
// second terminated by EOT so the guest halts. hftsim uses the same
// script for -workload echo, so emitted scenarios replay identically.
func EchoScript() []hft.TerminalInput {
	return []hft.TerminalInput{
		{At: 1 * hft.Millisecond, Data: "chaos"},
		{At: 2 * hft.Millisecond, Data: "run" + string(rune(hft.TerminalEOT))},
	}
}

// ServeLoad is the canonical client population for the serve shape:
// eight connections, arrivals spread wide enough that perturbation
// coordinates land mid-load, and the default (2 ms) retransmission
// timeout — far below the replicated service's healthy latency, so
// every schedule hammers the NIC's receiver-side dedup with live
// retransmissions. hftsim uses the same population for -workload
// serve, so emitted scenarios replay identically.
func ServeLoad() *hft.ClientLoad {
	return &hft.ClientLoad{Clients: 8, MeanGap: 500 * hft.Microsecond}
}

// Workloads returns the canonical shapes, in the generator's draw
// order. Sizes are quick-scale: every shape completes in well under a
// second of wall time so campaigns can run thousands of schedules.
func Workloads() []Workload {
	return []Workload{
		{Name: "cpu", Guest: hft.CPUIntensive(4000)},
		{Name: "write", Guest: hft.DiskWrite(3, 2048)},
		{Name: "read", Guest: hft.DiskRead(3, 2048)},
		{Name: "copy", Guest: hft.TwoDiskCopy(2, 2048), ExtraDisks: 1},
		{Name: "echo", Guest: hft.TerminalEcho(), Terminal: EchoScript()},
		{Name: "serve", Guest: hft.ServeRequests(24, 50), ClientLoad: ServeLoad()},
	}
}

// ParseWorkload resolves a shape by name — shared by the generator,
// the executor, and hftsim's -workload flag, so a scenario emitted
// here reconstructs the identical cluster there.
func ParseWorkload(name string) (Workload, error) {
	for _, w := range Workloads() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("chaos: unknown workload %q (have cpu, write, read, copy, echo, serve)", name)
}

// ClusterOptions materializes the public options for a replicated run
// of this shape.
func (w Workload) ClusterOptions(seed int64, epoch uint64, proto hft.Protocol, link hft.LinkModel, backups int) []hft.Option {
	opts := []hft.Option{
		hft.WithWorkload(w.Guest),
		hft.WithSeed(seed),
		hft.WithEpochLength(epoch),
		hft.WithProtocol(proto),
		hft.WithLink(link),
		hft.WithBackups(backups),
	}
	for i := 0; i < w.ExtraDisks; i++ {
		opts = append(opts, hft.WithDisk(hft.DiskSpec{}))
	}
	if len(w.Terminal) > 0 {
		opts = append(opts, hft.WithTerminal(w.Terminal...))
	}
	if w.ClientLoad != nil {
		opts = append(opts, hft.WithClientLoad(*w.ClientLoad))
	}
	return opts
}

// clientLoadConfig lowers the public client-load description to the
// session layer's representation; the request count derives from the
// guest's op count, mirroring the public option's validation.
func (w Workload) clientLoadConfig() *clientsim.Config {
	if w.ClientLoad == nil {
		return nil
	}
	cl := w.ClientLoad
	return &clientsim.Config{
		Clients:      cl.Clients,
		Requests:     int(w.Guest.Ops),
		PayloadWords: cl.PayloadWords,
		Start:        sim.Time(cl.Start),
		MeanGap:      sim.Time(cl.MeanGap),
		Timeout:      sim.Time(cl.Timeout),
	}
}

// bareKey identifies a bare baseline. Bare runs see no network and no
// failures, so the protocol/link/backups axes are irrelevant.
type bareKey struct {
	workload string
	seed     int64
	epoch    uint64
}

// baseline is what the invariants compare a perturbed replicated run
// against.
type baseline struct {
	checksum uint32
	console  string
	replies  string
	panic    uint32
	err      error
}

var (
	bareMu    sync.Mutex
	bareCache = map[bareKey]baseline{}
)

// bareBaseline runs (or recalls) the unreplicated reference execution
// for a shape. The public hft.RunBare cannot express multi-disk or
// terminal configurations, so the baseline is computed directly on the
// session engine with Bare set. Results are cached: a campaign
// executes thousands of schedules over five shapes.
func bareBaseline(w Workload, seed int64, epoch uint64) baseline {
	key := bareKey{w.Name, seed, epoch}
	bareMu.Lock()
	b, ok := bareCache[key]
	bareMu.Unlock()
	if ok {
		return b
	}

	eng := session.New(session.Options{
		Seed:        seed,
		Bare:        true,
		Program:     session.WorkloadProgram(w.Guest),
		ExtraDisks:  make([]scsi.DiskConfig, w.ExtraDisks),
		Terminal:    terminalInputs(w.Terminal),
		ClientLoad:  w.clientLoadConfig(),
		EpochLength: epoch,
	})
	defer eng.Close()
	if err := eng.RunToCompletion(nil); err != nil {
		b = baseline{err: fmt.Errorf("chaos: bare baseline for %q: %w", w.Name, err)}
	} else if r, err := eng.Result(); err != nil {
		b = baseline{err: fmt.Errorf("chaos: bare baseline for %q: %w", w.Name, err)}
	} else {
		b = baseline{checksum: r.Guest.Checksum, console: r.Console, replies: r.NetReplies, panic: r.Guest.Panic}
	}

	bareMu.Lock()
	bareCache[key] = b
	bareMu.Unlock()
	return b
}

// Bare exposes the cached bare reference execution for a shape —
// hftsim's `check` scenario command compares a replayed run against
// it, turning an emitted reproduction into a self-verifying script.
// replies is the NIC reply transcript (empty for shapes without a
// client population).
func Bare(w Workload, seed int64, epoch uint64) (checksum uint32, console, replies string, err error) {
	b := bareBaseline(w, seed, epoch)
	return b.checksum, b.console, b.replies, b.err
}

// terminalInputs lowers the public terminal script to the console
// layer's representation (what the session engine consumes).
func terminalInputs(script []hft.TerminalInput) []console.Input {
	var out []console.Input
	for _, ev := range script {
		out = append(out, console.Input{At: sim.Time(ev.At), Data: []byte(ev.Data)})
	}
	return out
}
