package chaos

import (
	"bytes"
	"errors"
	"fmt"

	hft "repro"
)

// ViolationKind classifies an invariant failure.
type ViolationKind uint8

const (
	// VDigest: the replicated run's guest checksum (or panic code)
	// diverged from the bare baseline.
	VDigest ViolationKind = iota + 1
	// VOutput: the console transcript diverged from the bare baseline —
	// output was lost or committed more than once.
	VOutput
	// VProgress: the session wedged — virtual time stopped advancing
	// (ErrStalled names the blocked process) or the run overran the
	// session's wall bound.
	VProgress
	// VSnapshot: a Save/Restore round trip was not byte-identical, or
	// the restore's replay verification failed.
	VSnapshot
	// VPanic: the simulation panicked (a divergence tripwire or an
	// internal invariant) — always a bug, never expected behavior.
	VPanic
	// VService: the NIC reply transcript diverged from the bare
	// baseline, or a client request went unanswered — the client
	// population could distinguish the replicated service from a
	// single machine.
	VService
)

func (k ViolationKind) String() string {
	switch k {
	case VDigest:
		return "digest"
	case VOutput:
		return "output"
	case VProgress:
		return "progress"
	case VSnapshot:
		return "snapshot"
	case VPanic:
		return "panic"
	case VService:
		return "service"
	}
	return fmt.Sprintf("violation(%d)", uint8(k))
}

// Violation reports one invariant failure.
type Violation struct {
	Kind   ViolationKind
	Detail string
}

func (v Violation) String() string { return fmt.Sprintf("%v: %s", v.Kind, v.Detail) }

// Applied records where one step actually landed — the observed
// (commit ordinal, virtual time) pair the shrinker uses to convert
// time coordinates into replayable commit coordinates.
type Applied struct {
	// Done reports whether the step was applied at all (false: the
	// workload completed first, or the op had nothing to do).
	Done bool
	// Commit/Time are the session position at application.
	Commit uint64
	Time   hft.Duration
	// Err records a non-fatal application error (the run continued).
	Err string
}

// Report is the outcome of executing one schedule.
type Report struct {
	Schedule Schedule
	// Violation is nil for a clean run.
	Violation *Violation
	// AppliedAt has one entry per schedule step.
	AppliedAt []Applied
	// Time is the completion time (zero if the run never completed).
	Time hft.Duration
}

// Failed reports whether the run violated an invariant.
func (r Report) Failed() bool { return r.Violation != nil }

// maxVirtual bounds how far Execute lets a run advance. Every workload
// the generator emits completes within a few hundred virtual
// milliseconds, even over a degraded link; a run still going after this
// much virtual time has wedged, and letting it grind toward the session
// engine's own bound (20000 virtual seconds) would stall the whole
// campaign. Hitting the cap is invariant 3: no wedged coordinator.
const maxVirtual = 30 * hft.Second

// Execute runs one schedule to completion and checks all five
// invariants. It never panics: simulation panics (divergence
// tripwires) are converted to VPanic violations, which is exactly what
// a campaign wants from a run that found a bug.
func Execute(s Schedule) Report { return ExecuteOpts(s, ExecOptions{}) }

// ExecOptions customizes one schedule execution beyond the schedule
// itself. The zero value reproduces Execute exactly.
type ExecOptions struct {
	// SharedImage backs every replica's RAM with the content-interned
	// copy-on-write base image (hft.WithSharedImage) — fleet runs
	// share kernel pages across thousands of concurrent clusters.
	// Results and violations are unaffected.
	SharedImage bool
	// Metrics, when non-nil, receives the run's aggregates when
	// ExecuteOpts returns (for violating runs, whatever was collected
	// up to the violation).
	Metrics *Metrics
}

// ExecuteOpts is Execute with execution options (see ExecOptions).
func ExecuteOpts(s Schedule, o ExecOptions) (rep Report) {
	rep.Schedule = s
	rep.AppliedAt = make([]Applied, len(s.Steps))

	defer func() {
		if r := recover(); r != nil {
			rep.Violation = &Violation{Kind: VPanic, Detail: fmt.Sprintf("simulation panic: %v", r)}
		}
	}()

	shape, err := ParseWorkload(s.Workload)
	if err != nil {
		rep.Violation = &Violation{Kind: VPanic, Detail: err.Error()}
		return rep
	}
	bare := bareBaseline(shape, s.Seed, s.Epoch)
	if bare.err != nil {
		rep.Violation = &Violation{Kind: VPanic, Detail: bare.err.Error()}
		return rep
	}

	// The metrics finalizer registers BEFORE the Close defer below, so
	// it runs after Close: the event channel is closed, the collector's
	// drain goroutine has seen the complete stream, and finish() only
	// waits for it.
	var col *evCollector
	if o.Metrics != nil {
		col = &evCollector{}
		defer func() { col.finish(o.Metrics) }()
	}

	opts := shape.ClusterOptions(s.Seed, s.Epoch, s.Protocol, s.LinkModel(), s.Backups)
	if s.Window > 0 {
		opts = append(opts, hft.WithOutputCommit(hft.OutputCommit{Window: s.Window, Adaptive: s.Adaptive}))
	}
	if o.SharedImage {
		opts = append(opts, hft.WithSharedImage())
	}
	c, err := hft.NewCluster(opts...)
	if err != nil {
		rep.Violation = &Violation{Kind: VPanic, Detail: fmt.Sprintf("cluster construction: %v", err)}
		return rep
	}
	defer func() { c.Close() }()
	if col != nil {
		col.attach(c)
	}

	for i, st := range s.Steps {
		snap, err := advanceTo(c, st.At)
		if err != nil {
			rep.Violation = progressViolation(err)
			return rep
		}
		rep.AppliedAt[i] = Applied{Done: true, Commit: snap.Commits, Time: snap.Now}
		if snap.Done {
			rep.AppliedAt[i].Done = false
			continue // completed before the coordinate: nothing to perturb
		}

		switch st.Op {
		case OpFailPrimary:
			c.FailPrimary()
		case OpFailBackup:
			err = c.FailBackup(st.Backup)
		case OpLinkDegrade:
			err = c.SetLinkQuality(hft.LinkQuality{BitsPerSecond: st.Bandwidth, Latency: st.Latency})
		case OpLinkRestore:
			p := s.LinkModel().LinkParams()
			err = c.SetLinkQuality(hft.LinkQuality{BitsPerSecond: p.BitsPerSecond, Latency: p.Latency})
		case OpAddBackup:
			_, err = c.AddBackup()
		case OpSaveRestore:
			var restored *hft.Cluster
			restored, err = saveRestore(c)
			if err != nil {
				rep.Violation = &Violation{Kind: VSnapshot, Detail: err.Error()}
				return rep
			}
			c.Close()
			c = restored
			if col != nil {
				col.rotate(c)
			}
		}
		if err != nil {
			// Perturbations racing completion lose gracefully
			// (ErrCompleted and kin); anything else is recorded but the
			// run continues — the invariants have the final word.
			rep.AppliedAt[i].Done = false
			rep.AppliedAt[i].Err = err.Error()
		}
	}

	snap, err := c.RunUntil(func(s hft.Snapshot) bool { return s.Done || s.Now >= maxVirtual })
	if err != nil {
		rep.Violation = progressViolation(err)
		return rep
	}
	if !snap.Done {
		rep.Violation = &Violation{Kind: VProgress,
			Detail: fmt.Sprintf("session wedged: no completion by t=%v (commit %d, %d epochs)", snap.Now, snap.Commits, snap.Epochs)}
		return rep
	}
	res, err := c.Result()
	if err != nil {
		rep.Violation = progressViolation(err)
		return rep
	}
	rep.Time = res.Time
	if o.Metrics != nil {
		o.Metrics.Commits = snap.Commits
		o.Metrics.Instructions = snap.GuestInstructions
		o.Metrics.Time = res.Time
	}

	switch {
	case res.GuestPanic != 0:
		rep.Violation = &Violation{Kind: VDigest,
			Detail: fmt.Sprintf("guest panicked with code %#x (bare run: %#x)", res.GuestPanic, bare.panic)}
	case res.Checksum != bare.checksum:
		rep.Violation = &Violation{Kind: VDigest,
			Detail: fmt.Sprintf("checksum %#x, bare run computed %#x", res.Checksum, bare.checksum)}
	case res.Console != bare.console:
		rep.Violation = &Violation{Kind: VOutput,
			Detail: fmt.Sprintf("console transcript %q, bare run produced %q", res.Console, bare.console)}
	case res.NetReplies != bare.replies:
		rep.Violation = &Violation{Kind: VService,
			Detail: fmt.Sprintf("reply transcript %d bytes, bare run produced %d bytes (first difference at offset %d)",
				len(res.NetReplies), len(bare.replies),
				diffOffset([]byte(res.NetReplies), []byte(bare.replies)))}
	case res.Divergences != 0:
		rep.Violation = &Violation{Kind: VDigest,
			Detail: fmt.Sprintf("backup reported %d state-digest divergences", res.Divergences)}
	}
	if rep.Violation == nil && shape.ClientLoad != nil {
		// Exactly-once from the clients' side too: the transcript proves
		// what the service emitted; this proves every request's reply
		// actually reached its client.
		if m, ok := c.ServiceLatencies(); !ok || m.Answered != m.Requests || m.Requests != int(shape.Guest.Ops) {
			rep.Violation = &Violation{Kind: VService,
				Detail: fmt.Sprintf("clients saw %d replies for %d issued requests (%d configured)",
					m.Answered, m.Requests, shape.Guest.Ops)}
		}
	}
	return rep
}

// advanceTo moves the session to a step coordinate. Commit coordinates
// use boundary-sampled RunUntil (the replayable pause); time
// coordinates use RunFor. A coordinate already in the past applies
// immediately — the step runs at the current position.
func advanceTo(c *hft.Cluster, at Coord) (hft.Snapshot, error) {
	if at.Commit > 0 {
		snap, err := c.RunUntil(func(s hft.Snapshot) bool {
			return s.Commits >= at.Commit || s.Now >= maxVirtual
		})
		if err == nil && !snap.Done && snap.Commits < at.Commit {
			err = fmt.Errorf("session wedged: commit %d not reached by t=%v (stuck at commit %d)",
				at.Commit, snap.Now, snap.Commits)
		}
		return snap, err
	}
	now := c.Now()
	if at.Time <= now {
		return c.Snapshot(), nil
	}
	return c.RunFor(at.Time - now)
}

// progressViolation classifies an advancement error as invariant 3.
func progressViolation(err error) *Violation {
	if errors.Is(err, hft.ErrStalled) {
		return &Violation{Kind: VProgress, Detail: err.Error()}
	}
	return &Violation{Kind: VProgress, Detail: fmt.Sprintf("run did not complete: %v", err)}
}

// saveRestore performs invariant 4's round trip: Save, Restore (with
// the library's own replay verification), re-Save, compare. On success
// the caller continues on the restored session — the rest of the run
// then also proves the restored state behaves identically.
func saveRestore(c *hft.Cluster) (*hft.Cluster, error) {
	var first bytes.Buffer
	if err := c.Save(&first); err != nil {
		return nil, fmt.Errorf("save: %v", err)
	}
	restored, err := hft.Restore(bytes.NewReader(first.Bytes()))
	if err != nil {
		return nil, fmt.Errorf("restore: %v", err)
	}
	var second bytes.Buffer
	if err := restored.Save(&second); err != nil {
		restored.Close()
		return nil, fmt.Errorf("re-save: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		restored.Close()
		return nil, fmt.Errorf("round trip not byte-identical: saved %d bytes, re-saved %d bytes (first difference at offset %d)",
			first.Len(), second.Len(), diffOffset(first.Bytes(), second.Bytes()))
	}
	return restored, nil
}

// diffOffset returns the first index where a and b differ.
func diffOffset(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
