package chaos

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/harness"
)

// CampaignOptions configures a campaign.
type CampaignOptions struct {
	// Runs is the number of schedules to generate and execute.
	Runs int
	// Seed derives every schedule: run i draws from a generator seeded
	// by mix(Seed, i), so any single run replays independently of
	// worker scheduling and of Runs.
	Seed int64
	// Dir, when non-empty, receives one scenario artifact per shrunk
	// violation (chaos_run<i>.hfts). Created if missing.
	Dir string
	// MaxShrink bounds how many violations are shrunk (shrinking costs
	// ~ShrinkBudget executions each; the rest are reported raw).
	// Default 3.
	MaxShrink int
	// ShrinkBudget bounds executions per shrink. Default 64.
	ShrinkBudget int
	// Log, when set, receives one-line progress (violations as found,
	// shrink results).
	Log io.Writer
	// Workers is the fan-out width on the fleet work-stealing scheduler
	// (internal/sched): < 0 selects all cores, 0 falls back to the
	// deprecated process-global harness.SetWorkers value.
	Workers int
}

// ViolationReport is one failing run, possibly with its shrunk
// reproduction.
type ViolationReport struct {
	// Run is the campaign run index (replays as Schedule(seed, Run)).
	Run int
	// Schedule/Report are the original failing run.
	Schedule Schedule
	Report   Report
	// Shrunk is the minimized reproduction (zero-valued if this
	// violation was beyond MaxShrink).
	Shrunk ShrinkResult
	// Scenario is the emitted hftsim script for the smallest known
	// reproduction.
	Scenario string
	// Artifact is the scenario's path on disk ("" if Dir was unset).
	Artifact string
}

// CampaignReport summarizes a campaign.
type CampaignReport struct {
	Runs       int
	Violations []ViolationReport
}

// Failed reports whether any run violated an invariant.
func (r CampaignReport) Failed() bool { return len(r.Violations) > 0 }

// runSeed derives run i's generator seed from the campaign seed —
// SplitMix64's finalizer, so neighboring indexes land far apart in the
// generator's state space.
func runSeed(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64((z ^ (z >> 31)) &^ (1 << 63))
}

// ScheduleAt reproduces campaign run i without running the campaign —
// the replay handle a violation report names.
func ScheduleAt(seed int64, i int) Schedule {
	return Generate(rand.New(rand.NewSource(runSeed(seed, i))))
}

// RunCampaign generates and executes o.Runs schedules across the
// harness worker pool, then shrinks and emits artifacts for the first
// MaxShrink violations (in run order — deterministic regardless of
// worker interleaving).
func RunCampaign(o CampaignOptions) (CampaignReport, error) {
	if o.Runs <= 0 {
		return CampaignReport{}, fmt.Errorf("chaos: campaign needs a positive run count (got %d)", o.Runs)
	}
	if o.MaxShrink == 0 {
		o.MaxShrink = 3
	}
	logf := func(format string, args ...any) {
		if o.Log != nil {
			fmt.Fprintf(o.Log, format+"\n", args...)
		}
	}

	// Execute the whole batch on the fleet scheduler. Reports land in
	// run-index slots, so everything downstream is deterministic.
	reports := make([]Report, o.Runs)
	harness.ForEachWorkers(o.Workers, o.Runs, func(i int) {
		reports[i] = Execute(ScheduleAt(o.Seed, i))
	})

	rep := CampaignReport{Runs: o.Runs}
	for i := range reports {
		if !reports[i].Failed() {
			continue
		}
		logf("run %d FAILED (%v): %v", i, reports[i].Violation, reports[i].Schedule)
		rep.Violations = append(rep.Violations, ViolationReport{
			Run: i, Schedule: reports[i].Schedule, Report: reports[i],
		})
	}
	if !rep.Failed() {
		logf("campaign clean: %d runs, all invariants held", o.Runs)
		return rep, nil
	}

	if o.Dir != "" {
		if err := os.MkdirAll(o.Dir, 0o755); err != nil {
			return rep, fmt.Errorf("chaos: artifact dir: %w", err)
		}
	}
	for vi := range rep.Violations {
		v := &rep.Violations[vi]
		minimal := v.Schedule
		report := v.Report
		if vi < o.MaxShrink {
			v.Shrunk = Shrink(v.Schedule, v.Report, o.ShrinkBudget)
			minimal, report = v.Shrunk.Schedule, v.Shrunk.Report
			logf("run %d shrunk: %d -> %d steps in %d executions (1-minimal: %v)",
				v.Run, len(v.Schedule.Steps), len(minimal.Steps), v.Shrunk.Executions, v.Shrunk.Minimal)
		}
		note := fmt.Sprintf("campaign seed %d, run %d", o.Seed, v.Run)
		v.Scenario = Scenario(minimal, report.Violation, note)
		if o.Dir != "" {
			path := filepath.Join(o.Dir, fmt.Sprintf("chaos_run%d.hfts", v.Run))
			if err := os.WriteFile(path, []byte(v.Scenario), 0o644); err != nil {
				return rep, fmt.Errorf("chaos: artifact: %w", err)
			}
			v.Artifact = path
			logf("run %d artifact: %s", v.Run, path)
		}
	}
	return rep, nil
}
