package session

// Edge cases the chaos campaign's perturbation surface relies on:
// perturbations racing workload completion, the bounded-progress
// watchdog's error surface, and journal-replay corner cases (two
// perturbations at one commit ordinal, failstops aimed at already-dead
// replicas, reintegration racing a capture).

import (
	"errors"
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// TestPerturbAfterCompletion pins satellite contract #1: every
// perturbation entry point reports ErrCompleted (or, for FailPrimary's
// legacy no-error signature, false) once the workload is done, instead
// of silently no-opping.
func TestPerturbAfterCompletion(t *testing.T) {
	e := New(cpuOpts(2000))
	defer e.Close()
	if err := e.RunToCompletion(nil); err != nil {
		t.Fatal(err)
	}
	if !e.Done() {
		t.Fatal("workload did not complete")
	}

	if e.FailPrimary() {
		t.Error("FailPrimary reported an effect after completion")
	}
	if err := e.FailBackup(1); !errors.Is(err, ErrCompleted) {
		t.Errorf("FailBackup after completion: %v, want ErrCompleted", err)
	}
	if err := e.SetLinkQuality(netsim.Quality{BitsPerSecond: 1_000_000}); !errors.Is(err, ErrCompleted) {
		t.Errorf("SetLinkQuality after completion: %v, want ErrCompleted", err)
	}
	if _, err := e.AddBackup(AddBackupConfig{}); !errors.Is(err, ErrCompleted) {
		t.Errorf("AddBackup after completion: %v, want ErrCompleted", err)
	}
}

// TestFailPrimaryReportsEffect: true exactly once — the second call
// finds the primary already dead.
func TestFailPrimaryReportsEffect(t *testing.T) {
	e := New(cpuOpts(20000))
	defer e.Close()
	if err := e.RunFor(2 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !e.FailPrimary() {
		t.Error("first FailPrimary reported no effect")
	}
	if e.FailPrimary() {
		t.Error("second FailPrimary reported an effect on a dead primary")
	}
	if err := e.RunToCompletion(nil); err != nil {
		t.Fatal(err)
	}
}

// TestStallErrorSurface forces a scheduler livelock inside a live
// session and requires RunFor to surface ErrStalled naming the
// offending process. The livelock is injected directly into the
// session's kernel — a callback rescheduling itself at one instant —
// which is exactly what a protocol bug that stops advancing virtual
// time looks like to the watchdog.
func TestStallErrorSurface(t *testing.T) {
	e := New(cpuOpts(20000))
	defer e.Close()
	e.Boot()
	e.k.SetStallLimit(500) // tighten so the test is fast

	var spin func()
	spin = func() { e.k.At(e.k.Now(), spin) }
	e.k.At(e.k.Now()+sim.Millisecond, spin)

	err := e.RunFor(10 * sim.Millisecond)
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("RunFor with a livelock: %v, want ErrStalled", err)
	}
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a *StallError", err)
	}
	if se.At != e.Now() {
		t.Errorf("stall at %v, session now %v", se.At, e.Now())
	}
	if se.Proc == "" {
		t.Error("StallError does not name the dispatched process")
	}

	// The stall is sticky: further advancement keeps failing rather
	// than spinning forever.
	if err := e.RunFor(10 * sim.Millisecond); !errors.Is(err, ErrStalled) {
		t.Errorf("second RunFor: %v, want ErrStalled", err)
	}
	if err := e.RunToCompletion(nil); !errors.Is(err, ErrStalled) {
		t.Errorf("RunToCompletion on stalled session: %v, want ErrStalled", err)
	}
}

// TestFailBackupFreedIndex: a failstop aimed at a backup index that a
// prior failstop already freed must be an error-free no-op (the index
// is in range; the replica is just dead) — and must not disturb the
// run's result. Mirrors the journal-replay situation where a replayed
// FailBackup targets a node an earlier entry already killed.
func TestFailBackupFreedIndex(t *testing.T) {
	o := cpuOpts(20000)
	o.Backups = 2
	e := New(o)
	defer e.Close()
	if err := e.RunFor(2 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := e.FailBackup(1); err != nil {
		t.Fatal(err)
	}
	if !e.BackupFailed(1) {
		t.Fatal("backup 1 not marked failed")
	}
	// Same index again: dead already, no effect, no error.
	if err := e.FailBackup(1); err != nil {
		t.Errorf("re-failing dead backup: %v", err)
	}
	// Out of range stays an error.
	if err := e.FailBackup(7); err == nil {
		t.Error("FailBackup(7) on a 2-backup set succeeded")
	}
	if err := e.RunToCompletion(nil); err != nil {
		t.Fatal(err)
	}
	r, err := e.Result()
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the same run with a single failstop.
	ref := New(func() Options { o2 := cpuOpts(20000); o2.Backups = 2; return o2 }())
	defer ref.Close()
	if err := ref.RunFor(2 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := ref.FailBackup(1); err != nil {
		t.Fatal(err)
	}
	if err := ref.RunToCompletion(nil); err != nil {
		t.Fatal(err)
	}
	rr, err := ref.Result()
	if err != nil {
		t.Fatal(err)
	}
	if r.Time != rr.Time || r.Guest != rr.Guest {
		t.Errorf("duplicate failstop changed the run: %v/%#x vs %v/%#x",
			r.Time, r.Guest.Checksum, rr.Time, rr.Guest.Checksum)
	}
}

// TestSameCommitOrdinalPerturbations: two perturbations applied at the
// SAME commit ordinal must replay deterministically in application
// order — the coordinate does not disambiguate them; the journal's
// sequence does. Pins the semantics the chaos shrinker leans on when
// coordinate reduction collapses two steps onto one boundary.
func TestSameCommitOrdinalPerturbations(t *testing.T) {
	run := func() (Result, error) {
		o := cpuOpts(20000)
		o.Backups = 2
		e := New(o)
		defer e.Close()
		if err := e.RunUntilCommits(6); err != nil {
			return Result{}, err
		}
		// Two perturbations, same ordinal, no time advance between.
		if err := e.SetLinkQuality(netsim.Quality{BitsPerSecond: 2_000_000}); err != nil {
			return Result{}, err
		}
		if err := e.FailBackup(2); err != nil {
			return Result{}, err
		}
		if err := e.RunToCompletion(nil); err != nil {
			return Result{}, err
		}
		return e.Result()
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time || a.Guest != b.Guest || a.PrimaryStats != b.PrimaryStats {
		t.Errorf("same-ordinal perturbation pair not deterministic: %v vs %v", a.Time, b.Time)
	}
}

// TestAddBackupSnapshotCommits: Snapshot.Commits tracks the cumulative
// commit ordinal across a reintegration quiesce — AddBackup moves
// virtual time to the next boundary, and the snapshot taken right
// after must agree with Commits() (the pause coordinate Save records
// when a Save races an AddBackup).
func TestAddBackupSnapshotCommits(t *testing.T) {
	e := New(cpuOpts(20000))
	defer e.Close()
	if err := e.RunUntilCommits(4); err != nil {
		t.Fatal(err)
	}
	before := e.Commits()
	if _, err := e.AddBackup(AddBackupConfig{}); err != nil {
		t.Fatal(err)
	}
	after := e.Commits()
	if after <= before {
		t.Fatalf("AddBackup did not advance the commit ordinal (%d -> %d)", before, after)
	}
	if s := e.Snapshot(); s.Commits != after {
		t.Errorf("Snapshot.Commits = %d, Commits() = %d", s.Commits, after)
	}
	if err := e.RunToCompletion(nil); err != nil {
		t.Fatal(err)
	}
}
