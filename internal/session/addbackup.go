package session

// Backup reintegration: after a failstop the cluster runs with reduced
// redundancy forever unless the repaired processor can rejoin — the
// paper's §5 repair assumption, solved in industrial descendants
// (VMware FT, Remus) by live VM state transfer. AddBackup implements
// it inside the simulation:
//
//  1. quiesce — advance to the acting coordinator's next epoch commit,
//     the protocol's natural consistency point: delivery for the epoch
//     is complete, the interrupt buffer is empty, and the boundary's
//     Tme value is in hand;
//  2. capture — serialize the coordinator's complete machine and
//     hypervisor state (internal/snapshot), with the backup-side
//     adjustments applied (I/O suppressed per §2.2 case i, issued-real
//     latches cleared per P3);
//  3. ship — send the blob through a dedicated simulated link with the
//     same cost model, so transfer time is charged to virtual time
//     without head-of-line-blocking the protocol stream;
//  4. resume — the pair keeps executing during the transfer. The
//     joiner's receiver processes start immediately (its hypervisor is
//     alive; only the guest image is in transit), acknowledging and
//     filing the live protocol stream so no coordinator wait stalls on
//     the migration. When the image lands, the joiner installs it and
//     runs the ordinary Backup engine from epoch E+1 with Tme as its
//     clock base (rule P5's steady-state resynchronization, applied
//     once at joining). Its digest checks then hold by construction:
//     identical state plus identical inputs is the paper's whole
//     argument.
//
// The joiner executes epochs at guest speed, so it trails the acting
// coordinator by roughly the transfer duration for the rest of the
// run — the reintegration's cost is visible in the session's
// completion time, which is the point of charging it to the link. If
// the source processor failstops mid-transfer, an image already on the
// wire still arrives (fail-stop halts the sender, not frames in
// flight) and the join proceeds on the promoted coordinator's stream;
// the joiner withdraws only if a detection timeout fires on the downed
// channel before the image lands.

import (
	"errors"
	"fmt"

	"repro/internal/netsim"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// AddBackupConfig parameterizes a reintegration.
type AddBackupConfig struct {
	// Link configures the new node's channels to every existing node
	// (zero value: the cluster's boot-time link model).
	Link netsim.LinkConfig
}

// setJoinBarrier arms (or disarms) the reintegration drain on every
// engine that coordinates — or may promote into coordinating — while
// the quiesce runs.
func (e *Engine) setJoinBarrier(on bool) {
	e.pri.SetJoinBarrier(on)
	for _, b := range e.baks {
		b.SetJoinBarrier(on)
	}
}

// actingDrained reports whether the acting coordinator's replication
// stream is fully drained (vacuously true for the classic protocol path,
// which transmits inline at the boundary).
func (e *Engine) actingDrained() bool {
	if e.lastNode == 0 {
		return e.pri.ReplicationDrained()
	}
	if n := e.lastNode - 1; n >= 0 && n < len(e.baks) {
		return e.baks[n].ReplicationDrained()
	}
	return true
}

// AddBackup reintegrates a new backup at the lowest priority and
// returns its node index. The session advances to the acting
// coordinator's next epoch commit (virtual time moves) before the
// state transfer begins.
func (e *Engine) AddBackup(cfg AddBackupConfig) (int, error) {
	if e.closed {
		return 0, errors.New("session: engine is closed")
	}
	if e.o.Bare {
		return 0, errors.New("session: bare run has no replica set")
	}
	e.Boot()
	if e.finished {
		return 0, ErrCompleted
	}

	// Quiesce at the next *replicated* epoch commit. An epoch boundary
	// alone is not a safe capture point under output commit: the
	// boundary's frame may still sit in the coordinator's transmit queue,
	// where a failstop destroys it — the promoted backup would then
	// re-execute that epoch live, while the joiner's image certifies the
	// dead coordinator's version of it. The join barrier holds the acting
	// coordinator at its next boundary until the stream drains (transmit
	// queue flushed, every frame acknowledged by every live peer), so the
	// captured image never exceeds what the survivors can reconstruct.
	start := e.commits
	e.setJoinBarrier(true)
	err := e.RunUntil(func() bool { return e.commits > start && e.actingDrained() })
	e.setJoinBarrier(false)
	if err != nil {
		return 0, err
	}
	if e.commits == start {
		return 0, errors.New("session: workload completed before an epoch boundary")
	}

	// Capture the acting coordinator's complete virtual-machine image
	// as of the boundary, adjusted for the backup role: environment
	// output suppressed (§2.2 case i) and issued-real latches cleared
	// (rule P3 — the joiner's own devices owe it nothing).
	act := e.lastNode
	ms := e.cluster.Nodes[act].M.CaptureState()
	hs := e.cluster.Nodes[act].HV.CaptureState()
	hs.IOActive = false
	for i := range hs.Devices {
		hs.Devices[i].IssuedReal = false
	}
	blob := snapshot.EncodeTransfer(snapshot.Transfer{
		Machine: ms, Hypervisor: hs, Tme: e.lastTme, Epoch: e.lastEpoch,
	})

	// Build the node and its mesh links.
	n := len(e.cluster.Nodes)
	node := e.cluster.AddNode(cfg.Link)
	if node.NICPort != nil {
		// The node's NIC port springs into existence now, but the image
		// in transit was captured at the quiesce boundary: request
		// frames pending THERE must be pending HERE too, or a later
		// promotion of the joiner would lose them (and frames consumed
		// by pre-capture epochs would replay). Cloning the acting
		// coordinator's port puts both in lockstep — identical future
		// arrivals, identical consume watermarks from applied records.
		node.NICPort.CloneFrom(e.cluster.Nodes[act].NICPort)
	}
	var ups []replication.Peer
	for j := 0; j < n; j++ {
		tx, rx := e.cluster.Channel(n, j)
		ups = append(ups, replication.Peer{TX: tx, RX: rx})
	}
	// Boot normalized the DetectTimeout default before the quiesce ran.
	timeout := e.o.DetectTimeout
	bak := replication.NewBackupAt(node.HV, n, ups, nil, timeout, e.o.Protocol)
	bak.PeerTimeout = e.peerTimeout()
	bak.OutputCommit = e.o.OutputCommit
	bak.BootTOD = e.lastTme
	bak.SetResumePoint(e.lastEpoch + 1)
	bak.OnDivergence = e.divergenceHandler(n)
	bak.Hooks = e.backupHooks()
	e.baks = append(e.baks, bak)
	e.done = append(e.done, 0)

	// Splice the joiner into every engine that coordinates — or may
	// later coordinate — the fan-out. Failed engines are skipped: they
	// will never send again.
	if !e.pri.Failed() {
		tx, rx := e.cluster.Channel(0, n)
		e.pri.AddPeer(replication.Peer{TX: tx, RX: rx})
	}
	for j := 1; j < n; j++ {
		if b := e.baks[j-1]; !b.Failed() && !b.Withdrawn() {
			tx, rx := e.cluster.Channel(j, n)
			b.AddDownstream(replication.Peer{TX: tx, RX: rx})
		}
	}

	// The joiner's hypervisor is alive from this instant — only the
	// virtual-machine image is in transit. Start its receivers now, so
	// protocol messages are acknowledged (P4) and filed while the image
	// flies; otherwise a coordinator awaiting acknowledgements (P2, the
	// §4.3 I/O gate) would stall for the whole transfer and trip the
	// other replicas' failure detectors.
	bak.StartReceivers(e.k)

	// Ship the image on a dedicated migration channel with the same
	// cost model (transfer time is simulated time), so bulk bytes do
	// not head-of-line-block the protocol stream.
	linkCfg := cfg.Link
	if linkCfg.BitsPerSecond == 0 {
		linkCfg = e.o.Link
	}
	linkCfg.Name = fmt.Sprintf("xfer%d-%d", act, n)
	xfer := netsim.NewLink(e.k, linkCfg)
	if e.xferLinks == nil {
		e.xferLinks = map[int][]*netsim.Link{}
	}
	e.xferLinks[act] = append(e.xferLinks[act], xfer)
	xfer.Send(blob, len(blob))

	// The joiner: receive the image, install it, run the ordinary
	// backup engine from the transferred boundary. If the source
	// processor failstops with the image in flight, the transfer — and
	// the reintegration — is lost: the joiner withdraws.
	e.k.Spawn(fmt.Sprintf("backup%d", n), func(pr *sim.Proc) {
		var msg netsim.Message
		for {
			m, ok := xfer.Inbox.RecvTimeout(pr, timeout)
			if ok {
				msg = m
				break
			}
			if xfer.Down() {
				bak.Abandon()
				e.done[n] = pr.Now()
				return
			}
		}
		t, err := snapshot.DecodeTransfer(msg.Payload.([]byte))
		if err != nil {
			panic(fmt.Sprintf("session: state transfer decode: %v", err))
		}
		if err := node.M.RestoreState(t.Machine); err != nil {
			panic(fmt.Sprintf("session: state transfer restore: %v", err))
		}
		if err := node.HV.RestoreState(t.Hypervisor); err != nil {
			panic(fmt.Sprintf("session: state transfer restore: %v", err))
		}
		// The transferred boundary is authoritative: the joiner's clock
		// base and resume point come from the image it actually
		// received, not from whatever the splice-time engine remembered.
		bak.BootTOD = t.Tme
		bak.SetResumePoint(t.Epoch + 1)
		bak.Run(pr)
		e.done[n] = pr.Now()
	})

	e.emit(Event{Kind: EventBackupAdded, Node: n, Epoch: e.lastEpoch, Bytes: uint64(len(blob))})
	return n, nil
}
