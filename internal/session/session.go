// Package session implements the long-lived replicated-cluster engine
// behind the public hft.Cluster API and the harness's experiment
// drivers. Where the original harness wired a cluster, ran it to
// completion and reported a terminal result, a session Engine keeps the
// simulation resident: it boots lazily, advances under caller control
// in bounded slices, accepts live perturbations (failstops, link
// degradation) between — or, via scheduled events, during — slices, and
// exposes observation as first-class values (snapshots and an event
// stream) at any virtual time.
//
// Determinism contract: an Engine driven to completion produces results
// bit-identical to the pre-session one-shot harness, regardless of how
// the run is sliced. Construction order (kernel, platform, engines,
// scheduled failures, process spawns) is therefore fixed and mirrors
// the historical wiring exactly; observation hooks never spend virtual
// time.
package session

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/clientsim"
	"repro/internal/console"
	"repro/internal/guest"
	"repro/internal/hypervisor"
	"repro/internal/machine"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/platform"
	"repro/internal/replication"
	"repro/internal/scsi"
	"repro/internal/sim"
)

// GuestMemBytes is the physical RAM given to each simulated machine.
// The guest kernel's physical footprint tops out below 0x60040, so
// 1 MiB leaves an order-of-magnitude margin while keeping machine
// construction (zeroing RAM) cheap. Simulated timing and guest results
// are independent of RAM size; explicit machine overrides still win.
const GuestMemBytes = 1 << 20

// maxRunTime is the hang tripwire: a run that has not completed by this
// virtual time is declared wedged (the longest legitimate experiment
// finishes in minutes of virtual time).
const maxRunTime = 20000 * sim.Second

// stallLimit is the bounded-progress watchdog's dispatch budget: the
// scheduler passes virtual time may sit at ONE instant before the
// session declares the coordinator wedged (ErrStalled). Legitimate
// same-instant cascades — every node's boundary processing plus the
// message deliveries it triggers — are bounded by a few dispatches per
// node per message; 100k is orders of magnitude past any of them.
const stallLimit = 100000

// peerTimeout is the coordinator-side acknowledgement-liveness bound:
// generously past every backup's cascaded failure-detection timeout,
// so a genuinely partitioned peer is detected by its own timeout first
// and the coordinator's exclusion is strictly a liveness backstop.
func (e *Engine) peerTimeout() sim.Time {
	// Boot has already normalized the zero default onto o.DetectTimeout
	// before any engine (or a late joiner) is wired.
	return 10 * e.o.DetectTimeout
}

// sizeMachine applies the RAM default to a machine config.
func sizeMachine(mc machine.Config) machine.Config {
	if mc.MemBytes == 0 {
		mc.MemBytes = GuestMemBytes
	}
	return mc
}

// sharedImageDefault is the package-wide default for COW-shared guest
// images (see SetSharedImageDefault).
var sharedImageDefault atomic.Bool

// SetSharedImageDefault sets the package-wide default for backing
// guest RAM with content-interned copy-on-write base images. Sessions
// built with Options.SharedImage unset follow the default; it exists
// so batch drivers (hftbench -cow) can flip whole runs without
// threading an option through every call site.
func SetSharedImageDefault(on bool) { sharedImageDefault.Store(on) }

// shareImage attaches a content-interned COW base image, built from
// the program's boot image, to a machine config. Every machine built
// from the returned config maps the same immutable frames — as does
// every other session booting the same program at the same RAM size,
// fleet-wide, through the intern table. Boot-time stores of bytes the
// image already holds are COW no-ops, so kernel text stays shared; a
// replica privatizes only the pages it actually dirties.
func (e *Engine) shareImage(mc machine.Config) machine.Config {
	if !e.o.SharedImage && !sharedImageDefault.Load() {
		return mc
	}
	origin, words, _ := e.prog.Image()
	if uint64(origin)+4*uint64(len(words)) > uint64(mc.MemBytes) {
		return mc // image exceeds RAM; boot will report it as ever
	}
	flat := make([]byte, mc.MemBytes)
	for i, w := range words {
		binary.LittleEndian.PutUint32(flat[int(origin)+4*i:], w)
	}
	mc.Image = machine.InternImage(flat)
	return mc
}

// Program supplies the guest boot image, boot-time configuration, and
// result extraction — the plug point for workloads beyond the paper's
// three benchmarks. Implementations must be deterministic and must
// configure every replica identically.
type Program interface {
	// Image returns the guest memory image and entry point.
	Image() (origin uint32, words []uint32, entry uint32)
	// Setup writes boot-time parameters into a machine after the image
	// is loaded. It is called once per replica, before execution.
	Setup(m *machine.Machine)
	// Result extracts the guest-visible outcome after the guest halts.
	Result(m *machine.Machine) guest.Result
}

// workloadProgram adapts the built-in guest kernel + workload ABI.
type workloadProgram struct{ w guest.Workload }

func (wp workloadProgram) Image() (uint32, []uint32, uint32) {
	p := guest.Program()
	return p.Origin, p.Words, 0
}
func (wp workloadProgram) Setup(m *machine.Machine) { guest.Configure(m, wp.w) }
func (wp workloadProgram) Result(m *machine.Machine) guest.Result {
	return guest.ReadResult(m)
}

// WorkloadProgram returns the built-in Program: the paper's guest
// kernel configured with workload w.
func WorkloadProgram(w guest.Workload) Program { return workloadProgram{w: w} }

// EventKind enumerates session events.
type EventKind uint8

// Session event kinds.
const (
	// EventEpochCommitted: the acting coordinator (primary or promoted
	// backup) finished an epoch boundary.
	EventEpochCommitted EventKind = iota
	// EventBackupEpoch: a following backup completed an epoch's
	// boundary processing, including its divergence check.
	EventBackupEpoch
	// EventPromoted: a backup detected coordinator failure and took
	// over (rules P6/P7).
	EventPromoted
	// EventDivergence: a backup's state digest disagreed with the
	// coordinator's.
	EventDivergence
	// EventFailstop: a processor failstop was injected.
	EventFailstop
	// EventLinkQuality: the inter-hypervisor link model was changed.
	EventLinkQuality
	// EventDiskOp: the shared disk completed an operation.
	EventDiskOp
	// EventCompleted: the session finished (guest halted everywhere).
	EventCompleted
	// EventBackupAdded: a new backup joined the replica set by live
	// state transfer.
	EventBackupAdded
	// EventTerminalInput: the environment delivered scripted terminal
	// input to the shared console.
	EventTerminalInput
	// EventNetRequest: the shared NIC accepted a distinct client request
	// frame (retransmissions of queued or answered requests are deduped
	// before this point and never emit).
	EventNetRequest
	// EventOutputCommitted: the output-commit engine released an epoch's
	// deferred environment output (its frame was acknowledged by every
	// live peer). Count carries the number of operations released,
	// Latency the generation→release delay of the epoch's first output
	// (zero when the epoch produced none), Occupancy the epochs still in
	// flight in the commit window.
	EventOutputCommitted
)

// Event is one observation from a running session.
type Event struct {
	Kind  EventKind
	At    sim.Time
	Node  int // primary = 0, backup i (1-based priority) = i
	Epoch uint64

	// Kind-specific payloads.
	Tme     uint32        // EventEpochCommitted: the shipped clock value
	Halted  bool          // EventEpochCommitted: guest halted this epoch
	Match   bool          // EventBackupEpoch: digest check passed
	Count   int           // EventPromoted: uncertain interrupts synthesized
	Digests [2]uint64     // EventDivergence: coordinator, local
	IO      scsi.OpRecord // EventDiskOp
	Disk    int           // EventDiskOp: which shared disk (0-based)
	Bytes   uint64        // EventBackupAdded: state-transfer size on the wire
	Data    []byte        // EventTerminalInput: the arrived bytes
	Req     uint32        // EventNetRequest: the request id (Count = frame words)

	Latency   sim.Time // EventOutputCommitted: output-generation → release
	Occupancy int      // EventOutputCommitted: epochs still in flight
}

// Options configures an Engine.
type Options struct {
	Seed    int64
	Program Program
	// Bare runs a single unvirtualized machine (the paper's baseline)
	// instead of a replicated group.
	Bare bool

	Disk scsi.DiskConfig
	// ExtraDisks configures shared disks 1..N-1 (multi-disk workloads;
	// disk i sits at the platform's DiskWindow(i)).
	ExtraDisks []scsi.DiskConfig
	// Terminal is the console's scripted input (empty: the console is
	// the historical write-only device).
	Terminal []console.Input
	// NIC attaches the shared network adapter to every node even
	// without client load (implied by ClientLoad).
	NIC bool
	// ClientLoad, when set, drives a simulated client population into
	// the shared NIC over its own access link (implies NIC). The
	// population's Requests must match the guest server workload's Ops.
	ClientLoad  *clientsim.Config
	EpochLength uint64
	Protocol    replication.Protocol
	Link        netsim.LinkConfig
	// OutputCommit configures the output-commit latency engine (zero
	// value: off, classic lock-step protocol). Applied identically to
	// every replica, including late joiners.
	OutputCommit replication.OutputCommit

	FailPrimaryAt sim.Time
	DetectTimeout sim.Time
	Backups       int
	FailBackupAt  []sim.Time

	Machine       machine.Config
	NoTLBTakeover bool
	// SharedImage backs every machine's RAM with a content-interned
	// copy-on-write base image built from the Program's boot image
	// (identical sharing across sessions; see machine.BaseImage).
	// When unset, the package default applies (SetSharedImageDefault).
	SharedImage bool

	// OnDivergence, when set, observes backup digest mismatches instead
	// of panicking.
	OnDivergence func(epoch uint64, primary, backup uint64)

	// Observer, when set, receives the live event stream. It runs in
	// simulation context and must not block.
	Observer func(Event)
	// DiskEvents additionally emits EventDiskOp per disk operation.
	DiskEvents bool
}

// Result reports a completed run.
type Result struct {
	// Time is the workload completion time (virtual).
	Time sim.Time
	// Guest is the kernel's ABI report.
	Guest guest.Result
	// Console is the environment-visible console transcript.
	Console string
	// NetReplies is the NIC's reply transcript — every frame the acting
	// guest emitted (exactly once, in order), empty without a NIC. The
	// replication invariant: byte-identical to the bare run's.
	NetReplies string
	// Promoted reports whether a failover occurred.
	Promoted bool
	// PrimaryStats/BackupStats are the protocol engines' counters
	// (zero for bare runs).
	PrimaryStats replication.Stats
	BackupStats  replication.Stats
	// HVStats is the authoritative hypervisor's activity (zero for bare).
	HVStats hypervisor.Stats
}

// Snapshot is a point-in-time view of a session, valid at any virtual
// time (not just completion).
type Snapshot struct {
	Now    sim.Time
	Booted bool
	Done   bool
	Bare   bool
	Nodes  int

	// Acting is the node currently interacting with the environment
	// (0 until a failover, then the promoted backup's index).
	Acting int

	Epochs            uint64 // epochs committed by the acting coordinator
	Commits           uint64 // cumulative acting-coordinator epoch commits since boot
	GuestInstructions uint64 // retired by the acting node's guest
	Promoted          bool
	Halted            bool

	// Protocol counters, summed over every engine that has acted.
	MessagesSent         uint64
	BytesSent            uint64
	AcksReceived         uint64
	AckWaits             uint64
	AckWaitTime          sim.Time
	IOGateWaits          uint64
	IOGateWaitTime       sim.Time
	IntsForwarded        uint64
	Divergences          uint64
	UncertainSynthesized uint64
	// PeersExcluded counts replicas a coordinator excluded from its
	// acknowledgement gates after the ack-liveness timeout (a silent
	// peer; see replication.Stats.PeerTimeouts). Nonzero means the
	// replica set is effectively smaller than configured.
	PeersExcluded uint64

	// Environment counters.
	DiskOps       uint64
	DiskUncertain uint64
	Console       string

	// Network-service counters (zero without a client population).
	NetRequests    int
	NetAnswered    int
	NetRetransmits uint64
}

// Engine is a resident simulation of one cluster (or one bare machine).
// It is not safe for concurrent use; drive it from one goroutine.
type Engine struct {
	o      Options
	prog   Program
	k      *sim.Kernel
	booted bool
	closed bool

	// Replicated topology.
	cluster *platform.Cluster
	pri     *replication.Primary
	baks    []*replication.Backup

	// Bare topology.
	single *platform.Single

	// Network service (nil without Options.NIC/ClientLoad).
	nic       *nic.NIC
	clients   *clientsim.Sim
	clientNet *netsim.Duplex

	done     []sim.Time // per-node completion times
	finished bool
	endTime  sim.Time // virtual time the last process exited
	result   Result
	runErr   error

	// Running disk counters (fed by the device's OnOp hook, so
	// Snapshot never rescans the operation log).
	diskOps       uint64
	diskUncertain uint64

	// stopCheck, when set, is consulted at epoch commits; returning
	// true stops the kernel (bounded/predicate runs, cancellation).
	stopCheck func() bool

	// commits counts every acting-coordinator epoch commit since boot;
	// lastNode/lastEpoch/lastTme describe the most recent one. Commit
	// ordinals are the session's replayable pause coordinates: a run
	// paused "at commit #N" stops in exactly the same kernel state on
	// every replay.
	commits   uint64
	lastNode  int
	lastEpoch uint64
	lastTme   uint32

	// commitLats collects per-epoch output-commit latencies (virtual
	// time from an epoch's first deferred output to its release); only
	// epochs that actually produced output contribute a sample.
	commitLats []sim.Time

	// xferLinks tracks live state-transfer links by source node, so a
	// failstop severs an in-flight transfer exactly as it severs the
	// node's protocol channels.
	xferLinks map[int][]*netsim.Link
}

// New prepares an engine. No simulation state is constructed until the
// first advancement (or an explicit Boot) — a Cluster is cheap to
// create and configure.
func New(o Options) *Engine {
	prog := o.Program
	if prog == nil {
		prog = WorkloadProgram(guest.CPUIntensive(10000))
	}
	return &Engine{o: o, prog: prog}
}

// emit forwards an event to the observer, stamping the current time.
func (e *Engine) emit(ev Event) {
	if e.o.Observer == nil {
		return
	}
	if ev.At == 0 {
		ev.At = e.k.Now()
	}
	e.o.Observer(ev)
}

// Boot constructs the kernel, platform, protocol engines and scheduled
// failures, and spawns the simulation processes. Idempotent; called
// implicitly by every advancement method.
//
// The construction order below is the determinism contract with the
// historical one-shot harness: kernel, platform, guest boot per node,
// primary, backups (each with its upstream/downstream channels), the
// scheduled failstops, then the process spawns — in exactly this
// sequence, so random-stream derivation and event scheduling order are
// unchanged.
func (e *Engine) Boot() {
	if e.booted || e.closed {
		return
	}
	e.booted = true
	if e.o.Bare {
		e.bootBare()
		return
	}
	o := &e.o
	if o.DetectTimeout == 0 {
		o.DetectTimeout = 50 * sim.Millisecond
	}
	if o.Backups == 0 {
		o.Backups = 1
	}
	n := o.Backups + 1
	k := sim.NewKernel(o.Seed)
	k.SetStallLimit(stallLimit)
	e.k = k
	cluster := platform.NewCluster(k, platform.Config{
		Disk:       o.Disk,
		ExtraDisks: o.ExtraDisks,
		Terminal:   o.Terminal,
		NIC:        o.NIC || o.ClientLoad != nil,
		Link:       o.Link,
		Machine:    e.shareImage(sizeMachine(o.Machine)),
		Hypervisor: hypervisor.Config{
			EpochLength:      o.EpochLength,
			NoTLBTakeover:    o.NoTLBTakeover,
			AdaptiveBoundary: o.OutputCommit.Enabled && o.OutputCommit.Adaptive,
			// The simulation fast path rides the same opt-in: with output
			// deferred, an environment access is a buffered shadow write,
			// so consecutive simulations share one hypervisor residency.
			ResidentEmulation: o.OutputCommit.Enabled,
			// A tight cut slack still coalesces multi-word output bursts
			// (consecutive stores are a few instructions apart) but stops
			// burning simulated-poll time between the last output and the
			// boundary that ships it.
			CutSlack: 16,
		},
	}, n)
	e.cluster = cluster
	e.nic = cluster.NIC
	origin, words, entry := e.prog.Image()
	for _, node := range cluster.Nodes {
		node.HV.Boot(origin, words, entry)
		e.prog.Setup(node.M)
	}

	var peers []replication.Peer
	for j := 1; j < n; j++ {
		tx, rx := cluster.Channel(0, j)
		peers = append(peers, replication.Peer{TX: tx, RX: rx})
	}
	pri := replication.NewPrimaryMulti(cluster.Nodes[0].HV, peers, o.Protocol)
	pri.PeerTimeout = e.peerTimeout()
	pri.OutputCommit = o.OutputCommit
	e.pri = pri
	for i := 1; i < n; i++ {
		var ups, downs []replication.Peer
		for j := 0; j < i; j++ {
			tx, rx := cluster.Channel(i, j)
			ups = append(ups, replication.Peer{TX: tx, RX: rx})
		}
		for j := i + 1; j < n; j++ {
			tx, rx := cluster.Channel(i, j)
			downs = append(downs, replication.Peer{TX: tx, RX: rx})
		}
		bak := replication.NewBackupAt(
			cluster.Nodes[i].HV, i, ups, downs, o.DetectTimeout, o.Protocol)
		bak.PeerTimeout = e.peerTimeout()
		bak.OutputCommit = o.OutputCommit
		bak.OnDivergence = e.divergenceHandler(i)
		e.baks = append(e.baks, bak)
	}

	// Observation hooks (no virtual-time cost; order-neutral).
	e.installHooks()
	e.startClientLoad()

	if o.FailPrimaryAt > 0 {
		k.At(o.FailPrimaryAt, func() { e.failPrimaryNow() })
	}
	for i, at := range o.FailBackupAt {
		if at > 0 && i < len(e.baks) {
			i := i
			k.At(at, func() { e.failBackupNow(i + 1) })
		}
	}

	e.done = make([]sim.Time, n)
	k.Spawn("primary", func(pr *sim.Proc) { pri.Run(pr); e.done[0] = pr.Now() })
	for i, bak := range e.baks {
		i, bak := i, bak
		k.Spawn(fmt.Sprintf("backup%d", i+1), func(pr *sim.Proc) { bak.Run(pr); e.done[i+1] = pr.Now() })
	}
}

// bootBare constructs the single-machine baseline topology.
func (e *Engine) bootBare() {
	k := sim.NewKernel(e.o.Seed)
	k.SetStallLimit(stallLimit)
	e.k = k
	s := platform.NewSingle(k, platform.Config{
		Disk:       e.o.Disk,
		ExtraDisks: e.o.ExtraDisks,
		Terminal:   e.o.Terminal,
		NIC:        e.o.NIC || e.o.ClientLoad != nil,
		Machine:    e.shareImage(sizeMachine(e.o.Machine)),
	})
	e.single = s
	e.nic = s.NIC
	origin, words, entry := e.prog.Image()
	s.Bare.Boot(origin, words, entry)
	e.prog.Setup(s.Node.M)
	e.installDiskHooks(s.Disks, s.Console)
	e.installNICHooks()
	e.startClientLoad()
	e.done = make([]sim.Time, 1)
	k.Spawn("bare", func(pr *sim.Proc) { s.Bare.Run(pr); e.done[0] = pr.Now() })
}

// divergenceHandler wraps the configured divergence policy with event
// emission. Without an explicit OnDivergence handler the replication
// tripwire is preserved: a divergence still panics (it means the
// deterministic-replay machinery is broken), after the event is
// emitted — an observer alone must not soften a determinism bug into
// a counter.
func (e *Engine) divergenceHandler(node int) func(epoch uint64, primary, backup uint64) {
	if e.o.OnDivergence == nil && e.o.Observer == nil {
		return nil
	}
	return func(epoch uint64, primary, backup uint64) {
		e.emit(Event{Kind: EventDivergence, Node: node, Epoch: epoch, Digests: [2]uint64{primary, backup}})
		if e.o.OnDivergence == nil {
			panic(fmt.Sprintf("replication: divergence at epoch %d: primary %x backup %x",
				epoch, primary, backup))
		}
		e.o.OnDivergence(epoch, primary, backup)
	}
}

// installHooks wires the protocol and environment observation hooks.
func (e *Engine) installHooks() {
	e.pri.Hooks = replication.Hooks{
		EpochCommitted:  e.epochCommitted,
		OutputCommitted: e.outputCommitted,
	}
	for _, bak := range e.baks {
		bak.Hooks = e.backupHooks()
	}
	e.installDiskHooks(e.cluster.Disks, e.cluster.Console)
	e.installNICHooks()
}

// installNICHooks wires request-arrival observation on the shared NIC.
func (e *Engine) installNICHooks() {
	if e.nic == nil || e.o.Observer == nil {
		return
	}
	e.nic.OnIngress = func(seq uint32, words []uint32) {
		var req uint32
		if len(words) > 0 {
			req = words[0]
		}
		e.emit(Event{Kind: EventNetRequest, Node: e.actingNode(), Req: req, Count: len(words)})
	}
}

// startClientLoad wires the simulated client population to the shared
// NIC over its own access link (the same link model as the replication
// channel, so the eth/ATM experiment axes price both directions of the
// service path) and schedules the first arrival.
func (e *Engine) startClientLoad() {
	if e.o.ClientLoad == nil || e.nic == nil {
		return
	}
	link := e.o.Link
	if link.BitsPerSecond == 0 {
		link = netsim.Ethernet10("clients")
	}
	e.clientNet = netsim.NewDuplex(e.k, "clients", link)
	e.clients = clientsim.New(e.k, *e.o.ClientLoad, e.nic, e.clientNet)
	e.clients.Start()
}

// installDiskHooks wires per-device environment observation: one OnOp
// per shared disk (tagged with the disk index) and the terminal-input
// observer.
func (e *Engine) installDiskHooks(disks []*scsi.Disk, cons *console.Console) {
	for i, d := range disks {
		i := i
		d.OnOp = func(r scsi.OpRecord) { e.diskOp(i, r) }
	}
	if e.o.Observer != nil {
		cons.OnInput = func(seq uint32, data []byte) {
			e.emit(Event{Kind: EventTerminalInput, Node: e.actingNode(), Data: data})
		}
	}
}

// backupHooks builds the observation hooks a backup engine carries
// (shared between boot-time backups and late joiners).
func (e *Engine) backupHooks() replication.Hooks {
	return replication.Hooks{
		EpochCommitted:  e.epochCommitted,
		OutputCommitted: e.outputCommitted,
		BackupEpoch: func(node int, epoch uint64, at sim.Time, match bool) {
			e.emit(Event{Kind: EventBackupEpoch, At: at, Node: node, Epoch: epoch, Match: match})
		},
		Promoted: func(node int, epoch uint64, at sim.Time, uncertain int) {
			e.emit(Event{Kind: EventPromoted, At: at, Node: node, Epoch: epoch, Count: uncertain})
		},
	}
}

// diskOp tallies a completed disk operation and (optionally) emits it,
// tagged with the disk it happened on.
func (e *Engine) diskOp(disk int, r scsi.OpRecord) {
	e.diskOps++
	if r.Uncertain {
		e.diskUncertain++
	}
	if e.o.DiskEvents && e.o.Observer != nil {
		e.emit(Event{Kind: EventDiskOp, Node: r.Host, IO: r, Disk: disk})
	}
}

// outputCommitted observes an output-commit release: the acting
// coordinator's ack window advanced past an epoch and its deferred
// environment output (if any) just reached the devices.
func (e *Engine) outputCommitted(node int, epoch uint64, at sim.Time, latency sim.Time, outputs, occupancy int) {
	if outputs > 0 {
		e.commitLats = append(e.commitLats, latency)
	}
	e.emit(Event{Kind: EventOutputCommitted, At: at, Node: node, Epoch: epoch,
		Count: outputs, Latency: latency, Occupancy: occupancy})
}

// CommitLatencies returns the per-epoch output-commit latency samples
// collected since boot (epochs that released no output contribute
// nothing). The slice is live; callers must not retain it across
// further advancement.
func (e *Engine) CommitLatencies() []sim.Time { return e.commitLats }

// epochCommitted observes the acting coordinator's boundary and applies
// the predicate-stop discipline: bounded and cancelable runs yield here,
// at epoch boundaries, never mid-epoch.
func (e *Engine) epochCommitted(node int, epoch uint64, tme uint32, at sim.Time, halted bool) {
	e.commits++
	e.lastNode, e.lastEpoch, e.lastTme = node, epoch, tme
	e.emit(Event{Kind: EventEpochCommitted, At: at, Node: node, Epoch: epoch, Tme: tme, Halted: halted})
	if e.stopCheck != nil && e.stopCheck() {
		e.k.Stop()
	}
}

// Commits returns the cumulative count of acting-coordinator epoch
// commits since boot — the session's replayable pause coordinate.
func (e *Engine) Commits() uint64 { return e.commits }

// RunUntilCommits advances the session until the cumulative commit
// count reaches n (no-op if it already has). It pauses in exactly the
// state a predicate-stop at that commit leaves, which is what snapshot
// replay requires.
func (e *Engine) RunUntilCommits(n uint64) error {
	return e.RunUntil(func() bool { return e.commits >= n })
}

// failPrimaryNow injects the primary failstop (kernel context).
func (e *Engine) failPrimaryNow() {
	e.pri.Failstop()
	e.detachNode(0)
	e.severTransfers(0)
	e.emit(Event{Kind: EventFailstop, Node: 0})
}

// failBackupNow injects a failstop of backup i (1-based, kernel context).
func (e *Engine) failBackupNow(i int) {
	e.baks[i-1].Failstop()
	e.detachNode(i)
	e.severTransfers(i)
	e.emit(Event{Kind: EventFailstop, Node: i})
}

// detachNode disconnects a failstopped node from every environment
// device: completions and input stop reaching a dead host.
func (e *Engine) detachNode(i int) {
	n := e.cluster.Nodes[i]
	for _, a := range n.Adapters {
		a.Detached = true
	}
	n.Port.Detached = true
	if n.NICPort != nil {
		n.NICPort.Detached = true
	}
}

// severTransfers disconnects any state transfer the failstopped node
// was sourcing: the in-flight image is lost with its sender.
func (e *Engine) severTransfers(node int) {
	for _, l := range e.xferLinks[node] {
		l.Disconnect()
	}
}

// Now returns the current virtual time (zero before boot). After
// completion it reports the instant the last process exited — the
// kernel clock may sit at a run bound beyond any activity.
func (e *Engine) Now() sim.Time {
	if e.k == nil {
		return 0
	}
	if e.finished {
		return e.endTime
	}
	return e.k.Now()
}

// Done reports whether the run has completed.
func (e *Engine) Done() bool { return e.finished }

// Bare reports whether this is a baseline (unreplicated) session.
func (e *Engine) Bare() bool { return e.o.Bare }

// checkFinished detects completion (every simulation process exited)
// and computes the terminal result once.
func (e *Engine) checkFinished() {
	if e.finished || e.k.LiveProcs() != 0 {
		return
	}
	e.finished = true
	for _, t := range e.done {
		if t > e.endTime {
			e.endTime = t
		}
	}
	e.result, e.runErr = e.computeResult()
	e.emit(Event{Kind: EventCompleted, At: e.endTime, Node: e.actingNode()})
}

// RunFor advances the session by d of virtual time (booting first if
// needed). Advancing a completed session is a no-op. It returns
// ErrStalled (as a *StallError) if the bounded-progress watchdog
// trips.
func (e *Engine) RunFor(d sim.Time) error {
	e.Boot()
	if e.finished || e.closed || d <= 0 {
		return nil
	}
	if err := e.stallErr(); err != nil {
		return err
	}
	e.k.ClearStop()
	e.k.RunUntil(e.k.Now() + d)
	e.checkFinished()
	return e.stallErr()
}

// ErrIncomplete reports a run that wedged before completing (no pending
// events but live processes — a protocol deadlock).
var ErrIncomplete = errors.New("session: run did not complete")

// ErrStalled reports a wedged coordinator: the scheduler kept
// dispatching but virtual time stopped advancing (a same-instant
// livelock). Test with errors.Is; the concrete error is a *StallError
// carrying the blocked process's identity.
var ErrStalled = errors.New("session: virtual time stalled")

// StallError is the concrete ErrStalled: the bounded-progress watchdog
// tripped after stallLimit scheduler passes without the clock moving.
type StallError struct {
	// Proc is the last process dispatched at the pinned instant
	// ("(event)" when an event callback, not a process, was spinning).
	Proc string
	// At is the virtual time progress stopped at.
	At sim.Time
}

func (e *StallError) Error() string {
	return fmt.Sprintf("session: virtual time stalled at %v (last dispatched: %s)", e.At, e.Proc)
}

// Is makes errors.Is(err, ErrStalled) hold for *StallError.
func (e *StallError) Is(target error) bool { return target == ErrStalled }

// stallErr converts the kernel watchdog's sticky stall state into the
// session-level error (nil while progress is being made).
func (e *Engine) stallErr() error {
	if name, at, ok := e.k.Stalled(); ok {
		return &StallError{Proc: name, At: at}
	}
	return nil
}

// RunUntil advances the session until pred holds — evaluated before
// starting and then at each epoch commit — or the run completes. It
// returns ErrIncomplete if the simulation wedges first and ErrStalled
// if the bounded-progress watchdog trips.
func (e *Engine) RunUntil(pred func() bool) error {
	e.Boot()
	if e.finished || e.closed || pred() {
		return nil
	}
	if err := e.stallErr(); err != nil {
		return err
	}
	e.stopCheck = pred
	defer func() { e.stopCheck = nil }()
	e.k.ClearStop()
	e.k.RunUntil(maxRunTime)
	e.checkFinished()
	if err := e.stallErr(); err != nil {
		return err
	}
	if e.finished || e.k.Stopped() {
		return nil
	}
	return ErrIncomplete
}

// RunToCompletion drives the session until the guest halts everywhere.
// cancelled (optional) is polled at epoch boundaries; when it returns
// true the run pauses and RunToCompletion returns nil with the session
// still resumable.
func (e *Engine) RunToCompletion(cancelled func() bool) error {
	e.Boot()
	if e.closed {
		return nil
	}
	for !e.finished {
		if cancelled != nil && cancelled() {
			return nil
		}
		if err := e.stallErr(); err != nil {
			return err
		}
		e.stopCheck = cancelled
		e.k.ClearStop()
		e.k.RunUntil(maxRunTime)
		e.stopCheck = nil
		e.checkFinished()
		if e.finished {
			break
		}
		if err := e.stallErr(); err != nil {
			return err
		}
		if e.k.Stopped() {
			continue // paused by cancellation; loop re-checks
		}
		return ErrIncomplete
	}
	return e.runErr
}

// ErrCompleted reports a perturbation applied after the workload
// completed: there is no live cluster left to perturb. Every
// perturbation entry point (FailBackup, SetLinkQuality, AddBackup)
// returns it rather than silently no-opping, so a driver cannot
// mistake a dead session for an accepted injection.
var ErrCompleted = errors.New("session: workload already complete")

// FailPrimary failstops the primary's processor immediately (between
// advancement slices) — the live counterpart of Options.FailPrimaryAt.
// It reports whether the failstop was applied: false when the session
// is bare, closed, already complete, or the primary already failed.
func (e *Engine) FailPrimary() bool {
	e.Boot()
	if e.closed || e.o.Bare || e.finished || e.pri.Failed() {
		return false
	}
	e.failPrimaryNow()
	return true
}

// FailBackup failstops backup i (1-based priority index) immediately.
// After completion it returns ErrCompleted. Failstopping an
// already-failed backup is a no-op (the paper's failstop model: a dead
// processor cannot die again).
func (e *Engine) FailBackup(i int) error {
	e.Boot()
	if e.closed {
		return errors.New("session: engine is closed")
	}
	if e.o.Bare {
		return errors.New("session: bare run has no backups")
	}
	if e.finished {
		return ErrCompleted
	}
	if i < 1 || i > len(e.baks) {
		return fmt.Errorf("session: no backup %d (have %d)", i, len(e.baks))
	}
	if !e.baks[i-1].Failed() {
		e.failBackupNow(i)
	}
	return nil
}

// BackupFailed reports whether backup i (1-based) has failstopped
// (false for out-of-range indexes and unbooted sessions).
func (e *Engine) BackupFailed(i int) bool {
	if i < 1 || i > len(e.baks) {
		return false
	}
	return e.baks[i-1].Failed()
}

// SetLinkQuality adjusts every inter-hypervisor link (both directions
// of the full mesh) mid-run. After completion it returns ErrCompleted.
func (e *Engine) SetLinkQuality(q netsim.Quality) error {
	e.Boot()
	if e.closed {
		return errors.New("session: engine is closed")
	}
	if e.o.Bare {
		return errors.New("session: bare run has no links")
	}
	if e.finished {
		return ErrCompleted
	}
	for i := range e.cluster.Links {
		for j := range e.cluster.Links[i] {
			if d := e.cluster.Links[i][j]; d != nil {
				d.AtoB.SetQuality(q)
				d.BtoA.SetQuality(q)
			}
		}
	}
	// State-transfer links are inter-hypervisor links too: an image
	// still in flight pays the new costs for its unserialized remainder
	// (messages already serialized keep their scheduled delivery, as on
	// every link).
	for _, links := range e.xferLinks {
		for _, l := range links {
			l.SetQuality(q)
		}
	}
	e.emit(Event{Kind: EventLinkQuality})
	return nil
}

// actingNode returns the node currently interacting with the
// environment: the highest-priority promoted backup, else the primary.
func (e *Engine) actingNode() int {
	for i, b := range e.baks {
		if b.Promoted() && !b.Failed() {
			return i + 1
		}
	}
	return 0
}

// Snapshot captures the observable state at the current virtual time.
func (e *Engine) Snapshot() Snapshot {
	s := Snapshot{Booted: e.booted, Done: e.finished, Bare: e.o.Bare}
	if !e.booted {
		return s
	}
	// After completion the kernel clock may sit at a run bound rather
	// than the instant the last process exited; report the latter.
	s.Now = e.k.Now()
	if e.finished {
		s.Now = e.endTime
	}
	s.Commits = e.commits
	s.DiskOps, s.DiskUncertain = e.diskOps, e.diskUncertain
	if e.clients != nil {
		cs := e.clients.Stats()
		s.NetRequests, s.NetAnswered, s.NetRetransmits = cs.Issued, cs.Answered, cs.Retransmits
	}
	if e.o.Bare {
		s.Nodes = 1
		s.Halted = e.single.Bare.Halted()
		s.Console = e.single.Console.Output()
		return s
	}
	s.Nodes = len(e.cluster.Nodes)
	s.Acting = e.actingNode()
	hv := e.cluster.Nodes[s.Acting].HV
	s.Epochs = hv.Epoch()
	s.GuestInstructions = hv.GuestInstructions()
	s.Halted = hv.Halted()
	add := func(st replication.Stats) {
		s.MessagesSent += st.MessagesSent
		s.BytesSent += st.BytesSent
		s.AcksReceived += st.AcksReceived
		s.AckWaits += st.AckWaits
		s.AckWaitTime += st.AckWaitTime
		s.IOGateWaits += st.IOGateWaits
		s.IOGateWaitTime += st.IOGateWaitTime
		s.IntsForwarded += st.IntsForwarded
		s.Divergences += st.Divergences
		s.UncertainSynthesized += st.UncertainSynth
		s.PeersExcluded += st.PeerTimeouts
	}
	add(e.pri.Stats)
	for _, b := range e.baks {
		add(b.Stats)
		if b.Promoted() {
			s.Promoted = true
		}
	}
	s.Console = e.cluster.Console.Output()
	return s
}

// Result returns the terminal report. It errors until the run has
// completed (use Snapshot for mid-run observation).
func (e *Engine) Result() (Result, error) {
	if !e.finished {
		return Result{}, errors.New("session: run not complete (use Snapshot for live state)")
	}
	return e.result, e.runErr
}

// computeResult assembles the terminal report from the authoritative
// survivor: the primary if it never failed, else the last promoted
// surviving node, else any node whose guest HALTED before its processor
// was killed (a replica that completed the workload and was failstopped
// afterwards still produced the deterministic result).
func (e *Engine) computeResult() (Result, error) {
	if e.o.Bare {
		if !e.single.Bare.Halted() {
			return Result{}, fmt.Errorf("session: bare run did not halt (pc=%#x)", e.single.Node.M.PC)
		}
		r := Result{
			Time:    e.done[0],
			Guest:   e.prog.Result(e.single.Node.M),
			Console: e.single.Console.Output(),
		}
		if e.nic != nil {
			r.NetReplies = e.nic.Replies()
		}
		return r, nil
	}
	res := Result{PrimaryStats: e.pri.Stats}
	if len(e.baks) > 0 {
		res.BackupStats = e.baks[0].Stats
	}
	for _, b := range e.baks {
		if b.Promoted() {
			res.Promoted = true
		}
	}
	authority := -1
	switch {
	case e.cluster.Nodes[0].HV.Halted() && !e.pri.Failed():
		authority = 0
	default:
		for i := len(e.baks) - 1; i >= 0; i-- {
			if e.baks[i].Promoted() && e.baks[i].HV.Halted() && !e.baks[i].Failed() {
				authority = i + 1
				break
			}
		}
		if authority < 0 {
			for i := len(e.baks) - 1; i >= 0; i-- {
				if e.baks[i].HV.Halted() {
					authority = i + 1
					break
				}
			}
		}
		if authority < 0 && e.cluster.Nodes[0].HV.Halted() {
			authority = 0
		}
	}
	if authority < 0 {
		return res, fmt.Errorf("session: replicated run did not complete (pri pc=%#x promoted=%v)",
			e.cluster.Nodes[0].M.PC, res.Promoted)
	}
	res.Time = e.done[authority]
	res.Guest = e.prog.Result(e.cluster.Nodes[authority].M)
	res.HVStats = e.cluster.Nodes[authority].HV.Stats
	res.Console = e.cluster.Console.Output()
	if e.nic != nil {
		res.NetReplies = e.nic.Replies()
	}
	return res, nil
}

// Disk returns shared disk 0 (environment-consistency checks in
// tests; nil before boot on bare=false sessions).
func (e *Engine) Disk() *scsi.Disk {
	if e.cluster != nil {
		return e.cluster.Disk
	}
	if e.single != nil {
		return e.single.Disk
	}
	return nil
}

// Disks returns every shared disk in index order (nil before boot).
func (e *Engine) Disks() []*scsi.Disk {
	if e.cluster != nil {
		return e.cluster.Disks
	}
	if e.single != nil {
		return e.single.Disks
	}
	return nil
}

// NIC returns the shared network adapter (nil before boot or when the
// session has no NIC).
func (e *Engine) NIC() *nic.NIC { return e.nic }

// Clients returns the simulated client population (nil unless client
// load was configured and the session has booted).
func (e *Engine) Clients() *clientsim.Sim { return e.clients }

// Console returns the shared environment console (nil before boot).
func (e *Engine) Console() *console.Console {
	if e.cluster != nil {
		return e.cluster.Console
	}
	if e.single != nil {
		return e.single.Console
	}
	return nil
}

// Close releases the simulation (terminating its process goroutines).
// The engine's terminal result, if any, remains readable. Idempotent.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	if e.k != nil {
		e.k.Shutdown()
	}
	// The kernel is down and no process will run again: recycle the
	// machines' bulk buffers for the next session. Cached results and
	// Snapshot remain valid — they read counters, not guest memory.
	if e.cluster != nil {
		e.cluster.Release()
	}
	if e.single != nil {
		e.single.Release()
	}
}
