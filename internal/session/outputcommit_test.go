package session

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/replication"
	"repro/internal/sim"
)

// ocServeOpts builds a service session running the output-commit engine.
func ocServeOpts(requests, window int, adaptive bool) Options {
	o := serveOpts(requests)
	o.OutputCommit = replication.OutputCommit{Enabled: true, Window: window, Adaptive: adaptive}
	return o
}

// TestOutputCommitServiceMatchesBare is the engine's transparency
// invariant: with output-triggered boundaries and a deep pipeline the
// reply transcript and guest checksum stay byte-identical to bare, with
// and without a mid-load primary failstop, under both protocols.
func TestOutputCommitServiceMatchesBare(t *testing.T) {
	bo := serveOpts(16)
	bo.Bare = true
	bare := New(bo)
	defer bare.Close()
	if err := bare.RunToCompletion(nil); err != nil {
		t.Fatal(err)
	}
	ref, err := bare.Result()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name     string
		window   int
		adaptive bool
		proto    replication.Protocol
	}{
		{"w1-fixed-old", 1, false, replication.ProtocolOld},
		{"w4-adaptive-old", 4, true, replication.ProtocolOld},
		{"w4-adaptive-new", 4, true, replication.ProtocolNew},
		{"w8-adaptive-old", 8, true, replication.ProtocolOld},
	}
	for _, tc := range cases {
		for _, failAt := range []sim.Time{0, 2 * sim.Millisecond} {
			o := ocServeOpts(16, tc.window, tc.adaptive)
			o.Protocol = tc.proto
			o.FailPrimaryAt = failAt
			o.DetectTimeout = 2 * sim.Millisecond
			var commits int
			o.Observer = func(ev Event) {
				if ev.Kind == EventOutputCommitted {
					commits++
				}
			}
			e := New(o)
			if err := e.RunToCompletion(nil); err != nil {
				e.Close()
				t.Fatalf("%s failAt=%v: %v", tc.name, failAt, err)
			}
			res, err := e.Result()
			if err != nil {
				e.Close()
				t.Fatal(err)
			}
			if res.NetReplies != ref.NetReplies {
				t.Errorf("%s failAt=%v: reply transcript diverged from bare (%d vs %d bytes)",
					tc.name, failAt, len(res.NetReplies), len(ref.NetReplies))
			}
			if res.Guest.Checksum != ref.Guest.Checksum {
				t.Errorf("%s failAt=%v: checksum %#x vs bare %#x", tc.name, failAt, res.Guest.Checksum, ref.Guest.Checksum)
			}
			if failAt > 0 && !res.Promoted {
				t.Errorf("%s failAt=%v: no promotion", tc.name, failAt)
			}
			if res.BackupStats.Divergences != 0 {
				t.Errorf("%s failAt=%v: %d divergences", tc.name, failAt, res.BackupStats.Divergences)
			}
			if commits == 0 {
				t.Errorf("%s failAt=%v: no EventOutputCommitted observed", tc.name, failAt)
			}
			e.Close()
		}
	}
}

// TestOutputCommitAdaptiveCutsDeterministic is the boundary-determinism
// differential: with output-triggered boundaries the primary and every
// backup must cut each epoch at the same instruction coordinate — the
// protocol verifies each [end, E]'s cut against the local one and counts
// a divergence on mismatch — and the final guest state must equal a
// fixed-boundary run of the same schedule (epoch slicing is invisible to
// the computation).
func TestOutputCommitAdaptiveCutsDeterministic(t *testing.T) {
	fixed := New(serveOpts(16))
	defer fixed.Close()
	if err := fixed.RunToCompletion(nil); err != nil {
		t.Fatal(err)
	}
	ref, err := fixed.Result()
	if err != nil {
		t.Fatal(err)
	}

	o := ocServeOpts(16, 4, true)
	o.Backups = 2
	e := New(o)
	defer e.Close()
	if err := e.RunToCompletion(nil); err != nil {
		t.Fatal(err)
	}
	res, err := e.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.BackupStats.Divergences != 0 {
		t.Fatalf("adaptive cuts diverged across replicas: %d divergences", res.BackupStats.Divergences)
	}
	if res.Guest.Checksum != ref.Guest.Checksum {
		t.Fatalf("adaptive-boundary checksum %#x differs from fixed-boundary %#x", res.Guest.Checksum, ref.Guest.Checksum)
	}
	if res.NetReplies != ref.NetReplies {
		t.Fatalf("adaptive-boundary reply transcript diverged from fixed-boundary run")
	}
	cuts := uint64(0)
	for i := 0; i <= o.Backups; i++ {
		cuts += e.cluster.Nodes[i].HV.Stats.AdaptiveCuts
	}
	if cuts == 0 {
		t.Fatal("no adaptive cuts fired; the differential exercised nothing")
	}
}

// TestOutputCommitWindowFailstop failstops the primary on a slow link
// with a deep window, so epochs die with their acknowledgments — and
// their deferred output — still in flight. Exactly-once must hold: the
// promoted backup's flush emits the uncommitted tail exactly once, the
// device ordinal dedup drops what the dead primary already released.
func TestOutputCommitWindowFailstop(t *testing.T) {
	bo := serveOpts(16)
	bo.Bare = true
	bare := New(bo)
	defer bare.Close()
	if err := bare.RunToCompletion(nil); err != nil {
		t.Fatal(err)
	}
	ref, err := bare.Result()
	if err != nil {
		t.Fatal(err)
	}

	o := ocServeOpts(16, 8, true)
	// A quarter millisecond each way: acks lag the execution by several
	// epochs, so the window is occupied when the failstop lands.
	link := netsim.Ethernet10("")
	link.Latency = 250 * sim.Microsecond
	o.Link = link
	o.FailPrimaryAt = 2 * sim.Millisecond
	o.DetectTimeout = 2 * sim.Millisecond
	maxOcc := 0
	o.Observer = func(ev Event) {
		if ev.Kind == EventOutputCommitted && ev.Occupancy > maxOcc {
			maxOcc = ev.Occupancy
		}
	}
	e := New(o)
	defer e.Close()
	if err := e.RunToCompletion(nil); err != nil {
		t.Fatal(err)
	}
	res, err := e.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Promoted {
		t.Fatal("no promotion")
	}
	if res.NetReplies != ref.NetReplies {
		t.Fatalf("reply transcript diverged from bare (%d vs %d bytes)", len(res.NetReplies), len(ref.NetReplies))
	}
	if res.Guest.Checksum != ref.Guest.Checksum {
		t.Fatalf("checksum %#x vs bare %#x", res.Guest.Checksum, ref.Guest.Checksum)
	}
	if maxOcc < 1 {
		t.Fatalf("window never pipelined (max occupancy %d); the failstop exercised nothing", maxOcc)
	}
}

// TestOutputCommitLatencyImproves pins the point of the engine: under
// identical load the output-commit configuration's client-observed p50
// must beat the lock-step protocol's.
func TestOutputCommitLatencyImproves(t *testing.T) {
	base := New(serveOpts(16))
	defer base.Close()
	if err := base.RunToCompletion(nil); err != nil {
		t.Fatal(err)
	}
	basep50 := base.Clients().Measure().P50

	e := New(ocServeOpts(16, 4, true))
	defer e.Close()
	if err := e.RunToCompletion(nil); err != nil {
		t.Fatal(err)
	}
	ocp50 := e.Clients().Measure().P50
	if ocp50 >= basep50 {
		t.Fatalf("output commit did not improve p50: %v (lock-step %v)", ocp50, basep50)
	}
	if lats := e.CommitLatencies(); len(lats) == 0 {
		t.Fatal("no commit-latency samples collected")
	}
}
