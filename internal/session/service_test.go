package session

import (
	"testing"

	"repro/internal/clientsim"
	"repro/internal/guest"
	"repro/internal/sim"
)

// serveOpts builds a network-service session: the guest serves requests
// request frames, a simulated client population delivers exactly that
// many distinct requests.
func serveOpts(requests int) Options {
	return Options{
		Seed:        1,
		Program:     WorkloadProgram(guest.ServeRequests(uint32(requests), 50)),
		EpochLength: 1024,
		ClientLoad:  &clientsim.Config{Requests: requests, Clients: 8},
	}
}

// TestServeBareCompletes is the end-to-end smoke test of the service
// stack on bare hardware: NIC, guest server loop, client population.
func TestServeBareCompletes(t *testing.T) {
	o := serveOpts(16)
	o.Bare = true
	e := New(o)
	defer e.Close()
	if err := e.RunToCompletion(nil); err != nil {
		t.Fatal(err)
	}
	res, err := e.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Guest.Panic != 0 {
		t.Fatalf("guest panicked: %#x", res.Guest.Panic)
	}
	if res.NetReplies == "" {
		t.Fatal("no reply transcript")
	}
	m := e.Clients().Measure()
	if m.Answered != 16 {
		t.Fatalf("answered %d of 16", m.Answered)
	}
	if n := e.NIC(); n.Stats.Requests != 16 || n.Stats.TxFrames != 16 {
		t.Fatalf("nic stats: %+v", n.Stats)
	}
}

// TestServeReplicatedMatchesBare is the tentpole invariant at the
// session layer: the replicated service's reply transcript and guest
// checksum are byte-identical to the bare run's, with and without a
// mid-load primary failure.
func TestServeReplicatedMatchesBare(t *testing.T) {
	bo := serveOpts(16)
	bo.Bare = true
	bare := New(bo)
	defer bare.Close()
	if err := bare.RunToCompletion(nil); err != nil {
		t.Fatal(err)
	}
	ref, err := bare.Result()
	if err != nil {
		t.Fatal(err)
	}

	for _, failAt := range []sim.Time{0, 2 * sim.Millisecond} {
		o := serveOpts(16)
		o.FailPrimaryAt = failAt
		o.DetectTimeout = 2 * sim.Millisecond
		e := New(o)
		res, err := e.Result()
		if err == nil {
			t.Fatal("Result before completion should error")
		}
		if err := e.RunToCompletion(nil); err != nil {
			e.Close()
			t.Fatalf("failAt=%v: %v", failAt, err)
		}
		res, err = e.Result()
		if err != nil {
			e.Close()
			t.Fatal(err)
		}
		if res.NetReplies != ref.NetReplies {
			t.Errorf("failAt=%v: reply transcript diverged from bare (%d vs %d bytes)",
				failAt, len(res.NetReplies), len(ref.NetReplies))
		}
		if res.Guest.Checksum != ref.Guest.Checksum {
			t.Errorf("failAt=%v: checksum %#x vs bare %#x", failAt, res.Guest.Checksum, ref.Guest.Checksum)
		}
		if failAt > 0 && !res.Promoted {
			t.Errorf("failAt=%v: no promotion", failAt)
		}
		e.Close()
	}
}
