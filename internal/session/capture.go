package session

// Session capture: a labeled, deterministic encoding of everything a
// resident simulation's future depends on — per-node machine and
// hypervisor state, per-engine replication state, and digests of the
// environment (disk, links, consoles). A session checkpoint embeds the
// capture; restore replays the run deterministically and then compares
// a fresh capture against the embedded one SECTION BY SECTION, so any
// divergence (a format change that slipped past the version bump, a
// nondeterminism bug, a tampered file) is caught and named instead of
// silently resuming a different simulation.

import (
	"fmt"
	"sort"

	"repro/internal/snapshot"
)

// SectionMagic opens each capture section blob.
const SectionMagic = "HFTSECT1"

// Section is one labeled piece of a session capture.
type Section struct {
	Name string
	Data []byte
}

// CaptureSections snapshots the session (booting it first if needed:
// boot is deterministic, so capturing an unstarted session is
// equivalent to capturing it at virtual time zero).
func (e *Engine) CaptureSections() []Section {
	e.Boot()
	var out []Section
	add := func(name string, fill func(w *snapshot.Writer)) {
		w := snapshot.NewWriter(SectionMagic)
		fill(w)
		out = append(out, Section{Name: name, Data: w.Finish()})
	}

	add("meta", func(w *snapshot.Writer) {
		w.I64(int64(e.Now()))
		w.U64(e.commits)
		w.Bool(e.finished)
		w.Bool(e.o.Bare)
		if e.o.Bare {
			w.Int(1)
		} else {
			w.Int(len(e.cluster.Nodes))
		}
		w.U64(e.diskOps)
		w.U64(e.diskUncertain)
	})

	if e.o.Bare {
		add("node0.machine", func(w *snapshot.Writer) {
			snapshot.PutMachineState(w, e.single.Node.M.CaptureState())
		})
		add("node0.devices", func(w *snapshot.Writer) {
			for _, a := range e.single.Node.Adapters {
				w.U64(a.StateDigest())
			}
			w.U64(e.single.Node.Port.StateDigest())
			if e.single.Node.NICPort != nil {
				w.U64(e.single.Node.NICPort.StateDigest())
			}
		})
		add("console", func(w *snapshot.Writer) {
			w.String(e.single.Console.Output())
			w.U64(e.single.Console.StateDigest())
		})
		e.addNICSection(add)
		for i, d := range e.single.Disks {
			i, d := i, d
			add(fmt.Sprintf("disk%d", i), func(w *snapshot.Writer) { w.U64(d.StateDigest()) })
		}
		return out
	}

	for i, node := range e.cluster.Nodes {
		i, node := i, node
		add(fmt.Sprintf("node%d.machine", i), func(w *snapshot.Writer) {
			snapshot.PutMachineState(w, node.M.CaptureState())
		})
		add(fmt.Sprintf("node%d.hypervisor", i), func(w *snapshot.Writer) {
			snapshot.PutHypervisorState(w, node.HV.CaptureState())
		})
		add(fmt.Sprintf("node%d.devices", i), func(w *snapshot.Writer) {
			for _, a := range node.Adapters {
				w.U64(a.StateDigest())
			}
			w.U64(node.Port.StateDigest())
			if node.NICPort != nil {
				w.U64(node.NICPort.StateDigest())
			}
		})
	}
	add("console", func(w *snapshot.Writer) {
		w.String(e.cluster.Console.Output())
		w.U64(e.cluster.Console.StateDigest())
	})
	e.addNICSection(add)
	add("replication.primary", func(w *snapshot.Writer) {
		snapshot.PutCoordinatorState(w, e.pri.CaptureState())
	})
	for i, bak := range e.baks {
		i, bak := i, bak
		add(fmt.Sprintf("replication.backup%d", i+1), func(w *snapshot.Writer) {
			snapshot.PutBackupState(w, bak.CaptureState())
		})
	}
	for i, d := range e.cluster.Disks {
		i, d := i, d
		add(fmt.Sprintf("disk%d", i), func(w *snapshot.Writer) { w.U64(d.StateDigest()) })
	}
	add("links", func(w *snapshot.Writer) {
		for i := range e.cluster.Links {
			for j := range e.cluster.Links[i] {
				if d := e.cluster.Links[i][j]; d != nil {
					w.Int(i)
					w.Int(j)
					w.U64(d.AtoB.StateDigest())
					w.U64(d.BtoA.StateDigest())
				}
			}
		}
		// State-transfer links are session state too: an image in
		// flight (or already delivered) must verify like any channel.
		srcs := make([]int, 0, len(e.xferLinks))
		for src := range e.xferLinks {
			srcs = append(srcs, src)
		}
		sort.Ints(srcs)
		for _, src := range srcs {
			for i, l := range e.xferLinks[src] {
				w.Int(src)
				w.Int(i)
				w.U64(l.StateDigest())
			}
		}
	})
	return out
}

// addNICSection appends the shared network-service section: the NIC's
// full dynamic state (reply transcript, dedup watermarks, in-progress
// TX assembly) plus the client population's per-connection watermarks.
// Absent entirely on sessions without a NIC, so their section lists —
// and any snapshots pinned before the NIC existed — are unchanged.
func (e *Engine) addNICSection(add func(name string, fill func(w *snapshot.Writer))) {
	if e.nic == nil {
		return
	}
	add("nic", func(w *snapshot.Writer) {
		w.U64(e.nic.StateDigest())
		if e.clients != nil {
			w.U64(e.clients.StateDigest())
		}
	})
}

// CompareSections reports the first difference between two captures
// (nil if identical). Used by snapshot restore verification.
func CompareSections(want, got []Section) error {
	for i := 0; i < len(want) && i < len(got); i++ {
		if want[i].Name != got[i].Name {
			return fmt.Errorf("section %d is %q, snapshot has %q", i, got[i].Name, want[i].Name)
		}
		if string(want[i].Data) != string(got[i].Data) {
			return fmt.Errorf("section %q differs (%d vs %d bytes)", want[i].Name, len(want[i].Data), len(got[i].Data))
		}
	}
	if len(want) != len(got) {
		return fmt.Errorf("capture has %d sections, snapshot has %d", len(got), len(want))
	}
	return nil
}
