package session

import (
	"testing"

	"repro/internal/guest"
	"repro/internal/sim"
)

func cpuOpts(iters uint32) Options {
	return Options{
		Seed:        1,
		Program:     WorkloadProgram(guest.CPUIntensive(iters)),
		EpochLength: 1024,
	}
}

// TestSlicedRunMatchesOneShot is the engine's core invariant: the same
// session advanced in arbitrary bounded slices produces a terminal
// result bit-identical to one driven to completion in a single call.
func TestSlicedRunMatchesOneShot(t *testing.T) {
	one := New(cpuOpts(5000))
	defer one.Close()
	if err := one.RunToCompletion(nil); err != nil {
		t.Fatal(err)
	}
	ref, err := one.Result()
	if err != nil {
		t.Fatal(err)
	}

	for _, slice := range []sim.Time{100 * sim.Microsecond, 3 * sim.Millisecond, 40 * sim.Millisecond} {
		sliced := New(cpuOpts(5000))
		for !sliced.Done() {
			sliced.RunFor(slice)
			if sliced.Now() > 100*sim.Second {
				t.Fatalf("slice %v: did not finish", slice)
			}
		}
		got, err := sliced.Result()
		sliced.Close()
		if err != nil {
			t.Fatal(err)
		}
		if got.Time != ref.Time || got.Guest != ref.Guest || got.Console != ref.Console ||
			got.PrimaryStats != ref.PrimaryStats || got.BackupStats != ref.BackupStats {
			t.Errorf("slice %v drifted: time %v vs %v, checksum %#x vs %#x",
				slice, got.Time, ref.Time, got.Guest.Checksum, ref.Guest.Checksum)
		}
	}
}

// TestBareSlicedRun verifies slicing is also invisible for the baseline
// topology.
func TestBareSlicedRun(t *testing.T) {
	o := cpuOpts(5000)
	o.Bare = true
	one := New(o)
	defer one.Close()
	if err := one.RunToCompletion(nil); err != nil {
		t.Fatal(err)
	}
	ref, _ := one.Result()

	sliced := New(o)
	defer sliced.Close()
	for !sliced.Done() {
		sliced.RunFor(500 * sim.Microsecond)
	}
	got, err := sliced.Result()
	if err != nil {
		t.Fatal(err)
	}
	if got.Time != ref.Time || got.Guest != ref.Guest {
		t.Errorf("bare sliced run drifted: %v/%#x vs %v/%#x",
			got.Time, got.Guest.Checksum, ref.Time, ref.Guest.Checksum)
	}
}

// TestRunUntilEpochPredicate pauses on an epoch-boundary predicate,
// then resumes.
func TestRunUntilEpochPredicate(t *testing.T) {
	var commits int
	o := cpuOpts(5000)
	o.Observer = func(ev Event) {
		if ev.Kind == EventEpochCommitted {
			commits++
		}
	}
	e := New(o)
	defer e.Close()
	if err := e.RunUntil(func() bool { return commits >= 3 }); err != nil {
		t.Fatal(err)
	}
	if commits < 3 || e.Done() {
		t.Fatalf("predicate stop: commits=%d done=%v", commits, e.Done())
	}
	pausedAt := e.Now()
	if err := e.RunToCompletion(nil); err != nil {
		t.Fatal(err)
	}
	if e.Now() < pausedAt {
		t.Error("time went backwards across resume")
	}
	// A pred-paused-then-resumed run matches an uninterrupted one.
	ref := New(cpuOpts(5000))
	defer ref.Close()
	if err := ref.RunToCompletion(nil); err != nil {
		t.Fatal(err)
	}
	a, _ := e.Result()
	b, _ := ref.Result()
	if a.Time != b.Time || a.Guest != b.Guest {
		t.Errorf("paused run drifted: %v vs %v", a.Time, b.Time)
	}
}

// TestEventStreamOrdering checks events arrive in nondecreasing virtual
// time with the expected lifecycle shape.
func TestEventStreamOrdering(t *testing.T) {
	var evs []Event
	o := Options{
		Seed:          1,
		Program:       WorkloadProgram(guest.CPUIntensive(4000)),
		EpochLength:   1024,
		FailPrimaryAt: 4 * sim.Millisecond,
		Observer:      func(ev Event) { evs = append(evs, ev) },
	}
	e := New(o)
	defer e.Close()
	if err := e.RunToCompletion(nil); err != nil {
		t.Fatal(err)
	}
	var last sim.Time
	var sawFail, sawPromote, sawComplete bool
	for _, ev := range evs {
		if ev.At < last {
			t.Fatalf("event time went backwards: %v after %v (kind %d)", ev.At, last, ev.Kind)
		}
		last = ev.At
		switch ev.Kind {
		case EventFailstop:
			sawFail = true
			if sawPromote {
				t.Error("failstop after promotion")
			}
		case EventPromoted:
			sawPromote = true
			if !sawFail {
				t.Error("promotion before failstop")
			}
		case EventCompleted:
			sawComplete = true
		}
	}
	if !sawFail || !sawPromote || !sawComplete {
		t.Errorf("missing lifecycle events: fail=%v promote=%v complete=%v", sawFail, sawPromote, sawComplete)
	}
	r, err := e.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Promoted {
		t.Error("result does not reflect promotion")
	}
}

// TestResultBeforeCompletion ensures mid-run Result errors while
// Snapshot works.
func TestResultBeforeCompletion(t *testing.T) {
	e := New(cpuOpts(5000))
	defer e.Close()
	e.RunFor(2 * sim.Millisecond)
	if _, err := e.Result(); err == nil {
		t.Error("Result succeeded mid-run")
	}
	s := e.Snapshot()
	if !s.Booted || s.Done || s.Now != 2*sim.Millisecond {
		t.Errorf("bad mid-run snapshot: %+v", s)
	}
}
