package hypervisor

// This file captures and restores the hypervisor's virtualization
// state — the other half of a complete virtual-machine image beside
// machine.State. A backup reintegrated by state transfer must agree
// with the acting coordinator not only on guest-architected state but
// on every piece of VIRTUAL state the hypervisor synthesizes
// deterministically from it: virtual control registers, the virtual
// PSW, the epoch-synchronized clock base, the virtual interval timer,
// the interrupt delivery buffer, and the ordered device table's shadow
// state — per-device register banks (opaque, serialized by each
// shadow), the protocol latches (outstanding/issued-real — the set rule
// P7 synthesizes uncertain interrupts for at failover), the output
// ordinal counters, and any suppressed-output buffer.

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/sim"
)

// DeviceState is one captured shadow-device binding: the window
// identity, the device-generic protocol latches, and the shadow's own
// serialized register state.
type DeviceState struct {
	ID   string
	Base uint32
	Line uint

	// Outstanding marks a started operation whose completion has not
	// been delivered to the guest (P7's synthesis set).
	Outstanding bool
	// IssuedReal marks that the operation was forwarded to real
	// hardware. A state transfer clears it on the receiving side: the
	// new backup issued nothing, so completions raised by its own
	// devices must be ignored (rule P3).
	IssuedReal bool
	// OutCount is the device's output-ordinal counter (environment
	// output dedup watermarking).
	OutCount uint32

	// Data is the shadow's opaque register state (Shadow.MarshalState).
	Data []byte
}

// SuppressedOutputState is one buffered suppressed (or output-commit
// deferred) output store.
type SuppressedOutputState struct {
	Dev     uint32 // window base of the device
	Off     uint32
	Val     uint32
	Ordinal uint32
	Epoch   uint64 // epoch the store retired in (release/drop watermark)
	Start   bool   // deferred I/O start (doorbell) rather than an output store
	At      uint64 // generation time, virtual ns (commit-latency accounting)
}

// State is a complete capture of one hypervisor's virtualization state.
// All reference fields are deep copies.
type State struct {
	VCR           [isa.NumCRs]uint32
	VPSW          uint32
	VITMRArmed    bool
	VITMRDeadline uint32

	TODBase         uint32
	EpochStartInstr uint64

	GuestInstr uint64
	Epoch      uint64
	Halted     bool
	IOActive   bool

	// Buffered is the interrupt delivery buffer (pending for the next
	// epoch boundary). Empty when captured at a boundary after
	// DeliverBuffered — the quiescent point state transfer uses.
	Buffered []Interrupt

	// Devices holds the shadow device table in window order.
	Devices []DeviceState

	// Suppressed is the current epoch's suppressed-output buffer
	// (backup side; empty on an I/O-active hypervisor).
	Suppressed []SuppressedOutputState

	Stats Stats
}

// CaptureState snapshots the hypervisor. Read-only.
func (hv *Hypervisor) CaptureState() State {
	s := State{
		VCR:             hv.vCR,
		VPSW:            hv.vPSW,
		VITMRArmed:      hv.vITMRArmed,
		VITMRDeadline:   hv.vITMRDeadline,
		TODBase:         hv.todBase,
		EpochStartInstr: hv.epochStartInstr,
		GuestInstr:      hv.guestInstr,
		Epoch:           hv.epoch,
		Halted:          hv.halted,
		IOActive:        hv.ioActive,
	}
	for _, i := range hv.buffered {
		ci := i
		if len(i.Data) > 0 {
			ci.Data = append([]byte(nil), i.Data...)
		}
		s.Buffered = append(s.Buffered, ci)
	}
	for _, d := range hv.devs {
		s.Devices = append(s.Devices, DeviceState{
			ID: d.win.ID, Base: d.win.Base, Line: d.win.Line,
			Outstanding: d.outstanding, IssuedReal: d.issuedReal,
			OutCount: d.outCount,
			Data:     d.sh.MarshalState(),
		})
	}
	for _, so := range hv.suppressed {
		s.Suppressed = append(s.Suppressed, SuppressedOutputState{
			Dev: so.dev.win.Base, Off: so.off, Val: so.val, Ordinal: so.ordinal,
			Epoch: so.epoch, Start: so.start, At: uint64(so.at),
		})
	}
	s.Stats = hv.Stats
	return s
}

// RestoreState overwrites the hypervisor's virtualization state from a
// capture. The target's attached device table must match the capture's
// (same IDs, bases and lines — the platform wires replicas
// identically). The real machine's PSW is re-projected from the
// restored virtual PSW; restore the machine state first.
func (hv *Hypervisor) RestoreState(s State) error {
	if len(hv.devs) != len(s.Devices) {
		return fmt.Errorf("hypervisor: restore: %d devices attached, capture has %d", len(hv.devs), len(s.Devices))
	}
	for i, d := range hv.devs {
		ds := s.Devices[i]
		if ds.ID != d.win.ID || ds.Base != d.win.Base || ds.Line != d.win.Line {
			return fmt.Errorf("hypervisor: restore: device %d is %q base %#x line %d, capture has %q base %#x line %d",
				i, d.win.ID, d.win.Base, d.win.Line, ds.ID, ds.Base, ds.Line)
		}
	}
	for i, d := range hv.devs {
		if err := d.sh.UnmarshalState(s.Devices[i].Data); err != nil {
			return fmt.Errorf("hypervisor: restore: device %q: %v", d.win.ID, err)
		}
	}
	hv.vCR = s.VCR
	hv.vPSW = s.VPSW
	hv.vITMRArmed = s.VITMRArmed
	hv.vITMRDeadline = s.VITMRDeadline
	hv.todBase = s.TODBase
	hv.epochStartInstr = s.EpochStartInstr
	hv.guestInstr = s.GuestInstr
	hv.epoch = s.Epoch
	hv.halted = s.Halted
	hv.ioActive = s.IOActive
	hv.buffered = nil
	for _, i := range s.Buffered {
		ci := i
		if len(i.Data) > 0 {
			ci.Data = append([]byte(nil), i.Data...)
		}
		hv.buffered = append(hv.buffered, ci)
	}
	for i, d := range hv.devs {
		ds := s.Devices[i]
		d.outstanding, d.issuedReal, d.outCount = ds.Outstanding, ds.IssuedReal, ds.OutCount
	}
	hv.suppressed = hv.suppressed[:0]
	for _, so := range s.Suppressed {
		d := hv.devByBase(so.Dev)
		if d == nil {
			return fmt.Errorf("hypervisor: restore: suppressed output for unknown device %#x", so.Dev)
		}
		hv.suppressed = append(hv.suppressed, suppressedOutput{
			dev: d, off: so.Off, val: so.Val, ordinal: so.Ordinal,
			epoch: so.Epoch, start: so.Start, at: sim.Time(so.At),
		})
	}
	hv.Stats = s.Stats
	hv.applyVPSW()
	return nil
}
