package hypervisor

// This file captures and restores the hypervisor's virtualization
// state — the other half of a complete virtual-machine image beside
// machine.State. A backup reintegrated by state transfer must agree
// with the acting coordinator not only on guest-architected state but
// on every piece of VIRTUAL state the hypervisor synthesizes
// deterministically from it: virtual control registers, the virtual
// PSW, the epoch-synchronized clock base, the virtual interval timer,
// the interrupt delivery buffer and the shadow adapter registers
// (including which operations are outstanding — the set rule P7
// synthesizes uncertain interrupts for at failover).

import (
	"fmt"

	"repro/internal/isa"
)

// AdapterState is one captured virtual adapter window.
type AdapterState struct {
	Base uint32
	Line uint

	Cmd    uint32
	Block  uint32
	Addr   uint32
	Count  uint32
	Status uint32
	Info   uint32

	// Outstanding marks a doorbell whose completion has not been
	// delivered to the guest (P7's synthesis set).
	Outstanding bool
	// IssuedReal marks that the operation was forwarded to real
	// hardware. A state transfer clears it on the receiving side: the
	// new backup issued nothing, so completions raised by its own
	// devices must be ignored (rule P3).
	IssuedReal bool
}

// State is a complete capture of one hypervisor's virtualization state.
// All reference fields are deep copies.
type State struct {
	VCR           [isa.NumCRs]uint32
	VPSW          uint32
	VITMRArmed    bool
	VITMRDeadline uint32

	TODBase         uint32
	EpochStartInstr uint64

	GuestInstr uint64
	Epoch      uint64
	Halted     bool
	IOActive   bool

	// Buffered is the interrupt delivery buffer (pending for the next
	// epoch boundary). Empty when captured at a boundary after
	// DeliverBuffered — the quiescent point state transfer uses.
	Buffered []Interrupt

	// Adapters holds the shadow device windows in ascending Base order.
	Adapters []AdapterState

	Stats Stats
}

// CaptureState snapshots the hypervisor. Read-only.
func (hv *Hypervisor) CaptureState() State {
	s := State{
		VCR:             hv.vCR,
		VPSW:            hv.vPSW,
		VITMRArmed:      hv.vITMRArmed,
		VITMRDeadline:   hv.vITMRDeadline,
		TODBase:         hv.todBase,
		EpochStartInstr: hv.epochStartInstr,
		GuestInstr:      hv.guestInstr,
		Epoch:           hv.epoch,
		Halted:          hv.halted,
		IOActive:        hv.ioActive,
	}
	for _, i := range hv.buffered {
		ci := i
		if len(i.DMAData) > 0 {
			ci.DMAData = append([]byte(nil), i.DMAData...)
		}
		s.Buffered = append(s.Buffered, ci)
	}
	for _, base := range hv.adapterBases() {
		va := hv.adapters[base]
		s.Adapters = append(s.Adapters, AdapterState{
			Base: base, Line: va.line,
			Cmd: va.cmd, Block: va.block, Addr: va.addr, Count: va.count,
			Status: va.status, Info: va.info,
			Outstanding: va.outstanding, IssuedReal: va.issuedReal,
		})
	}
	s.Stats = hv.Stats
	return s
}

// RestoreState overwrites the hypervisor's virtualization state from a
// capture. The target's attached adapter windows must match the
// capture's (same bases and lines — the platform wires replicas
// identically). The real machine's PSW is re-projected from the
// restored virtual PSW; restore the machine state first.
func (hv *Hypervisor) RestoreState(s State) error {
	bases := hv.adapterBases()
	if len(bases) != len(s.Adapters) {
		return fmt.Errorf("hypervisor: restore: %d adapters attached, capture has %d", len(bases), len(s.Adapters))
	}
	for i, base := range bases {
		a := s.Adapters[i]
		if a.Base != base || a.Line != hv.adapters[base].line {
			return fmt.Errorf("hypervisor: restore: adapter %d is base %#x line %d, capture has base %#x line %d",
				i, base, hv.adapters[base].line, a.Base, a.Line)
		}
	}
	hv.vCR = s.VCR
	hv.vPSW = s.VPSW
	hv.vITMRArmed = s.VITMRArmed
	hv.vITMRDeadline = s.VITMRDeadline
	hv.todBase = s.TODBase
	hv.epochStartInstr = s.EpochStartInstr
	hv.guestInstr = s.GuestInstr
	hv.epoch = s.Epoch
	hv.halted = s.Halted
	hv.ioActive = s.IOActive
	hv.buffered = nil
	for _, i := range s.Buffered {
		ci := i
		if len(i.DMAData) > 0 {
			ci.DMAData = append([]byte(nil), i.DMAData...)
		}
		hv.buffered = append(hv.buffered, ci)
	}
	for i, base := range bases {
		a := s.Adapters[i]
		va := hv.adapters[base]
		va.cmd, va.block, va.addr, va.count = a.Cmd, a.Block, a.Addr, a.Count
		va.status, va.info = a.Status, a.Info
		va.outstanding, va.issuedReal = a.Outstanding, a.IssuedReal
	}
	hv.Stats = s.Stats
	hv.applyVPSW()
	return nil
}
