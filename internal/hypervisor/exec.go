package hypervisor

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/sim"
)

// RunEpoch executes exactly cfg.EpochLength guest instructions (or fewer
// if the guest halts), charging simulated time for instruction execution
// and hypervisor activity, and capturing device interrupts mid-epoch.
// It returns the epoch-boundary report. The caller (replication layer)
// then performs the boundary protocol: Tme exchange, TimerInterruptsDue,
// DeliverBuffered, and advances to the next epoch.
//
// Under Config.AdaptiveBoundary a guest environment output arms an early
// cut CutSlack instructions past the triggering store; the epoch then
// ends at that coordinate instead of the full EpochLength. The cut point
// is a pure function of the guest instruction stream and shadow-device
// state, so every replica running the same epoch chooses the same
// boundary; Boundary.GuestInstr carries the coordinate for cross-replica
// verification.
//
// p must be the simulation process driving this machine.
func (hv *Hypervisor) RunEpoch(p *sim.Proc) Boundary {
	target := hv.guestInstr + hv.cfg.EpochLength
	m := hv.M
	cost := hv.cfg.Cost
	hv.cutAt = 0 // disarm: cuts never cross an epoch boundary

	for !hv.halted {
		// An armed output cut shortens the epoch; re-evaluated every
		// iteration because mmioStore arms (or re-arms) it mid-epoch.
		eff := target
		if hv.cutAt != 0 && hv.cutAt < target {
			eff = hv.cutAt
		}
		if hv.guestInstr >= eff {
			break
		}
		if hv.Stop != nil && hv.Stop() {
			// Failstop: the processor halts abruptly and detectably.
			break
		}
		// Arm the recovery counter for the remainder of the epoch: the
		// Instruction-Stream Interrupt Assumption in action. The batched
		// executor turns it into an instruction budget instead of a
		// per-step control-register check.
		remaining := eff - hv.guestInstr
		m.CRs[isa.CRRCTR] = uint32(remaining)

		// Execute a chunk, then sync simulated time and poll devices.
		chunk := uint64(hv.cfg.ChunkSize)
		if chunk > remaining {
			chunk = remaining
		}
		rr := m.Run(chunk)
		hv.guestInstr += rr.Executed
		hv.Stats.GuestInstructions += rr.Executed
		if rr.Executed > 0 {
			p.Sleep(sim.Time(rr.Executed) * cost.InstructionTime)
		}
		// Poll real device lines raised while the chunk ran (P1 capture).
		hv.pollDevices()

		switch {
		case rr.Trap == isa.TrapRecovery:
			// Epoch boundary reached exactly.
			if hv.guestInstr != eff {
				panic(fmt.Sprintf("hypervisor: recovery trap at %d, target %d",
					hv.guestInstr, eff))
			}
		case rr.Trap != isa.TrapNone:
			hv.handleTrap(p, rr.StepResult)
		case rr.Halted:
			hv.halted = true
		case rr.Diag != 0:
			hv.handleDiagAtPL0(rr.StepResult)
		}
	}
	if hv.cutAt != 0 && hv.cutAt < target && hv.guestInstr >= hv.cutAt {
		hv.Stats.AdaptiveCuts++
	}

	hv.epoch++
	hv.Stats.Epochs++
	b := Boundary{
		Epoch:      hv.epoch - 1,
		GuestInstr: hv.guestInstr,
		Digest:     hv.Digest(),
		Halted:     hv.halted,
		TOD:        m.TOD(),
	}
	return b
}

// StartEpochClock begins a new epoch's virtual-TOD base: the primary uses
// its real clock; the backup uses the Tme value from the primary (call
// SetTODBase instead). Charged as part of boundary processing.
func (hv *Hypervisor) StartEpochClock() uint32 {
	tod := hv.M.TOD()
	hv.SetTODBase(tod)
	return tod
}

// ChargeBoundary charges the local epoch-boundary processing cost.
func (hv *Hypervisor) ChargeBoundary(p *sim.Proc) {
	hv.Stats.HypervisorTime += hv.cfg.Cost.EpochLocal
	p.Sleep(hv.cfg.Cost.EpochLocal)
}

// handleDiagAtPL0 handles a DIAG executed at real PL0 (only possible in
// the hypervisor's own context; guests trap instead). Kept for symmetry.
func (hv *Hypervisor) handleDiagAtPL0(res machine.StepResult) {
	if hv.OnDiag != nil {
		hv.OnDiag(res.Diag - 1)
	}
}

// chargeSim charges the cost of one full hypervisor simulation
// (entry/exit + work). Under ResidentEmulation, a simulation landing
// within ResidentWindow guest instructions of the previous one is
// charged only the simulation work: the hypervisor never left, so no
// fresh world switch is paid. Pure function of the instruction stream —
// every replica charges identically.
func (hv *Hypervisor) chargeSim(p *sim.Proc) {
	c := hv.cfg.Cost.HSim()
	if hv.cfg.ResidentEmulation && hv.residentArmed &&
		hv.guestInstr-hv.residentAt <= hv.cfg.ResidentWindow {
		c = hv.cfg.Cost.ResidentWork
		hv.Stats.ResidentSims++
	}
	hv.residentAt, hv.residentArmed = hv.guestInstr, true
	hv.Stats.HypervisorTime += c
	p.Sleep(c)
}

// chargeEntryExit charges a hypervisor entry/exit without simulation work
// (trap reflection, TLB fill base cost).
func (hv *Hypervisor) chargeEntryExit(p *sim.Proc) {
	c := hv.cfg.Cost.TrapEntryExit
	hv.Stats.HypervisorTime += c
	p.Sleep(c)
}

// handleTrap dispatches a guest trap to the appropriate emulation.
func (hv *Hypervisor) handleTrap(p *sim.Proc, res machine.StepResult) {
	m := hv.M
	switch res.Trap {
	case isa.TrapPriv:
		hv.chargeSim(p)
		hv.Stats.PrivSimulated++
		hv.emulatePrivileged(res.Inst)
		// The simulated instruction retires from the guest's point of
		// view: it counts toward the epoch's instruction total exactly
		// as a hardware-executed instruction would.
		hv.guestInstr++
		hv.Stats.GuestInstructions++

	case isa.TrapITLBMiss, isa.TrapDTLBMiss:
		if hv.cfg.NoTLBTakeover {
			// Ablation: behave like a hypervisor that did NOT take over
			// TLB management — the guest's software miss handler runs,
			// at instruction-stream positions determined by the REAL
			// TLB's (possibly nondeterministic) contents.
			hv.chargeEntryExit(p)
			hv.deliverVirtualTrap(res.Trap, 0, res.IOR)
			return
		}
		// §3.2: the hypervisor takes over TLB management. Walk the
		// guest's page table; if the page is resident, insert the
		// translation invisibly. Only a non-resident page reflects a
		// miss into the guest.
		hv.chargeEntryExit(p)
		hv.Stats.HypervisorTime += hv.cfg.Cost.TLBWalk
		p.Sleep(hv.cfg.Cost.TLBWalk)
		va := res.IOR
		pte, ok := hv.walkGuestPT(va)
		if ok && pte&PTEValid != 0 {
			hv.Stats.TLBFills++
			hv.insertGuestTLB(va, pte)
			return // retry the faulting instruction
		}
		hv.deliverVirtualTrap(res.Trap, 0, va)

	case isa.TrapAccess:
		// Either a memory-mapped I/O access (environment instruction,
		// §3.2) or a genuine guest protection fault.
		pa, ok := hv.guestPhysical(res.IOR)
		if ok && m.InMMIO(pa) {
			hv.chargeSim(p)
			hv.Stats.EnvSimulated++
			hv.emulateMMIO(res.Inst, pa)
			hv.guestInstr++ // simulated instruction retires
			hv.Stats.GuestInstructions++
			return
		}
		hv.chargeEntryExit(p)
		hv.deliverVirtualTrap(isa.TrapAccess, res.ISR, res.IOR)

	case isa.TrapGate, isa.TrapBreak, isa.TrapIllegal, isa.TrapAlign,
		isa.TrapArith, isa.TrapMachine:
		// Guest-internal events: reflect.
		hv.chargeEntryExit(p)
		hv.deliverVirtualTrap(res.Trap, res.ISR, res.IOR)

	case isa.TrapExtIntr:
		// Cannot happen: the guest runs with real interrupts disabled.
		panic("hypervisor: real external interrupt trap while guest running")

	default:
		panic(fmt.Sprintf("hypervisor: unhandled trap %v", res.Trap))
	}
}

// emulatePrivileged simulates a privileged (or privileged-environment)
// instruction against virtual state. PC still points at the instruction.
func (hv *Hypervisor) emulatePrivileged(in isa.Inst) {
	m := hv.M
	advance := func() { m.PC += 4 }
	switch in.Op {
	case isa.OpMFCTL:
		hv.setGuestReg(in.Rd, hv.VirtualCR(isa.CR(in.Imm)))
		advance()
	case isa.OpMTCTL:
		hv.writeVirtualCR(isa.CR(in.Imm), hv.guestReg(in.R1))
		advance()
		// Unmasking may make a pending virtual interrupt deliverable.
		if isa.CR(in.Imm) == isa.CREIEM || isa.CR(in.Imm) == isa.CREIRR {
			hv.checkVIRQ()
		}
	case isa.OpRFI:
		hv.vPSW = hv.vCR[isa.CRIPSW] &^ isa.PSWDefect
		hv.applyVPSW()
		m.PC = hv.vCR[isa.CRIIA]
		hv.checkVIRQ()
	case isa.OpHALT:
		hv.halted = true
		advance()
	case isa.OpWFI:
		// The virtual WFI completes immediately: under replication,
		// interrupts arrive only at epoch boundaries, so guests that
		// wait for I/O spin on driver flags (as HP-UX's idle loop
		// spins). Treating WFI as a no-op keeps the instruction stream
		// deterministic.
		hv.Stats.EnvSimulated++
		advance()
	case isa.OpITLBI:
		v := hv.guestReg(in.R1)
		hv.insertGuestTLB(v&^isa.PageMask, (hv.guestReg(in.R2)&^isa.PageMask)|(v&isa.TLBPermMask)|PTEValid)
		advance()
	case isa.OpPTLB:
		m.TLB.Purge()
		advance()
	case isa.OpDIAG:
		if hv.OnDiag != nil {
			hv.OnDiag(uint32(in.Imm))
		}
		advance()
	case isa.OpMFTOD:
		// THE environment instruction (§2.1): its value is synthesized
		// from the epoch-synchronized virtual clock so that it reads
		// identically on primary and backup.
		hv.Stats.EnvSimulated++
		hv.setGuestReg(in.Rd, hv.VirtualTOD())
		advance()
	default:
		panic(fmt.Sprintf("hypervisor: privileged trap for non-privileged %v", in.Op))
	}

}

// guestReg/setGuestReg access guest general registers (shared with the
// real machine — the guest's registers ARE the machine's).
func (hv *Hypervisor) guestReg(r isa.Reg) uint32 {
	if r == isa.RegZero {
		return 0
	}
	return hv.M.Regs[r]
}

func (hv *Hypervisor) setGuestReg(r isa.Reg, v uint32) {
	if r != isa.RegZero {
		hv.M.Regs[r] = v
	}
}

// walkGuestPT reads the guest page-table entry for a virtual address.
func (hv *Hypervisor) walkGuestPT(va uint32) (uint32, bool) {
	ptbr := hv.vCR[isa.CRPTBR]
	if ptbr == 0 {
		return 0, false
	}
	vpn := va >> isa.PageShift
	pteAddr := ptbr + vpn*4
	if pteAddr+4 > hv.M.MemSize() {
		return 0, false
	}
	return hv.M.LoadPhys32(pteAddr), true
}

// insertGuestTLB inserts a guest translation into the REAL TLB with the
// privilege field mapped from virtual to real levels.
func (hv *Hypervisor) insertGuestTLB(vaddr, pte uint32) {
	vMinPL := (pte & isa.TLBPLMask) >> isa.TLBPLShift
	flags := pte&(isa.TLBRead|isa.TLBWrite|isa.TLBExec) | (realPLFor(vMinPL) << isa.TLBPLShift)
	hv.M.TLB.Insert(machine.TLBEntry{
		VPN:   vaddr >> isa.PageShift,
		PPN:   pte >> isa.PageShift,
		Flags: flags,
	})
}

// guestPhysical resolves a guest virtual address to physical using the
// guest's translation context (identity in real mode, page table in
// virtual mode).
func (hv *Hypervisor) guestPhysical(va uint32) (uint32, bool) {
	if hv.vPSW&isa.PSWV == 0 {
		return va, true
	}
	pte, ok := hv.walkGuestPT(va)
	if !ok || pte&PTEValid == 0 {
		return 0, false
	}
	return pte&^uint32(isa.PageMask) | va&isa.PageMask, true
}

// emulateMMIO simulates a guest load or store to the MMIO window — the
// Environment Instruction mechanism of §3.2: access rights on the I/O
// pages force a trap, and the hypervisor performs (or suppresses, or
// virtualizes) the device access.
func (hv *Hypervisor) emulateMMIO(in isa.Inst, pa uint32) {
	m := hv.M
	off := pa - m.Config().MMIOBase
	switch in.Op {
	case isa.OpLDW, isa.OpLDH, isa.OpLDB:
		v := hv.mmioLoad(off)
		hv.setGuestReg(in.Rd, v)
		m.PC += 4
	case isa.OpSTW, isa.OpSTH, isa.OpSTB:
		hv.mmioStore(off, hv.guestReg(in.Rd))
		m.PC += 4
	default:
		// A non-load/store faulting on an MMIO page (e.g. instruction
		// fetch): reflect as an access fault.
		hv.deliverVirtualTrap(isa.TrapAccess, 0, pa)
	}
}

// mmioLoad serves a guest MMIO load from VIRTUAL device state. Shadow
// registers evolve identically on primary and backup (guest stores plus
// epoch-boundary completion application), so loads are deterministic
// and need no forwarding.
func (hv *Hypervisor) mmioLoad(off uint32) uint32 {
	if d := hv.devAt(off); d != nil {
		return d.sh.Load(off - d.win.Base)
	}
	return 0
}

// mmioStore serves a guest MMIO store: updates virtual device state
// and, when I/O is active (primary / promoted backup), forwards the
// effect to real hardware. On the backup, environment effects are
// suppressed (§2.2 case i) — output stores are additionally recorded so
// a promotion can re-emit the failover epoch's output exactly once.
func (hv *Hypervisor) mmioStore(off uint32, v uint32) {
	d := hv.devAt(off)
	if d == nil {
		return
	}
	rel := off - d.win.Base
	switch d.sh.Store(rel, v) {
	case device.EffectOutput:
		d.outCount++
		hv.noteOutputTrigger()
		if hv.ioActive {
			if hv.deferOutput {
				// Output-commit deferral (VMware-FT output rule): record
				// the store, emit only when this epoch's frame is acked.
				hv.Stats.OutputsDeferred++
				hv.suppressed = append(hv.suppressed, suppressedOutput{
					dev: d, off: rel, val: v, ordinal: d.outCount,
					epoch: hv.epoch, at: hv.clockNow(),
				})
			} else {
				// Output reveals virtual-machine state to the environment:
				// the §4.3 I/O gate applies.
				if hv.OnBeforeIO != nil {
					hv.OnBeforeIO()
				}
				d.sh.Output(d.bus, rel, v, d.outCount)
			}
		} else {
			hv.Stats.ConsoleSuppressed++
			hv.suppressed = append(hv.suppressed, suppressedOutput{
				dev: d, off: rel, val: v, ordinal: d.outCount,
				epoch: hv.epoch,
			})
		}
	case device.EffectStart:
		hv.startIO(d)
	}
}

// noteOutputTrigger arms (or pushes back) the adaptive epoch cut after a
// guest environment output. Called on EVERY replica — active or
// suppressed — so the cut coordinate is a pure function of the shared
// instruction stream. The CutSlack countdown coalesces output bursts:
// each further output re-arms it, and the epoch ends only once the guest
// has gone CutSlack instructions without producing output.
func (hv *Hypervisor) noteOutputTrigger() {
	if hv.cfg.AdaptiveBoundary {
		hv.cutAt = hv.guestInstr + hv.cfg.CutSlack
	}
}

// startIO starts a virtual I/O operation. The shadow device has already
// gone busy on both replicas; only an I/O-active hypervisor programs
// the real hardware. The operation stays "outstanding" until its
// completion is DELIVERED (not merely captured) — the set rule P7
// covers.
func (hv *Hypervisor) startIO(d *shadowDev) {
	d.outstanding = true
	hv.noteOutputTrigger()
	if !hv.ioActive {
		hv.Stats.IOSuppressed++
		return
	}
	if hv.deferOutput {
		// Output-commit deferral: the real hardware is programmed only
		// when this epoch's frame is acknowledged. The shadow device is
		// already busy on every replica, so guest-visible state is
		// unaffected by the delay.
		hv.Stats.StartsDeferred++
		hv.suppressed = append(hv.suppressed, suppressedOutput{
			dev: d, start: true, epoch: hv.epoch, at: hv.clockNow(),
		})
		return
	}
	if hv.OnBeforeIO != nil {
		hv.OnBeforeIO()
	}
	hv.Stats.IOIssued++
	d.issuedReal = true
	d.sh.Start(d.bus)
}

// pollDevices captures completions the real hardware has raised since the
// last poll: rule P1's "hypervisor receives an interrupt Int". Captured
// interrupts are buffered for delivery at this epoch's end and reported
// through OnCapture so the replication layer can forward them.
func (hv *Hypervisor) pollDevices() {
	m := hv.M
	if m.CRs[isa.CREIRR] == 0 {
		return
	}
	var known uint32
	for _, d := range hv.devs {
		if d.win.Line == device.NoLine {
			continue
		}
		bit := uint32(1) << (d.win.Line & 31)
		known |= bit
		if m.CRs[isa.CREIRR]&bit == 0 {
			continue
		}
		// Acknowledge the real line.
		m.WriteCR(isa.CREIRR, bit)
		if !d.issuedReal && !(d.win.Unsolicited && hv.ioActive) {
			// A completion for an operation this hypervisor did not
			// issue (e.g. leftover from a failed peer), or unsolicited
			// input on a non-I/O-active node: rule P3 — the backup
			// ignores interrupts destined for its own processor (it
			// receives the records through the epoch stream instead).
			continue
		}
		c, ok := d.sh.Capture(d.bus, m)
		if !ok {
			continue
		}
		i := Interrupt{
			Line:        d.win.Line,
			Dev:         d.win.Base,
			Completion:  c,
			CapturedTOD: m.TOD() | 1, // nonzero marker; ±1 cycle is noise
		}
		hv.Stats.Captured++
		hv.buffered = append(hv.buffered, i)
		if hv.OnCapture != nil {
			hv.OnCapture(i)
		}
	}
	// Ignore raised lines that belong to no known device: clear them.
	// Lines owned by a device must NOT be cleared here — capturing a
	// completion can yield to the simulator (forwarding the interrupt
	// record to backups sleeps on the link), and a device interrupt that
	// lands during that window has not been looked at by the loop above.
	// Leaving its bit set lets the next poll capture it.
	if rest := m.CRs[isa.CREIRR] &^ known; rest != 0 {
		m.WriteCR(isa.CREIRR, rest)
	}
}
