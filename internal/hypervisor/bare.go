package hypervisor

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Bare runs a guest directly on the hardware, the way the paper's
// baseline measurements do: the kernel executes at real privilege level
// 0, every trap vectors through the hardware interruption sequence
// (machine.DeliverTrap), devices are accessed directly, and no hypervisor
// costs are charged. Normalized performance N'/N compares a replicated
// run against this.
type Bare struct {
	// M is the machine (with Bus wired to real devices).
	M *machine.Machine
	// InstructionTime is the cost of one instruction (default 20 ns).
	InstructionTime sim.Time
	// ChunkSize bounds instructions between simulated-time syncs
	// (default 256).
	ChunkSize int
	// OnDiag receives guest DIAG codes.
	OnDiag func(code uint32)
	// MaxInstructions aborts runaway guests (default 1e10).
	MaxInstructions uint64

	halted bool
}

// NewBare wraps a machine for bare-metal execution.
func NewBare(m *machine.Machine) *Bare {
	return &Bare{
		M:               m,
		InstructionTime: 20 * sim.Nanosecond,
		ChunkSize:       256,
		MaxInstructions: 1e10,
	}
}

// Boot loads the program and points the machine at its entry.
func (b *Bare) Boot(origin uint32, words []uint32, entry uint32) {
	b.M.LoadProgram(origin, words, entry)
}

// Halted reports whether the guest halted.
func (b *Bare) Halted() bool { return b.halted }

// Run executes the guest until HALT, driving hardware trap delivery and
// idling through WFI. It must be called from the machine's simulation
// process.
func (b *Bare) Run(p *sim.Proc) {
	m := b.M
	k := p.Kernel()
	for !b.halted {
		if m.Cycles() > b.MaxInstructions {
			panic(fmt.Sprintf("bare: guest exceeded %d instructions", b.MaxInstructions))
		}
		rr := m.Run(uint64(b.ChunkSize))
		if rr.Executed > 0 {
			p.Sleep(sim.Time(rr.Executed) * b.InstructionTime)
		}
		switch {
		case rr.Trap != isa.TrapNone:
			// Hardware interruption sequence: this is what a bare
			// PA-lite machine does for every trap.
			m.DeliverTrap(rr.Trap, rr.ISR, rr.IOR)
		case rr.Halted:
			b.halted = true
		case rr.Idle:
			// WFI: idle until some interrupt line rises. Device events
			// are scheduled in the kernel; sleep event-to-event.
			for !m.IRQRaised() {
				next, ok := k.NextEventTime()
				if !ok {
					panic("bare: WFI with no pending events (guest would hang)")
				}
				d := next - k.Now()
				if d < 0 {
					d = 0
				}
				p.Sleep(d)
				p.Yield() // let the event's effects (IRQ raise) land
			}
		case rr.Diag != 0:
			if b.OnDiag != nil {
				b.OnDiag(rr.Diag - 1)
			}
		}
	}
}
