package hypervisor

import (
	"bytes"
	"testing"

	"repro/internal/asm"
	"repro/internal/console"
	"repro/internal/device"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/scsi"
	"repro/internal/sim"
)

// Adapter and console window offsets within the MMIO space (test wiring).
const (
	adapterBase = 0x0000
	consoleBase = 0x1000
	diskLine    = 1
)

// rig is a single-machine test platform: machine + disk + console + hv.
type rig struct {
	k    *sim.Kernel
	m    *machine.Machine
	disk *scsi.Disk
	cons *console.Console
	hv   *Hypervisor
}

func newRig(t *testing.T, cfg Config, diskCfg scsi.DiskConfig) *rig {
	t.Helper()
	r := &rig{k: sim.NewKernel(1)}
	t.Cleanup(func() { r.k.Shutdown() })
	cycle := 20 * sim.Nanosecond
	r.m = machine.New(machine.Config{
		TODSource: func() uint32 { return uint32(r.k.Now() / cycle) },
	})
	r.disk = scsi.NewDisk(r.k, diskCfg)
	r.cons = console.New()
	mux := machine.NewBusMux()
	ad := r.disk.NewAdapter(0, r.m, func() { r.m.RaiseIRQ(diskLine) })
	mux.Map("scsi0", adapterBase, scsi.AdapterWindow, ad)
	mux.Map("console", consoleBase, console.Window, r.cons.NewPort(nil))
	r.m.Bus = mux
	r.hv = New(r.m, cfg)
	r.hv.AttachDevice(device.Window{ID: "disk0", Base: adapterBase, Size: scsi.AdapterWindow, Line: diskLine}, scsi.NewShadow())
	r.hv.AttachDevice(device.Window{ID: "console", Base: consoleBase, Size: console.Window, Line: device.NoLine}, console.NewShadow())
	return r
}

// boot assembles and boots guest code.
func (r *rig) boot(t *testing.T, src string) *asm.Program {
	t.Helper()
	p, err := asm.Assemble("guest.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	r.hv.Boot(p.Origin, p.Words, p.Origin)
	return p
}

// runEpochs drives the hypervisor for up to n epochs with a trivial
// boundary protocol (no replication): buffer timer interrupts, deliver,
// continue. Returns the boundaries.
func (r *rig) runEpochs(t *testing.T, n int) []Boundary {
	t.Helper()
	var bs []Boundary
	r.k.Spawn("cpu", func(p *sim.Proc) {
		for i := 0; i < n && !r.hv.Halted(); i++ {
			r.hv.StartEpochClock()
			b := r.hv.RunEpoch(p)
			r.hv.ChargeBoundary(p)
			r.hv.TimerInterruptsDue(b.TOD)
			r.hv.DeliverBuffered()
			bs = append(bs, b)
		}
	})
	r.k.Run()
	return bs
}

func TestPrivilegedEmulationIsolation(t *testing.T) {
	r := newRig(t, Config{EpochLength: 1 << 20}, scsi.DiskConfig{})
	r.boot(t, `
		li r1, 0x2000
		mtctl iva, r1         ; VIRTUAL iva
		mfctl r2, iva
		li r3, 0xF0
		mtctl eiem, r3
		mfctl r4, eiem
		halt
	`)
	r.runEpochs(t, 4)
	if !r.hv.Halted() {
		t.Fatal("guest did not halt")
	}
	if r.m.Regs[2] != 0x2000 || r.m.Regs[4] != 0xF0 {
		t.Errorf("guest read vCRs = %#x, %#x", r.m.Regs[2], r.m.Regs[4])
	}
	// Real machine CRs untouched by the guest.
	if r.m.CRs[isa.CRIVA] != 0 || r.m.CRs[isa.CREIEM] != 0 {
		t.Error("guest writes leaked into real control registers")
	}
	if r.hv.Stats.PrivSimulated < 4 {
		t.Errorf("PrivSimulated = %d, want >= 4", r.hv.Stats.PrivSimulated)
	}
}

func TestSimulationCostCharged(t *testing.T) {
	r := newRig(t, Config{EpochLength: 1 << 20}, scsi.DiskConfig{})
	r.boot(t, `
		mfctl r1, iva
		halt
	`)
	r.runEpochs(t, 2)
	// Two privileged simulations (mfctl + halt) at 15.12 us each, plus
	// instruction time and boundary cost.
	min := 2 * DefaultCosts().HSim()
	if r.k.Now() < min {
		t.Errorf("simulated time %v, want >= %v (2 x hsim)", r.k.Now(), min)
	}
	if DefaultCosts().HSim() != 15120*sim.Nanosecond {
		t.Errorf("hsim = %v, want 15.12us (paper)", DefaultCosts().HSim())
	}
}

func TestBLPrivilegeHazardUnderHypervisor(t *testing.T) {
	// §3.1: the guest's virtual PL 0 runs at REAL PL 1, so BL deposits 1
	// in the low bits of the return address — guest code that assumes 0
	// breaks; guest code must mask (the paper's HP-UX boot-sequence hack).
	r := newRig(t, Config{EpochLength: 1 << 20}, scsi.DiskConfig{})
	r.boot(t, `
		bl r2, here
	here:
		halt
	`)
	r.runEpochs(t, 2)
	if r.m.Regs[2]&3 != 1 {
		t.Errorf("BL low bits = %d under hypervisor, want 1 (real PL of virtual PL0)", r.m.Regs[2]&3)
	}
}

func TestVirtualTrapReflection(t *testing.T) {
	r := newRig(t, Config{EpochLength: 1 << 20}, scsi.DiskConfig{})
	r.boot(t, `
		.org 0
		li   r1, vectors
		mtctl iva, r1
		break 3
		halt                ; skipped: handler jumps to done
	done:
		addi r9, r0, 77
		halt

		.align 32
		.org 0x400
	vectors:
		.space 32*7         ; vectors 0..6
		; Break vector (trap 7) at vectors + 7*32
		mfctl r10, isr
		mfctl r11, iia
		li    r12, done
		mtctl iia, r12
		rfi
	`)
	r.runEpochs(t, 4)
	if !r.hv.Halted() {
		t.Fatal("guest did not halt")
	}
	if r.m.Regs[9] != 77 {
		t.Error("handler did not redirect to done")
	}
	if r.m.Regs[10] != 3 {
		t.Errorf("vISR = %d, want break code 3", r.m.Regs[10])
	}
	if r.hv.Stats.ReflectedTraps == 0 {
		t.Error("no reflected traps counted")
	}
}

func TestMFTODVirtualized(t *testing.T) {
	r := newRig(t, Config{EpochLength: 1000}, scsi.DiskConfig{})
	r.boot(t, `
		nop
		nop
		mftod r1
		mftod r2
		halt
	`)
	r.runEpochs(t, 2)
	// Virtual TOD = todBase + instructions retired since epoch start.
	// todBase at epoch start = real TOD = 0 (time starts at 0).
	// First mftod executes after 2 hardware instructions: value 2.
	// Second executes after 3 (the mftod itself counted): value 3.
	if r.m.Regs[1] != 2 {
		t.Errorf("first mftod = %d, want 2", r.m.Regs[1])
	}
	if r.m.Regs[2] != 3 {
		t.Errorf("second mftod = %d, want 3", r.m.Regs[2])
	}
}

func TestEpochBoundariesExact(t *testing.T) {
	r := newRig(t, Config{EpochLength: 100}, scsi.DiskConfig{})
	r.boot(t, `
	loop:
		addi r1, r1, 1
		b loop
	`)
	bs := r.runEpochs(t, 3)
	if len(bs) != 3 {
		t.Fatalf("boundaries = %d", len(bs))
	}
	for i, b := range bs {
		if b.GuestInstr != uint64(100*(i+1)) {
			t.Errorf("boundary %d at %d instructions, want %d", i, b.GuestInstr, 100*(i+1))
		}
		if b.Epoch != uint64(i) {
			t.Errorf("boundary %d epoch = %d", i, b.Epoch)
		}
	}
}

func TestEpochCountsSimulatedInstructions(t *testing.T) {
	// An epoch of 10 with a privileged instruction inside: the simulated
	// instruction counts toward the 10.
	r := newRig(t, Config{EpochLength: 10}, scsi.DiskConfig{})
	r.boot(t, `
		nop
		nop
		mfctl r1, iva    ; simulated
	loop:
		addi r2, r2, 1
		b loop
	`)
	bs := r.runEpochs(t, 1)
	if bs[0].GuestInstr != 10 {
		t.Errorf("epoch ended at %d, want 10", bs[0].GuestInstr)
	}
	// 10 instructions: nop, nop, mfctl, then 7 loop instructions
	// (addi+b pairs): r2 = ceil(7/2) = 4 additions... verify by direct
	// count: after mfctl 7 more retire: addi,b,addi,b,addi,b,addi = 4
	// addi. b not taken for the last addi yet.
	if r.m.Regs[2] != 4 {
		t.Errorf("r2 = %d, want 4", r.m.Regs[2])
	}
}

func TestMMIOInterceptionAndDiskIO(t *testing.T) {
	r := newRig(t, Config{EpochLength: 2048}, scsi.DiskConfig{})
	want := bytes.Repeat([]byte{0xCD}, 8192)
	r.disk.WriteBlockDirect(5, want)
	r.hv.SetIOActive(true)
	// Guest: set up interrupt vector, unmask line 1, issue read of block
	// 5 into 0x4000, spin until handler sets flag, check a byte, halt.
	r.boot(t, `
		.equ MMIO,    0xF0000000
		.equ FLAG,    0x3000
		li   r1, vectors
		mtctl iva, r1
		li   r1, 2            ; unmask line 1
		mtctl eiem, r1
		mfctl r1, ipsw        ; build a PSW with I bit for rfi trick? no:
		; enable virtual interrupts via rfi: IPSW = I-bit, IIA = cont
		li   r1, 4            ; PSW.I
		mtctl ipsw, r1
		li   r1, cont
		mtctl iia, r1
		rfi
	cont:
		li   r2, MMIO
		li   r3, 1            ; CmdRead
		stw  r3, 0(r2)        ; cmd
		li   r3, 5
		stw  r3, 4(r2)        ; block
		li   r3, 0x4000
		stw  r3, 8(r2)        ; addr
		li   r3, 8192
		stw  r3, 12(r2)       ; count
		stw  r3, 20(r2)       ; doorbell
	spin:
		ldw  r4, FLAG(r0)
		beq  r4, r0, spin
		; interrupt delivered; check first data byte
		li   r5, 0x4000
		ldb  r6, 0(r5)
		halt

		.align 32
		.org 0x800
	vectors:
		.space 32*11          ; vectors 0..10
		; ExtIntr vector (trap 11) at vectors + 11*32
		mfctl r20, eirr
		mtctl eirr, r20       ; clear
		addi r21, r0, 1
		stw  r21, FLAG(r0)
		rfi
	`)
	r.runEpochs(t, 100000)
	if !r.hv.Halted() {
		t.Fatalf("guest did not halt; pc=%#x", r.m.PC)
	}
	if r.m.Regs[6] != 0xCD {
		t.Errorf("guest read byte %#x, want 0xCD", r.m.Regs[6])
	}
	if r.hv.Stats.IOIssued != 1 {
		t.Errorf("IOIssued = %d, want 1", r.hv.Stats.IOIssued)
	}
	if r.hv.Stats.Captured != 1 {
		t.Errorf("Captured = %d, want 1", r.hv.Stats.Captured)
	}
	if r.hv.Stats.VIRQDelivered != 1 {
		t.Errorf("VIRQDelivered = %d, want 1", r.hv.Stats.VIRQDelivered)
	}
	// Captured interrupt carried the DMA data (for forwarding).
	if r.hv.Stats.EnvSimulated < 5 {
		t.Errorf("EnvSimulated = %d, want >= 5 (MMIO stores)", r.hv.Stats.EnvSimulated)
	}
}

func TestIOSuppressionOnBackup(t *testing.T) {
	r := newRig(t, Config{EpochLength: 4096}, scsi.DiskConfig{})
	r.hv.SetIOActive(false) // backup role
	r.boot(t, `
		.equ MMIO, 0xF0000000
		li   r2, MMIO
		li   r3, 2            ; CmdWrite
		stw  r3, 0(r2)
		li   r3, 9
		stw  r3, 4(r2)
		li   r3, 0x4000
		stw  r3, 8(r2)
		li   r3, 8192
		stw  r3, 12(r2)
		stw  r3, 20(r2)       ; doorbell (suppressed)
		halt
	`)
	r.runEpochs(t, 4)
	if r.hv.Stats.IOIssued != 0 {
		t.Error("backup issued real I/O")
	}
	if r.hv.Stats.IOSuppressed != 1 {
		t.Errorf("IOSuppressed = %d, want 1", r.hv.Stats.IOSuppressed)
	}
	if len(r.disk.Log) != 0 {
		t.Error("disk touched by suppressed backup")
	}
	// The op is outstanding: P7 must synthesize an uncertain interrupt.
	ints, _ := r.hv.OutstandingUncertain()
	if len(ints) != 1 {
		t.Fatalf("OutstandingUncertain = %d, want 1", len(ints))
	}
	if ints[0].Status&scsi.StatusUncertain == 0 {
		t.Error("synthesized interrupt not uncertain")
	}
}

func TestConsoleSuppression(t *testing.T) {
	mk := func(active bool) (*rig, string) {
		r := newRig(t, Config{EpochLength: 4096}, scsi.DiskConfig{})
		r.hv.SetIOActive(active)
		r.boot(t, `
			.equ CONS_DATA, 0xF0001000
			li  r1, CONS_DATA
			li  r2, 'h'
			stw r2, 0(r1)
			li  r2, 'i'
			stw r2, 0(r1)
			halt
		`)
		r.runEpochs(t, 4)
		return r, r.cons.Output()
	}
	_, out := mk(true)
	if out != "hi" {
		t.Errorf("active console output = %q, want hi", out)
	}
	rb, outB := mk(false)
	if outB != "" {
		t.Errorf("suppressed console output = %q, want empty", outB)
	}
	if rb.hv.Stats.ConsoleSuppressed != 2 {
		t.Errorf("ConsoleSuppressed = %d, want 2", rb.hv.Stats.ConsoleSuppressed)
	}
}

func TestTLBTakeover(t *testing.T) {
	// Guest enables virtual mode with a page table; hypervisor fills the
	// TLB invisibly (§3.2): the guest sees NO TLB miss traps.
	r := newRig(t, Config{EpochLength: 1 << 20}, scsi.DiskConfig{})
	r.boot(t, `
		.equ PT, 0x6000
		; identity-map pages 0..7: PTE = (n<<12) | RWX | minPL0 | valid
		li   r1, PT
		li   r2, 0            ; page number
		li   r5, 8
	ptloop:
		slli r3, r2, 12
		ori  r3, r3, 0x27     ; R|W|X(7) | valid(0x20)
		slli r4, r2, 2
		add  r4, r4, r1
		stw  r3, 0(r4)
		addi r2, r2, 1
		bne  r2, r5, ptloop
		li   r1, PT
		mtctl ptbr, r1
		; enter virtual mode: rfi with V bit
		li   r1, 8            ; PSW.V
		mtctl ipsw, r1
		li   r1, vstart
		mtctl iia, r1
		rfi
	vstart:
		; touch several pages
		li   r1, 0x1000
		ldw  r2, 0(r1)
		li   r1, 0x3000
		stw  r2, 0(r1)
		li   r1, 0x5000
		ldw  r2, 0(r1)
		halt
	`)
	r.runEpochs(t, 4)
	if !r.hv.Halted() {
		t.Fatalf("guest did not halt; pc=%#x", r.m.PC)
	}
	if r.hv.Stats.TLBFills == 0 {
		t.Error("hypervisor performed no TLB fills")
	}
	if r.hv.Stats.ReflectedTraps != 0 {
		t.Errorf("guest saw %d traps; TLB misses must be invisible", r.hv.Stats.ReflectedTraps)
	}
}

func TestTLBMissNonResidentReflects(t *testing.T) {
	r := newRig(t, Config{EpochLength: 1 << 20}, scsi.DiskConfig{})
	r.boot(t, `
		.equ PT, 0x6000
		li   r1, vectors
		mtctl iva, r1
		; map only page 0 (and vectors page 2); leave page 4 invalid
		li   r1, PT
		li   r3, 0x27
		stw  r3, 0(r1)        ; page 0 -> 0
		li   r3, (2<<12)|0x27
		stw  r3, 8(r1)        ; page 2 -> 2
		mtctl ptbr, r1
		li   r1, 8
		mtctl ipsw, r1
		li   r1, vstart
		mtctl iia, r1
		rfi
	vstart:
		li   r1, 0x4000       ; unmapped page
		ldw  r2, 0(r1)        ; faults to guest
		halt

		.org 0x2000
	vectors:
		.space 32*4
		; DTLBMiss vector (trap 4) at vectors + 4*32
		mfctl r10, ior
		addi  r11, r0, 1
		halt
	`)
	r.runEpochs(t, 4)
	if r.m.Regs[11] != 1 {
		t.Fatal("guest fault handler did not run")
	}
	if r.m.Regs[10] != 0x4000 {
		t.Errorf("guest saw fault address %#x, want 0x4000", r.m.Regs[10])
	}
}

func TestVirtualIntervalTimer(t *testing.T) {
	r := newRig(t, Config{EpochLength: 100}, scsi.DiskConfig{})
	r.boot(t, `
		li   r1, vectors
		mtctl iva, r1
		li   r1, 1            ; unmask line 0 (timer)
		mtctl eiem, r1
		li   r1, 150          ; arm timer: 150 TOD ticks
		mtctl itmr, r1
		; enable interrupts via rfi
		li   r1, 4
		mtctl ipsw, r1
		li   r1, spin
		mtctl iia, r1
		rfi
	spin:
		ldw  r4, 0x3000(r0)
		beq  r4, r0, spin
		halt

		.org 0x1800
	vectors:
		.space 32*11
		mfctl r20, eirr
		mtctl eirr, r20
		addi r21, r0, 1
		stw  r21, 0x3000(r0)
		rfi
	`)
	bs := r.runEpochs(t, 50)
	if !r.hv.Halted() {
		t.Fatalf("guest did not halt; boundaries=%d pc=%#x", len(bs), r.m.PC)
	}
	// Timer armed around instruction ~10 for 150 ticks; TOD advances
	// ~1/instruction plus real-time jumps at boundaries; expect delivery
	// within the first several epochs.
	if len(bs) > 20 {
		t.Errorf("took %d epochs, timer delivery too late", len(bs))
	}
	if r.hv.Stats.VIRQDelivered != 1 {
		t.Errorf("VIRQDelivered = %d, want 1", r.hv.Stats.VIRQDelivered)
	}
}

func TestInterruptsOnlyAtBoundaries(t *testing.T) {
	// A disk completion mid-epoch must not interrupt the guest until the
	// epoch ends, even with virtual interrupts enabled.
	r := newRig(t, Config{EpochLength: 1 << 14}, scsi.DiskConfig{
		ReadLatency: 1 * sim.Microsecond, // completes long before epoch end
	})
	r.hv.SetIOActive(true)
	r.boot(t, `
		.equ MMIO, 0xF0000000
		li   r1, vectors
		mtctl iva, r1
		li   r1, 2
		mtctl eiem, r1
		li   r1, 4
		mtctl ipsw, r1
		li   r1, cont
		mtctl iia, r1
		rfi
	cont:
		li   r2, MMIO
		li   r3, 1
		stw  r3, 0(r2)
		li   r3, 0
		stw  r3, 4(r2)
		li   r3, 0x4000
		stw  r3, 8(r2)
		li   r3, 64
		stw  r3, 12(r2)
		stw  r3, 20(r2)      ; doorbell
		; count loop iterations until interrupt arrives
		li   r7, 0
	spin:
		addi r7, r7, 1
		ldw  r4, 0x3000(r0)
		beq  r4, r0, spin
		halt

		.org 0x1800
	vectors:
		.space 32*11
		mfctl r20, eirr
		mtctl eirr, r20
		addi r21, r0, 1
		stw  r21, 0x3000(r0)
		rfi
	`)
	r.runEpochs(t, 10)
	if !r.hv.Halted() {
		t.Fatal("guest did not halt")
	}
	// The spin loop must have run until the first epoch boundary: with
	// epoch 16384 and the I/O completing within microseconds, iterations
	// ≈ (16384 - setup) / 3. If interrupts were delivered immediately,
	// the count would be tiny.
	if r.m.Regs[7] < 1000 {
		t.Errorf("spin iterations = %d; interrupt delivered mid-epoch?", r.m.Regs[7])
	}
}

// TestLockstepTwoHypervisors is the core §2.1 determinism check at the
// hypervisor level: two machines running the same guest under identical
// epoch structure, with the backup fed the primary's Tme and interrupts,
// produce identical per-epoch digests.
func TestLockstepTwoHypervisors(t *testing.T) {
	src := `
		addi r1, r0, 0
	loop:
		addi r1, r1, 1
		mftod r5
		slti r4, r1, 2000
		bne  r4, r0, loop
		halt
	`
	mk := func(name string, k *sim.Kernel) (*Hypervisor, *asm.Program) {
		cycle := 20 * sim.Nanosecond
		m := machine.New(machine.Config{
			TODSource: func() uint32 { return uint32(k.Now() / cycle) },
		})
		hv := New(m, Config{EpochLength: 512})
		p := asm.MustAssemble("guest.s", src)
		hv.Boot(p.Origin, p.Words, p.Origin)
		return hv, p
	}
	k := sim.NewKernel(1)
	defer k.Shutdown()
	pri, _ := mk("pri", k)
	bak, _ := mk("bak", k)

	var priB, bakB []Boundary
	var tmes []uint32
	k.Spawn("primary", func(p *sim.Proc) {
		for !pri.Halted() {
			pri.StartEpochClock()
			b := pri.RunEpoch(p)
			tmes = append(tmes, b.TOD)
			pri.TimerInterruptsDue(b.TOD)
			pri.DeliverBuffered()
			priB = append(priB, b)
		}
	})
	k.Run()
	// Run the backup afterwards (sequential in sim time is fine: virtual
	// state does not depend on real time except through Tme, which we
	// replay from the primary).
	k2 := sim.NewKernel(2)
	defer k2.Shutdown()
	cycle := 20 * sim.Nanosecond
	m2 := machine.New(machine.Config{
		TODSource: func() uint32 { return uint32(k2.Now()/cycle) + 777 },
	})
	bak = New(m2, Config{EpochLength: 512})
	pg := asm.MustAssemble("guest.s", src)
	bak.Boot(pg.Origin, pg.Words, pg.Origin)
	k2.Spawn("backup", func(p *sim.Proc) {
		i := 0
		for !bak.Halted() && i < len(tmes) {
			// Epoch 0 starts from the boot clock (both replicas start in
			// the same state); epoch E>0 starts from the primary's Tme
			// sent at the end of ITS epoch E-1 (P5: Tme_b := Tme_p).
			if i == 0 {
				bak.SetTODBase(0)
			} else {
				bak.SetTODBase(tmes[i-1])
			}
			b := bak.RunEpoch(p)
			bak.TimerInterruptsDue(tmes[i])
			bak.DeliverBuffered()
			bakB = append(bakB, b)
			i++
		}
	})
	k2.Run()

	if len(priB) != len(bakB) {
		t.Fatalf("epoch counts differ: %d vs %d", len(priB), len(bakB))
	}
	for i := range priB {
		if priB[i].Digest != bakB[i].Digest {
			t.Fatalf("epoch %d: digests differ (primary %x backup %x)",
				i, priB[i].Digest, bakB[i].Digest)
		}
		if priB[i].GuestInstr != bakB[i].GuestInstr {
			t.Fatalf("epoch %d: instruction counts differ", i)
		}
	}
}

func TestBareRunnerBaseline(t *testing.T) {
	// The same guest runs bare (PL0, hardware trap delivery, WFI) —
	// the paper's baseline. Checks WFI + real interrupt vectoring.
	k := sim.NewKernel(1)
	defer k.Shutdown()
	cycle := 20 * sim.Nanosecond
	m := machine.New(machine.Config{
		TODSource: func() uint32 { return uint32(k.Now() / cycle) },
	})
	disk := scsi.NewDisk(k, scsi.DiskConfig{})
	mux := machine.NewBusMux()
	ad := disk.NewAdapter(0, m, func() { m.RaiseIRQ(diskLine) })
	mux.Map("scsi0", adapterBase, scsi.AdapterWindow, ad)
	m.Bus = mux
	want := bytes.Repeat([]byte{0x5A}, 512)
	disk.WriteBlockDirect(3, want)

	b := NewBare(m)
	prog := asm.MustAssemble("bare.s", `
		.equ MMIO, 0xF0000000
		li   r1, vectors
		mtctl iva, r1
		li   r1, 2
		mtctl eiem, r1
		; enable interrupts: PSW.I via rfi
		li   r1, 4
		mtctl ipsw, r1
		li   r1, cont
		mtctl iia, r1
		rfi
	cont:
		li   r2, MMIO
		li   r3, 1
		stw  r3, 0(r2)
		li   r3, 3
		stw  r3, 4(r2)
		li   r3, 0x4000
		stw  r3, 8(r2)
		li   r3, 512
		stw  r3, 12(r2)
		stw  r3, 20(r2)
		wfi                   ; idle until completion interrupt
		ldw  r4, 0x3000(r0)
		beq  r4, r0, cont_fail
		li   r5, 0x4000
		ldb  r6, 0(r5)
		halt
	cont_fail:
		break 99

		.org 0x1800
	vectors:
		.space 32*11
		mfctl r20, eirr
		mtctl eirr, r20
		addi r21, r0, 1
		stw  r21, 0x3000(r0)
		rfi
	`)
	b.Boot(prog.Origin, prog.Words, prog.Origin)
	k.Spawn("bare", func(p *sim.Proc) { b.Run(p) })
	end := k.Run()
	if !b.Halted() {
		t.Fatalf("bare guest did not halt (pc=%#x)", m.PC)
	}
	if m.Regs[6] != 0x5A {
		t.Errorf("bare guest read %#x, want 0x5A", m.Regs[6])
	}
	// Run took at least the disk read latency.
	if end < disk.Config().ReadLatency {
		t.Errorf("end = %v < disk latency", end)
	}
}

func TestOutstandingAfterCaptureNotDelivered(t *testing.T) {
	// An op whose completion was CAPTURED but not yet DELIVERED is still
	// outstanding for P7 purposes... actually once captured it is in the
	// buffer; P7 covers ops with no completion relayed. Verify the
	// outstanding flag clears only at delivery.
	r := newRig(t, Config{EpochLength: 1 << 14}, scsi.DiskConfig{
		ReadLatency: 1 * sim.Microsecond,
	})
	r.hv.SetIOActive(true)
	r.boot(t, `
		.equ MMIO, 0xF0000000
		li   r2, MMIO
		li   r3, 1
		stw  r3, 0(r2)
		li   r3, 0
		stw  r3, 4(r2)
		li   r3, 0x4000
		stw  r3, 8(r2)
		li   r3, 64
		stw  r3, 12(r2)
		stw  r3, 20(r2)
	spin:
		b spin
	`)
	// Run one epoch manually without delivering.
	var outstandingBefore, outstandingAfter int
	r.k.Spawn("cpu", func(p *sim.Proc) {
		r.hv.StartEpochClock()
		r.hv.RunEpoch(p)
		ob, _ := r.hv.OutstandingUncertain()
		outstandingBefore = len(ob)
		// (OutstandingUncertain buffered one; clear buffer + deliver the
		// REAL captured completion plus the synthetic one.)
		r.hv.DeliverBuffered()
		oa, _ := r.hv.OutstandingUncertain()
		outstandingAfter = len(oa)
	})
	r.k.RunUntil(10 * sim.Second)
	if outstandingBefore != 1 {
		t.Errorf("outstanding before delivery = %d, want 1", outstandingBefore)
	}
	if outstandingAfter != 0 {
		t.Errorf("outstanding after delivery = %d, want 0", outstandingAfter)
	}
}
