// Package hypervisor implements the software layer the paper interposes
// between the (simulated) PA-lite hardware and an unmodified guest
// operating system. Following §3 of Bressoud & Schneider:
//
//   - The hypervisor owns real privilege level 0; the guest's virtual
//     privilege level 0 executes at real level 1 and virtual level 3 at
//     real level 3 (the paper's mapping, which works because HP-UX-like
//     guests use only levels 0 and 3).
//   - Privileged instructions executed by the guest trap and are
//     simulated against VIRTUAL control registers; the guest never reads
//     real machine state.
//   - Environment instructions (time-of-day reads, interval-timer loads,
//     memory-mapped I/O loads and stores) are simulated so that their
//     effect on virtual-machine state is a deterministic function of the
//     epoch structure — the Environment Instruction Assumption.
//   - The hypervisor takes over TLB management (§3.2): real TLB misses
//     are served by a hypervisor page-table walk so the guest never
//     observes the hardware TLB's replacement behaviour.
//   - Epochs are delimited with the recovery counter (§2.1): the guest
//     runs exactly EpochLength instructions between hypervisor
//     activations, and buffered interrupts are delivered only at epoch
//     boundaries.
//
// Costs are charged in simulated time using constants calibrated from the
// paper's measurements (hsim = 15.12 µs per simulated instruction, split
// ~8 µs entry/exit + ~7 µs work; 50 MIPS base processor).
package hypervisor

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/sim"
)

// CostModel holds the simulated-time costs of hypervisor activity,
// calibrated to §4.1 of the paper.
type CostModel struct {
	// InstructionTime is the base cost of one guest instruction
	// (the HP 9000/720 is "a 50 MIPS processor": 20 ns).
	InstructionTime sim.Time
	// TrapEntryExit is the cost of entering and leaving the hypervisor
	// ("approximately 8 µsec for hypervisor entry/exit").
	TrapEntryExit sim.Time
	// SimulateWork is the cost of simulating one privileged or
	// environment instruction once inside ("7 µsec for the actual work").
	SimulateWork sim.Time
	// EpochLocal is the local (non-communication) part of
	// epoch-boundary processing: buffer management, timer checks,
	// interrupt delivery. The paper's hepoch of 443.59 µs additionally
	// includes waiting for acknowledgements, which in this reproduction
	// emerges from the simulated link round-trip.
	EpochLocal sim.Time
	// TLBWalk is the cost of a hypervisor page-table fill (the §3.2
	// TLB takeover); it replaces what hardware or the guest's handler
	// would have spent, so it is far below a full simulation.
	TLBWalk sim.Time
	// ResidentWork is the cost of re-simulating an instruction while the
	// hypervisor is already resident (Config.ResidentEmulation): no
	// entry/exit, and the decoded device window and shadow state of the
	// previous simulation are still hot, so only the access itself is
	// performed. The paper's 7 µs SimulateWork is dominated by locating
	// and validating the simulated state from scratch on every trap; a
	// resident interpreter loop pays that once per burst.
	ResidentWork sim.Time
}

// DefaultCosts returns the paper-calibrated cost model.
func DefaultCosts() CostModel {
	return CostModel{
		InstructionTime: 20 * sim.Nanosecond,
		TrapEntryExit:   8120 * sim.Nanosecond,
		SimulateWork:    7 * sim.Microsecond,
		EpochLocal:      20 * sim.Microsecond,
		TLBWalk:         2 * sim.Microsecond,
		ResidentWork:    1 * sim.Microsecond,
	}
}

// HSim returns the full cost of one hypervisor-simulated instruction
// (entry/exit + work); DefaultCosts yields the paper's 15.12 µs.
func (c CostModel) HSim() sim.Time { return c.TrapEntryExit + c.SimulateWork }

// Config describes a hypervisor instance.
type Config struct {
	// EpochLength is the number of guest instructions per epoch (the
	// paper evaluates 1K..32K; HP-UX tolerates at most 385,000).
	EpochLength uint64
	// Cost is the simulated-time cost model (DefaultCosts() if zero).
	Cost CostModel
	// ChunkSize bounds how many instructions execute between
	// simulated-time syncs and interrupt polls (default 256).
	ChunkSize int
	// NoTLBTakeover disables the §3.2 fix: TLB misses are reflected to
	// the guest's own handler instead of being served invisibly by the
	// hypervisor. With a nondeterministic TLB replacement policy this
	// VIOLATES the Ordinary Instruction Assumption — replicas diverge —
	// which is exactly what the paper observed on the HP 9000/720.
	// Ablation/demonstration only.
	NoTLBTakeover bool
	// AdaptiveBoundary enables output-triggered epoch boundaries: a
	// guest environment output (console write, NIC doorbell, SCSI start)
	// re-arms a countdown of CutSlack instructions, and the epoch ends
	// when it expires — instead of waiting out the full EpochLength. The
	// cut point is a pure function of the guest instruction stream and
	// the (replicated) shadow-device state, so every replica cuts at the
	// same instruction; the epoch frame carries the coordinate for
	// verification. Must be set identically on every replica.
	AdaptiveBoundary bool
	// CutSlack is the adaptive boundary's countdown: how many further
	// instructions may retire after an environment output before the
	// epoch is cut (default 64). The slack coalesces output bursts —
	// a multi-word console write or NIC TX fill re-arms the countdown
	// on each store, so the burst rides one epoch.
	CutSlack uint64
	// ResidentEmulation is the output-commit engine's simulation fast
	// path: when a simulated (privileged or environment) instruction
	// retires within ResidentWindow guest instructions of the previous
	// one, the hypervisor is still resident — only the simulation work
	// is charged, not another entry/exit world switch. Sound under
	// output deferral because an environment output is then a buffered
	// shadow-state write (no device programming, no I/O gate), so a
	// guest copy loop against a device window batches its simulations
	// in one residency. The charge is a pure function of the guest
	// instruction stream; must be set identically on every replica.
	ResidentEmulation bool
	// ResidentWindow is the residency span in guest instructions
	// (default 32).
	ResidentWindow uint64
	// PTEValid is the guest page-table-entry valid bit (fixed ABI with
	// the guest kernel; see internal/guest).
	// The low 12 bits of a PTE are: isa.TLB* permission bits | PTEValid.
}

// PTEValid is the "present" bit in guest page-table entries (bit 5,
// outside isa.TLBPermMask).
const PTEValid uint32 = 1 << 5

func (c Config) withDefaults() Config {
	if c.EpochLength == 0 {
		c.EpochLength = 4096
	}
	if c.Cost == (CostModel{}) {
		c.Cost = DefaultCosts()
	}
	if c.Cost.ResidentWork == 0 {
		// Custom cost models predating the resident fast path: fall back
		// to a full simulation charge rather than a free one.
		c.Cost.ResidentWork = c.Cost.SimulateWork
	}
	if c.ChunkSize == 0 {
		c.ChunkSize = 256
	}
	if c.CutSlack == 0 {
		c.CutSlack = 64
	}
	if c.ResidentWindow == 0 {
		c.ResidentWindow = 32
	}
	return c
}

// Interrupt is a buffered virtual interrupt: what the primary's
// hypervisor forwards in an [E, Int] message (P1) and what both
// hypervisors deliver to their virtual machines at the end of the epoch.
// For device interrupts it carries the device-generic completion record
// (environment data and final status) so that delivery has an identical
// effect on both virtual machines.
type Interrupt struct {
	// Line is the external interrupt line (vEIRR bit) to raise.
	Line uint
	// Timer marks a virtual interval-timer interrupt synthesized at an
	// epoch boundary ("interrupts based on Tme", P2/P5/P6).
	Timer bool
	// Dev is the window base of the device this completion belongs to;
	// NoDevice for non-device interrupts.
	Dev uint32
	// Completion is the device-generic completion/environment record
	// applied to the device's shadow at delivery.
	device.Completion
	// CapturedTOD records the capturing hypervisor's clock at capture
	// time (0 = not tracked), for measuring the paper's delay(EL): the
	// time a completion waits for its epoch boundary.
	CapturedTOD uint32
}

// NoDevice marks an Interrupt not associated with a device window.
const NoDevice uint32 = ^uint32(0)

// WireSize estimates the message size in bytes for the timing model:
// a fixed header plus any environment payload (an 8 KiB disk read
// becomes the paper's 9-frame transfer on the Ethernet model).
func (i Interrupt) WireSize() int { return i.Completion.WireSize() }

// Boundary reports the state at an epoch boundary.
type Boundary struct {
	// Epoch is the epoch number that just ended.
	Epoch uint64
	// GuestInstr is the cumulative count of retired guest instructions.
	GuestInstr uint64
	// Digest is the guest register-state digest (divergence detection).
	Digest uint64
	// Halted is set when the guest executed its (virtual) HALT.
	Halted bool
	// TOD is this machine's real time-of-day at the boundary — the
	// paper's Tme value, shipped to the backup for clock resync.
	TOD uint32
}

// Stats counts hypervisor activity.
type Stats struct {
	GuestInstructions uint64
	Epochs            uint64
	PrivSimulated     uint64 // privileged instructions simulated
	EnvSimulated      uint64 // environment instructions simulated (TOD, MMIO)
	TLBFills          uint64 // hypervisor page-table walks (§3.2)
	ReflectedTraps    uint64 // traps reflected into the guest
	VIRQDelivered     uint64 // virtual external-interrupt traps delivered
	IOIssued          uint64 // doorbells forwarded to real hardware
	IOSuppressed      uint64 // doorbells suppressed (backup, case i)
	ConsoleSuppressed uint64 // console bytes suppressed (backup)
	Captured          uint64 // device completions captured (P1)
	OutputsDeferred   uint64 // output stores deferred by the commit window
	StartsDeferred    uint64 // I/O starts deferred by the commit window
	AdaptiveCuts      uint64 // epochs cut early by an output trigger
	ResidentSims      uint64 // simulations charged without a world switch
	HypervisorTime    sim.Time
	// DeliveryDelayTotal/DeliveryDelayCount accumulate the paper's
	// delay(EL): completion-interrupt capture to epoch-boundary delivery
	// (§4.2 — "interrupts from the disk are buffered by the hypervisor
	// for a longer period" as EL grows).
	DeliveryDelayTotal sim.Time
	DeliveryDelayCount uint64
}

// MeanDeliveryDelay returns the average capture-to-delivery latency.
func (s Stats) MeanDeliveryDelay() sim.Time {
	if s.DeliveryDelayCount == 0 {
		return 0
	}
	return s.DeliveryDelayTotal / sim.Time(s.DeliveryDelayCount)
}

// shadowDev binds one shadow device into the hypervisor: the window
// descriptor, the device-specific virtual register model, and the
// device-generic protocol latches the coordination rules operate on.
type shadowDev struct {
	win device.Window
	sh  device.Shadow
	// bus is the shadow's window onto the node's REAL register bank,
	// built once at attach (no per-access interface boxing).
	bus device.Bus

	// outstanding marks a started operation whose completion has not
	// yet been DELIVERED to the guest — the set P7 synthesizes
	// uncertain interrupts for at failover.
	outstanding bool
	// issuedReal marks that the outstanding op was forwarded to real
	// hardware (I/O-active side).
	issuedReal bool
	// outCount numbers this device's output stores — a deterministic
	// function of the guest instruction stream, so every replica
	// assigns the same ordinals. The environment device dedups on
	// them when a promoted backup re-emits suppressed output.
	outCount uint32
}

// suppressedOutput is one environment output a replica withheld. Two
// producers share the buffer:
//
//   - a backup suppressing output stores (§2.2 case i): dropped when the
//     epoch commits, re-emitted at promotion through the devices' ordinal
//     dedup (generalized rule P7 for output — exactly-once);
//   - an output-commit primary DEFERRING outputs and I/O starts (the
//     VMware-FT output rule): emitted by ReleaseDeferredThrough when the
//     epoch's frame is acknowledged.
//
// Entries are appended in guest program order and tagged with the epoch
// that produced them, so both commit and release operate on epoch
// prefixes.
type suppressedOutput struct {
	dev     *shadowDev
	off     uint32
	val     uint32
	ordinal uint32
	// epoch is the epoch the store retired in (release/drop watermark).
	epoch uint64
	// start marks a deferred I/O start (doorbell) instead of an output
	// store: released by issuing the real operation. Backups never
	// defer starts (P7's uncertain synthesis re-drives them).
	start bool
	// at is the virtual time the output was generated (commit-latency
	// accounting on a deferring primary; zero on backups).
	at sim.Time
}

// windowBus adapts a device window on the machine's real MMIO bus to
// the device.Bus interface (window-relative word access).
type windowBus struct {
	m    *machine.Machine
	base uint32
}

func (b windowBus) Load(off uint32) uint32 {
	v, err := b.m.Bus.MMIOLoad(b.base+off, 4)
	if err != nil {
		panic(fmt.Sprintf("hypervisor: device snoop at %#x: %v", b.base+off, err))
	}
	return v
}

func (b windowBus) Store(off uint32, v uint32) {
	_ = b.m.Bus.MMIOStore(b.base+off, 4, v)
}

// Hypervisor virtualizes one machine for one guest.
type Hypervisor struct {
	M *machine.Machine

	cfg Config

	// Virtual architected state (the guest's view).
	vCR  [isa.NumCRs]uint32
	vPSW uint32

	// Virtual interval timer: armed deadline in virtual-TOD units.
	vITMRArmed    bool
	vITMRDeadline uint32

	// Virtual TOD: value = todBase + (guestInstr - epochStartInstr).
	todBase         uint32
	epochStartInstr uint64

	guestInstr uint64
	epoch      uint64
	halted     bool

	// cutAt is the adaptive boundary's armed cut point (guest instruction
	// count; 0 = unarmed). Re-armed to guestInstr+CutSlack by every
	// environment output while AdaptiveBoundary is set; reset at each
	// epoch start.
	cutAt uint64

	// residentAt is the guest-instruction coordinate of the most recent
	// simulated instruction (valid when residentArmed). Drives the
	// ResidentEmulation fast path: a follow-on simulation within
	// ResidentWindow instructions skips the entry/exit charge. Not
	// captured by snapshots — deterministic replay reproduces it.
	residentAt    uint64
	residentArmed bool

	// ioActive: forward doorbells/console to real hardware (primary and
	// promoted backup); false = suppress (backup, §2.2 case i).
	ioActive bool

	// deferOutput: an I/O-active hypervisor under the output-commit
	// window buffers outputs and starts instead of performing them; the
	// replication layer releases them per epoch as acknowledgements land.
	deferOutput bool
	// now supplies virtual time for deferred-output latency accounting
	// (set with SetOutputDeferral; nil otherwise).
	now func() sim.Time

	// buffered holds interrupts awaiting delivery at this epoch's end
	// (the primary buffers captures per P1; the backup buffers message
	// contents per P4).
	buffered []Interrupt

	// devs is the ordered device table: every shadow device, sorted by
	// window base at attach time. The order is immutable after boot, so
	// delivery, polling and P7 scans iterate it directly — no per-epoch
	// rebuild or sort.
	devs []*shadowDev

	// suppressed buffers the current epoch's suppressed environment
	// output (backup side); see suppressedOutput.
	suppressed []suppressedOutput

	// OnCapture, when set (primary), is invoked as soon as a device
	// completion is captured mid-epoch — the replication layer uses it
	// to send [E, Int] to the backup (rule P1).
	OnCapture func(Interrupt)

	// OnDiag, when set, receives guest DIAG codes (test instrumentation).
	OnDiag func(code uint32)

	// OnReflect, when set, observes every trap reflected into the guest
	// (debugging and instrumentation; pc is the interrupted address).
	OnReflect func(t isa.Trap, isr, ior, pc uint32)

	// OnBeforeIO, when set, is invoked before a doorbell is forwarded to
	// real hardware. The revised protocol of §4.3 uses it: instead of
	// awaiting acknowledgements at every epoch boundary, the primary
	// awaits them here — "in order to initiate an I/O operation, the
	// primary's hypervisor is required to have received acknowledgements
	// for all messages it has sent". May block in virtual time.
	OnBeforeIO func()

	// Stop, when set, is polled during epoch execution; returning true
	// aborts the run immediately — failstop injection (the processor
	// simply ceases).
	Stop func() bool

	Stats Stats
}

// New wraps a machine. The machine's Bus must already be wired (real
// devices); the hypervisor intercepts the guest's access to it.
func New(m *machine.Machine, cfg Config) *Hypervisor {
	hv := &Hypervisor{
		M:   m,
		cfg: cfg.withDefaults(),
	}
	return hv
}

// Config returns the hypervisor's configuration (defaults applied).
func (hv *Hypervisor) Config() Config { return hv.cfg }

// AttachDevice registers a shadow device. Devices must be attached
// before the guest boots (the table is wired identically on every
// replica and immutable afterwards); the table is kept sorted by window
// base so every protocol scan sees a fixed deterministic order.
func (hv *Hypervisor) AttachDevice(win device.Window, sh device.Shadow) {
	for _, d := range hv.devs {
		if win.Base < d.win.Base+d.win.Size && d.win.Base < win.Base+win.Size {
			panic(fmt.Sprintf("hypervisor: device %q [%#x,%#x) overlaps %q [%#x,%#x)",
				win.ID, win.Base, win.Base+win.Size, d.win.ID, d.win.Base, d.win.Base+d.win.Size))
		}
	}
	nd := &shadowDev{win: win, sh: sh, bus: windowBus{m: hv.M, base: win.Base}}
	i := len(hv.devs)
	for i > 0 && hv.devs[i-1].win.Base > win.Base {
		i--
	}
	hv.devs = append(hv.devs, nil)
	copy(hv.devs[i+1:], hv.devs[i:])
	hv.devs[i] = nd
}

// devAt locates the shadow device covering MMIO offset off (nil when
// the offset is outside every window).
func (hv *Hypervisor) devAt(off uint32) *shadowDev {
	for _, d := range hv.devs {
		if d.win.Contains(off) {
			return d
		}
	}
	return nil
}

// devByBase locates a shadow device by its exact window base.
func (hv *Hypervisor) devByBase(base uint32) *shadowDev {
	for _, d := range hv.devs {
		if d.win.Base == base {
			return d
		}
	}
	return nil
}

// SetIOActive switches environment output on (primary / promoted backup)
// or off (backup).
func (hv *Hypervisor) SetIOActive(active bool) { hv.ioActive = active }

// SetOutputDeferral switches the output-commit deferral mode: with a
// non-nil clock, an I/O-active hypervisor buffers environment outputs
// and I/O starts (tagged with their epoch and generation time) instead
// of performing them — the replication layer calls
// ReleaseDeferredThrough as epochs commit. A nil clock restores
// immediate emission.
func (hv *Hypervisor) SetOutputDeferral(clock func() sim.Time) {
	hv.deferOutput = clock != nil
	hv.now = clock
}

// clockNow reads the deferral clock (zero when none is wired).
func (hv *Hypervisor) clockNow() sim.Time {
	if hv.now == nil {
		return 0
	}
	return hv.now()
}

// ReleaseDeferredThrough performs every deferred output and I/O start
// belonging to epochs <= epoch, in guest program order: output stores
// are emitted to the real devices (with their deterministic ordinals),
// starts are issued to real hardware. It returns how many entries were
// released and the generation time of the earliest (zero when none).
// Safe to call from kernel-event context: device emission never sleeps.
func (hv *Hypervisor) ReleaseDeferredThrough(epoch uint64) (int, sim.Time) {
	n := 0
	var firstAt sim.Time
	for n < len(hv.suppressed) && hv.suppressed[n].epoch <= epoch {
		so := hv.suppressed[n]
		if n == 0 {
			firstAt = so.at
		}
		if so.start {
			hv.Stats.IOIssued++
			so.dev.issuedReal = true
			so.dev.sh.Start(so.dev.bus)
		} else {
			so.dev.sh.Output(so.dev.bus, so.off, so.val, so.ordinal)
		}
		n++
	}
	hv.dropSuppressedPrefix(n)
	return n, firstAt
}

// DropSuppressedThrough discards suppressed entries of epochs <= epoch
// without emitting them: the backup-side counterpart of
// ReleaseDeferredThrough, applied when an epoch frame's release
// watermark proves the coordinator performed those outputs. Entries of
// later epochs are retained for a possible promotion flush.
func (hv *Hypervisor) DropSuppressedThrough(epoch uint64) {
	n := 0
	for n < len(hv.suppressed) && hv.suppressed[n].epoch <= epoch {
		n++
	}
	hv.dropSuppressedPrefix(n)
}

// dropSuppressedPrefix removes the first n suppressed entries, compacting
// the tail into the reused backing array.
func (hv *Hypervisor) dropSuppressedPrefix(n int) {
	if n == 0 {
		return
	}
	rest := copy(hv.suppressed, hv.suppressed[n:])
	for i := rest; i < len(hv.suppressed); i++ {
		hv.suppressed[i] = suppressedOutput{}
	}
	hv.suppressed = hv.suppressed[:rest]
}

// IOActive reports whether environment output is enabled.
func (hv *Hypervisor) IOActive() bool { return hv.ioActive }

// Epoch returns the current epoch number (epochs completed).
func (hv *Hypervisor) Epoch() uint64 { return hv.epoch }

// GuestInstructions returns cumulative retired guest instructions.
func (hv *Hypervisor) GuestInstructions() uint64 { return hv.guestInstr }

// Halted reports whether the guest has halted.
func (hv *Hypervisor) Halted() bool { return hv.halted }

// SetTODBase resynchronizes the virtual time-of-day clock — the backup
// applies the primary's Tme value here (P5: "Tme_b := Tme_p").
func (hv *Hypervisor) SetTODBase(tod uint32) {
	hv.todBase = tod
	hv.epochStartInstr = hv.guestInstr
}

// VirtualTOD returns the guest-visible time-of-day clock: the epoch's
// base value plus instructions retired since — identical on primary and
// backup by construction.
func (hv *Hypervisor) VirtualTOD() uint32 {
	return hv.todBase + uint32(hv.guestInstr-hv.epochStartInstr)
}

// Boot initializes the guest: loads the program image, sets the virtual
// machine to begin at entry with virtual privilege level 0, real mode,
// interrupts disabled — mirroring hardware reset.
func (hv *Hypervisor) Boot(origin uint32, words []uint32, entry uint32) {
	hv.M.LoadProgram(origin, words, entry)
	hv.vPSW = 0 // vPL 0, interrupts off, real mode
	hv.applyVPSW()
}

// realPLFor maps a virtual privilege level to the real level the guest
// executes at: virtual 0 -> real 1, virtual 3 -> real 3 (the paper's
// mapping; virtual 1 and 2 map to real 2 and are unused by HP-UX-like
// guests).
func realPLFor(vpl uint32) uint32 {
	switch vpl {
	case 0:
		return 1
	case 3:
		return 3
	default:
		return 2
	}
}

// applyVPSW projects the virtual PSW onto the real machine: demoted
// privilege level, translation per the guest's virtual V bit, recovery
// counter enabled (epoch control), REAL interrupts never enabled (the
// hypervisor polls devices itself; the guest's I bit is virtual).
func (hv *Hypervisor) applyVPSW() {
	real := realPLFor(hv.vPSW & isa.PSWPLMask)
	real |= isa.PSWR
	if hv.vPSW&isa.PSWV != 0 {
		real |= isa.PSWV
	}
	hv.M.PSW = real
}

// VirtualPSW returns the guest's virtual PSW (tests, digests).
func (hv *Hypervisor) VirtualPSW() uint32 { return hv.vPSW }

// VirtualCR reads a virtual control register as the guest would.
func (hv *Hypervisor) VirtualCR(cr isa.CR) uint32 {
	switch cr {
	case isa.CRTOD:
		return hv.VirtualTOD()
	case isa.CRCPUID:
		// Both replicas must present the SAME processor identity: the
		// virtual machine's identity is that of the primary role, not
		// the physical chip.
		return 1
	default:
		return hv.vCR[cr]
	}
}

// writeVirtualCR writes a virtual control register with the same special
// semantics the hardware applies (EIRR write-1-to-clear, read-only TOD).
func (hv *Hypervisor) writeVirtualCR(cr isa.CR, v uint32) {
	switch cr {
	case isa.CREIRR:
		hv.vCR[cr] &^= v
	case isa.CRTOD, isa.CRCPUID:
		// read-only
	case isa.CRITMR:
		// Arm the virtual interval timer: it expires when the virtual
		// TOD advances past now+v. Zero disarms.
		if v == 0 {
			hv.vITMRArmed = false
		} else {
			hv.vITMRArmed = true
			hv.vITMRDeadline = hv.VirtualTOD() + v
		}
		hv.vCR[cr] = v
	default:
		hv.vCR[cr] = v
	}
}

// deliverVirtualTrap reflects a trap into the guest exactly as hardware
// would: saves the VIRTUAL PSW and PC, demotes the virtual machine to
// virtual PL 0 with interrupts/translation/recovery off, and vectors
// through the guest's virtual IVA.
func (hv *Hypervisor) deliverVirtualTrap(t isa.Trap, isr, ior uint32) {
	hv.Stats.ReflectedTraps++
	if hv.OnReflect != nil {
		hv.OnReflect(t, isr, ior, hv.M.PC)
	}
	hv.vCR[isa.CRIPSW] = hv.vPSW
	hv.vCR[isa.CRIIA] = hv.M.PC
	hv.vCR[isa.CRISR] = isr
	hv.vCR[isa.CRIOR] = ior
	hv.vPSW &^= isa.PSWPLMask | isa.PSWI | isa.PSWV | isa.PSWR
	hv.applyVPSW()
	hv.M.PC = hv.vCR[isa.CRIVA] + uint32(t)*isa.VectorStride
}

// checkVIRQ delivers a virtual external-interrupt trap if the guest has
// interrupts enabled and unmasked bits pending. Deterministic: depends
// only on virtual state.
func (hv *Hypervisor) checkVIRQ() {
	if hv.vPSW&isa.PSWI == 0 {
		return
	}
	pending := hv.vCR[isa.CREIRR] & hv.vCR[isa.CREIEM]
	if pending == 0 {
		return
	}
	hv.Stats.VIRQDelivered++
	hv.deliverVirtualTrap(isa.TrapExtIntr, pending, 0)
}

// Buffered returns the interrupts currently buffered for delivery at the
// end of this epoch (the replication layer snapshots these on the
// primary for bookkeeping; the backup fills them from messages).
func (hv *Hypervisor) Buffered() []Interrupt { return hv.buffered }

// BufferInterrupt appends to the delivery buffer (backup side, rule P4).
func (hv *Hypervisor) BufferInterrupt(i Interrupt) {
	hv.buffered = append(hv.buffered, i)
}

// NoteTimerDelivered disarms the virtual interval timer without
// generating an interrupt. A backup replaying a verbatim delivery list
// (which already contains the primary's timer interrupt) uses this to
// keep its virtual timer state consistent without double-delivering.
func (hv *Hypervisor) NoteTimerDelivered() { hv.vITMRArmed = false }

// TimerInterruptsDue implements "adds to buffer any interrupts based on
// Tme" (P2/P5/P6): given the epoch's closing TOD value, it returns — and
// buffers — a virtual interval-timer interrupt if the armed deadline has
// passed. Both sides call it with the SAME tod value, so both buffer the
// same set.
func (hv *Hypervisor) TimerInterruptsDue(tod uint32) []Interrupt {
	if !hv.vITMRArmed {
		return nil
	}
	// Wraparound-safe comparison.
	if int32(tod-hv.vITMRDeadline) < 0 {
		return nil
	}
	hv.vITMRArmed = false
	i := Interrupt{Line: 0, Timer: true, Dev: NoDevice}
	hv.buffered = append(hv.buffered, i)
	return []Interrupt{i}
}

// DeliverBuffered delivers every buffered interrupt to the virtual
// machine: applies device completion records to the shadow devices (and
// their payloads to guest memory), raises virtual EIRR lines, and (if
// the guest allows) vectors the guest through its interrupt handler.
// Runs at epoch boundaries only (P2/P5/P6). The staging buffer is
// reused across epochs, so the per-epoch delivery path allocates
// nothing.
func (hv *Hypervisor) DeliverBuffered() {
	ints := hv.buffered
	hv.buffered = nil
	now := hv.M.TOD()
	for _, i := range ints {
		if i.CapturedTOD != 0 {
			// delay(EL) accounting, in real time (TOD ticks are cycles).
			hv.Stats.DeliveryDelayTotal += sim.Time(now-i.CapturedTOD) * 20 * sim.Nanosecond
			hv.Stats.DeliveryDelayCount++
		}
		if i.Dev != NoDevice {
			if d := hv.devByBase(i.Dev); d != nil {
				d.sh.Apply(i.Completion, hv.M, d.bus)
				d.outstanding = false
				d.issuedReal = false
			}
		}
		hv.vCR[isa.CREIRR] |= 1 << (i.Line & 31)
	}
	hv.checkVIRQ()
	// Hand the backing array back for the next epoch, dropping payload
	// references (DMA data) so consumed interrupts are not pinned. If a
	// delivery side effect buffered new interrupts, keep those instead.
	for i := range ints {
		ints[i] = Interrupt{}
	}
	if hv.buffered == nil {
		hv.buffered = ints[:0]
	}
}

// OutstandingUncertain implements the device-generic rule P7 at
// failover: every device contributes the completion records the
// promoted virtual machine must see — an UNCERTAIN completion for an
// outstanding I/O operation (the guest's driver will retry, which IO2
// permits), the drained pending input of an unsolicited device (input
// the environment delivered but no replica consumed). The returned
// interrupts have been buffered for delivery; uncertain counts the P7
// uncertain completions among them.
func (hv *Hypervisor) OutstandingUncertain() (out []Interrupt, uncertain int) {
	for _, d := range hv.devs {
		// Records the dead coordinator forwarded for the failover epoch
		// are already awaiting delivery (P6); their environment input is
		// not pending — Recover must not capture it a second time.
		var pending []device.Completion
		for _, i := range hv.buffered {
			if i.Dev == d.win.Base {
				pending = append(pending, i.Completion)
			}
		}
		recs, unc := d.sh.Recover(d.bus, hv.M, d.outstanding, pending)
		uncertain += unc
		for _, c := range recs {
			i := Interrupt{Line: d.win.Line, Dev: d.win.Base, Completion: c}
			hv.buffered = append(hv.buffered, i)
			out = append(out, i)
		}
	}
	return out, uncertain
}

// CommitSuppressedOutputs drops the current epoch's suppressed-output
// buffer: the backup calls it once the coordinator's end-of-epoch
// message proves the epoch's outputs were performed by the I/O-active
// side.
func (hv *Hypervisor) CommitSuppressedOutputs() {
	hv.suppressed = hv.suppressed[:0]
}

// FlushSuppressedOutputs re-emits the suppressed environment output a
// promoting backup retains — the failover epoch's under the classic
// protocol, every epoch past the coordinator's release watermark under
// the output-commit window — to the real devices: the output half of
// the generalized rule P7. Ordinal dedup at the environment devices
// makes the re-emission exactly-once: whatever prefix the dead
// coordinator already performed is dropped, the rest is applied in
// order. Deferred START entries (present only in a state image
// transferred from a deferring coordinator) are skipped: the operation
// is still marked outstanding, so P7's uncertain synthesis re-drives it
// through the guest's own retry.
func (hv *Hypervisor) FlushSuppressedOutputs() {
	for _, so := range hv.suppressed {
		if so.start {
			continue
		}
		so.dev.sh.Output(so.dev.bus, so.off, so.val, so.ordinal)
	}
	hv.suppressed = hv.suppressed[:0]
}

// Digest returns a divergence-detection digest of the guest-visible
// state: machine registers/PC plus virtual PSW and key virtual CRs.
func (hv *Hypervisor) Digest() uint64 {
	d := hv.M.Digest()
	d ^= uint64(hv.vPSW) * 0x9E3779B97F4A7C15
	d ^= uint64(hv.vCR[isa.CRIVA]) << 1
	d ^= uint64(hv.vCR[isa.CREIEM]) << 2
	d ^= uint64(hv.vCR[isa.CREIRR]) << 3
	d ^= uint64(hv.vCR[isa.CRIIA]) << 4
	return d
}

func (hv *Hypervisor) String() string {
	return fmt.Sprintf("hv{epoch=%d instr=%d pc=%#x vpsw=%#x}",
		hv.epoch, hv.guestInstr, hv.M.PC, hv.vPSW)
}
