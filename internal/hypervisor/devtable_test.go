package hypervisor

// Guards for the ordered device table: the per-epoch delivery and P7
// scan paths iterate a sorted-at-attach table — the historical
// adapterBases() rebuilt and insertion-sorted a slice on EVERY
// delivery, which these tests pin out of existence: the hot paths must
// not allocate, and the scan must scale linearly in attached devices
// without per-call setup.

import (
	"fmt"
	"testing"

	"repro/internal/console"
	"repro/internal/device"
	"repro/internal/machine"
	"repro/internal/scsi"
	"repro/internal/sim"
)

// newDevTableRig wires a machine with nDisks adapters plus a console
// port, mirroring the platform's device-table layout.
func newDevTableRig(tb testing.TB, nDisks int) (*Hypervisor, *sim.Kernel) {
	tb.Helper()
	k := sim.NewKernel(1)
	tb.Cleanup(k.Shutdown)
	m := machine.New(machine.Config{})
	mux := machine.NewBusMux()
	cons := console.New()
	for i := 0; i < nDisks; i++ {
		base := uint32(0x2000 * i)
		disk := scsi.NewDisk(k, scsi.DiskConfig{})
		ad := disk.NewAdapter(0, m, func() {})
		mux.Map(fmt.Sprintf("scsi%d", i), base, scsi.AdapterWindow, ad)
	}
	mux.Map("console", 0x2000*uint32(nDisks), console.Window, cons.NewPort(nil))
	m.Bus = mux
	hv := New(m, Config{EpochLength: 1024})
	for i := 0; i < nDisks; i++ {
		hv.AttachDevice(device.Window{
			ID: fmt.Sprintf("disk%d", i), Base: uint32(0x2000 * i),
			Size: scsi.AdapterWindow, Line: uint(1 + i),
		}, scsi.NewShadow())
	}
	hv.AttachDevice(device.Window{
		ID: "console", Base: 0x2000 * uint32(nDisks), Size: console.Window,
		Line: uint(1 + nDisks), Unsolicited: true,
	}, console.NewShadow())
	return hv, k
}

func TestDeviceTableSortedAtAttach(t *testing.T) {
	// Attach out of order; the table must come out base-sorted.
	hv := New(machine.New(machine.Config{}), Config{})
	hv.AttachDevice(device.Window{ID: "b", Base: 0x2000, Size: 0x20, Line: 3}, scsi.NewShadow())
	hv.AttachDevice(device.Window{ID: "c", Base: 0x4000, Size: 0x20, Line: 4}, scsi.NewShadow())
	hv.AttachDevice(device.Window{ID: "a", Base: 0x0000, Size: 0x20, Line: 1}, scsi.NewShadow())
	for i, want := range []string{"a", "b", "c"} {
		if hv.devs[i].win.ID != want {
			t.Fatalf("devs[%d] = %q, want %q", i, hv.devs[i].win.ID, want)
		}
	}
	// Overlapping windows are a wiring error.
	defer func() {
		if recover() == nil {
			t.Error("overlapping attach did not panic")
		}
	}()
	hv.AttachDevice(device.Window{ID: "x", Base: 0x2010, Size: 0x20}, scsi.NewShadow())
}

// TestEpochDeliveryAllocFree pins the benchmark-guarded property: with
// the device order cached at attach time, a boundary's delivery plus
// the P7 scan allocate nothing, at any device count.
func TestEpochDeliveryAllocFree(t *testing.T) {
	hv, _ := newDevTableRig(t, 6)
	// Warm the staging buffer once.
	hv.BufferInterrupt(Interrupt{Line: 0, Timer: true, Dev: NoDevice})
	hv.DeliverBuffered()
	avg := testing.AllocsPerRun(200, func() {
		hv.BufferInterrupt(Interrupt{Line: 0, Timer: true, Dev: NoDevice})
		hv.DeliverBuffered()
		hv.OutstandingUncertain()
	})
	if avg != 0 {
		t.Errorf("per-epoch delivery path allocates %.1f objects/op, want 0", avg)
	}
}

// BenchmarkEpochDelivery measures the boundary delivery + P7 scan with
// a populated device table (the path adapterBases() used to rebuild a
// sorted slice on).
func BenchmarkEpochDelivery(b *testing.B) {
	for _, nDisks := range []int{1, 4, 14} {
		b.Run(fmt.Sprintf("disks=%d", nDisks), func(b *testing.B) {
			hv, _ := newDevTableRig(b, nDisks)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hv.BufferInterrupt(Interrupt{Line: 0, Timer: true, Dev: NoDevice})
				hv.DeliverBuffered()
				hv.OutstandingUncertain()
			}
		})
	}
}
