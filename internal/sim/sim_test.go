package sim

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{5, "5ns"},
		{2 * Microsecond, "2us"},
		{3 * Millisecond, "3ms"},
		{4 * Second, "4s"},
		{1500, "1.5us"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if got := (2500 * Millisecond).Seconds(); got != 2.5 {
		t.Errorf("Seconds = %v, want 2.5", got)
	}
	if got := (3 * Millisecond).Micros(); got != 3000 {
		t.Errorf("Micros = %v, want 3000", got)
	}
}

func TestEventOrdering(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.At(100, func() { order = append(order, 2) })
	k.At(50, func() { order = append(order, 1) })
	k.At(100, func() { order = append(order, 3) }) // same time: insertion order
	k.At(200, func() { order = append(order, 4) })
	end := k.Run()
	if end != 200 {
		t.Fatalf("end time = %v, want 200", end)
	}
	want := []int{1, 2, 3, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEventCancel(t *testing.T) {
	k := NewKernel(1)
	fired := false
	h := k.At(10, func() { fired = true })
	h.Cancel()
	k.Run()
	if fired {
		t.Error("canceled event fired")
	}
	// Double-cancel is a no-op.
	h.Cancel()
}

func TestAfterNegativeClamped(t *testing.T) {
	k := NewKernel(1)
	var at Time = -1
	k.After(-5, func() { at = k.Now() })
	k.Run()
	if at != 0 {
		t.Errorf("negative After fired at %v, want 0", at)
	}
}

func TestAtPastClamped(t *testing.T) {
	k := NewKernel(1)
	var at Time = -1
	k.At(100, func() {
		k.At(50, func() { at = k.Now() }) // in the past: clamps to now
	})
	k.Run()
	if at != 100 {
		t.Errorf("past event fired at %v, want 100", at)
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel(1)
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		k.At(at, func() { fired = append(fired, at) })
	}
	k.RunUntil(25)
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 20 {
		t.Fatalf("fired = %v, want [10 20]", fired)
	}
	if k.Now() != 25 {
		t.Fatalf("now = %v, want 25", k.Now())
	}
	k.Run()
	if len(fired) != 4 {
		t.Fatalf("after Run fired = %v, want all 4", fired)
	}
}

func TestStop(t *testing.T) {
	k := NewKernel(1)
	count := 0
	k.At(10, func() { count++; k.Stop() })
	k.At(20, func() { count++ })
	k.Run()
	if count != 1 {
		t.Errorf("count = %d, want 1 (Stop should halt)", count)
	}
	if !k.Stopped() {
		t.Error("Stopped() = false after Stop")
	}
}

func TestProcSleep(t *testing.T) {
	k := NewKernel(1)
	var times []Time
	k.Spawn("sleeper", func(p *Proc) {
		times = append(times, p.Now())
		p.Sleep(100)
		times = append(times, p.Now())
		p.Sleep(50)
		times = append(times, p.Now())
	})
	k.Run()
	defer k.Shutdown()
	want := []Time{0, 100, 150}
	if len(times) != 3 {
		t.Fatalf("times = %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
	if k.LiveProcs() != 0 {
		t.Errorf("LiveProcs = %d, want 0", k.LiveProcs())
	}
}

func TestProcInterleaving(t *testing.T) {
	k := NewKernel(1)
	var order []string
	k.Spawn("a", func(p *Proc) {
		for i := 0; i < 3; i++ {
			order = append(order, fmt.Sprintf("a%d@%d", i, p.Now()))
			p.Sleep(10)
		}
	})
	k.Spawn("b", func(p *Proc) {
		for i := 0; i < 3; i++ {
			order = append(order, fmt.Sprintf("b%d@%d", i, p.Now()))
			p.Sleep(15)
		}
	})
	k.Run()
	defer k.Shutdown()
	want := []string{"a0@0", "b0@0", "a1@10", "b1@15", "a2@20", "b2@30"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSignalBroadcast(t *testing.T) {
	k := NewKernel(1)
	s := k.NewSignal("s")
	var woken []string
	for _, name := range []string{"p1", "p2", "p3"} {
		name := name
		k.Spawn(name, func(p *Proc) {
			p.Wait(s)
			woken = append(woken, name)
		})
	}
	k.Spawn("broadcaster", func(p *Proc) {
		p.Sleep(100)
		if s.Waiters() != 3 {
			t.Errorf("Waiters = %d, want 3", s.Waiters())
		}
		s.Broadcast()
	})
	k.Run()
	defer k.Shutdown()
	if len(woken) != 3 || woken[0] != "p1" || woken[1] != "p2" || woken[2] != "p3" {
		t.Fatalf("woken = %v, want [p1 p2 p3] (wait order)", woken)
	}
}

func TestWaitTimeout(t *testing.T) {
	k := NewKernel(1)
	s := k.NewSignal("s")
	var got bool
	var at Time
	k.Spawn("waiter", func(p *Proc) {
		got = p.WaitTimeout(s, 50)
		at = p.Now()
	})
	k.Run()
	defer k.Shutdown()
	if got {
		t.Error("WaitTimeout returned true, want false (timeout)")
	}
	if at != 50 {
		t.Errorf("woke at %v, want 50", at)
	}
}

func TestWaitTimeoutSignaledFirst(t *testing.T) {
	k := NewKernel(1)
	s := k.NewSignal("s")
	var got bool
	k.Spawn("waiter", func(p *Proc) {
		got = p.WaitTimeout(s, 1000)
	})
	k.Spawn("signaler", func(p *Proc) {
		p.Sleep(10)
		s.Broadcast()
	})
	k.Run()
	defer k.Shutdown()
	if !got {
		t.Error("WaitTimeout returned false, want true (signaled)")
	}
}

func TestBroadcastAfterTimeoutDoesNotWakeTimedOutWaiter(t *testing.T) {
	k := NewKernel(1)
	s := k.NewSignal("s")
	wakeups := 0
	k.Spawn("waiter", func(p *Proc) {
		p.WaitTimeout(s, 10)
		wakeups++
		p.Wait(s) // waits again; should only wake on the 2nd broadcast
		wakeups++
	})
	k.Spawn("signaler", func(p *Proc) {
		p.Sleep(100)
		s.Broadcast()
	})
	k.Run()
	defer k.Shutdown()
	if wakeups != 2 {
		t.Errorf("wakeups = %d, want 2", wakeups)
	}
}

func TestQueueFIFO(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k, "q")
	var got []int
	k.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, q.Recv(p))
		}
	})
	k.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(10)
			q.Put(i)
		}
	})
	k.Run()
	defer k.Shutdown()
	for i := 0; i < 5; i++ {
		if got[i] != i {
			t.Fatalf("got = %v, want [0 1 2 3 4]", got)
		}
	}
}

func TestQueueRecvTimeout(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[string](k, "q")
	var ok bool
	var at Time
	k.Spawn("consumer", func(p *Proc) {
		_, ok = q.RecvTimeout(p, 30)
		at = p.Now()
	})
	k.Run()
	defer k.Shutdown()
	if ok {
		t.Error("RecvTimeout ok = true, want false")
	}
	if at != 30 {
		t.Errorf("timed out at %v, want 30", at)
	}
}

func TestQueueRecvTimeoutDelivered(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[string](k, "q")
	var ok bool
	var v string
	k.Spawn("consumer", func(p *Proc) {
		v, ok = q.RecvTimeout(p, 1000)
	})
	k.Spawn("producer", func(p *Proc) {
		p.Sleep(5)
		q.Put("hello")
	})
	k.Run()
	defer k.Shutdown()
	if !ok || v != "hello" {
		t.Errorf("got (%q, %v), want (hello, true)", v, ok)
	}
}

func TestQueueTryRecvAndDrain(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k, "q")
	if _, ok := q.TryRecv(); ok {
		t.Error("TryRecv on empty queue returned ok")
	}
	q.Put(1)
	q.Put(2)
	q.Put(3)
	if q.Len() != 3 {
		t.Errorf("Len = %d, want 3", q.Len())
	}
	if v, ok := q.TryRecv(); !ok || v != 1 {
		t.Errorf("TryRecv = (%d, %v), want (1, true)", v, ok)
	}
	rest := q.Drain()
	if len(rest) != 2 || rest[0] != 2 || rest[1] != 3 {
		t.Errorf("Drain = %v, want [2 3]", rest)
	}
	if q.Len() != 0 {
		t.Errorf("Len after Drain = %d, want 0", q.Len())
	}
}

func TestShutdownUnblocksProcs(t *testing.T) {
	k := NewKernel(1)
	s := k.NewSignal("never")
	k.Spawn("stuck1", func(p *Proc) { p.Wait(s) })
	k.Spawn("stuck2", func(p *Proc) {
		q := NewQueue[int](k, "empty")
		q.Recv(p)
	})
	k.Run()
	if k.LiveProcs() != 2 {
		t.Fatalf("LiveProcs = %d, want 2 (both blocked)", k.LiveProcs())
	}
	k.Shutdown()
	if k.LiveProcs() != 0 {
		t.Fatalf("LiveProcs after Shutdown = %d, want 0", k.LiveProcs())
	}
}

func TestOnIdleHook(t *testing.T) {
	k := NewKernel(1)
	calls := 0
	s := k.NewSignal("s")
	k.Spawn("waiter", func(p *Proc) { p.Wait(s) })
	k.OnIdle(func() bool {
		calls++
		if calls == 1 {
			s.Broadcast()
			return true
		}
		return false
	})
	k.Run()
	defer k.Shutdown()
	if calls != 2 {
		t.Errorf("idle hook calls = %d, want 2", calls)
	}
}

func TestNewRandIndependentStreams(t *testing.T) {
	k := NewKernel(42)
	a1 := k.NewRand("a").Int63()
	b1 := k.NewRand("b").Int63()
	if a1 == b1 {
		t.Error("streams a and b produced identical first values")
	}
	// Same name, same seed: reproducible.
	k2 := NewKernel(42)
	if got := k2.NewRand("a").Int63(); got != a1 {
		t.Errorf("stream not reproducible: %d != %d", got, a1)
	}
	// Different seed: different stream.
	k3 := NewKernel(43)
	if got := k3.NewRand("a").Int63(); got == a1 {
		t.Error("different seeds produced identical streams")
	}
}

// TestDeterminism runs a small multi-process scenario twice and checks the
// observable event sequence is identical.
func TestDeterminism(t *testing.T) {
	run := func() []string {
		var log []string
		k := NewKernel(7)
		defer k.Shutdown()
		q := NewQueue[int](k, "q")
		s := k.NewSignal("s")
		rng := k.NewRand("jitter")
		for i := 0; i < 4; i++ {
			i := i
			k.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Sleep(Time(rng.Intn(50)))
					q.Put(i*10 + j)
					log = append(log, fmt.Sprintf("put %d@%d", i*10+j, p.Now()))
				}
				p.Wait(s)
				log = append(log, fmt.Sprintf("woke %d@%d", i, p.Now()))
			})
		}
		k.Spawn("collector", func(p *Proc) {
			for j := 0; j < 12; j++ {
				v := q.Recv(p)
				log = append(log, fmt.Sprintf("got %d@%d", v, p.Now()))
			}
			s.Broadcast()
		})
		k.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// Property: for any batch of events scheduled at arbitrary times, they fire
// in nondecreasing time order and same-time events fire in insertion order.
func TestEventOrderProperty(t *testing.T) {
	prop := func(times []uint16) bool {
		k := NewKernel(1)
		type rec struct {
			at  Time
			idx int
		}
		var fired []rec
		for i, raw := range times {
			i := i
			at := Time(raw)
			k.At(at, func() { fired = append(fired, rec{at, i}) })
		}
		k.Run()
		if len(fired) != len(times) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].idx < fired[i-1].idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Sleep durations accumulate exactly.
func TestSleepAccumulationProperty(t *testing.T) {
	prop := func(ds []uint8) bool {
		k := NewKernel(1)
		defer k.Shutdown()
		var total Time
		for _, d := range ds {
			total += Time(d)
		}
		var end Time = -1
		k.Spawn("p", func(p *Proc) {
			for _, d := range ds {
				p.Sleep(Time(d))
			}
			end = p.Now()
		})
		k.Run()
		return end == total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSpawnFromProc(t *testing.T) {
	k := NewKernel(1)
	var childRan bool
	k.Spawn("parent", func(p *Proc) {
		p.Sleep(10)
		k.Spawn("child", func(c *Proc) {
			c.Sleep(5)
			childRan = true
		})
		p.Sleep(100)
	})
	k.Run()
	defer k.Shutdown()
	if !childRan {
		t.Error("child process did not run")
	}
}

func TestYield(t *testing.T) {
	k := NewKernel(1)
	var order []string
	k.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	k.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	k.Run()
	defer k.Shutdown()
	// a runs first (spawned first), yields, b runs, then a resumes.
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// Regression: TryRecv must not pin consumed items. The old
// implementation kept the consumed prefix of the backing array alive
// (q.items = q.items[1:]); the ring zeroes each consumed slot.
func TestQueueReleasesConsumedItems(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[*int](k, "q")
	for i := 0; i < 4; i++ {
		v := i
		q.Put(&v)
	}
	for i := 0; i < 3; i++ {
		if _, ok := q.TryRecv(); !ok {
			t.Fatal("TryRecv failed")
		}
	}
	live := 0
	for _, p := range q.ring.items {
		if p != nil {
			live++
		}
	}
	if live != 1 {
		t.Errorf("backing array holds %d live pointers, want 1 (consumed slots must be zeroed)", live)
	}
}

// The ring must preserve FIFO order across many wraparounds and grows.
func TestQueueRingWraparound(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k, "q")
	next, want := 0, 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 3+round%5; i++ {
			q.Put(next)
			next++
		}
		for i := 0; i < 2+round%4 && q.Len() > 0; i++ {
			v, ok := q.TryRecv()
			if !ok || v != want {
				t.Fatalf("round %d: got (%d,%v), want %d", round, v, ok, want)
			}
			want++
		}
	}
	for q.Len() > 0 {
		v, _ := q.TryRecv()
		if v != want {
			t.Fatalf("drain: got %d, want %d", v, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("consumed %d items, produced %d", want, next)
	}
}

// Regression: Drain must hand out a fresh slice, not the queue's
// internal storage (later Puts must not mutate the drained snapshot).
func TestQueueDrainReturnsCopy(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k, "q")
	q.Put(1)
	q.Put(2)
	got := q.Drain()
	q.Put(99)
	q.Put(98)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("drained snapshot corrupted by later Puts: %v", got)
	}
}

// The Sleep fast paths (in-place clock advance, direct-wake slot) must
// keep process interleaving identical to the general heap-event path:
// the same workload runs with the fast paths forced off as a reference.
func TestSleepFastPathInterleaving(t *testing.T) {
	run := func(nproc int, forceHeap bool) []string {
		debugForceHeap = forceHeap
		defer func() { debugForceHeap = false }()
		var log []string
		k := NewKernel(1)
		defer k.Shutdown()
		for i := 0; i < nproc; i++ {
			i := i
			k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for j := 0; j < 20; j++ {
					p.Sleep(Time(3 + 2*i))
					log = append(log, fmt.Sprintf("p%d@%d", i, p.Now()))
				}
			})
		}
		k.Run()
		return log
	}
	// n=1 exercises the in-place advance, n>=2 the direct-wake slot and
	// heap mixing; each must match the all-heap reference exactly.
	for _, n := range []int{1, 2, 5} {
		fast, ref := run(n, false), run(n, true)
		if len(fast) != len(ref) {
			t.Fatalf("n=%d: lengths differ: fast %d vs heap %d", n, len(fast), len(ref))
		}
		for i := range fast {
			if fast[i] != ref[i] {
				t.Fatalf("n=%d: divergence at %d: fast %q vs heap %q", n, i, fast[i], ref[i])
			}
		}
	}
}

// --- bounded-progress watchdog ---

// TestStallWatchdogYieldLoop: a lone process yielding in place never
// advances virtual time; the watchdog must stop the kernel and name it.
func TestStallWatchdogYieldLoop(t *testing.T) {
	k := NewKernel(1)
	k.SetStallLimit(100)
	k.Spawn("spinner", func(p *Proc) {
		p.Sleep(5 * Microsecond) // make real progress first
		for {
			p.Yield()
		}
	})
	k.RunUntil(Second)
	name, at, ok := k.Stalled()
	if !ok {
		t.Fatal("watchdog did not trip on a yield livelock")
	}
	if name != "spinner" {
		t.Errorf("stalled proc = %q, want %q", name, "spinner")
	}
	if at != 5*Microsecond {
		t.Errorf("stall pinned at %v, want 5us", at)
	}
	if !k.Stopped() {
		t.Error("stalled kernel is not stopped")
	}
	// A stall is sticky: ClearStop must not re-arm the scheduler.
	k.ClearStop()
	if !k.Stopped() {
		t.Error("ClearStop re-armed a stalled kernel")
	}
}

// TestStallWatchdogEventLoop: a callback endlessly rescheduling itself
// at the current instant flows through the dispatcher; the watchdog
// counts those dispatches too and stops the loop.
func TestStallWatchdogEventLoop(t *testing.T) {
	k := NewKernel(1)
	k.SetStallLimit(100)
	fires := 0
	var spin func()
	spin = func() {
		fires++
		k.At(k.Now(), spin)
	}
	k.At(0, spin)
	k.RunUntil(Second)
	if _, at, ok := k.Stalled(); !ok {
		t.Fatal("watchdog did not trip on an event livelock")
	} else if at != 0 {
		t.Errorf("stall pinned at %v, want 0", at)
	}
	if fires > 102 {
		t.Errorf("loop dispatched %d times after the limit of 100", fires)
	}
}

// TestStallWatchdogDisabled: zero limit (the default) never trips, and
// progress resets the dispatch counter.
func TestStallWatchdogDisabled(t *testing.T) {
	k := NewKernel(1)
	done := false
	k.Spawn("worker", func(p *Proc) {
		for i := 0; i < 1000; i++ {
			p.Yield()
		}
		done = true
	})
	k.RunUntil(Second)
	if !done {
		t.Fatal("bounded yield loop did not finish with watchdog disabled")
	}
	if _, _, ok := k.Stalled(); ok {
		t.Error("Stalled reports true with no limit set")
	}

	// With a limit, periodic progress keeps the counter at bay.
	k2 := NewKernel(1)
	k2.SetStallLimit(100)
	done = false
	k2.Spawn("worker", func(p *Proc) {
		for i := 0; i < 2000; i++ {
			if i%50 == 0 {
				p.Sleep(Microsecond)
			} else {
				p.Yield()
			}
		}
		done = true
	})
	k2.RunUntil(Second)
	if !done {
		t.Fatal("progressing worker was killed by the watchdog")
	}
	if _, _, ok := k2.Stalled(); ok {
		t.Error("watchdog tripped despite periodic progress")
	}
}

// TestProcPanicReachesDriver pins the panic hand-off: a panic on a
// process goroutine must re-raise on the goroutine that called Run,
// where callers can recover — not crash the program on a goroutine
// nobody owns. The kernel must still shut down cleanly afterwards.
func TestProcPanicReachesDriver(t *testing.T) {
	k := NewKernel(1)
	defer k.Shutdown()
	k.Spawn("bystander", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(Millisecond)
		}
	})
	k.Spawn("bomb", func(p *Proc) {
		p.Sleep(5 * Millisecond)
		panic("boom")
	})
	var got any
	func() {
		defer func() { got = recover() }()
		k.Run()
	}()
	if got != "boom" {
		t.Fatalf("recovered %v on the driver goroutine, want \"boom\"", got)
	}
	// The bystander is still blocked in Sleep; Shutdown (deferred) must
	// unwind it without a second panic.
}
