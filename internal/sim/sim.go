// Package sim provides a deterministic, process-oriented discrete-event
// simulation kernel. All components of the fault-tolerance reproduction
// (processors, hypervisors, disks, network links) advance a shared virtual
// clock through this kernel, so entire multi-machine experiments are
// reproducible bit-for-bit from a seed.
//
// The kernel is cooperative: at any instant exactly one process (or one
// event callback) runs. Processes are goroutines that block inside kernel
// primitives (Sleep, Wait, Recv); the kernel hands control to exactly one
// of them at a time, so no locking is needed inside simulated components
// and execution order is a deterministic function of (event time, schedule
// order).
package sim

import (
	"container/heap"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
)

// Time is a virtual timestamp or duration in simulated nanoseconds.
type Time int64

// Convenient duration units in simulated nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Forever is a sentinel duration meaning "no timeout".
const Forever Time = 1<<62 - 1

// String renders a Time using the most natural unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6gs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.6gms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.6gus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts t to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// event is a scheduled callback. Events with equal time fire in insertion
// order (seq), which keeps the simulation deterministic.
type event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 when popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is the simulation scheduler. Create one with NewKernel, spawn
// processes with Spawn, then call Run (or RunUntil). A Kernel must be used
// from a single OS goroutine; process goroutines synchronize with it
// through internal channels.
type Kernel struct {
	now     Time
	seq     uint64
	events  eventHeap
	seed    int64
	procs   []*Proc
	stopped bool
	limit   Time // RunUntil bound, or <0 for none
	yield   chan struct{}
	current *Proc
	nprocs  int // live (not yet finished) processes
	inEvent bool
	idleFn  func() bool // optional hook when event queue empties
}

// NewKernel returns a kernel whose random streams derive from seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		seed:  seed,
		limit: -1,
		yield: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Seed returns the seed the kernel was created with.
func (k *Kernel) Seed() int64 { return k.seed }

// NewRand returns a deterministic random stream derived from the kernel
// seed and the given name. Distinct names give independent streams, so
// adding a new consumer does not perturb existing ones.
func (k *Kernel) NewRand(name string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", k.seed, name)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// Handle identifies a scheduled event so that it can be canceled.
type Handle struct{ e *event }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (h Handle) Cancel() {
	if h.e != nil {
		h.e.canceled = true
	}
}

// At schedules fn to run at absolute virtual time at. Event callbacks run
// in kernel context and must not block; use Spawn for blocking behaviour.
func (k *Kernel) At(at Time, fn func()) Handle {
	if at < k.now {
		at = k.now
	}
	e := &event{at: at, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.events, e)
	return Handle{e}
}

// After schedules fn to run d nanoseconds from now.
func (k *Kernel) After(d Time, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+d, fn)
}

// NextEventTime reports the time of the earliest pending event.
func (k *Kernel) NextEventTime() (Time, bool) {
	for len(k.events) > 0 {
		if k.events[0].canceled {
			heap.Pop(&k.events)
			continue
		}
		return k.events[0].at, true
	}
	return 0, false
}

// OnIdle registers a hook called when the event queue drains while
// processes are still blocked. If the hook returns true the kernel
// continues (the hook is expected to have scheduled new events); otherwise
// Run returns. This is used by tests to detect deadlock.
func (k *Kernel) OnIdle(fn func() bool) { k.idleFn = fn }

// Run executes events until the queue is empty or Stop is called.
// It returns the final virtual time.
func (k *Kernel) Run() Time {
	k.limit = -1
	return k.loop()
}

// RunUntil executes events with timestamps <= t, then returns. The clock
// is left at min(t, time of last event) or advanced to t if events remain
// beyond it.
func (k *Kernel) RunUntil(t Time) Time {
	k.limit = t
	defer func() { k.limit = -1 }()
	k.loop()
	if !k.stopped && k.now < t {
		k.now = t
	}
	return k.now
}

// Stop makes Run return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

func (k *Kernel) loop() Time {
	for !k.stopped {
		var e *event
		for len(k.events) > 0 {
			cand := k.events[0]
			if cand.canceled {
				heap.Pop(&k.events)
				continue
			}
			e = cand
			break
		}
		if e == nil {
			if k.idleFn != nil && k.idleFn() {
				continue
			}
			break
		}
		if k.limit >= 0 && e.at > k.limit {
			break
		}
		heap.Pop(&k.events)
		if e.at > k.now {
			k.now = e.at
		}
		k.inEvent = true
		e.fn()
		k.inEvent = false
	}
	return k.now
}

// Shutdown terminates all spawned processes that are still blocked in
// kernel primitives. It must be called after Run returns when the kernel
// will no longer be used; it unwinds process goroutines so they do not
// leak. Safe to call multiple times.
func (k *Kernel) Shutdown() {
	k.stopped = true
	for _, p := range k.procs {
		if p.state == procBlocked || p.state == procReady {
			p.kill = true
			k.resume(p)
		}
	}
	k.procs = nil
}

// LiveProcs returns the number of spawned processes that have not finished.
func (k *Kernel) LiveProcs() int { return k.nprocs }

// procState tracks where a process is in its lifecycle.
type procState int

const (
	procReady procState = iota
	procRunning
	procBlocked
	procDone
)

// killed is the panic value used to unwind process goroutines on Shutdown.
type killed struct{}

// Proc is a simulated process: a goroutine that may block in virtual time.
// All methods must be called from the process's own goroutine.
type Proc struct {
	k     *Kernel
	name  string
	wake  chan struct{}
	state procState
	kill  bool
}

// Name returns the name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel the process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Spawn starts fn as a simulated process. The process begins running at
// the current virtual time (ordered after already-scheduled events at that
// time). Spawn may be called before Run or from inside processes/events.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, wake: make(chan struct{}), state: procReady}
	k.procs = append(k.procs, p)
	k.nprocs++
	go func() {
		<-p.wake
		defer func() {
			p.state = procDone
			k.nprocs--
			if r := recover(); r != nil {
				if _, ok := r.(killed); ok {
					// Unwound by Shutdown: hand control back silently.
					k.yield <- struct{}{}
					return
				}
				panic(r)
			}
			k.yield <- struct{}{}
		}()
		if p.kill {
			panic(killed{})
		}
		p.state = procRunning
		fn(p)
	}()
	k.At(k.now, func() { k.resume(p) })
	return p
}

// resume transfers control to p and waits until it blocks or finishes.
// Must be called from kernel context.
func (k *Kernel) resume(p *Proc) {
	if p.state == procDone {
		return
	}
	prev := k.current
	k.current = p
	p.wake <- struct{}{}
	<-k.yield
	k.current = prev
}

// block suspends the calling process until the kernel wakes it.
func (p *Proc) block() {
	p.state = procBlocked
	p.k.yield <- struct{}{}
	<-p.wake
	if p.kill {
		panic(killed{})
	}
	p.state = procRunning
}

// Sleep suspends the process for d virtual nanoseconds.
func (p *Proc) Sleep(d Time) {
	if d <= 0 {
		// Yield: reschedule at the same instant, after pending same-time
		// events, preserving determinism.
		d = 0
	}
	p.k.At(p.k.now+d, func() { p.k.resume(p) })
	p.block()
}

// Yield gives other same-time events and processes a chance to run.
func (p *Proc) Yield() { p.Sleep(0) }

// Signal is a broadcast condition in virtual time. Waiters are woken by
// Broadcast in deterministic (wait-arrival) order.
type Signal struct {
	k       *Kernel
	name    string
	waiters []*signalWaiter
	seq     uint64
}

type signalWaiter struct {
	p     *Proc
	seq   uint64
	woken bool
	timer Handle
	timed bool // true if the waiter timed out rather than being signaled
}

// NewSignal creates a Signal owned by kernel k.
func (k *Kernel) NewSignal(name string) *Signal {
	return &Signal{k: k, name: name}
}

// Broadcast wakes every process currently waiting on s. Each waiter
// resumes via a scheduled event at the current time, in the order they
// began waiting.
func (s *Signal) Broadcast() {
	ws := s.waiters
	s.waiters = nil
	sort.Slice(ws, func(i, j int) bool { return ws[i].seq < ws[j].seq })
	for _, w := range ws {
		w.woken = true
		w.timer.Cancel()
		ww := w
		s.k.At(s.k.now, func() { s.k.resume(ww.p) })
	}
}

// Waiters reports how many processes are blocked on s.
func (s *Signal) Waiters() int { return len(s.waiters) }

// Wait blocks the process until the next Broadcast on s.
func (p *Proc) Wait(s *Signal) { p.WaitTimeout(s, Forever) }

// WaitTimeout blocks until Broadcast or until d elapses. It returns true
// if woken by Broadcast, false on timeout.
func (p *Proc) WaitTimeout(s *Signal, d Time) bool {
	w := &signalWaiter{p: p, seq: s.seq}
	s.seq++
	s.waiters = append(s.waiters, w)
	if d != Forever {
		w.timer = s.k.After(d, func() {
			if w.woken {
				return
			}
			w.timed = true
			w.woken = true
			// Remove from waiter list so Broadcast skips it.
			for i, x := range s.waiters {
				if x == w {
					s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
					break
				}
			}
			s.k.resume(p)
		})
	}
	p.block()
	return !w.timed
}

// Queue is an unbounded FIFO of values delivered in virtual time. Any
// goroutine in kernel context may Put; processes Recv (blocking in virtual
// time). It is the basic mailbox for simulated message passing.
type Queue[T any] struct {
	k     *Kernel
	name  string
	items []T
	avail *Signal
}

// NewQueue creates a queue owned by kernel k.
func NewQueue[T any](k *Kernel, name string) *Queue[T] {
	return &Queue[T]{k: k, name: name, avail: k.NewSignal(name + ".avail")}
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Put appends v and wakes any receivers.
func (q *Queue[T]) Put(v T) {
	q.items = append(q.items, v)
	q.avail.Broadcast()
}

// TryRecv removes and returns the head item without blocking.
func (q *Queue[T]) TryRecv() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Recv blocks the process until an item is available, then returns it.
func (q *Queue[T]) Recv(p *Proc) T {
	v, _ := q.RecvTimeout(p, Forever)
	return v
}

// RecvTimeout is Recv with a timeout; ok=false means the timeout elapsed.
func (q *Queue[T]) RecvTimeout(p *Proc, d Time) (T, bool) {
	var zero T
	deadline := Time(0)
	if d != Forever {
		deadline = q.k.now + d
	}
	for {
		if v, ok := q.TryRecv(); ok {
			return v, true
		}
		if d == Forever {
			p.Wait(q.avail)
			continue
		}
		remain := deadline - q.k.now
		if remain <= 0 {
			return zero, false
		}
		if !p.WaitTimeout(q.avail, remain) {
			return zero, false
		}
	}
}

// Drain removes and returns all queued items.
func (q *Queue[T]) Drain() []T {
	out := q.items
	q.items = nil
	return out
}
