// Package sim provides a deterministic, process-oriented discrete-event
// simulation kernel. All components of the fault-tolerance reproduction
// (processors, hypervisors, disks, network links) advance a shared virtual
// clock through this kernel, so entire multi-machine experiments are
// reproducible bit-for-bit from a seed.
//
// The kernel is cooperative: at any instant exactly one process (or one
// event callback) runs. Processes are goroutines that block inside kernel
// primitives (Sleep, Wait, Recv); the kernel hands control to exactly one
// of them at a time, so no locking is needed inside simulated components
// and execution order is a deterministic function of (event time, schedule
// order).
//
// The hot path is allocation-free: popped events are pooled on a free
// list, each process embeds a reusable timer event and signal waiter (a
// blocked process can have at most one of each pending), and a process
// that sleeps when nothing else can run first simply advances the clock
// without a heap operation or goroutine handoff at all.
package sim

import (
	"container/heap"
	"fmt"
	"hash/fnv"
	"math/rand"
)

// Time is a virtual timestamp or duration in simulated nanoseconds.
type Time int64

// Convenient duration units in simulated nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Forever is a sentinel duration meaning "no timeout".
const Forever Time = 1<<62 - 1

// String renders a Time using the most natural unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6gs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.6gms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.6gus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts t to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// event is a scheduled occurrence. Events with equal time fire in
// scheduling order (seq), which keeps the simulation deterministic.
// Exactly one of fn, proc, waiter is set: a callback, a direct process
// resume (Sleep, Spawn, Broadcast wake), or a wait timeout. Events are
// recycled through the kernel free list (or, for the per-process
// embedded timer, reused in place); gen distinguishes incarnations so a
// stale Handle cannot cancel a reused event.
type event struct {
	k      *Kernel
	at     Time
	seq    uint64
	gen    uint64
	fn     func()
	proc   *Proc
	waiter *signalWaiter
	index  int // heap index, -1 when not queued
	owned  bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is the simulation scheduler. Create one with NewKernel, spawn
// processes with Spawn, then call Run (or RunUntil). A Kernel must be used
// from a single OS goroutine; process goroutines synchronize with it
// through internal channels.
type Kernel struct {
	now     Time
	seq     uint64
	events  eventHeap
	free    []*event // recycled events
	seed    int64
	procs   []*Proc
	stopped bool
	limit   Time // RunUntil bound, or <0 for none
	yield   chan struct{}
	current *Proc
	nprocs  int         // live (not yet finished) processes
	idleFn  func() bool // optional hook when event queue empties

	// Direct-wake slot: one sleeping process bypasses the event heap
	// entirely. Equivalent to an event at (dwAt, dwSeq) resuming dwProc.
	dwProc *Proc
	dwAt   Time
	dwSeq  uint64

	// Bounded-progress watchdog (SetStallLimit): dispatch bookkeeping
	// that detects a scheduler livelock — virtual time pinned at one
	// instant while dispatches keep flowing. Zero stallLimit disables
	// the watchdog entirely (one predicted branch per dispatch).
	stallLimit int
	stallCount int
	stallAt    Time
	stallName  string
	stalled    bool

	// panicked holds a panic value recovered on a process goroutine,
	// re-raised on the kernel (driver) goroutine when the token returns
	// to loop. Without this hand-off a panicking process would crash
	// the whole program on a goroutine no caller can recover from.
	panicked any
}

// NewKernel returns a kernel whose random streams derive from seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		seed:  seed,
		limit: -1,
		yield: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Seed returns the seed the kernel was created with.
func (k *Kernel) Seed() int64 { return k.seed }

// NewRand returns a deterministic random stream derived from the kernel
// seed and the given name. Distinct names give independent streams, so
// adding a new consumer does not perturb existing ones.
func (k *Kernel) NewRand(name string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", k.seed, name)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// alloc takes an event from the free list (or allocates one).
func (k *Kernel) alloc() *event {
	if n := len(k.free); n > 0 {
		e := k.free[n-1]
		k.free = k.free[:n-1]
		return e
	}
	return &event{k: k, index: -1}
}

// recycle retires an event that has fired or been canceled. The
// generation bump invalidates outstanding Handles; pooled events return
// to the free list, per-process embedded ones are reused in place.
func (k *Kernel) recycle(e *event) {
	e.gen++
	e.fn, e.proc, e.waiter = nil, nil, nil
	if !e.owned {
		k.free = append(k.free, e)
	}
}

// push enqueues e at absolute time at (clamped to now), assigning the
// next scheduling sequence number.
func (k *Kernel) push(e *event, at Time) {
	if at < k.now {
		at = k.now
	}
	e.at = at
	e.seq = k.seq
	k.seq++
	heap.Push(&k.events, e)
}

// Handle identifies a scheduled event so that it can be canceled.
type Handle struct {
	e   *event
	gen uint64
}

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (h Handle) Cancel() {
	e := h.e
	if e == nil || e.gen != h.gen || e.index < 0 {
		return
	}
	heap.Remove(&e.k.events, e.index)
	e.k.recycle(e)
}

// At schedules fn to run at absolute virtual time at. Event callbacks run
// in kernel context and must not block; use Spawn for blocking behaviour.
func (k *Kernel) At(at Time, fn func()) Handle {
	e := k.alloc()
	e.fn = fn
	k.push(e, at)
	return Handle{e: e, gen: e.gen}
}

// After schedules fn to run d nanoseconds from now.
func (k *Kernel) After(d Time, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+d, fn)
}

// NextEventTime reports the time of the earliest pending occurrence
// (scheduled event or direct-wake sleeper).
func (k *Kernel) NextEventTime() (Time, bool) {
	var t Time
	ok := false
	if len(k.events) > 0 {
		t, ok = k.events[0].at, true
	}
	if k.dwProc != nil && (!ok || k.dwAt < t) {
		t, ok = k.dwAt, true
	}
	return t, ok
}

// OnIdle registers a hook called when the event queue drains while
// processes are still blocked. If the hook returns true the kernel
// continues (the hook is expected to have scheduled new events); otherwise
// Run returns. This is used by tests to detect deadlock.
func (k *Kernel) OnIdle(fn func() bool) { k.idleFn = fn }

// Run executes events until the queue is empty or Stop is called.
// It returns the final virtual time.
func (k *Kernel) Run() Time {
	k.limit = -1
	return k.loop()
}

// RunUntil executes events with timestamps <= t, then returns. The clock
// is left at min(t, time of last event) or advanced to t if events remain
// beyond it.
func (k *Kernel) RunUntil(t Time) Time {
	k.limit = t
	defer func() { k.limit = -1 }()
	k.loop()
	if !k.stopped && k.now < t {
		k.now = t
	}
	return k.now
}

// Stop makes Run return after the current event completes. A process
// may call it from inside the simulation (e.g. an epoch-boundary
// predicate): the caller keeps running until it next blocks, at which
// point the run returns with every process's state preserved. The run
// can be continued with ClearStop + Run/RunUntil.
func (k *Kernel) Stop() { k.stopped = true }

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// ClearStop re-arms a kernel halted by Stop so Run/RunUntil continue
// exactly where they left off — the basis of bounded, caller-paced
// session runs. It must not be called after Shutdown (the process
// goroutines are gone). A kernel halted by the stall watchdog is not
// re-armed: the livelock would only trip it again.
func (k *Kernel) ClearStop() { k.stopped = k.stalled }

// SetStallLimit arms the bounded-progress watchdog: if more than n
// dispatches (process resumes, wait timeouts, event callbacks) occur
// without virtual time advancing, the kernel declares itself stalled
// and stops. n must comfortably exceed the largest legitimate
// same-instant cascade (every node's boundary processing plus message
// deliveries happen at one instant). Zero disables the watchdog.
func (k *Kernel) SetStallLimit(n int) { k.stallLimit = n }

// Stalled reports whether the watchdog tripped, and if so the name of
// the last process dispatched at the pinned instant ("(event)" when an
// event callback, not a process, was spinning) and that instant. The
// condition is sticky: a stalled kernel will not run again.
func (k *Kernel) Stalled() (proc string, at Time, ok bool) {
	return k.stallName, k.stallAt, k.stalled
}

// tick records one dispatch for the stall watchdog. It runs with the
// clock already advanced to the dispatch time, so any real progress
// resets the count. On trip it stops the kernel; the current dispatch
// still completes (the next scheduling decision observes stopped).
func (k *Kernel) tick(name string) {
	if k.now != k.stallAt {
		k.stallAt, k.stallCount = k.now, 0
	}
	k.stallCount++
	k.stallName = name
	if k.stallCount > k.stallLimit {
		k.stalled = true
		k.stopped = true
	}
}

// next advances the simulation without transferring control: it runs due
// callback events inline and returns the next process to hand the single
// execution token to (with the clock advanced to its wake time), or nil
// when an end condition holds — queue drained (after the idle hook
// declined), Stop called, or the RunUntil bound reached.
//
// next may execute on the kernel goroutine or on a blocking process's
// goroutine (see block): whoever holds the token schedules. Exactly one
// goroutine runs at any instant, so kernel state needs no locking.
func (k *Kernel) next() *Proc {
	for {
		if k.stopped {
			return nil
		}
		var e *event
		if len(k.events) > 0 {
			e = k.events[0]
		}
		// The direct-wake sleeper competes with the heap head under the
		// same (time, seq) order an equivalent heap event would have.
		if p := k.dwProc; p != nil && (e == nil || k.dwAt < e.at || (k.dwAt == e.at && k.dwSeq < e.seq)) {
			if k.limit >= 0 && k.dwAt > k.limit {
				return nil
			}
			k.dwProc = nil
			if k.dwAt > k.now {
				k.now = k.dwAt
			}
			if k.stallLimit > 0 {
				k.tick(p.name)
			}
			return p
		}
		if e == nil {
			if k.idleFn != nil && k.idleFn() {
				continue
			}
			return nil
		}
		if k.limit >= 0 && e.at > k.limit {
			return nil
		}
		heap.Pop(&k.events)
		if e.at > k.now {
			k.now = e.at
		}
		switch {
		case e.proc != nil:
			p := e.proc
			k.recycle(e)
			if p.state == procDone {
				continue
			}
			if k.stallLimit > 0 {
				k.tick(p.name)
			}
			return p
		case e.waiter != nil:
			w := e.waiter
			k.recycle(e)
			if w.woken {
				continue
			}
			w.timed = true
			w.woken = true
			w.s.removeWaiter(w)
			if k.stallLimit > 0 {
				k.tick(w.p.name)
			}
			return w.p
		default:
			fn := e.fn
			k.recycle(e)
			if k.stallLimit > 0 {
				k.tick("(event)")
			}
			fn()
		}
	}
}

func (k *Kernel) loop() Time {
	p := k.next()
	if p == nil {
		return k.now
	}
	// Hand the token to the first runnable process. It travels from
	// process to process directly (block passes it on) and returns here
	// only when an end condition is reached.
	k.current = p
	p.wake <- struct{}{}
	<-k.yield
	if r := k.panicked; r != nil {
		k.panicked = nil
		panic(r)
	}
	return k.now
}

// Shutdown terminates all spawned processes that are still blocked in
// kernel primitives. It must be called after Run returns when the kernel
// will no longer be used; it unwinds process goroutines so they do not
// leak. Safe to call multiple times.
func (k *Kernel) Shutdown() {
	k.stopped = true
	for _, p := range k.procs {
		if p.state == procBlocked || p.state == procReady {
			p.kill = true
			k.resume(p)
		}
	}
	k.procs = nil
}

// LiveProcs returns the number of spawned processes that have not finished.
func (k *Kernel) LiveProcs() int { return k.nprocs }

// procState tracks where a process is in its lifecycle.
type procState int

const (
	procReady procState = iota
	procRunning
	procBlocked
	procDone
)

// killed is the panic value used to unwind process goroutines on Shutdown.
type killed struct{}

// Proc is a simulated process: a goroutine that may block in virtual time.
// All methods must be called from the process's own goroutine.
type Proc struct {
	k     *Kernel
	name  string
	wake  chan struct{}
	state procState
	kill  bool
	// timer is the embedded reusable event backing this process's
	// pending resume or wait timeout (a blocked process has at most
	// one). It falls back to the kernel pool in the rare moment it is
	// still queued (a canceled-timer race resolved by eager removal
	// makes that window empty in practice).
	timer event
	// waiter is the embedded reusable signal-wait record (a blocked
	// process waits on at most one signal).
	waiter signalWaiter
}

// Name returns the name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel the process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Spawn starts fn as a simulated process. The process begins running at
// the current virtual time (ordered after already-scheduled events at that
// time). Spawn may be called before Run or from inside processes/events.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, wake: make(chan struct{}), state: procReady}
	p.timer = event{k: k, index: -1, owned: true}
	k.procs = append(k.procs, p)
	k.nprocs++
	go func() {
		<-p.wake
		defer func() {
			p.state = procDone
			k.nprocs--
			if r := recover(); r != nil {
				if _, ok := r.(killed); !ok {
					// Marshal the panic to the driver goroutine: stop
					// the run, hand the token back, and let loop
					// re-raise it where callers can recover.
					if k.panicked == nil {
						k.panicked = r
					}
					k.stopped = true
				}
				// Unwound by Shutdown (or stopping after a panic): fall
				// through and pass the token on (next() returns nil
				// immediately — stopped is set).
			}
			// The dying process holds the token: keep scheduling until
			// it transfers to another process or an end condition hands
			// control back to the kernel goroutine.
			if q := k.next(); q != nil {
				k.current = q
				q.wake <- struct{}{}
			} else {
				k.yield <- struct{}{}
			}
		}()
		if p.kill {
			panic(killed{})
		}
		p.state = procRunning
		fn(p)
	}()
	k.schedResume(p, k.now)
	return p
}

// schedResume enqueues a direct process-resume event, reusing the
// process's embedded timer event when it is free.
func (k *Kernel) schedResume(p *Proc, at Time) {
	e := &p.timer
	if e.index >= 0 {
		e = k.alloc()
	}
	e.proc = p
	k.push(e, at)
}

// resume transfers control to p and waits for the token to come back.
// Used by Shutdown (kernel context) to unwind blocked processes.
func (k *Kernel) resume(p *Proc) {
	if p.state == procDone {
		return
	}
	prev := k.current
	k.current = p
	p.wake <- struct{}{}
	<-k.yield
	k.current = prev
}

// block suspends the calling process. Holding the token, it schedules
// inline: if its own wake is the next occurrence it simply continues —
// no goroutine switch at all — otherwise it hands the token to the next
// process (or back to the kernel goroutine on an end condition) and
// parks until its own wake is dispatched by a later token holder.
func (p *Proc) block() {
	p.state = procBlocked
	k := p.k
	if q := k.next(); q != p {
		if q != nil {
			k.current = q
			q.wake <- struct{}{}
		} else {
			k.yield <- struct{}{}
		}
		<-p.wake
	}
	if p.kill {
		panic(killed{})
	}
	p.state = procRunning
}

// debugForceHeap, when set (tests only), disables Sleep's fast paths so
// every sleep travels the general heap-event path — the reference
// discipline the fast paths must be indistinguishable from.
var debugForceHeap bool

// Sleep suspends the process for d virtual nanoseconds.
func (p *Proc) Sleep(d Time) {
	k := p.k
	if d < 0 {
		// Yield: reschedule at the same instant, after pending same-time
		// events, preserving determinism.
		d = 0
	}
	at := k.now + d
	if debugForceHeap {
		k.schedResume(p, at)
		p.block()
		return
	}
	// Fast path 1: nothing else can possibly run before this process
	// wakes (no event at or before the wake time — an event AT the wake
	// time was scheduled earlier and must fire first — and no other
	// direct sleeper, no stop, no RunUntil bound in between). Advance
	// the clock in place: no heap operation, no goroutine handoff.
	if !k.stopped && k.dwProc == nil &&
		(len(k.events) == 0 || k.events[0].at > at) &&
		(k.limit < 0 || at <= k.limit) {
		k.now = at
		// The watchdog must observe this path too: a lone process
		// yielding in place (d=0, empty heap) never reaches next(), so
		// it would otherwise spin forever below the watchdog's radar.
		// Once the trip sets stopped, the next Sleep falls through to
		// the blocking paths and the scheduler loop exits.
		if k.stallLimit > 0 {
			k.tick(p.name)
		}
		return
	}
	// Fast path 2: park in the kernel's single direct-wake slot,
	// skipping the heap. Order is identical to an event pushed now.
	if k.dwProc == nil {
		k.dwProc, k.dwAt, k.dwSeq = p, at, k.seq
		k.seq++
		p.block()
		return
	}
	k.schedResume(p, at)
	p.block()
}

// Yield gives other same-time events and processes a chance to run.
func (p *Proc) Yield() { p.Sleep(0) }

// Signal is a broadcast condition in virtual time. Waiters are woken by
// Broadcast in deterministic (wait-arrival) order.
type Signal struct {
	k       *Kernel
	name    string
	waiters []*signalWaiter
	seq     uint64
}

type signalWaiter struct {
	p     *Proc
	s     *Signal
	seq   uint64
	woken bool
	timed bool // true if the waiter timed out rather than being signaled
	timer Handle
}

// NewSignal creates a Signal owned by kernel k.
func (k *Kernel) NewSignal(name string) *Signal {
	return &Signal{k: k, name: name}
}

// removeWaiter unlinks w from the wait list (timeout path).
func (s *Signal) removeWaiter(w *signalWaiter) {
	for i, x := range s.waiters {
		if x == w {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			break
		}
	}
}

// Broadcast wakes every process currently waiting on s. Each waiter
// resumes via a scheduled occurrence at the current time, in the order
// they began waiting (the wait list is kept in arrival order).
func (s *Signal) Broadcast() {
	ws := s.waiters
	if len(ws) == 0 {
		return
	}
	s.waiters = s.waiters[:0]
	for _, w := range ws {
		w.woken = true
		w.timer.Cancel() // frees the embedded timer for the resume below
		s.k.schedResume(w.p, s.k.now)
	}
}

// Waiters reports how many processes are blocked on s.
func (s *Signal) Waiters() int { return len(s.waiters) }

// Wait blocks the process until the next Broadcast on s.
func (p *Proc) Wait(s *Signal) { p.WaitTimeout(s, Forever) }

// WaitTimeout blocks until Broadcast or until d elapses. It returns true
// if woken by Broadcast, false on timeout.
func (p *Proc) WaitTimeout(s *Signal, d Time) bool {
	w := &p.waiter
	w.p, w.s, w.seq = p, s, s.seq
	w.woken, w.timed = false, false
	w.timer = Handle{}
	s.seq++
	s.waiters = append(s.waiters, w)
	if d != Forever {
		k := s.k
		e := &p.timer
		if e.index >= 0 {
			e = k.alloc()
		}
		e.waiter = w
		k.push(e, k.now+d)
		w.timer = Handle{e: e, gen: e.gen}
	}
	p.block()
	return !w.timed
}

// Ring is an unbounded FIFO ring buffer. A long-lived ring neither
// re-allocates per element in steady state nor pins consumed elements
// (a popped slot is zeroed). The zero value is ready to use.
type Ring[T any] struct {
	items   []T // backing storage; len(items) is the capacity
	head, n int
}

// Len reports the number of buffered elements.
func (r *Ring[T]) Len() int { return r.n }

// Push appends v.
func (r *Ring[T]) Push(v T) {
	if r.n == len(r.items) {
		r.grow()
	}
	i := r.head + r.n
	if i >= len(r.items) {
		i -= len(r.items)
	}
	r.items[i] = v
	r.n++
}

// grow doubles the capacity, unwrapping the live elements.
func (r *Ring[T]) grow() {
	ncap := 2 * len(r.items)
	if ncap == 0 {
		ncap = 8
	}
	buf := make([]T, ncap)
	for i := 0; i < r.n; i++ {
		j := r.head + i
		if j >= len(r.items) {
			j -= len(r.items)
		}
		buf[i] = r.items[j]
	}
	r.items, r.head = buf, 0
}

// At returns the i-th oldest buffered element (0 = head) without
// removing it. Panics if i is out of range.
func (r *Ring[T]) At(i int) T {
	if i < 0 || i >= r.n {
		panic(fmt.Sprintf("sim: Ring.At(%d) with %d elements", i, r.n))
	}
	j := r.head + i
	if j >= len(r.items) {
		j -= len(r.items)
	}
	return r.items[j]
}

// Pop removes and returns the oldest element.
func (r *Ring[T]) Pop() (T, bool) {
	var zero T
	if r.n == 0 {
		return zero, false
	}
	v := r.items[r.head]
	r.items[r.head] = zero // release the consumed element
	r.head++
	if r.head == len(r.items) {
		r.head = 0
	}
	r.n--
	return v, true
}

// Queue is an unbounded FIFO of values delivered in virtual time. Any
// goroutine in kernel context may Put; processes Recv (blocking in virtual
// time). It is the basic mailbox for simulated message passing. Storage
// is a Ring, so a long-lived queue neither re-allocates per message nor
// pins consumed items.
type Queue[T any] struct {
	k     *Kernel
	name  string
	ring  Ring[T]
	avail *Signal
}

// NewQueue creates a queue owned by kernel k.
func NewQueue[T any](k *Kernel, name string) *Queue[T] {
	return &Queue[T]{k: k, name: name, avail: k.NewSignal(name + ".avail")}
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return q.ring.Len() }

// Put appends v and wakes any receivers.
func (q *Queue[T]) Put(v T) {
	q.ring.Push(v)
	q.avail.Broadcast()
}

// TryRecv removes and returns the head item without blocking.
func (q *Queue[T]) TryRecv() (T, bool) {
	return q.ring.Pop()
}

// Recv blocks the process until an item is available, then returns it.
func (q *Queue[T]) Recv(p *Proc) T {
	v, _ := q.RecvTimeout(p, Forever)
	return v
}

// RecvTimeout is Recv with a timeout; ok=false means the timeout elapsed.
func (q *Queue[T]) RecvTimeout(p *Proc, d Time) (T, bool) {
	var zero T
	deadline := Time(0)
	if d != Forever {
		deadline = q.k.now + d
	}
	for {
		if v, ok := q.TryRecv(); ok {
			return v, true
		}
		if d == Forever {
			p.Wait(q.avail)
			continue
		}
		remain := deadline - q.k.now
		if remain <= 0 {
			return zero, false
		}
		if !p.WaitTimeout(q.avail, remain) {
			return zero, false
		}
	}
}

// Drain removes and returns all queued items (a fresh slice; the queue's
// internal storage is never handed out).
func (q *Queue[T]) Drain() []T {
	if q.ring.Len() == 0 {
		return nil
	}
	out := make([]T, 0, q.ring.Len())
	for {
		v, ok := q.TryRecv()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}
