package netsim

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestFIFODelivery(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Shutdown()
	l := NewLink(k, Ethernet10("test"))
	var got []int
	k.Spawn("rx", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			m := l.Inbox.Recv(p)
			got = append(got, m.Payload.(int))
			if m.Seq != uint64(i) {
				t.Errorf("seq = %d, want %d", m.Seq, i)
			}
		}
	})
	k.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			l.Send(i, 100)
		}
	})
	k.Run()
	for i := 0; i < 5; i++ {
		if got[i] != i {
			t.Fatalf("got = %v, want in-order 0..4", got)
		}
	}
	if l.Stats.MessagesDelivered != 5 || l.Stats.MessagesSent != 5 {
		t.Errorf("stats = %+v", l.Stats)
	}
}

func TestTransferTimeModel(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Shutdown()
	l := NewLink(k, Ethernet10("test"))
	// 8 KiB payload: 8 data frames + 1 control frame (the paper's "9
	// messages for the data").
	if f := l.frames(8192); f != 9 {
		t.Errorf("frames(8192) = %d, want 9", f)
	}
	if f := l.frames(0); f != 1 {
		t.Errorf("frames(0) = %d, want 1", f)
	}
	if f := l.frames(1); f != 2 {
		t.Errorf("frames(1) = %d, want 2 (control + 1 data)", f)
	}
	// 8 KiB at 10 Mbps: (8192 + 9*26)*8 bits / 10 Mbps = 6.74 ms.
	tx := l.TxTime(8192)
	wantLo, wantHi := 6*sim.Millisecond, 8*sim.Millisecond
	if tx < wantLo || tx > wantHi {
		t.Errorf("TxTime(8192) = %v, want ~6.7ms", tx)
	}
	// ATM is far faster.
	atm := NewLink(k, ATM155("atm"))
	if atm.TxTime(8192) >= tx/10 {
		t.Errorf("ATM TxTime = %v not ≪ Ethernet %v", atm.TxTime(8192), tx)
	}
	// Full transfer adds setup + latency.
	if got := l.TransferTime(8192); got != l.cfg.SetupTime+tx+l.cfg.Latency {
		t.Errorf("TransferTime = %v", got)
	}
}

func TestSerializationQueuing(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Shutdown()
	l := NewLink(k, Ethernet10("test"))
	var arrivals []sim.Time
	k.Spawn("rx", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			m := l.Inbox.Recv(p)
			arrivals = append(arrivals, m.DeliveredAt)
		}
	})
	k.Spawn("tx", func(p *sim.Proc) {
		l.Send("a", 1024)
		l.Send("b", 1024) // must queue behind "a"
	})
	k.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	gap := arrivals[1] - arrivals[0]
	tx := l.TxTime(1024)
	if gap < tx {
		t.Errorf("second message arrived %v after first; want >= one tx time %v", gap, tx)
	}
}

func TestDisconnectSeversNewSendsOnly(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Shutdown()
	l := NewLink(k, Ethernet10("test"))
	l.Send("in-flight", 100)
	l.Disconnect()
	l.Send("after", 100)
	k.Run()
	// Fail-stop semantics: the message already on the wire arrives; the
	// send attempted after the disconnect is refused.
	if l.Inbox.Len() != 1 {
		t.Errorf("delivered = %d, want 1 (the in-flight message survives the sender)", l.Inbox.Len())
	}
	if !l.Down() {
		t.Error("Down() = false")
	}
	if l.Stats.MessagesDropped != 1 {
		t.Errorf("dropped = %d, want 1 (the post-disconnect send)", l.Stats.MessagesDropped)
	}
}

func TestDropNext(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Shutdown()
	l := NewLink(k, Ethernet10("test"))
	l.DropNext(1)
	l.Send("lost", 10)
	l.Send("kept", 10)
	k.Run()
	if l.Inbox.Len() != 1 {
		t.Fatalf("inbox len = %d, want 1", l.Inbox.Len())
	}
	m, _ := l.Inbox.TryRecv()
	if m.Payload.(string) != "kept" {
		t.Errorf("delivered %v, want kept", m.Payload)
	}
}

func TestDuplex(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Shutdown()
	d := NewDuplex(k, "pair", Ethernet10(""))
	d.AtoB.Send("to-b", 10)
	d.BtoA.Send("to-a", 10)
	k.Run()
	if d.AtoB.Inbox.Len() != 1 || d.BtoA.Inbox.Len() != 1 {
		t.Error("duplex delivery failed")
	}
	d.DisconnectAll()
	if !d.AtoB.Down() || !d.BtoA.Down() {
		t.Error("DisconnectAll incomplete")
	}
}

func TestLatencyOrderingAcrossSizes(t *testing.T) {
	// A huge message followed by a tiny one must still deliver in order
	// (FIFO serialization, no overtaking).
	k := sim.NewKernel(1)
	defer k.Shutdown()
	l := NewLink(k, Ethernet10("test"))
	var order []string
	k.Spawn("rx", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			order = append(order, l.Inbox.Recv(p).Payload.(string))
		}
	})
	l.Send("big", 64*1024)
	l.Send("small", 1)
	k.Run()
	if len(order) != 2 || order[0] != "big" || order[1] != "small" {
		t.Errorf("order = %v, want [big small]", order)
	}
}

// Property: regardless of message sizes, delivery preserves send order
// and never precedes the minimum physically possible arrival time.
func TestFIFOOrderProperty(t *testing.T) {
	prop := func(sizes []uint16) bool {
		k := sim.NewKernel(1)
		defer k.Shutdown()
		l := NewLink(k, Ethernet10("prop"))
		type rec struct {
			seq uint64
			at  sim.Time
		}
		var got []rec
		for i, sz := range sizes {
			l.Send(i, int(sz))
		}
		k.Spawn("rx", func(p *sim.Proc) {
			for range sizes {
				m := l.Inbox.Recv(p)
				got = append(got, rec{m.Seq, m.DeliveredAt})
			}
		})
		k.Run()
		if len(got) != len(sizes) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].seq != got[i-1].seq+1 || got[i].at < got[i-1].at {
				return false
			}
		}
		for i, r := range got {
			if r.at < l.Config().SetupTime+l.TxTime(int(sizes[i]))+l.Config().Latency {
				return false // arrived faster than physics allows
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDefaultsApplied(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Shutdown()
	l := NewLink(k, LinkConfig{Name: "raw"})
	c := l.Config()
	if c.BitsPerSecond != 10_000_000 || c.MTU != 1024 || c.PerMessageFrames != 1 {
		t.Errorf("defaults = %+v", c)
	}
}
