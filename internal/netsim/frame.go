package netsim

// Free-listed multi-record frames. A coalesced protocol message — one
// header plus a batch of records — is expensive to allocate per epoch on
// the replication hot path, so frames recycle through a pool: the sender
// takes one ref per receiver, each receiver releases after consuming,
// and the last release clears the frame and returns it to the free list.
//
// The pool is owned by one simulation kernel and is not safe for
// concurrent use (the sim is single-threaded by construction). A frame
// sent on a link that drops it (loss injection, disconnection) is never
// released by a receiver; its memory is simply reclaimed by the GC and
// the pool self-heals by allocating on the next Get — leak-free at the
// cost of one allocation per dropped frame.

// FramePool recycles frames with header type H and record type R.
type FramePool[H any, R any] struct {
	free []*Frame[H, R]
}

// Frame is one pooled multi-record message: an inline header and a batch
// of records, sized for the link timing model.
type Frame[H any, R any] struct {
	pool *FramePool[H, R]
	refs int32

	// Head is the frame header (protocol-defined).
	Head H
	// Recs is the record batch; the backing array is reused across
	// pool cycles, so steady-state appends allocate nothing.
	Recs []R
	// Size is the wire size in bytes for the link timing model.
	Size int
}

// Get returns a cleared frame with zero references (call Retain before
// fanning it out).
func (p *FramePool[H, R]) Get() *Frame[H, R] {
	if n := len(p.free); n > 0 {
		f := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return f
	}
	return &Frame[H, R]{pool: p}
}

// Retain adds n references: one per party that will call Release.
func (f *Frame[H, R]) Retain(n int32) { f.refs += n }

// Release drops one reference. The last release clears the header and
// records (dropping payload pointers so consumed data is not pinned) and
// returns the frame to its pool.
func (f *Frame[H, R]) Release() {
	f.refs--
	if f.refs > 0 {
		return
	}
	var zh H
	f.Head = zh
	var zr R
	for i := range f.Recs {
		f.Recs[i] = zr
	}
	f.Recs = f.Recs[:0]
	f.Size = 0
	if f.pool != nil {
		f.pool.free = append(f.pool.free, f)
	}
}

// Refs returns the live reference count (tests).
func (f *Frame[H, R]) Refs() int32 { return f.refs }

// FreeLen reports how many frames sit on the free list (tests).
func (p *FramePool[H, R]) FreeLen() int { return len(p.free) }
