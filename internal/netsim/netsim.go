// Package netsim models the point-to-point communication between the
// primary and backup hypervisors: FIFO message channels with a
// bandwidth/latency/segmentation cost model, in-order delivery, loss
// injection for testing, and byte accounting.
//
// The paper's prototype used a 10 Mbps Ethernet between the two HP
// 9000/720s and §4.3 models replacing it with a 155 Mbps ATM link;
// presets for both are provided. A disk-block transfer of 8 KiB over the
// Ethernet takes "9 messages for the data and 1 message for an
// acknowledgement" — with the default 1 KiB MTU an 8 KiB payload
// segments into 8 data frames plus a header frame, matching the paper.
package netsim

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"repro/internal/sim"
)

// Message is one hypervisor-to-hypervisor message in flight.
type Message struct {
	// Payload is the protocol-level content (owned by the replication
	// package; netsim treats it opaquely).
	Payload any
	// Size is the wire size in bytes used for the timing model.
	Size int
	// Seq is the link-assigned sequence number (FIFO order).
	Seq uint64
	// SentAt / DeliveredAt are virtual timestamps.
	SentAt      sim.Time
	DeliveredAt sim.Time
}

// LinkConfig describes one direction of a link.
type LinkConfig struct {
	// Name identifies the link in stats and rand-stream derivation.
	Name string
	// BitsPerSecond is the serialization bandwidth.
	BitsPerSecond int64
	// Latency is the propagation + interrupt-processing delay added
	// after serialization.
	Latency sim.Time
	// MTU is the maximum payload bytes per frame; larger messages are
	// segmented. Zero means 1024 (the prototype's messaging layer).
	MTU int
	// FrameOverhead is per-frame header bytes (counts against bandwidth).
	FrameOverhead int
	// PerMessageFrames is the number of extra control frames per message
	// (the paper's "+1 header"); default 1.
	PerMessageFrames int
	// SetupTime is per-message controller set-up cost paid by the sender
	// regardless of size (the paper notes I/O controller set-up time is
	// the same for Ethernet and ATM).
	SetupTime sim.Time
}

// withDefaults fills zero fields.
func (c LinkConfig) withDefaults() LinkConfig {
	if c.BitsPerSecond == 0 {
		c.BitsPerSecond = 10_000_000
	}
	if c.MTU == 0 {
		c.MTU = 1024
	}
	if c.FrameOverhead == 0 {
		c.FrameOverhead = 26 // Ethernet-ish framing
	}
	if c.PerMessageFrames == 0 {
		c.PerMessageFrames = 1
	}
	if c.Latency == 0 {
		c.Latency = 50 * sim.Microsecond
	}
	if c.SetupTime == 0 {
		c.SetupTime = 100 * sim.Microsecond
	}
	return c
}

// Ethernet10 returns the prototype's 10 Mbps Ethernet (one direction).
func Ethernet10(name string) LinkConfig {
	return LinkConfig{
		Name:          name,
		BitsPerSecond: 10_000_000,
		Latency:       50 * sim.Microsecond,
		MTU:           1024,
		FrameOverhead: 26,
		SetupTime:     100 * sim.Microsecond,
	}
}

// ATM155 returns §4.3's 155 Mbps ATM alternative (one direction). The
// paper assumes controller set-up time matches the Ethernet's.
func ATM155(name string) LinkConfig {
	return LinkConfig{
		Name:          name,
		BitsPerSecond: 155_000_000,
		Latency:       20 * sim.Microsecond,
		MTU:           1024,
		FrameOverhead: 30, // cell tax approximated as per-KB overhead
		SetupTime:     100 * sim.Microsecond,
	}
}

// Stats counts link activity.
type Stats struct {
	MessagesSent      uint64
	MessagesDelivered uint64
	MessagesDropped   uint64
	BytesSent         uint64
	Frames            uint64
}

// Link is one direction of a FIFO channel. Sends serialize: a message
// begins transmission when the link is free, and messages arrive in send
// order after serialization + latency.
type Link struct {
	k   *sim.Kernel
	cfg LinkConfig

	// Inbox receives delivered messages; the receiving hypervisor's
	// process blocks on it.
	Inbox *sim.Queue[Message]

	// OnDeliver, when set, consumes delivered messages instead of the
	// Inbox: for event-driven environment endpoints (the client
	// population's ingress into the shared NIC) that must not hold a
	// never-exiting receiver process alive in the simulation kernel.
	OnDeliver func(Message)

	// Stats accumulates counters.
	Stats Stats

	seq      uint64
	freeAt   sim.Time // when the transmitter finishes the current frame
	lastArr  sim.Time // newest scheduled arrival (keeps FIFO timing monotonic)
	down     bool     // true after Disconnect: sends vanish silently
	dropNext int      // drop the next N messages (loss injection)

	// inflight rings sent-but-undelivered messages, consumed in FIFO
	// order (serialization is in-order, so arrival times are
	// nondecreasing). deliver is the single reusable delivery callback,
	// so Send allocates neither a closure nor an event.
	inflight sim.Ring[Message]
	deliver  func()
}

// NewLink creates one direction of a channel owned by kernel k.
func NewLink(k *sim.Kernel, cfg LinkConfig) *Link {
	cfg = cfg.withDefaults()
	l := &Link{
		k:     k,
		cfg:   cfg,
		Inbox: sim.NewQueue[Message](k, cfg.Name+".inbox"),
	}
	l.deliver = l.deliverHead
	return l
}

// deliverHead completes delivery of the oldest in-flight message.
func (l *Link) deliverHead() {
	msg, ok := l.inflight.Pop()
	if !ok {
		panic("netsim: delivery event with no in-flight message")
	}
	// A downed link refuses NEW sends (see Send), but messages already
	// in flight still arrive: fail-stop halts the sender, it does not
	// reach out and destroy frames already on the wire. The replication
	// layer depends on this — the coordinator fans out to backups in
	// priority order, so with FIFO links and in-flight delivery the
	// promoted (lowest-priority-index) backup always holds a superset
	// of every other backup's received prefix, and its post-failover
	// stream reconciles the others. Dropping in-flight frames instead
	// lets a slow-linked backup miss an epoch a fast-linked peer saw,
	// and the two lines diverge irreconcilably.
	msg.DeliveredAt = l.k.Now()
	l.Stats.MessagesDelivered++
	if l.OnDeliver != nil {
		l.OnDeliver(msg)
		return
	}
	l.Inbox.Put(msg)
}

// Config returns the link configuration (defaults applied).
func (l *Link) Config() LinkConfig { return l.cfg }

// Frames returns how many frames a payload of n bytes occupies.
func (l *Link) frames(n int) int {
	f := l.cfg.PerMessageFrames
	for n > 0 {
		f++
		n -= l.cfg.MTU
	}
	if f == 0 {
		f = 1
	}
	return f
}

// TxTime returns the serialization time for a message of n payload bytes
// (excluding latency and setup).
func (l *Link) TxTime(n int) sim.Time {
	frames := l.frames(n)
	bits := int64(n+frames*l.cfg.FrameOverhead) * 8
	return sim.Time(bits * int64(sim.Second) / l.cfg.BitsPerSecond)
}

// TransferTime returns the full sender-observed cost of an n-byte message
// on an idle link: setup + serialization + latency.
func (l *Link) TransferTime(n int) sim.Time {
	return l.cfg.SetupTime + l.TxTime(n) + l.cfg.Latency
}

// Send enqueues a message of size bytes. It returns immediately (the
// sending hypervisor does not block on the wire); delivery is scheduled
// per the cost model. Messages sent while the link is Disconnected, or
// marked for loss injection, vanish without trace (the FIFO property is
// preserved for delivered messages).
func (l *Link) Send(payload any, size int) {
	l.Stats.MessagesSent++
	l.Stats.BytesSent += uint64(size)
	if l.down || l.dropNext > 0 {
		if l.dropNext > 0 {
			l.dropNext--
		}
		l.Stats.MessagesDropped++
		return
	}
	now := l.k.Now()
	start := now + l.cfg.SetupTime
	if l.freeAt > start {
		start = l.freeAt
	}
	tx := l.TxTime(size)
	l.freeAt = start + tx
	arrive := l.freeAt + l.cfg.Latency
	// Arrivals must be nondecreasing even if SetQuality lowered the
	// latency while earlier messages were still in flight: deliverHead
	// consumes the in-flight ring in FIFO order, so an arrival earlier
	// than a predecessor's would deliver the predecessor too soon.
	if arrive < l.lastArr {
		arrive = l.lastArr
	}
	l.lastArr = arrive
	msg := Message{Payload: payload, Size: size, Seq: l.seq, SentAt: now}
	l.seq++
	l.Stats.Frames += uint64(l.frames(size))
	l.inflight.Push(msg)
	l.k.At(arrive, l.deliver)
}

// Quality is a mid-run adjustment to a link's cost model. Zero fields
// leave the corresponding parameter unchanged.
type Quality struct {
	// BitsPerSecond replaces the serialization bandwidth.
	BitsPerSecond int64
	// Latency replaces the propagation delay.
	Latency sim.Time
	// MTU replaces the segmentation threshold.
	MTU int
	// DropNext marks the next N sends for loss (adds to any pending).
	DropNext int
}

// SetQuality degrades (or restores) the link mid-run: messages already
// serialized keep their scheduled delivery; future sends pay the new
// costs. FIFO order is preserved — a message sent after the change
// still arrives after everything sent before it, because transmission
// start is gated on freeAt.
func (l *Link) SetQuality(q Quality) {
	if q.BitsPerSecond > 0 {
		l.cfg.BitsPerSecond = q.BitsPerSecond
	}
	if q.Latency > 0 {
		l.cfg.Latency = q.Latency
	}
	if q.MTU > 0 {
		l.cfg.MTU = q.MTU
	}
	if q.DropNext > 0 {
		l.dropNext += q.DropNext
	}
}

// StateDigest returns a deterministic hash of the link's dynamic state:
// cost-model parameters (which SetQuality can change), transmitter and
// FIFO watermarks, counters, and the in-flight message metadata.
// Snapshot verification compares it between an original and a replayed
// run; payloads are opaque to netsim and are covered by the protocol
// layer's own capture.
func (l *Link) StateDigest() uint64 {
	h := fnv.New64a()
	put := func(vs ...uint64) {
		var b [8]byte
		for _, v := range vs {
			binary.LittleEndian.PutUint64(b[:], v)
			h.Write(b[:])
		}
	}
	put(uint64(l.cfg.BitsPerSecond), uint64(l.cfg.Latency), uint64(l.cfg.MTU))
	put(l.seq, uint64(l.freeAt), uint64(l.lastArr))
	flags := uint64(0)
	if l.down {
		flags |= 1
	}
	put(flags, uint64(l.dropNext))
	put(l.Stats.MessagesSent, l.Stats.MessagesDelivered, l.Stats.MessagesDropped,
		l.Stats.BytesSent, l.Stats.Frames)
	put(uint64(l.inflight.Len()))
	for i := 0; i < l.inflight.Len(); i++ {
		m := l.inflight.At(i)
		put(m.Seq, uint64(m.Size), uint64(m.SentAt))
	}
	return h.Sum64()
}

// Disconnect severs the link: in-flight and future messages are dropped.
// Used to model failstop of the sender (the paper's failure model: the
// backup sees no further messages from a failed primary).
func (l *Link) Disconnect() { l.down = true }

// Down reports whether the link has been disconnected.
func (l *Link) Down() bool { return l.down }

// DropNext makes the next n Sends vanish (loss injection for testing the
// revised protocol's lost-message window, §4.3).
func (l *Link) DropNext(n int) { l.dropNext += n }

// Duplex is a bidirectional channel between two hypervisors.
type Duplex struct {
	// AtoB carries messages from endpoint A to endpoint B; BtoA the
	// reverse.
	AtoB *Link
	BtoA *Link
}

// NewDuplex builds both directions with the same configuration (named
// name.ab / name.ba).
func NewDuplex(k *sim.Kernel, name string, cfg LinkConfig) *Duplex {
	ab, ba := cfg, cfg
	ab.Name = fmt.Sprintf("%s.ab", name)
	ba.Name = fmt.Sprintf("%s.ba", name)
	return &Duplex{AtoB: NewLink(k, ab), BtoA: NewLink(k, ba)}
}

// DisconnectAll severs both directions.
func (d *Duplex) DisconnectAll() {
	d.AtoB.Disconnect()
	d.BtoA.Disconnect()
}
