// Package perfmodel implements the analytic performance models of §4 of
// the paper and their paper-calibrated parameter sets, used to
// regenerate the predicted curves of Figures 2–4 and to sanity-check the
// simulator's measurements.
//
// Normalized performance is N'/N: the ratio of a workload's completion
// time under hypervisor-based replication to its completion time on bare
// hardware (§4: "a normalized performance of 1.25 indicates that under
// the prototype 25% is added to the completion time").
package perfmodel

import "math"

// CPUParams parameterizes NPC(EL) for the CPU-intensive workload (§4.1):
//
//	NPC(EL) = 1 + (nsim·hsim + (VI/EL)·hepoch + Cother(EL)) / RT
//
// All times in seconds.
type CPUParams struct {
	// RT is the bare-hardware time (paper: 8.8 s).
	RT float64
	// NSim is the number of instructions the hypervisor simulates
	// (derived from the paper's ".18 of the .24" remark: ≈ 104,760).
	NSim float64
	// HSim is the per-simulation cost (paper: 15.12 µs).
	HSim float64
	// VI is the virtual machine instruction count (paper: 4.2e8).
	VI float64
	// HEpoch is the epoch-boundary processing cost (paper: 443.59 µs,
	// dominated by the P2 acknowledgement round trip).
	HEpoch float64
	// COther is the residual communication delay (paper: 41 ms).
	COther float64
}

// PaperCPU returns §4.1's calibrated parameters. With these, the model
// reproduces the paper's quoted points: 22.24 @1K (measured 22.24),
// 6.50 @4K, 1.84 @32K, 1.24 @385K.
func PaperCPU() CPUParams {
	return CPUParams{
		RT:     8.8,
		NSim:   104760, // 0.18·RT / hsim
		HSim:   15.12e-6,
		VI:     4.2e8,
		HEpoch: 443.59e-6,
		COther: 41e-3,
	}
}

// NPC evaluates the CPU-intensive model at epoch length el (instructions).
func NPC(p CPUParams, el float64) float64 {
	if el <= 0 {
		return math.Inf(1)
	}
	return 1 + (p.NSim*p.HSim+p.VI/el*p.HEpoch+p.COther)/p.RT
}

// WithHEpoch returns a copy with a different epoch-boundary cost (used
// for the revised protocol and for Figure 4's link comparison).
func (p CPUParams) WithHEpoch(h float64) CPUParams {
	p.HEpoch = h
	return p
}

// IOParams parameterizes NPW/NPR(EL) for the I/O benchmarks (§4.2):
//
//	NP(EL) = nOps · (cpu(EL) + xfer + delay(EL)) / RT
//	cpu(EL)   = cpuInstr·tInstr + nPriv·hsim + (cpuInstr/EL)·hepoch
//	delay(EL) = (EL·tInstr + hepoch)/2 + dataXfer
//
// cpu(EL) is the per-operation computation (block selection and I/O
// initiation) inflated by instruction simulation and by the epoch
// boundaries it spans; delay(EL) is the expected wait from the device's
// completion interrupt to its delivery at the next epoch boundary, plus
// (for reads) the time to forward the data to the backup.
type IOParams struct {
	// RT is the bare-hardware time for the whole benchmark (s).
	RT float64
	// NOps is the number of I/O operations (paper: 2048 writes, 1729
	// effective reads).
	NOps float64
	// Xfer is the device service time per operation (26 ms write,
	// 24.2 ms read).
	Xfer float64
	// CPUInstr is the per-op computation phase in instructions.
	CPUInstr float64
	// NPriv is the per-op count of hypervisor-simulated instructions.
	NPriv float64
	// TInstr is the base instruction time (20 ns).
	TInstr float64
	// HSim/HEpoch as in CPUParams.
	HSim, HEpoch float64
	// DataXfer is the per-op time to ship environment data to the
	// backup (reads: an 8 KiB block over the link; writes: 0).
	DataXfer float64
}

// PaperWrite returns §4.2's calibrated write-benchmark parameters.
// Model values: 1.86 @1K, 1.73 @2K, 1.67 @4K, 1.64 @8K — within 0.02 of
// the paper's Table 1 (1.87/1.71/1.67/1.64).
func PaperWrite() IOParams {
	cpuInstr := 15500.0
	xfer := 26e-3
	nops := 2048.0
	return IOParams{
		RT:       nops * (cpuInstr*20e-9 + xfer),
		NOps:     nops,
		Xfer:     xfer,
		CPUInstr: cpuInstr,
		NPriv:    1030,
		TInstr:   20e-9,
		HSim:     15.12e-6,
		HEpoch:   443.59e-6,
		DataXfer: 0,
	}
}

// PaperRead returns §4.2's calibrated read-benchmark parameters. The
// extra DataXfer is the 8 KiB block shipped to the backup over the
// 10 Mbps Ethernet ("9 messages for the data and 1 for an
// acknowledgement"), which is also why a replicated read takes 33.4 ms
// against 24.2 ms bare. Model values: 2.24 @1K, 2.08 @2K, 2.01 @4K,
// 2.00 @8K versus the paper's 2.32/2.10/2.03/1.98.
func PaperRead() IOParams {
	cpuInstr := 15500.0
	xfer := 24.2e-3
	nops := 1729.0
	return IOParams{
		RT:       nops * (cpuInstr*20e-9 + xfer),
		NOps:     nops,
		Xfer:     xfer,
		CPUInstr: cpuInstr,
		NPriv:    1030,
		TInstr:   20e-9,
		HSim:     15.12e-6,
		HEpoch:   443.59e-6,
		DataXfer: 7.74e-3,
	}
}

// NPIO evaluates the I/O model at epoch length el.
func NPIO(p IOParams, el float64) float64 {
	if el <= 0 {
		return math.Inf(1)
	}
	cpu := p.CPUInstr*p.TInstr + p.NPriv*p.HSim + p.CPUInstr/el*p.HEpoch
	delay := (el*p.TInstr+p.HEpoch)/2 + p.DataXfer
	return p.NOps * (cpu + p.Xfer + delay) / p.RT
}

// WithHEpoch returns a copy with a different boundary cost.
func (p IOParams) WithHEpoch(h float64) IOParams {
	p.HEpoch = h
	return p
}

// LinkModel describes a communication link for the Figure 4 analysis:
// the epoch-boundary cost decomposes into a link-independent part
// (hypervisor processing and I/O controller set-up, which the paper
// assumes equal for Ethernet and ATM) plus two message serializations
// (the [Tme]/ack round trip).
type LinkModel struct {
	Name string
	// BitsPerSecond is the serialization bandwidth.
	BitsPerSecond float64
	// FrameBytes is the per-message wire size including framing.
	FrameBytes float64
	// FixedBoundary is the link-independent boundary cost.
	FixedBoundary float64
}

// Ethernet10Model matches the prototype: chosen so the composed hepoch
// equals the measured 443.59 µs.
func Ethernet10Model() LinkModel {
	return LinkModel{Name: "10 Mbps Ethernet", BitsPerSecond: 10e6, FrameBytes: 87.5, FixedBoundary: 303.6e-6}
}

// ATM155Model is §4.3's alternative.
func ATM155Model() LinkModel {
	return LinkModel{Name: "155 Mbps ATM", BitsPerSecond: 155e6, FrameBytes: 87.5, FixedBoundary: 303.6e-6}
}

// HEpoch composes the model's epoch-boundary cost for the link.
func (l LinkModel) HEpoch() float64 {
	tx := l.FrameBytes * 8 / l.BitsPerSecond
	return l.FixedBoundary + 2*tx
}

// Point is one (epoch length, normalized performance) sample.
type Point struct {
	EL float64
	NP float64
}

// Series samples a model over an epoch-length grid.
func Series(f func(el float64) float64, els []float64) []Point {
	out := make([]Point, len(els))
	for i, el := range els {
		out[i] = Point{EL: el, NP: f(el)}
	}
	return out
}

// StandardGrid returns the paper's figure grid: 1K..32K plus the
// measured points' epoch lengths.
func StandardGrid() []float64 {
	var els []float64
	for el := 1024.0; el <= 32768; el += 1024 {
		els = append(els, el)
	}
	return els
}

// MeasuredGrid returns the epoch lengths the paper measured: 1K, 2K, 4K,
// 8K instructions.
func MeasuredGrid() []float64 { return []float64{1024, 2048, 4096, 8192} }

// HPUXMaxEpoch is the paper's practical upper bound for epoch length:
// HP-UX's clock maintenance tolerates at most 385,000 instructions.
const HPUXMaxEpoch = 385000

// Figure2 returns the predicted NPC curve (Old protocol, Ethernet) and
// the endpoint at HP-UX's maximum epoch length (the paper's 1.24).
func Figure2() (curve []Point, endpoint Point) {
	p := PaperCPU()
	f := func(el float64) float64 { return NPC(p, el) }
	return Series(f, StandardGrid()), Point{EL: HPUXMaxEpoch, NP: NPC(p, HPUXMaxEpoch)}
}

// Figure3 returns the predicted NPW and NPR curves.
func Figure3() (write, read []Point) {
	w, r := PaperWrite(), PaperRead()
	write = Series(func(el float64) float64 { return NPIO(w, el) }, StandardGrid())
	read = Series(func(el float64) float64 { return NPIO(r, el) }, StandardGrid())
	return write, read
}

// Figure4 returns the predicted CPU-intensive curves for the Ethernet
// and ATM links, plus the HP-UX endpoint on ATM (the paper's 1.66 at
// 32K is the comparison headline).
func Figure4() (ethernet, atm []Point, atmEnd Point) {
	base := PaperCPU()
	eth := base.WithHEpoch(Ethernet10Model().HEpoch())
	am := base.WithHEpoch(ATM155Model().HEpoch())
	ethernet = Series(func(el float64) float64 { return NPC(eth, el) }, StandardGrid())
	atm = Series(func(el float64) float64 { return NPC(am, el) }, StandardGrid())
	return ethernet, atm, Point{EL: HPUXMaxEpoch, NP: NPC(am, HPUXMaxEpoch)}
}

// Table1Paper returns the paper's Table 1 (normalized performance of the
// original and revised protocols), for side-by-side reporting.
func Table1Paper() map[string]map[int][2]float64 {
	return map[string]map[int][2]float64{
		"cpu": {
			1024: {22.24, 11.67}, 2048: {11.83, 4.49},
			4096: {6.50, 3.21}, 8192: {3.83, 2.20},
		},
		"write": {
			1024: {1.87, 1.70}, 2048: {1.71, 1.66},
			4096: {1.67, 1.66}, 8192: {1.64, 1.64},
		},
		"read": {
			1024: {2.32, 1.92}, 2048: {2.10, 1.76},
			4096: {2.03, 1.72}, 8192: {1.98, 1.70},
		},
	}
}

// HEpochNew is the revised protocol's approximate boundary cost (no
// acknowledgement wait; two controller set-ups plus local processing),
// fitted from Table 1's "New" CPU column: ≈ 180 µs.
const HEpochNew = 180e-6
