package perfmodel

import (
	"math"
	"testing"
	"testing/quick"
)

// close reports |a-b| <= tol.
func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNPCMatchesPaperFigure2(t *testing.T) {
	p := PaperCPU()
	// Paper's quoted values (measured points agree with the model).
	cases := []struct {
		el   float64
		want float64
		tol  float64
	}{
		{1024, 22.24, 0.5},
		{2048, 11.83, 0.35},
		{4096, 6.50, 0.25},
		{8192, 3.83, 0.15},
		{32768, 1.84, 0.05},
		{385000, 1.24, 0.01},
	}
	for _, c := range cases {
		got := NPC(p, c.el)
		if !close(got, c.want, c.tol) {
			t.Errorf("NPC(%.0f) = %.3f, paper %.2f (tol %.2f)", c.el, got, c.want, c.tol)
		}
	}
}

func TestNPCSimulationShare(t *testing.T) {
	// §4.1: at 385K the simulation of instructions accounts for .18 of
	// the .24 overhead.
	p := PaperCPU()
	simShare := p.NSim * p.HSim / p.RT
	if !close(simShare, 0.18, 0.005) {
		t.Errorf("simulation share = %.3f, paper 0.18", simShare)
	}
}

func TestNPWMatchesPaperTable1(t *testing.T) {
	w := PaperWrite()
	cases := map[float64]float64{1024: 1.87, 2048: 1.71, 4096: 1.67, 8192: 1.64}
	for el, want := range cases {
		got := NPIO(w, el)
		if !close(got, want, 0.03) {
			t.Errorf("NPW(%.0f) = %.3f, paper %.2f", el, got, want)
		}
	}
}

func TestNPRMatchesPaperTable1(t *testing.T) {
	r := PaperRead()
	cases := map[float64]float64{1024: 2.32, 2048: 2.10, 4096: 2.03, 8192: 1.98}
	for el, want := range cases {
		got := NPIO(r, el)
		if !close(got, want, 0.09) { // paper: "within 1.9%"
			t.Errorf("NPR(%.0f) = %.3f, paper %.2f", el, got, want)
		}
	}
}

func TestReadSlowerThanWrite(t *testing.T) {
	// Figure 3: the read curve lies above the write curve (data
	// forwarding to the backup).
	w, r := PaperWrite(), PaperRead()
	for _, el := range StandardGrid() {
		if NPIO(r, el) <= NPIO(w, el) {
			t.Errorf("at EL=%.0f read NP %.3f <= write NP %.3f", el, NPIO(r, el), NPIO(w, el))
		}
	}
}

func TestIOUpwardDriftAtLargeEL(t *testing.T) {
	// Figure 3's "slight upward drift": delay(EL) eventually outweighs
	// the shrinking boundary cost.
	w := PaperWrite()
	min := math.Inf(1)
	minEL := 0.0
	for el := 1024.0; el <= 262144; el *= 2 {
		v := NPIO(w, el)
		if v < min {
			min, minEL = v, el
		}
	}
	if NPIO(w, 262144) <= min {
		t.Error("no upward drift at large epoch lengths")
	}
	if minEL <= 2048 {
		t.Errorf("minimum at EL=%.0f, expected beyond the measured range", minEL)
	}
}

func TestFigure4ATMBeatsEthernet(t *testing.T) {
	eth, atm, _ := Figure4()
	for i := range eth {
		if atm[i].NP >= eth[i].NP {
			t.Errorf("at EL=%.0f ATM %.3f >= Ethernet %.3f", eth[i].EL, atm[i].NP, eth[i].NP)
		}
	}
	// The paper's 32K comparison: Ethernet 1.84 vs ATM 1.66.
	at32 := func(pts []Point) float64 {
		for _, p := range pts {
			if p.EL == 32768 {
				return p.NP
			}
		}
		t.Fatal("32K not in grid")
		return 0
	}
	if got := at32(eth); !close(got, 1.84, 0.05) {
		t.Errorf("Ethernet @32K = %.3f, paper 1.84", got)
	}
	if got := at32(atm); !close(got, 1.66, 0.05) {
		t.Errorf("ATM @32K = %.3f, paper 1.66", got)
	}
}

func TestEthernetModelComposesToMeasuredHEpoch(t *testing.T) {
	if got := Ethernet10Model().HEpoch(); !close(got, 443.59e-6, 5e-6) {
		t.Errorf("composed hepoch = %.2f us, want 443.59", got*1e6)
	}
}

func TestFigure2Endpoint(t *testing.T) {
	_, end := Figure2()
	if end.EL != HPUXMaxEpoch {
		t.Errorf("endpoint EL = %.0f", end.EL)
	}
	if !close(end.NP, 1.24, 0.01) {
		t.Errorf("endpoint NP = %.3f, paper 1.24", end.NP)
	}
}

func TestNewProtocolModelBeatsOld(t *testing.T) {
	p := PaperCPU()
	pn := p.WithHEpoch(HEpochNew)
	for _, el := range MeasuredGrid() {
		if NPC(pn, el) >= NPC(p, el) {
			t.Errorf("at EL=%.0f new %.2f >= old %.2f", el, NPC(pn, el), NPC(p, el))
		}
	}
	// Rough agreement with Table 1's New column at 1K (11.67).
	if got := NPC(pn, 1024); !close(got, 11.67, 2.5) {
		t.Errorf("new @1K = %.2f, paper 11.67", got)
	}
}

// Property: NPC is monotonically decreasing in EL and bounded below by
// the non-boundary overheads.
func TestNPCMonotoneProperty(t *testing.T) {
	p := PaperCPU()
	floor := 1 + (p.NSim*p.HSim+p.COther)/p.RT
	prop := func(raw uint16) bool {
		el := float64(raw%60000) + 64
		v := NPC(p, el)
		return v > floor && v >= NPC(p, el+64)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: NPIO decreases with EL while the boundary term dominates,
// i.e. for EL below the analytic minimum.
func TestNPIOShapeProperty(t *testing.T) {
	w := PaperWrite()
	// d/dEL = 0 at EL* = sqrt(2·cpuInstr·hepoch / tInstr). Sample
	// strictly below 0.9·EL* so that el*1.01 stays on the decreasing
	// branch.
	elStar := math.Sqrt(2 * w.CPUInstr * w.HEpoch / w.TInstr)
	hi := 0.9 * elStar
	prop := func(raw uint16) bool {
		el := 64 + float64(raw)*(hi-64)/65535
		return NPIO(w, el) >= NPIO(w, el*1.01)-1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSeriesAndGrids(t *testing.T) {
	g := StandardGrid()
	if g[0] != 1024 || g[len(g)-1] != 32768 {
		t.Errorf("grid ends = %v, %v", g[0], g[len(g)-1])
	}
	pts := Series(func(el float64) float64 { return el * 2 }, []float64{1, 2})
	if pts[0].NP != 2 || pts[1].NP != 4 {
		t.Error("Series mapping wrong")
	}
	if len(MeasuredGrid()) != 4 {
		t.Error("measured grid should have 4 entries")
	}
}

func TestTable1PaperComplete(t *testing.T) {
	tab := Table1Paper()
	for _, wl := range []string{"cpu", "write", "read"} {
		rows, ok := tab[wl]
		if !ok {
			t.Fatalf("workload %s missing", wl)
		}
		for _, el := range []int{1024, 2048, 4096, 8192} {
			v, ok := rows[el]
			if !ok {
				t.Fatalf("%s @%d missing", wl, el)
			}
			if v[1] > v[0] {
				t.Errorf("%s @%d: new (%v) worse than old (%v)", wl, el, v[1], v[0])
			}
		}
	}
}

func TestDegenerateEL(t *testing.T) {
	if !math.IsInf(NPC(PaperCPU(), 0), 1) {
		t.Error("NPC(0) should be +Inf")
	}
	if !math.IsInf(NPIO(PaperWrite(), -1), 1) {
		t.Error("NPIO(-1) should be +Inf")
	}
}
