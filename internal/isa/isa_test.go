package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	if RegSP.String() != "r30" {
		t.Errorf("RegSP = %s, want r30", RegSP)
	}
	if RegZero.String() != "r0" {
		t.Errorf("RegZero = %s, want r0", RegZero)
	}
}

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		OpADD: "add", OpMFTOD: "mftod", OpITLBI: "itlbi", OpBGEU: "bgeu",
		OpInvalid: "invalid", Op(63): "op63",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", uint8(op), got, want)
		}
	}
}

func TestOpValid(t *testing.T) {
	if OpInvalid.Valid() {
		t.Error("OpInvalid should not be Valid")
	}
	if !OpNOP.Valid() {
		t.Error("OpNOP should be Valid")
	}
	if Op(63).Valid() {
		t.Error("Op(63) should not be Valid")
	}
}

func TestClassify(t *testing.T) {
	cases := map[Op]Class{
		OpADD:   ClassOrdinary,
		OpLDW:   ClassOrdinary,
		OpBL:    ClassOrdinary,
		OpPROBE: ClassOrdinary,
		OpMFCTL: ClassPrivileged,
		OpRFI:   ClassPrivileged,
		OpITLBI: ClassPrivileged,
		OpMFTOD: ClassEnvironment,
		OpWFI:   ClassEnvironment,
	}
	for op, want := range cases {
		if got := Classify(op); got != want {
			t.Errorf("Classify(%s) = %s, want %s", op, got, want)
		}
	}
}

func TestClassString(t *testing.T) {
	if ClassOrdinary.String() != "ordinary" || ClassPrivileged.String() != "privileged" ||
		ClassEnvironment.String() != "environment" {
		t.Error("Class.String values wrong")
	}
	if Class(9).String() != "class9" {
		t.Error("unknown class String wrong")
	}
}

func TestPrivileged(t *testing.T) {
	priv := []Op{OpMFCTL, OpMTCTL, OpRFI, OpHALT, OpWFI, OpITLBI, OpPTLB, OpDIAG, OpMFTOD}
	for _, op := range priv {
		if !Privileged(op) {
			t.Errorf("Privileged(%s) = false, want true", op)
		}
	}
	unpriv := []Op{OpADD, OpLDW, OpSTW, OpBL, OpBV, OpBREAK, OpGATE, OpPROBE, OpNOP}
	for _, op := range unpriv {
		if Privileged(op) {
			t.Errorf("Privileged(%s) = true, want false", op)
		}
	}
}

func TestCRNames(t *testing.T) {
	if CRRCTR.String() != "rctr" || CRTOD.String() != "tod" {
		t.Error("CR String names wrong")
	}
	if CR(5).String() != "cr5" {
		t.Errorf("CR(5) = %s, want cr5", CR(5))
	}
	if c, ok := CRByName("itmr"); !ok || c != CRITMR {
		t.Errorf("CRByName(itmr) = %v, %v", c, ok)
	}
	if c, ok := CRByName("cr7"); !ok || c != CR(7) {
		t.Errorf("CRByName(cr7) = %v, %v", c, ok)
	}
	if _, ok := CRByName("cr99"); ok {
		t.Error("CRByName(cr99) should fail")
	}
	if _, ok := CRByName("bogus"); ok {
		t.Error("CRByName(bogus) should fail")
	}
}

func TestTrapString(t *testing.T) {
	if TrapRecovery.String() != "recovery" || TrapExtIntr.String() != "extintr" {
		t.Error("Trap String names wrong")
	}
	if Trap(99).String() != "trap99" {
		t.Error("unknown trap String wrong")
	}
}

func TestTrapSynchronous(t *testing.T) {
	for _, tr := range []Trap{TrapITimer, TrapExtIntr, TrapRecovery} {
		if tr.Synchronous() {
			t.Errorf("%s should be asynchronous", tr)
		}
	}
	for _, tr := range []Trap{TrapIllegal, TrapPriv, TrapDTLBMiss, TrapBreak} {
		if !tr.Synchronous() {
			t.Errorf("%s should be synchronous", tr)
		}
	}
}

func TestMakeTLBFlags(t *testing.T) {
	f := MakeTLBFlags(true, false, true, 3)
	if f&TLBRead == 0 || f&TLBWrite != 0 || f&TLBExec == 0 {
		t.Errorf("flags = %x", f)
	}
	if (f&TLBPLMask)>>TLBPLShift != 3 {
		t.Errorf("PL field = %d, want 3", (f&TLBPLMask)>>TLBPLShift)
	}
}

// sample instructions covering every opcode and representative operands.
func sampleInstructions() []Inst {
	return []Inst{
		{Op: OpADD, Rd: 1, R1: 2, R2: 3},
		{Op: OpSUB, Rd: 31, R1: 30, R2: 29},
		{Op: OpAND, Rd: 4, R1: 5, R2: 6},
		{Op: OpOR, Rd: 7, R1: 8, R2: 9},
		{Op: OpXOR, Rd: 10, R1: 11, R2: 12},
		{Op: OpSLL, Rd: 13, R1: 14, R2: 15},
		{Op: OpSRL, Rd: 16, R1: 17, R2: 18},
		{Op: OpSRA, Rd: 19, R1: 20, R2: 21},
		{Op: OpSLT, Rd: 22, R1: 23, R2: 24},
		{Op: OpSLTU, Rd: 25, R1: 26, R2: 27},
		{Op: OpMUL, Rd: 1, R1: 1, R2: 1},
		{Op: OpDIV, Rd: 2, R1: 3, R2: 4},
		{Op: OpREM, Rd: 5, R1: 6, R2: 7},
		{Op: OpADDI, Rd: 1, R1: 2, Imm: -32768},
		{Op: OpADDI, Rd: 1, R1: 2, Imm: 32767},
		{Op: OpANDI, Rd: 3, R1: 4, Imm: 65535},
		{Op: OpORI, Rd: 5, R1: 6, Imm: 0x7FF},
		{Op: OpXORI, Rd: 7, R1: 8, Imm: 1},
		{Op: OpSLTI, Rd: 9, R1: 10, Imm: -5},
		{Op: OpSLTIU, Rd: 11, R1: 12, Imm: 100},
		{Op: OpSLLI, Rd: 13, R1: 14, Imm: 31},
		{Op: OpSRLI, Rd: 15, R1: 16, Imm: 0},
		{Op: OpSRAI, Rd: 17, R1: 18, Imm: 16},
		{Op: OpLUI, Rd: 19, Imm: 0x1FFFFF},
		{Op: OpLUI, Rd: 19, Imm: 0},
		{Op: OpLDW, Rd: 1, R1: 30, Imm: -4},
		{Op: OpLDH, Rd: 2, R1: 29, Imm: 2},
		{Op: OpLDB, Rd: 3, R1: 28, Imm: 1023},
		{Op: OpSTW, Rd: 4, R1: 30, Imm: 8},
		{Op: OpSTH, Rd: 5, R1: 27, Imm: -2},
		{Op: OpSTB, Rd: 6, R1: 26, Imm: 0},
		{Op: OpBEQ, R1: 1, R2: 2, Imm: -100},
		{Op: OpBNE, R1: 3, R2: 4, Imm: 100},
		{Op: OpBLT, R1: 5, R2: 6, Imm: 0},
		{Op: OpBGE, R1: 7, R2: 8, Imm: 32767},
		{Op: OpBLTU, R1: 9, R2: 10, Imm: -32768},
		{Op: OpBGEU, R1: 11, R2: 12, Imm: 1},
		{Op: OpBL, Rd: 2, Imm: -1048576},
		{Op: OpBL, Rd: 2, Imm: 1048575},
		{Op: OpBV, R1: 2},
		{Op: OpMFCTL, Rd: 1, Imm: int32(CRTOD)},
		{Op: OpMTCTL, R1: 2, Imm: int32(CRITMR)},
		{Op: OpRFI},
		{Op: OpBREAK, Imm: 42},
		{Op: OpHALT},
		{Op: OpWFI},
		{Op: OpITLBI, R1: 1, R2: 2},
		{Op: OpPTLB},
		{Op: OpPROBE, Rd: 1, R1: 2, Imm: 1},
		{Op: OpGATE, Rd: 2, Imm: 16},
		{Op: OpDIAG, Imm: 7},
		{Op: OpMFTOD, Rd: 28},
		{Op: OpNOP},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, in := range sampleInstructions() {
		w, err := Encode(in)
		if err != nil {
			t.Errorf("Encode(%v): %v", in, err)
			continue
		}
		out, err := Decode(w)
		if err != nil {
			t.Errorf("Decode(Encode(%v)) = %08x: %v", in, w, err)
			continue
		}
		if out != in {
			t.Errorf("roundtrip %v -> %08x -> %v", in, w, out)
		}
	}
}

func TestEveryOpcodeCovered(t *testing.T) {
	seen := map[Op]bool{}
	for _, in := range sampleInstructions() {
		seen[in.Op] = true
	}
	for op := OpADD; op < opMax; op++ {
		if op.Valid() && !seen[op] {
			t.Errorf("opcode %s not covered by sampleInstructions", op)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	bad := []Inst{
		{Op: OpInvalid},
		{Op: Op(63)},
		{Op: OpADDI, Rd: 1, R1: 2, Imm: 40000},  // imm16 overflow
		{Op: OpADDI, Rd: 1, R1: 2, Imm: -40000}, // imm16 underflow
		{Op: OpANDI, Rd: 1, R1: 2, Imm: -1},     // negative unsigned
		{Op: OpSLLI, Rd: 1, R1: 2, Imm: 32},     // shift > 31
		{Op: OpLUI, Rd: 1, Imm: 1 << 21},        // imm21 overflow
		{Op: OpBL, Rd: 2, Imm: 1 << 20},         // signed imm21 overflow
		{Op: OpMFCTL, Rd: 1, Imm: 40},           // CR out of range
		{Op: OpRFI, Imm: 3},                     // unused imm
		{Op: OpRFI, Rd: 5},                      // unused register
		{Op: OpNOP, R1: 1},                      // unused register
		{Op: OpBV, R1: 1, Rd: 2},                // Rd unused for BV
	}
	for _, in := range bad {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%+v) succeeded, want error", in)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := []uint32{
		0x00000000,                // opcode 0 (invalid)
		uint32(63) << 26,          // undefined opcode
		uint32(OpRFI)<<26 | 1,     // unused bits set
		uint32(OpRFI)<<26 | 5<<21, // unused A field
		uint32(OpNOP)<<26 | 1<<16, // unused B field
		uint32(OpSLLI)<<26 | 32,   // shift amount 32
		uint32(OpMFCTL)<<26 | 40,  // CR 40 out of range
		uint32(OpITLBI)<<26 | 7,   // unused low bits under C slot
	}
	for _, w := range bad {
		if _, err := Decode(w); err == nil {
			t.Errorf("Decode(%08x) succeeded, want error", w)
		}
	}
}

func TestMustEncodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEncode did not panic on invalid instruction")
		}
	}()
	MustEncode(Inst{Op: OpInvalid})
}

// Property: Encode∘Decode is the identity on all valid encodings generated
// by Encode from random well-formed instructions.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randInst := func() Inst {
		for {
			op := Op(1 + rng.Intn(int(opMax)-1))
			if !op.Valid() {
				continue
			}
			sp := specs[op]
			in := Inst{Op: op}
			if branchUsesAB(op) {
				in.R1 = Reg(rng.Intn(NumRegs))
				in.R2 = Reg(rng.Intn(NumRegs))
			} else {
				if sp.a {
					in.Rd = Reg(rng.Intn(NumRegs))
				}
				if sp.b {
					in.R1 = Reg(rng.Intn(NumRegs))
				}
				if sp.c {
					in.R2 = Reg(rng.Intn(NumRegs))
				}
			}
			switch sp.imm {
			case immS16:
				in.Imm = int32(rng.Intn(1<<16)) - 1<<15
			case immU16:
				in.Imm = int32(rng.Intn(1 << 16))
			case immSh5:
				in.Imm = int32(rng.Intn(32))
			case immU21:
				in.Imm = int32(rng.Intn(1 << 21))
			case immS21:
				in.Imm = int32(rng.Intn(1<<21)) - 1<<20
			case immCR:
				in.Imm = int32(rng.Intn(NumCRs))
			}
			return in
		}
	}
	for i := 0; i < 5000; i++ {
		in := randInst()
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%+v): %v", in, err)
		}
		out, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(%08x) from %+v: %v", w, in, err)
		}
		if out != in {
			t.Fatalf("roundtrip %+v -> %08x -> %+v", in, w, out)
		}
	}
}

// Property: Decode never accepts two distinct words that decode to the
// same instruction (encoding is injective over decodable words).
func TestDecodeInjectiveProperty(t *testing.T) {
	prop := func(w uint32) bool {
		in, err := Decode(w)
		if err != nil {
			return true // undecodable words are out of scope
		}
		w2, err := Encode(in)
		if err != nil {
			return false // decodable word must re-encode
		}
		return w2 == w
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpADD, Rd: 1, R1: 2, R2: 3}, "add r1, r2, r3"},
		{Inst{Op: OpADDI, Rd: 1, R1: 2, Imm: -5}, "addi r1, r2, -5"},
		{Inst{Op: OpLUI, Rd: 4, Imm: 100}, "lui r4, 100"},
		{Inst{Op: OpLDW, Rd: 1, R1: 30, Imm: 8}, "ldw r1, 8(r30)"},
		{Inst{Op: OpSTW, Rd: 2, R1: 30, Imm: -4}, "stw r2, -4(r30)"},
		{Inst{Op: OpBEQ, R1: 1, R2: 2, Imm: 10}, "beq r1, r2, 10"},
		{Inst{Op: OpBL, Rd: 2, Imm: -3}, "bl r2, -3"},
		{Inst{Op: OpBV, R1: 2}, "bv r2"},
		{Inst{Op: OpMFCTL, Rd: 5, Imm: int32(CRTOD)}, "mfctl r5, tod"},
		{Inst{Op: OpMTCTL, R1: 6, Imm: int32(CRITMR)}, "mtctl itmr, r6"},
		{Inst{Op: OpPROBE, Rd: 1, R1: 2, Imm: 1}, "probe r1, r2, 1"},
		{Inst{Op: OpITLBI, R1: 3, R2: 4}, "itlbi r3, r4"},
		{Inst{Op: OpBREAK, Imm: 9}, "break 9"},
		{Inst{Op: OpMFTOD, Rd: 7}, "mftod r7"},
		{Inst{Op: OpRFI}, "rfi"},
		{Inst{Op: OpNOP}, "nop"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSignExtHelpers(t *testing.T) {
	if signExt16(0xFFFF) != -1 {
		t.Error("signExt16(0xFFFF) != -1")
	}
	if signExt16(0x7FFF) != 32767 {
		t.Error("signExt16(0x7FFF) != 32767")
	}
	if signExt21(0x1FFFFF) != -1 {
		t.Error("signExt21(0x1FFFFF) != -1")
	}
	if signExt21(0x0FFFFF) != 1048575 {
		t.Error("signExt21(0x0FFFFF) != 1048575")
	}
}

func TestVectorStride(t *testing.T) {
	// Each vector slot must hold at least a branch to a handler.
	if VectorStride%4 != 0 || VectorStride < 8 {
		t.Errorf("VectorStride = %d", VectorStride)
	}
}
