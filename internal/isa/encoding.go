package isa

import "fmt"

// Inst is a decoded PA-lite instruction. Field use depends on Op:
//
//	ALU 3-reg:       Rd := R1 op R2
//	ALU immediate:   Rd := R1 op Imm
//	LUI:             Rd := Imm << 11         (Imm is 21-bit unsigned)
//	loads:           Rd := mem[R1 + Imm]
//	stores:          mem[R1 + Imm] := Rd     (Rd is the SOURCE register)
//	branches:        if R1 cmp R2 goto PC+4+Imm*4
//	BL/GATE:         Rd := (PC+4)|PL; goto PC+4+Imm*4 (Imm is 21-bit signed)
//	BV:              goto R1 &^ 3
//	MFCTL:           Rd := CR[Imm]
//	MTCTL:           CR[Imm] := R1
//	PROBE:           Rd := accessible(R1, Imm) (Imm: 0=read, 1=write)
//	ITLBI:           TLB insert (R1 = vpn|flags, R2 = ppn<<12)
//	BREAK/DIAG:      code in Imm
//	MFTOD:           Rd := TOD
type Inst struct {
	Op  Op
	Rd  Reg
	R1  Reg
	R2  Reg
	Imm int32
}

// Field layout within the 32-bit word.
const (
	opShift = 26
	aShift  = 21 // "A" register slot (usually Rd)
	bShift  = 16 // "B" register slot (usually R1)
	cShift  = 11 // "C" register slot (usually R2)
	regMask = 0x1F
	imm16M  = 0xFFFF
	imm21M  = 0x1FFFFF
)

// signExt16 sign-extends the low 16 bits of v.
func signExt16(v uint32) int32 { return int32(int16(uint16(v))) }

// signExt21 sign-extends the low 21 bits of v.
func signExt21(v uint32) int32 {
	v &= imm21M
	if v&(1<<20) != 0 {
		v |= ^uint32(imm21M)
	}
	return int32(v)
}

// immKind describes how an opcode uses its immediate field.
type immKind uint8

const (
	immNone immKind = iota
	immS16          // 16-bit signed
	immU16          // 16-bit unsigned
	immSh5          // 5-bit shift amount
	immU21          // 21-bit unsigned (LUI)
	immS21          // 21-bit signed word offset (BL, GATE)
	immCR           // control-register number
)

// opSpec describes field usage for encode/decode/validation.
type opSpec struct {
	a, b, c bool // register slots used
	imm     immKind
}

var specs = [opMax]opSpec{
	OpADD:  {a: true, b: true, c: true},
	OpSUB:  {a: true, b: true, c: true},
	OpAND:  {a: true, b: true, c: true},
	OpOR:   {a: true, b: true, c: true},
	OpXOR:  {a: true, b: true, c: true},
	OpSLL:  {a: true, b: true, c: true},
	OpSRL:  {a: true, b: true, c: true},
	OpSRA:  {a: true, b: true, c: true},
	OpSLT:  {a: true, b: true, c: true},
	OpSLTU: {a: true, b: true, c: true},
	OpMUL:  {a: true, b: true, c: true},
	OpDIV:  {a: true, b: true, c: true},
	OpREM:  {a: true, b: true, c: true},

	OpADDI:  {a: true, b: true, imm: immS16},
	OpANDI:  {a: true, b: true, imm: immU16},
	OpORI:   {a: true, b: true, imm: immU16},
	OpXORI:  {a: true, b: true, imm: immU16},
	OpSLTI:  {a: true, b: true, imm: immS16},
	OpSLTIU: {a: true, b: true, imm: immS16},
	OpSLLI:  {a: true, b: true, imm: immSh5},
	OpSRLI:  {a: true, b: true, imm: immSh5},
	OpSRAI:  {a: true, b: true, imm: immSh5},
	OpLUI:   {a: true, imm: immU21},

	OpLDW: {a: true, b: true, imm: immS16},
	OpLDH: {a: true, b: true, imm: immS16},
	OpLDB: {a: true, b: true, imm: immS16},
	OpSTW: {a: true, b: true, imm: immS16},
	OpSTH: {a: true, b: true, imm: immS16},
	OpSTB: {a: true, b: true, imm: immS16},

	OpBEQ:  {a: true, b: true, imm: immS16},
	OpBNE:  {a: true, b: true, imm: immS16},
	OpBLT:  {a: true, b: true, imm: immS16},
	OpBGE:  {a: true, b: true, imm: immS16},
	OpBLTU: {a: true, b: true, imm: immS16},
	OpBGEU: {a: true, b: true, imm: immS16},

	OpBL:   {a: true, imm: immS21},
	OpGATE: {a: true, imm: immS21},
	OpBV:   {b: true},

	OpMFCTL: {a: true, imm: immCR},
	OpMTCTL: {b: true, imm: immCR},
	OpPROBE: {a: true, b: true, imm: immU16},
	OpITLBI: {b: true, c: true},

	OpBREAK: {imm: immU16},
	OpDIAG:  {imm: immU16},
	OpMFTOD: {a: true},

	OpRFI:  {},
	OpHALT: {},
	OpWFI:  {},
	OpPTLB: {},
	OpNOP:  {},
}

// branchUsesABForR1R2 reports whether the op stores R1 in the A slot and
// R2 in the B slot (conditional branches compare R1 and R2).
func branchUsesAB(o Op) bool {
	return o >= OpBEQ && o <= OpBGEU
}

// Encode packs an instruction into its 32-bit word. It returns an error if
// a field is out of range for the opcode.
func Encode(in Inst) (uint32, error) {
	if !in.Op.Valid() {
		return 0, fmt.Errorf("isa: encode: invalid opcode %d", uint8(in.Op))
	}
	sp := specs[in.Op]
	w := uint32(in.Op) << opShift

	checkReg := func(r Reg, used bool, name string) error {
		if !used && r != 0 {
			return fmt.Errorf("isa: encode %s: register slot %s unused but nonzero", in.Op, name)
		}
		if uint8(r) >= NumRegs {
			return fmt.Errorf("isa: encode %s: bad register %d", in.Op, uint8(r))
		}
		return nil
	}
	var a, b, c Reg
	if branchUsesAB(in.Op) {
		a, b = in.R1, in.R2
		if err := checkReg(in.Rd, false, "rd"); err != nil {
			return 0, err
		}
	} else {
		a, b, c = in.Rd, in.R1, in.R2
		if err := checkReg(a, sp.a, "a"); err != nil {
			return 0, err
		}
		if err := checkReg(b, sp.b, "b"); err != nil {
			return 0, err
		}
		if err := checkReg(c, sp.c, "c"); err != nil {
			return 0, err
		}
	}
	w |= uint32(a) << aShift
	w |= uint32(b) << bShift
	if sp.c {
		w |= uint32(c) << cShift
	}

	switch sp.imm {
	case immNone:
		if in.Imm != 0 {
			return 0, fmt.Errorf("isa: encode %s: immediate unused but nonzero", in.Op)
		}
	case immS16:
		if in.Imm < -(1<<15) || in.Imm >= 1<<15 {
			return 0, fmt.Errorf("isa: encode %s: signed imm16 out of range: %d", in.Op, in.Imm)
		}
		w |= uint32(in.Imm) & imm16M
	case immU16:
		if in.Imm < 0 || in.Imm >= 1<<16 {
			return 0, fmt.Errorf("isa: encode %s: unsigned imm16 out of range: %d", in.Op, in.Imm)
		}
		w |= uint32(in.Imm) & imm16M
	case immSh5:
		if in.Imm < 0 || in.Imm > 31 {
			return 0, fmt.Errorf("isa: encode %s: shift amount out of range: %d", in.Op, in.Imm)
		}
		w |= uint32(in.Imm) & imm16M
	case immU21:
		if in.Imm < 0 || in.Imm > imm21M {
			return 0, fmt.Errorf("isa: encode %s: imm21 out of range: %d", in.Op, in.Imm)
		}
		w |= uint32(in.Imm) & imm21M
	case immS21:
		if in.Imm < -(1<<20) || in.Imm >= 1<<20 {
			return 0, fmt.Errorf("isa: encode %s: signed imm21 out of range: %d", in.Op, in.Imm)
		}
		w |= uint32(in.Imm) & imm21M
	case immCR:
		if in.Imm < 0 || in.Imm >= NumCRs {
			return 0, fmt.Errorf("isa: encode %s: control register out of range: %d", in.Op, in.Imm)
		}
		w |= uint32(in.Imm) & imm16M
	}
	return w, nil
}

// MustEncode is Encode but panics on error; for use with known-good
// constants (e.g. building trap vectors in tests).
func MustEncode(in Inst) uint32 {
	w, err := Encode(in)
	if err != nil {
		panic(err)
	}
	return w
}

// Decode unpacks a 32-bit word. Words whose opcode is undefined, or whose
// unused fields are nonzero, yield an error (the machine raises an
// illegal-instruction trap for these).
func Decode(w uint32) (Inst, error) {
	op := Op(w >> opShift)
	if !op.Valid() {
		return Inst{}, fmt.Errorf("isa: decode: undefined opcode %d in %08x", uint8(op), w)
	}
	sp := specs[op]
	a := Reg((w >> aShift) & regMask)
	b := Reg((w >> bShift) & regMask)
	c := Reg((w >> cShift) & regMask)

	in := Inst{Op: op}
	wideImm := sp.imm == immU21 || sp.imm == immS21 // immediate covers the B/C slots
	if branchUsesAB(op) {
		in.R1, in.R2 = a, b
	} else {
		if sp.a {
			in.Rd = a
		} else if a != 0 {
			return Inst{}, fmt.Errorf("isa: decode %s: unused A field nonzero in %08x", op, w)
		}
		if sp.b {
			in.R1 = b
		} else if b != 0 && !wideImm {
			return Inst{}, fmt.Errorf("isa: decode %s: unused B field nonzero in %08x", op, w)
		}
		if sp.c {
			in.R2 = c
		}
	}

	// Validate that bits below the immediate are clean when no immediate
	// (or a narrow one) is defined.
	switch sp.imm {
	case immNone:
		mask := uint32(imm16M)
		if sp.c {
			mask = (1 << cShift) - 1
		}
		if w&mask != 0 {
			return Inst{}, fmt.Errorf("isa: decode %s: unused low bits nonzero in %08x", op, w)
		}
	case immS16:
		in.Imm = signExt16(w)
	case immU16:
		in.Imm = int32(w & imm16M)
	case immSh5:
		v := w & imm16M
		if v > 31 {
			return Inst{}, fmt.Errorf("isa: decode %s: shift amount %d > 31 in %08x", op, v, w)
		}
		in.Imm = int32(v)
	case immU21:
		in.Imm = int32(w & imm21M)
	case immS21:
		in.Imm = signExt21(w)
	case immCR:
		v := w & imm16M
		if v >= NumCRs {
			return Inst{}, fmt.Errorf("isa: decode %s: control register %d out of range in %08x", op, v, w)
		}
		in.Imm = int32(v)
	}
	return in, nil
}

// String renders the instruction in canonical assembly syntax.
func (in Inst) String() string {
	switch in.Op {
	case OpADD, OpSUB, OpAND, OpOR, OpXOR, OpSLL, OpSRL, OpSRA, OpSLT, OpSLTU, OpMUL, OpDIV, OpREM:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.R1, in.R2)
	case OpADDI, OpANDI, OpORI, OpXORI, OpSLTI, OpSLTIU, OpSLLI, OpSRLI, OpSRAI:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.R1, in.Imm)
	case OpLUI:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Rd, in.Imm)
	case OpLDW, OpLDH, OpLDB:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.R1)
	case OpSTW, OpSTH, OpSTB:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.R1)
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.R1, in.R2, in.Imm)
	case OpBL, OpGATE:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Rd, in.Imm)
	case OpBV:
		return fmt.Sprintf("%s %s", in.Op, in.R1)
	case OpMFCTL:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Rd, CR(in.Imm))
	case OpMTCTL:
		return fmt.Sprintf("%s %s, %s", in.Op, CR(in.Imm), in.R1)
	case OpPROBE:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.R1, in.Imm)
	case OpITLBI:
		return fmt.Sprintf("%s %s, %s", in.Op, in.R1, in.R2)
	case OpBREAK, OpDIAG:
		return fmt.Sprintf("%s %d", in.Op, in.Imm)
	case OpMFTOD:
		return fmt.Sprintf("%s %s", in.Op, in.Rd)
	default:
		return in.Op.String()
	}
}
