// Package isa defines PA-lite, the 32-bit RISC instruction-set
// architecture interpreted by internal/machine. PA-lite is modelled on the
// aspects of HP PA-RISC that Bressoud & Schneider's hypervisor-based
// fault-tolerance protocols depend on:
//
//   - four privilege levels (0 most privileged .. 3 least);
//   - a software-managed TLB (TLB misses trap; the kernel — or the
//     hypervisor — inserts translations with ITLBI);
//   - a recovery counter that traps after a programmed number of
//     instructions, used to delimit epochs (the paper's
//     Instruction-Stream Interrupt Assumption);
//   - an interval timer and a time-of-day clock (environment state);
//   - memory-mapped I/O, so device access is via ordinary loads/stores to
//     protected pages (the paper's §3.2 Environment Instruction mechanism);
//   - a branch-and-link instruction that deposits the current privilege
//     level in the low bits of the return address (the paper's §3.1
//     virtualization hazard).
//
// The package defines instruction encodings, registers, control registers,
// trap codes, and the paper's instruction taxonomy (ordinary vs privileged
// vs environment). Encoding is fixed 32-bit words.
package isa

import "fmt"

// Reg names a general-purpose register, r0..r31. r0 is hardwired to zero.
type Reg uint8

// NumRegs is the number of general-purpose registers.
const NumRegs = 32

// Conventional register assignments (loosely following PA-RISC calling
// conventions). The assembler accepts these as aliases.
const (
	RegZero Reg = 0  // always reads as zero; writes discarded
	RegRP   Reg = 2  // return pointer (link register for CALL)
	RegArg3 Reg = 23 // fourth argument
	RegArg2 Reg = 24 // third argument
	RegArg1 Reg = 25 // second argument
	RegArg0 Reg = 26 // first argument
	RegRet0 Reg = 28 // first return value
	RegRet1 Reg = 29 // second return value
	RegSP   Reg = 30 // stack pointer
)

// String returns the canonical assembly name of the register.
func (r Reg) String() string { return fmt.Sprintf("r%d", uint8(r)) }

// Op is a PA-lite opcode.
type Op uint8

// Opcodes. The numeric values are the 6-bit primary opcode field.
const (
	// OpInvalid is the zero value; decoding a word with an unknown opcode
	// yields OpInvalid and the machine raises an illegal-instruction trap.
	OpInvalid Op = 0

	// Three-register ALU operations: rd := r1 OP r2.
	OpADD  Op = 1  // add (wrapping)
	OpSUB  Op = 2  // subtract (wrapping)
	OpAND  Op = 3  // bitwise and
	OpOR   Op = 4  // bitwise or
	OpXOR  Op = 5  // bitwise xor
	OpSLL  Op = 6  // shift left logical by r2&31
	OpSRL  Op = 7  // shift right logical by r2&31
	OpSRA  Op = 8  // shift right arithmetic by r2&31
	OpSLT  Op = 9  // rd = 1 if r1 < r2 (signed) else 0
	OpSLTU Op = 10 // rd = 1 if r1 < r2 (unsigned) else 0
	OpMUL  Op = 11 // multiply (low 32 bits)
	OpDIV  Op = 12 // signed divide; divide-by-zero raises ArithmeticTrap
	OpREM  Op = 13 // signed remainder; divide-by-zero raises ArithmeticTrap

	// Immediate ALU operations: rd := r1 OP imm16.
	OpADDI  Op = 14 // add sign-extended immediate
	OpANDI  Op = 15 // and zero-extended immediate
	OpORI   Op = 16 // or zero-extended immediate
	OpXORI  Op = 17 // xor zero-extended immediate
	OpSLTI  Op = 18 // set if less than sign-extended immediate (signed)
	OpSLTIU Op = 19 // set if less than (unsigned compare, sign-ext imm)
	OpSLLI  Op = 20 // shift left logical by imm&31
	OpSRLI  Op = 21 // shift right logical by imm&31
	OpSRAI  Op = 22 // shift right arithmetic by imm&31
	OpLUI   Op = 23 // rd := imm21 << 11 (load upper immediate)

	// Loads and stores: address = r1 + signext(imm16).
	OpLDW Op = 24 // load 32-bit word (address must be 4-aligned)
	OpLDH Op = 25 // load 16-bit halfword zero-extended (2-aligned)
	OpLDB Op = 26 // load byte zero-extended
	OpSTW Op = 27 // store 32-bit word from rd field (4-aligned)
	OpSTH Op = 28 // store low 16 bits of rd field (2-aligned)
	OpSTB Op = 29 // store low byte of rd field

	// Conditional branches: if r1 CMP r2 then PC += signext(off16)*4.
	// The offset is relative to the instruction after the branch.
	OpBEQ  Op = 30 // branch if equal
	OpBNE  Op = 31 // branch if not equal
	OpBLT  Op = 32 // branch if less than (signed)
	OpBGE  Op = 33 // branch if greater or equal (signed)
	OpBLTU Op = 34 // branch if less than (unsigned)
	OpBGEU Op = 35 // branch if greater or equal (unsigned)

	// OpBL is branch-and-link: rd := (PC+4) | PL; PC += signext(off21)*4.
	// Like PA-RISC's branch-and-link, it deposits the CURRENT PRIVILEGE
	// LEVEL in the two low bits of the return address — the virtualization
	// hazard discussed in §3.1 of the paper. Code that assumes those bits
	// are zero breaks when run demoted under a hypervisor.
	OpBL Op = 36

	// OpBV is branch-vectored: PC := r1 &^ 3. The low two bits (privilege
	// bits deposited by BL) are ignored, so ordinary call/return sequences
	// work at any privilege level.
	OpBV Op = 37

	// Control-register access. Privileged at PL > 0.
	OpMFCTL Op = 38 // rd := CR[imm]
	OpMTCTL Op = 39 // CR[imm] := r1

	// OpRFI returns from interruption: PSW := IPSW, PC := IIA. Privileged.
	OpRFI Op = 40

	// OpBREAK raises a Break trap with the immediate as code. Never
	// privileged; used for debugging and guest panics.
	OpBREAK Op = 41

	// OpHALT stops the processor (end of workload). Privileged.
	OpHALT Op = 42

	// OpWFI idles the processor until an external interrupt or interval
	// timer interrupt is pending. Privileged. An environment instruction:
	// its duration depends on I/O timing.
	OpWFI Op = 43

	// OpITLBI inserts a TLB entry: r1 = virtual page number | permission
	// bits (low 12 bits), r2 = physical page number << 12. Privileged.
	OpITLBI Op = 44

	// OpPTLB purges the entire TLB. Privileged.
	OpPTLB Op = 45

	// OpPROBE tests accessibility: rd := 1 if the page containing the
	// address in r1 is accessible at the CURRENT privilege level for the
	// access kind in imm (0=read, 1=write), else 0. NOT privileged — like
	// PA-RISC's probe it reveals the processor's true privilege level,
	// another §3.1 hazard.
	OpPROBE Op = 46

	// OpGATE is a gateway call: traps to the Gate vector, promoting to
	// privilege level 0 (or to the virtual kernel under a hypervisor).
	// rd := (PC+4) | PL, like BL. Used as the syscall mechanism.
	OpGATE Op = 47

	// OpDIAG is a diagnostic backdoor for the simulator (trace markers,
	// test probes). Privileged.
	OpDIAG Op = 48

	// OpMFTOD reads the time-of-day clock: rd := TOD (cycles since boot).
	// Privileged at PL > 0 so that a hypervisor can simulate it — the
	// canonical ENVIRONMENT instruction of the paper (§2.1): its value is
	// not a function of virtual-machine state.
	OpMFTOD Op = 49

	// OpNOP does nothing (encoded distinctly so traces read well).
	OpNOP Op = 50

	opMax Op = 51
)

var opNames = [opMax]string{
	OpInvalid: "invalid",
	OpADD:     "add", OpSUB: "sub", OpAND: "and", OpOR: "or", OpXOR: "xor",
	OpSLL: "sll", OpSRL: "srl", OpSRA: "sra", OpSLT: "slt", OpSLTU: "sltu",
	OpMUL: "mul", OpDIV: "div", OpREM: "rem",
	OpADDI: "addi", OpANDI: "andi", OpORI: "ori", OpXORI: "xori",
	OpSLTI: "slti", OpSLTIU: "sltiu", OpSLLI: "slli", OpSRLI: "srli",
	OpSRAI: "srai", OpLUI: "lui",
	OpLDW: "ldw", OpLDH: "ldh", OpLDB: "ldb",
	OpSTW: "stw", OpSTH: "sth", OpSTB: "stb",
	OpBEQ: "beq", OpBNE: "bne", OpBLT: "blt", OpBGE: "bge",
	OpBLTU: "bltu", OpBGEU: "bgeu",
	OpBL: "bl", OpBV: "bv",
	OpMFCTL: "mfctl", OpMTCTL: "mtctl", OpRFI: "rfi", OpBREAK: "break",
	OpHALT: "halt", OpWFI: "wfi", OpITLBI: "itlbi", OpPTLB: "ptlb",
	OpPROBE: "probe", OpGATE: "gate", OpDIAG: "diag", OpMFTOD: "mftod",
	OpNOP: "nop",
}

// String returns the assembly mnemonic for the opcode.
func (o Op) String() string {
	if o < opMax && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o > OpInvalid && o < opMax && opNames[o] != "" }

// Class is the paper's instruction taxonomy (§2.1): the behaviour of an
// ordinary instruction is completely determined by virtual-machine state;
// an environment instruction's is not; privileged instructions trap when
// executed above privilege level 0 and are simulated by whoever owns PL 0.
type Class uint8

const (
	// ClassOrdinary instructions satisfy the Ordinary Instruction
	// Assumption: same state in, same state out, on any processor.
	ClassOrdinary Class = iota
	// ClassPrivileged instructions trap at PL > 0 (privileged-operation
	// trap) but their simulated behaviour is still state-deterministic.
	ClassPrivileged
	// ClassEnvironment instructions interact with non-replicated state
	// (clocks, devices); under replication their results must be made
	// identical by the hypervisor (Environment Instruction Assumption).
	ClassEnvironment
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassOrdinary:
		return "ordinary"
	case ClassPrivileged:
		return "privileged"
	case ClassEnvironment:
		return "environment"
	}
	return fmt.Sprintf("class%d", uint8(c))
}

// Classify returns the paper-taxonomy class of an opcode. Loads and stores
// are classified ordinary here; a load/store that touches a memory-mapped
// I/O page is reclassified as environment dynamically by the machine
// (the page's access rights force a trap, per §3.2 of the paper).
func Classify(o Op) Class {
	switch o {
	case OpMFCTL, OpMTCTL, OpRFI, OpHALT, OpITLBI, OpPTLB, OpDIAG:
		return ClassPrivileged
	case OpMFTOD, OpWFI:
		return ClassEnvironment
	default:
		return ClassOrdinary
	}
}

// Privileged reports whether executing o at PL > 0 raises a
// privileged-operation trap.
func Privileged(o Op) bool {
	switch o {
	case OpMFCTL, OpMTCTL, OpRFI, OpHALT, OpWFI, OpITLBI, OpPTLB, OpDIAG, OpMFTOD:
		return true
	}
	return false
}

// CR numbers control registers accessed by MFCTL/MTCTL.
type CR uint8

// Control registers. Numbering loosely follows PA-RISC.
const (
	CRRCTR  CR = 0  // recovery counter: decrements per instruction when PSW.R is set; traps on expiry
	CRIVA   CR = 14 // interruption vector address (base of trap vectors)
	CRITMR  CR = 16 // interval timer: decrements per instruction; raises IntervalTimer trap at 0
	CRISR   CR = 20 // interruption status (trap-specific detail code)
	CRIOR   CR = 21 // interruption offset (faulting address / opcode word)
	CRIPSW  CR = 22 // saved PSW at interruption
	CRIIA   CR = 23 // saved instruction address at interruption
	CREIEM  CR = 24 // external interrupt enable mask (bit per line)
	CREIRR  CR = 25 // external interrupt request register (write 1 to clear bits)
	CRTOD   CR = 26 // time-of-day clock, cycles since power-on (read-only)
	CRCPUID CR = 27 // processor identity (read-only; virtualized under a hypervisor)
	CRPTBR  CR = 28 // page table base (software convention; no hardware walker)
	NumCRs     = 32
)

var crNames = map[CR]string{
	CRRCTR: "rctr", CRIVA: "iva", CRITMR: "itmr", CRISR: "isr",
	CRIOR: "ior", CRIPSW: "ipsw", CRIIA: "iia", CREIEM: "eiem",
	CREIRR: "eirr", CRTOD: "tod", CRCPUID: "cpuid", CRPTBR: "ptbr",
}

// String names the control register.
func (c CR) String() string {
	if n, ok := crNames[c]; ok {
		return n
	}
	return fmt.Sprintf("cr%d", uint8(c))
}

// CRByName resolves an assembly control-register name ("rctr", "cr5"...).
func CRByName(name string) (CR, bool) {
	for c, n := range crNames {
		if n == name {
			return c, true
		}
	}
	var num uint8
	if _, err := fmt.Sscanf(name, "cr%d", &num); err == nil && num < NumCRs {
		return CR(num), true
	}
	return 0, false
}

// PSW bit assignments. The privilege level occupies the two low bits.
const (
	PSWPLMask uint32 = 0x3        // current privilege level, 0..3
	PSWI      uint32 = 1 << 2     // external/interval interrupts enabled
	PSWV      uint32 = 1 << 3     // virtual address translation enabled
	PSWR      uint32 = 1 << 4     // recovery counter enabled
	PSWDefect uint32 = 0xFFFFFFE0 // reserved bits, must be zero
)

// Trap codes: causes of transfer to the interruption vector. The vector
// for trap t is IVA + uint32(t)*VectorStride.
type Trap uint8

// Trap causes.
const (
	TrapNone     Trap = 0  // no trap (internal sentinel)
	TrapIllegal  Trap = 1  // undefined or malformed instruction
	TrapPriv     Trap = 2  // privileged operation at PL > 0
	TrapITLBMiss Trap = 3  // instruction fetch missed the TLB
	TrapDTLBMiss Trap = 4  // data access missed the TLB
	TrapAccess   Trap = 5  // page permission violation (incl. MMIO at PL>0)
	TrapAlign    Trap = 6  // misaligned access
	TrapBreak    Trap = 7  // BREAK instruction
	TrapGate     Trap = 8  // GATE instruction (syscall)
	TrapRecovery Trap = 9  // recovery counter expired (epoch boundary)
	TrapITimer   Trap = 10 // interval timer expired
	TrapExtIntr  Trap = 11 // external interrupt (device)
	TrapArith    Trap = 12 // arithmetic trap (divide by zero)
	TrapMachine  Trap = 13 // machine check (bus error, bad physical address)
	NumTrapCodes      = 14
)

// VectorStride is the spacing of interruption vectors: 8 instructions.
const VectorStride = 32

var trapNames = [NumTrapCodes]string{
	"none", "illegal", "priv", "itlbmiss", "dtlbmiss", "access",
	"align", "break", "gate", "recovery", "itimer", "extintr",
	"arith", "machine",
}

// String names the trap cause.
func (t Trap) String() string {
	if int(t) < len(trapNames) {
		return trapNames[t]
	}
	return fmt.Sprintf("trap%d", uint8(t))
}

// Synchronous reports whether the trap is raised by instruction execution
// (as opposed to an asynchronous interrupt checked between instructions).
func (t Trap) Synchronous() bool {
	switch t {
	case TrapITimer, TrapExtIntr, TrapRecovery:
		return false
	}
	return true
}

// Page and TLB geometry.
const (
	PageShift = 12             // 4 KiB pages
	PageSize  = 1 << PageShift // page size in bytes
	PageMask  = PageSize - 1   // offset mask within a page
)

// TLB entry permission bits (low bits of the ITLBI r1 operand).
const (
	TLBRead  uint32 = 1 << 0 // readable
	TLBWrite uint32 = 1 << 1 // writable
	TLBExec  uint32 = 1 << 2 // executable
	// TLBPLShift..: two bits giving the MINIMUM privilege level allowed
	// to access the page: an access at PL p is allowed iff p <= this
	// field. (PL 0 may access everything.)
	TLBPLShift        = 3
	TLBPLMask  uint32 = 0x3 << TLBPLShift
	// TLBPermMask covers all permission bits in the VPN operand.
	TLBPermMask uint32 = TLBRead | TLBWrite | TLBExec | TLBPLMask
)

// MakeTLBFlags builds the permission field for ITLBI's r1 operand.
func MakeTLBFlags(read, write, exec bool, minPL uint32) uint32 {
	var f uint32
	if read {
		f |= TLBRead
	}
	if write {
		f |= TLBWrite
	}
	if exec {
		f |= TLBExec
	}
	f |= (minPL & 3) << TLBPLShift
	return f
}
