package platform

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/scsi"
	"repro/internal/sim"
)

func TestNewPairWiring(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Shutdown()
	p := NewPair(k, Config{})
	if p.Primary.M == nil || p.Backup.M == nil || p.Disk == nil || p.Net == nil {
		t.Fatal("incomplete pair")
	}
	// Distinct CPU identities, distinct TLB seeds (chip nondeterminism).
	if p.Primary.M.Config().CPUID == p.Backup.M.Config().CPUID {
		t.Error("nodes share a CPUID")
	}
	if p.Primary.M.Config().TLBSeed == p.Backup.M.Config().TLBSeed {
		t.Error("nodes share a TLB seed")
	}
	// Both adapters reach the same disk (accessibility assumption).
	p.Primary.M.Bus.MMIOStore(AdapterBase+scsi.RegCmd, 4, scsi.CmdWrite)
	if v, _ := p.Primary.M.Bus.MMIOLoad(AdapterBase+scsi.RegCmd, 4); v != scsi.CmdWrite {
		t.Error("primary adapter not wired")
	}
	// Console responds.
	if v, _ := p.Backup.M.Bus.MMIOLoad(ConsoleBase+0x4, 4); v != 1 {
		t.Error("backup console not wired")
	}
}

func TestTODFollowsSimClock(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Shutdown()
	s := NewSingle(k, Config{})
	if got := s.Node.M.TOD(); got != 0 {
		t.Errorf("TOD at t=0 is %d", got)
	}
	k.At(1*sim.Millisecond, func() {
		want := uint32(1 * sim.Millisecond / CycleTime)
		if got := s.Node.M.TOD(); got != want {
			t.Errorf("TOD at 1ms = %d, want %d", got, want)
		}
	})
	k.Run()
}

func TestDiskIRQLineRaised(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Shutdown()
	s := NewSingle(k, Config{Disk: scsi.DiskConfig{WriteLatency: 10 * sim.Microsecond}})
	m := s.Node.M
	m.Bus.MMIOStore(AdapterBase+scsi.RegCmd, 4, scsi.CmdWrite)
	m.Bus.MMIOStore(AdapterBase+scsi.RegBlock, 4, 1)
	m.Bus.MMIOStore(AdapterBase+scsi.RegAddr, 4, 0x1000)
	m.Bus.MMIOStore(AdapterBase+scsi.RegCount, 4, 64)
	m.Bus.MMIOStore(AdapterBase+scsi.RegDoorbell, 4, 1)
	k.Run()
	if !m.IRQRaised() {
		t.Error("disk completion did not raise the IRQ line")
	}
}

func TestClusterChannels(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Shutdown()
	c := NewCluster(k, Config{}, 3)
	if len(c.Nodes) != 3 {
		t.Fatalf("nodes = %d", len(c.Nodes))
	}
	// Channel symmetry: from i to j, tx(i->j) is rx of (j->i).
	tx01, rx01 := c.Channel(0, 1)
	tx10, rx10 := c.Channel(1, 0)
	if tx01 != rx10 || rx01 != tx10 {
		t.Error("channel pairing broken")
	}
	// Distinct node pairs get distinct links.
	tx02, _ := c.Channel(0, 2)
	if tx02 == tx01 {
		t.Error("links shared between pairs")
	}
	// Messages flow.
	tx01.Send("ping", 8)
	k.Run()
	if rx10.Inbox.Len() != 1 {
		t.Error("message did not traverse the cluster link")
	}
}

func TestClusterPanicsOnTooFewNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewCluster(1) did not panic")
		}
	}()
	k := sim.NewKernel(1)
	defer k.Shutdown()
	NewCluster(k, Config{}, 1)
}

func TestChannelSelfPanics(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Shutdown()
	c := NewCluster(k, Config{}, 2)
	defer func() {
		if recover() == nil {
			t.Error("self channel did not panic")
		}
	}()
	c.Channel(1, 1)
}

// ensure machine.Config is surfaced (compile-time check of the helper).
var _ = machine.Config{}
