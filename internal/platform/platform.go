// Package platform assembles complete simulated machines in the paper's
// prototype configuration (Figure 1), generalized over an ordered
// device table: one or two (or n) HP-9000/720-class processors, N
// dual-ported SCSI disks shared between them, a shared console/terminal,
// and — for a replica group — point-to-point links between the
// hypervisors. Every node is wired from the SAME device table, which is
// what lets the hypervisors' shadow-device layer treat the replicas as
// one state machine.
package platform

import (
	"fmt"

	"repro/internal/console"
	"repro/internal/device"
	"repro/internal/hypervisor"
	"repro/internal/machine"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/scsi"
	"repro/internal/sim"
)

// Memory-map and interrupt wiring shared by all configurations. The
// historical single-disk layout is preserved exactly: disk 0 at window
// 0x0000 on line 1, the console at 0x1000 (line 2, used only when the
// terminal has scripted input). Additional disks stack from 0x2000 on
// lines 3, 4, ...
const (
	// AdapterBase is disk 0's adapter window offset within MMIO space.
	AdapterBase uint32 = 0x0000
	// ConsoleBase is the console window offset within MMIO space.
	ConsoleBase uint32 = 0x1000
	// DiskIRQLine is the external interrupt line of disk 0's adapter.
	DiskIRQLine uint = 1
	// ConsoleIRQLine is the console/terminal input interrupt line.
	ConsoleIRQLine uint = 2
	// ExtraDiskBase is disk 1's window; disk i (i >= 1) sits at
	// ExtraDiskBase + (i-1)*0x1000 on line ExtraDiskIRQ + (i-1).
	ExtraDiskBase uint32 = 0x2000
	// ExtraDiskIRQ is disk 1's interrupt line.
	ExtraDiskIRQ uint = 3
	// NICBase is the network adapter's window offset within MMIO space
	// (the last mapped device page, clear of any disk stack).
	NICBase uint32 = 0xF000
	// NICIRQLine is the network adapter's interrupt line. The guest
	// polls the NIC (the line stays masked, like the console's), but
	// the I/O-active hypervisor captures on it.
	NICIRQLine uint = 15
	// CycleTime is the simulated instruction period (50 MIPS).
	CycleTime = 20 * sim.Nanosecond
)

// DiskWindow returns disk i's window base and interrupt line.
func DiskWindow(i int) (base uint32, line uint) {
	if i == 0 {
		return AdapterBase, DiskIRQLine
	}
	return ExtraDiskBase + uint32(i-1)*0x1000, ExtraDiskIRQ + uint(i-1)
}

// Config bundles the tunables of a platform.
type Config struct {
	// Machine configures the processors (identical configs; the TLB
	// seed is perturbed per node to model per-chip nondeterminism).
	Machine machine.Config
	// Hypervisor configures both hypervisors (epoch length, costs).
	Hypervisor hypervisor.Config
	// Disk configures shared disk 0.
	Disk scsi.DiskConfig
	// ExtraDisks configures shared disks 1..N-1 (multi-disk workloads).
	ExtraDisks []scsi.DiskConfig
	// Terminal is the console's scripted input (keystrokes arriving at
	// virtual times). Empty: the console is the historical write-only
	// device.
	Terminal []console.Input
	// NIC attaches the shared network adapter to every node (the
	// network-service configurations; absent by default so historical
	// device tables — and their pinned transcripts — are untouched).
	NIC bool
	// Link configures the hypervisor-to-hypervisor channel (both
	// directions); zero value = 10 Mbps Ethernet.
	Link netsim.LinkConfig
}

// Node is one processor with its device bindings.
type Node struct {
	M  *machine.Machine
	HV *hypervisor.Hypervisor
	// Adapter is disk 0's adapter (convenience alias of Adapters[0]).
	Adapter *scsi.Adapter
	// Adapters holds one adapter per shared disk, in disk order.
	Adapters []*scsi.Adapter
	// Port is this node's endpoint on the shared console.
	Port *console.Port
	// NICPort is this node's endpoint on the shared network adapter
	// (nil unless Config.NIC).
	NICPort *nic.Port
}

// env is the shared environment every node attaches to: the disks and
// the console are dual-(n-)ported devices reachable from every
// processor (the I/O Device Accessibility Assumption).
type env struct {
	disks   []*scsi.Disk
	console *console.Console
	nic     *nic.NIC
}

// newEnv builds the shared environment and schedules the terminal
// script.
func newEnv(k *sim.Kernel, cfg Config) *env {
	e := &env{console: console.New()}
	e.disks = append(e.disks, scsi.NewDisk(k, cfg.Disk))
	for _, dc := range cfg.ExtraDisks {
		e.disks = append(e.disks, scsi.NewDisk(k, dc))
	}
	e.console.Schedule(k, cfg.Terminal)
	if cfg.NIC {
		e.nic = nic.New()
	}
	return e
}

// newNode builds one processor. Each node gets its own TLB seed
// (chip-internal nondeterminism differs per processor) and a
// time-of-day clock driven by the simulation clock.
func newNode(k *sim.Kernel, cfg Config, host int) *Node {
	mc := cfg.Machine
	mc.CPUID = uint32(host + 1)
	mc.TLBSeed = cfg.Machine.TLBSeed + int64(host)*7919
	if mc.TODSource == nil {
		mc.TODSource = func() uint32 { return uint32(k.Now() / CycleTime) }
	}
	return &Node{M: machine.New(mc)}
}

// finishNode wires the node's bus and hypervisor from the shared
// environment's device table: every node is wired identically.
func finishNode(k *sim.Kernel, cfg Config, n *Node, e *env, host int) {
	m := n.M
	mux := machine.NewBusMux()
	for i, disk := range e.disks {
		base, line := DiskWindow(i)
		a := disk.NewAdapter(host, m, func() { m.RaiseIRQ(line) })
		n.Adapters = append(n.Adapters, a)
		mux.Map(fmt.Sprintf("scsi%d", i), base, scsi.AdapterWindow, a)
	}
	n.Adapter = n.Adapters[0]
	n.Port = e.console.NewPort(func() { m.RaiseIRQ(ConsoleIRQLine) })
	mux.Map("console", ConsoleBase, console.Window, n.Port)
	if e.nic != nil {
		n.NICPort = e.nic.NewPort(func() { m.RaiseIRQ(NICIRQLine) })
		mux.Map("nic", NICBase, nic.Window, n.NICPort)
	}
	m.Bus = mux
	n.HV = hypervisor.New(m, cfg.Hypervisor)
	for i := range e.disks {
		base, line := DiskWindow(i)
		n.HV.AttachDevice(device.Window{
			ID: fmt.Sprintf("disk%d", i), Base: base, Size: scsi.AdapterWindow, Line: line,
		}, scsi.NewShadow())
	}
	n.HV.AttachDevice(device.Window{
		ID: "console", Base: ConsoleBase, Size: console.Window,
		Line: ConsoleIRQLine, Unsolicited: true,
	}, console.NewShadow())
	if e.nic != nil {
		n.HV.AttachDevice(device.Window{
			ID: "nic", Base: NICBase, Size: nic.Window,
			Line: NICIRQLine, Unsolicited: true,
		}, nic.NewShadow())
	}
}

// Pair is the two-processor prototype of Figure 1.
type Pair struct {
	K *sim.Kernel
	// Disk is shared disk 0; Disks holds all shared disks.
	Disk    *scsi.Disk
	Disks   []*scsi.Disk
	Console *console.Console
	// NIC is the shared network adapter (nil unless Config.NIC).
	NIC     *nic.NIC
	Primary *Node
	Backup  *Node
	// Net carries protocol traffic: AtoB = primary->backup,
	// BtoA = backup->primary (acknowledgements).
	Net *netsim.Duplex
}

// NewPair builds the full two-processor prototype.
func NewPair(k *sim.Kernel, cfg Config) *Pair {
	pr := &Pair{K: k}
	e := newEnv(k, cfg)
	pr.Disks, pr.Disk, pr.Console, pr.NIC = e.disks, e.disks[0], e.console, e.nic
	pr.Primary = newNode(k, cfg, 0)
	pr.Backup = newNode(k, cfg, 1)
	finishNode(k, cfg, pr.Primary, e, 0)
	finishNode(k, cfg, pr.Backup, e, 1)
	link := cfg.Link
	if link.BitsPerSecond == 0 {
		link = netsim.Ethernet10("hvlink")
	}
	pr.Net = netsim.NewDuplex(k, "hvlink", link)
	return pr
}

// Cluster is the t-fault-tolerant generalization: n processors (node 0
// is the initial primary; nodes 1..n-1 are backups in priority order)
// sharing the device table, with a full mesh of point-to-point links.
type Cluster struct {
	K *sim.Kernel
	// Disk is shared disk 0; Disks holds all shared disks.
	Disk    *scsi.Disk
	Disks   []*scsi.Disk
	Console *console.Console
	// NIC is the shared network adapter (nil unless Config.NIC).
	NIC   *nic.NIC
	Nodes []*Node
	// Links[i][j] (i < j) is the duplex between nodes i and j:
	// AtoB carries i->j, BtoA carries j->i.
	Links [][]*netsim.Duplex

	cfg Config // retained so nodes can be added after construction
	env *env
}

// NewCluster builds an n-node prototype (n >= 2).
func NewCluster(k *sim.Kernel, cfg Config, n int) *Cluster {
	if n < 2 {
		panic("platform: cluster needs at least 2 nodes")
	}
	c := &Cluster{K: k, cfg: cfg}
	c.env = newEnv(k, cfg)
	c.Disks, c.Disk, c.Console, c.NIC = c.env.disks, c.env.disks[0], c.env.console, c.env.nic
	for i := 0; i < n; i++ {
		node := newNode(k, cfg, i)
		finishNode(k, cfg, node, c.env, i)
		c.Nodes = append(c.Nodes, node)
	}
	link := cfg.Link
	if link.BitsPerSecond == 0 {
		link = netsim.Ethernet10("mesh")
	}
	c.Links = make([][]*netsim.Duplex, n)
	for i := 0; i < n; i++ {
		c.Links[i] = make([]*netsim.Duplex, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c.Links[i][j] = netsim.NewDuplex(k, fmt.Sprintf("link%d-%d", i, j), link)
		}
	}
	return c
}

// AddNode grows the cluster by one node (a repaired processor being
// reintegrated): node n is built exactly as a boot-time node n would
// have been — same per-chip TLB-seed perturbation, same device-table
// wiring to the shared environment — and duplex links to every existing
// node are created with the given configuration (zero value: the
// cluster's boot-time link). The new node's machine is blank; the
// caller transfers state into it. Its console port sees scripted input
// events that fire after this instant.
func (c *Cluster) AddNode(link netsim.LinkConfig) *Node {
	n := len(c.Nodes)
	node := newNode(c.K, c.cfg, n)
	finishNode(c.K, c.cfg, node, c.env, n)
	c.Nodes = append(c.Nodes, node)
	if link.BitsPerSecond == 0 {
		link = c.cfg.Link
		if link.BitsPerSecond == 0 {
			link = netsim.Ethernet10("mesh")
		}
	}
	for i := range c.Links {
		c.Links[i] = append(c.Links[i], nil)
	}
	c.Links = append(c.Links, make([]*netsim.Duplex, n+1))
	for i := 0; i < n; i++ {
		c.Links[i][n] = netsim.NewDuplex(c.K, fmt.Sprintf("link%d-%d", i, n), link)
	}
	return node
}

// Channel returns the (tx, rx) pair for node from talking to node to:
// tx carries from->to, rx carries to->from.
func (c *Cluster) Channel(from, to int) (tx, rx *netsim.Link) {
	if from == to {
		panic("platform: self channel")
	}
	if from < to {
		d := c.Links[from][to]
		return d.AtoB, d.BtoA
	}
	d := c.Links[to][from]
	return d.BtoA, d.AtoB
}

// Release returns every node's machine buffers to the machine package's
// recycling pools. Call only on teardown, after the simulation kernel
// has shut down: the machines must never run again.
func (c *Cluster) Release() {
	for _, n := range c.Nodes {
		n.M.Release()
	}
}

// Single is a one-processor platform for bare-hardware baseline runs.
type Single struct {
	K *sim.Kernel
	// Disk is shared disk 0; Disks holds all disks.
	Disk    *scsi.Disk
	Disks   []*scsi.Disk
	Console *console.Console
	// NIC is the shared network adapter (nil unless Config.NIC).
	NIC  *nic.NIC
	Node *Node
	Bare *hypervisor.Bare
}

// NewSingle builds a single machine with the same devices, to be run
// bare (no hypervisor) for the paper's RT baseline.
func NewSingle(k *sim.Kernel, cfg Config) *Single {
	s := &Single{K: k}
	e := newEnv(k, cfg)
	s.Disks, s.Disk, s.Console, s.NIC = e.disks, e.disks[0], e.console, e.nic
	s.Node = newNode(k, cfg, 0)
	finishNode(k, cfg, s.Node, e, 0)
	s.Bare = hypervisor.NewBare(s.Node.M)
	return s
}

// Release returns the node's machine buffers to the machine package's
// recycling pools. Call only on teardown, after the simulation kernel
// has shut down: the machine must never run again.
func (s *Single) Release() { s.Node.M.Release() }
