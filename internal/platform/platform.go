// Package platform assembles complete simulated machines in the paper's
// prototype configuration (Figure 1): one or two HP-9000/720-class
// processors, a dual-ported SCSI disk shared between them, a console,
// and — for a pair — a point-to-point link between the two hypervisors.
package platform

import (
	"fmt"

	"repro/internal/console"
	"repro/internal/hypervisor"
	"repro/internal/machine"
	"repro/internal/netsim"
	"repro/internal/scsi"
	"repro/internal/sim"
)

// Memory-map and interrupt wiring shared by all configurations.
const (
	// AdapterBase is the SCSI adapter window offset within MMIO space.
	AdapterBase uint32 = 0x0000
	// ConsoleBase is the console window offset within MMIO space.
	ConsoleBase uint32 = 0x1000
	// DiskIRQLine is the external interrupt line of the SCSI adapter.
	DiskIRQLine uint = 1
	// CycleTime is the simulated instruction period (50 MIPS).
	CycleTime = 20 * sim.Nanosecond
)

// Config bundles the tunables of a platform.
type Config struct {
	// Machine configures the processors (identical configs; the TLB
	// seed is perturbed per node to model per-chip nondeterminism).
	Machine machine.Config
	// Hypervisor configures both hypervisors (epoch length, costs).
	Hypervisor hypervisor.Config
	// Disk configures the shared disk.
	Disk scsi.DiskConfig
	// Link configures the hypervisor-to-hypervisor channel (both
	// directions); zero value = 10 Mbps Ethernet.
	Link netsim.LinkConfig
}

// Node is one processor with its device bindings.
type Node struct {
	M       *machine.Machine
	HV      *hypervisor.Hypervisor
	Adapter *scsi.Adapter
	Console *console.Console
}

// Pair is the two-processor prototype of Figure 1.
type Pair struct {
	K       *sim.Kernel
	Disk    *scsi.Disk
	Primary *Node
	Backup  *Node
	// Net carries protocol traffic: AtoB = primary->backup,
	// BtoA = backup->primary (acknowledgements).
	Net *netsim.Duplex
}

// newNode builds one processor wired to the shared disk. Each node gets
// its own TLB seed (chip-internal nondeterminism differs per processor)
// and a time-of-day clock driven by the simulation clock.
func newNode(k *sim.Kernel, cfg Config, host int) *Node {
	mc := cfg.Machine
	mc.CPUID = uint32(host + 1)
	mc.TLBSeed = cfg.Machine.TLBSeed + int64(host)*7919
	if mc.TODSource == nil {
		mc.TODSource = func() uint32 { return uint32(k.Now() / CycleTime) }
	}
	return &Node{M: machine.New(mc), Console: console.New()}
}

// finishNode wires the node's bus and hypervisor once the disk exists.
func finishNode(k *sim.Kernel, cfg Config, n *Node, disk *scsi.Disk, host int) {
	m := n.M
	n.Adapter = disk.NewAdapter(host, m, func() { m.RaiseIRQ(DiskIRQLine) })
	mux := machine.NewBusMux()
	mux.Map("scsi0", AdapterBase, scsi.AdapterWindow, n.Adapter)
	mux.Map("console", ConsoleBase, console.Window, n.Console)
	m.Bus = mux
	n.HV = hypervisor.New(m, cfg.Hypervisor)
	n.HV.AttachAdapter(AdapterBase, DiskIRQLine)
	n.HV.AttachConsole(ConsoleBase)
}

// NewPair builds the full two-processor prototype.
func NewPair(k *sim.Kernel, cfg Config) *Pair {
	pr := &Pair{K: k}
	pr.Disk = scsi.NewDisk(k, cfg.Disk)
	pr.Primary = newNode(k, cfg, 0)
	pr.Backup = newNode(k, cfg, 1)
	finishNode(k, cfg, pr.Primary, pr.Disk, 0)
	finishNode(k, cfg, pr.Backup, pr.Disk, 1)
	link := cfg.Link
	if link.BitsPerSecond == 0 {
		link = netsim.Ethernet10("hvlink")
	}
	pr.Net = netsim.NewDuplex(k, "hvlink", link)
	return pr
}

// Cluster is the t-fault-tolerant generalization: n processors (node 0
// is the initial primary; nodes 1..n-1 are backups in priority order)
// sharing one disk, with a full mesh of point-to-point links.
type Cluster struct {
	K     *sim.Kernel
	Disk  *scsi.Disk
	Nodes []*Node
	// Links[i][j] (i < j) is the duplex between nodes i and j:
	// AtoB carries i->j, BtoA carries j->i.
	Links [][]*netsim.Duplex

	cfg Config // retained so nodes can be added after construction
}

// NewCluster builds an n-node prototype (n >= 2).
func NewCluster(k *sim.Kernel, cfg Config, n int) *Cluster {
	if n < 2 {
		panic("platform: cluster needs at least 2 nodes")
	}
	c := &Cluster{K: k, cfg: cfg}
	c.Disk = scsi.NewDisk(k, cfg.Disk)
	for i := 0; i < n; i++ {
		node := newNode(k, cfg, i)
		finishNode(k, cfg, node, c.Disk, i)
		c.Nodes = append(c.Nodes, node)
	}
	link := cfg.Link
	if link.BitsPerSecond == 0 {
		link = netsim.Ethernet10("mesh")
	}
	c.Links = make([][]*netsim.Duplex, n)
	for i := 0; i < n; i++ {
		c.Links[i] = make([]*netsim.Duplex, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c.Links[i][j] = netsim.NewDuplex(k, fmt.Sprintf("link%d-%d", i, j), link)
		}
	}
	return c
}

// AddNode grows the cluster by one node (a repaired processor being
// reintegrated): node n is built exactly as a boot-time node n would
// have been — same per-chip TLB-seed perturbation, same device wiring
// to the shared disk — and duplex links to every existing node are
// created with the given configuration (zero value: the cluster's
// boot-time link). The new node's machine is blank; the caller
// transfers state into it.
func (c *Cluster) AddNode(link netsim.LinkConfig) *Node {
	n := len(c.Nodes)
	node := newNode(c.K, c.cfg, n)
	finishNode(c.K, c.cfg, node, c.Disk, n)
	c.Nodes = append(c.Nodes, node)
	if link.BitsPerSecond == 0 {
		link = c.cfg.Link
		if link.BitsPerSecond == 0 {
			link = netsim.Ethernet10("mesh")
		}
	}
	for i := range c.Links {
		c.Links[i] = append(c.Links[i], nil)
	}
	c.Links = append(c.Links, make([]*netsim.Duplex, n+1))
	for i := 0; i < n; i++ {
		c.Links[i][n] = netsim.NewDuplex(c.K, fmt.Sprintf("link%d-%d", i, n), link)
	}
	return node
}

// Channel returns the (tx, rx) pair for node from talking to node to:
// tx carries from->to, rx carries to->from.
func (c *Cluster) Channel(from, to int) (tx, rx *netsim.Link) {
	if from == to {
		panic("platform: self channel")
	}
	if from < to {
		d := c.Links[from][to]
		return d.AtoB, d.BtoA
	}
	d := c.Links[to][from]
	return d.BtoA, d.AtoB
}

// Single is a one-processor platform for bare-hardware baseline runs.
type Single struct {
	K    *sim.Kernel
	Disk *scsi.Disk
	Node *Node
	Bare *hypervisor.Bare
}

// NewSingle builds a single machine with the same devices, to be run
// bare (no hypervisor) for the paper's RT baseline.
func NewSingle(k *sim.Kernel, cfg Config) *Single {
	s := &Single{K: k}
	s.Disk = scsi.NewDisk(k, cfg.Disk)
	s.Node = newNode(k, cfg, 0)
	finishNode(k, cfg, s.Node, s.Disk, 0)
	s.Bare = hypervisor.NewBare(s.Node.M)
	return s
}
