package clientsim

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/sim"
)

// echoServer answers every accepted request immediately through a NIC
// port, like an infinitely fast guest (unit-test stand-in).
func echoServer(n *nic.NIC) *nic.Port {
	p := n.NewPort(nil)
	n.OnIngress = func(seq uint32, words []uint32) {
		for p.Pending() > 0 {
			ln, _ := p.MMIOLoad(nic.RegRxLen, 4)
			var sum, id uint32
			for j := uint32(0); j < ln; j++ {
				w, _ := p.MMIOLoad(nic.RegRxData, 4)
				if j == 0 {
					id = w
				} else {
					sum = sum*31 + w
				}
			}
			p.MMIOStore(nic.RegTxData, 4, id)
			p.MMIOStore(nic.RegTxData, 4, sum^id)
			p.MMIOStore(nic.RegTxDoorbell, 4, 2)
		}
	}
	return p
}

func TestOpenLoopLoadIsServedAndMeasured(t *testing.T) {
	k := sim.NewKernel(7)
	n := nic.New()
	echoServer(n)
	net := netsim.NewDuplex(k, "clients", netsim.Ethernet10("clients"))
	cs := New(k, Config{Requests: 40, Clients: 8}, n, net)
	cs.Start()
	k.RunUntil(1 * sim.Second)

	m := cs.Measure()
	if m.Requests != 40 || m.Answered != 40 {
		t.Fatalf("issued %d answered %d, want 40/40", m.Requests, m.Answered)
	}
	if m.Retransmits != 0 {
		t.Fatalf("unexpected retransmits: %d", m.Retransmits)
	}
	if m.P50 <= 0 || m.P99 < m.P50 || m.Max < m.P999 {
		t.Fatalf("implausible latency distribution: %+v", m)
	}
	if n.Stats.Requests != 40 || n.Stats.TxFrames != 40 {
		t.Fatalf("nic stats: %+v", n.Stats)
	}
}

func TestRetransmitDuringOutage(t *testing.T) {
	k := sim.NewKernel(7)
	n := nic.New()
	p := n.NewPort(nil)
	// The server ignores requests until t=10ms (an outage), then serves
	// everything pending.
	serve := func() {
		for p.Pending() > 0 {
			ln, _ := p.MMIOLoad(nic.RegRxLen, 4)
			var id uint32
			for j := uint32(0); j < ln; j++ {
				w, _ := p.MMIOLoad(nic.RegRxData, 4)
				if j == 0 {
					id = w
				}
			}
			p.MMIOStore(nic.RegTxData, 4, id)
			p.MMIOStore(nic.RegTxData, 4, id)
			p.MMIOStore(nic.RegTxDoorbell, 4, 2)
		}
	}
	k.At(10*sim.Millisecond, serve)
	net := netsim.NewDuplex(k, "clients", netsim.Ethernet10("clients"))
	cs := New(k, Config{Requests: 10, Clients: 4, Timeout: 1 * sim.Millisecond}, n, net)
	cs.Start()
	k.RunUntil(1 * sim.Second)

	m := cs.Measure()
	if m.Answered != 10 {
		t.Fatalf("answered %d, want 10", m.Answered)
	}
	if m.Retransmits == 0 {
		t.Fatal("a 10ms outage with a 1ms timeout must force retransmissions")
	}
	// Retransmissions must never reach the guest: one accepted request
	// frame per distinct request, regardless of attempts.
	if n.Stats.Requests != 10 {
		t.Fatalf("nic accepted %d distinct requests, want 10", n.Stats.Requests)
	}
	if n.Stats.Retransmits == 0 {
		t.Fatal("nic saw no duplicate frames despite retransmissions")
	}
	// The outage is visible in the measured blackout window.
	if bo := cs.Blackout(5 * sim.Millisecond); bo < 5*sim.Millisecond {
		t.Fatalf("blackout = %v, want >= 5ms", bo)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (uint64, string) {
		k := sim.NewKernel(99)
		n := nic.New()
		echoServer(n)
		net := netsim.NewDuplex(k, "clients", netsim.ATM155("clients"))
		cs := New(k, Config{Requests: 25}, n, net)
		cs.Start()
		k.RunUntil(1 * sim.Second)
		return cs.StateDigest(), n.Replies()
	}
	d1, r1 := run()
	d2, r2 := run()
	if d1 != d2 || r1 != r2 {
		t.Fatal("two identically-seeded runs diverged")
	}
}
