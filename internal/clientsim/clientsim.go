// Package clientsim simulates the client population of a replicated
// network service: many concurrent logical connections multiplexed over
// a netsim link into the cluster's shared NIC. It is the measurement
// half of the ROADMAP's "serve heavy traffic" north star — the paper's
// fault-tolerance discipline governs what the SERVER emits; this
// package models what the CLIENTS observe, including the failover
// blackout.
//
// Design constraints, and how they are met:
//
//   - OPEN LOOP: request arrivals follow a seeded schedule that does
//     not depend on reply timing (each arrival schedules the next), so
//     a slow or failed-over server faces the same offered load as a
//     healthy one — latency is measured against demand, not throttled
//     by it.
//   - RETRANSMIT, NEVER MASK: a client that misses its reply within
//     the timeout retransmits the SAME request id. The NIC's
//     receiver-side dedup keeps retransmissions out of the guest (the
//     reply stream stays byte-identical to the bare run), but the
//     retransmissions still cost the client real waiting time — the
//     blackout is observed in the latency tail, not hidden.
//   - EVENT-DRIVEN: the population lives entirely in kernel timer
//     callbacks (sim.Kernel.At) and link delivery hooks. It spawns no
//     processes, so session completion semantics (every spawned
//     process has exited) are untouched, and a session snapshot taken
//     mid-load replays deterministically: all client state is a
//     function of the seed and the virtual clock.
//   - DETERMINISTIC CONTENT: request payloads are a pure function of
//     (seed, request id), never of arrival timing, so the bare and
//     replicated guests compute identical replies even though their
//     timing differs.
package clientsim

import (
	"hash/fnv"
	"sort"

	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/sim"
)

// Config parameterizes the client population.
type Config struct {
	// Clients is the number of concurrent logical connections the
	// requests are multiplexed over (round-robin).
	Clients int
	// Requests is the number of distinct requests to issue. It must
	// equal the guest server workload's Ops or the run never completes.
	Requests int
	// PayloadWords is the number of payload words per request frame
	// (the request id is carried separately; default 4).
	PayloadWords int
	// Start is the virtual time of the first arrival (default 200 µs,
	// past guest boot).
	Start sim.Time
	// MeanGap is the open-loop mean inter-arrival time (default 50 µs).
	MeanGap sim.Time
	// Timeout is the client retransmission timeout (default 2 ms).
	Timeout sim.Time
}

func (c Config) withDefaults() Config {
	if c.Clients == 0 {
		c.Clients = 64
	}
	if c.PayloadWords == 0 {
		c.PayloadWords = 4
	}
	if c.Start == 0 {
		c.Start = 200 * sim.Microsecond
	}
	if c.MeanGap == 0 {
		c.MeanGap = 50 * sim.Microsecond
	}
	if c.Timeout == 0 {
		c.Timeout = 2 * sim.Millisecond
	}
	return c
}

// reqState tracks one logical request from first transmission to the
// client-observed reply arrival.
type reqState struct {
	client   int
	firstAt  sim.Time // first transmission
	attempts uint32   // transmissions so far
	replyAt  sim.Time // client-side reply arrival (0 = still waiting)
}

// Stats summarizes the population's activity.
type Stats struct {
	Issued      int    // distinct requests sent so far
	Answered    int    // requests whose reply reached the client
	Retransmits uint64 // retransmissions sent
}

// Sim is the client population. Create with New, then Start once the
// simulation is wired; everything after that is event-driven.
type Sim struct {
	k    *sim.Kernel
	cfg  Config
	n    *nic.NIC
	req  *netsim.Link // clients -> NIC (real FIFO serialization)
	rep  *netsim.Link // NIC -> clients (reply-direction cost model)
	rng  func() uint64
	st   []reqState
	stat Stats
}

// New wires a client population to the shared NIC over a duplex client
// access link. net.AtoB carries requests (its OnDeliver hook is taken
// over); net.BtoA prices the reply direction.
func New(k *sim.Kernel, cfg Config, n *nic.NIC, net *netsim.Duplex) *Sim {
	cfg = cfg.withDefaults()
	s := &Sim{
		k: k, cfg: cfg, n: n,
		req: net.AtoB, rep: net.BtoA,
		st: make([]reqState, cfg.Requests),
	}
	r := k.NewRand("clientsim")
	s.rng = func() uint64 { return uint64(r.Int63()) }
	s.req.OnDeliver = s.ingress
	n.OnTx = s.reply
	return s
}

// Start schedules the first arrival. Call once, at boot.
func (s *Sim) Start() {
	if s.cfg.Requests == 0 {
		return
	}
	s.k.At(s.cfg.Start, func() { s.arrive(1) })
}

// Config returns the population's configuration (defaults applied).
func (s *Sim) Config() Config { return s.cfg }

// Stats returns the population's counters.
func (s *Sim) Stats() Stats { return s.stat }

// payload builds request id's frame: [id, payload words...], each word
// a pure mix of (kernel seed, id, index).
func (s *Sim) payload(id uint32) []uint32 {
	words := make([]uint32, 1+s.cfg.PayloadWords)
	words[0] = id
	x := uint64(s.k.Seed())*0x9E3779B97F4A7C15 + uint64(id)
	for i := 1; i < len(words); i++ {
		x ^= x >> 33
		x *= 0xFF51AFD7ED558CCD
		x ^= x >> 29
		words[i] = uint32(x)
	}
	return words
}

// arrive issues request id (open loop: the NEXT arrival is scheduled
// here, independent of any reply).
func (s *Sim) arrive(id uint32) {
	i := int(id) - 1
	s.st[i].client = i % s.cfg.Clients
	s.st[i].firstAt = s.k.Now()
	s.stat.Issued++
	s.send(id)
	if int(id) < s.cfg.Requests {
		// Uniform in [MeanGap/2, 3*MeanGap/2): open-loop jitter drawn
		// from the population's own derived stream.
		gap := s.cfg.MeanGap/2 + sim.Time(s.rng()%uint64(s.cfg.MeanGap))
		s.k.After(gap, func() { s.arrive(id + 1) })
	}
}

// send transmits request id over the access link and arms the
// retransmission timer.
func (s *Sim) send(id uint32) {
	i := int(id) - 1
	s.st[i].attempts++
	if s.st[i].attempts > 1 {
		s.stat.Retransmits++
	}
	words := s.payload(id)
	s.req.Send(words, 4*len(words))
	s.k.After(s.cfg.Timeout, func() { s.timeout(id) })
}

// timeout retransmits request id if its reply has not been emitted.
func (s *Sim) timeout(id uint32) {
	if s.st[int(id)-1].replyAt != 0 {
		return
	}
	s.send(id)
}

// ingress delivers one request frame into the shared NIC. A duplicate
// of an already-answered request is answered from the NIC's reply log
// — the environment retransmitting a reply the guest already produced.
func (s *Sim) ingress(m netsim.Message) {
	words := m.Payload.([]uint32)
	if reply, _ := s.n.Ingress(words); reply != nil {
		s.reply(reply)
	}
}

// reply observes one emitted (or replayed) reply frame and records the
// client-side arrival: emission time plus the reply direction's
// idle-link transfer cost. First arrival wins; later redeliveries of
// the same reply are ignored.
func (s *Sim) reply(words []uint32) {
	if len(words) == 0 {
		return
	}
	id := int(words[0])
	if id < 1 || id > len(s.st) {
		return
	}
	st := &s.st[id-1]
	if st.replyAt != 0 {
		return
	}
	st.replyAt = s.k.Now() + s.rep.TransferTime(4*len(words))
	s.stat.Answered++
}

// Latencies describes the client-observed request latency distribution
// and the population's counters (virtual time).
type Latencies struct {
	Requests    int
	Answered    int
	Retransmits uint64
	P50         sim.Time
	P99         sim.Time
	P999        sim.Time
	Max         sim.Time
}

// Measure computes the latency distribution over answered requests.
func (s *Sim) Measure() Latencies {
	var lat []sim.Time
	for i := range s.st {
		if s.st[i].replyAt != 0 {
			lat = append(lat, s.st[i].replyAt-s.st[i].firstAt)
		}
	}
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	m := Latencies{
		Requests:    s.stat.Issued,
		Answered:    s.stat.Answered,
		Retransmits: s.stat.Retransmits,
	}
	if len(lat) == 0 {
		return m
	}
	pick := func(q int, of int) sim.Time {
		i := (len(lat)*q + of - 1) / of
		if i >= len(lat) {
			i = len(lat) - 1
		}
		return lat[i]
	}
	m.P50 = pick(50, 100)
	m.P99 = pick(99, 100)
	m.P999 = pick(999, 1000)
	m.Max = lat[len(lat)-1]
	return m
}

// Blackout returns the client-visible service gap around a failover at
// time at: the interval from the last reply arrival at or before it to
// the first reply arrival after it. Zero when no reply follows (or
// none preceded and none followed).
func (s *Sim) Blackout(at sim.Time) sim.Time {
	var before, after sim.Time
	after = -1
	for i := range s.st {
		r := s.st[i].replyAt
		if r == 0 {
			continue
		}
		if r <= at && r > before {
			before = r
		}
		if r > at && (after < 0 || r < after) {
			after = r
		}
	}
	if after < 0 {
		return 0
	}
	return after - before
}

// StateDigest returns a deterministic hash of the population's dynamic
// state — per-request transmission and reply watermarks — for session
// snapshot verification: a restored run must reproduce every in-flight
// connection exactly.
func (s *Sim) StateDigest() uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	put(uint64(s.stat.Issued))
	put(uint64(s.stat.Answered))
	put(s.stat.Retransmits)
	for i := range s.st {
		put(uint64(s.st[i].firstAt))
		put(uint64(s.st[i].attempts))
		put(uint64(s.st[i].replyAt))
	}
	return h.Sum64()
}
