package asm

import (
	"strconv"
	"strings"

	"repro/internal/isa"
)

// mnemonic word counts; every mnemonic assembles to a fixed number of
// words so that pass 1 can lay out labels without evaluating operands.
var pseudoSizes = map[string]uint32{
	"li": 2, "la": 2,
}

// opByMnemonic maps assembly mnemonics to opcodes.
var opByMnemonic = map[string]isa.Op{}

func init() {
	for op := isa.Op(1); op < 64; op++ {
		if op.Valid() {
			opByMnemonic[op.String()] = op
		}
	}
}

// instruction assembles one instruction (or pseudo-instruction) line.
func (a *assembler) instruction(ln sourceLine, mnemonic, rest string) error {
	if err := a.flushBytes(ln.num); err != nil {
		return err
	}
	size, isPseudo := pseudoSizes[mnemonic]
	if !isPseudo {
		switch mnemonic {
		case "mov", "b", "call", "ret":
			size = 1
			isPseudo = true
		default:
			if _, ok := opByMnemonic[mnemonic]; !ok {
				return a.errf(ln.num, "unknown mnemonic %q", mnemonic)
			}
			size = 1
		}
	}
	if a.pass == 1 {
		a.loc += 4 * size
		return nil
	}

	ops := splitOperands(rest)
	emit := func(in isa.Inst) error {
		w, err := isa.Encode(in)
		if err != nil {
			return a.errf(ln.num, "%v", err)
		}
		return a.emitWord(ln, w)
	}

	reg := func(i int) (isa.Reg, error) {
		if i >= len(ops) {
			return 0, a.errf(ln.num, "%s: missing operand %d", mnemonic, i+1)
		}
		r, ok := parseReg(ops[i])
		if !ok {
			return 0, a.errf(ln.num, "%s: bad register %q", mnemonic, ops[i])
		}
		return r, nil
	}
	val := func(i int) (uint32, error) {
		if i >= len(ops) {
			return 0, a.errf(ln.num, "%s: missing operand %d", mnemonic, i+1)
		}
		return a.eval(ln, ops[i])
	}
	wantOps := func(n int) error {
		if len(ops) != n {
			return a.errf(ln.num, "%s: want %d operands, got %d", mnemonic, n, len(ops))
		}
		return nil
	}
	// branchOff computes the signed word offset from the next instruction
	// to an absolute target address.
	branchOff := func(target uint32) (int32, error) {
		next := a.loc + 4
		diff := int64(int32(target)) - int64(int32(next))
		if diff%4 != 0 {
			return 0, a.errf(ln.num, "%s: branch target 0x%x not word-aligned", mnemonic, target)
		}
		return int32(diff / 4), nil
	}

	if isPseudo {
		switch mnemonic {
		case "li", "la":
			if err := wantOps(2); err != nil {
				return err
			}
			rd, err := reg(0)
			if err != nil {
				return err
			}
			v, err := val(1)
			if err != nil {
				return err
			}
			hi := int32(v >> 11)
			lo := int32(v & 0x7FF)
			if err := emit(isa.Inst{Op: isa.OpLUI, Rd: rd, Imm: hi}); err != nil {
				return err
			}
			return emit(isa.Inst{Op: isa.OpORI, Rd: rd, R1: rd, Imm: lo})
		case "mov":
			if err := wantOps(2); err != nil {
				return err
			}
			rd, err := reg(0)
			if err != nil {
				return err
			}
			rs, err := reg(1)
			if err != nil {
				return err
			}
			return emit(isa.Inst{Op: isa.OpOR, Rd: rd, R1: rs, R2: isa.RegZero})
		case "b":
			if err := wantOps(1); err != nil {
				return err
			}
			v, err := val(0)
			if err != nil {
				return err
			}
			off, err := branchOff(v)
			if err != nil {
				return err
			}
			return emit(isa.Inst{Op: isa.OpBEQ, R1: isa.RegZero, R2: isa.RegZero, Imm: off})
		case "call":
			if err := wantOps(1); err != nil {
				return err
			}
			v, err := val(0)
			if err != nil {
				return err
			}
			off, err := branchOff(v)
			if err != nil {
				return err
			}
			return emit(isa.Inst{Op: isa.OpBL, Rd: isa.RegRP, Imm: off})
		case "ret":
			if err := wantOps(0); err != nil {
				return err
			}
			return emit(isa.Inst{Op: isa.OpBV, R1: isa.RegRP})
		}
	}

	op := opByMnemonic[mnemonic]
	switch op {
	case isa.OpADD, isa.OpSUB, isa.OpAND, isa.OpOR, isa.OpXOR, isa.OpSLL,
		isa.OpSRL, isa.OpSRA, isa.OpSLT, isa.OpSLTU, isa.OpMUL, isa.OpDIV, isa.OpREM:
		if err := wantOps(3); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		r1, err := reg(1)
		if err != nil {
			return err
		}
		r2, err := reg(2)
		if err != nil {
			return err
		}
		return emit(isa.Inst{Op: op, Rd: rd, R1: r1, R2: r2})

	case isa.OpADDI, isa.OpANDI, isa.OpORI, isa.OpXORI, isa.OpSLTI,
		isa.OpSLTIU, isa.OpSLLI, isa.OpSRLI, isa.OpSRAI:
		if err := wantOps(3); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		r1, err := reg(1)
		if err != nil {
			return err
		}
		v, err := val(2)
		if err != nil {
			return err
		}
		return emit(isa.Inst{Op: op, Rd: rd, R1: r1, Imm: immFor(op, v)})

	case isa.OpLUI:
		if err := wantOps(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		v, err := val(1)
		if err != nil {
			return err
		}
		return emit(isa.Inst{Op: op, Rd: rd, Imm: int32(v)})

	case isa.OpLDW, isa.OpLDH, isa.OpLDB, isa.OpSTW, isa.OpSTH, isa.OpSTB:
		if err := wantOps(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		off, base, err := a.memOperand(ln, mnemonic, ops[1])
		if err != nil {
			return err
		}
		return emit(isa.Inst{Op: op, Rd: rd, R1: base, Imm: off})

	case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU:
		if err := wantOps(3); err != nil {
			return err
		}
		r1, err := reg(0)
		if err != nil {
			return err
		}
		r2, err := reg(1)
		if err != nil {
			return err
		}
		v, err := val(2)
		if err != nil {
			return err
		}
		off, err := branchOff(v)
		if err != nil {
			return err
		}
		return emit(isa.Inst{Op: op, R1: r1, R2: r2, Imm: off})

	case isa.OpBL, isa.OpGATE:
		if err := wantOps(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		v, err := val(1)
		if err != nil {
			return err
		}
		off, err := branchOff(v)
		if err != nil {
			return err
		}
		return emit(isa.Inst{Op: op, Rd: rd, Imm: off})

	case isa.OpBV:
		if err := wantOps(1); err != nil {
			return err
		}
		r1, err := reg(0)
		if err != nil {
			return err
		}
		return emit(isa.Inst{Op: op, R1: r1})

	case isa.OpMFCTL:
		if err := wantOps(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		cr, ok := isa.CRByName(strings.TrimSpace(ops[1]))
		if !ok {
			return a.errf(ln.num, "mfctl: bad control register %q", ops[1])
		}
		return emit(isa.Inst{Op: op, Rd: rd, Imm: int32(cr)})

	case isa.OpMTCTL:
		if err := wantOps(2); err != nil {
			return err
		}
		cr, ok := isa.CRByName(strings.TrimSpace(ops[0]))
		if !ok {
			return a.errf(ln.num, "mtctl: bad control register %q", ops[0])
		}
		r1, err := reg(1)
		if err != nil {
			return err
		}
		return emit(isa.Inst{Op: op, R1: r1, Imm: int32(cr)})

	case isa.OpPROBE:
		if err := wantOps(3); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		r1, err := reg(1)
		if err != nil {
			return err
		}
		v, err := val(2)
		if err != nil {
			return err
		}
		return emit(isa.Inst{Op: op, Rd: rd, R1: r1, Imm: int32(v)})

	case isa.OpITLBI:
		if err := wantOps(2); err != nil {
			return err
		}
		r1, err := reg(0)
		if err != nil {
			return err
		}
		r2, err := reg(1)
		if err != nil {
			return err
		}
		return emit(isa.Inst{Op: op, R1: r1, R2: r2})

	case isa.OpBREAK, isa.OpDIAG:
		code := uint32(0)
		if len(ops) > 1 {
			return a.errf(ln.num, "%s: want at most 1 operand", mnemonic)
		}
		if len(ops) == 1 {
			v, err := val(0)
			if err != nil {
				return err
			}
			code = v
		}
		return emit(isa.Inst{Op: op, Imm: int32(code & 0xFFFF)})

	case isa.OpMFTOD:
		if err := wantOps(1); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		return emit(isa.Inst{Op: op, Rd: rd})

	case isa.OpRFI, isa.OpHALT, isa.OpWFI, isa.OpPTLB, isa.OpNOP:
		if err := wantOps(0); err != nil {
			return err
		}
		return emit(isa.Inst{Op: op})
	}
	return a.errf(ln.num, "unhandled mnemonic %q", mnemonic)
}

// immFor converts an evaluated 32-bit value into the immediate form the
// opcode expects (sign-interpreted for signed immediates).
func immFor(op isa.Op, v uint32) int32 {
	switch op {
	case isa.OpANDI, isa.OpORI, isa.OpXORI:
		return int32(v & 0xFFFF)
	case isa.OpSLLI, isa.OpSRLI, isa.OpSRAI:
		return int32(v & 31)
	default:
		return int32(int16(uint16(v)))
	}
}

// memOperand parses "EXPR(reg)" or "(reg)" or "EXPR" (base r0).
func (a *assembler) memOperand(ln sourceLine, mnemonic, s string) (int32, isa.Reg, error) {
	s = strings.TrimSpace(s)
	open := strings.LastIndex(s, "(")
	if open < 0 {
		v, err := a.eval(ln, s)
		if err != nil {
			return 0, 0, err
		}
		return int32(int16(uint16(v))), isa.RegZero, nil
	}
	if !strings.HasSuffix(s, ")") {
		return 0, 0, a.errf(ln.num, "%s: malformed memory operand %q", mnemonic, s)
	}
	baseTok := strings.TrimSpace(s[open+1 : len(s)-1])
	base, ok := parseReg(baseTok)
	if !ok {
		// Not a register in parens: the parens are part of the expression.
		v, err := a.eval(ln, s)
		if err != nil {
			return 0, 0, err
		}
		return int32(int16(uint16(v))), isa.RegZero, nil
	}
	offExpr := strings.TrimSpace(s[:open])
	var off uint32
	if offExpr != "" {
		v, err := a.eval(ln, offExpr)
		if err != nil {
			return 0, 0, err
		}
		off = v
	}
	ov := int32(off)
	if ov < -(1<<15) || ov >= 1<<15 {
		// Allow small unsigned values that fit when reinterpreted.
		if off < 1<<15 {
			ov = int32(off)
		} else {
			return 0, 0, a.errf(ln.num, "%s: offset %d out of imm16 range", mnemonic, int32(off))
		}
	}
	return ov, base, nil
}

// --- expression evaluator -------------------------------------------------

// eval evaluates an expression; in pass 2 undefined symbols are errors.
func (a *assembler) eval(ln sourceLine, s string) (uint32, error) {
	p := &exprParser{a: a, ln: ln, s: s}
	v, err := p.parse()
	if err != nil {
		return 0, err
	}
	if p.undef != "" && a.pass == 2 {
		return 0, a.errf(ln.num, "undefined symbol %q", p.undef)
	}
	if p.undef != "" && a.layoutSensitive {
		return 0, a.errf(ln.num, "forward reference %q in layout directive", p.undef)
	}
	return v, nil
}

type exprParser struct {
	a     *assembler
	ln    sourceLine
	s     string
	pos   int
	undef string // first undefined symbol encountered (pass 1 tolerates)
}

func (p *exprParser) parse() (uint32, error) {
	v, err := p.parseOr()
	if err != nil {
		return 0, err
	}
	p.skipSpace()
	if p.pos != len(p.s) {
		return 0, p.errf("trailing junk %q in expression", p.s[p.pos:])
	}
	return v, nil
}

func (p *exprParser) errf(format string, args ...any) error {
	return p.a.errf(p.ln.num, format, args...)
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) peek() byte {
	if p.pos < len(p.s) {
		return p.s[p.pos]
	}
	return 0
}

func (p *exprParser) parseOr() (uint32, error) {
	v, err := p.parseAnd()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		if p.peek() == '|' {
			p.pos++
			r, err := p.parseAnd()
			if err != nil {
				return 0, err
			}
			v |= r
			continue
		}
		return v, nil
	}
}

func (p *exprParser) parseAnd() (uint32, error) {
	v, err := p.parseShift()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		if p.peek() == '&' {
			p.pos++
			r, err := p.parseShift()
			if err != nil {
				return 0, err
			}
			v &= r
			continue
		}
		return v, nil
	}
}

func (p *exprParser) parseShift() (uint32, error) {
	v, err := p.parseAdd()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		if strings.HasPrefix(p.s[p.pos:], "<<") {
			p.pos += 2
			r, err := p.parseAdd()
			if err != nil {
				return 0, err
			}
			v <<= r & 31
			continue
		}
		if strings.HasPrefix(p.s[p.pos:], ">>") {
			p.pos += 2
			r, err := p.parseAdd()
			if err != nil {
				return 0, err
			}
			v >>= r & 31
			continue
		}
		return v, nil
	}
}

func (p *exprParser) parseAdd() (uint32, error) {
	v, err := p.parseMul()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		switch p.peek() {
		case '+':
			p.pos++
			r, err := p.parseMul()
			if err != nil {
				return 0, err
			}
			v += r
		case '-':
			p.pos++
			r, err := p.parseMul()
			if err != nil {
				return 0, err
			}
			v -= r
		default:
			return v, nil
		}
	}
}

func (p *exprParser) parseMul() (uint32, error) {
	v, err := p.parseUnary()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		if p.peek() == '*' {
			p.pos++
			r, err := p.parseUnary()
			if err != nil {
				return 0, err
			}
			v *= r
			continue
		}
		return v, nil
	}
}

func (p *exprParser) parseUnary() (uint32, error) {
	p.skipSpace()
	switch p.peek() {
	case '-':
		p.pos++
		v, err := p.parseUnary()
		return -v, err
	case '~':
		p.pos++
		v, err := p.parseUnary()
		return ^v, err
	}
	return p.parsePrimary()
}

func (p *exprParser) parsePrimary() (uint32, error) {
	p.skipSpace()
	if p.pos >= len(p.s) {
		return 0, p.errf("unexpected end of expression %q", p.s)
	}
	c := p.s[p.pos]
	switch {
	case c == '(':
		p.pos++
		v, err := p.parseOr()
		if err != nil {
			return 0, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return 0, p.errf("missing ) in expression %q", p.s)
		}
		p.pos++
		return v, nil
	case c == '%':
		// %hi(expr) / %lo(expr)
		rest := p.s[p.pos:]
		var fn string
		switch {
		case strings.HasPrefix(rest, "%hi("):
			fn = "hi"
			p.pos += 4
		case strings.HasPrefix(rest, "%lo("):
			fn = "lo"
			p.pos += 4
		default:
			return 0, p.errf("unknown %% function in %q", p.s)
		}
		v, err := p.parseOr()
		if err != nil {
			return 0, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return 0, p.errf("missing ) after %%%s", fn)
		}
		p.pos++
		if fn == "hi" {
			return v >> 11, nil
		}
		return v & 0x7FF, nil
	case c == '\'':
		// character literal 'x' or '\n'
		if p.pos+2 < len(p.s) && p.s[p.pos+1] == '\\' {
			if p.pos+3 >= len(p.s) || p.s[p.pos+3] != '\'' {
				return 0, p.errf("bad character literal in %q", p.s)
			}
			var v byte
			switch p.s[p.pos+2] {
			case 'n':
				v = '\n'
			case 't':
				v = '\t'
			case '0':
				v = 0
			case '\\':
				v = '\\'
			case '\'':
				v = '\''
			default:
				return 0, p.errf("unknown escape in character literal")
			}
			p.pos += 4
			return uint32(v), nil
		}
		if p.pos+2 >= len(p.s) || p.s[p.pos+2] != '\'' {
			return 0, p.errf("bad character literal in %q", p.s)
		}
		v := uint32(p.s[p.pos+1])
		p.pos += 3
		return v, nil
	case c >= '0' && c <= '9':
		start := p.pos
		if strings.HasPrefix(p.s[p.pos:], "0x") || strings.HasPrefix(p.s[p.pos:], "0X") {
			p.pos += 2
			for p.pos < len(p.s) && isHexDigit(p.s[p.pos]) {
				p.pos++
			}
			v, err := strconv.ParseUint(p.s[start+2:p.pos], 16, 32)
			if err != nil {
				return 0, p.errf("bad hex literal %q", p.s[start:p.pos])
			}
			return uint32(v), nil
		}
		for p.pos < len(p.s) && p.s[p.pos] >= '0' && p.s[p.pos] <= '9' {
			p.pos++
		}
		v, err := strconv.ParseUint(p.s[start:p.pos], 10, 32)
		if err != nil {
			return 0, p.errf("bad decimal literal %q", p.s[start:p.pos])
		}
		return uint32(v), nil
	case c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '.':
		start := p.pos
		for p.pos < len(p.s) && isIdentChar(p.s[p.pos]) {
			p.pos++
		}
		name := p.s[start:p.pos]
		if name == "." {
			return p.a.loc, nil
		}
		if v, ok := p.a.symbols[name]; ok {
			return v, nil
		}
		if p.undef == "" {
			p.undef = name
		}
		return 0, nil
	default:
		return 0, p.errf("unexpected character %q in expression %q", string(c), p.s)
	}
}

func isHexDigit(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func isIdentChar(c byte) bool {
	return c == '_' || c == '.' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
		(c >= '0' && c <= '9')
}
