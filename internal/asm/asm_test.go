package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func mustAsm(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble("test.s", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func decodeAt(t *testing.T, p *Program, idx int) isa.Inst {
	t.Helper()
	if idx >= len(p.Words) {
		t.Fatalf("program has %d words, want index %d", len(p.Words), idx)
	}
	in, err := isa.Decode(p.Words[idx])
	if err != nil {
		t.Fatalf("Decode(word %d = %08x): %v", idx, p.Words[idx], err)
	}
	return in
}

func TestBasicInstructions(t *testing.T) {
	p := mustAsm(t, `
		add r1, r2, r3
		addi r4, r5, -7
		ldw r6, 8(sp)
		stw r7, -4(r30)
		nop
	`)
	if len(p.Words) != 5 {
		t.Fatalf("len = %d, want 5", len(p.Words))
	}
	if in := decodeAt(t, p, 0); in != (isa.Inst{Op: isa.OpADD, Rd: 1, R1: 2, R2: 3}) {
		t.Errorf("word 0 = %v", in)
	}
	if in := decodeAt(t, p, 1); in != (isa.Inst{Op: isa.OpADDI, Rd: 4, R1: 5, Imm: -7}) {
		t.Errorf("word 1 = %v", in)
	}
	if in := decodeAt(t, p, 2); in != (isa.Inst{Op: isa.OpLDW, Rd: 6, R1: 30, Imm: 8}) {
		t.Errorf("word 2 = %v", in)
	}
	if in := decodeAt(t, p, 3); in != (isa.Inst{Op: isa.OpSTW, Rd: 7, R1: 30, Imm: -4}) {
		t.Errorf("word 3 = %v", in)
	}
	if in := decodeAt(t, p, 4); in.Op != isa.OpNOP {
		t.Errorf("word 4 = %v", in)
	}
}

func TestRegisterAliases(t *testing.T) {
	p := mustAsm(t, `
		mov ret0, arg0
		bv rp
	`)
	in := decodeAt(t, p, 0)
	if in.Op != isa.OpOR || in.Rd != isa.RegRet0 || in.R1 != isa.RegArg0 || in.R2 != 0 {
		t.Errorf("mov = %v", in)
	}
	if in := decodeAt(t, p, 1); in.Op != isa.OpBV || in.R1 != isa.RegRP {
		t.Errorf("bv = %v", in)
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := mustAsm(t, `
	start:
		addi r1, r0, 10
	loop:
		addi r1, r1, -1
		bne r1, r0, loop
		b start
	`)
	// bne at word 2; loop at word 1: offset = (4 - (8+4))/4 = -2
	if in := decodeAt(t, p, 2); in.Op != isa.OpBNE || in.Imm != -2 {
		t.Errorf("bne = %v, want offset -2", in)
	}
	// b at word 3 -> start(0): offset = (0 - 16)/4 = -4, encoded as beq
	if in := decodeAt(t, p, 3); in.Op != isa.OpBEQ || in.Imm != -4 || in.R1 != 0 || in.R2 != 0 {
		t.Errorf("b = %v, want beq offset -4", in)
	}
	if v := p.MustSymbol("loop"); v != 4 {
		t.Errorf("loop = %d, want 4", v)
	}
}

func TestForwardBranch(t *testing.T) {
	p := mustAsm(t, `
		beq r1, r2, done
		nop
	done:
		halt
	`)
	if in := decodeAt(t, p, 0); in.Imm != 1 {
		t.Errorf("forward beq offset = %d, want 1", in.Imm)
	}
}

func TestCallRet(t *testing.T) {
	p := mustAsm(t, `
		call fn
		halt
	fn:
		ret
	`)
	in := decodeAt(t, p, 0)
	if in.Op != isa.OpBL || in.Rd != isa.RegRP || in.Imm != 1 {
		t.Errorf("call = %v", in)
	}
	if in := decodeAt(t, p, 2); in.Op != isa.OpBV || in.R1 != isa.RegRP {
		t.Errorf("ret = %v", in)
	}
}

func TestLiLa(t *testing.T) {
	p := mustAsm(t, `
		li r1, 0x12345678
		la r2, data
	data:
		.word 99
	`)
	// 0x12345678 = hi:0x2468A lo:0x678
	if in := decodeAt(t, p, 0); in.Op != isa.OpLUI || in.Rd != 1 || in.Imm != 0x2468A {
		t.Errorf("li lui = %v", in)
	}
	if in := decodeAt(t, p, 1); in.Op != isa.OpORI || in.Rd != 1 || in.R1 != 1 || in.Imm != 0x678 {
		t.Errorf("li ori = %v", in)
	}
	// data is at 4*4 = 16 = hi:0 lo:16
	if in := decodeAt(t, p, 2); in.Op != isa.OpLUI || in.Imm != 0 {
		t.Errorf("la lui = %v", in)
	}
	if in := decodeAt(t, p, 3); in.Op != isa.OpORI || in.Imm != 16 {
		t.Errorf("la ori = %v", in)
	}
	if p.Words[4] != 99 {
		t.Errorf("data word = %d, want 99", p.Words[4])
	}
}

func TestLiRoundTripValues(t *testing.T) {
	// li must reconstruct arbitrary 32-bit values via lui<<11 | ori.
	for _, v := range []uint32{0, 1, 0x7FF, 0x800, 0xFFFFFFFF, 0x80000000, 0xDEADBEEF, 1 << 11} {
		p := mustAsm(t, "\tli r1, "+hex(v)+"\n")
		lui := decodeAt(t, p, 0)
		ori := decodeAt(t, p, 1)
		got := uint32(lui.Imm)<<11 | uint32(ori.Imm)
		if got != v {
			t.Errorf("li %08x reconstructs to %08x", v, got)
		}
	}
}

func hex(v uint32) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 0, 10)
	out = append(out, '0', 'x')
	for i := 28; i >= 0; i -= 4 {
		out = append(out, digits[(v>>uint(i))&0xF])
	}
	return string(out)
}

func TestDirectives(t *testing.T) {
	p := mustAsm(t, `
		.org 0x1000
		.equ MAGIC, 0xABCD
	entry:
		li r1, MAGIC
		.align 16
	tbl:
		.word 1, 2, 3
		.space 8
		.byte 1, 2, 3, 4
		.asciz "hi"
	`)
	if p.Origin != 0x1000 {
		t.Fatalf("origin = %x", p.Origin)
	}
	if v := p.MustSymbol("entry"); v != 0x1000 {
		t.Errorf("entry = %x", v)
	}
	tbl := p.MustSymbol("tbl")
	if tbl != 0x1010 {
		t.Errorf("tbl = %x, want 0x1010 (aligned)", tbl)
	}
	idx := (tbl - p.Origin) / 4
	if p.Words[idx] != 1 || p.Words[idx+1] != 2 || p.Words[idx+2] != 3 {
		t.Errorf("table contents wrong: %v", p.Words[idx:idx+3])
	}
	// .space 8 = 2 zero words
	if p.Words[idx+3] != 0 || p.Words[idx+4] != 0 {
		t.Errorf(".space contents wrong")
	}
	// .byte 1,2,3,4 packs little-endian
	if p.Words[idx+5] != 0x04030201 {
		t.Errorf(".byte word = %08x, want 04030201", p.Words[idx+5])
	}
	// "hi\0" plus pad
	if p.Words[idx+6] != uint32('h')|uint32('i')<<8 {
		t.Errorf(".asciz word = %08x", p.Words[idx+6])
	}
}

func TestExpressions(t *testing.T) {
	p := mustAsm(t, `
		.equ A, 10
		.equ B, 3
		.word A + B * 2
		.word (A + B) * 2
		.word A << 4
		.word A | B
		.word A & 2
		.word -1
		.word ~0
		.word 'x'
		.word '\n'
		.word %hi(0x12345678)
		.word %lo(0x12345678)
		.word A - B
	`)
	want := []uint32{16, 26, 160, 11, 2, 0xFFFFFFFF, 0xFFFFFFFF, 'x', '\n', 0x2468A, 0x678, 7}
	for i, w := range want {
		if p.Words[i] != w {
			t.Errorf("word %d = %#x, want %#x", i, p.Words[i], w)
		}
	}
}

func TestDotSymbol(t *testing.T) {
	p := mustAsm(t, `
		.org 0x100
		.word .
		.word .
	`)
	if p.Words[0] != 0x100 || p.Words[1] != 0x104 {
		t.Errorf("dot = %x,%x want 100,104", p.Words[0], p.Words[1])
	}
}

func TestControlRegisters(t *testing.T) {
	p := mustAsm(t, `
		mfctl r1, rctr
		mtctl itmr, r2
		mfctl r3, cr20
		mftod r4
	`)
	if in := decodeAt(t, p, 0); in.Op != isa.OpMFCTL || in.Imm != int32(isa.CRRCTR) {
		t.Errorf("mfctl = %v", in)
	}
	if in := decodeAt(t, p, 1); in.Op != isa.OpMTCTL || in.Imm != int32(isa.CRITMR) || in.R1 != 2 {
		t.Errorf("mtctl = %v", in)
	}
	if in := decodeAt(t, p, 2); in.Imm != 20 {
		t.Errorf("cr20 = %v", in)
	}
	if in := decodeAt(t, p, 3); in.Op != isa.OpMFTOD || in.Rd != 4 {
		t.Errorf("mftod = %v", in)
	}
}

func TestSystemInstructions(t *testing.T) {
	p := mustAsm(t, `
		rfi
		halt
		wfi
		ptlb
		itlbi r1, r2
		probe r3, r4, 1
		break 42
		diag 7
		gate r2, g
	g:	nop
	`)
	wantOps := []isa.Op{isa.OpRFI, isa.OpHALT, isa.OpWFI, isa.OpPTLB, isa.OpITLBI,
		isa.OpPROBE, isa.OpBREAK, isa.OpDIAG, isa.OpGATE, isa.OpNOP}
	for i, op := range wantOps {
		if in := decodeAt(t, p, i); in.Op != op {
			t.Errorf("word %d op = %v, want %v", i, in.Op, op)
		}
	}
	if in := decodeAt(t, p, 6); in.Imm != 42 {
		t.Errorf("break imm = %d", in.Imm)
	}
}

func TestComments(t *testing.T) {
	p := mustAsm(t, `
		nop ; semicolon comment
		nop # hash comment
		nop // slash comment
		; full-line comment
	`)
	if len(p.Words) != 3 {
		t.Errorf("len = %d, want 3", len(p.Words))
	}
}

func TestMultipleLabelsOneLine(t *testing.T) {
	p := mustAsm(t, `
	a: b: nop
	`)
	if p.MustSymbol("a") != 0 || p.MustSymbol("b") != 0 {
		t.Error("stacked labels wrong")
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"\tbogus r1, r2\n", "unknown mnemonic"},
		{"\tadd r1, r2\n", "want 3 operands"},
		{"\tadd r1, r2, r99\n", "bad register"},
		{"\tldw r1, 99999(r2)\n", "out of imm16 range"},
		{"a: nop\na: nop\n", "duplicate symbol"},
		{"\t.equ X, 1\n\t.equ X, 2\n", "duplicate symbol"},
		{"\tbeq r1, r2, nowhere\n", "undefined symbol"},
		{"\t.org 8\n\t.org 4\n", "moves backwards"},
		{"\t.bogus 3\n", "unknown directive"},
		{"\t.space end\nend: nop\n", "forward reference"},
		{"\t.ascii nope\n", "expected quoted string"},
		{"\tmfctl r1, cr99\n", "bad control register"},
		{"\t.word 1 +\n", "unexpected end"},
		{"\t.word (1\n", "missing )"},
		{"\t.align 3\n", "multiple of 4"},
	}
	for _, c := range cases {
		_, err := Assemble("t.s", c.src)
		if err == nil {
			t.Errorf("Assemble(%q) succeeded, want error containing %q", c.src, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Assemble(%q) error = %q, want containing %q", c.src, err, c.frag)
		}
	}
}

func TestErrorHasLineNumber(t *testing.T) {
	_, err := Assemble("file.s", "\tnop\n\tbogus\n")
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "file.s:2:") {
		t.Errorf("error = %q, want file.s:2: prefix", err)
	}
}

func TestBytesLittleEndian(t *testing.T) {
	p := mustAsm(t, "\t.word 0x11223344\n")
	b := p.Bytes()
	if len(b) != 4 || b[0] != 0x44 || b[1] != 0x33 || b[2] != 0x22 || b[3] != 0x11 {
		t.Errorf("Bytes = % x", b)
	}
}

func TestDisassembleListing(t *testing.T) {
	p := mustAsm(t, `
		.org 0x100
		add r1, r2, r3
		.word 0xFFFFFFFF
	`)
	lst := p.Disassemble()
	if !strings.Contains(lst, "00000100") || !strings.Contains(lst, "add r1, r2, r3") {
		t.Errorf("listing missing instruction:\n%s", lst)
	}
	if !strings.Contains(lst, ".word 0xffffffff") {
		t.Errorf("listing missing raw word:\n%s", lst)
	}
}

func TestEndAndSymbolHelpers(t *testing.T) {
	p := mustAsm(t, "\t.org 0x10\n\tnop\n\tnop\n")
	if p.End() != 0x18 {
		t.Errorf("End = %x, want 0x18", p.End())
	}
	if _, ok := p.Symbol("nothing"); ok {
		t.Error("Symbol(nothing) should be absent")
	}
	names := mustAsm(t, "b: nop\na: nop\n").SymbolsSorted()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("SymbolsSorted = %v", names)
	}
}

func TestMustSymbolPanics(t *testing.T) {
	p := mustAsm(t, "\tnop\n")
	defer func() {
		if recover() == nil {
			t.Error("MustSymbol did not panic")
		}
	}()
	p.MustSymbol("missing")
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic")
		}
	}()
	MustAssemble("bad.s", "\tbogus\n")
}

// Round-trip: assemble, disassemble every word, reassemble the
// disassembly of instruction words, and compare encodings.
func TestAssembleDisassembleRoundTrip(t *testing.T) {
	src := `
		add r1, r2, r3
		sub r4, r5, r6
		addi r7, r8, -100
		andi r9, r10, 0xFF
		lui r11, 12345
		ldw r12, 16(r13)
		stb r14, -1(r15)
		beq r1, r2, 0x24
		bl r2, 0x24
		bv r2
		mfctl r1, iva
		mtctl eiem, r2
		itlbi r3, r4
		probe r5, r6, 0
		break 3
		mftod r7
		rfi
		nop
	`
	p1 := mustAsm(t, src)
	var lines []string
	for i, w := range p1.Words {
		in, err := isa.Decode(w)
		if err != nil {
			t.Fatalf("word %d undecodable: %v", i, err)
		}
		lines = append(lines, "\t"+in.String())
	}
	// Branch targets were absolute in the source; the disassembly prints
	// raw offsets, so patch branch lines back to absolute form.
	for i, ln := range lines {
		in, _ := isa.Decode(p1.Words[i])
		switch in.Op {
		case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU:
			target := uint32(4*i+4) + uint32(in.Imm*4)
			lines[i] = "\t" + in.Op.String() + " " + in.R1.String() + ", " + in.R2.String() + ", " + hex(target)
		case isa.OpBL, isa.OpGATE:
			target := uint32(4*i+4) + uint32(in.Imm*4)
			lines[i] = "\t" + in.Op.String() + " " + in.Rd.String() + ", " + hex(target)
		case isa.OpMFCTL:
			lines[i] = "\tmfctl " + in.Rd.String() + ", cr" + itoa(int(in.Imm))
		case isa.OpMTCTL:
			lines[i] = "\tmtctl cr" + itoa(int(in.Imm)) + ", " + in.R1.String()
		}
		_ = ln
	}
	p2 := mustAsm(t, strings.Join(lines, "\n")+"\n")
	if len(p1.Words) != len(p2.Words) {
		t.Fatalf("length mismatch %d vs %d", len(p1.Words), len(p2.Words))
	}
	for i := range p1.Words {
		if p1.Words[i] != p2.Words[i] {
			t.Errorf("word %d: %08x vs %08x", i, p1.Words[i], p2.Words[i])
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
