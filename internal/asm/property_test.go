package asm

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/isa"
)

// TestRandomProgramRoundTrip generates random well-formed programs,
// assembles them, disassembles every word, and checks the listing
// decodes to the same instructions — an end-to-end coherence property
// across the assembler, encoder and disassembler.
func TestRandomProgramRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	reg := func() string { return fmt.Sprintf("r%d", rng.Intn(32)) }
	for trial := 0; trial < 50; trial++ {
		var lines []string
		n := 5 + rng.Intn(30)
		for i := 0; i < n; i++ {
			switch rng.Intn(6) {
			case 0:
				lines = append(lines, fmt.Sprintf("\tadd %s, %s, %s", reg(), reg(), reg()))
			case 1:
				lines = append(lines, fmt.Sprintf("\taddi %s, %s, %d", reg(), reg(), rng.Intn(65536)-32768))
			case 2:
				lines = append(lines, fmt.Sprintf("\tldw %s, %d(%s)", reg(), 4*(rng.Intn(100)-50), reg()))
			case 3:
				lines = append(lines, fmt.Sprintf("\tstw %s, %d(%s)", reg(), 4*(rng.Intn(100)-50), reg()))
			case 4:
				lines = append(lines, fmt.Sprintf("\txori %s, %s, %d", reg(), reg(), rng.Intn(65536)))
			case 5:
				lines = append(lines, "\tnop")
			}
		}
		src := strings.Join(lines, "\n") + "\n"
		p, err := Assemble("rand.s", src)
		if err != nil {
			t.Fatalf("trial %d: assemble: %v\n%s", trial, err, src)
		}
		if len(p.Words) != n {
			t.Fatalf("trial %d: %d words from %d lines", trial, len(p.Words), n)
		}
		for i, w := range p.Words {
			in, err := isa.Decode(w)
			if err != nil {
				t.Fatalf("trial %d word %d: %v", trial, i, err)
			}
			w2, err := isa.Encode(in)
			if err != nil || w2 != w {
				t.Fatalf("trial %d word %d: re-encode %08x != %08x (%v)", trial, i, w2, w, err)
			}
		}
	}
}

// TestLabelsAreStableAcrossPasses: a program with heavy forward and
// backward references resolves identically however the symbols are used.
func TestLabelsAreStableAcrossPasses(t *testing.T) {
	p := mustAsm(t, `
		b c
	a:	nop
		b d
	b:	nop
		b a
	c:	nop
		b b
	d:	nop
		.word a, b, c, d
	`)
	// Eight instructions then the table.
	base := p.MustSymbol("a")
	if base != 4 {
		t.Fatalf("a = %#x", base)
	}
	tbl := p.Words[8:]
	want := []uint32{p.MustSymbol("a"), p.MustSymbol("b"), p.MustSymbol("c"), p.MustSymbol("d")}
	for i, w := range want {
		if tbl[i] != w {
			t.Errorf("table[%d] = %#x, want %#x", i, tbl[i], w)
		}
	}
}

// TestKernelSizeSane: the guest kernel must fit below its vector table
// (layout invariant the kernel relies on).
func TestNoOverlapLayout(t *testing.T) {
	p := mustAsm(t, `
		.org 0
		nop
		.org 0x100
	entry:
		nop
		nop
	`)
	if p.MustSymbol("entry") != 0x100 {
		t.Errorf("entry = %#x", p.MustSymbol("entry"))
	}
	if p.Words[0x100/4] == 0 {
		t.Error("entry instruction missing after .org gap")
	}
	for i := 1; i < 0x100/4; i++ {
		if p.Words[i] != 0 {
			t.Errorf("gap word %d nonzero", i)
		}
	}
}
