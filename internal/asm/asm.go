// Package asm implements a two-pass assembler for the PA-lite instruction
// set (see internal/isa). The guest operating system kernel and the
// benchmark workloads of the fault-tolerance reproduction are written in
// this assembly language and assembled at program start.
//
// Syntax summary:
//
//	; comment   # comment   // comment
//	label:                       ; define a label at the current address
//	.org  ADDR                   ; move the location counter forward
//	.word EXPR [, EXPR...]       ; emit 32-bit words
//	.byte EXPR [, EXPR...]       ; emit bytes (padded to word on flush)
//	.space N                     ; emit N zero bytes
//	.align N                     ; pad with zeros to an N-byte boundary
//	.equ  NAME, EXPR             ; define a constant symbol
//	.ascii "str"  /  .asciz "str"
//	add r1, r2, r3               ; machine instructions (see isa package)
//	ldw r1, 8(sp)                ; memory operands: EXPR(reg)
//	li  r1, EXPR                 ; pseudo: load 32-bit immediate (2 words)
//	la  r1, LABEL                ; pseudo: load address (2 words)
//	mov r1, r2                   ; pseudo: or r1, r2, r0
//	b   LABEL                    ; pseudo: beq r0, r0, LABEL
//	call LABEL                   ; pseudo: bl rp, LABEL
//	ret                          ; pseudo: bv rp
//
// Expressions support +, -, *, <<, >>, &, |, parentheses, decimal/hex/char
// literals, label and .equ symbols, and the functions %hi(x) (upper 21
// bits, for lui) and %lo(x) (low 11 bits, for ori).
package asm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Program is the result of assembling a source file.
type Program struct {
	// Origin is the load address of Words[0].
	Origin uint32
	// Words is the assembled image, one 32-bit word per entry.
	Words []uint32
	// Symbols maps every label and .equ name to its value.
	Symbols map[string]uint32
	// Name is the source name passed to Assemble (used in errors).
	Name string
}

// Bytes returns the image as little-endian bytes.
func (p *Program) Bytes() []byte {
	out := make([]byte, 4*len(p.Words))
	for i, w := range p.Words {
		out[4*i] = byte(w)
		out[4*i+1] = byte(w >> 8)
		out[4*i+2] = byte(w >> 16)
		out[4*i+3] = byte(w >> 24)
	}
	return out
}

// Symbol returns the value of a symbol, with ok=false if undefined.
func (p *Program) Symbol(name string) (uint32, bool) {
	v, ok := p.Symbols[name]
	return v, ok
}

// MustSymbol returns the value of a symbol, panicking if undefined. For
// use by harness code referencing symbols it itself placed in the source.
func (p *Program) MustSymbol(name string) uint32 {
	v, ok := p.Symbols[name]
	if !ok {
		panic(fmt.Sprintf("asm: undefined symbol %q in %s", name, p.Name))
	}
	return v
}

// End returns the first address past the assembled image.
func (p *Program) End() uint32 { return p.Origin + uint32(4*len(p.Words)) }

// Disassemble renders the program as an address-annotated listing.
func (p *Program) Disassemble() string {
	var b strings.Builder
	for i, w := range p.Words {
		addr := p.Origin + uint32(4*i)
		in, err := isa.Decode(w)
		if err != nil {
			fmt.Fprintf(&b, "%08x: %08x  .word 0x%08x\n", addr, w, w)
			continue
		}
		fmt.Fprintf(&b, "%08x: %08x  %s\n", addr, w, in)
	}
	return b.String()
}

// Error is an assembly diagnostic tied to a source line.
type Error struct {
	Name string // source name
	Line int    // 1-based line number
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s:%d: %s", e.Name, e.Line, e.Msg) }

// registerAliases maps conventional names to register numbers.
var registerAliases = map[string]isa.Reg{
	"zero": isa.RegZero, "rp": isa.RegRP, "sp": isa.RegSP,
	"ret0": isa.RegRet0, "ret1": isa.RegRet1,
	"arg0": isa.RegArg0, "arg1": isa.RegArg1, "arg2": isa.RegArg2, "arg3": isa.RegArg3,
}

// parseReg resolves a register operand.
func parseReg(tok string) (isa.Reg, bool) {
	if r, ok := registerAliases[tok]; ok {
		return r, true
	}
	if strings.HasPrefix(tok, "r") {
		if n, err := strconv.Atoi(tok[1:]); err == nil && n >= 0 && n < isa.NumRegs {
			return isa.Reg(n), true
		}
	}
	return 0, false
}

// assembler holds state shared by the two passes.
type assembler struct {
	name    string
	lines   []sourceLine
	symbols map[string]uint32
	origin  uint32
	hasOrg  bool
	loc     uint32 // location counter (absolute address)
	out     []uint32
	pass    int
	pending []byte // byte-granular emission buffer
	// layoutSensitive marks evaluation contexts (.org/.space/.align/.equ)
	// where pass 1 must already know the value: forward references there
	// are errors, since label addresses depend on the result.
	layoutSensitive bool
}

// evalLayout evaluates an expression in a layout-sensitive context.
func (a *assembler) evalLayout(ln sourceLine, s string) (uint32, error) {
	a.layoutSensitive = true
	defer func() { a.layoutSensitive = false }()
	return a.eval(ln, s)
}

type sourceLine struct {
	num  int
	text string
}

// Assemble assembles src (named name for diagnostics) into a Program.
func Assemble(name, src string) (*Program, error) {
	a := &assembler{name: name, symbols: map[string]uint32{}}
	for i, raw := range strings.Split(src, "\n") {
		a.lines = append(a.lines, sourceLine{num: i + 1, text: raw})
	}
	// Pass 1: sizes and label addresses.
	a.pass = 1
	if err := a.run(); err != nil {
		return nil, err
	}
	// Pass 2: emit.
	a.pass = 2
	if err := a.run(); err != nil {
		return nil, err
	}
	return &Program{
		Origin:  a.origin,
		Words:   a.out,
		Symbols: a.symbols,
		Name:    name,
	}, nil
}

// MustAssemble is Assemble but panics on error; for embedded, known-good
// sources such as the guest kernel.
func MustAssemble(name, src string) *Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

func (a *assembler) errf(line int, format string, args ...any) error {
	return &Error{Name: a.name, Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (a *assembler) run() error {
	a.loc = 0
	a.hasOrg = false
	a.origin = 0
	a.out = nil
	a.pending = nil
	for _, ln := range a.lines {
		if err := a.line(ln); err != nil {
			return err
		}
	}
	if err := a.flushBytes(0); err != nil {
		return err
	}
	return nil
}

// stripComment removes ;, # and // comments, respecting string literals.
func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			inStr = !inStr
		case inStr:
			if c == '\\' {
				i++
			}
		case c == ';' || c == '#':
			return s[:i]
		case c == '/' && i+1 < len(s) && s[i+1] == '/':
			return s[:i]
		}
	}
	return s
}

func (a *assembler) line(ln sourceLine) error {
	text := strings.TrimSpace(stripComment(ln.text))
	for {
		if text == "" {
			return nil
		}
		// Labels: identifier followed by ':'.
		if i := strings.Index(text, ":"); i > 0 && isIdent(text[:i]) && !strings.HasPrefix(text, ".") {
			label := text[:i]
			if a.pass == 1 {
				if _, dup := a.symbols[label]; dup {
					return a.errf(ln.num, "duplicate symbol %q", label)
				}
				a.symbols[label] = a.loc
			}
			text = strings.TrimSpace(text[i+1:])
			continue
		}
		break
	}
	fields := strings.SplitN(text, " ", 2)
	mnemonic := strings.ToLower(strings.TrimSpace(fields[0]))
	rest := ""
	if len(fields) > 1 {
		rest = strings.TrimSpace(fields[1])
	}
	if strings.HasPrefix(mnemonic, ".") {
		return a.directive(ln, mnemonic, rest)
	}
	return a.instruction(ln, mnemonic, rest)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// emitWord appends one word at the current location counter.
func (a *assembler) emitWord(ln sourceLine, w uint32) error {
	if err := a.flushBytes(ln.num); err != nil {
		return err
	}
	if a.loc%4 != 0 {
		return a.errf(ln.num, "location counter 0x%x not word-aligned", a.loc)
	}
	if a.pass == 2 {
		idx := (a.loc - a.origin) / 4
		for uint32(len(a.out)) <= idx {
			a.out = append(a.out, 0)
		}
		a.out[idx] = w
	}
	a.loc += 4
	return nil
}

// emitBytes buffers byte-granular output, flushed to words on alignment.
func (a *assembler) emitBytes(bs ...byte) {
	a.pending = append(a.pending, bs...)
}

// flushBytes writes buffered bytes, zero-padding to the next word.
func (a *assembler) flushBytes(line int) error {
	if len(a.pending) == 0 {
		return nil
	}
	bs := a.pending
	a.pending = nil
	for len(bs)%4 != 0 {
		bs = append(bs, 0)
	}
	if a.loc%4 != 0 {
		return a.errf(line, "byte data at unaligned location 0x%x", a.loc)
	}
	for i := 0; i < len(bs); i += 4 {
		w := uint32(bs[i]) | uint32(bs[i+1])<<8 | uint32(bs[i+2])<<16 | uint32(bs[i+3])<<24
		if a.pass == 2 {
			idx := (a.loc - a.origin) / 4
			for uint32(len(a.out)) <= idx {
				a.out = append(a.out, 0)
			}
			a.out[idx] = w
		}
		a.loc += 4
	}
	return nil
}

func (a *assembler) directive(ln sourceLine, dir, rest string) error {
	switch dir {
	case ".org":
		v, err := a.evalLayout(ln, rest)
		if err != nil {
			return err
		}
		if err := a.flushBytes(ln.num); err != nil {
			return err
		}
		if !a.hasOrg && len(a.out) == 0 && a.loc == 0 {
			a.origin = v
			a.hasOrg = true
			a.loc = v
			return nil
		}
		if v < a.loc {
			return a.errf(ln.num, ".org 0x%x moves backwards (loc 0x%x)", v, a.loc)
		}
		if v%4 != 0 {
			return a.errf(ln.num, ".org 0x%x not word-aligned", v)
		}
		// Pad the gap with zero words.
		for a.loc < v {
			if err := a.emitWord(ln, 0); err != nil {
				return err
			}
		}
		return nil
	case ".word":
		for _, part := range splitOperands(rest) {
			v, err := a.eval(ln, part)
			if err != nil {
				return err
			}
			if err := a.emitWord(ln, v); err != nil {
				return err
			}
		}
		return nil
	case ".byte":
		for _, part := range splitOperands(rest) {
			v, err := a.eval(ln, part)
			if err != nil {
				return err
			}
			if sv := int32(v); v > 0xFF && !(sv >= -128 && sv < 0) {
				return a.errf(ln.num, ".byte value %d out of range", sv)
			}
			a.emitBytes(byte(v))
		}
		return nil
	case ".space":
		v, err := a.evalLayout(ln, rest)
		if err != nil {
			return err
		}
		for i := uint32(0); i < v; i++ {
			a.emitBytes(0)
		}
		return a.flushBytes(ln.num)
	case ".align":
		v, err := a.evalLayout(ln, rest)
		if err != nil {
			return err
		}
		if v == 0 || v%4 != 0 {
			return a.errf(ln.num, ".align %d must be a positive multiple of 4", v)
		}
		if err := a.flushBytes(ln.num); err != nil {
			return err
		}
		for a.loc%v != 0 {
			if err := a.emitWord(ln, 0); err != nil {
				return err
			}
		}
		return nil
	case ".equ":
		parts := splitOperands(rest)
		if len(parts) != 2 {
			return a.errf(ln.num, ".equ wants NAME, EXPR")
		}
		name := strings.TrimSpace(parts[0])
		if !isIdent(name) {
			return a.errf(ln.num, ".equ: bad name %q", name)
		}
		v, err := a.evalLayout(ln, parts[1])
		if err != nil {
			return err
		}
		if a.pass == 1 {
			if _, dup := a.symbols[name]; dup {
				return a.errf(ln.num, "duplicate symbol %q", name)
			}
			a.symbols[name] = v
		}
		return nil
	case ".ascii", ".asciz":
		s, err := parseString(rest)
		if err != nil {
			return a.errf(ln.num, "%s: %v", dir, err)
		}
		a.emitBytes([]byte(s)...)
		if dir == ".asciz" {
			a.emitBytes(0)
		}
		return a.flushBytes(ln.num)
	default:
		return a.errf(ln.num, "unknown directive %s", dir)
	}
}

// parseString parses a double-quoted string with \n \t \\ \" \0 escapes.
func parseString(s string) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("expected quoted string, got %q", s)
	}
	body := s[1 : len(s)-1]
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", fmt.Errorf("trailing backslash")
		}
		switch body[i] {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		case '0':
			b.WriteByte(0)
		default:
			return "", fmt.Errorf("unknown escape \\%c", body[i])
		}
	}
	return b.String(), nil
}

// splitOperands splits on commas that are not inside parentheses or quotes.
func splitOperands(s string) []string {
	var parts []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '(':
			if !inStr {
				depth++
			}
		case ')':
			if !inStr {
				depth--
			}
		case ',':
			if !inStr && depth == 0 {
				parts = append(parts, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	last := strings.TrimSpace(s[start:])
	if last != "" || len(parts) > 0 {
		parts = append(parts, last)
	}
	return parts
}

// SymbolsSorted returns symbol names in deterministic order (for listings).
func (p *Program) SymbolsSorted() []string {
	names := make([]string, 0, len(p.Symbols))
	for n := range p.Symbols {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
