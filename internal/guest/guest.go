// Package guest provides the guest "operating system" of the
// reproduction: a small kernel written in PA-lite assembly that plays the
// role HP-UX plays in the paper. The SAME kernel image runs in two
// configurations:
//
//   - bare: at real privilege level 0 on a single machine (the paper's
//     baseline), handling its own TLB misses and device interrupts;
//   - virtualized: at virtual privilege level 0 under the hypervisor,
//     where privileged instructions trap, the hypervisor manages the TLB
//     (§3.2), and interrupts arrive at epoch boundaries.
//
// The kernel:
//
//   - boots using the paper's §3.1 "hack": a branch-and-link to discover
//     its own address, masking the privilege bits BL deposits;
//   - builds a linear page table, installs interruption vectors, arms the
//     interval-timer clock tick, and enters virtual-address mode;
//   - services TLB misses in software (exercised only on bare hardware —
//     under the hypervisor the fills are invisible);
//   - maintains a tick counter from interval-timer interrupts;
//   - drives the SCSI disk with an interrupt-driven driver that RETRIES
//     on uncertain (CHECK_CONDITION) completions — the behaviour IO1/IO2
//     require and that rule P7 exploits at failover;
//   - runs one of the paper's three workloads (§4.1, §4.2), selected
//     through an in-memory ABI block the harness pokes before boot.
package guest

import (
	"sync"

	"repro/internal/asm"
	"repro/internal/machine"
)

// Workload kinds (ABI values).
const (
	// WorkloadCPU is §4.1's CPU-intensive workload: a Dhrystone-like
	// iteration mixing arithmetic, logic, memory copies, calls and
	// branches, at the highest priority (it is the only process).
	WorkloadCPU uint32 = 1
	// WorkloadDiskWrite is §4.2's write benchmark: select a random
	// block, write it, await completion; repeated Ops times.
	WorkloadDiskWrite uint32 = 2
	// WorkloadDiskRead is §4.2's read benchmark: select a random block,
	// read it, await the data; repeated Ops times.
	WorkloadDiskRead uint32 = 3
	// WorkloadMemory strides over 32 pages of memory, keeping the TLB
	// under constant pressure — the workload used to demonstrate the
	// §3.2 TLB-nondeterminism hazard and the takeover fix.
	WorkloadMemory uint32 = 4
	// WorkloadCopy is the two-disk copy benchmark: per operation, write
	// a generated block to disk 0, read it back, and write it to disk 1
	// — exercising two adapters on the generic device layer.
	WorkloadCopy uint32 = 5
	// WorkloadTermEcho is the terminal echo benchmark: consume scripted
	// terminal input (delivered at epoch boundaries under replication)
	// and echo every byte to the console until EOT (0x04) arrives.
	WorkloadTermEcho uint32 = 6
	// WorkloadServe is the network request/response server: poll the
	// NIC for request frames, checksum each payload, run a per-request
	// compute phase (PreOp), and transmit a [request-id, checksum]
	// reply — Ops requests in all. Requires a platform with a NIC and
	// a client population delivering requests.
	WorkloadServe uint32 = 7
)

// TermEOT is the byte that ends the terminal echo workload.
const TermEOT byte = 0x04

// ABI addresses: the harness writes parameters here after loading the
// kernel image and reads results after HALT. They sit in page 0, below
// the kernel text.
const (
	ABIKind    uint32 = 0x0F00 // workload kind
	ABIIters   uint32 = 0x0F04 // CPU iterations
	ABIOps     uint32 = 0x0F08 // disk operations
	ABISeed    uint32 = 0x0F0C // LCG seed for block selection
	ABIMask    uint32 = 0x0F10 // block-number mask (pow2-1)
	ABIBase    uint32 = 0x0F14 // first block number
	ABICount   uint32 = 0x0F18 // bytes per disk operation
	ABIResult  uint32 = 0x0F1C // workload checksum out
	ABITicks   uint32 = 0x0F20 // clock ticks observed out
	ABIPanic   uint32 = 0x0F24 // BREAK code on guest panic (0 = none)
	ABIDoneTOD uint32 = 0x0F28 // guest TOD at completion
	ABIPreOp   uint32 = 0x0F2C // disk workloads: compute iterations per op
	ABIPrivOps uint32 = 0x0F30 // disk workloads: privileged instructions per op
)

// Fixed kernel layout (physical = virtual for RAM, identity-mapped).
const (
	// VectorBase is the interruption vector table address.
	VectorBase uint32 = 0x2000
	// PTBase is the linear page table (4096 entries x 4 bytes).
	PTBase uint32 = 0x10000
	// StackTop is the initial kernel stack pointer.
	StackTop uint32 = 0x20000
	// IOBuf is the disk DMA buffer.
	IOBuf uint32 = 0x30000
	// DeviceVA is the virtual address window mapped onto the MMIO space:
	// virtual page 0xF00 -> physical page 0xF0000 (the SCSI adapter),
	// 0xF01 -> console.
	DeviceVA uint32 = 0x00F00000
	// TickCycles is the interval-timer reload: one clock tick per this
	// many cycles (0.5 ms at 50 MIPS). HP-UX's equivalent bounds usable
	// epoch length (the paper's 385,000-instruction limit).
	TickCycles uint32 = 25000
)

// Workload describes one benchmark configuration.
type Workload struct {
	// Kind selects the workload (WorkloadCPU, WorkloadDiskWrite,
	// WorkloadDiskRead).
	Kind uint32
	// Iters is the CPU workload's iteration count.
	Iters uint32
	// Ops is the disk workloads' operation count.
	Ops uint32
	// Seed seeds the guest's LCG block selector.
	Seed uint32
	// BlockMask masks the random block offset (must be pow2-1).
	BlockMask uint32
	// BlockBase is added to the masked offset.
	BlockBase uint32
	// Count is bytes per disk operation (<= disk block size).
	Count uint32
	// PreOp is the disk workloads' per-operation compute phase, in
	// iterations of a 3-instruction loop — the paper's "block selection
	// calculation" whose hypervisor overhead dominates cpu(EL) in the
	// NPW/NPR models.
	PreOp uint32
	// PrivOps is the per-operation count of privileged kernel
	// instructions on the I/O path (paper-calibrated: ≈ 1030, the
	// density that makes hypervisor simulation the dominant I/O cost).
	PrivOps uint32
}

// MemoryStride returns the TLB-pressure workload (§3.2 ablation).
func MemoryStride(iters uint32) Workload {
	return Workload{Kind: WorkloadMemory, Iters: iters}
}

// CPUIntensive returns the §4.1 workload configuration at a given scale
// (the paper runs 1e6 Dhrystone iterations; the simulator default is
// smaller — normalized performance is scale-free).
func CPUIntensive(iters uint32) Workload {
	return Workload{Kind: WorkloadCPU, Iters: iters}
}

// DiskWrite returns the §4.2 write benchmark (paper: 2048 random-block
// writes of 8 KiB).
func DiskWrite(ops uint32, count uint32) Workload {
	return Workload{
		Kind: WorkloadDiskWrite, Ops: ops, Seed: 0x5EED,
		BlockMask: 1023, BlockBase: 16, Count: count,
	}
}

// DiskRead returns the §4.2 read benchmark.
func DiskRead(ops uint32, count uint32) Workload {
	return Workload{
		Kind: WorkloadDiskRead, Ops: ops, Seed: 0x5EED,
		BlockMask: 1023, BlockBase: 16, Count: count,
	}
}

// TwoDiskCopy returns the two-disk copy benchmark: ops sequential
// blocks (from BlockBase) written to disk 0, read back, and copied to
// disk 1, count bytes each. Requires a platform with at least two
// disks.
func TwoDiskCopy(ops uint32, count uint32) Workload {
	return Workload{
		Kind: WorkloadCopy, Ops: ops, Seed: 0x5EED,
		BlockBase: 16, Count: count,
	}
}

// ServeRequests returns the network server benchmark: the guest serves
// exactly requests request frames from the NIC, spending work
// iterations of the per-operation compute loop on each (the service's
// "application work" per request), and halts after the last reply.
// The client population must deliver exactly requests distinct
// requests or the guest never halts.
func ServeRequests(requests uint32, work uint32) Workload {
	return Workload{Kind: WorkloadServe, Ops: requests, PreOp: work}
}

// TerminalEcho returns the terminal echo benchmark. The guest consumes
// the console's scripted input and echoes each byte back to the console
// until TermEOT arrives; the input script must therefore end with
// TermEOT or the guest never halts.
func TerminalEcho() Workload {
	return Workload{Kind: WorkloadTermEcho}
}

// Configure pokes the workload parameters into the machine's ABI block.
// Call after loading the kernel image, before running. Both replicas
// must be configured identically (they start in the same state).
func Configure(m *machine.Machine, w Workload) {
	m.StorePhys32(ABIKind, w.Kind)
	m.StorePhys32(ABIIters, w.Iters)
	m.StorePhys32(ABIOps, w.Ops)
	m.StorePhys32(ABISeed, w.Seed)
	m.StorePhys32(ABIMask, w.BlockMask)
	m.StorePhys32(ABIBase, w.BlockBase)
	m.StorePhys32(ABICount, w.Count)
	m.StorePhys32(ABIPreOp, w.PreOp)
	m.StorePhys32(ABIPrivOps, w.PrivOps)
}

// Result is what the kernel reports back through the ABI block.
type Result struct {
	Checksum uint32 // workload-defined checksum
	Ticks    uint32 // clock ticks observed
	Panic    uint32 // BREAK code if the guest panicked (0 = clean)
	DoneTOD  uint32 // guest time-of-day at completion
}

// ReadResult extracts the ABI outputs after HALT.
func ReadResult(m *machine.Machine) Result {
	return Result{
		Checksum: m.LoadPhys32(ABIResult),
		Ticks:    m.LoadPhys32(ABITicks),
		Panic:    m.LoadPhys32(ABIPanic),
		DoneTOD:  m.LoadPhys32(ABIDoneTOD),
	}
}

var (
	progOnce sync.Once
	prog     *asm.Program
)

// Program returns the assembled kernel image (assembled once, shared).
func Program() *asm.Program {
	progOnce.Do(func() {
		prog = asm.MustAssemble("kernel.s", KernelSource)
	})
	return prog
}
