package guest

// KernelSource is the guest operating system, in PA-lite assembly.
//
// Register conventions (must be respected by all kernel code):
//
//	r0        zero
//	r2  (rp)  return pointer — NEVER used as scratch
//	r3..r9    caller-saved scratch
//	r10..r19  workload state / driver arguments
//	r20..r25  RESERVED for interruption handlers
//	r26/r28   arg0/ret0 (leaf calls)
//	r30 (sp)  stack pointer (unused: leaf-only call graph)
//
// The interruption handlers run with translation off (the interruption
// sequence clears PSW.V); all kernel data they touch is identity-mapped,
// so physical access is equivalent.
const KernelSource = `
; ============================================================
; PA-lite guest kernel — plays HP-UX's role in the reproduction
; ============================================================

	.equ PTBASE,    0x10000
	.equ STACKTOP,  0x20000
	.equ IOBUF,     0x30000
	.equ DEVVA,     0x00F00000      ; SCSI adapter, disk 0 (virtual window)
	.equ CONSVA,    0x00F01000      ; console (virtual window)
	.equ DEVVA2,    0x00F02000      ; SCSI adapter, disk 1 (virtual window)
	.equ NICVA,     0x00F0F000      ; network adapter (virtual window)
	.equ TICKCYC,   25000           ; interval-timer reload

	; ABI block (harness <-> kernel), page 0
	.equ ABI_KIND,   0x0F00
	.equ ABI_ITERS,  0x0F04
	.equ ABI_OPS,    0x0F08
	.equ ABI_SEED,   0x0F0C
	.equ ABI_MASK,   0x0F10
	.equ ABI_BASE,   0x0F14
	.equ ABI_COUNT,  0x0F18
	.equ ABI_RESULT, 0x0F1C
	.equ ABI_TICKS,  0x0F20
	.equ ABI_PANIC,  0x0F24
	.equ ABI_DONE,   0x0F28
	.equ ABI_PREOP,  0x0F2C
	.equ ABI_PRIV,   0x0F30

	; kernel variables, page 0
	.equ TICKS,     0x0E00          ; clock tick counter
	.equ IOFLAG,    0x0E04          ; disk completion flag
	.equ STRSRC,    0x0E20          ; 16-byte string for the CPU workload
	.equ STRDST,    0x0E40

; ------------------------------------------------------------
; Reset entry
; ------------------------------------------------------------
	.org 0
reset:
	b boot

; ------------------------------------------------------------
; Boot sequence
; ------------------------------------------------------------
	.org 0x40
boot:
	; §3.1 of the paper: discover our own address with branch-and-link.
	; BL deposits the CURRENT PRIVILEGE LEVEL in the low bits of the
	; return address; on bare hardware that is 0, but under a hypervisor
	; virtual PL0 runs at real PL1 — so the bits MUST be masked. This is
	; precisely the "hack" the paper applied to the HP-UX boot sequence.
	bl   r3, boot_here
boot_here:
	li   r4, 0xFFFFFFFC
	and  r3, r3, r4          ; r3 = physical address of boot_here
	; (position-independence check: we are linked at boot_here)
	li   r4, boot_here
	bne  r3, r4, bad_link

	li   sp, STACKTOP
	li   r3, vectors
	mtctl iva, r3

	; ---- build the linear page table ----
	; RAM: identity-map virtual pages 0..2047 (8 MiB), RWX, minPL 0.
	li   r5, PTBASE
	li   r6, 0               ; vpn
	li   r7, 2048
pt_ram:
	slli r8, r6, 12          ; ppn<<12 (identity)
	ori  r8, r8, 0x27        ; R|W|X | valid(0x20)
	slli r9, r6, 2
	add  r9, r9, r5
	stw  r8, 0(r9)
	addi r6, r6, 1
	bne  r6, r7, pt_ram
	; Devices: map virtual pages 0xF00..0xF0F onto physical pages
	; 0xF0000.. (the MMIO window), RW, minPL 0.
	li   r6, 0
	li   r7, 16
pt_dev:
	li   r8, 0xF0000
	add  r8, r8, r6
	slli r8, r8, 12
	ori  r8, r8, 0x23        ; R|W | valid
	li   r9, 0xF00
	add  r9, r9, r6
	slli r9, r9, 2
	add  r9, r9, r5
	stw  r8, 0(r9)
	addi r6, r6, 1
	bne  r6, r7, pt_dev

	li   r3, PTBASE
	mtctl ptbr, r3

	; ---- clock: arm the interval timer, unmask timer+disk lines ----
	li   r3, TICKCYC
	mtctl itmr, r3
	li   r3, 0xB             ; lines 0 (timer), 1 (disk 0), 3 (disk 1);
	mtctl eiem, r3           ; line 2 (terminal) is polled, not unmasked

	; ---- enter virtual mode with interrupts enabled ----
	li   r3, 0xC             ; PSW.I | PSW.V (virtual PL 0)
	mtctl ipsw, r3
	li   r3, kmain
	mtctl iia, r3
	rfi

bad_link:
	break 39

; ------------------------------------------------------------
; Kernel main: dispatch the workload selected via the ABI block
; ------------------------------------------------------------
kmain:
	; seed the CPU workload's string buffer
	li   r3, 0x74737254      ; "Trst"
	stw  r3, STRSRC(r0)
	li   r3, 0x64654D65      ; "eMed"
	stw  r3, STRSRC+4(r0)
	li   r3, 0x68546E49      ; "InTh"
	stw  r3, STRSRC+8(r0)
	li   r3, 0x21565048      ; "HPV!"
	stw  r3, STRSRC+12(r0)

	ldw  r10, ABI_KIND(r0)
	li   r3, 1
	beq  r10, r3, wl_cpu
	li   r3, 2
	beq  r10, r3, wl_write
	li   r3, 3
	beq  r10, r3, wl_read
	li   r3, 4
	beq  r10, r3, wl_mem
	b    wl_ext              ; device-layer workloads (5, 6) dispatch below

; ------------------------------------------------------------
; Workload 1: CPU-intensive (§4.1, Dhrystone-like)
; ------------------------------------------------------------
wl_cpu:
	ldw  r10, ABI_ITERS(r0)
	li   r11, 0              ; checksum
	beq  r10, r0, cpu_done
cpu_iter:
	; arithmetic/logic mix
	addi r3, r11, 13
	mul  r4, r3, r3
	slli r5, r4, 3
	xor  r11, r11, r5
	srli r5, r4, 7
	add  r11, r11, r5
	slt  r6, r4, r5
	add  r11, r11, r6
	; 16-byte string copy (word moves, as Dhrystone's Proc_6-ish body)
	li   r6, STRSRC
	li   r7, STRDST
	ldw  r8, 0(r6)
	stw  r8, 0(r7)
	ldw  r8, 4(r6)
	stw  r8, 4(r7)
	ldw  r8, 8(r6)
	stw  r8, 8(r7)
	ldw  r8, 12(r6)
	stw  r8, 12(r7)
	ldw  r8, 0(r7)
	add  r11, r11, r8
	; leaf call (procedure-call overhead in the mix)
	mov  arg0, r11
	call leaf_mix
	mov  r11, ret0
	; conditional chain
	slti r9, r11, 0
	beq  r9, r0, cpu_pos
	xori r11, r11, 0x5A5A
cpu_pos:
	addi r10, r10, -1
	bne  r10, r0, cpu_iter
cpu_done:
	stw  r11, ABI_RESULT(r0)
	li   r17, 'C'
	call putc
	b    finish

leaf_mix:
	slli ret0, arg0, 1
	xor  ret0, ret0, arg0
	srli r3, arg0, 3
	add  ret0, ret0, r3
	ret

; ------------------------------------------------------------
; Workload 2: disk write benchmark (§4.2)
;   "a disk block is randomly selected, a write is issued, and then the
;    write completion is awaited" — iterated ABI_OPS times.
; ------------------------------------------------------------
wl_write:
	ldw  r10, ABI_OPS(r0)
	ldw  r12, ABI_SEED(r0)
	beq  r10, r0, wr_done
wr_iter:
	call preop               ; per-op compute phase (block selection)
	call privphase           ; per-op kernel I/O-path privileged work
	call lcg_next            ; r12 = next state
	; block = base + ((state >> 16) & mask)
	srli r18, r12, 16
	ldw  r3, ABI_MASK(r0)
	and  r18, r18, r3
	ldw  r3, ABI_BASE(r0)
	add  r18, r18, r3
	; vary the buffer contents so every write is distinguishable
	li   r15, IOBUF
	stw  r12, 0(r15)
	stw  r10, 4(r15)
	li   r19, 2              ; CmdWrite
	call do_io
	addi r10, r10, -1
	bne  r10, r0, wr_iter
wr_done:
	stw  r12, ABI_RESULT(r0)
	li   r17, 'W'
	call putc
	b    finish

; ------------------------------------------------------------
; Workload 3: disk read benchmark (§4.2)
;   "randomly selects a disk block, issues a read, and awaits the data"
; ------------------------------------------------------------
wl_read:
	ldw  r10, ABI_OPS(r0)
	ldw  r12, ABI_SEED(r0)
	li   r11, 0              ; checksum of data read
	beq  r10, r0, rd_done
rd_iter:
	call preop
	call privphase
	call lcg_next
	srli r18, r12, 16
	ldw  r3, ABI_MASK(r0)
	and  r18, r18, r3
	ldw  r3, ABI_BASE(r0)
	add  r18, r18, r3
	li   r15, IOBUF
	li   r19, 1              ; CmdRead
	call do_io
	ldw  r3, 0(r15)          ; fold the first data word in
	xor  r11, r11, r3
	addi r10, r10, -1
	bne  r10, r0, rd_iter
rd_done:
	stw  r11, ABI_RESULT(r0)
	li   r17, 'R'
	call putc
	b    finish

; ------------------------------------------------------------
; Workload 4: memory-stride (TLB-pressure ablation, §3.2)
;   touches 32 distinct pages cyclically, so a small TLB misses
;   constantly — the workload that exposes nondeterministic TLB
;   replacement when the hypervisor does NOT take over TLB management.
; ------------------------------------------------------------
wl_mem:
	ldw  r10, ABI_ITERS(r0)
	li   r11, 0
	beq  r10, r0, mem_done
mem_iter:
	andi r3, r10, 31         ; page index 0..31
	slli r3, r3, 12
	li   r4, 0x40000         ; stride region base
	add  r4, r4, r3
	ldw  r5, 0(r4)
	add  r11, r11, r5
	xor  r11, r11, r10
	stw  r11, 32(r4)
	addi r10, r10, -1
	bne  r10, r0, mem_iter
mem_done:
	stw  r11, ABI_RESULT(r0)
	li   r17, 'M'
	call putc
	b    finish

; preop: the benchmark's per-operation computation (the paper's block
; selection / buffer management work). ABI_PREOP iterations x 3
; instructions. Clobbers r3, r4.
preop:
	ldw  r4, ABI_PREOP(r0)
	beq  r4, r0, preop_done
preop_loop:
	xor  r3, r3, r4
	addi r4, r4, -1
	bne  r4, r0, preop_loop
preop_done:
	ret

; privphase: ABI_PRIV iterations, one privileged instruction each —
; models the kernel I/O path's privileged-instruction density, which the
; paper measured as the dominant per-operation hypervisor cost ("a
; rather high percentage of the instructions concern I/O. These
; instructions will be privileged and therefore must be simulated").
; Clobbers r3, r4.
privphase:
	ldw  r4, ABI_PRIV(r0)
	beq  r4, r0, priv_done
priv_loop:
	mfctl r3, ptbr           ; privileged kernel bookkeeping
	addi r4, r4, -1
	bne  r4, r0, priv_loop
priv_done:
	ret

; lcg_next: r12 = r12*1664525 + 1013904223 (Numerical Recipes)
lcg_next:
	li   r3, 1664525
	mul  r12, r12, r3
	li   r3, 1013904223
	add  r12, r12, r3
	ret

; ------------------------------------------------------------
; Completion: record results and halt
; ------------------------------------------------------------
finish:
	li   r17, 10             ; newline
	call putc
	ldw  r3, TICKS(r0)
	stw  r3, ABI_TICKS(r0)
	mftod r3
	stw  r3, ABI_DONE(r0)
	halt

; ------------------------------------------------------------
; Disk driver.
;   in: r18 = block, r19 = command, r15 = DMA buffer (physical)
;   clobbers r3, r4, r13
; Retries on CHECK_CONDITION (uncertain) completions: IO2 says the
; operation may or may not have been performed, and the device tolerates
; repetition. Rule P7 synthesizes exactly such completions at failover.
; ------------------------------------------------------------
do_io:
io_retry:
	li   r13, DEVVA
	stw  r19, 0(r13)         ; cmd
	stw  r18, 4(r13)         ; block
	stw  r15, 8(r13)         ; DMA address
	ldw  r3, ABI_COUNT(r0)
	stw  r3, 12(r13)         ; count
	stw  r3, 20(r13)         ; doorbell
io_spin:
	; interrupt-driven wait: the completion handler sets IOFLAG.
	; (HP-UX's idle loop spins the same way; under the hypervisor the
	; flag is set when the buffered interrupt is delivered at an epoch
	; boundary.)
	ldw  r3, IOFLAG(r0)
	beq  r3, r0, io_spin
	stw  r0, IOFLAG(r0)
	li   r13, DEVVA
	ldw  r3, 16(r13)         ; status
	li   r4, 0xFFFFFFFF
	stw  r4, 16(r13)         ; write-1-to-clear
	andi r4, r3, 4           ; StatusUncertain?
	bne  r4, r0, io_retry
	andi r4, r3, 8           ; StatusError?
	bne  r4, r0, io_err
	ret
io_err:
	break 13

; putc: r17 = character; clobbers r13
putc:
	li   r13, CONSVA
	stw  r17, 0(r13)
	ret

; ------------------------------------------------------------
; Device-layer workloads (appended: every label above keeps its
; historical address, so the pinned workloads 1-4 execute bit-identical
; instruction streams).
; ------------------------------------------------------------
wl_ext:
	li   r3, 5
	beq  r10, r3, wl_copy
	li   r3, 6
	beq  r10, r3, wl_echo
	b    wl_ext2             ; workloads 7+ dispatch below (same-size slot)

; ------------------------------------------------------------
; Workload 5: two-disk copy
;   Per operation: generate a block, write it to disk 0, read it back,
;   fold a checksum, and write the data to disk 1 — both adapters on
;   the generic device bus, one outstanding operation at a time.
; ------------------------------------------------------------
wl_copy:
	ldw  r10, ABI_OPS(r0)
	ldw  r12, ABI_SEED(r0)
	li   r11, 0              ; checksum
	li   r16, 0              ; block index
	beq  r10, r0, cp_done
cp_iter:
	call lcg_next
	ldw  r18, ABI_BASE(r0)
	add  r18, r18, r16
	; generate this block's contents
	li   r15, IOBUF
	stw  r12, 0(r15)
	stw  r16, 4(r15)
	; write it to disk 0
	li   r14, DEVVA
	li   r19, 2              ; CmdWrite
	call do_iod
	; read it back from disk 0
	li   r14, DEVVA
	li   r19, 1              ; CmdRead
	call do_iod
	; fold the first data word into the checksum
	ldw  r3, 0(r15)
	xor  r11, r11, r3
	slli r3, r11, 5
	add  r11, r11, r3
	; copy the data to disk 1
	li   r14, DEVVA2
	li   r19, 2              ; CmdWrite
	call do_iod
	addi r16, r16, 1
	addi r10, r10, -1
	bne  r10, r0, cp_iter
cp_done:
	stw  r11, ABI_RESULT(r0)
	li   r17, '2'
	call putc
	b    finish

; ------------------------------------------------------------
; Workload 6: terminal echo
;   Poll the console status for delivered input (under the hypervisor
;   input becomes visible only at epoch boundaries, per the paper's §2
;   interrupt delivery), echo each byte, halt on EOT (0x04).
; ------------------------------------------------------------
wl_echo:
	li   r11, 0              ; checksum of input consumed
	li   r13, CONSVA
echo_loop:
	ldw  r3, 4(r13)          ; console status
	andi r3, r3, 2           ; input pending?
	beq  r3, r0, echo_loop
	ldw  r16, 8(r13)         ; pop the next input byte
	li   r3, 4               ; EOT?
	beq  r16, r3, echo_done
	mov  r17, r16
	call putc                ; echo it
	li   r13, CONSVA
	li   r3, 31              ; checksum = checksum*31 + byte
	mul  r11, r11, r3
	add  r11, r11, r16
	b    echo_loop
echo_done:
	stw  r11, ABI_RESULT(r0)
	b    finish

; ------------------------------------------------------------
; do_iod: disk driver against the device window in r14 (the multi-disk
; twin of do_io; same interrupt-driven wait and CHECK_CONDITION retry).
;   in: r14 = device window VA, r18 = block, r19 = command, r15 = buffer
;   clobbers r3, r4
; ------------------------------------------------------------
do_iod:
iod_retry:
	stw  r19, 0(r14)         ; cmd
	stw  r18, 4(r14)         ; block
	stw  r15, 8(r14)         ; DMA address
	ldw  r3, ABI_COUNT(r0)
	stw  r3, 12(r14)         ; count
	stw  r3, 20(r14)         ; doorbell
iod_spin:
	ldw  r3, IOFLAG(r0)
	beq  r3, r0, iod_spin
	stw  r0, IOFLAG(r0)
	ldw  r3, 16(r14)         ; status
	li   r4, 0xFFFFFFFF
	stw  r4, 16(r14)         ; write-1-to-clear
	andi r4, r3, 4           ; StatusUncertain?
	bne  r4, r0, iod_retry
	andi r4, r3, 8           ; StatusError?
	bne  r4, r0, iod_err
	ret
iod_err:
	break 13

; ------------------------------------------------------------
; Network workloads (appended after the device-layer workloads: every
; label above keeps its historical address).
; ------------------------------------------------------------
wl_ext2:
	li   r3, 7
	beq  r10, r3, wl_serve
	break 20                 ; unknown workload

; ------------------------------------------------------------
; Workload 7: network request/response server
;   Poll the NIC for a delivered request frame (under the hypervisor
;   frames become visible only at epoch boundaries, like all device
;   input). A frame is [request-id, payload words...]. The reply is
;   [request-id, checksum]: fold the payload (x31+word), run the
;   per-request compute phase (ABI_PREOP), bind the request id in, and
;   transmit via the word-register TX buffer + doorbell. ABI_OPS
;   requests are served, newest checksums folded into ABI_RESULT.
; ------------------------------------------------------------
wl_serve:
	ldw  r10, ABI_OPS(r0)    ; requests to serve
	li   r11, 0              ; running result checksum
	li   r13, NICVA
	beq  r10, r0, sv_done
sv_loop:
	ldw  r3, 8(r13)          ; NIC status
	andi r3, r3, 2           ; RX frame pending?
	beq  r3, r0, sv_loop
	ldw  r14, 16(r13)        ; words in the head frame
	ldw  r16, 12(r13)        ; pop word 0: request id
	addi r14, r14, -1
	li   r15, 0              ; payload checksum
sv_words:
	beq  r14, r0, sv_reply
	ldw  r3, 12(r13)         ; pop next payload word
	li   r4, 31
	mul  r15, r15, r4
	add  r15, r15, r3        ; checksum = checksum*31 + word
	addi r14, r14, -1
	b    sv_words
sv_reply:
	call preop               ; per-request compute phase (ABI_PREOP)
	xor  r15, r15, r16       ; bind the reply to its request id
	stw  r16, 0(r13)         ; TX word: request id
	stw  r15, 0(r13)         ; TX word: payload checksum
	li   r3, 2
	stw  r3, 4(r13)          ; doorbell: emit the 2-word reply frame
	li   r3, 31
	mul  r11, r11, r3
	add  r11, r11, r15       ; fold the reply into the result
	addi r10, r10, -1
	bne  r10, r0, sv_loop
sv_done:
	stw  r11, ABI_RESULT(r0)
	li   r17, 'S'
	call putc
	b    finish

; ------------------------------------------------------------
; Interruption vectors (32 bytes per slot). Handlers may use ONLY
; r20..r27. They run with translation off; all data they touch is
; identity-mapped.
; ------------------------------------------------------------
	.align 32
	.org 0x2000
vectors:
v_reset:                         ; 0: unused
	break 40
	.align 32
v_illegal:                       ; 1: illegal instruction
	b panic_trap
	.align 32
v_priv:                          ; 2: privilege violation
	b panic_trap
	.align 32
v_itlb:                          ; 3: instruction TLB miss
	b tlb_miss
	.align 32
v_dtlb:                          ; 4: data TLB miss
	b tlb_miss
	.align 32
v_access:                        ; 5: access rights
	b panic_trap
	.align 32
v_align:                         ; 6: alignment
	b panic_trap
	.align 32
v_break:                         ; 7: BREAK (guest panic)
	b brk_handler
	.align 32
v_gate:                          ; 8: GATE (no syscalls in this kernel)
	b panic_trap
	.align 32
v_recovery:                      ; 9: recovery counter (hypervisor-owned)
	break 49
	.align 32
v_itimer:                        ; 10: (timer arrives as ext line 0)
	break 50
	.align 32
v_extintr:                       ; 11: external interrupt
	b irq_handler
	.align 32
v_arith:                         ; 12: arithmetic trap
	b panic_trap
	.align 32
v_machine:                       ; 13: machine check
	b panic_trap

; ------------------------------------------------------------
; TLB miss: software page-table walk + insert (the PA-RISC way).
; On bare hardware this runs for every miss; under the hypervisor the
; §3.2 TLB takeover makes resident-page misses invisible and this
; handler runs only for truly unmapped addresses (a guest bug — panic).
; ------------------------------------------------------------
tlb_miss:
	mfctl r20, ior           ; faulting virtual address
	srli r21, r20, 12        ; vpn
	li   r22, 4096
	sltu r23, r21, r22
	beq  r23, r0, panic_trap ; beyond the page table: unmapped
	mfctl r22, ptbr
	slli r23, r21, 2
	add  r22, r22, r23
	ldw  r23, 0(r22)         ; PTE
	andi r22, r23, 0x20      ; valid?
	beq  r22, r0, panic_trap
	; itlbi operands: r24 = va | perm bits, r25 = pa
	slli r24, r21, 12
	andi r22, r23, 0x1F      ; permission bits
	or   r24, r24, r22
	li   r22, 0xFFFFF000
	and  r25, r23, r22
	itlbi r24, r25
	rfi                      ; retry the faulting access

; ------------------------------------------------------------
; External interrupt: clock tick (line 0) and/or disk (line 1)
; ------------------------------------------------------------
irq_handler:
	mfctl r20, eirr
	mtctl eirr, r20          ; acknowledge all
	andi r21, r20, 1         ; timer?
	beq  r21, r0, irq_nodisk_check
	; clock tick: bump TICKS, re-arm the interval timer
	ldw  r22, TICKS(r0)
	addi r22, r22, 1
	stw  r22, TICKS(r0)
	li   r22, TICKCYC
	mtctl itmr, r22
irq_nodisk_check:
	andi r21, r20, 10        ; disk 0 (line 1) or disk 1 (line 3)?
	beq  r21, r0, irq_done
	addi r22, r0, 1
	stw  r22, IOFLAG(r0)
irq_done:
	rfi

; ------------------------------------------------------------
; Panic paths: record and halt
; ------------------------------------------------------------
panic_trap:
	mfctl r20, iia           ; record the interrupted address (nonzero)
	ori  r20, r20, 1
	stw  r20, ABI_PANIC(r0)
	halt

brk_handler:
	mfctl r20, isr           ; BREAK code
	stw  r20, ABI_PANIC(r0)
	halt
`
