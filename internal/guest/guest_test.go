package guest

import (
	"strings"
	"testing"

	"repro/internal/platform"
	"repro/internal/scsi"
	"repro/internal/sim"
)

// fastDisk keeps tests quick; semantics identical to paper latencies.
func fastDisk() scsi.DiskConfig {
	return scsi.DiskConfig{
		ReadLatency:  150 * sim.Microsecond,
		WriteLatency: 200 * sim.Microsecond,
	}
}

// runBare boots the kernel bare with a workload and runs to halt.
func runBare(t *testing.T, w Workload, cfg platform.Config) (*platform.Single, Result, sim.Time) {
	t.Helper()
	k := sim.NewKernel(1)
	t.Cleanup(k.Shutdown)
	s := platform.NewSingle(k, cfg)
	p := Program()
	s.Bare.Boot(p.Origin, p.Words, 0)
	Configure(s.Node.M, w)
	var done sim.Time
	k.Spawn("bare", func(pr *sim.Proc) {
		s.Bare.Run(pr)
		done = pr.Now()
	})
	k.RunUntil(200 * sim.Second)
	if !s.Bare.Halted() {
		t.Fatalf("bare kernel did not halt (pc=%#x)", s.Node.M.PC)
	}
	return s, ReadResult(s.Node.M), done
}

// runVirt boots the kernel under a single hypervisor (no replication)
// and runs to halt.
func runVirt(t *testing.T, w Workload, cfg platform.Config) (*platform.Single, Result, sim.Time) {
	t.Helper()
	k := sim.NewKernel(1)
	t.Cleanup(k.Shutdown)
	s := platform.NewSingle(k, cfg)
	hv := s.Node.HV
	hv.SetIOActive(true)
	p := Program()
	hv.Boot(p.Origin, p.Words, 0)
	Configure(s.Node.M, w)
	var done sim.Time
	k.Spawn("virt", func(pr *sim.Proc) {
		for !hv.Halted() {
			hv.StartEpochClock()
			b := hv.RunEpoch(pr)
			hv.TimerInterruptsDue(b.TOD)
			hv.DeliverBuffered()
			hv.ChargeBoundary(pr)
		}
		done = pr.Now()
	})
	k.RunUntil(200 * sim.Second)
	if !hv.Halted() {
		t.Fatalf("virtualized kernel did not halt (pc=%#x, instr=%d)",
			s.Node.M.PC, hv.GuestInstructions())
	}
	return s, ReadResult(s.Node.M), done
}

func TestKernelAssembles(t *testing.T) {
	p := Program()
	if len(p.Words) == 0 {
		t.Fatal("empty kernel image")
	}
	// Key symbols present at expected addresses.
	if v := p.MustSymbol("vectors"); v != VectorBase {
		t.Errorf("vectors at %#x, want %#x", v, VectorBase)
	}
	for _, sym := range []string{"boot", "kmain", "wl_cpu", "wl_write", "wl_read", "do_io", "tlb_miss", "irq_handler"} {
		if _, ok := p.Symbol(sym); !ok {
			t.Errorf("symbol %q missing", sym)
		}
	}
}

func TestBareCPUWorkload(t *testing.T) {
	s, res, done := runBare(t, CPUIntensive(2000), platform.Config{Disk: fastDisk()})
	if res.Panic != 0 {
		t.Fatalf("guest panic %#x", res.Panic)
	}
	if res.Checksum == 0 {
		t.Error("zero checksum")
	}
	if out := s.Console.Output(); out != "C\n" {
		t.Errorf("console = %q, want C\\n", out)
	}
	if res.Ticks == 0 {
		t.Error("clock never ticked (interval timer broken)")
	}
	if done == 0 {
		t.Error("no completion time")
	}
	// The bare kernel handled its own TLB misses.
	if s.Node.M.TLB.Stats.Inserts == 0 {
		t.Error("no TLB inserts — virtual mode never exercised")
	}
}

func TestBareDiskWriteWorkload(t *testing.T) {
	s, res, _ := runBare(t, DiskWrite(5, 1024), platform.Config{Disk: fastDisk()})
	if res.Panic != 0 {
		t.Fatalf("guest panic %#x", res.Panic)
	}
	if out := s.Console.Output(); out != "W\n" {
		t.Errorf("console = %q", out)
	}
	if got := len(s.Disk.Log); got != 5 {
		t.Errorf("disk ops = %d, want 5", got)
	}
	for _, rec := range s.Disk.Log {
		if rec.Cmd != scsi.CmdWrite {
			t.Errorf("unexpected op %d", rec.Cmd)
		}
	}
}

func TestBareDiskReadWorkload(t *testing.T) {
	cfg := platform.Config{Disk: fastDisk()}
	// Pre-fill some blocks so reads return content... reads of zeroed
	// blocks are fine too; checksum may be zero, so just check the log.
	s, res, _ := runBare(t, DiskRead(6, 2048), cfg)
	if res.Panic != 0 {
		t.Fatalf("guest panic %#x", res.Panic)
	}
	if out := s.Console.Output(); out != "R\n" {
		t.Errorf("console = %q", out)
	}
	if got := len(s.Disk.Log); got != 6 {
		t.Errorf("disk ops = %d, want 6", got)
	}
}

func TestVirtualizedMatchesBare(t *testing.T) {
	// The same kernel + workload produce the SAME architectural results
	// bare and under the hypervisor: checksum, console, disk ops.
	for _, w := range []Workload{
		CPUIntensive(1500),
		DiskWrite(4, 1024),
		DiskRead(4, 1024),
	} {
		cfg := platform.Config{Disk: fastDisk()}
		sBare, rBare, tBare := runBare(t, w, cfg)
		sVirt, rVirt, tVirt := runVirt(t, w, cfg)
		if rBare.Panic != 0 || rVirt.Panic != 0 {
			t.Fatalf("kind %d: panics %#x / %#x", w.Kind, rBare.Panic, rVirt.Panic)
		}
		if rBare.Checksum != rVirt.Checksum {
			t.Errorf("kind %d: checksum bare %#x vs virt %#x", w.Kind, rBare.Checksum, rVirt.Checksum)
		}
		if a, b := sBare.Console.Output(), sVirt.Console.Output(); a != b {
			t.Errorf("kind %d: console %q vs %q", w.Kind, a, b)
		}
		if a, b := len(sBare.Disk.Log), len(sVirt.Disk.Log); a != b {
			t.Errorf("kind %d: disk ops %d vs %d", w.Kind, a, b)
		}
		// Virtualization costs time (NP > 1).
		if tVirt <= tBare {
			t.Errorf("kind %d: virt (%v) not slower than bare (%v)", w.Kind, tVirt, tBare)
		}
	}
}

func TestTLBTakeoverInvisible(t *testing.T) {
	// Under the hypervisor, the guest's tlb_miss handler must never run
	// for resident pages: ABIPanic stays 0 and hypervisor TLB fills > 0.
	cfg := platform.Config{Disk: fastDisk()}
	k := sim.NewKernel(1)
	defer k.Shutdown()
	s := platform.NewSingle(k, cfg)
	hv := s.Node.HV
	hv.SetIOActive(true)
	p := Program()
	hv.Boot(p.Origin, p.Words, 0)
	Configure(s.Node.M, CPUIntensive(500))
	k.Spawn("virt", func(pr *sim.Proc) {
		for !hv.Halted() {
			hv.StartEpochClock()
			b := hv.RunEpoch(pr)
			hv.TimerInterruptsDue(b.TOD)
			hv.DeliverBuffered()
		}
	})
	k.RunUntil(100 * sim.Second)
	if !hv.Halted() {
		t.Fatal("did not halt")
	}
	if hv.Stats.TLBFills == 0 {
		t.Error("hypervisor made no TLB fills")
	}
	if res := ReadResult(s.Node.M); res.Panic != 0 {
		t.Errorf("guest panicked: %#x (its TLB handler should be bypassed)", res.Panic)
	}
}

func TestDeviceTransientRetriedByDriver(t *testing.T) {
	cfg := platform.Config{Disk: fastDisk()}
	cfg.Disk.Seed = 3
	k := sim.NewKernel(1)
	defer k.Shutdown()
	s := platform.NewSingle(k, cfg)
	s.Disk.InjectUncertainNext(2)
	p := Program()
	s.Bare.Boot(p.Origin, p.Words, 0)
	Configure(s.Node.M, DiskWrite(3, 512))
	k.Spawn("bare", func(pr *sim.Proc) { s.Bare.Run(pr) })
	k.RunUntil(100 * sim.Second)
	if !s.Bare.Halted() {
		t.Fatal("did not halt")
	}
	res := ReadResult(s.Node.M)
	if res.Panic != 0 {
		t.Fatalf("guest panic %#x", res.Panic)
	}
	// 3 logical writes + 2 retries = 5 device ops.
	if got := len(s.Disk.Log); got != 5 {
		t.Errorf("disk ops = %d, want 5 (retries included)", got)
	}
	if s.Node.Adapter.OpsUncertain != 2 {
		t.Errorf("uncertain completions = %d, want 2", s.Node.Adapter.OpsUncertain)
	}
}

func TestWorkloadChecksumDeterministic(t *testing.T) {
	_, r1, _ := runBare(t, CPUIntensive(800), platform.Config{Disk: fastDisk()})
	_, r2, _ := runBare(t, CPUIntensive(800), platform.Config{Disk: fastDisk()})
	if r1.Checksum != r2.Checksum {
		t.Error("CPU checksum not deterministic")
	}
	// Different iteration counts give different checksums (sanity that
	// the checksum depends on the work).
	_, r3, _ := runBare(t, CPUIntensive(801), platform.Config{Disk: fastDisk()})
	if r3.Checksum == r1.Checksum {
		t.Error("checksum insensitive to iteration count")
	}
}

func TestReadWorkloadChecksumsData(t *testing.T) {
	// Pre-fill the blocks the LCG will select; the read workload's
	// checksum must reflect the data.
	cfg := platform.Config{Disk: fastDisk()}
	k := sim.NewKernel(1)
	defer k.Shutdown()
	s := platform.NewSingle(k, cfg)
	for b := uint32(16); b < 16+1024; b++ {
		s.Disk.WriteBlockDirect(b, []byte{byte(b), byte(b >> 8), 1, 2})
	}
	p := Program()
	s.Bare.Boot(p.Origin, p.Words, 0)
	Configure(s.Node.M, DiskRead(4, 1024))
	k.Spawn("bare", func(pr *sim.Proc) { s.Bare.Run(pr) })
	k.RunUntil(100 * sim.Second)
	res := ReadResult(s.Node.M)
	if res.Panic != 0 {
		t.Fatalf("panic %#x", res.Panic)
	}
	if res.Checksum == 0 {
		t.Error("read checksum zero despite non-zero data")
	}
}

func TestBootUsesBLMaskHack(t *testing.T) {
	// The §3.1 hack must be present in the kernel source: a BL followed
	// by masking the privilege bits.
	if !strings.Contains(KernelSource, "bl   r3, boot_here") ||
		!strings.Contains(KernelSource, "0xFFFFFFFC") {
		t.Error("boot sequence lost the BL privilege-mask hack")
	}
}

func TestTicksAdvanceWithWork(t *testing.T) {
	_, small, _ := runBare(t, CPUIntensive(500), platform.Config{Disk: fastDisk()})
	_, large, _ := runBare(t, CPUIntensive(50000), platform.Config{Disk: fastDisk()})
	if large.Ticks <= small.Ticks {
		t.Errorf("ticks: %d (large) <= %d (small)", large.Ticks, small.Ticks)
	}
}
