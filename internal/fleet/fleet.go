// Package fleet stands up and drives thousands of concurrent
// replicated clusters in one process — the scale harness behind
// `hftbench -fleet N`. Each shard is one hft.Cluster with its own
// seed, workload, link model and randomized fault schedule (reusing
// the chaos generator, so every shard replays independently via
// chaos.ScheduleAt). Shards run on the work-stealing scheduler
// (internal/sched) and share guest kernel pages through the machine
// layer's content-interned copy-on-write base images, so a 10k-shard
// fleet costs a few dirty pages per replica instead of a private RAM
// copy each.
//
// Determinism contract: every field of a Report except nothing — the
// whole Report — is bit-identical at any worker count and on any
// host. Host-dependent quantities (wall time, throughput, RSS) are
// the caller's to measure around Run.
package fleet

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	hft "repro"
	"repro/internal/chaos"
	"repro/internal/sched"
)

// Spec describes a fleet run.
type Spec struct {
	// Shards is the number of clusters to stand up and drive.
	Shards int `json:"shards"`
	// Seed derives every shard's schedule: shard i executes
	// chaos.ScheduleAt(Seed, i), so any shard replays in isolation.
	Seed int64 `json:"seed"`
	// Workers is the work-stealing scheduler's width; < 1 selects all
	// cores. The Report is bit-identical at any width.
	Workers int `json:"-"`
	// PrivateRAM gives every machine its own private RAM copy instead
	// of the shared COW base image — the control arm for differential
	// tests and memory measurements.
	PrivateRAM bool `json:"private_ram,omitempty"`
}

// ShardResult is one shard's deterministic outcome.
type ShardResult struct {
	Shard int `json:"shard"`
	// Violation is the chaos invariant violation, "" for a clean run.
	Violation string `json:"violation,omitempty"`
	// Metrics summarizes the run (virtual-time quantities only).
	Metrics chaos.Metrics `json:"metrics"`
}

// Aggregate is the fleet-wide rollup.
type Aggregate struct {
	Shards     int `json:"shards"`
	Violations int `json:"violations"`
	// Failovers counts backup promotions across the fleet.
	Failovers int `json:"failovers"`
	// Commits / Instructions sum the per-shard counters.
	Commits      uint64 `json:"commits"`
	Instructions uint64 `json:"instructions"`
	// VirtualTime sums per-shard completion times — the denominator
	// for virtual epoch-commit throughput.
	VirtualTime hft.Duration `json:"virtual_time"`
	// BlackoutP50/P99/Max are nearest-rank percentiles of the failover
	// blackout across shards that failed over (zero if none did).
	BlackoutP50 hft.Duration `json:"blackout_p50"`
	BlackoutP99 hft.Duration `json:"blackout_p99"`
	BlackoutMax hft.Duration `json:"blackout_max"`
	// Digest fingerprints every shard result, so one committed value
	// pins the whole fleet's outcome.
	Digest string `json:"digest"`
}

// Report is a fleet run's complete outcome.
type Report struct {
	Spec      Spec          `json:"spec"`
	Shards    []ShardResult `json:"-"`
	Aggregate Aggregate     `json:"aggregate"`
}

// Run executes the fleet and reports per-shard results slotted by
// shard index plus the aggregate rollup.
func Run(spec Spec) Report {
	results := make([]ShardResult, spec.Shards)
	sched.ForEach(spec.Workers, spec.Shards, func(i int) {
		var m chaos.Metrics
		rep := chaos.ExecuteOpts(chaos.ScheduleAt(spec.Seed, i), chaos.ExecOptions{
			SharedImage: !spec.PrivateRAM,
			Metrics:     &m,
		})
		r := ShardResult{Shard: i, Metrics: m}
		if rep.Violation != nil {
			r.Violation = rep.Violation.String()
		}
		results[i] = r
	})
	return Report{Spec: spec, Shards: results, Aggregate: aggregate(results)}
}

// aggregate folds shard results into the fleet rollup.
func aggregate(results []ShardResult) Aggregate {
	agg := Aggregate{Shards: len(results)}
	h := fnv.New64a()
	var blackouts []hft.Duration
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for i := range results {
		r := &results[i]
		if r.Violation != "" {
			agg.Violations++
		}
		agg.Failovers += r.Metrics.Failovers
		agg.Commits += r.Metrics.Commits
		agg.Instructions += r.Metrics.Instructions
		agg.VirtualTime += r.Metrics.Time
		if r.Metrics.Failovers > 0 {
			blackouts = append(blackouts, r.Metrics.Blackout)
		}
		put(uint64(r.Shard))
		h.Write([]byte(r.Violation))
		put(r.Metrics.Commits)
		put(r.Metrics.Instructions)
		put(uint64(r.Metrics.Time))
		put(uint64(r.Metrics.Failovers))
		put(uint64(r.Metrics.Blackout))
	}
	if len(blackouts) > 0 {
		sort.Slice(blackouts, func(i, j int) bool { return blackouts[i] < blackouts[j] })
		agg.BlackoutP50 = blackouts[(len(blackouts)-1)*50/100]
		agg.BlackoutP99 = blackouts[(len(blackouts)-1)*99/100]
		agg.BlackoutMax = blackouts[len(blackouts)-1]
	}
	agg.Digest = fmt.Sprintf("%016x", h.Sum64())
	return agg
}
