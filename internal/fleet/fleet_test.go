package fleet

import (
	"encoding/json"
	"reflect"
	"testing"
)

// The fleet determinism contract: the same spec produces bit-identical
// per-shard results and aggregates at any worker count, serial
// included.
func TestFleetDeterminism(t *testing.T) {
	// An explicit width > 1 forces real work-stealing goroutines even
	// on a single-core host (sched does not clamp to NumCPU).
	spec := Spec{Shards: 8, Seed: 424242, Workers: 1}
	serial := Run(spec)
	spec.Workers = 4
	parallel := Run(spec)

	if !reflect.DeepEqual(serial.Shards, parallel.Shards) {
		t.Fatalf("per-shard results differ between workers=1 and workers=%d", spec.Workers)
	}
	if !reflect.DeepEqual(serial.Aggregate, parallel.Aggregate) {
		t.Fatalf("aggregates differ:\nserial:   %+v\nparallel: %+v", serial.Aggregate, parallel.Aggregate)
	}
	a, err := json.Marshal(serial.Aggregate)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(parallel.Aggregate)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("aggregate JSON differs:\n%s\n%s", a, b)
	}
	if serial.Aggregate.Commits == 0 {
		t.Fatal("fleet committed zero epochs — shards did not actually run")
	}
}

// COW differential at fleet scale: shards on the shared base image
// must produce exactly the results of shards with private RAM.
func TestFleetSharedMatchesPrivate(t *testing.T) {
	shared := Run(Spec{Shards: 6, Seed: 7, Workers: 3})
	private := Run(Spec{Shards: 6, Seed: 7, Workers: 3, PrivateRAM: true})

	if !reflect.DeepEqual(shared.Shards, private.Shards) {
		t.Fatalf("shared-image shard results differ from private-RAM control")
	}
	if shared.Aggregate.Digest != private.Aggregate.Digest {
		t.Fatalf("aggregate digest differs: shared %s private %s",
			shared.Aggregate.Digest, private.Aggregate.Digest)
	}
}

// Violating shards must be reported, not dropped: a schedule set known
// to be clean reports zero violations (the chaos campaign suite covers
// the violating side).
func TestFleetAggregateShape(t *testing.T) {
	rep := Run(Spec{Shards: 4, Seed: 99, Workers: 2})
	if rep.Aggregate.Shards != 4 || len(rep.Shards) != 4 {
		t.Fatalf("aggregate covers %d shards, want 4", rep.Aggregate.Shards)
	}
	for i, r := range rep.Shards {
		if r.Shard != i {
			t.Fatalf("shard %d result landed in slot %d", r.Shard, i)
		}
		if r.Violation != "" {
			t.Fatalf("shard %d violated: %s", i, r.Violation)
		}
	}
	if rep.Aggregate.Failovers > 0 && rep.Aggregate.BlackoutMax == 0 {
		t.Fatal("failovers recorded but no blackout percentile computed")
	}
}
