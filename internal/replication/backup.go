package replication

import (
	"fmt"
	"sort"

	"repro/internal/hypervisor"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// epochRecord collects the protocol messages received for one epoch.
type epochRecord struct {
	ints map[uint32]hypervisor.Interrupt // by capture index (dedupes)
	tme  *uint32
	end  *message
	// verbatim, when set, replaces everything above: the epoch is
	// replayed exactly as a (new) primary's msgSync dictates.
	verbatim *SyncEpoch
}

// Backup drives a backup virtual machine's hypervisor: rules P3–P7. In
// the t-fault-tolerant generalization a backup has an index (1 = first
// to promote), receives from every higher-priority node, and — after
// promotion — coordinates every lower-priority backup, bringing them
// onto its stream with a replay of its delivered-interrupt archive.
type Backup struct {
	HV *hypervisor.Hypervisor

	index int
	ups   []Peer // to higher-priority nodes: RX = their stream, TX = our acks
	downs []Peer // to lower-priority backups (used only after promotion)
	proto Protocol

	// Timeout is the base failure-detection timeout; backup i waits
	// i × Timeout, so promotions cascade in priority order.
	Timeout sim.Time

	// BootTOD must equal the primary's (replicas start in one state).
	BootTOD uint32

	// PeerTimeout is handed to the coordinator this backup becomes at
	// promotion: how long its acknowledgement waits may block on a
	// peer that silently stops acking (zero: forever).
	PeerTimeout sim.Time

	// OnDivergence, when set, is called on a state-digest mismatch with
	// the coordinating primary; when nil, divergence panics (tripwire).
	OnDivergence func(epoch uint64, primary, backup uint64)

	// Hooks observes protocol milestones (optional; set before Run). A
	// backup that promotes hands the same hooks to its coordinator.
	Hooks Hooks

	// OutputCommit mirrors the coordinator's configuration (every
	// replica must agree). A backup uses it to interpret epoch frames
	// and hands it to the coordinator it becomes at promotion.
	OutputCommit OutputCommit

	pending map[uint64]*epochRecord
	// recFree recycles epoch records: a record freed at one epoch's
	// boundary serves a later epoch without reallocating its map.
	recFree []*epochRecord
	archive *epochArchive
	arrival *sim.Signal
	// completed counts epochs whose boundary processing has finished;
	// the epoch currently executing (or awaiting its boundary) is
	// `completed`, which is also the oldest epoch a sync may replay.
	completed uint64
	promoted  bool
	failed    bool
	done      bool
	// withdrawn marks a backup that fell outside a new primary's resync
	// window (or diverged from it) and can no longer participate.
	withdrawn bool
	halted    bool
	// rxStarted marks that the receiver processes are already running
	// (a late joiner starts them before its state transfer completes,
	// so acknowledgements flow while the image is in flight).
	rxStarted bool
	// coord is the coordinator loop this backup runs after promotion
	// (nil before); kept so late-joining backups can be added to its
	// fan-out.
	coord *coordinator
	// joinBarrier carries a pending reintegration drain (see
	// coordinator.joinBarrier) across a promotion that happens while the
	// quiesce is in progress.
	joinBarrier bool

	Stats Stats
}

// NewBackup wires a single-backup engine (the paper's configuration):
// rx carries the primary's stream, tx returns acknowledgements.
func NewBackup(hv *hypervisor.Hypervisor, rx, tx *netsim.Link, timeout sim.Time) *Backup {
	return NewBackupAt(hv, 1, []Peer{{TX: tx, RX: rx}}, nil, timeout, ProtocolOld)
}

// NewBackupAt wires backup number index (1-based priority). ups are the
// channels toward every higher-priority node, in priority order
// (ups[0] = the original primary); downs are the channels toward every
// lower-priority backup, used only after promotion. proto selects the
// protocol this backup will run if promoted.
func NewBackupAt(hv *hypervisor.Hypervisor, index int, ups, downs []Peer, timeout sim.Time, proto Protocol) *Backup {
	return &Backup{
		HV:      hv,
		index:   index,
		ups:     ups,
		downs:   downs,
		proto:   proto,
		Timeout: timeout,
		pending: map[uint64]*epochRecord{},
		archive: newEpochArchive(),
	}
}

// Promoted reports whether failover has occurred.
func (bk *Backup) Promoted() bool { return bk.promoted }

// SetJoinBarrier arms (or disarms) the reintegration drain on the
// coordinator this backup runs — now, if promoted, or at a promotion
// that happens while the barrier is armed. No-op for a backup that never
// coordinates.
func (bk *Backup) SetJoinBarrier(on bool) {
	bk.joinBarrier = on
	if bk.coord != nil {
		bk.coord.joinBarrier = on
	}
}

// ReplicationDrained reports whether every epoch this node has committed
// as acting coordinator is provably replicated. True for a backup that
// does not coordinate.
func (bk *Backup) ReplicationDrained() bool {
	if bk.coord == nil {
		return true
	}
	return bk.coord.drained()
}

// Withdrawn reports whether this backup dropped out of the replica set
// (it fell outside a new primary's resynchronization window).
func (bk *Backup) Withdrawn() bool { return bk.withdrawn }

// Failstop makes this backup's processor stop abruptly (multi-failure
// experiments), severing all its channels.
func (bk *Backup) Failstop() {
	bk.failed = true
	for _, u := range bk.ups {
		u.TX.Disconnect()
		u.RX.Disconnect()
	}
	for _, d := range bk.downs {
		d.TX.Disconnect()
		d.RX.Disconnect()
	}
}

// Failed reports whether a failstop was injected.
func (bk *Backup) Failed() bool { return bk.failed }

// effTimeout is this backup's failure-detection timeout: cascaded by
// priority so that at most one replica promotes per failure.
func (bk *Backup) effTimeout() sim.Time { return bk.Timeout * sim.Time(bk.index) }

// rec returns (allocating or recycling) the record for an epoch.
func (bk *Backup) rec(e uint64) *epochRecord {
	r := bk.pending[e]
	if r == nil {
		if n := len(bk.recFree); n > 0 {
			r = bk.recFree[n-1]
			bk.recFree = bk.recFree[:n-1]
		} else {
			r = &epochRecord{ints: map[uint32]hypervisor.Interrupt{}}
		}
		bk.pending[e] = r
	}
	return r
}

// release retires epoch e's record to the free list once its boundary
// processing is complete.
func (bk *Backup) release(e uint64) {
	r := bk.pending[e]
	if r == nil {
		return
	}
	delete(bk.pending, e)
	clear(r.ints)
	r.tme, r.end, r.verbatim = nil, nil, nil
	bk.recFree = append(bk.recFree, r)
}

// receiver runs as its own simulation process per upstream channel: it
// acknowledges every message immediately (P4) and files it by epoch.
func (bk *Backup) receiver(u Peer) func(p *sim.Proc) {
	return func(p *sim.Proc) {
		for !bk.promoted && !bk.done && !bk.failed {
			raw, ok := u.RX.Inbox.RecvTimeout(p, bk.Timeout)
			if !ok {
				continue
			}
			switch m := raw.Payload.(type) {
			case *epochFrame:
				// Output commit: one coalesced frame stands in for the
				// epoch's Tme, End and interrupt messages. One ack (P4).
				ack := message{Kind: msgAck, AckSeq: m.Head.Seq}
				u.TX.Send(ack, ack.wireSize())
				bk.fileFrame(m)
			case *epochBatch:
				// A transmit-side batch: several epochs in one wire
				// message. One cumulative ack covers them all (the ack
				// watermark is a high-water mark, so acking the newest
				// sequence acknowledges the whole FIFO prefix).
				if n := len(m.Recs); n > 0 {
					ack := message{Kind: msgAck, AckSeq: m.Recs[n-1].Head.Seq}
					u.TX.Send(ack, ack.wireSize())
				}
				for _, f := range m.Recs {
					bk.fileFrame(f)
				}
				m.Release()
			case message:
				// P4: "backup sends an acknowledgment to the primary".
				ack := message{Kind: msgAck, AckSeq: m.Seq}
				u.TX.Send(ack, ack.wireSize())
				switch m.Kind {
				case msgInterrupt:
					bk.Stats.IntsReceived++
					r := bk.rec(m.Epoch)
					if r.verbatim == nil {
						r.ints[m.IntIndex] = m.Int
					}
				case msgTme:
					v := m.Tme
					bk.rec(m.Epoch).tme = &v
				case msgEnd:
					mm := m
					bk.rec(m.Epoch).end = &mm
				case msgSync:
					bk.applySync(m.Sync)
				}
			}
			bk.arrival.Broadcast()
		}
	}
}

// applySync installs verbatim replay records from a newly promoted
// primary for every epoch this backup has not yet completed. If the
// sync's history starts after our next epoch, we cannot catch up:
// withdraw from the replica set.
func (bk *Backup) applySync(entries []SyncEpoch) {
	next := bk.completed // oldest epoch still needing boundary processing
	covered := false
	for i := range entries {
		e := entries[i]
		if e.Epoch < next {
			continue
		}
		if e.Epoch == next {
			covered = true
		}
		r := bk.rec(e.Epoch)
		ee := e
		r.verbatim = &ee
	}
	if !covered && len(entries) > 0 && entries[0].Epoch > next {
		bk.withdrawn = true
	}
}

// stageOrdered buffers epoch e's received interrupts in capture order.
func (bk *Backup) stageOrdered(e uint64) {
	r := bk.rec(e)
	idxs := make([]int, 0, len(r.ints))
	for k := range r.ints {
		idxs = append(idxs, int(k))
	}
	sort.Ints(idxs)
	for _, k := range idxs {
		bk.HV.BufferInterrupt(r.ints[uint32(k)])
	}
}

// checkDigest verifies our pre-delivery state digest against the
// coordinator's and reports whether they matched.
func (bk *Backup) checkDigest(e uint64, primary, ours uint64) bool {
	if primary == ours {
		return true
	}
	bk.Stats.Divergences++
	if bk.OnDivergence != nil {
		bk.OnDivergence(e, primary, ours)
		return false
	}
	panic(fmt.Sprintf("replication: divergence at epoch %d: primary %x backup %x",
		e, primary, ours))
}

// replayVerbatim applies a sync-provided epoch: deliver exactly what the
// new primary delivered.
func (bk *Backup) replayVerbatim(p *sim.Proc, e uint64, digest uint64, v *SyncEpoch) {
	hv := bk.HV
	for _, i := range v.Ints {
		if i.Timer {
			hv.NoteTimerDelivered()
		}
		hv.BufferInterrupt(i)
	}
	match := bk.checkDigest(e, v.Digest, digest)
	if bk.Hooks.BackupEpoch != nil {
		bk.Hooks.BackupEpoch(bk.index, e, p.Now(), match)
	}
	hv.DeliverBuffered()
	// The verbatim record proves the (new) coordinator completed this
	// epoch, so its environment output was performed: drop ours.
	hv.CommitSuppressedOutputs()
	if len(bk.downs) > 0 {
		bk.archive.record(*v)
	}
	hv.SetTODBase(v.Tme)
	if v.Halted {
		bk.halted = true
	}
	bk.release(e)
}

// failover implements P6 and P7 and — with lower-priority backups
// present — the promotion handshake: replay history to them and carry on
// as their primary.
func (bk *Backup) failover(p *sim.Proc, e uint64, digest uint64) {
	hv := bk.HV
	// P6: deliver what we did receive for this epoch...
	bk.stageOrdered(e)
	// ...plus "interrupts based on Tme_b" — our own clock; no Tme_p came.
	hv.TimerInterruptsDue(hv.VirtualTOD())
	// P7, device-generic: "generate an uncertain interrupt for every I/O
	// operation that is outstanding when the backup virtual machine
	// finishes a failover epoch" — plus, for input devices, the pending
	// environment input no replica consumed. An operation whose
	// completion was relayed but not yet delivered receives both the
	// completion and the uncertain status; the guest driver's retry is
	// harmless (IO2 permits repetition).
	_, uncertain := hv.OutstandingUncertain()
	bk.Stats.UncertainSynth += uint64(uncertain)
	// The output half of P7: re-emit the failover epoch's suppressed
	// environment output. The devices dedup by ordinal, so whatever the
	// dead coordinator already performed is emitted exactly once in
	// total.
	hv.FlushSuppressedOutputs()
	delivered := append([]hypervisor.Interrupt(nil), hv.Buffered()...)
	hv.DeliverBuffered()

	bk.promoted = true
	bk.Stats.Promoted = true
	bk.Stats.PromotedAtEpoch = e
	bk.Stats.PromotedAtTime = p.Now()
	if bk.Hooks.Promoted != nil {
		bk.Hooks.Promoted(bk.index, e, p.Now(), uncertain)
	}
	bk.release(e)

	// The next epoch starts from our real clock (we are the authority
	// for time now).
	tmeNext := hv.M.TOD()
	bk.archive.record(SyncEpoch{Epoch: e, Tme: tmeNext, Ints: delivered, Digest: digest, Halted: hv.Halted()})

	// Continue as primary for the remaining backups.
	sn := newSender(bk.downs, &bk.Stats)
	sn.peerTimeout = bk.PeerTimeout
	bk.coord = &coordinator{
		hv:      hv,
		s:       sn,
		proto:   bk.proto,
		stats:   &bk.Stats,
		stopped: func() bool { return bk.failed },
		archive: bk.archive,
		hooks:   &bk.Hooks,
		node:    bk.index,
		oc:      bk.OutputCommit,
		// The promotion flush above emitted everything retained through
		// the failover epoch, so the release watermark starts there.
		released:     e,
		haveReleased: bk.OutputCommit.Enabled,
		joinBarrier:  bk.joinBarrier,
	}
	c := bk.coord
	c.install(p)
	if len(bk.downs) > 0 {
		// Bring the others onto our stream: replay the retained history.
		c.s.send(message{Kind: msgSync, Sync: bk.archive.since(0)})
	}
	hv.ChargeBoundary(p)
	c.run(p, tmeNext)
}

// await blocks until cond() or the cascaded timeout elapses; it returns
// false on timeout (primary declared failed).
func (bk *Backup) await(p *sim.Proc, cond func() bool) bool {
	for !cond() {
		if bk.failed || bk.withdrawn {
			return true // caller re-checks flags
		}
		if !p.WaitTimeout(bk.arrival, bk.effTimeout()) {
			return false
		}
	}
	return true
}

// StartReceivers spawns the receiver processes (one per upstream
// channel) if they are not running yet. Run calls it implicitly; a
// late joiner calls it at splice time, BEFORE its state transfer
// completes, so that protocol messages are acknowledged (P4) and filed
// while the virtual-machine image is still in flight — the joining
// hypervisor is alive from the first instant, only its guest state is
// in transit. Without this, a coordinator awaiting acknowledgements
// (P2, the §4.3 I/O gate) would stall for the whole transfer and trip
// the other replicas' failure detectors.
func (bk *Backup) StartReceivers(k *sim.Kernel) {
	if bk.rxStarted {
		return
	}
	bk.rxStarted = true
	bk.arrival = k.NewSignal(fmt.Sprintf("backup%d.arrival", bk.index))
	for i, u := range bk.ups {
		k.Spawn(fmt.Sprintf("backup%d-rx%d", bk.index, i), bk.receiver(u))
	}
}

// Abandon takes this backup out of the replica set before it ever ran
// (a reintegration whose state transfer failed: the source processor
// died with the image in flight). Its receivers wind down on their
// next timeout tick.
func (bk *Backup) Abandon() {
	bk.withdrawn = true
	bk.done = true
}

// Run executes the backup until the guest halts, the backup withdraws,
// or — after promotion — the coordinator loop finishes. It spawns one
// receiver process per upstream channel (unless StartReceivers already
// did).
func (bk *Backup) Run(p *sim.Proc) {
	hv := bk.HV
	hv.SetIOActive(false) // §2.2 case (i): suppress environment output
	hv.Stop = func() bool { return bk.failed }
	bk.StartReceivers(p.Kernel())
	defer func() { bk.done = true }()

	// P3 is structural: real device interrupts on the backup's processor
	// are ignored by the hypervisor (it issued nothing).

	hv.SetTODBase(bk.BootTOD)
	for !hv.Halted() && !bk.failed && !bk.withdrawn {
		b := hv.RunEpoch(p)
		if bk.failed {
			return
		}
		bk.Stats.Epochs++
		e := b.Epoch

		// --- Rule P5 (or verbatim replay after a coordinator change) ---
		r := bk.rec(e)
		ok := bk.await(p, func() bool { return r.verbatim != nil || r.tme != nil })
		if bk.failed || bk.withdrawn {
			return
		}
		if !ok {
			// --- Rules P6 + P7, and promotion ---
			bk.failover(p, e, b.Digest)
			return
		}
		if r.verbatim == nil {
			ok = bk.await(p, func() bool { return r.verbatim != nil || r.end != nil })
			if bk.failed || bk.withdrawn {
				return
			}
			if !ok {
				bk.failover(p, e, b.Digest)
				return
			}
		}
		if v := r.verbatim; v != nil {
			bk.replayVerbatim(p, e, b.Digest, v)
			hv.ChargeBoundary(p)
			bk.completed = e + 1
			continue
		}
		// Normal path: Tme_b := Tme_p; buffer; deliver; digest check.
		tme, end := *r.tme, r.end
		match := bk.checkDigest(e, end.Digest, b.Digest)
		if match && !bk.checkCut(e, end, b.GuestInstr) {
			match = false
		}
		if bk.Hooks.BackupEpoch != nil {
			bk.Hooks.BackupEpoch(bk.index, e, p.Now(), match)
		}
		bk.stageOrdered(e)
		hv.TimerInterruptsDue(tme)
		// Only a backup that may later coordinate others (it has
		// downstream peers) needs the delivery archive; the common
		// single-backup configuration skips the per-epoch copy.
		if len(bk.downs) > 0 {
			var delivered []hypervisor.Interrupt
			if buf := hv.Buffered(); len(buf) > 0 {
				delivered = append([]hypervisor.Interrupt(nil), buf...)
			}
			bk.archive.record(SyncEpoch{Epoch: e, Tme: tme, Ints: delivered, Digest: b.Digest, Halted: end.Halted})
		}
		hv.DeliverBuffered()
		if end.HasCut {
			// Output commit: the coordinator has emitted only through its
			// release watermark. Drop our suppressed copies up to it and
			// RETAIN the rest — they are the promotion flush set (output
			// the coordinator may die without ever releasing).
			if end.HaveReleased {
				hv.DropSuppressedThrough(end.Released)
			}
		} else {
			// [end, E] proves the coordinator completed epoch E, so the
			// epoch's environment output was performed: drop the suppressed
			// copy (a failover epoch — no end message — re-emits it instead).
			hv.CommitSuppressedOutputs()
		}
		hv.ChargeBoundary(p)
		hv.SetTODBase(tme)
		bk.release(e)
		bk.completed = e + 1
		if end.Halted {
			bk.halted = true
		}
	}
}
