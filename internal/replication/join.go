package replication

// This file holds the wiring a LATE-JOINING backup needs: the paper's
// §5 repair story assumes a failed processor is eventually repaired and
// reintegrated as a new backup, which requires splicing a fresh peer
// into the running protocol engines. The joiner's machine state arrives
// by state transfer (the session layer's AddBackup); here the existing
// engines learn about the new channel.

// addPeer splices a new peer into a live fan-out. The peer joins fully
// acknowledged: nothing sent before it existed can be outstanding
// toward it, so acknowledgement waits (P2, the §4.3 I/O gate) must not
// block on history the joiner never received.
func (s *sender) addPeer(p Peer) *peerState {
	ps := &peerState{peer: p, acked: s.seq}
	s.peers = append(s.peers, ps)
	return ps
}

// AddPeer adds a late-joining backup to the primary's fan-out: every
// message sent from now on also goes to p, and boundary/I/O-gate (or
// output-commit release) acknowledgement tracking includes it.
func (pr *Primary) AddPeer(p Peer) { pr.coord.attachPeer(p) }

// AddDownstream registers a lower-priority late joiner with this
// backup: if (or once) this backup is promoted, the joiner is part of
// its coordination fan-out. Registering a downstream also switches on
// the delivery archive (a backup with downstream peers must retain
// replay history to resynchronize them at promotion).
func (bk *Backup) AddDownstream(p Peer) {
	bk.downs = append(bk.downs, p)
	if bk.coord != nil {
		bk.coord.attachPeer(p)
	}
}

// SetResumePoint marks the first epoch this backup will process — used
// by a late joiner whose transferred state already reflects every
// boundary before it. Call before Run.
func (bk *Backup) SetResumePoint(completed uint64) { bk.completed = completed }

// Downstreams reports how many lower-priority peers this backup would
// coordinate after promotion.
func (bk *Backup) Downstreams() int { return len(bk.downs) }
