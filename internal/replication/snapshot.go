package replication

// This file captures the replication layer's protocol state — the
// counterpart of machine.State/hypervisor.State one level up. A session
// checkpoint serializes it so a restored run can be VERIFIED against
// the original bit for bit: the epoch archive tail a coordinator
// retains for resynchronization, the sequence/acknowledgement
// watermarks that drive archive trimming and the P2/§4.3 waits, and the
// per-epoch pending buffers a backup accumulates between its own epoch
// boundary and the primary's messages.
//
// Capture is read-only and allocation-heavy by design (deep copies):
// it runs at session checkpoints, never on the protocol hot path.

import (
	"sort"

	"repro/internal/hypervisor"
)

// EndSeqState is one epoch's end-message sequence watermark.
type EndSeqState struct {
	Epoch uint64
	Seq   uint64
}

// CoordinatorState captures a live coordinator (the primary, or a
// promoted backup coordinating lower-priority peers).
type CoordinatorState struct {
	// Seq is the sender's last assigned message sequence number.
	Seq uint64
	// PeerAcked is the per-peer acknowledgement watermark, in fan-out
	// order.
	PeerAcked []uint64
	// IntIndex is the capture index within the current epoch (P1
	// message dedupe key).
	IntIndex uint32
	// EndSeqs are the epochs whose end-message acknowledgement is still
	// outstanding; AckedThrough/HaveAcked is the resulting watermark.
	EndSeqs      []EndSeqState
	AckedThrough uint64
	HaveAcked    bool
	// Window is the output-commit window of sent-but-unacknowledged
	// epochs (epoch, frame seq), oldest first; Released/HaveReleased is
	// the output-release watermark.
	Window       []EndSeqState
	Released     uint64
	HaveReleased bool
	// Archive is the retained epoch-replay tail, oldest first.
	Archive []SyncEpoch
	Stats   Stats
}

// PendingInterrupt is one buffered [E, Int] message, keyed by its
// capture index.
type PendingInterrupt struct {
	Index uint32
	Int   Interrupt
}

// PendingEnd is a received end-of-epoch message's payload.
type PendingEnd struct {
	Seq    uint64
	Digest uint64
	Halted bool
	// Output-commit fields (HasCut marks a frame-decoded end): the cut
	// coordinate and the coordinator's release watermark.
	HasCut       bool
	Cut          uint64
	Released     uint64
	HaveReleased bool
}

// PendingEpochState is one epoch's received-but-unprocessed protocol
// messages on a backup.
type PendingEpochState struct {
	Epoch  uint64
	Ints   []PendingInterrupt
	HasTme bool
	Tme    uint32
	HasEnd bool
	End    PendingEnd
	// Verbatim, when non-nil, replaces the fields above: the epoch
	// replays exactly as a new coordinator's sync dictates.
	Verbatim *SyncEpoch
}

// BackupState captures a backup engine.
type BackupState struct {
	Index     int
	Completed uint64
	Promoted  bool
	Failed    bool
	Withdrawn bool
	Done      bool
	Halted    bool
	BootTOD   uint32
	// Pending holds the per-epoch message buffers, ascending by epoch.
	Pending []PendingEpochState
	// Archive is the delivery history retained for downstream resync.
	Archive []SyncEpoch
	Stats   Stats
	// Coordinator is the promoted backup's coordination state (nil
	// before promotion).
	Coordinator *CoordinatorState
}

// Interrupt aliases the hypervisor's buffered-interrupt record for
// capture encoding convenience.
type Interrupt = hypervisor.Interrupt

// capture deep-copies a coordinator.
func (c *coordinator) capture() CoordinatorState {
	s := CoordinatorState{
		Seq:          c.s.seq,
		IntIndex:     c.intIndex,
		AckedThrough: c.ackedThrough,
		HaveAcked:    c.haveAcked,
		Stats:        *c.stats,
	}
	for _, p := range c.s.peers {
		s.PeerAcked = append(s.PeerAcked, p.acked)
	}
	for _, r := range c.endSeqs {
		s.EndSeqs = append(s.EndSeqs, EndSeqState{Epoch: r.epoch, Seq: r.seq})
	}
	for _, r := range c.ocPend {
		s.Window = append(s.Window, EndSeqState{Epoch: r.epoch, Seq: r.seq})
	}
	s.Released, s.HaveReleased = c.released, c.haveReleased
	s.Archive = c.archive.capture()
	return s
}

// capture returns the archive's retained epochs, oldest first, with
// deep-copied interrupt payloads.
func (a *epochArchive) capture() []SyncEpoch {
	if a == nil || len(a.entries) == 0 {
		return nil
	}
	out := a.since(0)
	for i := range out {
		out[i].Ints = copyInterrupts(out[i].Ints)
	}
	return out
}

// copyInterrupts deep-copies an interrupt list (DMA payloads included).
func copyInterrupts(ints []Interrupt) []Interrupt {
	if len(ints) == 0 {
		return nil
	}
	out := make([]Interrupt, len(ints))
	for i, iv := range ints {
		out[i] = iv
		if len(iv.Data) > 0 {
			out[i].Data = append([]byte(nil), iv.Data...)
		}
	}
	return out
}

// CaptureState snapshots the primary engine's protocol state.
func (pr *Primary) CaptureState() CoordinatorState { return pr.coord.capture() }

// CaptureState snapshots a backup engine's protocol state.
func (bk *Backup) CaptureState() BackupState {
	s := BackupState{
		Index:     bk.index,
		Completed: bk.completed,
		Promoted:  bk.promoted,
		Failed:    bk.failed,
		Withdrawn: bk.withdrawn,
		Done:      bk.done,
		Halted:    bk.halted,
		BootTOD:   bk.BootTOD,
		Stats:     bk.Stats,
	}
	epochs := make([]uint64, 0, len(bk.pending))
	for e := range bk.pending {
		epochs = append(epochs, e)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	for _, e := range epochs {
		r := bk.pending[e]
		pe := PendingEpochState{Epoch: e}
		idxs := make([]int, 0, len(r.ints))
		for k := range r.ints {
			idxs = append(idxs, int(k))
		}
		sort.Ints(idxs)
		for _, k := range idxs {
			iv := r.ints[uint32(k)]
			if len(iv.Data) > 0 {
				iv.Data = append([]byte(nil), iv.Data...)
			}
			pe.Ints = append(pe.Ints, PendingInterrupt{Index: uint32(k), Int: iv})
		}
		if r.tme != nil {
			pe.HasTme, pe.Tme = true, *r.tme
		}
		if r.end != nil {
			pe.HasEnd = true
			pe.End = PendingEnd{
				Seq: r.end.Seq, Digest: r.end.Digest, Halted: r.end.Halted,
				HasCut: r.end.HasCut, Cut: r.end.Cut,
				Released: r.end.Released, HaveReleased: r.end.HaveReleased,
			}
		}
		if r.verbatim != nil {
			v := *r.verbatim
			v.Ints = copyInterrupts(v.Ints)
			pe.Verbatim = &v
		}
		s.Pending = append(s.Pending, pe)
	}
	s.Archive = bk.archive.capture()
	if bk.coord != nil {
		cs := bk.coord.capture()
		s.Coordinator = &cs
	}
	return s
}
