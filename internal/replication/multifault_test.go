package replication

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/platform"
	"repro/internal/scsi"
	"repro/internal/sim"
)

// multiCluster wires one primary and t backups over a platform.Cluster.
type multiCluster struct {
	k    *sim.Kernel
	c    *platform.Cluster
	pri  *Primary
	baks []*Backup
}

func newMultiCluster(t *testing.T, seed int64, cfg platform.Config, proto Protocol, guest string, nBackups int) *multiCluster {
	t.Helper()
	mc := &multiCluster{k: sim.NewKernel(seed)}
	t.Cleanup(func() { mc.k.Shutdown() })
	if cfg.Hypervisor.EpochLength == 0 {
		cfg.Hypervisor.EpochLength = 4096
	}
	n := nBackups + 1
	mc.c = platform.NewCluster(mc.k, cfg, n)
	prog := asm.MustAssemble("guest.s", guest)
	for _, node := range mc.c.Nodes {
		node.HV.Boot(prog.Origin, prog.Words, prog.Origin)
	}
	// Primary (node 0) talks to every backup, in priority order.
	var peers []Peer
	for j := 1; j < n; j++ {
		tx, rx := mc.c.Channel(0, j)
		peers = append(peers, Peer{TX: tx, RX: rx})
	}
	mc.pri = NewPrimaryMulti(mc.c.Nodes[0].HV, peers, proto)
	// Backup i (node i): ups = channels to nodes 0..i-1, downs = to
	// nodes i+1..n-1.
	for i := 1; i < n; i++ {
		var ups, downs []Peer
		for j := 0; j < i; j++ {
			tx, rx := mc.c.Channel(i, j) // tx: acks to j; rx: stream from j
			ups = append(ups, Peer{TX: tx, RX: rx})
		}
		for j := i + 1; j < n; j++ {
			tx, rx := mc.c.Channel(i, j)
			downs = append(downs, Peer{TX: tx, RX: rx})
		}
		bak := NewBackupAt(mc.c.Nodes[i].HV, i, ups, downs, 40*sim.Millisecond, proto)
		mc.baks = append(mc.baks, bak)
	}
	return mc
}

func (mc *multiCluster) run(t *testing.T, bound sim.Time) {
	t.Helper()
	mc.k.Spawn("primary", func(p *sim.Proc) { mc.pri.Run(p) })
	for i, bak := range mc.baks {
		bak := bak
		mc.k.Spawn("backup", func(p *sim.Proc) { bak.Run(p) })
		_ = i
	}
	mc.k.RunUntil(bound)
}

// failNode failstops node idx (0 = primary) at the given time, detaching
// its disk adapter (a dead host receives no interrupts).
func (mc *multiCluster) failNode(idx int, at sim.Time) {
	mc.k.At(at, func() {
		if idx == 0 {
			mc.pri.Failstop()
		} else {
			mc.baks[idx-1].Failstop()
		}
		mc.c.Nodes[idx].Adapter.Detached = true
	})
}

func TestTwoBackupsNoFailure(t *testing.T) {
	guest := guestCPU(15000)
	mc := newMultiCluster(t, 1, platform.Config{}, ProtocolOld, guest, 2)
	mc.run(t, 200*sim.Second)
	if !mc.c.Nodes[0].HV.Halted() {
		t.Fatal("primary guest did not halt")
	}
	for i, bak := range mc.baks {
		if !bak.HV.Halted() {
			t.Fatalf("backup %d did not halt", i+1)
		}
		if bak.Stats.Divergences != 0 {
			t.Errorf("backup %d divergences = %d", i+1, bak.Stats.Divergences)
		}
	}
	// Backups generated no environment interactions: the shared
	// transcript holds exactly one copy of the guest's output.
	if mc.c.Console.Output() != "D" {
		t.Errorf("console = %q, want D", mc.c.Console.Output())
	}
	// All three executed identical streams.
	d0 := mc.c.Nodes[0].HV.Digest()
	for i := 1; i < 3; i++ {
		if mc.c.Nodes[i].HV.Digest() != d0 {
			t.Errorf("node %d final digest differs", i)
		}
	}
}

func TestTwoBackupsPrimaryFailure(t *testing.T) {
	// Primary dies; backup 1 promotes and carries backup 2 along via the
	// sync replay. Backup 2 must stay in lockstep with the NEW primary.
	cfg := platform.Config{
		Disk: scsi.DiskConfig{ReadLatency: 300 * sim.Microsecond, WriteLatency: 400 * sim.Microsecond},
	}
	guest := guestIO(40000, 2, 100, 512)
	mc := newMultiCluster(t, 1, cfg, ProtocolOld, guest, 2)
	mc.failNode(0, 1*sim.Millisecond)
	mc.run(t, 400*sim.Second)

	b1, b2 := mc.baks[0], mc.baks[1]
	if !b1.Promoted() {
		t.Fatal("backup 1 did not promote")
	}
	if b2.Promoted() {
		t.Fatal("backup 2 promoted despite backup 1 being alive (cascade broken)")
	}
	if !b1.HV.Halted() {
		t.Fatal("new primary did not finish the workload")
	}
	if !b2.HV.Halted() {
		t.Fatalf("backup 2 did not follow the new primary (pc=%#x, withdrawn=%v)",
			mc.c.Nodes[2].M.PC, b2.Withdrawn())
	}
	if b2.Stats.Divergences != 0 {
		t.Errorf("backup 2 diverged %d times from the new primary", b2.Stats.Divergences)
	}
	// Only the acting coordinator emitted environment output after the
	// failover: the shared transcript ends with one OK and holds no
	// duplicated bytes.
	out := mc.c.Console.Output()
	if len(out) < 2 || out[len(out)-2:] != "OK" {
		t.Errorf("console = %q, want ...OK", out)
	}
	// Workload result on disk is intact.
	blk := mc.c.Disk.ReadBlockDirect(100)
	if got := le32(blk[0:4]); got != 0xA0000000 {
		t.Errorf("block 100 word 0 = %#x", got)
	}
}

func TestTwoBackupsDoubleFailure(t *testing.T) {
	// The 2-fault-tolerant configuration survives two failstops: the
	// primary dies, backup 1 promotes, then backup 1 dies and backup 2
	// promotes and finishes the workload.
	cfg := platform.Config{
		Disk: scsi.DiskConfig{ReadLatency: 300 * sim.Microsecond, WriteLatency: 400 * sim.Microsecond},
	}
	guest := guestIO(200000, 2, 110, 512)
	mc := newMultiCluster(t, 1, cfg, ProtocolOld, guest, 2)
	mc.failNode(0, 1*sim.Millisecond)  // primary dies mid-compute
	mc.failNode(1, 90*sim.Millisecond) // new primary dies after promoting
	mc.run(t, 600*sim.Second)

	b1, b2 := mc.baks[0], mc.baks[1]
	if !b1.Promoted() {
		t.Fatal("backup 1 did not promote first")
	}
	if !b2.Promoted() {
		t.Fatalf("backup 2 did not promote after the second failure (pc=%#x withdrawn=%v halted=%v)",
			mc.c.Nodes[2].M.PC, b2.Withdrawn(), b2.HV.Halted())
	}
	if !b2.HV.Halted() {
		t.Fatal("backup 2 did not finish the workload")
	}
	// The workload completed correctly despite two failures.
	blk := mc.c.Disk.ReadBlockDirect(110)
	if got := le32(blk[0:4]); got != 0xA0000000 {
		t.Errorf("block 110 word 0 = %#x", got)
	}
	hist := mc.c.Disk.WriteHistory(110)
	for i := 1; i < len(hist); i++ {
		if hist[i] != hist[0] {
			t.Errorf("environment saw divergent writes: %v", hist)
		}
	}
	// Console: the final OK must have been emitted exactly once.
	if out := mc.c.Console.Output(); len(out) < 2 || out[len(out)-2:] != "OK" {
		t.Errorf("final console = %q, want ...OK", out)
	}
}

func TestThreeBackupsCascade(t *testing.T) {
	// 3-fault-tolerant: kill primary, b1 and b2 in sequence; b3 finishes.
	guest := guestCPU(2000000)
	mc := newMultiCluster(t, 1, platform.Config{}, ProtocolNew, guest, 3)
	mc.failNode(0, 2*sim.Millisecond)
	mc.failNode(1, 150*sim.Millisecond)
	mc.failNode(2, 400*sim.Millisecond)
	mc.run(t, 2000*sim.Second)

	b3 := mc.baks[2]
	if !b3.Promoted() {
		t.Fatalf("backup 3 did not promote (halted=%v withdrawn=%v)", b3.HV.Halted(), b3.Withdrawn())
	}
	if !b3.HV.Halted() {
		t.Fatal("backup 3 did not finish")
	}
	if out := mc.c.Console.Output(); out != "D" {
		t.Errorf("final console = %q, want D (emitted exactly once, by the last survivor)", out)
	}
}
