package replication

import (
	"fmt"
	"testing"

	"repro/internal/platform"
	"repro/internal/sim"
)

// TestEpochArchiveWindowCap: the archive never holds more than its
// window regardless of how many epochs are recorded.
func TestEpochArchiveWindowCap(t *testing.T) {
	a := newEpochArchive()
	for e := uint64(0); e < 10_000; e++ {
		a.record(SyncEpoch{Epoch: e})
	}
	if a.len() > defaultArchiveWindow {
		t.Fatalf("archive holds %d epochs, window is %d", a.len(), defaultArchiveWindow)
	}
	if got := a.since(9_990); len(got) != 10 {
		t.Fatalf("since(9990) returned %d entries, want 10", len(got))
	}
}

// TestEpochArchiveTrim: trim drops exactly the acknowledged prefix.
func TestEpochArchiveTrim(t *testing.T) {
	a := newEpochArchive()
	for e := uint64(0); e < 100; e++ {
		a.record(SyncEpoch{Epoch: e})
	}
	a.trim(90)
	if a.len() != 10 {
		t.Fatalf("after trim(90): %d entries, want 10", a.len())
	}
	if got := a.since(0); len(got) != 10 || got[0].Epoch != 90 {
		t.Fatalf("since(0) after trim = %d entries starting %d", len(got), got[0].Epoch)
	}
	// Trimming past the end empties but does not underflow.
	a.trim(1_000)
	if a.len() != 0 {
		t.Fatalf("after trim(1000): %d entries, want 0", a.len())
	}
	// Recording continues normally after a full trim.
	a.record(SyncEpoch{Epoch: 200})
	if a.len() != 1 {
		t.Fatalf("record after trim: %d entries, want 1", a.len())
	}
}

// TestArchiveBoundedOverManyEpochs runs a healthy replicated pair for
// thousands of epochs and checks that the coordinator's archive stays
// at the acknowledged-tail depth — memory no longer grows linearly in
// epochs — and that a backup with no downstream peers archives nothing.
func TestArchiveBoundedOverManyEpochs(t *testing.T) {
	for _, proto := range []Protocol{ProtocolOld, ProtocolNew} {
		t.Run(fmt.Sprint(proto), func(t *testing.T) {
			// Short epochs so the run spans thousands of them.
			cfg := platform.Config{}
			cfg.Hypervisor.EpochLength = 64
			c := newCluster(t, 1, cfg, proto, guestCPU(60_000))
			c.run(t, 400*sim.Second)
			if c.pri.Stats.Epochs < 2_000 {
				t.Fatalf("only %d epochs — not a multi-thousand-epoch run", c.pri.Stats.Epochs)
			}
			if got := c.pri.coord.archive.len(); got > archiveResyncKeep+2 {
				t.Errorf("%v: primary archive holds %d epochs after %d, want <= %d",
					proto, got, c.pri.Stats.Epochs, archiveResyncKeep+2)
			}
			if got := c.bak.archive.len(); got != 0 {
				t.Errorf("%v: downstream-less backup archived %d epochs, want 0", proto, got)
			}
			if c.bak.Stats.Divergences != 0 {
				t.Errorf("divergences = %d", c.bak.Stats.Divergences)
			}
		})
	}
}
