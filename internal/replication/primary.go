package replication

import (
	"repro/internal/hypervisor"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Primary drives the primary virtual machine's hypervisor: rules P1 and
// P2 (or the §4.3 revision), fanned out to one or more backups. With t
// backups the system is t-fault-tolerant: the paper builds t = 1 and
// notes the generalization is straightforward; here it is implemented.
type Primary struct {
	HV *hypervisor.Hypervisor

	coord  *coordinator
	failed bool

	// BootTOD is the virtual machines' initial clock value (all
	// replicas must agree; default 0).
	BootTOD uint32

	// PeerTimeout, when nonzero, bounds how long an acknowledgement
	// wait (P2, the §4.3 I/O gate) may block on a peer that has
	// stopped acknowledging while its channel stays up; such a peer is
	// then declared failed and excluded. Zero waits forever (the
	// paper's reliable-channel assumption). Set before Run.
	PeerTimeout sim.Time

	// Hooks observes protocol milestones (optional; set before Run).
	Hooks Hooks

	// OutputCommit configures the output-commit latency engine (zero
	// value: off, classic protocol). Set before Run; every replica must
	// agree on it.
	OutputCommit OutputCommit

	Stats Stats
}

// NewPrimary wires a primary engine with a single backup: tx carries
// protocol messages to the backup; rx returns acknowledgements.
func NewPrimary(hv *hypervisor.Hypervisor, tx, rx *netsim.Link, proto Protocol) *Primary {
	return NewPrimaryMulti(hv, []Peer{{TX: tx, RX: rx}}, proto)
}

// NewPrimaryMulti wires a primary engine with t backups (peers in
// priority order: peers[0] is the first to promote).
func NewPrimaryMulti(hv *hypervisor.Hypervisor, peers []Peer, proto Protocol) *Primary {
	pr := &Primary{HV: hv}
	pr.coord = &coordinator{
		hv:      hv,
		s:       newSender(peers, &pr.Stats),
		proto:   proto,
		stats:   &pr.Stats,
		stopped: func() bool { return pr.failed },
		archive: newEpochArchive(),
		hooks:   &pr.Hooks,
	}
	return pr
}

// Failstop makes the primary's processor stop abruptly: execution ceases
// at the next instruction-chunk boundary and all communication is
// severed. Call from a scheduled simulation event to inject a failure at
// an arbitrary virtual time (including mid-epoch, mid-I/O — the two
// generals window of §2.2).
func (pr *Primary) Failstop() {
	pr.failed = true
	pr.coord.s.disconnectAll()
}

// Failed reports whether the failstop was injected.
func (pr *Primary) Failed() bool { return pr.failed }

// SetJoinBarrier arms (or disarms) the reintegration drain: while set,
// the coordinator holds at each epoch boundary until every committed
// epoch is replicated (see coordinator.joinBarrier). Call from a paused
// simulation, as with AddPeer.
func (pr *Primary) SetJoinBarrier(on bool) { pr.coord.joinBarrier = on }

// ReplicationDrained reports whether every epoch committed so far is
// provably held by the live backups — the safe capture condition for a
// state transfer.
func (pr *Primary) ReplicationDrained() bool { return pr.coord.drained() }

// Run executes the primary until the guest halts or a failstop is
// injected. It must be called as a simulation process.
func (pr *Primary) Run(p *sim.Proc) {
	pr.coord.s.peerTimeout = pr.PeerTimeout
	pr.coord.oc = pr.OutputCommit
	pr.coord.install(p)
	pr.coord.run(p, pr.BootTOD)
}
