package replication

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/asm"
	"repro/internal/hypervisor"
	"repro/internal/platform"
	"repro/internal/scsi"
	"repro/internal/sim"
)

// guestIO is a parametric guest: an interrupt-driven disk driver with
// uncertain-retry (the behaviour IO1/IO2 require of real drivers), a
// compute phase, NOPS block writes, a read-back verification, console
// output, and HALT. BREAK codes signal guest-detected failures.
func guestIO(nIter, nOps, firstBlk, count int) string {
	return fmt.Sprintf(`
	.equ MMIO,  0xF0000000
	.equ CONS,  0xF0001000
	.equ FLAG,  0x3000
	.equ BUF,   0x4000
	.equ BUF2,  0x6000
	.equ NITER, %d
	.equ NOPS,  %d
	.equ FIRST, %d
	.equ COUNT, %d

	start:
		li   r1, vectors
		mtctl iva, r1
		li   r1, 2              ; unmask disk line 1
		mtctl eiem, r1
		li   r1, 4              ; PSW.I
		mtctl ipsw, r1
		li   r1, main
		mtctl iia, r1
		rfi

	main:
		; ---- compute phase ----
		li   r5, NITER
		li   r6, 0
	sumloop:
		add  r6, r6, r5
		addi r5, r5, -1
		bne  r5, r0, sumloop

		; ---- write phase: NOPS blocks ----
		li   r14, 0             ; op index
	writeloop:
		; fill BUF words with 0xA0000000 | (op<<8) | wordindex
		li   r13, BUF
		li   r3, COUNT
		srli r3, r3, 2          ; words
		li   r4, 0
	fill:
		slli r7, r14, 8
		or   r7, r7, r4
		li   r8, 0xA0000000
		or   r7, r7, r8
		stw  r7, 0(r13)
		addi r13, r13, 4
		addi r4, r4, 1
		bne  r4, r3, fill
		; issue write of block FIRST+op
		li   r18, FIRST
		add  r18, r18, r14
		li   r19, 2             ; CmdWrite
		li   r15, BUF
		call do_io
		; progress marker on the console
		li   r17, 'w'
		call putc
		addi r14, r14, 1
		li   r3, NOPS
		bne  r14, r3, writeloop

		; ---- read-back phase: verify block FIRST ----
		li   r18, FIRST
		li   r19, 1             ; CmdRead
		li   r15, BUF2
		call do_io
		li   r13, BUF2
		ldw  r3, 0(r13)          ; word 0 of op 0
		li   r4, 0xA0000000
		bne  r3, r4, verify_fail
		ldw  r3, 4(r13)          ; word 1
		li   r4, 0xA0000001
		bne  r3, r4, verify_fail
		li   r17, 'O'
		call putc
		li   r17, 'K'
		call putc
		halt
	verify_fail:
		break 14

	; ---- disk driver: r18=block r19=cmd r15=buffer; retries on
	; uncertain completion, as IO2 demands of real drivers ----
	do_io:
	io_retry:
		li   r13, MMIO
		stw  r19, 0(r13)         ; cmd
		stw  r18, 4(r13)         ; block
		stw  r15, 8(r13)         ; addr
		li   r3, COUNT
		stw  r3, 12(r13)         ; count
		stw  r3, 20(r13)         ; doorbell
	io_spin:
		ldw  r3, FLAG(r0)
		beq  r3, r0, io_spin
		stw  r0, FLAG(r0)
		li   r13, MMIO
		ldw  r3, 16(r13)         ; status
		li   r4, 0xFFFFFFFF
		stw  r4, 16(r13)         ; clear (w1c)
		andi r4, r3, 4          ; StatusUncertain?
		bne  r4, r0, io_retry   ; retry: the device tolerates repetition
		andi r4, r3, 8          ; StatusError?
		bne  r4, r0, io_fail
		ret
	io_fail:
		break 13

	putc:
		li   r13, CONS
		stw  r17, 0(r13)
		ret

		.org 0x1800
	vectors:
		.space 32*11            ; vectors 0..10
		; ExtIntr (trap 11): ack lines, set driver flag
		mfctl r20, eirr
		mtctl eirr, r20
		addi r21, r0, 1
		stw  r21, FLAG(r0)
		rfi
	`, nIter, nOps, firstBlk, count)
}

// guestCPU is a compute-only guest: sums, prints a marker, halts.
func guestCPU(nIter int) string {
	return fmt.Sprintf(`
	.equ CONS,  0xF0001000
	.equ NITER, %d
	start:
		li   r5, NITER
		li   r6, 0
	sumloop:
		add  r6, r6, r5
		addi r5, r5, -1
		bne  r5, r0, sumloop
		li   r2, CONS
		li   r3, 'D'
		stw  r3, 0(r2)
		mftod r9
		halt
	`, nIter)
}

// cluster bundles a wired replicated pair.
type cluster struct {
	k       *sim.Kernel
	pair    *platform.Pair
	pri     *Primary
	bak     *Backup
	prog    *asm.Program
	priDone sim.Time // virtual time the primary engine finished
	bakDone sim.Time // virtual time the backup engine finished
}

func newCluster(t *testing.T, seed int64, cfg platform.Config, proto Protocol, guest string) *cluster {
	t.Helper()
	c := &cluster{k: sim.NewKernel(seed)}
	t.Cleanup(func() { c.k.Shutdown() })
	if cfg.Hypervisor.EpochLength == 0 {
		cfg.Hypervisor.EpochLength = 4096
	}
	c.pair = platform.NewPair(c.k, cfg)
	c.prog = asm.MustAssemble("guest.s", guest)
	c.pair.Primary.HV.Boot(c.prog.Origin, c.prog.Words, c.prog.Origin)
	c.pair.Backup.HV.Boot(c.prog.Origin, c.prog.Words, c.prog.Origin)
	c.pri = NewPrimary(c.pair.Primary.HV, c.pair.Net.AtoB, c.pair.Net.BtoA, proto)
	c.bak = NewBackup(c.pair.Backup.HV, c.pair.Net.AtoB, c.pair.Net.BtoA, 50*sim.Millisecond)
	return c
}

// run spawns both engines and runs the simulation to completion.
func (c *cluster) run(t *testing.T, bound sim.Time) {
	t.Helper()
	c.k.Spawn("primary", func(p *sim.Proc) { c.pri.Run(p); c.priDone = p.Now() })
	c.k.Spawn("backup", func(p *sim.Proc) { c.bak.Run(p); c.bakDone = p.Now() })
	c.k.RunUntil(bound)
	if !c.pair.Backup.HV.Halted() && !c.pair.Primary.HV.Halted() {
		t.Fatalf("neither guest halted within %v (pri pc=%#x bak pc=%#x)",
			bound, c.pair.Primary.M.PC, c.pair.Backup.M.PC)
	}
}

// bareRun executes the same guest on bare hardware, returning console
// output and completion time.
func bareRun(t *testing.T, seed int64, cfg platform.Config, guest string) (string, sim.Time, *platform.Single) {
	t.Helper()
	k := sim.NewKernel(seed)
	t.Cleanup(k.Shutdown)
	s := platform.NewSingle(k, cfg)
	prog := asm.MustAssemble("guest.s", guest)
	s.Bare.Boot(prog.Origin, prog.Words, prog.Origin)
	var done sim.Time
	k.Spawn("bare", func(p *sim.Proc) {
		s.Bare.Run(p)
		done = p.Now()
	})
	k.RunUntil(100 * sim.Second)
	if !s.Bare.Halted() {
		t.Fatalf("bare guest did not halt (pc=%#x)", s.Node.M.PC)
	}
	return s.Console.Output(), done, s
}

func TestReplicatedCPUWorkloadNoFailure(t *testing.T) {
	guest := guestCPU(20000)
	c := newCluster(t, 1, platform.Config{}, ProtocolOld, guest)
	c.run(t, 100*sim.Second)

	if !c.pair.Primary.HV.Halted() || !c.pair.Backup.HV.Halted() {
		t.Fatal("both guests should halt")
	}
	if c.bak.Stats.Divergences != 0 {
		t.Errorf("divergences = %d", c.bak.Stats.Divergences)
	}
	// Same architectural result on both.
	if c.pair.Primary.M.Regs[6] != c.pair.Backup.M.Regs[6] {
		t.Error("sum registers differ")
	}
	// Claim (1): backup generated no environment interactions — the
	// shared transcript holds exactly one copy of the guest's output.
	if c.pair.Console.Output() != "D" {
		t.Errorf("console = %q, want D", c.pair.Console.Output())
	}
	// The backup executed the same epochs.
	if c.pri.Stats.Epochs == 0 || c.bak.Stats.Epochs < c.pri.Stats.Epochs {
		t.Errorf("epochs: primary %d backup %d", c.pri.Stats.Epochs, c.bak.Stats.Epochs)
	}
}

func TestReplicatedMatchesBareBehaviour(t *testing.T) {
	guest := guestCPU(5000)
	bareOut, bareTime, _ := bareRun(t, 1, platform.Config{}, guest)
	c := newCluster(t, 1, platform.Config{}, ProtocolOld, guest)
	c.run(t, 100*sim.Second)
	if got := c.pair.Console.Output(); got != bareOut {
		t.Errorf("console: replicated %q vs bare %q", got, bareOut)
	}
	if bareTime <= 0 {
		t.Fatal("bare time not recorded")
	}
	// Replication costs time: normalized performance > 1.
	if c.priDone <= bareTime {
		t.Errorf("replicated run (%v) not slower than bare (%v)?", c.priDone, bareTime)
	}
}

func TestReplicatedDiskIO(t *testing.T) {
	// Short disk latencies keep the test fast; semantics unchanged.
	cfg := platform.Config{
		Disk: scsi.DiskConfig{ReadLatency: 200 * sim.Microsecond, WriteLatency: 250 * sim.Microsecond},
	}
	guest := guestIO(100, 3, 10, 512)
	c := newCluster(t, 1, cfg, ProtocolOld, guest)
	c.run(t, 100*sim.Second)

	if c.bak.Stats.Divergences != 0 {
		t.Fatalf("divergences = %d", c.bak.Stats.Divergences)
	}
	if out := c.pair.Console.Output(); out != "wwwOK" {
		t.Errorf("console = %q, want wwwOK (exactly one copy)", out)
	}
	// Only the primary's host touched the disk.
	for _, rec := range c.pair.Disk.Log {
		if rec.Host != 0 {
			t.Errorf("disk op from host %d while primary alive", rec.Host)
		}
	}
	// Disk contents correct.
	blk := c.pair.Disk.ReadBlockDirect(10)
	if got := le32(blk[0:4]); got != 0xA0000000 {
		t.Errorf("block 10 word 0 = %#x", got)
	}
	// Read data was forwarded to the backup: its memory holds the same
	// read-back buffer.
	priBuf := c.pair.Primary.M.ReadBytes(0x6000, 512)
	bakBuf := c.pair.Backup.M.ReadBytes(0x6000, 512)
	if !bytes.Equal(priBuf, bakBuf) {
		t.Error("read DMA data differs between replicas")
	}
	if c.pri.Stats.IntsForwarded == 0 || c.bak.Stats.IntsReceived != c.pri.Stats.IntsForwarded {
		t.Errorf("interrupt forwarding: sent %d received %d",
			c.pri.Stats.IntsForwarded, c.bak.Stats.IntsReceived)
	}
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func TestFailoverMidCompute(t *testing.T) {
	// Fail the primary during the compute phase; the backup must take
	// over and finish the workload, interacting with the environment
	// from the failure point on (claim 2 of §2).
	cfg := platform.Config{
		Disk: scsi.DiskConfig{ReadLatency: 200 * sim.Microsecond, WriteLatency: 250 * sim.Microsecond},
	}
	guest := guestIO(50000, 2, 20, 512)
	c := newCluster(t, 1, cfg, ProtocolOld, guest)
	// Compute phase: ~150k instructions ≈ 3 ms of guest time plus
	// boundary overhead; fail at 1 ms — mid-compute.
	c.k.At(1*sim.Millisecond, c.pri.Failstop)
	c.run(t, 200*sim.Second)

	if !c.bak.Promoted() {
		t.Fatal("backup did not promote")
	}
	if !c.pair.Backup.HV.Halted() {
		t.Fatal("promoted backup did not finish the workload")
	}
	// The workload completed correctly: disk holds both blocks and the
	// verification passed (console ends with OK from the backup).
	out := c.pair.Console.Output()
	if len(out) < 2 || out[len(out)-2:] != "OK" {
		t.Errorf("console = %q, want ...OK", out)
	}
	blk := c.pair.Disk.ReadBlockDirect(20)
	if got := le32(blk[0:4]); got != 0xA0000000 {
		t.Errorf("block 20 word 0 = %#x", got)
	}
	// After promotion the environment sees host 1.
	sawHost1 := false
	for _, rec := range c.pair.Disk.Log {
		if rec.Host == 1 {
			sawHost1 = true
		}
	}
	if !sawHost1 {
		t.Error("promoted backup never touched the disk")
	}
}

func TestFailoverTwoGeneralsWindow(t *testing.T) {
	// The §2.2 case (ii) window: the primary fails AFTER issuing a disk
	// write but BEFORE the completion is relayed. P7 must synthesize an
	// uncertain interrupt; the guest driver retries; the disk ends up
	// with exactly the intended contents, the duplicate being an
	// identical-content repetition that IO2 permits.
	cfg := platform.Config{
		Disk: scsi.DiskConfig{ReadLatency: 5 * sim.Millisecond, WriteLatency: 10 * sim.Millisecond},
	}
	guest := guestIO(100, 1, 30, 512)
	c := newCluster(t, 1, cfg, ProtocolOld, guest)
	// The write is issued within ~1 ms of boot (short compute phase,
	// MMIO setup ≈ a dozen simulated instructions); it completes at
	// ~+10 ms. Failing at 3 ms lands between doorbell and completion.
	c.k.At(3*sim.Millisecond, c.pri.Failstop)
	c.run(t, 200*sim.Second)

	if !c.bak.Promoted() {
		t.Fatal("backup did not promote")
	}
	if c.bak.Stats.UncertainSynth == 0 {
		t.Error("P7 synthesized no uncertain interrupts")
	}
	if !c.pair.Backup.HV.Halted() {
		t.Fatal("workload did not complete after failover")
	}
	out := c.pair.Console.Output()
	if len(out) < 2 || out[len(out)-2:] != "OK" {
		t.Errorf("console = %q, want ...OK", out)
	}
	// Environment consistency: every committed write of block 30 has
	// identical content (repetition of identical data only).
	hist := c.pair.Disk.WriteHistory(30)
	if len(hist) == 0 {
		t.Fatal("no committed writes")
	}
	for i := 1; i < len(hist); i++ {
		if hist[i] != hist[0] {
			t.Errorf("write history has differing contents: %v", hist)
		}
	}
	blk := c.pair.Disk.ReadBlockDirect(30)
	if got := le32(blk[0:4]); got != 0xA0000000 {
		t.Errorf("block 30 word 0 = %#x", got)
	}
}

func TestFailoverBeforeIO(t *testing.T) {
	// Primary fails before ever reaching the I/O phase: the backup's
	// suppressed doorbells are re-driven purely by P7 (the primary never
	// issued anything). The disk must still end up correct.
	cfg := platform.Config{
		Disk: scsi.DiskConfig{ReadLatency: 1 * sim.Millisecond, WriteLatency: 1 * sim.Millisecond},
	}
	guest := guestIO(100000, 1, 40, 512)
	c := newCluster(t, 1, cfg, ProtocolOld, guest)
	c.k.At(500*sim.Microsecond, c.pri.Failstop) // mid-compute, pre-I/O
	c.run(t, 200*sim.Second)
	if !c.bak.Promoted() || !c.pair.Backup.HV.Halted() {
		t.Fatal("failover or completion failed")
	}
	// Only the backup's host ever touched the disk.
	for _, rec := range c.pair.Disk.Log {
		if rec.Host != 1 {
			t.Errorf("unexpected disk op from host %d", rec.Host)
		}
	}
	blk := c.pair.Disk.ReadBlockDirect(40)
	if got := le32(blk[0:4]); got != 0xA0000000 {
		t.Errorf("block 40 word 0 = %#x", got)
	}
}

func TestNewProtocolCorrectAndFaster(t *testing.T) {
	guest := guestCPU(20000)
	old := newCluster(t, 1, platform.Config{}, ProtocolOld, guest)
	old.run(t, 100*sim.Second)
	oldTime := old.priDone

	nw := newCluster(t, 1, platform.Config{}, ProtocolNew, guest)
	nw.run(t, 100*sim.Second)
	newTime := nw.priDone

	if nw.bak.Stats.Divergences != 0 {
		t.Errorf("new protocol divergences = %d", nw.bak.Stats.Divergences)
	}
	if nw.pair.Primary.M.Regs[6] != old.pair.Primary.M.Regs[6] {
		t.Error("results differ between protocols")
	}
	// §4.3/Table 1: dropping the boundary ack wait speeds things up.
	if newTime >= oldTime {
		t.Errorf("new protocol (%v) not faster than old (%v)", newTime, oldTime)
	}
	if old.pri.Stats.AckWaits == 0 {
		t.Error("old protocol never waited for acks")
	}
}

func TestNewProtocolIOGate(t *testing.T) {
	cfg := platform.Config{
		Disk: scsi.DiskConfig{ReadLatency: 200 * sim.Microsecond, WriteLatency: 250 * sim.Microsecond},
	}
	guest := guestIO(100, 2, 50, 512)
	c := newCluster(t, 1, cfg, ProtocolNew, guest)
	c.run(t, 100*sim.Second)
	if c.bak.Stats.Divergences != 0 {
		t.Errorf("divergences = %d", c.bak.Stats.Divergences)
	}
	// The §4.3 invariant: I/O initiation awaited acknowledgements.
	if c.pri.Stats.IOGateWaits == 0 {
		t.Error("I/O gate never engaged")
	}
	if out := c.pair.Console.Output(); out != "wwOK" {
		t.Errorf("console = %q", out)
	}
}

func TestNewProtocolFailoverWithLostMessages(t *testing.T) {
	// §4.3's hazard scenario: messages are lost AND the primary fails.
	// Because the primary could not have issued I/O without acks, the
	// backup's divergent re-execution is invisible to the environment.
	cfg := platform.Config{
		Disk: scsi.DiskConfig{ReadLatency: 1 * sim.Millisecond, WriteLatency: 1 * sim.Millisecond},
	}
	guest := guestIO(20000, 1, 60, 512)
	c := newCluster(t, 1, cfg, ProtocolNew, guest)
	// Drop everything the primary sends from 0.2 ms on, then fail it.
	c.k.At(200*sim.Microsecond, func() { c.pair.Net.AtoB.DropNext(1 << 30) })
	c.k.At(2*sim.Millisecond, c.pri.Failstop)
	c.run(t, 200*sim.Second)
	if !c.bak.Promoted() || !c.pair.Backup.HV.Halted() {
		t.Fatal("failover or completion failed")
	}
	blk := c.pair.Disk.ReadBlockDirect(60)
	if got := le32(blk[0:4]); got != 0xA0000000 {
		t.Errorf("block 60 word 0 = %#x", got)
	}
	hist := c.pair.Disk.WriteHistory(60)
	for i := 1; i < len(hist); i++ {
		if hist[i] != hist[0] {
			t.Errorf("environment saw divergent writes: %v", hist)
		}
	}
}

func TestDeviceTransientsUnderReplication(t *testing.T) {
	// Real device transients (uncertain completions from the disk
	// itself) must be handled identically by both replicas: the
	// captured status is forwarded, both deliver CHECK_CONDITION, both
	// guests retry in lockstep.
	cfg := platform.Config{
		Disk: scsi.DiskConfig{ReadLatency: 200 * sim.Microsecond, WriteLatency: 250 * sim.Microsecond},
	}
	guest := guestIO(100, 2, 70, 512)
	c := newCluster(t, 1, cfg, ProtocolOld, guest)
	c.pair.Disk.InjectUncertainNext(1) // first op reports CHECK_CONDITION
	c.run(t, 100*sim.Second)
	if c.bak.Stats.Divergences != 0 {
		t.Fatalf("divergences = %d under device transient", c.bak.Stats.Divergences)
	}
	if out := c.pair.Console.Output(); out != "wwOK" {
		t.Errorf("console = %q", out)
	}
	// The retry means the disk log has one more op than the workload's
	// nominal count (2 writes + 1 read + 1 retried op).
	if len(c.pair.Disk.Log) != 4 {
		t.Errorf("disk log has %d ops, want 4 (retry included)", len(c.pair.Disk.Log))
	}
}

func TestDeterministicReplication(t *testing.T) {
	// The whole replicated system is deterministic: identical seeds give
	// identical completion times, digests, and console output.
	run := func() (sim.Time, string, uint64) {
		guest := guestIO(500, 2, 80, 512)
		cfg := platform.Config{
			Disk: scsi.DiskConfig{ReadLatency: 300 * sim.Microsecond, WriteLatency: 300 * sim.Microsecond},
		}
		c := newCluster(t, 42, cfg, ProtocolOld, guest)
		c.run(t, 100*sim.Second)
		return c.priDone, c.pair.Console.Output(), c.pair.Primary.HV.Digest()
	}
	t1, o1, d1 := run()
	t2, o2, d2 := run()
	if t1 != t2 || o1 != o2 || d1 != d2 {
		t.Errorf("nondeterministic: (%v,%q,%x) vs (%v,%q,%x)", t1, o1, d1, t2, o2, d2)
	}
}

func TestHsimConstantMatchesPaper(t *testing.T) {
	if hypervisor.DefaultCosts().HSim() != 15120*sim.Nanosecond {
		t.Errorf("hsim = %v, want 15.12us", hypervisor.DefaultCosts().HSim())
	}
}
