package replication

import (
	"sort"

	"repro/internal/hypervisor"
	"repro/internal/sim"
)

// epochArchive retains, per epoch, exactly what was delivered at its
// boundary. A promoted backup uses it to bring lower-priority backups
// onto its stream (msgSync). Bounded: entries older than windowEpochs
// are pruned — a lagging backup further behind than the window cannot be
// resynchronized (it detects this and withdraws).
type epochArchive struct {
	entries map[uint64]SyncEpoch
	oldest  uint64
	newest  uint64
	window  uint64
}

const defaultArchiveWindow = 4096

func newEpochArchive() *epochArchive {
	return &epochArchive{entries: map[uint64]SyncEpoch{}, window: defaultArchiveWindow}
}

// record stores one epoch's delivery history.
func (a *epochArchive) record(e SyncEpoch) {
	if a == nil {
		return
	}
	if len(a.entries) == 0 || e.Epoch < a.oldest {
		a.oldest = e.Epoch
	}
	if e.Epoch > a.newest {
		a.newest = e.Epoch
	}
	a.entries[e.Epoch] = e
	for a.newest-a.oldest >= a.window {
		delete(a.entries, a.oldest)
		a.oldest++
	}
}

// since returns archived epochs >= from, in order.
func (a *epochArchive) since(from uint64) []SyncEpoch {
	var out []SyncEpoch
	for e := range a.entries {
		if e >= from {
			out = append(out, a.entries[e])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Epoch < out[j].Epoch })
	return out
}

// coordinator runs the primary side of the protocol: rules P1 and P2
// (or the §4.3 revision) against a hypervisor, fanning messages out to a
// set of backups through a sender. It is shared between the initial
// Primary engine and a Backup that has been promoted and must continue
// coordinating lower-priority backups.
type coordinator struct {
	hv      *hypervisor.Hypervisor
	s       *sender
	proto   Protocol
	stats   *Stats
	stopped func() bool
	archive *epochArchive

	intIndex uint32 // capture index within the current epoch
}

// install hooks the coordinator into the hypervisor. Call once, with the
// driving process, before run.
func (c *coordinator) install(p *sim.Proc) {
	c.s.proc = p
	hv := c.hv
	// P1: forward every captured interrupt immediately.
	hv.OnCapture = func(i hypervisor.Interrupt) {
		if c.stopped() {
			return
		}
		c.stats.IntsForwarded++
		c.s.send(message{Kind: msgInterrupt, Epoch: hv.Epoch(), IntIndex: c.intIndex, Int: i})
		c.intIndex++
	}
	if c.proto == ProtocolNew {
		hv.OnBeforeIO = func() {
			if c.stopped() {
				return
			}
			start := p.Now()
			c.stats.IOGateWaits++
			c.s.awaitAcks(c.stopped)
			c.stats.IOGateWaitTime += p.Now() - start
		}
	} else {
		hv.OnBeforeIO = nil
	}
	hv.Stop = c.stopped
	hv.SetIOActive(true)
}

// run executes epochs until the guest halts or the coordinator is
// stopped. tme0 is the clock base for the first epoch it runs.
func (c *coordinator) run(p *sim.Proc, tme0 uint32) {
	hv := c.hv
	hv.SetTODBase(tme0)
	for !hv.Halted() && !c.stopped() {
		b := hv.RunEpoch(p)
		if c.stopped() {
			return
		}
		c.stats.Epochs++

		// --- Rule P2 ---
		tme := b.TOD
		c.s.send(message{Kind: msgTme, Epoch: b.Epoch, Tme: tme})
		if c.proto == ProtocolOld {
			c.s.awaitAcks(c.stopped)
			if c.stopped() {
				return
			}
		}
		hv.TimerInterruptsDue(tme)
		delivered := append([]hypervisor.Interrupt(nil), hv.Buffered()...)
		hv.DeliverBuffered()
		c.archive.record(SyncEpoch{
			Epoch: b.Epoch, Tme: tme, Ints: delivered,
			Digest: b.Digest, Halted: b.Halted,
		})
		c.s.send(message{Kind: msgEnd, Epoch: b.Epoch, Digest: b.Digest, Halted: b.Halted})
		hv.ChargeBoundary(p)
		hv.SetTODBase(tme)
		c.intIndex = 0
	}
}
