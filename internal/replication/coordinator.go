package replication

import (
	"fmt"
	"sort"

	"repro/internal/hypervisor"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// epochArchive retains, per epoch, exactly what was delivered at its
// boundary. A promoted backup uses it to bring lower-priority backups
// onto its stream (msgSync). Bounded: entries older than windowEpochs
// are pruned — a lagging backup further behind than the window cannot be
// resynchronized (it detects this and withdraws).
type epochArchive struct {
	entries map[uint64]SyncEpoch
	oldest  uint64
	newest  uint64
	window  uint64
}

const defaultArchiveWindow = 4096

// archiveResyncKeep is how many fully-acknowledged epochs a coordinator
// retains beyond the hard window. An epoch every live peer has
// acknowledged end-to-end can never need replaying (FIFO channels: the
// ack proves the peer holds everything for it), so the archive stays at
// this depth in steady state instead of growing to the window.
const archiveResyncKeep = 8

func newEpochArchive() *epochArchive {
	return &epochArchive{entries: map[uint64]SyncEpoch{}, window: defaultArchiveWindow}
}

// record stores one epoch's delivery history.
func (a *epochArchive) record(e SyncEpoch) {
	if a == nil {
		return
	}
	if len(a.entries) == 0 || e.Epoch < a.oldest {
		a.oldest = e.Epoch
	}
	if e.Epoch > a.newest {
		a.newest = e.Epoch
	}
	a.entries[e.Epoch] = e
	for a.newest-a.oldest >= a.window {
		delete(a.entries, a.oldest)
		a.oldest++
	}
}

// trim drops every entry older than keepFrom (acknowledged history).
func (a *epochArchive) trim(keepFrom uint64) {
	if a == nil || len(a.entries) == 0 {
		return
	}
	if keepFrom > a.newest+1 {
		keepFrom = a.newest + 1
	}
	for a.oldest < keepFrom {
		delete(a.entries, a.oldest)
		a.oldest++
	}
}

// len reports how many epochs are retained (tests).
func (a *epochArchive) len() int { return len(a.entries) }

// since returns archived epochs >= from, in order.
func (a *epochArchive) since(from uint64) []SyncEpoch {
	var out []SyncEpoch
	for e := range a.entries {
		if e >= from {
			out = append(out, a.entries[e])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Epoch < out[j].Epoch })
	return out
}

// coordinator runs the primary side of the protocol: rules P1 and P2
// (or the §4.3 revision) against a hypervisor, fanning messages out to a
// set of backups through a sender. It is shared between the initial
// Primary engine and a Backup that has been promoted and must continue
// coordinating lower-priority backups.
type coordinator struct {
	hv      *hypervisor.Hypervisor
	s       *sender
	proto   Protocol
	stats   *Stats
	stopped func() bool
	archive *epochArchive
	// hooks/node observe epoch commits (hooks points at the owning
	// engine's Hooks so late assignment is seen).
	hooks *Hooks
	node  int

	intIndex uint32 // capture index within the current epoch

	// endSeqs maps recent epochs to the sender sequence number of their
	// msgEnd, pending acknowledgement; ackedThrough is the newest epoch
	// every live peer provably holds end to end (FIFO links: acking the
	// End implies holding everything before it). Drives archive trimming.
	endSeqs      []endSeqRec
	ackedThrough uint64
	haveAcked    bool

	// Output-commit state (outputcommit.go): configuration, the commit
	// window of sent-but-unacknowledged epochs, the release watermark,
	// the frame pool, the wait signal and the kernel handle used by the
	// acknowledgement delivery hook.
	oc           OutputCommit
	ocPend       []ocPending
	released     uint64
	haveReleased bool
	pool         *netsim.FramePool[epochHead, hypervisor.Interrupt]
	ocSig        *sim.Signal
	k            *sim.Kernel
	// txq/txSig/txClose drive the dedicated transmit process (txLoop):
	// stamped frames awaiting fan-out, its wakeup signal, and the
	// end-of-run close flag. Not captured by snapshots — restore replays
	// the run deterministically, which reproduces the queue.
	txq     []*epochFrame
	txSig   *sim.Signal
	txClose bool
	bpool   *netsim.FramePool[struct{}, *epochFrame]

	// joinBarrier makes the coordinator hold at each epoch boundary until
	// the replication stream is fully drained (transmit queue flushed,
	// every pending frame acknowledged by every live peer). A
	// reintegration sets it while quiescing: the state-transfer image must
	// be captured at a boundary the survivors can reconstruct, and under
	// output commit an ordinary boundary is NOT one — frames may still sit
	// in the transmit queue, dying with the processor on a failstop.
	joinBarrier bool
}

// drained reports whether every epoch the coordinator has committed is
// provably replicated: nothing queued for transmit and nothing awaiting
// acknowledgement. The classic path transmits inline and (for the old
// protocol) gates on acknowledgements, so it is vacuously drained at
// every boundary.
func (c *coordinator) drained() bool {
	if !c.oc.Enabled {
		return true
	}
	return len(c.txq) == 0 && len(c.ocPend) == 0
}

type endSeqRec struct {
	epoch, seq uint64
}

// install hooks the coordinator into the hypervisor. Call once, with the
// driving process, before run.
func (c *coordinator) install(p *sim.Proc) {
	c.s.proc = p
	hv := c.hv
	if c.oc.Enabled {
		// Output commit: interrupts ride the coalesced epoch frame (no
		// per-capture forwarding), output is deferred instead of gated
		// (the protocol variants behave identically), and each peer's
		// acknowledgement channel feeds the release path directly.
		hv.OnCapture = nil
		hv.OnBeforeIO = nil
		hv.SetOutputDeferral(p.Now)
		c.k = p.Kernel()
		c.ocSig = c.k.NewSignal("oc.release")
		if c.pool == nil {
			c.pool = &netsim.FramePool[epochHead, hypervisor.Interrupt]{}
		}
		if c.txSig == nil {
			c.txSig = c.k.NewSignal("oc.tx")
			c.bpool = &netsim.FramePool[struct{}, *epochFrame]{}
			c.k.Spawn(fmt.Sprintf("oc-tx%d", c.node), c.txLoop)
		}
		for _, ps := range c.s.peers {
			ps.peer.RX.OnDeliver = c.ackHandler(ps)
		}
	} else {
		// P1: forward every captured interrupt immediately.
		hv.OnCapture = func(i hypervisor.Interrupt) {
			if c.stopped() {
				return
			}
			c.stats.IntsForwarded++
			c.s.send(message{Kind: msgInterrupt, Epoch: hv.Epoch(), IntIndex: c.intIndex, Int: i})
			c.intIndex++
		}
		if c.proto == ProtocolNew {
			hv.OnBeforeIO = func() {
				if c.stopped() {
					return
				}
				start := p.Now()
				c.stats.IOGateWaits++
				c.s.awaitAcks(c.stopped)
				c.stats.IOGateWaitTime += p.Now() - start
			}
		} else {
			hv.OnBeforeIO = nil
		}
	}
	hv.Stop = c.stopped
	hv.SetIOActive(true)
}

// run executes epochs until the guest halts or the coordinator is
// stopped. tme0 is the clock base for the first epoch it runs.
func (c *coordinator) run(p *sim.Proc, tme0 uint32) {
	if c.oc.Enabled {
		c.runOC(p, tme0)
		return
	}
	hv := c.hv
	hv.SetTODBase(tme0)
	for !hv.Halted() && !c.stopped() {
		b := hv.RunEpoch(p)
		if c.stopped() {
			return
		}
		c.stats.Epochs++

		// --- Rule P2 ---
		tme := b.TOD
		c.s.send(message{Kind: msgTme, Epoch: b.Epoch, Tme: tme})
		if c.proto == ProtocolOld {
			c.s.awaitAcks(c.stopped)
			if c.stopped() {
				return
			}
		} else {
			// Non-blocking: harvest any acks already delivered so the
			// archive trim below sees current coverage. No virtual time
			// passes, so protocol timing is unchanged.
			c.s.drainAcks()
		}
		// send charges per-peer setup time, so virtual time passed and a
		// failstop may have landed mid-boundary. A failstopped processor
		// halts where it stands: it must not deliver, archive, or commit
		// the epoch — a zombie commit would feed observers (the session's
		// commit coordinates, AddBackup's state capture) an epoch the
		// replica set never saw, because the End message died with the
		// severed links.
		if c.stopped() {
			return
		}
		c.trimAcked()
		hv.TimerInterruptsDue(tme)
		var delivered []hypervisor.Interrupt
		if buf := hv.Buffered(); len(buf) > 0 {
			delivered = append([]hypervisor.Interrupt(nil), buf...)
		}
		hv.DeliverBuffered()
		c.archive.record(SyncEpoch{
			Epoch: b.Epoch, Tme: tme, Ints: delivered,
			Digest: b.Digest, Halted: b.Halted,
		})
		c.s.send(message{Kind: msgEnd, Epoch: b.Epoch, Digest: b.Digest, Halted: b.Halted})
		c.endSeqs = append(c.endSeqs, endSeqRec{epoch: b.Epoch, seq: c.s.seq})
		// Same rationale as above: the End send slept, and a failstop
		// landing there means no peer holds this epoch's End — the
		// commit must not be observed.
		if c.stopped() {
			return
		}
		if c.hooks != nil && c.hooks.EpochCommitted != nil {
			c.hooks.EpochCommitted(c.node, b.Epoch, tme, p.Now(), b.Halted)
		}
		hv.ChargeBoundary(p)
		hv.SetTODBase(tme)
		c.intIndex = 0
	}
}

// trimAcked advances the acknowledged-epoch watermark from the sender's
// ack state and prunes archive history more than archiveResyncKeep
// epochs behind it. An epoch whose End every live peer acked can never
// need replaying, so a healthy coordinator's archive stays a short tail
// instead of growing with the run (the window cap in record remains the
// backstop for lagging peers).
func (c *coordinator) trimAcked() {
	ma := c.s.minAcked()
	done := 0
	for done < len(c.endSeqs) && c.endSeqs[done].seq <= ma {
		c.ackedThrough = c.endSeqs[done].epoch
		c.haveAcked = true
		done++
	}
	if done > 0 {
		// Compact survivors to the front so the backing array is reused.
		n := copy(c.endSeqs, c.endSeqs[done:])
		c.endSeqs = c.endSeqs[:n]
	}
	if c.haveAcked && c.ackedThrough+1 > archiveResyncKeep {
		c.archive.trim(c.ackedThrough + 1 - archiveResyncKeep)
	}
}
