package replication

import "repro/internal/sim"

// Hooks observes protocol milestones as they happen, for session event
// streams and live dashboards. Every field is optional; hooks run in
// simulation-process context and must not block in virtual time (they
// are pure observation — a hook that slept would perturb the protocol
// timing it is watching).
type Hooks struct {
	// EpochCommitted fires when the acting coordinator (the primary, or
	// a promoted backup) finishes an epoch boundary: Tme shipped,
	// buffered interrupts delivered.
	EpochCommitted func(node int, epoch uint64, tme uint32, at sim.Time, halted bool)
	// BackupEpoch fires when a following backup completes an epoch's
	// boundary processing, after its divergence check. match reports
	// whether the state digest agreed with the coordinator's.
	BackupEpoch func(node int, epoch uint64, at sim.Time, match bool)
	// Promoted fires when a backup detects coordinator failure and takes
	// over (rules P6/P7). uncertain is the number of uncertain
	// interrupts synthesized for outstanding I/O.
	Promoted func(node int, epoch uint64, at sim.Time, uncertain int)
	// OutputCommitted fires when the output-commit engine releases an
	// epoch's deferred environment output (its frame acknowledged by
	// every live peer). latency is generation→release of the epoch's
	// first deferred output in virtual time (zero when the epoch
	// produced none); outputs is how many deferred operations were
	// released; occupancy is how many epochs remain in flight in the
	// commit window afterwards. Runs in event context: observe only.
	OutputCommitted func(node int, epoch uint64, at sim.Time, latency sim.Time, outputs, occupancy int)
}

// node identifiers for hook callbacks: the primary is node 0, backup i
// (1-based priority index) is node i.
