// Package replication implements the paper's replica-coordination
// protocols (§2, rules P1–P7) and the revised protocol of §4.3, on top of
// the hypervisor and the simulated FIFO channels.
//
// A 1-fault-tolerant virtual machine is a Primary engine driving one
// hypervisor and a Backup engine driving another, joined by a
// netsim.Duplex. The engines guarantee:
//
//   - both virtual machines execute the same instruction sequence, with
//     each instruction having the same effect (identical per-epoch state
//     digests);
//   - while the primary's processor is alive, the backup generates no
//     interactions with the environment (I/O and console suppressed);
//   - after a primary failstop, exactly one virtual machine (the
//     promoted backup) continues interacting with the environment, and
//     the environment observes a sequence of I/O operations consistent
//     with a single processor — outstanding operations are re-driven via
//     synthesized uncertain interrupts (P7), which device semantics IO2
//     permits.
package replication

import (
	"repro/internal/hypervisor"
	"repro/internal/sim"
)

// Protocol selects between the paper's two coordination variants.
type Protocol int

const (
	// ProtocolOld is §2's protocol: at every epoch boundary the primary
	// awaits acknowledgements for all messages previously sent (rule P2).
	ProtocolOld Protocol = iota
	// ProtocolNew is §4.3's revision: the boundary wait is dropped;
	// instead the primary awaits acknowledgements before any I/O
	// operation, since I/O is the only way virtual-machine state is
	// revealed to the environment.
	ProtocolNew
)

// String names the protocol as in Table 1.
func (p Protocol) String() string {
	if p == ProtocolOld {
		return "old"
	}
	return "new"
}

// msgKind enumerates protocol messages.
type msgKind uint8

const (
	// msgInterrupt is P1's [E, Int]: an interrupt captured during epoch
	// E, with its environment payload (DMA data for reads).
	msgInterrupt msgKind = iota
	// msgTme is P2's [Tme_p]: the primary's clock at the end of an
	// epoch, used by the backup to resynchronize (P5: Tme_b := Tme_p).
	msgTme
	// msgEnd is P2's [end, E]: the primary completed epoch E. It also
	// carries the primary's state digest (divergence detection) and the
	// guest-halt flag.
	msgEnd
	// msgAck acknowledges receipt of a sequenced message (P4).
	msgAck
	// msgSync is sent by a freshly promoted backup to lower-priority
	// backups (the t-fault-tolerant generalization): a replay of the
	// delivered-interrupt history so the remaining replicas can follow
	// the new primary's stream verbatim.
	msgSync
)

// SyncEpoch is one epoch's replay record inside a msgSync: exactly what
// the (new) primary delivered at that epoch's boundary, to be applied
// verbatim by a lagging backup.
type SyncEpoch struct {
	Epoch  uint64
	Tme    uint32                 // the clock base shipped for the next epoch
	Ints   []hypervisor.Interrupt // full delivery list, in order
	Digest uint64                 // pre-delivery state digest
	Halted bool
}

// message is the wire payload carried by netsim.
type message struct {
	Kind  msgKind
	Seq   uint64 // primary-assigned sequence, acked by the backup
	Epoch uint64

	Int      hypervisor.Interrupt // msgInterrupt
	IntIndex uint32               // msgInterrupt: per-epoch capture index (dedupe)
	Tme      uint32               // msgTme
	Digest   uint64               // msgEnd
	Halted   bool                 // msgEnd

	// Output-commit fields, set on a msgEnd decoded from an epoch frame
	// (HasCut doubles as the output-commit marker): the epoch's cut
	// coordinate and the coordinator's release watermark.
	Cut          uint64
	HasCut       bool
	Released     uint64
	HaveReleased bool

	AckSeq uint64 // msgAck: highest sequence received

	Sync []SyncEpoch // msgSync
}

// wireSize estimates the payload byte size for the link timing model.
// Control messages ([Tme], [end,E], acks) fit entirely in one link frame
// (size 0 payload: the frame header carries them); interrupt messages
// carry their environment payload (an 8 KiB disk read becomes the
// paper's 9-frame transfer).
func (m message) wireSize() int {
	switch m.Kind {
	case msgInterrupt:
		return m.Int.WireSize()
	case msgSync:
		n := 0
		for _, e := range m.Sync {
			n += 64
			for _, i := range e.Ints {
				n += i.WireSize()
			}
		}
		return n
	}
	return 0
}

// Stats aggregates protocol activity for an engine.
type Stats struct {
	Epochs          uint64
	MessagesSent    uint64
	BytesSent       uint64
	AcksReceived    uint64
	AckWaits        uint64   // number of blocking ack waits
	AckWaitTime     sim.Time // total virtual time spent awaiting acks
	IOGateWaits     uint64   // §4.3: waits at the before-I/O gate
	IOGateWaitTime  sim.Time
	IntsForwarded   uint64   // [E, Int] messages (primary)
	IntsReceived    uint64   // (backup)
	Divergences     uint64   // digest mismatches detected
	PeerTimeouts    uint64   // peers excluded by the ack-liveness timeout
	PromotedAtEpoch uint64   // backup: epoch at which failover occurred
	PromotedAtTime  sim.Time // backup: virtual time of promotion
	Promoted        bool
	UncertainSynth  uint64 // P7 uncertain interrupts synthesized
	OutputsReleased uint64 // output-commit: deferred operations released
}
