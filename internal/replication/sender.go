package replication

import (
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Peer bundles the two directions of the channel to one counterpart:
// TX carries protocol messages out, RX returns acknowledgements.
type Peer struct {
	TX *netsim.Link
	RX *netsim.Link
}

// sender fans protocol messages out to a set of backups and tracks
// acknowledgements per peer. It is used by the Primary engine and by a
// promoted Backup that continues coordinating further backups (the
// t-fault-tolerant generalization the paper calls straightforward).
type sender struct {
	peers []*peerState
	seq   uint64
	proc  *sim.Proc
	stats *Stats
	// peerTimeout bounds how long an acknowledgement wait may block on
	// one live-looking peer before that peer is declared failed and
	// excluded — the sender-side mirror of the backups' coordinator
	// failure detection, needed for liveness when a peer is partitioned
	// or silently stops acknowledging (its link is not Down, so the
	// Down-skip below never fires). Zero means wait forever (the
	// paper's reliable-channel assumption).
	peerTimeout sim.Time
}

type peerState struct {
	peer  Peer
	acked uint64
	// dead marks a peer excluded by the acknowledgement-liveness
	// timeout: it stopped acking while its channel stayed up. A dead
	// peer still receives every message (it is only excluded from the
	// gates), so if it later acknowledges everything outstanding it is
	// resurrected — it provably holds the full stream.
	dead bool
	// seenAcked/progressAt implement the liveness timeout: the last
	// acked watermark observed by a wait tick, and the virtual time of
	// the last observed PROGRESS (zero: not yet observed). A peer is
	// declared dead only after peerTimeout of ack silence, never merely
	// because one wait lasted long while it was steadily catching up.
	seenAcked  uint64
	progressAt sim.Time
}

// excluded reports whether a peer no longer gates progress.
func (p *peerState) excluded() bool { return p.dead || p.peer.TX.Down() }

func newSender(peers []Peer, stats *Stats) *sender {
	s := &sender{stats: stats}
	for _, p := range peers {
		s.peers = append(s.peers, &peerState{peer: p})
	}
	return s
}

// alive reports whether any peer is still connected (all peers down
// means coordination is moot — run unreplicated).
func (s *sender) alive() bool {
	for _, p := range s.peers {
		if !p.peer.TX.Down() {
			return true
		}
	}
	return false
}

// send transmits one sequenced message to every peer, paying the I/O
// controller set-up cost once per peer (§4.3: this cost is
// link-independent).
func (s *sender) send(m message) {
	if len(s.peers) == 0 {
		return
	}
	s.seq++
	m.Seq = s.seq
	for _, p := range s.peers {
		s.stats.MessagesSent++
		s.stats.BytesSent += uint64(m.wireSize())
		p.peer.TX.Send(m, m.wireSize())
		if s.proc != nil {
			s.proc.Sleep(p.peer.TX.Config().SetupTime)
		}
	}
}

// drainAcks consumes already-delivered acknowledgements from all peers.
func (s *sender) drainAcks() {
	for _, p := range s.peers {
		for {
			raw, ok := p.peer.RX.Inbox.TryRecv()
			if !ok {
				break
			}
			m := raw.Payload.(message)
			if m.Kind == msgAck {
				s.stats.AcksReceived++
				if m.AckSeq > p.acked {
					p.acked = m.AckSeq
				}
				if p.dead && p.acked >= s.seq {
					// Full catch-up: the peer holds everything sent, so
					// excluding it no longer protects anything.
					p.dead = false
					p.progressAt = 0
				}
			}
		}
	}
}

// minAcked returns the lowest acknowledged sequence number across live
// peers — the prefix of the stream every live peer provably holds. With
// no live peers it returns seq (nothing outstanding).
func (s *sender) minAcked() uint64 {
	min := s.seq
	for _, p := range s.peers {
		if p.excluded() {
			continue
		}
		if p.acked < min {
			min = p.acked
		}
	}
	return min
}

// fullyAcked reports whether every live peer has acknowledged everything
// sent so far. Peers whose channel is down — or that were excluded by
// the liveness timeout — are skipped: a failstopped backup must not
// wedge the primary forever (the paper's model assumes failed backups
// are eventually replaced; here they are just excluded).
func (s *sender) fullyAcked() bool {
	for _, p := range s.peers {
		if p.excluded() {
			continue
		}
		if p.acked < s.seq {
			return false
		}
	}
	return true
}

// awaitAcks blocks until every message sent so far is acknowledged by
// every live peer — rule P2's wait and the §4.3 I/O gate. With a
// peerTimeout configured, a peer that acknowledges nothing for that
// long while its channel stays up is declared failed and excluded, so
// a partition cannot block the coordinator forever.
func (s *sender) awaitAcks(stop func() bool) {
	s.drainAcks()
	if s.fullyAcked() {
		return
	}
	start := s.proc.Now()
	s.stats.AckWaits++
	for !s.fullyAcked() && (stop == nil || !stop()) {
		// Block on the first lagging live peer; FIFO links mean acks
		// arrive in order, so per-peer blocking is fair.
		var lag *peerState
		for _, p := range s.peers {
			if !p.excluded() && p.acked < s.seq {
				lag = p
				break
			}
		}
		if lag == nil {
			break
		}
		raw, ok := lag.peer.RX.Inbox.RecvTimeout(s.proc, 10*sim.Millisecond)
		if !ok {
			// Re-check liveness and other peers' queues.
			s.drainAcks()
			if s.peerTimeout > 0 {
				now := s.proc.Now()
				for _, p := range s.peers {
					if p.excluded() || p.acked >= s.seq {
						continue
					}
					if p.progressAt == 0 || p.acked > p.seenAcked {
						// First observation, or the peer advanced since
						// the last tick: restart its silence clock.
						p.seenAcked, p.progressAt = p.acked, now
						continue
					}
					if now-p.progressAt >= s.peerTimeout {
						p.dead = true
						s.stats.PeerTimeouts++
					}
				}
			}
			continue
		}
		m := raw.Payload.(message)
		if m.Kind == msgAck {
			s.stats.AcksReceived++
			if m.AckSeq > lag.acked {
				lag.acked = m.AckSeq
			}
		}
		s.drainAcks()
	}
	s.stats.AckWaitTime += s.proc.Now() - start
}

// disconnectAll severs every peer channel (failstop).
func (s *sender) disconnectAll() {
	for _, p := range s.peers {
		p.peer.TX.Disconnect()
		p.peer.RX.Disconnect()
	}
}
