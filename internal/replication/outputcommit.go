package replication

// This file implements the output-commit latency engine: the VMware-FT
// style output rule (Scales et al.) layered over the paper's epoch
// protocol. Three coordinated mechanisms, all opt-in and byte-identical
// to the classic engines when disabled:
//
//   - Deferred output with pipelined acknowledgment: the coordinator
//     never blocks an epoch boundary on acknowledgements. Environment
//     output generated in epoch E is deferred (hypervisor-side buffer)
//     and released only when E's frame is acknowledged by every live
//     peer; meanwhile execution runs ahead into epochs E+1..E+W.
//   - Coalesced framing: [Tme_p], [end, E] and the epoch's interrupt
//     records travel as ONE pooled multi-record frame instead of 2+k
//     messages, collapsing the per-peer controller set-up cost from
//     (2+k)·SetupTime to SetupTime per epoch.
//   - Output-triggered boundaries (hypervisor.Config.AdaptiveBoundary):
//     an environment output cuts the epoch CutSlack instructions later,
//     so output latency is bounded by the frame round-trip instead of
//     the remaining epoch length.
//
// Exactly-once across promotion, extended to the pipelined window: the
// coordinator's release watermark (epochHead.Released) tells each backup
// which suppressed-output prefix has provably been emitted; the backup
// drops that prefix and retains the rest. At failover the promotion
// flush re-emits the retained tail through the devices' ordinal dedup,
// so output the dead coordinator already performed is dropped and output
// it never released is emitted — each operation exactly once. Epochs the
// dead coordinator executed beyond the backup's failover epoch released
// no output (release requires an acknowledgement the backup, by FIFO
// order, never sent), so they are invisible to the environment and the
// new coordinator re-executes from a consistent cut.

import (
	"fmt"

	"repro/internal/hypervisor"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// OutputCommit configures the output-commit engine. The zero value is
// "off": the engines behave byte-identically to the classic protocol.
type OutputCommit struct {
	// Enabled turns deferred output, pipelined acknowledgment and
	// coalesced framing on.
	Enabled bool
	// Window is the maximum number of epochs the coordinator may run
	// ahead of the oldest unacknowledged epoch (minimum and default 1).
	Window int
	// Adaptive enables output-triggered epoch boundaries; it must be
	// mirrored into hypervisor.Config.AdaptiveBoundary on EVERY replica
	// (the session layer does this) so all replicas cut identically.
	Adaptive bool
}

// epochHead is the header of a coalesced epoch frame: the classic
// [Tme_p] and [end, E] messages folded together, plus the output-commit
// bookkeeping.
type epochHead struct {
	Seq    uint64
	Epoch  uint64
	Tme    uint32
	Digest uint64
	Halted bool
	// Cut is the absolute guest-instruction coordinate the epoch ended
	// at. Under adaptive boundaries every replica must choose the same
	// cut; the backup verifies its own coordinate against this.
	Cut uint64
	// Released/HaveReleased is the coordinator's output-release
	// watermark: deferred output through epoch Released has been
	// emitted. Backups drop their suppressed copies up to it and retain
	// the rest as the promotion flush set.
	Released     uint64
	HaveReleased bool
}

// epochFrame is the pooled wire representation of one epoch: header plus
// the epoch's captured interrupt records.
type epochFrame = netsim.Frame[epochHead, hypervisor.Interrupt]

// epochBatch is a pooled second-level coalescing unit: when the transmit
// queue has a backlog (the guest produced epoch boundaries faster than
// the controller's per-message set-up cost can ship them), every queued
// epoch frame is folded into ONE wire message, so the set-up cost is
// paid once per batch instead of once per epoch. Self-clocking: a
// backlog only forms when frames outpace the link, and batching then
// collapses it — the replication stream never bufferbloats behind the
// controller.
type epochBatch = netsim.Frame[struct{}, *epochFrame]

// ocPending is one epoch in the commit window: sent, awaiting the
// acknowledgement that releases its deferred output.
type ocPending struct {
	epoch uint64
	seq   uint64
}

// enqueueFrame stamps one coalesced epoch frame with the next sequence
// number and hands it to the transmit process. The coordinator does NOT
// sleep here: the per-peer controller set-up cost is paid by the
// dedicated transmit process (txLoop), the way a DMA-capable controller
// works a queue while the CPU runs on — under output commit the guest
// resumes the next epoch immediately instead of stalling SetupTime per
// peer at every boundary. Sequence numbers are assigned in enqueue
// order and the single transmit process preserves it, so the FIFO
// acknowledgement watermark semantics are unchanged.
func (c *coordinator) enqueueFrame(f *epochFrame) {
	if len(c.s.peers) == 0 {
		f.Retain(1)
		f.Release()
		return
	}
	c.s.seq++
	f.Head.Seq = c.s.seq
	c.txq = append(c.txq, f)
	c.txSig.Broadcast()
}

// txLoop is the coordinator's transmit process: it drains the frame
// queue in FIFO order, paying the per-peer controller set-up cost — the
// framing win: the classic path pays it per message, (2 + interrupts)
// times, and on the guest's own critical path. It exits on coordinator
// failstop (queued frames die with the processor, exactly as writes a
// failstopped CPU never posted to its controller) or once the queue is
// drained after runOC closes it.
func (c *coordinator) txLoop(p *sim.Proc) {
	for {
		if c.stopped() {
			return
		}
		if len(c.txq) == 0 {
			if c.txClose {
				return
			}
			p.WaitTimeout(c.txSig, 10*sim.Millisecond)
			continue
		}
		if len(c.txq) == 1 {
			f := c.txq[0]
			c.txq[0] = nil
			c.txq = c.txq[:0]
			c.s.transmitFrame(p, f, c.stopped)
			c.ocSig.Broadcast() // wake a join barrier watching txq drain
			continue
		}
		// Backlog: coalesce everything queued into one batch message.
		b := c.bpool.Get()
		for i, f := range c.txq {
			b.Recs = append(b.Recs, f)
			b.Size += f.Size
			c.txq[i] = nil
		}
		b.Size += 8 // batch header
		c.txq = c.txq[:0]
		c.s.transmitBatch(p, b, c.stopped)
		c.ocSig.Broadcast() // wake a join barrier watching txq drain
	}
}

// transmitFrame fans one stamped frame out to every peer. One reference
// per live receiver plus the sender's own; a link that goes down
// mid-fanout drops its copy without releasing, the frame leaks to the
// GC and the pool self-heals (see netsim.FramePool).
func (s *sender) transmitFrame(p *sim.Proc, f *epochFrame, stopped func() bool) {
	live := int32(0)
	for _, ps := range s.peers {
		if !ps.peer.TX.Down() {
			live++
		}
	}
	f.Retain(live + 1)
	for _, ps := range s.peers {
		if stopped != nil && stopped() {
			// Failstop mid-fanout: remaining peers never receive this
			// frame (their references leak to the GC, as above).
			break
		}
		s.stats.MessagesSent++
		s.stats.BytesSent += uint64(f.Size)
		ps.peer.TX.Send(f, f.Size)
		p.Sleep(ps.peer.TX.Config().SetupTime)
	}
	f.Release()
}

// transmitBatch fans one batch message out to every peer. The batch
// carries one reference per live receiver plus the sender's; each inner
// epoch frame carries one per live receiver (each receiver files and
// releases the inner frames individually, then releases the batch).
func (s *sender) transmitBatch(p *sim.Proc, b *epochBatch, stopped func() bool) {
	live := int32(0)
	for _, ps := range s.peers {
		if !ps.peer.TX.Down() {
			live++
		}
	}
	b.Retain(live + 1)
	for _, f := range b.Recs {
		f.Retain(live)
	}
	for _, ps := range s.peers {
		if stopped != nil && stopped() {
			break
		}
		s.stats.MessagesSent++
		s.stats.BytesSent += uint64(b.Size)
		ps.peer.TX.Send(b, b.Size)
		p.Sleep(ps.peer.TX.Config().SetupTime)
	}
	b.Release()
}

// ackHandler returns the delivery hook for one peer's acknowledgement
// channel. It runs in simulation-event context (no blocking): update the
// ack watermark, then release whatever the new watermark commits.
func (c *coordinator) ackHandler(ps *peerState) func(netsim.Message) {
	return func(raw netsim.Message) {
		m, ok := raw.Payload.(message)
		if !ok || m.Kind != msgAck {
			return
		}
		c.stats.AcksReceived++
		if m.AckSeq > ps.acked {
			ps.acked = m.AckSeq
		}
		if ps.dead && ps.acked >= c.s.seq {
			ps.dead = false
			ps.progressAt = 0
		}
		// A failstopped coordinator must not emit: an acknowledgement
		// already in flight when the processor stopped still arrives
		// (links deliver what was sent), but releasing output for it
		// would be a zombie interaction with the environment.
		if c.stopped() {
			return
		}
		c.ocRelease()
		c.ocSig.Broadcast()
	}
}

// attachPeer splices a late joiner into the fan-out and, under output
// commit, wires its acknowledgement channel into the release path.
func (c *coordinator) attachPeer(p Peer) {
	ps := c.s.addPeer(p)
	if c.oc.Enabled && c.ocSig != nil {
		ps.peer.RX.OnDeliver = c.ackHandler(ps)
	}
}

// ocRelease advances the release watermark: every pending epoch whose
// frame all live peers acknowledged has its deferred output emitted, in
// order. Called from the acknowledgement delivery hook and from the
// coordinator's own wait ticks; safe in both contexts (device output and
// link sends do not block).
func (c *coordinator) ocRelease() {
	ma := c.s.minAcked()
	n := 0
	for n < len(c.ocPend) && c.ocPend[n].seq <= ma {
		pe := c.ocPend[n]
		cnt, firstAt := c.hv.ReleaseDeferredThrough(pe.epoch)
		c.released, c.haveReleased = pe.epoch, true
		c.ackedThrough, c.haveAcked = pe.epoch, true
		c.stats.OutputsReleased += uint64(cnt)
		n++
		if c.hooks != nil && c.hooks.OutputCommitted != nil {
			now := c.k.Now()
			var lat sim.Time
			if cnt > 0 && firstAt > 0 {
				lat = now - firstAt
			}
			c.hooks.OutputCommitted(c.node, pe.epoch, now, lat, cnt, len(c.ocPend)-n)
		}
	}
	if n > 0 {
		m := copy(c.ocPend, c.ocPend[n:])
		c.ocPend = c.ocPend[:m]
		if c.haveAcked && c.ackedThrough+1 > archiveResyncKeep {
			c.archive.trim(c.ackedThrough + 1 - archiveResyncKeep)
		}
	}
}

// ocCheckLiveness applies the sender's acknowledgement-liveness timeout
// from a wait tick: a peer silent for peerTimeout while its channel
// stays up is declared dead and excluded, so a partitioned peer cannot
// freeze the commit window forever.
func (c *coordinator) ocCheckLiveness(p *sim.Proc) {
	if c.s.peerTimeout <= 0 {
		return
	}
	now := p.Now()
	for _, ps := range c.s.peers {
		if ps.excluded() || ps.acked >= c.s.seq {
			continue
		}
		if ps.progressAt == 0 || ps.acked > ps.seenAcked {
			ps.seenAcked, ps.progressAt = ps.acked, now
			continue
		}
		if now-ps.progressAt >= c.s.peerTimeout {
			ps.dead = true
			c.stats.PeerTimeouts++
		}
	}
}

// ocWait blocks until cond holds, waking on acknowledgement arrivals and
// ticking the liveness detector through silences. Returns false if the
// coordinator stopped while waiting.
func (c *coordinator) ocWait(p *sim.Proc, cond func() bool) bool {
	if cond() {
		return true
	}
	start := p.Now()
	c.stats.AckWaits++
	for !cond() {
		if c.stopped() {
			c.stats.AckWaitTime += p.Now() - start
			return false
		}
		if !p.WaitTimeout(c.ocSig, 10*sim.Millisecond) {
			// Silence: peers may have died, or their links gone down —
			// both advance minAcked by exclusion.
			c.ocCheckLiveness(p)
			c.ocRelease()
		}
	}
	c.stats.AckWaitTime += p.Now() - start
	return true
}

// runOC is the coordinator loop under output commit: execute epochs
// back-to-back inside the commit window, ship each as one coalesced
// frame, and let acknowledgements release deferred output asynchronously.
func (c *coordinator) runOC(p *sim.Proc, tme0 uint32) {
	hv := c.hv
	hv.SetTODBase(tme0)
	w := c.oc.Window
	if w < 1 {
		w = 1
	}
	for !hv.Halted() && !c.stopped() {
		// Window admission: at most w epochs awaiting acknowledgement.
		if !c.ocWait(p, func() bool { return len(c.ocPend) < w }) {
			return
		}
		b := hv.RunEpoch(p)
		if c.stopped() {
			return
		}
		c.stats.Epochs++
		tme := b.TOD

		// Build the coalesced frame. The interrupt records are snapshotted
		// BEFORE timer synthesis: backups compute timer interrupts from
		// Tme themselves, exactly as in the classic protocol.
		f := c.pool.Get()
		f.Head = epochHead{
			Epoch: b.Epoch, Tme: tme, Digest: b.Digest, Halted: b.Halted,
			Cut:      b.GuestInstr,
			Released: c.released, HaveReleased: c.haveReleased,
		}
		for _, i := range hv.Buffered() {
			f.Recs = append(f.Recs, i)
			f.Size += i.WireSize()
		}
		hv.TimerInterruptsDue(tme)
		var delivered []hypervisor.Interrupt
		if buf := hv.Buffered(); len(buf) > 0 {
			delivered = append([]hypervisor.Interrupt(nil), buf...)
		}
		hv.DeliverBuffered()
		c.archive.record(SyncEpoch{
			Epoch: b.Epoch, Tme: tme, Ints: delivered,
			Digest: b.Digest, Halted: b.Halted,
		})
		c.enqueueFrame(f)
		c.ocPend = append(c.ocPend, ocPending{epoch: b.Epoch, seq: c.s.seq})
		// Unlike the classic loop, no virtual time passed since the
		// epoch ended (the transmit process pays the fan-out cost), so a
		// failstop cannot land mid-boundary; the re-check is kept for
		// the event-context stops delivered during RunEpoch's device
		// polling.
		if c.stopped() {
			return
		}
		c.ocRelease()
		if c.stopped() {
			return
		}
		if c.joinBarrier {
			// A reintegration wants this boundary as its state-transfer
			// point: hold here until the stream drains, so the captured
			// image never certifies an epoch that would be lost — and
			// re-executed differently by a promoted backup — were this
			// processor to failstop now. Draining BEFORE the commit hook
			// lets the session's boundary-sampled stop predicate observe
			// the drained state.
			if !c.ocWait(p, func() bool { return c.drained() }) {
				return
			}
		}
		if c.hooks != nil && c.hooks.EpochCommitted != nil {
			c.hooks.EpochCommitted(c.node, b.Epoch, tme, p.Now(), b.Halted)
		}
		hv.ChargeBoundary(p)
		hv.SetTODBase(tme)
	}
	// Drain: the guest halted (or stopped) with epochs still in flight —
	// wait their acknowledgements out so the final output is released,
	// then let the transmit process exit.
	c.ocWait(p, func() bool { return len(c.ocPend) == 0 })
	c.txClose = true
	c.txSig.Broadcast()
}

// fileFrame files one received epoch frame: the coalesced equivalent of
// one msgTme, one msgEnd, and the epoch's msgInterrupt stream.
func (bk *Backup) fileFrame(f *epochFrame) {
	h := f.Head
	r := bk.rec(h.Epoch)
	if r.verbatim == nil {
		bk.Stats.IntsReceived += uint64(len(f.Recs))
		for i := range f.Recs {
			r.ints[uint32(i)] = f.Recs[i]
		}
		tme := h.Tme
		r.tme = &tme
		r.end = &message{
			Kind: msgEnd, Seq: h.Seq, Epoch: h.Epoch,
			Digest: h.Digest, Halted: h.Halted,
			Cut: h.Cut, HasCut: true,
			Released: h.Released, HaveReleased: h.HaveReleased,
		}
	}
	f.Release()
}

// checkCut verifies the backup's epoch-boundary coordinate against the
// coordinator's (adaptive boundaries must be chosen identically).
func (bk *Backup) checkCut(e uint64, end *message, ours uint64) bool {
	if !end.HasCut || end.Cut == ours {
		return true
	}
	bk.Stats.Divergences++
	if bk.OnDivergence != nil {
		bk.OnDivergence(e, end.Cut, ours)
		return false
	}
	panic(fmt.Sprintf("replication: boundary divergence at epoch %d: primary cut %d backup cut %d",
		e, end.Cut, ours))
}
