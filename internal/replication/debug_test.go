package replication

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/platform"
	"repro/internal/scsi"
	"repro/internal/sim"
)

// TestNoUnexpectedGuestTraps verifies that a healthy replicated disk
// workload reflects only EXPECTED traps into the guest: external
// interrupts (deliveries at epoch boundaries). Illegal instructions,
// access faults or machine checks reaching the guest indicate a
// virtualization bug (this is the regression test for an early bug where
// a driver clobbered the link register and jumped into the MMIO window).
func TestNoUnexpectedGuestTraps(t *testing.T) {
	cfg := platform.Config{
		Disk: scsi.DiskConfig{ReadLatency: 200 * sim.Microsecond, WriteLatency: 250 * sim.Microsecond},
	}
	guest := guestIO(100, 3, 10, 512)
	c := newCluster(t, 1, cfg, ProtocolOld, guest)
	counts := map[isa.Trap]int{}
	c.pair.Primary.HV.OnReflect = func(tr isa.Trap, isr, ior, pc uint32) {
		counts[tr]++
	}
	c.run(t, 100*sim.Second)
	if !c.pair.Primary.HV.Halted() {
		t.Fatal("guest did not halt")
	}
	for tr, n := range counts {
		switch tr {
		case isa.TrapExtIntr:
			// expected: interrupt deliveries
		default:
			t.Errorf("unexpected guest trap %v reflected %d times", tr, n)
		}
	}
	if counts[isa.TrapExtIntr] == 0 {
		t.Error("no interrupt deliveries observed")
	}
}
