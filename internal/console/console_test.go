package console

import "testing"

func TestOutputAccumulates(t *testing.T) {
	c := New()
	for _, ch := range "hello" {
		if err := c.MMIOStore(RegData, 4, uint32(ch)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Output() != "hello" {
		t.Errorf("output = %q", c.Output())
	}
	if c.Writes != 5 {
		t.Errorf("writes = %d", c.Writes)
	}
}

func TestStatusAlwaysReady(t *testing.T) {
	c := New()
	v, err := c.MMIOLoad(RegStatus, 4)
	if err != nil || v != 1 {
		t.Errorf("status = %d, %v", v, err)
	}
	if v, err := c.MMIOLoad(RegData, 4); err != nil || v != 0 {
		t.Errorf("data read = %d, %v", v, err)
	}
}

func TestStatusWriteIgnored(t *testing.T) {
	c := New()
	if err := c.MMIOStore(RegStatus, 4, 99); err != nil {
		t.Errorf("status write errored: %v", err)
	}
	if c.Output() != "" {
		t.Error("status write produced output")
	}
}

func TestBadRegister(t *testing.T) {
	c := New()
	if _, err := c.MMIOLoad(0xC, 4); err == nil {
		t.Error("bad load offset accepted")
	}
	if err := c.MMIOStore(0xC, 4, 0); err == nil {
		t.Error("bad store offset accepted")
	}
}

func TestReset(t *testing.T) {
	c := New()
	c.MMIOStore(RegData, 4, 'x')
	c.Reset()
	if c.Output() != "" || c.Writes != 0 {
		t.Error("reset incomplete")
	}
}

func TestOnlyLowByteEmitted(t *testing.T) {
	c := New()
	c.MMIOStore(RegData, 4, 0x12345641) // 'A' in low byte
	if c.Output() != "A" {
		t.Errorf("output = %q, want A", c.Output())
	}
}
