package console

import "testing"

func TestOutputAccumulates(t *testing.T) {
	c := New()
	p := c.NewPort(nil)
	for _, ch := range "hello" {
		if err := p.MMIOStore(RegData, 4, uint32(ch)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Output() != "hello" {
		t.Errorf("output = %q", c.Output())
	}
	if c.Writes != 5 {
		t.Errorf("writes = %d", c.Writes)
	}
}

func TestStatusAlwaysReady(t *testing.T) {
	c := New()
	p := c.NewPort(nil)
	v, err := p.MMIOLoad(RegStatus, 4)
	if err != nil || v != StatusReady {
		t.Errorf("status = %d, %v", v, err)
	}
	if v, err := p.MMIOLoad(RegData, 4); err != nil || v != 0 {
		t.Errorf("data read = %d, %v", v, err)
	}
}

func TestStatusWriteIgnored(t *testing.T) {
	c := New()
	p := c.NewPort(nil)
	if err := p.MMIOStore(RegStatus, 4, 99); err != nil {
		t.Errorf("status write errored: %v", err)
	}
	if c.Output() != "" {
		t.Error("status write produced output")
	}
}

func TestBadRegister(t *testing.T) {
	c := New()
	p := c.NewPort(nil)
	if _, err := p.MMIOLoad(0x1C, 4); err == nil {
		t.Error("bad load offset accepted")
	}
	if err := p.MMIOStore(0x1C, 4, 0); err == nil {
		t.Error("bad store offset accepted")
	}
}

func TestReset(t *testing.T) {
	c := New()
	p := c.NewPort(nil)
	p.MMIOStore(RegData, 4, 'x')
	c.Reset()
	if c.Output() != "" || c.Writes != 0 {
		t.Error("reset incomplete")
	}
}

func TestOnlyLowByteEmitted(t *testing.T) {
	c := New()
	p := c.NewPort(nil)
	p.MMIOStore(RegData, 4, 0x12345641) // 'A' in low byte
	if c.Output() != "A" {
		t.Errorf("output = %q, want A", c.Output())
	}
}

func TestInputFansOutToEveryPort(t *testing.T) {
	c := New()
	raised := 0
	p0 := c.NewPort(func() { raised++ })
	p1 := c.NewPort(nil)
	c.Input([]byte("ab"))
	if raised != 1 {
		t.Errorf("irq raised %d times, want 1", raised)
	}
	for _, p := range []*Port{p0, p1} {
		if s, _ := p.MMIOLoad(RegStatus, 4); s&StatusRxAvail == 0 {
			t.Fatal("input not pending")
		}
		if seq, _ := p.MMIOLoad(RegInSeq, 4); seq != 1 {
			t.Errorf("head seq = %d, want 1", seq)
		}
		if b, _ := p.MMIOLoad(RegIn, 4); b != 'a' {
			t.Errorf("pop = %q, want a", b)
		}
		if seq, _ := p.MMIOLoad(RegInSeq, 4); seq != 2 {
			t.Errorf("head seq after pop = %d, want 2", seq)
		}
	}
}

func TestConsumeRetiresThroughWatermark(t *testing.T) {
	c := New()
	p := c.NewPort(nil)
	c.Input([]byte("abc")) // seqs 1..3
	p.MMIOStore(RegConsume, 4, 2)
	if p.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", p.Pending())
	}
	if b, _ := p.MMIOLoad(RegIn, 4); b != 'c' {
		t.Errorf("pop = %q, want c", b)
	}
	// Consuming again past the watermark is a no-op (idempotent).
	p.MMIOStore(RegConsume, 4, 2)
	if p.Pending() != 0 {
		t.Errorf("pending = %d, want 0", p.Pending())
	}
}

func TestOutputOrdinalDedup(t *testing.T) {
	c := New()
	p := c.NewPort(nil)
	emit := func(ord uint32, b byte) {
		p.MMIOStore(RegOutSeq, 4, ord)
		p.MMIOStore(RegData, 4, uint32(b))
	}
	emit(1, 'x')
	emit(2, 'y')
	// A promoted backup re-emitting the failover epoch: ordinals 1-3.
	emit(1, 'x')
	emit(2, 'y')
	emit(3, 'z')
	if c.Output() != "xyz" {
		t.Errorf("output = %q, want xyz (exactly-once)", c.Output())
	}
	// Untagged writes (bare machine) always apply.
	p.MMIOStore(RegData, 4, '!')
	if c.Output() != "xyz!" {
		t.Errorf("output = %q", c.Output())
	}
}

func TestDetachedPortStopsRaising(t *testing.T) {
	c := New()
	raised := 0
	p := c.NewPort(func() { raised++ })
	p.Detached = true
	c.Input([]byte("a"))
	if raised != 0 {
		t.Error("detached port raised its line")
	}
	if p.Pending() != 1 {
		t.Error("detached port lost the input record")
	}
}

func TestShadowRoundTrip(t *testing.T) {
	c := New()
	p := c.NewPort(nil)
	c.Input([]byte("hi!")) // seqs 1..3
	sh := NewShadow()
	bus := portBus{p: p}
	rec, ok := sh.Capture(bus, nil)
	if !ok || string(rec.Data) != "hi!" || rec.Seq != 3 {
		t.Fatalf("capture = %q seq %d ok %v", rec.Data, rec.Seq, ok)
	}
	if p.Pending() != 0 {
		t.Error("capture left input pending")
	}
	// A second shadow (another replica) applies the record: the guest
	// sees the bytes; its port (which never captured) is reconciled.
	sh2 := NewShadow()
	p2 := c.NewPort(nil)
	c.Input([]byte("x")) // seq 4, lands on p2 only from now
	sh2.Apply(rec, nil, portBus{p: p2})
	if s := sh2.Load(RegStatus); s&StatusRxAvail == 0 {
		t.Fatal("applied input not visible")
	}
	got := ""
	for sh2.Load(RegStatus)&StatusRxAvail != 0 {
		got += string(rune(sh2.Load(RegIn)))
	}
	if got != "hi!" {
		t.Errorf("guest read %q, want hi!", got)
	}
	// Marshal/unmarshal round-trips pending shadow input.
	sh2.rx = []byte("rem")
	blob := sh2.MarshalState()
	var sh3 Shadow
	if err := sh3.UnmarshalState(blob); err != nil {
		t.Fatal(err)
	}
	if string(sh3.rx) != "rem" {
		t.Errorf("restored rx = %q", sh3.rx)
	}
}

// portBus adapts a Port to device.Bus for direct shadow tests.
type portBus struct{ p *Port }

func (b portBus) Load(off uint32) uint32 {
	v, err := b.p.MMIOLoad(off, 4)
	if err != nil {
		panic(err)
	}
	return v
}

func (b portBus) Store(off uint32, v uint32) {
	if err := b.p.MMIOStore(off, 4, v); err != nil {
		panic(err)
	}
}
