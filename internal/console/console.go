// Package console models the prototype's remote console/terminal
// (Figure 1 of the paper), generalized from a write-only side channel
// into a full environment device on the generic device layer:
//
//   - OUTPUT: bytes stored to the data register appear on the shared
//     transcript. Under replication only the I/O-active hypervisor's
//     writes reach it (a backup suppresses — and records — its own);
//     output writes carry an ordinal so a promoted backup can re-emit
//     the failover epoch's suppressed output EXACTLY ONCE (the device
//     dedups by ordinal watermark, the way output-commit systems dedup
//     by sequence number).
//
//   - INPUT: the environment can script keystrokes arriving at given
//     virtual times. Like the paper's dual-ported disk, the console is
//     ONE shared environment object with a Port per processor: every
//     port sees the same input stream (each byte tagged with a global
//     sequence number) and raises its host's interrupt line. The
//     I/O-active hypervisor captures the pending bytes as a completion
//     record (rule P1) and forwards them; every replica applies the
//     record at the epoch boundary (P5), consuming its own port's
//     pending input through the record's watermark — so after a
//     failover the promoted backup's port holds exactly the input the
//     environment delivered but no replica consumed, which rule P7's
//     generalization drains.
//
// Tests compare the transcript of a replicated run — including runs
// with failover and reintegration — against a bare single-machine run.
package console

import (
	"fmt"
	"hash/fnv"

	"repro/internal/device"
	"repro/internal/sim"
)

// Register offsets (word registers within the console window).
const (
	RegData    uint32 = 0x00 // write: emit low byte; read: 0
	RegStatus  uint32 = 0x04 // read: bit0 output ready (always), bit1 input pending
	RegIn      uint32 = 0x08 // read: pop next pending input byte (0 when none)
	RegInSeq   uint32 = 0x0C // read: sequence number of the head input byte (0 when none)
	RegConsume uint32 = 0x10 // write: retire pending input with sequence <= value
	RegOutSeq  uint32 = 0x14 // write: ordinal for the NEXT data write (dedup tag)

	// Window is the size of the console register bank.
	Window uint32 = 0x20
)

// Status register bits.
const (
	StatusReady   uint32 = 1 << 0 // output always ready
	StatusRxAvail uint32 = 1 << 1 // input pending
)

// Input is one scripted environment input event: Data arrives at
// virtual time At.
type Input struct {
	At   sim.Time
	Data []byte
}

// Console is the SHARED environment console: one transcript, one input
// script, dual-ported like the paper's disk via Port.
type Console struct {
	out []byte
	// Writes counts data-register stores that appended to the
	// transcript (suppressed and deduplicated writes are not seen by
	// the device).
	Writes uint64

	// highWater is the output-ordinal dedup watermark: an
	// explicitly-tagged write with ordinal <= highWater is a
	// retransmission (a promoted backup re-emitting the failover
	// epoch's suppressed output) and is dropped.
	highWater uint32

	nextSeq uint32 // input sequence numbers assigned so far
	ports   []*Port

	// OnInput, when set, observes every scripted input event as it is
	// delivered to the ports (session event streams).
	OnInput func(seq uint32, data []byte)
}

// New returns an empty console.
func New() *Console { return &Console{} }

// NewPort attaches one processor's endpoint. irq (optional) raises the
// host's external interrupt line when input arrives.
func (c *Console) NewPort(irq func()) *Port {
	p := &Port{c: c, irq: irq}
	c.ports = append(c.ports, p)
	return p
}

// Input delivers environment input: each byte gets the next global
// sequence number and lands in every port's pending FIFO.
func (c *Console) Input(data []byte) {
	if len(data) == 0 {
		return
	}
	first := c.nextSeq + 1
	c.nextSeq += uint32(len(data))
	for _, p := range c.ports {
		p.push(first, data)
	}
	if c.OnInput != nil {
		c.OnInput(c.nextSeq, data)
	}
}

// Schedule registers the script's input events with the simulation
// kernel. Ports attached later (a reintegrated node) automatically see
// events that fire after their creation.
func (c *Console) Schedule(k *sim.Kernel, script []Input) {
	for _, ev := range script {
		data := ev.Data
		k.At(ev.At, func() { c.Input(data) })
	}
}

// Output returns the transcript so far.
func (c *Console) Output() string { return string(c.out) }

// Reset clears the transcript (test setup; input state is unaffected).
func (c *Console) Reset() { c.out = nil; c.Writes = 0 }

// DisableOutputDedup disables the ordinal high-water dedup in append,
// re-exposing the duplicate-output-after-promotion bug the ordinals
// exist to prevent. Fault-injection hook for the chaos campaign's
// self-test (it must catch and shrink exactly this class of bug);
// never set in production paths.
var DisableOutputDedup = false

// append applies one output byte, honoring the ordinal dedup watermark
// (ordinal 0 = untagged write, always applied).
func (c *Console) append(ordinal uint32, b byte) {
	if ordinal != 0 && !DisableOutputDedup {
		if ordinal <= c.highWater {
			return // retransmission of output the environment already saw
		}
		c.highWater = ordinal
	}
	c.out = append(c.out, b)
	c.Writes++
}

// StateDigest returns a deterministic hash of the console's dynamic
// state: transcript, watermarks, and every port's pending input
// (snapshot verification).
func (c *Console) StateDigest() uint64 {
	h := fnv.New64a()
	h.Write(c.out)
	var b [20]byte
	put32 := func(off int, v uint32) {
		b[off], b[off+1], b[off+2], b[off+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	}
	put32(0, c.highWater)
	put32(4, c.nextSeq)
	put32(8, uint32(c.Writes))
	put32(12, uint32(c.Writes>>32))
	put32(16, uint32(len(c.ports)))
	h.Write(b[:])
	for _, p := range c.ports {
		for _, e := range p.fifo {
			put32(0, e.seq)
			b[4] = e.b
			h.Write(b[:5])
		}
		b[0] = 0xFE
		h.Write(b[:1])
	}
	return h.Sum64()
}

// rxEntry is one pending input byte with its global sequence number.
type rxEntry struct {
	seq uint32
	b   byte
}

// Port is one processor's view of the console: a register bank on the
// host's MMIO bus. It implements machine.MMIOHandler semantics for its
// window.
type Port struct {
	c    *Console
	irq  func()
	fifo []rxEntry

	// outSeq is a pending explicit output ordinal (set by RegOutSeq,
	// consumed by the next RegData write; 0 = untagged).
	outSeq uint32

	// Detached is set when the host has failstopped: input stops
	// raising its interrupt line (no interrupt reaches a dead host).
	Detached bool
}

// push files arriving input (first is the sequence of data[0]).
func (p *Port) push(first uint32, data []byte) {
	for i, b := range data {
		p.fifo = append(p.fifo, rxEntry{seq: first + uint32(i), b: b})
	}
	if p.irq != nil && !p.Detached {
		p.irq()
	}
}

// consume retires pending input with sequence <= seq.
func (p *Port) consume(seq uint32) {
	i := 0
	for i < len(p.fifo) && p.fifo[i].seq <= seq {
		i++
	}
	if i > 0 {
		n := copy(p.fifo, p.fifo[i:])
		p.fifo = p.fifo[:n]
	}
}

// Pending reports how many input bytes await consumption (tests).
func (p *Port) Pending() int { return len(p.fifo) }

// MMIOLoad implements machine.MMIOHandler.
func (p *Port) MMIOLoad(off uint32, size int) (uint32, error) {
	switch off {
	case RegData:
		return 0, nil
	case RegStatus:
		s := StatusReady
		if len(p.fifo) > 0 {
			s |= StatusRxAvail
		}
		return s, nil
	case RegIn:
		if len(p.fifo) == 0 {
			return 0, nil
		}
		b := p.fifo[0].b
		n := copy(p.fifo, p.fifo[1:])
		p.fifo = p.fifo[:n]
		return uint32(b), nil
	case RegInSeq:
		if len(p.fifo) == 0 {
			return 0, nil
		}
		return p.fifo[0].seq, nil
	case RegConsume, RegOutSeq:
		return 0, nil
	}
	return 0, errBadReg(off)
}

// MMIOStore implements machine.MMIOHandler.
func (p *Port) MMIOStore(off uint32, size int, v uint32) error {
	switch off {
	case RegData:
		ord := p.outSeq
		p.outSeq = 0
		p.c.append(ord, byte(v))
		return nil
	case RegStatus:
		return nil // ignored
	case RegIn, RegInSeq:
		return nil // read-only
	case RegConsume:
		p.consume(v)
		return nil
	case RegOutSeq:
		p.outSeq = v
		return nil
	}
	return errBadReg(off)
}

// StateDigest hashes the port's dynamic state (snapshot verification).
func (p *Port) StateDigest() uint64 {
	h := fnv.New64a()
	var b [5]byte
	for _, e := range p.fifo {
		b[0], b[1], b[2], b[3] = byte(e.seq), byte(e.seq>>8), byte(e.seq>>16), byte(e.seq>>24)
		b[4] = e.b
		h.Write(b[:])
	}
	b[0] = 0
	if p.Detached {
		b[0] = 1
	}
	h.Write(b[:1])
	b[0], b[1], b[2], b[3] = byte(p.outSeq), byte(p.outSeq>>8), byte(p.outSeq>>16), byte(p.outSeq>>24)
	h.Write(b[:4])
	return h.Sum64()
}

type badReg uint32

func (b badReg) Error() string { return "console: bad register offset" }

func errBadReg(off uint32) error { return badReg(off) }

// Shadow is the hypervisor-side virtual console: the guest-visible
// register bank. Output stores are classified EffectOutput (the
// hypervisor gates them on I/O-activity); input becomes visible to the
// guest only when a captured completion record is applied at an epoch
// boundary — so terminal input, like disk completions, arrives on every
// replica at the same instruction-stream position.
type Shadow struct {
	rx []byte // delivered input awaiting guest reads
}

// NewShadow returns an empty virtual console.
func NewShadow() *Shadow { return &Shadow{} }

var _ device.Shadow = (*Shadow)(nil)

// Load implements device.Shadow. Reading RegIn pops the delivered-input
// FIFO — a deterministic shadow-state mutation (both replicas execute
// the same loads).
func (s *Shadow) Load(off uint32) uint32 {
	switch off {
	case RegStatus:
		v := StatusReady
		if len(s.rx) > 0 {
			v |= StatusRxAvail
		}
		return v
	case RegIn:
		if len(s.rx) == 0 {
			return 0
		}
		b := s.rx[0]
		s.rx = s.rx[1:]
		return uint32(b)
	}
	return 0
}

// Store implements device.Shadow: a data write is environment output.
func (s *Shadow) Store(off uint32, v uint32) device.Effect {
	if off == RegData {
		return device.EffectOutput
	}
	return device.EffectNone
}

// Output implements device.Shadow: forward one output byte to the real
// console, tagged with its ordinal so re-emission after a failover
// cannot duplicate bytes the environment already saw.
func (s *Shadow) Output(bus device.Bus, off, v uint32, ordinal uint32) {
	bus.Store(RegOutSeq, ordinal)
	bus.Store(RegData, v)
}

// Start implements device.Shadow (the console has no doorbell).
func (s *Shadow) Start(bus device.Bus) {}

// Capture implements device.Shadow: drain the port's pending input into
// one completion record carrying the bytes and the sequence watermark.
func (s *Shadow) Capture(bus device.Bus, mem device.Memory) (device.Completion, bool) {
	var c device.Completion
	for bus.Load(RegStatus)&StatusRxAvail != 0 {
		c.Seq = bus.Load(RegInSeq)
		c.Data = append(c.Data, byte(bus.Load(RegIn)))
	}
	if len(c.Data) == 0 {
		return device.Completion{}, false
	}
	c.Status = StatusRxAvail
	return c, true
}

// Apply implements device.Shadow: make the delivered input visible to
// the guest and retire the real port's pending bytes through the
// record's watermark (a no-op on the node that captured them).
func (s *Shadow) Apply(c device.Completion, mem device.Memory, bus device.Bus) {
	s.rx = append(s.rx, c.Data...)
	bus.Store(RegConsume, c.Seq)
}

// Recover implements device.Shadow: at failover, input the environment
// delivered but no replica consumed is still pending on this node's
// port — capture it now so the promoted virtual machine receives it.
// Bytes covered by records already awaiting delivery (the dead
// coordinator captured and forwarded them for the failover epoch) are
// drained but NOT re-captured: they arrive with those records.
// (These are environment events, not uncertain completions: count 0.)
func (s *Shadow) Recover(bus device.Bus, mem device.Memory, outstanding bool, buffered []device.Completion) ([]device.Completion, int) {
	var covered uint32
	for _, b := range buffered {
		if b.Seq > covered {
			covered = b.Seq
		}
	}
	var c device.Completion
	for bus.Load(RegStatus)&StatusRxAvail != 0 {
		seq := bus.Load(RegInSeq)
		b := byte(bus.Load(RegIn))
		if seq <= covered {
			continue // will be applied with its forwarded record
		}
		c.Seq = seq
		c.Data = append(c.Data, b)
	}
	if len(c.Data) == 0 {
		return nil, 0
	}
	c.Status = StatusRxAvail
	return []device.Completion{c}, 0
}

// MarshalState implements device.Shadow.
func (s *Shadow) MarshalState() []byte {
	b := device.AppendU32(nil, uint32(len(s.rx)))
	return append(b, s.rx...)
}

// UnmarshalState implements device.Shadow.
func (s *Shadow) UnmarshalState(data []byte) error {
	n, rest, ok := device.ReadU32(data)
	if !ok || int(n) != len(rest) {
		return fmt.Errorf("console: shadow state malformed (%d bytes)", len(data))
	}
	s.rx = append([]byte(nil), rest...)
	return nil
}
