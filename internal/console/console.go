// Package console models the prototype's remote console (Figure 1 of the
// paper): a trivially simple memory-mapped output device. Bytes stored to
// the data register appear on the console; the status register always
// reads ready.
//
// The console is an ENVIRONMENT interaction: under replication only the
// primary's writes reach it (the backup's hypervisor suppresses output),
// and after failover the promoted backup's writes continue the stream.
// Tests compare the console transcript of a replicated run — including
// runs with failover — against a bare single-machine run.
package console

// Register offsets.
const (
	RegData   uint32 = 0x0 // write: emit low byte
	RegStatus uint32 = 0x4 // read: 1 (always ready)

	// Window is the size of the console register bank.
	Window uint32 = 0x10
)

// Console is the device. The zero value is ready to use.
type Console struct {
	out []byte
	// Writes counts data-register stores (including suppressed ones is
	// the hypervisor's business; the device only sees real stores).
	Writes uint64
}

// New returns an empty console.
func New() *Console { return &Console{} }

// MMIOLoad implements machine.MMIOHandler.
func (c *Console) MMIOLoad(off uint32, size int) (uint32, error) {
	switch off {
	case RegData:
		return 0, nil
	case RegStatus:
		return 1, nil
	}
	return 0, errBadReg(off)
}

// MMIOStore implements machine.MMIOHandler.
func (c *Console) MMIOStore(off uint32, size int, v uint32) error {
	switch off {
	case RegData:
		c.out = append(c.out, byte(v))
		c.Writes++
		return nil
	case RegStatus:
		return nil // ignored
	}
	return errBadReg(off)
}

// Output returns the transcript so far.
func (c *Console) Output() string { return string(c.out) }

// Reset clears the transcript.
func (c *Console) Reset() { c.out = nil; c.Writes = 0 }

type badReg uint32

func (b badReg) Error() string { return "console: bad register offset" }

func errBadReg(off uint32) error { return badReg(off) }
