package core_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/replication"
)

// The core package exists to anchor the paper's contribution in one
// place by re-exporting the protocol engine. These tests pin the wiring:
// every alias must resolve to the corresponding internal/replication
// symbol, so a refactor that silently detaches them fails here.

// Compile-time type-identity checks: a type alias is interchangeable
// with its target, so these assignments only build if the aliases still
// point at the replication engine types.
var (
	_ *replication.Primary = (*core.Primary)(nil)
	_ *core.Primary        = (*replication.Primary)(nil)
	_ *replication.Backup  = (*core.Backup)(nil)
	_ *core.Backup         = (*replication.Backup)(nil)
	_ replication.Stats    = core.Stats{}
	_ core.Protocol        = replication.ProtocolOld
)

func TestProtocolConstantsMatchReplication(t *testing.T) {
	if core.ProtocolOld != replication.ProtocolOld {
		t.Errorf("ProtocolOld = %v, want %v", core.ProtocolOld, replication.ProtocolOld)
	}
	if core.ProtocolNew != replication.ProtocolNew {
		t.Errorf("ProtocolNew = %v, want %v", core.ProtocolNew, replication.ProtocolNew)
	}
	if core.ProtocolOld == core.ProtocolNew {
		t.Error("protocol variants must be distinct")
	}
	// The variants carry the paper's naming through String().
	if got := core.ProtocolOld.String(); got != replication.ProtocolOld.String() {
		t.Errorf("ProtocolOld.String() = %q, want replication's %q",
			got, replication.ProtocolOld.String())
	}
}

func TestConstructorsWireToReplication(t *testing.T) {
	if got, want := reflect.ValueOf(core.NewPrimary).Pointer(),
		reflect.ValueOf(replication.NewPrimary).Pointer(); got != want {
		t.Error("core.NewPrimary is not replication.NewPrimary")
	}
	if got, want := reflect.ValueOf(core.NewBackup).Pointer(),
		reflect.ValueOf(replication.NewBackup).Pointer(); got != want {
		t.Error("core.NewBackup is not replication.NewBackup")
	}
}

func TestStatsFieldParity(t *testing.T) {
	// Stats is an alias, so the field sets are identical by construction;
	// assert non-emptiness so the alias target stays a real counter set.
	if reflect.TypeOf(core.Stats{}).NumField() == 0 {
		t.Error("core.Stats re-exports an empty struct")
	}
}
