// Package core anchors the paper's primary contribution — the
// hypervisor-level replica-coordination protocols of Bressoud &
// Schneider — in the repository layout. The implementation lives in
// sibling packages; core re-exports the protocol engine so downstream
// code (and readers navigating the tree) find the contribution in one
// place:
//
//   - internal/replication: rules P1–P7 and the §4.3 revised protocol
//     (the Primary and Backup engines re-exported here);
//   - internal/hypervisor: the trap-and-emulate hypervisor with epoch
//     control, interrupt buffering and TLB takeover;
//   - internal/machine, internal/isa, internal/asm: the PA-lite
//     processor substrate;
//   - internal/scsi, internal/netsim, internal/console: the environment
//     (dual-ported disk with IO1/IO2 semantics, FIFO links, console);
//   - internal/guest: the unmodified guest operating system;
//   - internal/harness, internal/perfmodel: the §4 evaluation.
package core

import "repro/internal/replication"

// Protocol selects the coordination variant (§2 vs §4.3).
type Protocol = replication.Protocol

// Protocol variants.
const (
	// ProtocolOld awaits acknowledgements at every epoch boundary (P2).
	ProtocolOld = replication.ProtocolOld
	// ProtocolNew defers acknowledgement waits to I/O initiation (§4.3).
	ProtocolNew = replication.ProtocolNew
)

// Primary is the engine implementing rules P1–P2 for the virtual
// machine that interacts with the environment.
type Primary = replication.Primary

// Backup is the engine implementing rules P3–P7: replay, suppression,
// failure detection, promotion, and uncertain-interrupt synthesis.
type Backup = replication.Backup

// Stats aggregates a protocol engine's counters.
type Stats = replication.Stats

// NewPrimary wires a primary engine (see replication.NewPrimary).
var NewPrimary = replication.NewPrimary

// NewBackup wires a backup engine (see replication.NewBackup).
var NewBackup = replication.NewBackup
