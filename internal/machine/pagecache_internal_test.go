package machine

import "testing"

// TestInvalidateStoreUnaligned: the physical-store path accepts
// unaligned addresses (loaders, DMA, tests), where one store spans two
// decoded slots — and possibly two pages. Both covered slots must drop.
func TestInvalidateStoreUnaligned(t *testing.T) {
	m := New(Config{})

	pg := m.execPage(0)
	pg.valid[0] = ^uint64(0)
	m.invalidateStore(2, 4) // bytes 2..5: words 0 and 1
	if pg.valid[0]&0b11 != 0 {
		t.Errorf("slots 0,1 still valid after unaligned store: %#x", pg.valid[0])
	}
	if pg.valid[0]&0b100 == 0 {
		t.Error("slot 2 was wrongly invalidated")
	}

	// Aligned word store touches exactly one slot.
	pg.valid[0] = ^uint64(0)
	m.invalidateStore(8, 4)
	if pg.valid[0]&(1<<2) != 0 {
		t.Error("slot 2 still valid after aligned store")
	}
	if pg.valid[0]&(1<<1|1<<3) != 1<<1|1<<3 {
		t.Error("neighbouring slots wrongly invalidated")
	}

	// Halfword store within one word does not touch the next slot.
	pg.valid[0] = ^uint64(0)
	m.invalidateStore(6, 2) // bytes 6..7: word 1 only
	if pg.valid[0]&(1<<1) != 0 {
		t.Error("slot 1 still valid after halfword store")
	}
	if pg.valid[0]&(1<<2) == 0 {
		t.Error("slot 2 wrongly invalidated by in-word halfword store")
	}

	// Page-crossing unaligned store invalidates the tail of one page
	// and the head of the next.
	pg.valid[15] = ^uint64(0)
	pg2 := m.execPage(0x1000)
	pg2.valid[0] = ^uint64(0)
	m.invalidateStore(0xFFE, 4) // bytes 0xFFE..0x1001
	if pg.valid[15]&(1<<63) != 0 {
		t.Error("last slot of first page still valid")
	}
	if pg2.valid[0]&1 != 0 {
		t.Error("first slot of second page still valid")
	}
}
