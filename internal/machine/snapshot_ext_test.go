// Snapshot capture/restore tests: a restored machine must be
// indistinguishable from the original — including TLB replacement
// recency — and restoring over a machine that previously executed
// DIFFERENT code must invalidate its decoded-page cache.
package machine_test

import (
	"testing"

	"repro/internal/guest"
	"repro/internal/machine"
)

// bootGuest builds a machine running the guest kernel with workload w.
func bootGuest(cfg machine.Config, w guest.Workload) *machine.Machine {
	p := guest.Program()
	m := machine.New(cfg)
	m.LoadProgram(p.Origin, p.Words, 0)
	guest.Configure(m, w)
	return m
}

// compareMachines asserts full observable equality.
func compareMachines(t *testing.T, tag string, a, b *machine.Machine) {
	t.Helper()
	if a.Digest() != b.Digest() {
		t.Fatalf("%s: digests diverge: %#x vs %#x (pc %#x vs %#x)", tag, a.Digest(), b.Digest(), a.PC, b.PC)
	}
	if a.DigestMemory() != b.DigestMemory() {
		t.Fatalf("%s: memory digests diverge", tag)
	}
	if a.Cycles() != b.Cycles() {
		t.Fatalf("%s: cycles diverge: %d vs %d", tag, a.Cycles(), b.Cycles())
	}
	if a.Stats != b.Stats {
		t.Fatalf("%s: stats diverge:\n  a: %+v\n  b: %+v", tag, a.Stats, b.Stats)
	}
	if a.TLB.Stats != b.TLB.Stats {
		t.Fatalf("%s: TLB stats diverge:\n  a: %+v\n  b: %+v", tag, a.TLB.Stats, b.TLB.Stats)
	}
}

// TestCaptureRestoreMidRun captures a machine mid-workload, restores
// into a fresh machine, and drives both onward in lockstep: every
// subsequent chunk must stay bit-identical (registers, memory, stats,
// TLB replacement behaviour).
func TestCaptureRestoreMidRun(t *testing.T) {
	cfg := machine.Config{MemBytes: 1 << 20, TLBSize: 8}
	src := bootGuest(cfg, guest.MemoryStride(5000)) // TLB-pressure workload
	runChunk(src, 100_000)
	if src.Halted() {
		t.Fatal("workload finished before the capture point")
	}

	dst := machine.New(cfg)
	if err := dst.RestoreState(src.CaptureState()); err != nil {
		t.Fatal(err)
	}
	compareMachines(t, "at restore", src, dst)

	for i := 0; i < 40 && !src.Halted(); i++ {
		runChunk(src, 5_000)
		runChunk(dst, 5_000)
		compareMachines(t, "lockstep", src, dst)
	}
}

// TestCaptureIsReadOnly pins that capturing does not perturb the
// source: two identical machines, one captured mid-run, must remain in
// lockstep.
func TestCaptureIsReadOnly(t *testing.T) {
	cfg := machine.Config{MemBytes: 1 << 20, TLBSize: 8}
	a := bootGuest(cfg, guest.CPUIntensive(3000))
	b := bootGuest(cfg, guest.CPUIntensive(3000))
	for i := 0; i < 30 && !a.Halted(); i++ {
		runChunk(a, 10_000)
		runChunk(b, 10_000)
		_ = a.CaptureState()
		compareMachines(t, "after capture", a, b)
	}
}

// TestRestoreInvalidatesDecodedPages pins the decoded-page-cache
// safety of restore: the target machine has EXECUTED (and therefore
// decoded) different code at the same addresses; after restore it must
// fetch the restored bytes, not dispatch stale decoded images.
func TestRestoreInvalidatesDecodedPages(t *testing.T) {
	cfg := machine.Config{MemBytes: 1 << 20}
	src := bootGuest(cfg, guest.CPUIntensive(500))
	runChunk(src, 60_000)

	// The target ran a DIFFERENT workload: same kernel addresses, but
	// its decoded pages reflect other execution paths and ABI state.
	dst := bootGuest(cfg, guest.DiskWrite(2, 512))
	runChunk(dst, 30_000)

	if err := dst.RestoreState(src.CaptureState()); err != nil {
		t.Fatal(err)
	}
	compareMachines(t, "at restore", src, dst)
	for i := 0; i < 20 && !src.Halted(); i++ {
		runChunk(src, 10_000)
		runChunk(dst, 10_000)
		compareMachines(t, "lockstep", src, dst)
	}
	if !src.Halted() || !dst.Halted() {
		t.Fatalf("workload did not finish (src=%v dst=%v)", src.Halted(), dst.Halted())
	}
}

// TestRestoreRejectsMismatch pins the compatibility checks.
func TestRestoreRejectsMismatch(t *testing.T) {
	src := machine.New(machine.Config{MemBytes: 1 << 20, TLBSize: 8})
	s := src.CaptureState()

	if err := machine.New(machine.Config{MemBytes: 2 << 20, TLBSize: 8}).RestoreState(s); err == nil {
		t.Fatal("restore accepted a RAM-size mismatch")
	}
	if err := machine.New(machine.Config{MemBytes: 1 << 20, TLBSize: 16}).RestoreState(s); err == nil {
		t.Fatal("restore accepted a TLB-geometry mismatch")
	}
	if err := machine.New(machine.Config{MemBytes: 1 << 20, TLBSize: 8, TLBPolicy: "roundrobin"}).RestoreState(s); err == nil {
		t.Fatal("restore accepted a TLB-policy mismatch")
	}

	rnd := machine.New(machine.Config{MemBytes: 1 << 20, TLBSize: 8, TLBPolicy: "random"})
	if err := rnd.RestoreState(rnd.CaptureState()); err == nil {
		t.Fatal("restore accepted the chip-private random TLB policy")
	}
}

// TestCaptureRestoreRoundRobin covers the non-default deterministic
// policy's cursor state.
func TestCaptureRestoreRoundRobin(t *testing.T) {
	cfg := machine.Config{MemBytes: 1 << 20, TLBSize: 8, TLBPolicy: "roundrobin"}
	src := bootGuest(cfg, guest.MemoryStride(100))
	runChunk(src, 120_000)
	dst := machine.New(cfg)
	if err := dst.RestoreState(src.CaptureState()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20 && !src.Halted(); i++ {
		runChunk(src, 5_000)
		runChunk(dst, 5_000)
		compareMachines(t, "lockstep", src, dst)
	}
}
