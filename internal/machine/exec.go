package machine

import (
	"repro/internal/isa"
)

// Step executes at most one instruction and reports the outcome. On a
// trap result, architected state is unchanged (the faulting instruction
// did not retire) and the caller must dispatch the trap (DeliverTrap for
// hardware behaviour, or hypervisor emulation). Asynchronous conditions
// are checked before fetch, in priority order:
//
//  1. recovery-counter expiry (epoch boundary — highest priority so that
//     epochs end at exact instruction counts),
//  2. unmasked external interrupts (when PSW.I is set).
func (m *Machine) Step() StepResult {
	if m.halted {
		return StepResult{Halted: true}
	}
	// 1. Recovery counter: traps when it has counted down to zero.
	if m.PSW&isa.PSWR != 0 && int32(m.CRs[isa.CRRCTR]) <= 0 {
		m.Stats.Traps++
		return StepResult{Trap: isa.TrapRecovery}
	}
	// 2. External interrupts.
	if m.PSW&isa.PSWI != 0 && m.IRQPending() {
		m.Stats.Traps++
		return StepResult{Trap: isa.TrapExtIntr, ISR: m.CRs[isa.CREIRR] & m.CRs[isa.CREIEM]}
	}
	// Fetch.
	if m.PC%4 != 0 {
		m.Stats.Traps++
		return StepResult{Trap: isa.TrapAlign, IOR: m.PC}
	}
	pa, tr := m.translate(m.PC, accessExec)
	if tr != isa.TrapNone {
		m.Stats.Traps++
		return StepResult{Trap: tr, IOR: m.PC}
	}
	if m.InMMIO(pa) {
		m.Stats.Traps++
		return StepResult{Trap: isa.TrapMachine, IOR: m.PC}
	}
	w, tr := m.loadPhys(pa, 4)
	if tr != isa.TrapNone {
		m.Stats.Traps++
		return StepResult{Trap: tr, IOR: m.PC}
	}
	in, ok := m.decode(w)
	if !ok {
		m.Stats.Traps++
		return StepResult{Trap: isa.TrapIllegal, ISR: w, IOR: m.PC}
	}
	// Privilege check.
	if isa.Privileged(in.Op) && m.PL() != 0 {
		m.Stats.Traps++
		return StepResult{Trap: isa.TrapPriv, ISR: uint32(in.Op), IOR: m.PC, Inst: in, Raw: w}
	}
	if m.execute(in, w) {
		return StepResult{}
	}
	res := m.tres
	if res.Trap != isa.TrapNone {
		res.Inst, res.Raw = in, w
	}
	return res
}

// retire finalizes a successfully executed instruction: advances counters
// and ticks the interval timer and recovery counter.
func (m *Machine) retire() {
	m.cycles++
	m.Stats.Instructions++
	// Interval timer: decrements once per retired instruction while
	// nonzero; raises external interrupt line 0 when it reaches zero.
	if t := m.CRs[isa.CRITMR]; t != 0 {
		t--
		m.CRs[isa.CRITMR] = t
		if t == 0 {
			m.RaiseIRQ(0)
		}
	}
	// Recovery counter: decrements once per retired instruction while
	// enabled. The trap fires before the NEXT instruction (see Step).
	if m.PSW&isa.PSWR != 0 {
		m.CRs[isa.CRRCTR]--
	}
}

// setReg writes a register, discarding writes to r0.
func (m *Machine) setReg(r isa.Reg, v uint32) {
	if r != isa.RegZero {
		m.Regs[r] = v
	}
}

// reg reads a register (r0 always zero).
func (m *Machine) reg(r isa.Reg) uint32 {
	if r == isa.RegZero {
		return 0
	}
	return m.Regs[r]
}

// okAt retires the current instruction with next as the new PC. It
// returns true so that execute's common arms stay a single expression.
func (m *Machine) okAt(next uint32) bool {
	m.PC = next
	m.retire()
	return true
}

// trapAt reports a synchronous trap (architected state unchanged),
// staging the detail in m.tres.
func (m *Machine) trapAt(t isa.Trap, isr, ior uint32) bool {
	m.Stats.Traps++
	m.tres = StepResult{Trap: t, ISR: isr, IOR: ior}
	return false
}

// execute runs a decoded instruction. PC still points at it. It returns
// true for plain retirement — the overwhelmingly common outcome, kept
// free of any result-struct traffic for the batched executor's sake —
// and false when the caller must consult m.tres for a trap, HALT, WFI
// idle, or DIAG report.
func (m *Machine) execute(in isa.Inst, raw uint32) bool {
	next := m.PC + 4

	switch in.Op {
	case isa.OpADD:
		m.setReg(in.Rd, m.reg(in.R1)+m.reg(in.R2))
		return m.okAt(next)
	case isa.OpSUB:
		m.setReg(in.Rd, m.reg(in.R1)-m.reg(in.R2))
		return m.okAt(next)
	case isa.OpAND:
		m.setReg(in.Rd, m.reg(in.R1)&m.reg(in.R2))
		return m.okAt(next)
	case isa.OpOR:
		m.setReg(in.Rd, m.reg(in.R1)|m.reg(in.R2))
		return m.okAt(next)
	case isa.OpXOR:
		m.setReg(in.Rd, m.reg(in.R1)^m.reg(in.R2))
		return m.okAt(next)
	case isa.OpSLL:
		m.setReg(in.Rd, m.reg(in.R1)<<(m.reg(in.R2)&31))
		return m.okAt(next)
	case isa.OpSRL:
		m.setReg(in.Rd, m.reg(in.R1)>>(m.reg(in.R2)&31))
		return m.okAt(next)
	case isa.OpSRA:
		m.setReg(in.Rd, uint32(int32(m.reg(in.R1))>>(m.reg(in.R2)&31)))
		return m.okAt(next)
	case isa.OpSLT:
		m.setReg(in.Rd, b2u(int32(m.reg(in.R1)) < int32(m.reg(in.R2))))
		return m.okAt(next)
	case isa.OpSLTU:
		m.setReg(in.Rd, b2u(m.reg(in.R1) < m.reg(in.R2)))
		return m.okAt(next)
	case isa.OpMUL:
		m.setReg(in.Rd, m.reg(in.R1)*m.reg(in.R2))
		return m.okAt(next)
	case isa.OpDIV:
		d := int32(m.reg(in.R2))
		if d == 0 {
			return m.trapAt(isa.TrapArith, raw, m.PC)
		}
		n := int32(m.reg(in.R1))
		if n == -1<<31 && d == -1 {
			m.setReg(in.Rd, uint32(n)) // overflow: defined as saturating
		} else {
			m.setReg(in.Rd, uint32(n/d))
		}
		return m.okAt(next)
	case isa.OpREM:
		d := int32(m.reg(in.R2))
		if d == 0 {
			return m.trapAt(isa.TrapArith, raw, m.PC)
		}
		n := int32(m.reg(in.R1))
		if n == -1<<31 && d == -1 {
			m.setReg(in.Rd, 0)
		} else {
			m.setReg(in.Rd, uint32(n%d))
		}
		return m.okAt(next)

	case isa.OpADDI:
		m.setReg(in.Rd, m.reg(in.R1)+uint32(in.Imm))
		return m.okAt(next)
	case isa.OpANDI:
		m.setReg(in.Rd, m.reg(in.R1)&uint32(in.Imm))
		return m.okAt(next)
	case isa.OpORI:
		m.setReg(in.Rd, m.reg(in.R1)|uint32(in.Imm))
		return m.okAt(next)
	case isa.OpXORI:
		m.setReg(in.Rd, m.reg(in.R1)^uint32(in.Imm))
		return m.okAt(next)
	case isa.OpSLTI:
		m.setReg(in.Rd, b2u(int32(m.reg(in.R1)) < in.Imm))
		return m.okAt(next)
	case isa.OpSLTIU:
		m.setReg(in.Rd, b2u(m.reg(in.R1) < uint32(in.Imm)))
		return m.okAt(next)
	case isa.OpSLLI:
		m.setReg(in.Rd, m.reg(in.R1)<<uint32(in.Imm))
		return m.okAt(next)
	case isa.OpSRLI:
		m.setReg(in.Rd, m.reg(in.R1)>>uint32(in.Imm))
		return m.okAt(next)
	case isa.OpSRAI:
		m.setReg(in.Rd, uint32(int32(m.reg(in.R1))>>uint32(in.Imm)))
		return m.okAt(next)
	case isa.OpLUI:
		m.setReg(in.Rd, uint32(in.Imm)<<11)
		return m.okAt(next)

	case isa.OpLDW, isa.OpLDH, isa.OpLDB:
		size := 4
		switch in.Op {
		case isa.OpLDH:
			size = 2
		case isa.OpLDB:
			size = 1
		}
		va := m.reg(in.R1) + uint32(in.Imm)
		if va%uint32(size) != 0 {
			return m.trapAt(isa.TrapAlign, 0, va)
		}
		pa, tr := m.translate(va, accessRead)
		if tr != isa.TrapNone {
			return m.trapAt(tr, 0, va)
		}
		v, tr := m.loadPhys(pa, size)
		if tr != isa.TrapNone {
			return m.trapAt(tr, 0, va)
		}
		m.setReg(in.Rd, v)
		m.Stats.Loads++
		return m.okAt(next)

	case isa.OpSTW, isa.OpSTH, isa.OpSTB:
		size := 4
		switch in.Op {
		case isa.OpSTH:
			size = 2
		case isa.OpSTB:
			size = 1
		}
		va := m.reg(in.R1) + uint32(in.Imm)
		if va%uint32(size) != 0 {
			return m.trapAt(isa.TrapAlign, 0, va)
		}
		pa, tr := m.translate(va, accessWrite)
		if tr != isa.TrapNone {
			return m.trapAt(tr, 0, va)
		}
		if tr := m.storePhys(pa, size, m.reg(in.Rd)); tr != isa.TrapNone {
			return m.trapAt(tr, 0, va)
		}
		m.Stats.Stores++
		return m.okAt(next)

	case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU:
		a, b := m.reg(in.R1), m.reg(in.R2)
		var take bool
		switch in.Op {
		case isa.OpBEQ:
			take = a == b
		case isa.OpBNE:
			take = a != b
		case isa.OpBLT:
			take = int32(a) < int32(b)
		case isa.OpBGE:
			take = int32(a) >= int32(b)
		case isa.OpBLTU:
			take = a < b
		case isa.OpBGEU:
			take = a >= b
		}
		if take {
			next = m.PC + 4 + uint32(in.Imm)*4
		}
		m.Stats.Branches++
		return m.okAt(next)

	case isa.OpBL:
		// Branch and link. Like PA-RISC, the CURRENT PRIVILEGE LEVEL is
		// deposited in the low two bits of the return address (§3.1 of
		// the paper: code that assumes these bits are zero misbehaves
		// when its privilege level is virtualized).
		m.setReg(in.Rd, (m.PC+4)|m.PL())
		next = m.PC + 4 + uint32(in.Imm)*4
		m.Stats.Branches++
		return m.okAt(next)

	case isa.OpBV:
		next = m.reg(in.R1) &^ 3
		m.Stats.Branches++
		return m.okAt(next)

	case isa.OpGATE:
		// Gateway: deposits the return address (with privilege bits, like
		// BL) and traps to the Gate vector, promoting to PL 0 via the
		// interruption sequence. The kernel's gate handler dispatches.
		m.setReg(in.Rd, (m.PC+4)|m.PL())
		return m.trapAt(isa.TrapGate, 0, m.PC)

	case isa.OpMFCTL:
		m.setReg(in.Rd, m.ReadCR(isa.CR(in.Imm)))
		m.Stats.Privileged++
		return m.okAt(next)

	case isa.OpMTCTL:
		m.WriteCR(isa.CR(in.Imm), m.reg(in.R1))
		m.Stats.Privileged++
		return m.okAt(next)

	case isa.OpRFI:
		m.PSW = m.CRs[isa.CRIPSW] &^ isa.PSWDefect
		m.PC = m.CRs[isa.CRIIA]
		m.Stats.Privileged++
		m.retire()
		return true

	case isa.OpBREAK:
		return m.trapAt(isa.TrapBreak, uint32(in.Imm), m.PC)

	case isa.OpHALT:
		m.halted = true
		m.PC = next
		m.Stats.Privileged++
		m.retire()
		m.tres = StepResult{Halted: true}
		return false

	case isa.OpWFI:
		// Wait-for-interrupt: if an interrupt line is already raised the
		// instruction completes immediately; otherwise the caller must
		// idle the processor until RaiseIRQ. Either way WFI retires.
		m.PC = next
		m.Stats.Environment++
		m.retire()
		m.tres = StepResult{Idle: !m.IRQRaised()}
		return false

	case isa.OpITLBI:
		v := m.reg(in.R1)
		m.TLB.Insert(TLBEntry{
			VPN:   v >> isa.PageShift,
			PPN:   m.reg(in.R2) >> isa.PageShift,
			Flags: v & isa.TLBPermMask,
		})
		m.Stats.Privileged++
		return m.okAt(next)

	case isa.OpPTLB:
		m.TLB.Purge()
		m.Stats.Privileged++
		return m.okAt(next)

	case isa.OpPROBE:
		va := m.reg(in.R1)
		kind := accessRead
		if in.Imm == 1 {
			kind = accessWrite
		}
		if m.PSW&isa.PSWV == 0 {
			allowed := !m.InMMIO(va) || m.PL() == 0
			m.setReg(in.Rd, b2u(allowed))
			return m.okAt(next)
		}
		e, found := m.TLB.Probe(va >> isa.PageShift)
		if !found {
			return m.trapAt(isa.TrapDTLBMiss, 0, va)
		}
		m.setReg(in.Rd, b2u(permitted(e, kind, m.PL())))
		return m.okAt(next)

	case isa.OpDIAG:
		m.PC = next
		m.Stats.Privileged++
		m.retire()
		m.tres = StepResult{Diag: uint32(in.Imm) + 1}
		return false

	case isa.OpMFTOD:
		m.setReg(in.Rd, m.TOD())
		m.Stats.Environment++
		return m.okAt(next)

	case isa.OpNOP:
		return m.okAt(next)
	}
	return m.trapAt(isa.TrapIllegal, raw, m.PC)
}

// b2u converts a bool to 0/1.
func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
