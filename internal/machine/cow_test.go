// COW base-image tests: shards sharing one immutable image must be
// perfectly isolated (differential against private RAM, including
// self-modifying code that forces decode invalidation across the COW
// fault), snapshots must round-trip across the sharing boundary, and a
// thousand shards must cost a small fraction of a private RAM copy
// each.
package machine_test

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/asm"
	"repro/internal/machine"
)

// smcProgram is a self-modifying loop whose behavior is steered by a
// parameter block on a separate page: two instruction variants are
// alternately stored over an executing slot, so every iteration forces
// a COW-aware decode invalidation of the code page.
func smcProgram(t *testing.T) *asm.Program {
	t.Helper()
	w1 := cowWord(t, "addi r3, r3, 1")
	w2 := cowWord(t, "xor  r3, r3, r5")
	src := fmt.Sprintf(`
		la   r10, params
		ldw  r7, 0(r10)   ; variant A instruction word
		ldw  r8, 4(r10)   ; variant B instruction word
		ldw  r5, 8(r10)   ; iteration count
		la   r6, site
	loop:
		stw  r7, 0(r6)
	site:
		nop              ; overwritten by the store two words back
		stw  r8, 0(r6)
		stw  r3, 12(r10) ; scribble the running value next to the params
		xor  r7, r7, r8
		xor  r8, r7, r8
		xor  r7, r7, r8
		addi r5, r5, -1
		bne  r5, r0, loop
		halt
	.org 0x2000
	params:
		.word %#x, %#x, 0, 0
	`, w1, w2)
	p, err := asm.Assemble("cow.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func cowWord(t *testing.T, src string) uint32 {
	t.Helper()
	p, err := asm.Assemble("word.s", src)
	if err != nil {
		t.Fatal(err)
	}
	return p.Words[0]
}

// imageFor builds (and interns) a base image holding the program in a
// memBytes-sized RAM.
func imageFor(p *asm.Program, memBytes uint32) *machine.BaseImage {
	flat := make([]byte, memBytes)
	for i, w := range p.Words {
		binary.LittleEndian.PutUint32(flat[p.Origin+uint32(4*i):], w)
	}
	return machine.InternImage(flat)
}

// boot creates a machine for the program — COW-backed when img is
// non-nil, private otherwise — and loads/starts the program.
func bootCOW(p *asm.Program, img *machine.BaseImage, memBytes uint32) *machine.Machine {
	m := machine.New(machine.Config{Image: img, MemBytes: memBytes})
	m.LoadProgram(p.Origin, p.Words, p.Origin)
	return m
}

// configure writes a shard's divergent parameters (iteration count and
// a per-shard xor seed in r5's slot via the variant words' data page).
func configureShard(m *machine.Machine, iters uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], iters)
	m.WriteBytes(0x2000+8, b[:])
}

func runToHalt(t *testing.T, m *machine.Machine, max uint64) {
	t.Helper()
	for !m.Halted() && m.Cycles() < max {
		m.Run(10_000)
	}
	if !m.Halted() {
		t.Fatalf("no halt within %d cycles (PC=%#x)", max, m.PC)
	}
}

// TestCOWIsolationDifferential runs two shards off ONE base image with
// divergent self-modifying workloads, alongside a private-RAM control
// for each: every shard's final memory digest must be byte-identical
// to its control's, the shards must actually have diverged from each
// other, and the base image must come out untouched.
func TestCOWIsolationDifferential(t *testing.T) {
	p := smcProgram(t)
	const mem = 1 << 20
	img := imageFor(p, mem)
	pristine := bootCOW(p, img, mem).DigestMemory()

	type shard struct {
		iters uint32
		cow   *machine.Machine
		priv  *machine.Machine
	}
	shards := []shard{{iters: 40}, {iters: 173}}
	for i := range shards {
		s := &shards[i]
		s.cow = bootCOW(p, img, mem)
		s.priv = bootCOW(p, nil, mem)
		configureShard(s.cow, s.iters)
		configureShard(s.priv, s.iters)
	}
	for i := range shards {
		s := &shards[i]
		runToHalt(t, s.cow, 4_000_000)
		runToHalt(t, s.priv, 4_000_000)
		if got, want := s.cow.DigestMemory(), s.priv.DigestMemory(); got != want {
			t.Fatalf("shard %d: COW memory digest %#x, private control %#x", i, got, want)
		}
		if s.cow.Digest() != s.priv.Digest() {
			t.Fatalf("shard %d: full state digest diverges from private control", i)
		}
		if s.cow.SharedPages() == 0 {
			t.Fatalf("shard %d: no pages left shared — COW never engaged", i)
		}
	}
	if shards[0].cow.DigestMemory() == shards[1].cow.DigestMemory() {
		t.Fatal("divergent workloads produced identical memory — the differential is vacuous")
	}
	// The base image is immutable: a shard booted after the others ran
	// sees exactly the pristine contents.
	if got := bootCOW(p, img, mem).DigestMemory(); got != pristine {
		t.Fatalf("base image mutated by shard runs: digest %#x, pristine %#x", got, pristine)
	}
}

// TestCOWSnapshotRoundTrip captures a COW-backed machine mid-run
// (pages split between shared and privatized) and restores it onto a
// fresh COW machine AND onto a private machine: both must match the
// source byte-for-byte, now and at halt.
func TestCOWSnapshotRoundTrip(t *testing.T) {
	p := smcProgram(t)
	const mem = 1 << 20
	img := imageFor(p, mem)

	src := bootCOW(p, img, mem)
	configureShard(src, 200)
	for src.Cycles() < 500 && !src.Halted() {
		src.Step()
	}
	if src.Halted() {
		t.Fatal("program halted before the mid-run capture point")
	}
	st := src.CaptureState()

	cow := bootCOW(p, img, mem)
	if err := cow.RestoreState(st); err != nil {
		t.Fatalf("restore onto COW machine: %v", err)
	}
	priv := bootCOW(p, nil, mem)
	if err := priv.RestoreState(st); err != nil {
		t.Fatalf("restore onto private machine: %v", err)
	}
	for name, m := range map[string]*machine.Machine{"cow": cow, "private": priv} {
		if m.Digest() != src.Digest() || m.DigestMemory() != src.DigestMemory() {
			t.Fatalf("restored %s machine differs from source before resuming", name)
		}
	}
	if cow.SharedPages() == 0 {
		t.Fatal("restore privatized every page — the re-share path never engaged")
	}

	// All three continue in lockstep to halt.
	for !src.Halted() {
		src.Step()
		cow.Step()
		priv.Step()
		if src.Digest() != cow.Digest() || src.Digest() != priv.Digest() {
			t.Fatalf("digests diverge at cycle %d", src.Cycles())
		}
	}
	if !cow.Halted() || !priv.Halted() {
		t.Fatal("restored machines did not halt with the source")
	}
	if src.DigestMemory() != cow.DigestMemory() || src.DigestMemory() != priv.DigestMemory() {
		t.Fatal("final memory digests diverge")
	}
}

// TestThousandSharedMachines is the fleet-scale acceptance check: 1000
// machines boot off one 8 MiB base image, each costing a small
// fraction of a private RAM copy, all byte-identical to a private
// control.
func TestThousandSharedMachines(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-machine boot is not -short material")
	}
	p := smcProgram(t)
	const mem = 8 << 20
	img := imageFor(p, mem)
	control := bootCOW(p, nil, mem)
	want := control.DigestMemory()

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	const n = 1000
	ms := make([]*machine.Machine, n)
	for i := range ms {
		ms[i] = bootCOW(p, img, mem)
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	perShard := (after.HeapAlloc - before.HeapAlloc) / n
	// A private copy is 8 MiB of RAM alone; shared shards carry only
	// page tables and the machine struct. Allow 1/8 of private as a
	// generous ceiling (observed ~tens of KiB).
	if perShard > mem/8 {
		t.Fatalf("per-shard heap %d bytes — not a small fraction of the %d-byte private copy", perShard, mem)
	}
	t.Logf("heap per shard: %d bytes (private copy: %d)", perShard, mem)

	for _, i := range []int{0, 1, n / 2, n - 1} {
		if got := ms[i].DigestMemory(); got != want {
			t.Fatalf("shard %d boots with digest %#x, private control %#x", i, got, want)
		}
	}
	// Dirtying one shard must not leak into its neighbors or the image.
	ms[0].WriteBytes(0x3000, []byte{0xde, 0xad, 0xbe, 0xef})
	if got := ms[1].DigestMemory(); got != want {
		t.Fatal("write to shard 0 leaked into shard 1")
	}
	for _, m := range ms {
		m.Release()
	}
}
