// Package machine implements the PA-lite processor: a deterministic
// interpreter for the instruction set defined in internal/isa, with four
// privilege levels, a software-managed TLB, a recovery counter, an
// interval timer, a time-of-day clock, and a memory-mapped I/O window.
//
// The machine is a passive state object: Step executes one instruction
// and reports what happened (normal retirement, a trap, HALT, WFI). The
// caller — the bare-metal platform driver or the hypervisor — decides how
// traps are dispatched. DeliverTrap implements the hardware interruption
// sequence (save PSW/PC, demote to PL 0, jump to the vector); a
// hypervisor instead intercepts traps and emulates or reflects them.
package machine

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sync/atomic"

	"repro/internal/isa"
)

// accessKind distinguishes memory access types for permission checks.
type accessKind uint8

const (
	accessRead accessKind = iota
	accessWrite
	accessExec
)

// MMIOHandler is implemented by the platform's device bus: loads and
// stores that hit the MMIO window (at privilege level 0) are routed here.
// Addresses are physical and offsets within the window. Size is 1, 2 or 4
// bytes. Errors become machine checks.
type MMIOHandler interface {
	MMIOLoad(addr uint32, size int) (uint32, error)
	MMIOStore(addr uint32, size int, v uint32) error
}

// Config describes a machine instance.
type Config struct {
	// MemBytes is the physical RAM size (default 8 MiB).
	MemBytes uint32
	// MMIOBase/MMIOSize delimit the memory-mapped I/O window
	// (default 0xF0000000 + 1 MiB).
	MMIOBase uint32
	MMIOSize uint32
	// TLBSize is the number of TLB slots (default 16).
	TLBSize int
	// TLBPolicy is "lru", "roundrobin" or "random" (default "lru").
	TLBPolicy string
	// TLBSeed seeds the "random" policy; it models chip-internal
	// nondeterminism so SHOULD differ between physical processors.
	TLBSeed int64
	// CPUID is the value of the CPUID control register.
	CPUID uint32
	// TODSource supplies the time-of-day clock value (environment state,
	// typically derived from the simulation clock). If nil, TOD reads
	// return the retired-instruction count.
	TODSource func() uint32
	// NoTraces disables superblock trace dispatch for this machine: Run
	// falls back to the per-instruction fast loop. Architected state,
	// statistics and TLB behaviour are identical either way (traces are
	// a pure execution-speed layer); the switch exists for A/B
	// measurement and differential testing. See also SetTraceDispatch.
	NoTraces bool
	// Image, when set, backs RAM with a shared immutable base image:
	// pages are copy-on-write faulted on the first differing store (see
	// cow.go). MemBytes must be zero or equal to Image.Size().
	// Architected behaviour is identical to a private copy of the image.
	Image *BaseImage
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.MemBytes == 0 {
		if c.Image != nil {
			c.MemBytes = c.Image.Size()
		} else {
			c.MemBytes = 8 << 20
		}
	}
	if c.MMIOBase == 0 {
		c.MMIOBase = 0xF0000000
	}
	if c.MMIOSize == 0 {
		c.MMIOSize = 1 << 20
	}
	if c.TLBSize == 0 {
		c.TLBSize = 16
	}
	if c.TLBPolicy == "" {
		c.TLBPolicy = "lru"
	}
	return c
}

// Stats counts retired instructions by class for the performance study.
type Stats struct {
	Instructions uint64 // total retired
	Privileged   uint64 // privileged-class instructions executed at PL 0
	Environment  uint64 // environment-class instructions executed
	Loads        uint64
	Stores       uint64
	Branches     uint64
	Traps        uint64 // synchronous traps raised
}

// StepResult reports the outcome of executing (or attempting) one
// instruction.
type StepResult struct {
	// Trap is isa.TrapNone for normal retirement.
	Trap isa.Trap
	// ISR/IOR are trap detail values (trap-specific).
	ISR uint32
	IOR uint32
	// Halted is set once HALT retires; further Steps are no-ops.
	Halted bool
	// Idle is set when WFI retires with no pending interrupt; the caller
	// should advance time until an interrupt arrives.
	Idle bool
	// Diag carries the immediate of a retired DIAG instruction, plus one
	// (so zero means "no diag").
	Diag uint32
	// Inst/Raw are the decoded and raw forms of the instruction that
	// caused a synchronous trap (valid when Trap is synchronous and
	// decoding succeeded). Hypervisors use them to emulate the trapped
	// instruction without refetching.
	Inst isa.Inst
	Raw  uint32
}

// Machine is one PA-lite processor with its RAM.
type Machine struct {
	cfg Config

	// Architected state.
	Regs [isa.NumRegs]uint32
	PC   uint32
	PSW  uint32
	CRs  [isa.NumCRs]uint32

	// frames maps each physical page number to its backing frame. With
	// private RAM every frame points into flat; over a base image
	// (cfg.Image) frames start out pointing at the shared immutable
	// image and are copied private on the first differing store
	// (copy-on-write, see cow.go).
	frames []*ramPage
	// owned marks, one bit per page, frames private to this machine and
	// therefore writable in place.
	owned []uint64
	// flat is the private contiguous RAM buffer (nil over a base image).
	flat []byte
	// img is the shared base image (nil for private RAM).
	img *BaseImage
	// memSize is the physical RAM size in bytes.
	memSize uint32

	// TLB is the translation buffer (software managed).
	TLB *TLB

	// Bus receives MMIO accesses; nil means no devices (MMIO access
	// machine-checks).
	Bus MMIOHandler

	// Stats accumulates instruction counts.
	Stats Stats

	halted bool
	cycles uint64 // retired instruction count
	// tres stages the StepResult of an execute call that did not retire
	// plainly (trap, HALT, WFI, DIAG), so the common path moves no
	// result struct at all.
	tres StepResult

	// decodeCache memoizes Decode by word value (decoding is a pure
	// function of the instruction word, so self-modifying code remains
	// correct). Direct-mapped; collisions just re-decode. Step's path;
	// the batched Run path uses the per-page translation cache below.
	decodeCache [decodeCacheSize]decodeEntry

	// pages is the translation cache: lazily decoded images of physical
	// pages, indexed by physical page number (see pagecache.go). Entries
	// are invalidated by stores into the page.
	pages []*decodedPage

	// traceOn enables superblock trace dispatch in Run (see trace.go),
	// resolved at construction from Config.NoTraces and the package
	// default (SetTraceDispatch).
	traceOn bool
}

const (
	decodeCacheBits = 12
	decodeCacheSize = 1 << decodeCacheBits
)

type decodeEntry struct {
	word  uint32
	inst  isa.Inst
	valid bool
}

// decodeIndex maps an instruction word to its decode-cache slot. The
// opcode occupies the TOP six bits of the word, so a plain low-bit index
// would key on immediate bits shared by many distinct instructions and
// thrash; a multiplicative (Fibonacci) hash mixes all bits into the slot.
func decodeIndex(w uint32) uint32 {
	return (w * 0x9E3779B1) >> (32 - decodeCacheBits)
}

// decode returns the decoded form of w, via the memo cache.
func (m *Machine) decode(w uint32) (isa.Inst, bool) {
	e := &m.decodeCache[decodeIndex(w)]
	if e.valid && e.word == w {
		return e.inst, true
	}
	in, err := isa.Decode(w)
	if err != nil {
		return isa.Inst{}, false
	}
	*e = decodeEntry{word: w, inst: in, valid: true}
	return in, true
}

// New creates a machine per cfg, with all state zero and PC = 0.
func New(cfg Config) *Machine {
	cfg = cfg.withDefaults()
	var pol ReplacePolicy
	switch cfg.TLBPolicy {
	case "lru":
		pol = NewLRUPolicy(cfg.TLBSize)
	case "roundrobin":
		pol = NewRoundRobinPolicy()
	case "random":
		pol = NewRandomPolicy(cfg.TLBSeed)
	default:
		panic(fmt.Sprintf("machine: unknown TLB policy %q", cfg.TLBPolicy))
	}
	npages := int((cfg.MemBytes + isa.PageSize - 1) >> isa.PageShift)
	m := &Machine{
		cfg:     cfg,
		TLB:     NewTLB(cfg.TLBSize, pol),
		pages:   grabPages(npages),
		memSize: cfg.MemBytes,
		traceOn: !cfg.NoTraces && !traceDispatchOff.Load(),
	}
	m.frames = grabFrames(npages)
	m.owned = grabOwned((npages + 63) / 64)
	if cfg.Image != nil {
		if cfg.Image.Size() != cfg.MemBytes {
			panic(fmt.Sprintf("machine: base image is %d bytes, config wants %d", cfg.Image.Size(), cfg.MemBytes))
		}
		// COW RAM: all frames shared, no ownership bits set.
		m.img = cfg.Image
		for i := range m.frames {
			m.frames[i] = &cfg.Image.frames[i].data
		}
	} else {
		// Private RAM: one flat buffer, every page owned up front.
		m.flat = grabMem(npages << isa.PageShift)
		for i := range m.frames {
			m.frames[i] = (*ramPage)(m.flat[i<<isa.PageShift:])
		}
		for i := range m.owned {
			m.owned[i] = ^uint64(0)
		}
	}
	m.CRs[isa.CRCPUID] = cfg.CPUID
	return m
}

// MemSize returns the physical RAM size in bytes.
func (m *Machine) MemSize() uint32 { return m.memSize }

// traceDispatchOff is the package-wide default for superblock trace
// dispatch (zero value: traces on).
var traceDispatchOff atomic.Bool

// SetTraceDispatch sets the package-wide default for superblock trace
// dispatch, applied to machines created afterwards (hftbench's
// -trace=off flag). Per-machine Config.NoTraces overrides independently.
func SetTraceDispatch(on bool) { traceDispatchOff.Store(!on) }

// Config returns the machine's configuration (defaults applied).
func (m *Machine) Config() Config { return m.cfg }

// Cycles returns the number of retired instructions.
func (m *Machine) Cycles() uint64 { return m.cycles }

// Halted reports whether HALT has retired.
func (m *Machine) Halted() bool { return m.halted }

// PL returns the current privilege level (0..3).
func (m *Machine) PL() uint32 { return m.PSW & isa.PSWPLMask }

// SetPL sets the privilege level bits of the PSW.
func (m *Machine) SetPL(pl uint32) {
	m.PSW = (m.PSW &^ isa.PSWPLMask) | (pl & isa.PSWPLMask)
}

// InMMIO reports whether a physical address falls in the MMIO window.
func (m *Machine) InMMIO(pa uint32) bool {
	return pa >= m.cfg.MMIOBase && pa-m.cfg.MMIOBase < m.cfg.MMIOSize
}

// RaiseIRQ asserts external interrupt line n (0..31): sets the EIRR bit.
// Devices (via the platform) call this; the bit stays set until system
// software clears it by writing EIRR (write-1-to-clear).
func (m *Machine) RaiseIRQ(line uint) {
	m.CRs[isa.CREIRR] |= 1 << (line & 31)
}

// IRQPending reports whether any unmasked external interrupt is pending.
func (m *Machine) IRQPending() bool {
	return m.CRs[isa.CREIRR]&m.CRs[isa.CREIEM] != 0
}

// IRQRaised reports whether any interrupt line is asserted regardless of
// masking (used by WFI wake-up logic).
func (m *Machine) IRQRaised() bool { return m.CRs[isa.CREIRR] != 0 }

// ReadCR reads a control register, applying special semantics.
func (m *Machine) ReadCR(cr isa.CR) uint32 {
	switch cr {
	case isa.CRTOD:
		return m.TOD()
	default:
		return m.CRs[cr]
	}
}

// WriteCR writes a control register, applying special semantics:
// EIRR is write-1-to-clear; TOD and CPUID are read-only (writes ignored).
func (m *Machine) WriteCR(cr isa.CR, v uint32) {
	switch cr {
	case isa.CREIRR:
		m.CRs[cr] &^= v
	case isa.CRTOD, isa.CRCPUID:
		// read-only
	default:
		m.CRs[cr] = v
	}
}

// TOD returns the time-of-day clock value.
func (m *Machine) TOD() uint32 {
	if m.cfg.TODSource != nil {
		return m.cfg.TODSource()
	}
	return uint32(m.cycles)
}

// DeliverTrap performs the hardware interruption sequence: saves PSW and
// PC into IPSW/IIA, stores detail into ISR/IOR, switches to privilege
// level 0 with interrupts, translation and the recovery counter disabled,
// and jumps to the trap's vector. The bare-metal platform calls this for
// every trap; a hypervisor calls it only when reflecting a virtual trap
// into the guest (after adjusting the guest's virtual CRs).
func (m *Machine) DeliverTrap(t isa.Trap, isr, ior uint32) {
	m.CRs[isa.CRIPSW] = m.PSW
	m.CRs[isa.CRIIA] = m.PC
	m.CRs[isa.CRISR] = isr
	m.CRs[isa.CRIOR] = ior
	m.PSW &^= isa.PSWPLMask | isa.PSWI | isa.PSWV | isa.PSWR
	m.PC = m.CRs[isa.CRIVA] + uint32(t)*isa.VectorStride
}

// translate maps a virtual address to physical, checking permissions.
// With PSW.V clear, addresses are physical (PA-lite permits real-mode
// access at any PL; MMIO still requires PL 0 — enforced by the caller).
func (m *Machine) translate(va uint32, kind accessKind) (uint32, isa.Trap) {
	if m.PSW&isa.PSWV == 0 {
		return va, isa.TrapNone
	}
	vpn := va >> isa.PageShift
	e, ok := m.TLB.Lookup(vpn)
	if !ok {
		if kind == accessExec {
			return 0, isa.TrapITLBMiss
		}
		return 0, isa.TrapDTLBMiss
	}
	if !permitted(e, kind, m.PL()) {
		return 0, isa.TrapAccess
	}
	return e.PPN<<isa.PageShift | va&isa.PageMask, isa.TrapNone
}

// loadPhys reads size bytes little-endian from physical memory or MMIO.
func (m *Machine) loadPhys(pa uint32, size int) (uint32, isa.Trap) {
	if m.InMMIO(pa) {
		if m.PL() != 0 {
			return 0, isa.TrapAccess
		}
		if m.Bus == nil {
			return 0, isa.TrapMachine
		}
		v, err := m.Bus.MMIOLoad(pa-m.cfg.MMIOBase, size)
		if err != nil {
			return 0, isa.TrapMachine
		}
		return v, isa.TrapNone
	}
	if pa+uint32(size) > m.memSize || pa+uint32(size) < pa {
		return 0, isa.TrapMachine
	}
	fr := m.frames[pa>>isa.PageShift]
	off := pa & isa.PageMask
	if off+uint32(size) <= isa.PageSize {
		switch size {
		case 4:
			return binary.LittleEndian.Uint32(fr[off:]), isa.TrapNone
		case 2:
			return uint32(binary.LittleEndian.Uint16(fr[off:])), isa.TrapNone
		default:
			return uint32(fr[off]), isa.TrapNone
		}
	}
	// The access crosses a page boundary (unaligned physical access from
	// a loader or test path; guest accesses are alignment-checked first):
	// assemble byte-wise across frames.
	var v uint32
	for i := 0; i < size; i++ {
		a := pa + uint32(i)
		v |= uint32(m.frames[a>>isa.PageShift][a&isa.PageMask]) << (8 * i)
	}
	return v, isa.TrapNone
}

// storePhys writes size bytes little-endian to physical memory or MMIO.
func (m *Machine) storePhys(pa uint32, size int, v uint32) isa.Trap {
	if m.InMMIO(pa) {
		if m.PL() != 0 {
			return isa.TrapAccess
		}
		if m.Bus == nil {
			return isa.TrapMachine
		}
		if err := m.Bus.MMIOStore(pa-m.cfg.MMIOBase, size, v); err != nil {
			return isa.TrapMachine
		}
		return isa.TrapNone
	}
	if pa+uint32(size) > m.memSize || pa+uint32(size) < pa {
		return isa.TrapMachine
	}
	idx := pa >> isa.PageShift
	off := pa & isa.PageMask
	if off+uint32(size) <= isa.PageSize {
		fr := m.frames[idx]
		if !m.ownedPage(idx) {
			// COW: a store that rewrites the bytes already present leaves
			// page contents — the only machine state RAM-derived caches
			// and digests depend on — unchanged, so it is a no-op and the
			// page stays shared. This is what lets a loader replay the
			// base image over shared frames without faulting anything.
			if equalInFrame(fr, off, size, v) {
				return isa.TrapNone
			}
			fr = m.faultPage(idx)
		}
		m.invalidateStore(pa, size)
		switch size {
		case 4:
			binary.LittleEndian.PutUint32(fr[off:], v)
		case 2:
			binary.LittleEndian.PutUint16(fr[off:], uint16(v))
		default:
			fr[off] = byte(v)
		}
		return isa.TrapNone
	}
	// The store crosses a page boundary (unaligned physical store from a
	// loader or test path).
	if !m.ownedPage(idx) || !m.ownedPage(idx+1) {
		same := true
		for i := 0; i < size; i++ {
			a := pa + uint32(i)
			if m.frames[a>>isa.PageShift][a&isa.PageMask] != byte(v>>(8*i)) {
				same = false
				break
			}
		}
		if same {
			return isa.TrapNone
		}
		m.faultPage(idx)
		m.faultPage(idx + 1)
	}
	m.invalidateStore(pa, size)
	for i := 0; i < size; i++ {
		a := pa + uint32(i)
		m.frames[a>>isa.PageShift][a&isa.PageMask] = byte(v >> (8 * i))
	}
	return isa.TrapNone
}

// equalInFrame reports whether a little-endian store of v (size bytes)
// at frame offset off would leave the frame unchanged.
func equalInFrame(fr *ramPage, off uint32, size int, v uint32) bool {
	switch size {
	case 4:
		return binary.LittleEndian.Uint32(fr[off:]) == v
	case 2:
		return binary.LittleEndian.Uint16(fr[off:]) == uint16(v)
	default:
		return fr[off] == byte(v)
	}
}

// LoadPhys32 reads a word from physical RAM (no MMIO), for loaders, DMA
// and tests. Panics on out-of-range addresses.
func (m *Machine) LoadPhys32(pa uint32) uint32 {
	v, tr := m.loadPhys(pa, 4)
	if tr != isa.TrapNone {
		panic(fmt.Sprintf("machine: LoadPhys32(%#x): %v", pa, tr))
	}
	return v
}

// StorePhys32 writes a word to physical RAM, for loaders, DMA and tests.
func (m *Machine) StorePhys32(pa uint32, v uint32) {
	if tr := m.storePhys(pa, 4, v); tr != isa.TrapNone {
		panic(fmt.Sprintf("machine: StorePhys32(%#x): %v", pa, tr))
	}
}

// ReadBytes copies n bytes of physical RAM starting at pa (for DMA).
// Panics on out-of-range addresses.
func (m *Machine) ReadBytes(pa uint32, n int) []byte {
	if int64(pa)+int64(n) > int64(m.memSize) {
		panic(fmt.Sprintf("machine: ReadBytes(%#x, %d): out of range", pa, n))
	}
	out := make([]byte, n)
	dst := out
	for len(dst) > 0 {
		c := copy(dst, m.frames[pa>>isa.PageShift][pa&isa.PageMask:])
		dst = dst[c:]
		pa += uint32(c)
	}
	return out
}

// WriteBytes copies data into physical RAM at pa (for DMA and loading),
// page-wise. Owned pages take the pre-COW path (invalidate the page's
// decoded image, copy); shared pages whose covered bytes already equal
// the data stay shared and untouched, and are otherwise COW-faulted
// first.
func (m *Machine) WriteBytes(pa uint32, data []byte) {
	if int64(pa)+int64(len(data)) > int64(m.memSize) {
		panic(fmt.Sprintf("machine: WriteBytes(%#x, %d): out of range", pa, len(data)))
	}
	for len(data) > 0 {
		idx := pa >> isa.PageShift
		off := pa & isa.PageMask
		c := int(isa.PageSize - off)
		if c > len(data) {
			c = len(data)
		}
		fr := m.frames[idx]
		if !m.ownedPage(idx) {
			if bytes.Equal(fr[off:int(off)+c], data[:c]) {
				pa += uint32(c)
				data = data[c:]
				continue
			}
			fr = m.faultPage(idx)
		}
		// Whole-page invalidation, as invalidateRange did for every
		// covered page.
		if pg := m.pages[idx]; pg != nil {
			pg.valid = [instsPerPage / 64]uint64{}
			pg.dropTraces()
		}
		copy(fr[off:], data[:c])
		pa += uint32(c)
		data = data[c:]
	}
}

// LoadProgram writes an assembled image into RAM at its origin and sets
// PC to entry.
func (m *Machine) LoadProgram(origin uint32, words []uint32, entry uint32) {
	for i, w := range words {
		m.StorePhys32(origin+uint32(4*i), w)
	}
	m.PC = entry
}

// Digest returns a deterministic hash of the architected register state
// (registers, PC, PSW, non-environment control registers). Replica
// coordination uses it to detect divergence between primary and backup.
func (m *Machine) Digest() uint64 {
	h := fnv.New64a()
	var buf [4]byte
	put := func(v uint32) {
		buf[0], buf[1], buf[2], buf[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		h.Write(buf[:])
	}
	for _, r := range m.Regs {
		put(r)
	}
	put(m.PC)
	put(m.PSW)
	// Exclude environment CRs (TOD is environment; EIRR reflects device
	// lines; ITMR/RCTR are managed by the hypervisor under replication).
	for _, cr := range []isa.CR{isa.CRIVA, isa.CRISR, isa.CRIOR, isa.CRIPSW, isa.CRIIA, isa.CRPTBR} {
		put(m.CRs[cr])
	}
	return h.Sum64()
}

// DigestMemory extends Digest with a hash of all physical RAM. Expensive;
// used by integration tests at epoch boundaries.
func (m *Machine) DigestMemory() uint64 {
	h := fnv.New64a()
	for i, fr := range m.frames {
		base := uint32(i) << isa.PageShift
		n := m.memSize - base
		if n > isa.PageSize {
			n = isa.PageSize
		}
		h.Write(fr[:n])
	}
	return h.Sum64() ^ m.Digest()
}
