package machine

import "sync"

// Machine construction dominates short-lived simulation sessions: every
// hftbench figure point (and every benchmark iteration) builds a fresh
// cluster, and most of that cost is allocating — and then garbage
// collecting — the two bulk per-machine buffers: guest RAM and the
// decoded-page cache. The pools below recycle both across machine
// lifetimes. A recycled buffer is re-zeroed (RAM, page table) or
// metadata-reset (decoded pages) before reuse, so a machine built from
// recycled buffers is indistinguishable from one built fresh: recycling
// changes allocation behaviour only, never execution. The pools are
// package-global and safe for concurrent sessions (hftbench -parallel).

var (
	memPool    sync.Pool // *[]byte: private guest RAM buffers
	pagesPool  sync.Pool // *[]*decodedPage: per-machine page tables
	pagePool   sync.Pool // *decodedPage: decoded-page images
	tracePool  sync.Pool // *trace: superblock records (see trace.go)
	framesPool sync.Pool // *[]*ramPage: per-machine frame tables
	ownedPool  sync.Pool // *[]uint64: per-machine ownership bitmaps
	framePool  sync.Pool // *ramPage: COW-faulted private frames
)

// grabTrace returns an empty trace record, reusing a recycled one's ops
// capacity when available.
func grabTrace() *trace {
	if tr, _ := tracePool.Get().(*trace); tr != nil {
		tr.ops = tr.ops[:0]
		return tr
	}
	return &trace{ops: make([]traceOp, 0, 16)}
}

// putTraces recycles dropped trace records.
func putTraces(ts []*trace) {
	for _, t := range ts {
		tracePool.Put(t)
	}
}

// grabMem returns a zeroed n-byte RAM buffer, recycled when a released
// one is large enough.
func grabMem(n int) []byte {
	if p, _ := memPool.Get().(*[]byte); p != nil && cap(*p) >= n {
		s := (*p)[:n]
		clear(s)
		return s
	}
	return make([]byte, n)
}

// grabFrames returns a nil-filled frame table with n entries.
func grabFrames(n int) []*ramPage {
	if p, _ := framesPool.Get().(*[]*ramPage); p != nil && cap(*p) >= n {
		s := (*p)[:n]
		clear(s)
		return s
	}
	return make([]*ramPage, n)
}

// grabOwned returns a zeroed ownership bitmap with n words.
func grabOwned(n int) []uint64 {
	if p, _ := ownedPool.Get().(*[]uint64); p != nil && cap(*p) >= n {
		s := (*p)[:n]
		clear(s)
		return s
	}
	return make([]uint64, n)
}

// grabFrame returns a frame for a COW fault. No zeroing: the fault
// copies the full source frame over it.
func grabFrame() *ramPage {
	if fr, _ := framePool.Get().(*ramPage); fr != nil {
		return fr
	}
	return new(ramPage)
}

// grabPages returns a nil-filled page table with n entries.
func grabPages(n int) []*decodedPage {
	if p, _ := pagesPool.Get().(*[]*decodedPage); p != nil && cap(*p) >= n {
		s := (*p)[:n]
		clear(s)
		return s
	}
	return make([]*decodedPage, n)
}

// grabPage returns a decoded page ready for first use. Only the
// validity metadata of a recycled page needs resetting: insts/words are
// gated by the valid bitmap and re-decode on demand, and priv/resync
// bits are rewritten by fill alongside each valid bit.
func grabPage() *decodedPage {
	pg, _ := pagePool.Get().(*decodedPage)
	if pg == nil {
		return &decodedPage{}
	}
	pg.valid = [instsPerPage / 64]uint64{}
	clear(pg.traceAt[:])
	pg.cover = [instsPerPage / 64]uint64{}
	putTraces(pg.traces)
	pg.traces = pg.traces[:0]
	pg.gen = 0
	return pg
}

// Release returns the machine's bulk buffers to the pools and drops the
// machine's references to them. The machine must not run afterwards;
// callers that own a machine's whole lifetime (the session engine, on
// teardown) call it so the next session's machines build from recycled
// buffers instead of cold allocations.
func (m *Machine) Release() {
	if m.flat != nil {
		flat := m.flat
		m.flat = nil
		memPool.Put(&flat)
	} else if m.img != nil && m.frames != nil {
		// COW machine: recycle only the frames faulted private; shared
		// frames belong to the (immutable, interned) base image.
		for i, fr := range m.frames {
			if m.ownedPage(uint32(i)) {
				framePool.Put(fr)
			}
		}
	}
	m.img = nil
	if m.frames != nil {
		frames := m.frames
		m.frames = nil
		framesPool.Put(&frames)
	}
	if m.owned != nil {
		owned := m.owned
		m.owned = nil
		ownedPool.Put(&owned)
	}
	if m.pages != nil {
		pages := m.pages
		m.pages = nil
		for i, pg := range pages {
			if pg != nil {
				pages[i] = nil
				pagePool.Put(pg)
			}
		}
		pagesPool.Put(&pages)
	}
}
