package machine

import "sync"

// Machine construction dominates short-lived simulation sessions: every
// hftbench figure point (and every benchmark iteration) builds a fresh
// cluster, and most of that cost is allocating — and then garbage
// collecting — the two bulk per-machine buffers: guest RAM and the
// decoded-page cache. The pools below recycle both across machine
// lifetimes. A recycled buffer is re-zeroed (RAM, page table) or
// metadata-reset (decoded pages) before reuse, so a machine built from
// recycled buffers is indistinguishable from one built fresh: recycling
// changes allocation behaviour only, never execution. The pools are
// package-global and safe for concurrent sessions (hftbench -parallel).

var (
	memPool   sync.Pool // *[]byte: guest RAM buffers
	pagesPool sync.Pool // *[]*decodedPage: per-machine page tables
	pagePool  sync.Pool // *decodedPage: decoded-page images
	tracePool sync.Pool // *trace: superblock records (see trace.go)
)

// grabTrace returns an empty trace record, reusing a recycled one's ops
// capacity when available.
func grabTrace() *trace {
	if tr, _ := tracePool.Get().(*trace); tr != nil {
		tr.ops = tr.ops[:0]
		return tr
	}
	return &trace{ops: make([]traceOp, 0, 16)}
}

// putTraces recycles dropped trace records.
func putTraces(ts []*trace) {
	for _, t := range ts {
		tracePool.Put(t)
	}
}

// grabMem returns a zeroed n-byte RAM buffer, recycled when a released
// one is large enough.
func grabMem(n int) []byte {
	if p, _ := memPool.Get().(*[]byte); p != nil && cap(*p) >= n {
		s := (*p)[:n]
		clear(s)
		return s
	}
	return make([]byte, n)
}

// grabPages returns a nil-filled page table with n entries.
func grabPages(n int) []*decodedPage {
	if p, _ := pagesPool.Get().(*[]*decodedPage); p != nil && cap(*p) >= n {
		s := (*p)[:n]
		clear(s)
		return s
	}
	return make([]*decodedPage, n)
}

// grabPage returns a decoded page ready for first use. Only the
// validity metadata of a recycled page needs resetting: insts/words are
// gated by the valid bitmap and re-decode on demand, and priv/resync
// bits are rewritten by fill alongside each valid bit.
func grabPage() *decodedPage {
	pg, _ := pagePool.Get().(*decodedPage)
	if pg == nil {
		return &decodedPage{}
	}
	pg.valid = [instsPerPage / 64]uint64{}
	clear(pg.traceAt[:])
	pg.cover = [instsPerPage / 64]uint64{}
	putTraces(pg.traces)
	pg.traces = pg.traces[:0]
	pg.gen = 0
	return pg
}

// Release returns the machine's bulk buffers to the pools and drops the
// machine's references to them. The machine must not run afterwards;
// callers that own a machine's whole lifetime (the session engine, on
// teardown) call it so the next session's machines build from recycled
// buffers instead of cold allocations.
func (m *Machine) Release() {
	if m.Mem != nil {
		mem := m.Mem
		m.Mem = nil
		memPool.Put(&mem)
	}
	if m.pages != nil {
		pages := m.pages
		m.pages = nil
		for i, pg := range pages {
			if pg != nil {
				pages[i] = nil
				pagePool.Put(pg)
			}
		}
		pagesPool.Put(&pages)
	}
}
