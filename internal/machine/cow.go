package machine

// Copy-on-write guest RAM. A fleet of machines booting the same kernel
// image should pay for that image once, not once per machine: RAM is
// page-granular, every page frame is a pointer, and a machine built
// over a BaseImage starts with every frame pointing into the shared,
// immutable image. The first store that CHANGES a page's contents
// faults the page — copies the frame private and flips its ownership
// bit — after which the page behaves exactly like private RAM. A store
// that writes back the bytes already present is a no-op: page contents
// are unchanged, so nothing observable (decoded pages, traces, digests)
// can depend on it. That rule is what lets the boot loader replay the
// kernel image over a shared base without faulting a single page.
//
// Frames are interned by content across all base images (64-bit FNV-1a
// hash, full compare on collision), so a thousand shards booting the
// same kernel share one copy of each page — and all-zero data pages
// collapse to a single frame fleet-wide. Each shared frame also carries
// a lazily built, immutable decoded image of its instruction slots (the
// shared decoded-page cache): when a machine first executes an unfaulted
// shared page, its private decodedPage is seeded by copying the shared
// decode instead of re-decoding word by word. The copy is semantically
// identical to what lazy fill() would build — same insts, words, priv
// and resync bits — except that every decodable slot is valid up front;
// extra valid bits only skip fill calls that would have produced the
// same entries. Superblock traces stay per-machine: they are built in
// the machine's own decodedPage and never shared.
//
// Machines with private RAM allocate one flat buffer and point every
// frame into it with all ownership bits set, which reduces every path
// below to the pre-COW behaviour byte for byte.

import (
	"bytes"
	"encoding/binary"
	"sync"

	"repro/internal/isa"
)

// ramPage is one page-sized frame of guest RAM.
type ramPage = [isa.PageSize]byte

// sharedFrame is one immutable, interned page of a BaseImage plus its
// lazily built shared decoded image. The data never changes after
// interning; machines that diverge copy the frame private first.
type sharedFrame struct {
	data ramPage
	once sync.Once
	dec  *sharedDecode
}

// sharedDecode is the immutable decoded image of a shared frame: the
// subset of decodedPage that is a pure function of page contents.
type sharedDecode struct {
	insts  [instsPerPage]isa.Inst
	words  [instsPerPage]uint32
	valid  [instsPerPage / 64]uint64
	priv   [instsPerPage / 64]uint64
	resync [instsPerPage / 64]uint64
}

// decoded returns the frame's shared decode, building it on first use.
// The build mirrors fill() exactly: slots that do not decode stay
// invalid (they trap out of the fast loop on fetch), priv marks
// privileged-class instructions, resync marks the instructions that
// can invalidate hoisted fast-loop state.
func (f *sharedFrame) decoded() *sharedDecode {
	f.once.Do(func() {
		d := &sharedDecode{}
		for slot := 0; slot < instsPerPage; slot++ {
			w := binary.LittleEndian.Uint32(f.data[slot*4:])
			in, err := isa.Decode(w)
			if err != nil {
				continue
			}
			bit := uint64(1) << (slot & 63)
			d.insts[slot] = in
			d.words[slot] = w
			if isa.Privileged(in.Op) {
				d.priv[slot>>6] |= bit
			}
			switch in.Op {
			case isa.OpMTCTL, isa.OpRFI, isa.OpITLBI, isa.OpPTLB:
				d.resync[slot>>6] |= bit
			}
			d.valid[slot>>6] |= bit
		}
		f.dec = d
	})
	return f.dec
}

// copyInto seeds a fresh per-machine decodedPage from the shared
// decode. Trace state (traceAt/cover/traces/gen) is per-machine and
// already reset by grabPage.
func (d *sharedDecode) copyInto(pg *decodedPage) {
	pg.insts = d.insts
	pg.words = d.words
	pg.valid = d.valid
	pg.priv = d.priv
	pg.resync = d.resync
}

// BaseImage is an immutable guest RAM image shared read-only by any
// number of machines (Config.Image). Size need not be page-aligned;
// the last frame is zero-padded.
type BaseImage struct {
	size   uint32
	frames []*sharedFrame
}

// Size returns the image size in bytes (the RAM size of machines built
// over it).
func (img *BaseImage) Size() uint32 { return img.size }

// frameIntern deduplicates frames by content across all base images.
var frameIntern struct {
	sync.Mutex
	byHash map[uint64][]*sharedFrame
}

// internFrame returns the canonical shared frame for the given page
// contents (zero-padded to a full page).
func internFrame(data []byte) *sharedFrame {
	var page ramPage
	copy(page[:], data)
	h := fnv64a(page[:])
	frameIntern.Lock()
	defer frameIntern.Unlock()
	if frameIntern.byHash == nil {
		frameIntern.byHash = make(map[uint64][]*sharedFrame)
	}
	for _, f := range frameIntern.byHash[h] {
		if f.data == page {
			return f
		}
	}
	f := &sharedFrame{data: page}
	frameIntern.byHash[h] = append(frameIntern.byHash[h], f)
	return f
}

// fnv64a is the 64-bit FNV-1a hash (content key for frame and image
// interning; only equality after a full compare is ever trusted).
func fnv64a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// NewBaseImage interns a flat RAM image into shared frames.
func NewBaseImage(mem []byte) *BaseImage {
	npages := (len(mem) + isa.PageSize - 1) >> isa.PageShift
	img := &BaseImage{size: uint32(len(mem)), frames: make([]*sharedFrame, npages)}
	for i := 0; i < npages; i++ {
		lo := i << isa.PageShift
		hi := lo + isa.PageSize
		if hi > len(mem) {
			hi = len(mem)
		}
		img.frames[i] = internFrame(mem[lo:hi])
	}
	return img
}

// imageIntern caches whole base images by content, so every session
// booting the same kernel at the same RAM size resolves to one
// BaseImage (and one shared decode) process-wide.
var imageIntern struct {
	sync.Mutex
	byHash map[uint64][]*BaseImage
}

// InternImage returns the canonical BaseImage for a flat RAM image,
// building and caching it on first sight. Images live for the process:
// the set of distinct kernel images is small and shared by design.
func InternImage(mem []byte) *BaseImage {
	h := fnv64a(mem)
	imageIntern.Lock()
	defer imageIntern.Unlock()
	if imageIntern.byHash == nil {
		imageIntern.byHash = make(map[uint64][]*BaseImage)
	}
	for _, img := range imageIntern.byHash[h] {
		if img.size == uint32(len(mem)) && img.equalsFlat(mem) {
			return img
		}
	}
	img := NewBaseImage(mem)
	imageIntern.byHash[h] = append(imageIntern.byHash[h], img)
	return img
}

// equalsFlat reports whether the image's contents equal a flat buffer.
func (img *BaseImage) equalsFlat(mem []byte) bool {
	for i, f := range img.frames {
		lo := i << isa.PageShift
		hi := lo + isa.PageSize
		if hi > len(mem) {
			hi = len(mem)
		}
		if !bytes.Equal(f.data[:hi-lo], mem[lo:hi]) {
			return false
		}
	}
	return true
}

// ownedPage reports whether physical page idx is private to this
// machine (writable in place).
func (m *Machine) ownedPage(idx uint32) bool {
	return m.owned[idx>>6]&(1<<(idx&63)) != 0
}

// faultPage makes page idx private (the copy-on-write fault): the
// shared frame's contents are copied into a fresh frame and the
// ownership bit is set. Idempotent on pages already owned.
func (m *Machine) faultPage(idx uint32) *ramPage {
	fr := m.frames[idx]
	if m.ownedPage(idx) {
		return fr
	}
	priv := grabFrame()
	*priv = *fr
	m.frames[idx] = priv
	m.owned[idx>>6] |= 1 << (idx & 63)
	return priv
}

// SharedPages returns the number of RAM pages still backed by the
// shared base image (zero for machines with private RAM). Tests and
// fleet metrics use it to verify sharing.
func (m *Machine) SharedPages() int {
	if m.img == nil {
		return 0
	}
	n := 0
	for i := range m.frames {
		if !m.ownedPage(uint32(i)) {
			n++
		}
	}
	return n
}
