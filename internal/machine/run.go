package machine

import (
	"repro/internal/isa"
)

// RunResult reports the outcome of a batched Run call: the StepResult
// that ended the run (zero-valued on instruction-count expiry) plus the
// number of instructions that retired during the call.
type RunResult struct {
	StepResult
	// Executed is the number of instructions retired by this Run call.
	// On a trap exit it counts the instructions BEFORE the faulting one
	// (the faulting instruction did not retire), so callers can account
	// guest progress without re-reading the cycle counter.
	Executed uint64
}

// Run executes up to max instructions and returns when the machine traps,
// halts, idles on WFI, retires a DIAG, or the instruction budget expires
// (RunResult zero-valued except Executed). It is the batched equivalent
// of calling Step in a loop and produces bit-identical architected state,
// statistics, and TLB replacement behaviour — the differential tests in
// run_differential_test.go assert this — while hoisting the per-step
// work out of the hot loop:
//
//   - the recovery-counter check becomes an instruction budget computed
//     once per resync (retire still decrements CR[RCTR] per instruction);
//   - the external-interrupt check collapses to a two-load test only
//     when PSW.I is set (under a hypervisor the guest runs with real
//     interrupts disabled, so the check vanishes);
//   - fetch translation, alignment, MMIO and bounds checks are performed
//     once per executed page: the page's physical base is cached and
//     straight-line fetches read the RAM slice directly.
//
// The cached execution-page state is local to one Run call, so callers
// may freely mutate PC, PSW, CRs, the TLB, or memory between calls (as
// the hypervisor does when emulating instructions and delivering traps).
// Within a call, instructions that can invalidate hoisted state — MTCTL,
// RFI, ITLBI, PTLB — exit the fast loop and resync.
func (m *Machine) Run(max uint64) (rr RunResult) {
	if m.halted {
		rr.Halted = true
		return rr
	}
	start := m.cycles
	// fetchHits batches the per-fetch TLB hit statistic: the fast loop
	// counts fetches locally and the total lands on exit. Only the
	// total is observable (fetch recency is handled by the deferred
	// pending-touch mechanism, see TLB.flushPending).
	fetchHits := uint64(0)
	tlb := m.TLB
	defer func() {
		tlb.Stats.Hits += fetchHits
		rr.Executed = m.cycles - start
	}()

outer:
	for m.cycles-start < max {
		// Asynchronous conditions, in Step's priority order. These are
		// re-evaluated at every resync point, which by construction is
		// the only place their inputs can have changed.
		if m.PSW&isa.PSWR != 0 && int32(m.CRs[isa.CRRCTR]) <= 0 {
			m.Stats.Traps++
			rr.Trap = isa.TrapRecovery
			return rr
		}
		checkIRQ := m.PSW&isa.PSWI != 0
		if checkIRQ && m.IRQPending() {
			m.Stats.Traps++
			rr.Trap = isa.TrapExtIntr
			rr.ISR = m.CRs[isa.CREIRR] & m.CRs[isa.CREIEM]
			return rr
		}

		// Budget: how many instructions may retire before an async
		// condition can possibly fire. The recovery counter decrements
		// once per retirement, so it bounds the batch exactly.
		budget := max - (m.cycles - start)
		if m.PSW&isa.PSWR != 0 {
			if r := uint64(int32(m.CRs[isa.CRRCTR])); r < budget {
				budget = r
			}
		}

		// Establish the execution page: translate once, then fetch
		// straight-line instructions directly from the RAM slice.
		if m.PC%4 != 0 {
			m.Stats.Traps++
			rr.Trap, rr.IOR = isa.TrapAlign, m.PC
			return rr
		}
		pageVA := m.PC &^ uint32(isa.PageMask)
		var base uint32
		fetchSlot := -1 // TLB slot to touch per fetch; -1 in real mode
		if m.PSW&isa.PSWV != 0 {
			e, idx, ok := m.TLB.probeIndex(m.PC >> isa.PageShift)
			if !ok {
				m.TLB.Stats.Misses++ // the lookup Step would have made
				m.Stats.Traps++
				rr.Trap, rr.IOR = isa.TrapITLBMiss, m.PC
				return rr
			}
			if !permitted(e, accessExec, m.PL()) {
				m.TLB.touchFetch(idx) // Step's lookup hit before faulting
				m.Stats.Traps++
				rr.Trap, rr.IOR = isa.TrapAccess, m.PC
				return rr
			}
			base = e.PPN << isa.PageShift
			fetchSlot = idx
		} else {
			base = pageVA
		}
		if !m.plainRAMPage(base) {
			// The page straddles the MMIO window or the end of RAM:
			// rare, so take the exact per-instruction path for one
			// instruction and resync.
			res := m.Step()
			if res.Trap != isa.TrapNone || res.Halted || res.Idle || res.Diag != 0 {
				rr.StepResult = res
				return rr
			}
			continue
		}

		// Fast loop: dispatch straight from the page's decoded image —
		// no per-instruction translation, bounds, MMIO, alignment,
		// recovery checks, word fetch or decode probe. Stores into the
		// page (from any page) invalidate the covered slot, so
		// self-modifying code re-decodes on the next fetch.
		//
		// Fetch recency is coalesced: the execution slot becomes the
		// TLB's deferred pending touch once here, is re-deferred after
		// any instruction whose data access flushed it, and fetch hit
		// counts accumulate in fetchHits. Entries cannot be evicted
		// mid-loop (the TLB is software-managed and ITLBI/PTLB exit the
		// loop), so the slot index stays valid throughout.
		pl := m.PL()
		pg := m.execPage(base)
		hitInc := uint64(0)
		if fetchSlot >= 0 {
			hitInc = 1
			if tlb.pending != fetchSlot {
				tlb.flushPending()
				tlb.pending = fetchSlot
			}
		}
		// Superblock trace dispatch: execute whole lowered traces until
		// none applies here (see trace.go). On texStep nothing retired
		// and the per-instruction loop below must make progress before
		// trace dispatch is retried, or the two would ping-pong.
		skipTrace := false
		if m.traceOn {
			hits, ex := m.runTraces(pg, base, pageVA, fetchSlot, pl, budget, checkIRQ)
			fetchHits += hits
			switch ex {
			case texTrap:
				rr.StepResult = m.tres
				return rr
			case texResync:
				continue outer
			}
			skipTrace = true
		}
		for budget > 0 {
			if m.PC&^uint32(isa.PageMask) != pageVA {
				continue outer // page-crossing transfer: re-establish
			}
			slot := (m.PC & isa.PageMask) >> 2
			if m.traceOn && !skipTrace {
				// Back on a trace entry (e.g. after a terminator or a
				// too-small tail budget): bounce out to trace dispatch
				// if a usable trace fits what remains.
				if ti := pg.traceAt[slot]; ti != 0 && ti < traceVisited {
					if need := uint64(pg.traces[ti-1].ilen); need <= budget {
						if t := uint64(m.CRs[isa.CRITMR]); t == 0 || need <= t {
							continue outer
						}
					}
				} else if ti == traceVisited {
					// Second encounter of a marked entry inside one Run
					// call: resync so trace dispatch compiles it.
					continue outer
				}
			}
			skipTrace = false
			bit := uint64(1) << (slot & 63)
			fetchHits += hitInc
			var in isa.Inst
			var w uint32
			if pg.valid[slot>>6]&bit != 0 {
				in, w = pg.insts[slot], pg.words[slot]
			} else {
				var ok bool
				if in, w, ok = m.fill(pg, base, slot); !ok {
					m.Stats.Traps++
					rr.Trap, rr.ISR, rr.IOR = isa.TrapIllegal, w, m.PC
					return rr
				}
			}
			if pl != 0 && pg.priv[slot>>6]&bit != 0 {
				m.Stats.Traps++
				rr.Trap, rr.ISR, rr.IOR = isa.TrapPriv, uint32(in.Op), m.PC
				rr.Inst, rr.Raw = in, w
				return rr
			}
			if !m.execute(in, w) {
				res := m.tres
				if res.Trap != isa.TrapNone {
					res.Inst, res.Raw = in, w
					rr.StepResult = res
					return rr
				}
				budget--
				if res.Halted || res.Idle || res.Diag != 0 {
					rr.StepResult = res
					return rr
				}
				// A WFI that completed immediately: fall through to the
				// post-retirement checks like any other instruction.
			} else {
				budget--
			}
			if pg.resync[slot>>6]&bit != 0 {
				// Control state (CRs, PSW, TLB) may have changed:
				// resync the hoisted checks and the cached page.
				continue outer
			}
			if hitInc != 0 {
				// Re-defer the fetch touch: a data access inside execute
				// may have flushed it (the store is a no-op otherwise).
				tlb.pending = fetchSlot
			}
			if checkIRQ && m.IRQPending() {
				// The interval timer (or a device reached through
				// MMIO) raised a line mid-batch: resync so the trap
				// fires before the next instruction, as Step would.
				continue outer
			}
		}
	}
	return rr
}

// plainRAMPage reports whether the page starting at physical address base
// lies entirely within RAM and entirely outside the MMIO window, so that
// instruction fetches from it need no per-access checks.
func (m *Machine) plainRAMPage(base uint32) bool {
	end := base + isa.PageSize
	if end < base || end > m.memSize {
		return false
	}
	return base >= m.cfg.MMIOBase+m.cfg.MMIOSize || end <= m.cfg.MMIOBase
}
