package machine

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

// TestSelfModifyingCode verifies the decode memo-cache is keyed by word
// VALUE, not address: overwriting an instruction in memory must take
// effect on the next fetch.
func TestSelfModifyingCode(t *testing.T) {
	m := load(t, `
		; patch 'target' from "addi r1,r0,1" to "addi r1,r0,2", then run it
		li   r3, target
		li   r4, patch_src
		ldw  r5, 0(r4)
		stw  r5, 0(r3)
	target:
		addi r1, r0, 1
		halt
	patch_src:
		addi r1, r0, 2
	`, Config{})
	run(t, m, 50)
	if m.Regs[1] != 2 {
		t.Errorf("r1 = %d, want 2 (patched instruction must execute)", m.Regs[1])
	}
}

// TestDecodeCacheCollisions runs many distinct instruction words through
// the same machine to force cache collisions; semantics must not change.
func TestDecodeCacheCollisions(t *testing.T) {
	m := New(Config{})
	// Two words that collide in a 4096-entry direct-mapped cache:
	// identical low 12 bits as indices.
	w1 := isa.MustEncode(isa.Inst{Op: isa.OpADDI, Rd: 1, R1: 0, Imm: 5})
	w2 := w1 + decodeCacheSize // same index, different word
	// w2 must itself be decodable for the test to exercise replacement;
	// construct it properly instead: same index via equal low bits.
	w2 = isa.MustEncode(isa.Inst{Op: isa.OpADDI, Rd: 2, R1: 0, Imm: 5})
	for i := 0; i < 4; i++ {
		m.StorePhys32(uint32(8*i), w1)
		m.StorePhys32(uint32(8*i+4), w2)
	}
	m.StorePhys32(32, isa.MustEncode(isa.Inst{Op: isa.OpHALT}))
	m.PC = 0
	for !m.Halted() {
		res := m.Step()
		if res.Trap != isa.TrapNone {
			t.Fatalf("trap %v", res.Trap)
		}
	}
	if m.Regs[1] != 5 || m.Regs[2] != 5 {
		t.Errorf("r1=%d r2=%d, want 5,5", m.Regs[1], m.Regs[2])
	}
}

// TestProbeRevealsRealPrivilege is the paper's §3.1 observation for the
// probe instruction: it computes against the REAL privilege level, so a
// guest could detect virtualization ("HP-UX never detects the presence
// of our hypervisor, although if it looked, it could").
func TestProbeRevealsRealPrivilege(t *testing.T) {
	m := New(Config{})
	// Map a data page accessible only at PL 0, and a code page
	// accessible at every level (minPL 3).
	m.TLB.Insert(TLBEntry{VPN: 4, PPN: 4, Flags: isa.TLBRead}) // minPL 0
	m.PSW |= isa.PSWV
	m.TLB.Insert(TLBEntry{VPN: 0, PPN: 0,
		Flags: isa.TLBRead | isa.TLBExec | 3<<isa.TLBPLShift})
	m.Regs[1] = 4 << 12
	m.StorePhys32(0, isa.MustEncode(isa.Inst{Op: isa.OpPROBE, Rd: 3, R1: 1, Imm: 0}))
	// At real PL 0: allowed.
	m.Step()
	if m.Regs[3] != 1 {
		t.Errorf("probe at PL0 = %d, want 1", m.Regs[3])
	}
	// At real PL 1 (virtual PL 0 under a hypervisor): denied — the
	// observable difference.
	m.PC = 0
	m.SetPL(1)
	m.Step()
	if m.Regs[3] != 0 {
		t.Errorf("probe at PL1 = %d, want 0 (reveals demotion)", m.Regs[3])
	}
}

// TestInterruptPriority: recovery-counter expiry outranks a pending
// external interrupt, so epoch boundaries land at exact instruction
// counts even under interrupt load.
func TestInterruptPriority(t *testing.T) {
	m := load(t, `
	loop:
		addi r1, r1, 1
		b loop
	`, Config{})
	m.CRs[isa.CRRCTR] = 0 // expired immediately
	m.PSW |= isa.PSWR | isa.PSWI
	m.RaiseIRQ(3)
	m.CRs[isa.CREIEM] = 0xFF
	res := m.Step()
	if res.Trap != isa.TrapRecovery {
		t.Errorf("trap = %v, want recovery before extintr", res.Trap)
	}
}

// TestBranchOffsetExtremes exercises long branches near the imm16 range.
func TestBranchOffsetExtremes(t *testing.T) {
	p := asm.MustAssemble("far.s", `
		b far
		.org 0x20000
	far:
		addi r9, r0, 1
		halt
	`)
	m := New(Config{})
	m.LoadProgram(p.Origin, p.Words, 0)
	for i := 0; i < 10 && !m.Halted(); i++ {
		if res := m.Step(); res.Trap != isa.TrapNone {
			t.Fatalf("trap %v", res.Trap)
		}
	}
	if m.Regs[9] != 1 {
		t.Error("far branch failed")
	}
}

// TestStoreToCodeThenBranchBack: writes must be visible to later fetches
// anywhere in RAM (no stale instruction caching by address).
func TestWFIWakesOnMaskedLine(t *testing.T) {
	// WFI wakes on ANY raised line, even masked (the kernel decides).
	m := load(t, "\twfi\n\thalt\n", Config{})
	m.CRs[isa.CREIEM] = 0 // all masked
	m.RaiseIRQ(5)
	res := m.Step()
	if res.Idle {
		t.Error("WFI idled despite raised (masked) line")
	}
}
