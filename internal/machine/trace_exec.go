package machine

import (
	"encoding/binary"

	"repro/internal/isa"
)

// runTraces executes superblock traces starting at the current PC until
// no usable trace remains, chaining across in-page transfers. It is
// called by Run with the execution page established and the deferred
// fetch touch primed. Returns the fetch-hit count to add to the batch
// (zero in real mode) and an exit kind (see texStep/texResync/texTrap).
//
// The executor only enters a trace whose full instruction count fits in
// the remaining budget (recovery counter included, via budget) and the
// interval timer, so no async condition can fire mid-trace; everything
// that could change the outcome of the hoisted checks — privileged and
// resync instructions, MMIO side effects, self-modifying stores — either
// terminates the trace at build time or exits it at run time.
func (m *Machine) runTraces(pg *decodedPage, base, pageVA uint32, fetchSlot int, pl uint32, budget uint64, checkIRQ bool) (uint64, int) {
	slot := (m.PC & isa.PageMask) >> 2
	tr := m.traceFor(pg, base, slot)
	if tr == nil {
		return 0, texStep
	}
	allowed := budget
	if t := uint64(m.CRs[isa.CRITMR]); t != 0 && t < allowed {
		// The timer raises its interrupt exactly when the countdown
		// hits zero; capping the batch there reproduces Step's timing.
		allowed = t
	}
	if uint64(tr.ilen) > allowed {
		return 0, texStep
	}

	var (
		// regs is a local copy of the register file, written back at
		// every exit. A local array cannot alias the RAM slice, so the
		// compiler keeps hot registers in machine registers across
		// stores — the dominant win of the lowered dispatch.
		regs   = m.Regs
		frames = m.frames
		owned  = m.owned
		tlb    = m.TLB
		virt   = m.PSW&isa.PSWV != 0
		gen0   = pg.gen
		mmioB  = m.cfg.MMIOBase
		mmioS  = m.cfg.MMIOSize
		memTop = m.memSize

		entryVA = pageVA | slot<<2

		// Retired-work totals, flushed to m.Stats/cycles on exit.
		totR, totLd, totSt, totBr uint64

		// One-entry data-translation cache. Valid for the whole call:
		// the TLB cannot change inside a trace (ITLBI/PTLB terminate
		// traces), only recency/statistics side effects must replay.
		dVPN  = ^uint32(0)
		dSlot int
		dPPN  uint32
		dRdOK bool
		dWrOK bool

		exKind       = texResync
		exTrap       isa.Trap
		exISR, exIOR uint32

		nextVA uint32
		ops    []traceOp
		i      int

		// r0 reads must see zero even if a caller scribbled on Regs[0];
		// restored on every exit so digests are unaffected.
		r0 = m.Regs[0]
	)
	regs[0] = 0

chain:
	ops = tr.ops
	i = 0
body:
	for i < len(ops) {
		op := ops[i]
		switch op.kind {
		case tNOP:
		case tADD:
			regs[op.rd] = regs[op.r1] + regs[op.r2]
		case tSUB:
			regs[op.rd] = regs[op.r1] - regs[op.r2]
		case tAND:
			regs[op.rd] = regs[op.r1] & regs[op.r2]
		case tOR:
			regs[op.rd] = regs[op.r1] | regs[op.r2]
		case tXOR:
			regs[op.rd] = regs[op.r1] ^ regs[op.r2]
		case tSLL:
			regs[op.rd] = regs[op.r1] << (regs[op.r2] & 31)
		case tSRL:
			regs[op.rd] = regs[op.r1] >> (regs[op.r2] & 31)
		case tSRA:
			regs[op.rd] = uint32(int32(regs[op.r1]) >> (regs[op.r2] & 31))
		case tSLT:
			regs[op.rd] = b2u(int32(regs[op.r1]) < int32(regs[op.r2]))
		case tSLTU:
			regs[op.rd] = b2u(regs[op.r1] < regs[op.r2])
		case tMUL:
			regs[op.rd] = regs[op.r1] * regs[op.r2]
		case tDIV:
			d := int32(regs[op.r2])
			if d == 0 {
				exTrap, exISR = isa.TrapArith, pg.words[slot+uint32(op.pos)]
				exIOR = entryVA + uint32(op.pos)*4
				goto trapOp
			}
			n := int32(regs[op.r1])
			q := uint32(n) // overflow: defined as saturating
			if n != -1<<31 || d != -1 {
				q = uint32(n / d)
			}
			if op.rd != 0 {
				regs[op.rd] = q
			}
		case tREM:
			d := int32(regs[op.r2])
			if d == 0 {
				exTrap, exISR = isa.TrapArith, pg.words[slot+uint32(op.pos)]
				exIOR = entryVA + uint32(op.pos)*4
				goto trapOp
			}
			n := int32(regs[op.r1])
			q := uint32(0)
			if n != -1<<31 || d != -1 {
				q = uint32(n % d)
			}
			if op.rd != 0 {
				regs[op.rd] = q
			}
		case tADDI:
			regs[op.rd] = regs[op.r1] + op.imm
		case tANDI:
			regs[op.rd] = regs[op.r1] & op.imm
		case tORI:
			regs[op.rd] = regs[op.r1] | op.imm
		case tXORI:
			regs[op.rd] = regs[op.r1] ^ op.imm
		case tSLTI:
			regs[op.rd] = b2u(int32(regs[op.r1]) < int32(op.imm))
		case tSLTIU:
			regs[op.rd] = b2u(regs[op.r1] < op.imm)
		case tSLLI:
			regs[op.rd] = regs[op.r1] << op.imm
		case tSRLI:
			regs[op.rd] = regs[op.r1] >> op.imm
		case tSRAI:
			regs[op.rd] = uint32(int32(regs[op.r1]) >> op.imm)
		case tLI:
			regs[op.rd] = op.imm

		case tLDW:
			va := regs[op.r1] + op.imm
			if va&3 != 0 {
				exTrap, exISR, exIOR = isa.TrapAlign, 0, va
				goto trapOp
			}
			pa := va
			if virt {
				if vpn := va >> isa.PageShift; vpn == dVPN {
					// Repeat access to the cached page: the interior
					// flush/touch pairs of a same-page run collapse into
					// the one applied at first use (order-equivalent, like
					// the deferred fetch touch); the hit still counts.
					tlb.Stats.Hits++
				} else {
					tlb.flushPending()
					e, idx, ok := tlb.probeIndex(vpn)
					if !ok {
						tlb.Stats.Misses++
						exTrap, exISR, exIOR = isa.TrapDTLBMiss, 0, va
						goto trapOp
					}
					tlb.touch(idx)
					tlb.Stats.Hits++
					dVPN, dSlot, dPPN = vpn, idx, e.PPN
					dRdOK = permittedFlags(e.Flags, accessRead, pl)
					dWrOK = permittedFlags(e.Flags, accessWrite, pl)
					// Re-arm the deferred fetch touch here: it stays
					// armed for the rest of the call (nothing below
					// flushes on the success paths), which is exactly
					// the per-op re-arm the exact path performs.
					tlb.pending = fetchSlot
				}
				if !dRdOK {
					// Replay the trap-time recency Step leaves: the
					// deferred fetch touch applies, then the data page
					// becomes most recent (redundant when the entry was
					// just filled: re-touching the newest slot and
					// flushing an empty pending preserve order).
					tlb.flushPending()
					tlb.touch(dSlot)
					exTrap, exISR, exIOR = isa.TrapAccess, 0, va
					goto trapOp
				}
				pa = dPPN<<isa.PageShift | va&isa.PageMask
			}
			var v uint32
			slow := pa-mmioB < mmioS || pa > memTop-4
			if !slow {
				// Aligned: the word cannot cross its frame.
				v = binary.LittleEndian.Uint32(frames[pa>>isa.PageShift][pa&isa.PageMask:])
			} else {
				lv, ltr := m.loadPhys(pa, 4)
				if ltr != isa.TrapNone {
					if virt {
						tlb.flushPending()
						tlb.touch(dSlot)
					}
					exTrap, exISR, exIOR = ltr, 0, va
					goto trapOp
				}
				v = lv
			}
			if op.rd != 0 {
				regs[op.rd] = v
			}
			if slow && (pg.gen != gen0 || (checkIRQ && m.CRs[isa.CREIRR]&m.CRs[isa.CREIEM] != 0)) {
				goto ldResync
			}
		case tLDH:
			va := regs[op.r1] + op.imm
			if va&1 != 0 {
				exTrap, exISR, exIOR = isa.TrapAlign, 0, va
				goto trapOp
			}
			pa := va
			if virt {
				if vpn := va >> isa.PageShift; vpn == dVPN {
					// Repeat access to the cached page: the interior
					// flush/touch pairs of a same-page run collapse into
					// the one applied at first use (order-equivalent, like
					// the deferred fetch touch); the hit still counts.
					tlb.Stats.Hits++
				} else {
					tlb.flushPending()
					e, idx, ok := tlb.probeIndex(vpn)
					if !ok {
						tlb.Stats.Misses++
						exTrap, exISR, exIOR = isa.TrapDTLBMiss, 0, va
						goto trapOp
					}
					tlb.touch(idx)
					tlb.Stats.Hits++
					dVPN, dSlot, dPPN = vpn, idx, e.PPN
					dRdOK = permittedFlags(e.Flags, accessRead, pl)
					dWrOK = permittedFlags(e.Flags, accessWrite, pl)
					// Re-arm the deferred fetch touch here: it stays
					// armed for the rest of the call (nothing below
					// flushes on the success paths), which is exactly
					// the per-op re-arm the exact path performs.
					tlb.pending = fetchSlot
				}
				if !dRdOK {
					// Replay the trap-time recency Step leaves: the
					// deferred fetch touch applies, then the data page
					// becomes most recent (redundant when the entry was
					// just filled: re-touching the newest slot and
					// flushing an empty pending preserve order).
					tlb.flushPending()
					tlb.touch(dSlot)
					exTrap, exISR, exIOR = isa.TrapAccess, 0, va
					goto trapOp
				}
				pa = dPPN<<isa.PageShift | va&isa.PageMask
			}
			var v uint32
			slow := pa-mmioB < mmioS || pa > memTop-2
			if !slow {
				v = uint32(binary.LittleEndian.Uint16(frames[pa>>isa.PageShift][pa&isa.PageMask:]))
			} else {
				lv, ltr := m.loadPhys(pa, 2)
				if ltr != isa.TrapNone {
					if virt {
						tlb.flushPending()
						tlb.touch(dSlot)
					}
					exTrap, exISR, exIOR = ltr, 0, va
					goto trapOp
				}
				v = lv
			}
			if op.rd != 0 {
				regs[op.rd] = v
			}
			if slow && (pg.gen != gen0 || (checkIRQ && m.CRs[isa.CREIRR]&m.CRs[isa.CREIEM] != 0)) {
				goto ldResync
			}
		case tLDB:
			va := regs[op.r1] + op.imm
			pa := va
			if virt {
				if vpn := va >> isa.PageShift; vpn == dVPN {
					// Repeat access to the cached page: the interior
					// flush/touch pairs of a same-page run collapse into
					// the one applied at first use (order-equivalent, like
					// the deferred fetch touch); the hit still counts.
					tlb.Stats.Hits++
				} else {
					tlb.flushPending()
					e, idx, ok := tlb.probeIndex(vpn)
					if !ok {
						tlb.Stats.Misses++
						exTrap, exISR, exIOR = isa.TrapDTLBMiss, 0, va
						goto trapOp
					}
					tlb.touch(idx)
					tlb.Stats.Hits++
					dVPN, dSlot, dPPN = vpn, idx, e.PPN
					dRdOK = permittedFlags(e.Flags, accessRead, pl)
					dWrOK = permittedFlags(e.Flags, accessWrite, pl)
					// Re-arm the deferred fetch touch here: it stays
					// armed for the rest of the call (nothing below
					// flushes on the success paths), which is exactly
					// the per-op re-arm the exact path performs.
					tlb.pending = fetchSlot
				}
				if !dRdOK {
					// Replay the trap-time recency Step leaves: the
					// deferred fetch touch applies, then the data page
					// becomes most recent (redundant when the entry was
					// just filled: re-touching the newest slot and
					// flushing an empty pending preserve order).
					tlb.flushPending()
					tlb.touch(dSlot)
					exTrap, exISR, exIOR = isa.TrapAccess, 0, va
					goto trapOp
				}
				pa = dPPN<<isa.PageShift | va&isa.PageMask
			}
			var v uint32
			slow := pa-mmioB < mmioS || pa > memTop-1
			if !slow {
				v = uint32(frames[pa>>isa.PageShift][pa&isa.PageMask])
			} else {
				lv, ltr := m.loadPhys(pa, 1)
				if ltr != isa.TrapNone {
					if virt {
						tlb.flushPending()
						tlb.touch(dSlot)
					}
					exTrap, exISR, exIOR = ltr, 0, va
					goto trapOp
				}
				v = lv
			}
			if op.rd != 0 {
				regs[op.rd] = v
			}
			if slow && (pg.gen != gen0 || (checkIRQ && m.CRs[isa.CREIRR]&m.CRs[isa.CREIEM] != 0)) {
				goto ldResync
			}

		case tSTW:
			va := regs[op.r1] + op.imm
			if va&3 != 0 {
				exTrap, exISR, exIOR = isa.TrapAlign, 0, va
				goto trapOp
			}
			pa := va
			if virt {
				if vpn := va >> isa.PageShift; vpn == dVPN {
					// Repeat access to the cached page: the interior
					// flush/touch pairs of a same-page run collapse into
					// the one applied at first use (order-equivalent, like
					// the deferred fetch touch); the hit still counts.
					tlb.Stats.Hits++
				} else {
					tlb.flushPending()
					e, idx, ok := tlb.probeIndex(vpn)
					if !ok {
						tlb.Stats.Misses++
						exTrap, exISR, exIOR = isa.TrapDTLBMiss, 0, va
						goto trapOp
					}
					tlb.touch(idx)
					tlb.Stats.Hits++
					dVPN, dSlot, dPPN = vpn, idx, e.PPN
					dRdOK = permittedFlags(e.Flags, accessRead, pl)
					dWrOK = permittedFlags(e.Flags, accessWrite, pl)
					// Re-arm the deferred fetch touch here: it stays
					// armed for the rest of the call (nothing below
					// flushes on the success paths), which is exactly
					// the per-op re-arm the exact path performs.
					tlb.pending = fetchSlot
				}
				if !dWrOK {
					// Replay the trap-time recency Step leaves: the
					// deferred fetch touch applies, then the data page
					// becomes most recent (redundant when the entry was
					// just filled: re-touching the newest slot and
					// flushing an empty pending preserve order).
					tlb.flushPending()
					tlb.touch(dSlot)
					exTrap, exISR, exIOR = isa.TrapAccess, 0, va
					goto trapOp
				}
				pa = dPPN<<isa.PageShift | va&isa.PageMask
			}
			if pa-mmioB >= mmioS && pa <= memTop-4 && owned[pa>>(isa.PageShift+6)]&(1<<((pa>>isa.PageShift)&63)) != 0 {
				// Inline invalidateWord: the aligned word store covers
				// exactly one decoded slot. Unowned (COW-shared) pages
				// take the storePhys branch below, which either skips an
				// equal store or faults the page private.
				if dp := m.pages[pa>>isa.PageShift]; dp != nil {
					s := (pa & isa.PageMask) >> 2
					b := uint64(1) << (s & 63)
					if dp.valid[s>>6]&b != 0 {
						dp.valid[s>>6] &^= b
					}
					if dp.cover[s>>6]&b != 0 {
						dp.dropTraces()
					}
					if dp.traceAt[s] != 0 {
						dp.traceAt[s] = 0
					}
				}
				binary.LittleEndian.PutUint32(frames[pa>>isa.PageShift][pa&isa.PageMask:], regs[op.rd])
				if pg.gen != gen0 {
					goto stResync
				}
			} else {
				if str := m.storePhys(pa, 4, regs[op.rd]); str != isa.TrapNone {
					if virt {
						tlb.flushPending()
						tlb.touch(dSlot)
					}
					exTrap, exISR, exIOR = str, 0, va
					goto trapOp
				}
				if pg.gen != gen0 || (checkIRQ && m.CRs[isa.CREIRR]&m.CRs[isa.CREIEM] != 0) {
					goto stResync
				}
			}
		case tSTH:
			va := regs[op.r1] + op.imm
			if va&1 != 0 {
				exTrap, exISR, exIOR = isa.TrapAlign, 0, va
				goto trapOp
			}
			pa := va
			if virt {
				if vpn := va >> isa.PageShift; vpn == dVPN {
					// Repeat access to the cached page: the interior
					// flush/touch pairs of a same-page run collapse into
					// the one applied at first use (order-equivalent, like
					// the deferred fetch touch); the hit still counts.
					tlb.Stats.Hits++
				} else {
					tlb.flushPending()
					e, idx, ok := tlb.probeIndex(vpn)
					if !ok {
						tlb.Stats.Misses++
						exTrap, exISR, exIOR = isa.TrapDTLBMiss, 0, va
						goto trapOp
					}
					tlb.touch(idx)
					tlb.Stats.Hits++
					dVPN, dSlot, dPPN = vpn, idx, e.PPN
					dRdOK = permittedFlags(e.Flags, accessRead, pl)
					dWrOK = permittedFlags(e.Flags, accessWrite, pl)
					// Re-arm the deferred fetch touch here: it stays
					// armed for the rest of the call (nothing below
					// flushes on the success paths), which is exactly
					// the per-op re-arm the exact path performs.
					tlb.pending = fetchSlot
				}
				if !dWrOK {
					// Replay the trap-time recency Step leaves: the
					// deferred fetch touch applies, then the data page
					// becomes most recent (redundant when the entry was
					// just filled: re-touching the newest slot and
					// flushing an empty pending preserve order).
					tlb.flushPending()
					tlb.touch(dSlot)
					exTrap, exISR, exIOR = isa.TrapAccess, 0, va
					goto trapOp
				}
				pa = dPPN<<isa.PageShift | va&isa.PageMask
			}
			if pa-mmioB >= mmioS && pa <= memTop-2 && owned[pa>>(isa.PageShift+6)]&(1<<((pa>>isa.PageShift)&63)) != 0 {
				if dp := m.pages[pa>>isa.PageShift]; dp != nil {
					s := (pa & isa.PageMask) >> 2
					b := uint64(1) << (s & 63)
					if dp.valid[s>>6]&b != 0 {
						dp.valid[s>>6] &^= b
					}
					if dp.cover[s>>6]&b != 0 {
						dp.dropTraces()
					}
					if dp.traceAt[s] != 0 {
						dp.traceAt[s] = 0
					}
				}
				binary.LittleEndian.PutUint16(frames[pa>>isa.PageShift][pa&isa.PageMask:], uint16(regs[op.rd]))
				if pg.gen != gen0 {
					goto stResync
				}
			} else {
				if str := m.storePhys(pa, 2, regs[op.rd]); str != isa.TrapNone {
					if virt {
						tlb.flushPending()
						tlb.touch(dSlot)
					}
					exTrap, exISR, exIOR = str, 0, va
					goto trapOp
				}
				if pg.gen != gen0 || (checkIRQ && m.CRs[isa.CREIRR]&m.CRs[isa.CREIEM] != 0) {
					goto stResync
				}
			}
		case tSTB:
			va := regs[op.r1] + op.imm
			pa := va
			if virt {
				if vpn := va >> isa.PageShift; vpn == dVPN {
					// Repeat access to the cached page: the interior
					// flush/touch pairs of a same-page run collapse into
					// the one applied at first use (order-equivalent, like
					// the deferred fetch touch); the hit still counts.
					tlb.Stats.Hits++
				} else {
					tlb.flushPending()
					e, idx, ok := tlb.probeIndex(vpn)
					if !ok {
						tlb.Stats.Misses++
						exTrap, exISR, exIOR = isa.TrapDTLBMiss, 0, va
						goto trapOp
					}
					tlb.touch(idx)
					tlb.Stats.Hits++
					dVPN, dSlot, dPPN = vpn, idx, e.PPN
					dRdOK = permittedFlags(e.Flags, accessRead, pl)
					dWrOK = permittedFlags(e.Flags, accessWrite, pl)
					// Re-arm the deferred fetch touch here: it stays
					// armed for the rest of the call (nothing below
					// flushes on the success paths), which is exactly
					// the per-op re-arm the exact path performs.
					tlb.pending = fetchSlot
				}
				if !dWrOK {
					// Replay the trap-time recency Step leaves: the
					// deferred fetch touch applies, then the data page
					// becomes most recent (redundant when the entry was
					// just filled: re-touching the newest slot and
					// flushing an empty pending preserve order).
					tlb.flushPending()
					tlb.touch(dSlot)
					exTrap, exISR, exIOR = isa.TrapAccess, 0, va
					goto trapOp
				}
				pa = dPPN<<isa.PageShift | va&isa.PageMask
			}
			if pa-mmioB >= mmioS && pa <= memTop-1 && owned[pa>>(isa.PageShift+6)]&(1<<((pa>>isa.PageShift)&63)) != 0 {
				if dp := m.pages[pa>>isa.PageShift]; dp != nil {
					s := (pa & isa.PageMask) >> 2
					b := uint64(1) << (s & 63)
					if dp.valid[s>>6]&b != 0 {
						dp.valid[s>>6] &^= b
					}
					if dp.cover[s>>6]&b != 0 {
						dp.dropTraces()
					}
					if dp.traceAt[s] != 0 {
						dp.traceAt[s] = 0
					}
				}
				frames[pa>>isa.PageShift][pa&isa.PageMask] = byte(regs[op.rd])
				if pg.gen != gen0 {
					goto stResync
				}
			} else {
				if str := m.storePhys(pa, 1, regs[op.rd]); str != isa.TrapNone {
					if virt {
						tlb.flushPending()
						tlb.touch(dSlot)
					}
					exTrap, exISR, exIOR = str, 0, va
					goto trapOp
				}
				if pg.gen != gen0 || (checkIRQ && m.CRs[isa.CREIRR]&m.CRs[isa.CREIEM] != 0) {
					goto stResync
				}
			}

		case tBEQ:
			if regs[op.r1] == regs[op.r2] {
				goto taken
			}
		case tBNE:
			if regs[op.r1] != regs[op.r2] {
				goto taken
			}
		case tBLT:
			if int32(regs[op.r1]) < int32(regs[op.r2]) {
				goto taken
			}
		case tBGE:
			if int32(regs[op.r1]) >= int32(regs[op.r2]) {
				goto taken
			}
		case tBLTU:
			if regs[op.r1] < regs[op.r2] {
				goto taken
			}
		case tBGEU:
			if regs[op.r1] >= regs[op.r2] {
				goto taken
			}
		case tBL:
			if op.rd != 0 {
				regs[op.rd] = (entryVA + op.aux) | pl
			}
			goto taken
		case tBV:
			totR += uint64(op.pos) + 1
			totLd += uint64(op.ld)
			totSt += uint64(op.st)
			totBr += uint64(op.br) + 1
			allowed -= uint64(op.pos) + 1
			nextVA = regs[op.r1] &^ 3
			goto link

		case tFADDIBEQ:
			v := regs[op.r1] + op.imm
			regs[op.rd] = v
			if v == 0 {
				goto takenF
			}
		case tFADDIBNE:
			v := regs[op.r1] + op.imm
			regs[op.rd] = v
			if v != 0 {
				goto takenF
			}
		case tFANDIBEQ:
			v := regs[op.r1] & op.imm
			regs[op.rd] = v
			if v == 0 {
				goto takenF
			}
		case tFANDIBNE:
			v := regs[op.r1] & op.imm
			regs[op.rd] = v
			if v != 0 {
				goto takenF
			}
		case tFSLTIBEQ:
			v := b2u(int32(regs[op.r1]) < int32(op.imm))
			regs[op.rd] = v
			if v == 0 {
				goto takenF
			}
		case tFSLTIBNE:
			v := b2u(int32(regs[op.r1]) < int32(op.imm))
			regs[op.rd] = v
			if v != 0 {
				goto takenF
			}
		}
		i++
		continue

	taken:
		// A conditional branch (or BL) took its precomputed target.
		totR += uint64(op.pos) + 1
		totLd += uint64(op.ld)
		totSt += uint64(op.st)
		totBr += uint64(op.br) + 1
		allowed -= uint64(op.pos) + 1
		nextVA = entryVA + op.imm
		if nextVA == entryVA && uint64(tr.ilen) <= allowed {
			i = 0
			goto body // self-loop: restart without re-linking
		}
		goto link

	takenF:
		// Fused compare+branch taken: the pair retires as two
		// instructions.
		totR += uint64(op.pos) + 2
		totLd += uint64(op.ld)
		totSt += uint64(op.st)
		totBr += uint64(op.br) + 1
		allowed -= uint64(op.pos) + 2
		nextVA = entryVA + op.aux
		if nextVA == entryVA && uint64(tr.ilen) <= allowed {
			i = 0
			goto body
		}
		goto link

	ldResync:
		// The load retired but had side effects that must resync
		// (MMIO device work, or invalidation of this page's traces).
		totR += uint64(op.pos) + 1
		totLd += uint64(op.ld) + 1
		totSt += uint64(op.st)
		totBr += uint64(op.br)
		m.PC = entryVA + (uint32(op.pos)+1)*4
		goto done

	stResync:
		// The store retired but invalidated this page's traces (or an
		// MMIO store raised an interrupt line): exit after it, exactly
		// where Step would notice.
		totR += uint64(op.pos) + 1
		totLd += uint64(op.ld)
		totSt += uint64(op.st) + 1
		totBr += uint64(op.br)
		m.PC = entryVA + (uint32(op.pos)+1)*4
		goto done

	trapOp:
		// Synchronous trap: the op did not retire. Reconstruct the
		// faulting PC and the Inst/Raw detail from the decoded page.
		m.PC = entryVA + uint32(op.pos)*4
		totR += uint64(op.pos)
		totLd += uint64(op.ld)
		totSt += uint64(op.st)
		totBr += uint64(op.br)
		m.Stats.Traps++
		fs := slot + uint32(op.pos)
		m.tres = StepResult{Trap: exTrap, ISR: exISR, IOR: exIOR, Inst: pg.insts[fs], Raw: pg.words[fs]}
		exKind = texTrap
		goto done
	}
	// Ran off the end of the trace: the next instruction follows it.
	totR += uint64(tr.ilen)
	totLd += uint64(tr.loads)
	totSt += uint64(tr.stores)
	totBr += uint64(tr.branches)
	allowed -= uint64(tr.ilen)
	nextVA = entryVA + tr.ilen*4

link:
	if nextVA&^uint32(isa.PageMask) != pageVA {
		m.PC = nextVA
		goto done
	}
	slot = (nextVA & isa.PageMask) >> 2
	entryVA = nextVA
	if ti := pg.traceAt[slot]; ti != 0 && ti < traceVisited {
		tr = pg.traces[ti-1] // hot case: already built
	} else if ti == traceVisited {
		tr = m.buildTrace(pg, base, slot)
	} else {
		if ti == 0 {
			pg.traceAt[slot] = traceVisited
		}
		tr = nil
	}
	if tr == nil || uint64(tr.ilen) > allowed {
		m.PC = nextVA
		goto done
	}
	goto chain

done:
	regs[0] = r0
	m.Regs = regs
	m.cycles += totR
	m.Stats.Instructions += totR
	m.Stats.Loads += totLd
	m.Stats.Stores += totSt
	m.Stats.Branches += totBr
	if t := m.CRs[isa.CRITMR]; t != 0 {
		t -= uint32(totR)
		m.CRs[isa.CRITMR] = t
		if t == 0 {
			m.RaiseIRQ(0)
		}
	}
	if m.PSW&isa.PSWR != 0 {
		m.CRs[isa.CRRCTR] -= uint32(totR)
	}
	hits := uint64(0)
	if fetchSlot >= 0 {
		hits = totR
		if exKind == texTrap {
			hits++ // the faulting instruction's fetch still hit
		}
	}
	return hits, exKind
}
