package machine

import (
	"fmt"
	"math/rand"

	"repro/internal/isa"
)

// TLBEntry is one translation: virtual page number -> physical page
// number with permission flags (see isa.TLB* bits).
type TLBEntry struct {
	VPN   uint32 // virtual page number
	PPN   uint32 // physical page number
	Flags uint32 // isa.TLBRead|TLBWrite|TLBExec and minimum-PL field
	Valid bool
}

// ReplacePolicy chooses which TLB slot to evict on insert. The paper's
// §3.2 observation — that hardware TLB replacement on the HP 9000/720 is
// NON-DETERMINISTIC, violating the Ordinary Instruction Assumption — is
// modelled by RandomPolicy, whose random stream is private to the chip
// (seeded per machine instance, not from virtual-machine state).
type ReplacePolicy interface {
	// Victim returns the slot index to evict. All slots are valid when
	// Victim is called (invalid slots are used first).
	Victim(tlb *TLB) int
	// Touch records a use of slot i (for recency-based policies).
	Touch(i int)
	// Name identifies the policy in stats and logs.
	Name() string
}

// LRUPolicy evicts the least-recently-used slot. Deterministic.
type LRUPolicy struct {
	stamp uint64
	last  []uint64
}

// NewLRUPolicy returns an LRU policy for a TLB with n slots.
func NewLRUPolicy(n int) *LRUPolicy { return &LRUPolicy{last: make([]uint64, n)} }

// Victim implements ReplacePolicy.
func (p *LRUPolicy) Victim(tlb *TLB) int {
	best, bestAt := 0, p.last[0]
	for i := 1; i < len(p.last); i++ {
		if p.last[i] < bestAt {
			best, bestAt = i, p.last[i]
		}
	}
	return best
}

// Touch implements ReplacePolicy.
func (p *LRUPolicy) Touch(i int) {
	p.stamp++
	p.last[i] = p.stamp
}

// Name implements ReplacePolicy.
func (p *LRUPolicy) Name() string { return "lru" }

// RoundRobinPolicy evicts slots cyclically. Deterministic.
type RoundRobinPolicy struct{ next int }

// NewRoundRobinPolicy returns a round-robin policy.
func NewRoundRobinPolicy() *RoundRobinPolicy { return &RoundRobinPolicy{} }

// Victim implements ReplacePolicy.
func (p *RoundRobinPolicy) Victim(tlb *TLB) int {
	v := p.next % len(tlb.slots)
	p.next++
	return v
}

// Touch implements ReplacePolicy.
func (p *RoundRobinPolicy) Touch(int) {}

// Name implements ReplacePolicy.
func (p *RoundRobinPolicy) Name() string { return "roundrobin" }

// RandomPolicy evicts a pseudo-random slot using a stream private to the
// processor chip. Two processors built with different seeds develop
// different TLB contents from identical reference strings — reproducing
// the non-determinism Bressoud & Schneider found on the HP 9000/720.
type RandomPolicy struct{ rng *rand.Rand }

// NewRandomPolicy returns a random-replacement policy with its own seed.
func NewRandomPolicy(seed int64) *RandomPolicy {
	return &RandomPolicy{rng: rand.New(rand.NewSource(seed))}
}

// Victim implements ReplacePolicy.
func (p *RandomPolicy) Victim(tlb *TLB) int { return p.rng.Intn(len(tlb.slots)) }

// Touch implements ReplacePolicy.
func (p *RandomPolicy) Touch(int) {}

// Name implements ReplacePolicy.
func (p *RandomPolicy) Name() string { return "random" }

// TLB is a software-managed translation lookaside buffer. Hardware never
// walks page tables: a missing translation raises a TLB-miss trap and
// system software (the guest kernel, or the hypervisor per the paper's
// §3.2 fix) inserts entries with ITLBI.
type TLB struct {
	slots  []TLBEntry
	policy ReplacePolicy
	// lru is the concrete policy when it is LRU (the default), letting
	// the per-fetch touch on the batched-run path inline instead of
	// paying an interface dispatch per instruction.
	lru *LRUPolicy
	// pending is a slot with a deferred fetch touch (-1 none): the
	// batched executor coalesces a run of fetches from one slot into a
	// single recency update, applied before any other slot is touched.
	// Replacement decisions depend only on the relative order of
	// last-touch events across slots, which coalescing preserves;
	// Stats.Hits is still counted per fetch.
	pending int

	// Stats counts TLB behaviour for experiments.
	Stats TLBStats
}

// TLBStats counts TLB events.
type TLBStats struct {
	Hits    uint64
	Misses  uint64
	Inserts uint64
	Evicts  uint64
	Purges  uint64
}

// NewTLB creates a TLB with n slots and the given replacement policy.
func NewTLB(n int, policy ReplacePolicy) *TLB {
	if n <= 0 {
		panic(fmt.Sprintf("machine: TLB size %d", n))
	}
	lru, _ := policy.(*LRUPolicy)
	return &TLB{slots: make([]TLBEntry, n), policy: policy, lru: lru, pending: -1}
}

// touch applies one recency update, devirtualized for the default LRU.
func (t *TLB) touch(i int) {
	if p := t.lru; p != nil {
		p.stamp++
		p.last[i] = p.stamp
	} else {
		t.policy.Touch(i)
	}
}

// flushPending applies a deferred fetch touch. Every operation that
// touches, inserts, evicts or purges goes through here first, so the
// order of recency events across slots matches the unbatched path.
func (t *TLB) flushPending() {
	if i := t.pending; i >= 0 {
		t.pending = -1
		t.touch(i)
	}
}

// Size returns the number of slots.
func (t *TLB) Size() int { return len(t.slots) }

// PolicyName returns the replacement policy's name.
func (t *TLB) PolicyName() string { return t.policy.Name() }

// Lookup finds the entry mapping vpn. It records hit/miss statistics and
// updates recency state on hit.
func (t *TLB) Lookup(vpn uint32) (TLBEntry, bool) {
	t.flushPending()
	for i := range t.slots {
		if t.slots[i].Valid && t.slots[i].VPN == vpn {
			t.touch(i)
			t.Stats.Hits++
			return t.slots[i], true
		}
	}
	t.Stats.Misses++
	return TLBEntry{}, false
}

// Probe is Lookup without statistics or recency side effects (used by the
// PROBE instruction and by debuggers).
func (t *TLB) Probe(vpn uint32) (TLBEntry, bool) {
	for i := range t.slots {
		if t.slots[i].Valid && t.slots[i].VPN == vpn {
			return t.slots[i], true
		}
	}
	return TLBEntry{}, false
}

// probeIndex is Probe returning the matching slot index as well, so the
// batched executor can cache which slot maps the current execution page.
// Like Probe it records no statistics and no recency.
func (t *TLB) probeIndex(vpn uint32) (TLBEntry, int, bool) {
	for i := range t.slots {
		if t.slots[i].Valid && t.slots[i].VPN == vpn {
			return t.slots[i], i, true
		}
	}
	return TLBEntry{}, -1, false
}

// touchFetch records one instruction-fetch hit on slot i: exactly the
// statistics and recency side effects a Lookup for the fetch would have
// had. The batched executor calls it once per fetched instruction so
// that LRU state and hit counts stay bit-identical to the Step path.
func (t *TLB) touchFetch(i int) {
	if t.pending != i {
		t.flushPending()
		t.pending = i
	}
	t.Stats.Hits++
}

// Insert adds a translation, replacing any existing entry for the same
// VPN, else filling an invalid slot, else evicting per the policy.
func (t *TLB) Insert(e TLBEntry) {
	t.flushPending()
	t.Stats.Inserts++
	e.Valid = true
	for i := range t.slots {
		if t.slots[i].Valid && t.slots[i].VPN == e.VPN {
			t.slots[i] = e
			t.touch(i)
			return
		}
	}
	for i := range t.slots {
		if !t.slots[i].Valid {
			t.slots[i] = e
			t.touch(i)
			return
		}
	}
	v := t.policy.Victim(t)
	t.Stats.Evicts++
	t.slots[v] = e
	t.touch(v)
}

// Purge invalidates every entry.
func (t *TLB) Purge() {
	t.flushPending()
	t.Stats.Purges++
	for i := range t.slots {
		t.slots[i].Valid = false
	}
}

// Entries returns a copy of the valid entries (for tests and debugging).
func (t *TLB) Entries() []TLBEntry {
	var out []TLBEntry
	for _, e := range t.slots {
		if e.Valid {
			out = append(out, e)
		}
	}
	return out
}

// permitted reports whether an access of the given kind at privilege
// level pl is allowed by the entry's flags.
func permitted(e TLBEntry, kind accessKind, pl uint32) bool {
	return permittedFlags(e.Flags, kind, pl)
}

// permittedFlags is permitted on a bare flags word (the trace executor
// caches flags rather than whole entries).
func permittedFlags(flags uint32, kind accessKind, pl uint32) bool {
	minPL := (flags & isa.TLBPLMask) >> isa.TLBPLShift
	if pl != 0 && pl > minPL {
		return false
	}
	switch kind {
	case accessRead:
		return flags&isa.TLBRead != 0
	case accessWrite:
		return flags&isa.TLBWrite != 0
	case accessExec:
		return flags&isa.TLBExec != 0
	}
	return false
}
