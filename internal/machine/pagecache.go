package machine

import (
	"encoding/binary"

	"repro/internal/isa"
)

// The translation cache: each physical page of RAM is decoded at most
// once into an array of isa.Inst values, and the batched executor (Run)
// dispatches straight from the decoded array. This removes the
// per-instruction word fetch, decode-cache hash probe and tag compare
// from the fast loop.
//
// The cache is keyed by PHYSICAL page and derived purely from RAM
// contents, so it carries no translation state: TLB changes (ITLBI,
// PTLB) never require invalidation here — Run already re-translates the
// execution page after any such instruction — and two virtual pages
// mapping the same frame share one decoded image. The only events that
// can stale an entry are writes to RAM, and every such write funnels
// through storePhys or WriteBytes, which invalidate the covered slots.
// Pages that overlap the MMIO window or the end of RAM never enter the
// cache (Run's plainRAMPage gate), so device-register traffic needs no
// hook. Differential tests in pagecache_test.go assert bit-identical
// behaviour against Step across self-modifying code, cross-page stores
// into cached pages, and mid-batch TLB rewrites.

// instsPerPage is the number of instruction slots in one page.
const instsPerPage = isa.PageSize / 4

// decodedPage is the decoded image of one physical page. Slots fill
// lazily as instructions are first executed, so a store-heavy data page
// that is briefly executed never pays a whole-page decode.
type decodedPage struct {
	insts [instsPerPage]isa.Inst
	words [instsPerPage]uint32
	// valid marks slots whose insts/words entries are current.
	valid [instsPerPage / 64]uint64
	// priv marks valid slots holding privileged-class instructions, so
	// the fast loop's privilege check is a bit test instead of a call.
	priv [instsPerPage / 64]uint64
	// resync marks valid slots holding instructions that can invalidate
	// the fast loop's hoisted state (MTCTL, RFI, ITLBI, PTLB), so the
	// post-execute class check is a bit test instead of a switch.
	resync [instsPerPage / 64]uint64

	// Superblock traces over this page (see trace.go). traceAt maps an
	// entry slot to its trace index+1 (0 unknown, traceIneligible for
	// slots that cannot start a trace); cover marks every slot inside
	// any trace, so stores can tell trace-covering writes from plain
	// data writes on mixed code/data pages without dropping traces on
	// every store; gen increments whenever traces drop, so a running
	// trace notices its own page being rewritten.
	traceAt [instsPerPage]uint16
	traces  []*trace
	cover   [instsPerPage / 64]uint64
	gen     uint32
}

// execPage returns (allocating on first use) the decoded image of the
// plain-RAM page starting at physical address base. A page still
// backed by the shared base image is seeded from the image's shared
// decode — identical kernel pages decode once fleet-wide — instead of
// filling slot by slot; once the page COW-faults, ordinary store
// invalidation and lazy fill keep the (now private) decoded image
// coherent exactly as for private RAM.
func (m *Machine) execPage(base uint32) *decodedPage {
	idx := base >> isa.PageShift
	pg := m.pages[idx]
	if pg == nil {
		pg = grabPage()
		if m.img != nil && !m.ownedPage(idx) {
			m.img.frames[idx].decoded().copyInto(pg)
		}
		m.pages[idx] = pg
	}
	return pg
}

// fill decodes the word at page offset slot*4 into the cache and
// returns it. ok=false means the word does not decode (illegal
// instruction); illegal words are not cached — they trap out of the
// fast loop anyway.
func (m *Machine) fill(pg *decodedPage, base, slot uint32) (isa.Inst, uint32, bool) {
	w := binary.LittleEndian.Uint32(m.frames[base>>isa.PageShift][slot*4:])
	in, ok := m.decode(w)
	if !ok {
		return isa.Inst{}, w, false
	}
	pg.insts[slot] = in
	pg.words[slot] = w
	bit := uint64(1) << (slot & 63)
	if isa.Privileged(in.Op) {
		pg.priv[slot>>6] |= bit
	} else {
		pg.priv[slot>>6] &^= bit
	}
	switch in.Op {
	case isa.OpMTCTL, isa.OpRFI, isa.OpITLBI, isa.OpPTLB:
		pg.resync[slot>>6] |= bit
	default:
		pg.resync[slot>>6] &^= bit
	}
	pg.valid[slot>>6] |= bit
	return in, w, true
}

// invalidateWord drops the cached slot covering the word at physical
// address pa.
func (m *Machine) invalidateWord(pa uint32) {
	if pg := m.pages[pa>>isa.PageShift]; pg != nil {
		slot := (pa & isa.PageMask) >> 2
		bit := uint64(1) << (slot & 63)
		pg.valid[slot>>6] &^= bit
		if pg.cover[slot>>6]&bit != 0 {
			// The word is inside a superblock trace: drop the page's
			// traces (and bump gen for any trace mid-execution).
			pg.dropTraces()
		}
		// Any entry mark for this slot is stale now; rebuild on demand.
		pg.traceAt[slot] = 0
	}
}

// invalidateStore drops the cached slot(s) covered by a store of size
// 1, 2 or 4 bytes at pa. Guest stores are alignment-checked and touch
// one word, but the physical-store path (StorePhys32, loaders, tests)
// accepts any address, where an unaligned store spans two words — and
// possibly two pages.
func (m *Machine) invalidateStore(pa uint32, size int) {
	m.invalidateWord(pa)
	if pa&3+uint32(size) > 4 {
		m.invalidateWord(pa + uint32(size) - 1)
	}
}

// invalidateRange drops every cached slot overlapping [pa, pa+n) — the
// DMA/loader path (WriteBytes).
func (m *Machine) invalidateRange(pa uint32, n int) {
	if n <= 0 {
		return
	}
	first := pa >> isa.PageShift
	last := (pa + uint32(n) - 1) >> isa.PageShift
	for p := first; p <= last && p < uint32(len(m.pages)); p++ {
		if pg := m.pages[p]; pg != nil {
			pg.valid = [instsPerPage / 64]uint64{}
			pg.dropTraces()
		}
	}
}
