package machine

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

// load assembles src and loads it into a fresh machine at PL 0.
func load(t *testing.T, src string, cfg Config) *Machine {
	t.Helper()
	p, err := asm.Assemble("test.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := New(cfg)
	m.LoadProgram(p.Origin, p.Words, p.Origin)
	return m
}

// run steps until HALT or a trap, bounded by max steps. It returns the
// last result.
func run(t *testing.T, m *Machine, max int) StepResult {
	t.Helper()
	for i := 0; i < max; i++ {
		res := m.Step()
		if res.Trap != isa.TrapNone || res.Halted {
			return res
		}
	}
	t.Fatalf("no halt or trap within %d steps (PC=%#x)", max, m.PC)
	return StepResult{}
}

func TestALUBasics(t *testing.T) {
	m := load(t, `
		addi r1, r0, 7
		addi r2, r0, 3
		add  r3, r1, r2
		sub  r4, r1, r2
		mul  r5, r1, r2
		div  r6, r1, r2
		rem  r7, r1, r2
		and  r8, r1, r2
		or   r9, r1, r2
		xor  r10, r1, r2
		slt  r11, r2, r1
		sltu r12, r1, r2
		halt
	`, Config{})
	run(t, m, 100)
	want := map[isa.Reg]uint32{3: 10, 4: 4, 5: 21, 6: 2, 7: 1, 8: 3, 9: 7, 10: 4, 11: 1, 12: 0}
	for r, v := range want {
		if m.Regs[r] != v {
			t.Errorf("r%d = %d, want %d", r, m.Regs[r], v)
		}
	}
}

func TestShifts(t *testing.T) {
	m := load(t, `
		li   r1, 0x80000001
		slli r2, r1, 1
		srli r3, r1, 1
		srai r4, r1, 1
		addi r5, r0, 4
		sll  r6, r1, r5
		halt
	`, Config{})
	run(t, m, 100)
	if m.Regs[2] != 0x00000002 {
		t.Errorf("slli = %#x", m.Regs[2])
	}
	if m.Regs[3] != 0x40000000 {
		t.Errorf("srli = %#x", m.Regs[3])
	}
	if m.Regs[4] != 0xC0000000 {
		t.Errorf("srai = %#x", m.Regs[4])
	}
	if m.Regs[6] != 0x00000010 {
		t.Errorf("sll = %#x", m.Regs[6])
	}
}

func TestR0Hardwired(t *testing.T) {
	m := load(t, `
		addi r0, r0, 99
		add  r1, r0, r0
		halt
	`, Config{})
	run(t, m, 10)
	if m.Regs[0] != 0 || m.Regs[1] != 0 {
		t.Errorf("r0 = %d, r1 = %d, want 0, 0", m.Regs[0], m.Regs[1])
	}
}

func TestLoadsStores(t *testing.T) {
	m := load(t, `
		li  r1, 0x1000
		li  r2, 0xDEADBEEF
		stw r2, 0(r1)
		ldw r3, 0(r1)
		ldh r4, 0(r1)
		ldb r5, 3(r1)
		sth r2, 8(r1)
		ldw r6, 8(r1)
		stb r2, 12(r1)
		ldw r7, 12(r1)
		halt
	`, Config{})
	run(t, m, 100)
	if m.Regs[3] != 0xDEADBEEF {
		t.Errorf("ldw = %#x", m.Regs[3])
	}
	if m.Regs[4] != 0xBEEF {
		t.Errorf("ldh = %#x (little-endian low half)", m.Regs[4])
	}
	if m.Regs[5] != 0xDE {
		t.Errorf("ldb byte 3 = %#x", m.Regs[5])
	}
	if m.Regs[6] != 0xBEEF {
		t.Errorf("sth wrote %#x", m.Regs[6])
	}
	if m.Regs[7] != 0xEF {
		t.Errorf("stb wrote %#x", m.Regs[7])
	}
}

func TestBranchesAndLoops(t *testing.T) {
	m := load(t, `
		addi r1, r0, 5
		addi r2, r0, 0
	loop:
		add  r2, r2, r1
		addi r1, r1, -1
		bne  r1, r0, loop
		halt
	`, Config{})
	run(t, m, 100)
	if m.Regs[2] != 15 {
		t.Errorf("sum = %d, want 15", m.Regs[2])
	}
}

func TestBLDepositsPrivilegeLevel(t *testing.T) {
	// At PL 0 the low bits are 0; the privilege hazard is tested in the
	// hypervisor tests where guest code runs demoted.
	m := load(t, `
		bl r2, target
	target:
		halt
	`, Config{})
	run(t, m, 10)
	if m.Regs[2] != 4 {
		t.Errorf("rp = %#x, want 4 (PL 0)", m.Regs[2])
	}
	// Now at PL 3 (set artificially): BL must deposit 3.
	m2 := load(t, `
		bl r2, target
	target:
		halt
	`, Config{})
	m2.SetPL(3)
	m2.Step()
	if m2.Regs[2] != 4|3 {
		t.Errorf("rp = %#x, want 7 (PL 3 deposited)", m2.Regs[2])
	}
}

func TestBVMasksPrivilegeBits(t *testing.T) {
	m := load(t, `
		li r1, ret_here + 3   ; simulate PL bits in address
		bv r1
		halt                  ; skipped
	ret_here:
		addi r9, r0, 1
		halt
	`, Config{})
	run(t, m, 10)
	if m.Regs[9] != 1 {
		t.Error("bv did not mask low bits / branch correctly")
	}
}

func TestCallRetSequence(t *testing.T) {
	m := load(t, `
		addi r1, r0, 1
		call fn
		addi r1, r1, 100
		halt
	fn:
		addi r1, r1, 10
		ret
	`, Config{})
	run(t, m, 100)
	if m.Regs[1] != 111 {
		t.Errorf("r1 = %d, want 111", m.Regs[1])
	}
}

func TestDivideByZeroTrap(t *testing.T) {
	m := load(t, `
		addi r1, r0, 5
		div  r2, r1, r0
		halt
	`, Config{})
	res := run(t, m, 10)
	if res.Trap != isa.TrapArith {
		t.Errorf("trap = %v, want arith", res.Trap)
	}
	// PC still points at the faulting instruction.
	if m.PC != 4 {
		t.Errorf("PC = %#x, want 4", m.PC)
	}
}

func TestDivOverflowDefined(t *testing.T) {
	m := load(t, `
		li   r1, 0x80000000
		addi r2, r0, -1
		div  r3, r1, r2
		rem  r4, r1, r2
		halt
	`, Config{})
	run(t, m, 20)
	if m.Regs[3] != 0x80000000 {
		t.Errorf("div overflow = %#x, want 0x80000000", m.Regs[3])
	}
	if m.Regs[4] != 0 {
		t.Errorf("rem overflow = %d, want 0", m.Regs[4])
	}
}

func TestAlignmentTraps(t *testing.T) {
	m := load(t, `
		li  r1, 0x1001
		ldw r2, 0(r1)
		halt
	`, Config{})
	res := run(t, m, 10)
	if res.Trap != isa.TrapAlign || res.IOR != 0x1001 {
		t.Errorf("res = %+v, want align trap at 0x1001", res)
	}
}

func TestIllegalInstructionTrap(t *testing.T) {
	m := load(t, `
		.word 0xFFFFFFFF
	`, Config{})
	res := m.Step()
	if res.Trap != isa.TrapIllegal {
		t.Errorf("trap = %v, want illegal", res.Trap)
	}
	if res.ISR != 0xFFFFFFFF {
		t.Errorf("ISR = %#x, want the raw word", res.ISR)
	}
}

func TestPrivilegeTraps(t *testing.T) {
	for _, src := range []string{
		"\tmfctl r1, rctr\n\thalt\n",
		"\tmtctl itmr, r1\n\thalt\n",
		"\trfi\n",
		"\thalt\n",
		"\twfi\n",
		"\titlbi r1, r2\n",
		"\tptlb\n",
		"\tdiag 1\n",
		"\tmftod r1\n",
	} {
		m := load(t, src, Config{})
		m.SetPL(3)
		res := m.Step()
		if res.Trap != isa.TrapPriv {
			t.Errorf("src %q at PL3: trap = %v, want priv", src, res.Trap)
		}
	}
}

func TestGateTrapPromotes(t *testing.T) {
	m := load(t, `
		.org 0
		gate r2, 0
		halt
	`, Config{})
	m.CRs[isa.CRIVA] = 0x2000
	m.SetPL(3)
	res := m.Step()
	if res.Trap != isa.TrapGate {
		t.Fatalf("trap = %v, want gate", res.Trap)
	}
	// rd got return address with PL bits even though the trap is pending.
	if m.Regs[2] != 4|3 {
		t.Errorf("gate rd = %#x, want 7", m.Regs[2])
	}
	m.DeliverTrap(res.Trap, res.ISR, res.IOR)
	if m.PL() != 0 {
		t.Errorf("PL after DeliverTrap = %d, want 0", m.PL())
	}
	if m.PC != 0x2000+uint32(isa.TrapGate)*isa.VectorStride {
		t.Errorf("PC = %#x", m.PC)
	}
	if m.CRs[isa.CRIPSW]&isa.PSWPLMask != 3 {
		t.Errorf("IPSW PL = %d, want 3", m.CRs[isa.CRIPSW]&isa.PSWPLMask)
	}
}

func TestDeliverTrapAndRFI(t *testing.T) {
	m := load(t, `
		break 5
	`, Config{})
	m.CRs[isa.CRIVA] = 0x3000
	m.PSW |= isa.PSWI
	res := m.Step()
	if res.Trap != isa.TrapBreak || res.ISR != 5 {
		t.Fatalf("res = %+v", res)
	}
	oldPSW := m.PSW
	m.DeliverTrap(res.Trap, res.ISR, res.IOR)
	if m.PSW&isa.PSWI != 0 {
		t.Error("interrupts not disabled by trap delivery")
	}
	if m.CRs[isa.CRIIA] != 0 {
		t.Errorf("IIA = %#x, want 0 (faulting PC)", m.CRs[isa.CRIIA])
	}
	if m.CRs[isa.CRIPSW] != oldPSW {
		t.Error("IPSW not saved")
	}
	// Write an RFI at the vector and execute it: state restored.
	vec := m.PC
	m.StorePhys32(vec, isa.MustEncode(isa.Inst{Op: isa.OpRFI}))
	m.CRs[isa.CRIIA] = 0x40 // return somewhere else
	m.Step()
	if m.PC != 0x40 {
		t.Errorf("PC after RFI = %#x, want 0x40", m.PC)
	}
	if m.PSW != oldPSW&^isa.PSWDefect {
		t.Errorf("PSW after RFI = %#x, want %#x", m.PSW, oldPSW)
	}
}

func TestRecoveryCounterEpochs(t *testing.T) {
	// Program an epoch of 10 instructions; the machine must execute
	// exactly 10 and then raise a recovery trap.
	m := load(t, `
	loop:
		addi r1, r1, 1
		b loop
	`, Config{})
	m.CRs[isa.CRRCTR] = 10
	m.PSW |= isa.PSWR
	var res StepResult
	steps := 0
	for {
		res = m.Step()
		if res.Trap != isa.TrapNone {
			break
		}
		steps++
		if steps > 50 {
			t.Fatal("no recovery trap")
		}
	}
	if res.Trap != isa.TrapRecovery {
		t.Fatalf("trap = %v, want recovery", res.Trap)
	}
	if steps != 10 {
		t.Errorf("executed %d instructions in epoch, want 10", steps)
	}
	if m.Cycles() != 10 {
		t.Errorf("cycles = %d, want 10", m.Cycles())
	}
	// Epochs are repeatable: reload the counter and run again.
	m.CRs[isa.CRRCTR] = 7
	steps = 0
	for {
		res = m.Step()
		if res.Trap != isa.TrapNone {
			break
		}
		steps++
	}
	if steps != 7 {
		t.Errorf("second epoch executed %d, want 7", steps)
	}
}

func TestIntervalTimerRaisesIRQ0(t *testing.T) {
	m := load(t, `
	loop:
		addi r1, r1, 1
		b loop
	`, Config{})
	m.CRs[isa.CRITMR] = 5
	m.CRs[isa.CREIEM] = 1 // unmask line 0
	m.PSW |= isa.PSWI
	steps := 0
	var res StepResult
	for {
		res = m.Step()
		if res.Trap != isa.TrapNone {
			break
		}
		steps++
		if steps > 20 {
			t.Fatal("no timer interrupt")
		}
	}
	if res.Trap != isa.TrapExtIntr {
		t.Fatalf("trap = %v, want extintr", res.Trap)
	}
	if steps != 5 {
		t.Errorf("timer fired after %d instructions, want 5", steps)
	}
	if m.CRs[isa.CREIRR]&1 == 0 {
		t.Error("EIRR bit 0 not set")
	}
}

func TestInterruptMasking(t *testing.T) {
	m := load(t, `
		addi r1, r1, 1
		addi r1, r1, 1
		halt
	`, Config{})
	m.RaiseIRQ(3)
	// PSW.I clear: no interrupt taken.
	if res := m.Step(); res.Trap != isa.TrapNone {
		t.Fatalf("interrupt taken with PSW.I clear: %+v", res)
	}
	// Unmasked + enabled: taken before next instruction.
	m.CRs[isa.CREIEM] = 1 << 3
	m.PSW |= isa.PSWI
	res := m.Step()
	if res.Trap != isa.TrapExtIntr || res.ISR != 1<<3 {
		t.Fatalf("res = %+v, want extintr line 3", res)
	}
	// Write-1-to-clear EIRR.
	m.WriteCR(isa.CREIRR, 1<<3)
	if m.IRQPending() {
		t.Error("IRQ still pending after clear")
	}
}

func TestWFI(t *testing.T) {
	m := load(t, `
		wfi
		halt
	`, Config{})
	res := m.Step()
	if !res.Idle {
		t.Fatalf("res = %+v, want Idle", res)
	}
	// WFI retired: PC advanced.
	if m.PC != 4 {
		t.Errorf("PC = %#x, want 4", m.PC)
	}
	// With an IRQ already raised, WFI is not idle.
	m2 := load(t, `
		wfi
		halt
	`, Config{})
	m2.RaiseIRQ(1)
	if res := m2.Step(); res.Idle {
		t.Error("WFI idle despite raised IRQ")
	}
}

func TestHalt(t *testing.T) {
	m := load(t, "\thalt\n", Config{})
	res := m.Step()
	if !res.Halted || !m.Halted() {
		t.Fatalf("res = %+v", res)
	}
	// Further steps are no-ops.
	res = m.Step()
	if !res.Halted {
		t.Error("step after halt not reported halted")
	}
	if m.Cycles() != 1 {
		t.Errorf("cycles = %d, want 1", m.Cycles())
	}
}

func TestDiag(t *testing.T) {
	m := load(t, "\tdiag 41\n\thalt\n", Config{})
	res := m.Step()
	if res.Diag != 42 {
		t.Errorf("Diag = %d, want 42 (code+1)", res.Diag)
	}
}

func TestMFTODUsesSource(t *testing.T) {
	var now uint32 = 12345
	m := load(t, "\tmftod r1\n\thalt\n", Config{TODSource: func() uint32 { return now }})
	m.Step()
	if m.Regs[1] != 12345 {
		t.Errorf("mftod = %d, want 12345", m.Regs[1])
	}
	// Default source: cycle count.
	m2 := load(t, "\tnop\n\tmftod r1\n\thalt\n", Config{})
	m2.Step()
	m2.Step()
	if m2.Regs[1] != 1 {
		t.Errorf("default TOD = %d, want 1 (cycles before mftod)", m2.Regs[1])
	}
}

func TestTODAndCPUIDReadOnly(t *testing.T) {
	m := New(Config{CPUID: 7})
	m.WriteCR(isa.CRTOD, 999)
	m.WriteCR(isa.CRCPUID, 999)
	if m.ReadCR(isa.CRCPUID) != 7 {
		t.Errorf("CPUID = %d, want 7", m.ReadCR(isa.CRCPUID))
	}
}

func TestVirtualAddressingAndTLBMiss(t *testing.T) {
	// Map virtual page 5 -> physical page 2, then access it.
	m := load(t, `
		; build TLB entry: vpn 5, perms RW, minPL 0 ; ppn 2
		li r1, (5 << 12) | 3      ; vaddr | read|write
		li r2, (2 << 12)
		itlbi r1, r2
		; turn on translation: PSW.V is bit 3 -> handled via test harness
		halt
	`, Config{})
	run(t, m, 100)
	// Enable translation manually and map the code page too.
	m.TLB.Insert(TLBEntry{VPN: 0, PPN: 0, Flags: isa.TLBRead | isa.TLBExec})
	m.PSW |= isa.PSWV
	// Data access via translation: write through virtual page 5.
	m.PC = 0 // not executing; direct translate test
	pa, tr := m.translate(5<<12|0x34, accessWrite)
	if tr != isa.TrapNone {
		t.Fatalf("translate trap %v", tr)
	}
	if pa != 2<<12|0x34 {
		t.Errorf("pa = %#x, want %#x", pa, 2<<12|0x34)
	}
	// Unmapped page: miss.
	if _, tr := m.translate(9<<12, accessRead); tr != isa.TrapDTLBMiss {
		t.Errorf("trap = %v, want dtlbmiss", tr)
	}
	// Exec from unmapped: ITLB miss.
	if _, tr := m.translate(9<<12, accessExec); tr != isa.TrapITLBMiss {
		t.Errorf("trap = %v, want itlbmiss", tr)
	}
}

func TestTLBPermissionEnforcement(t *testing.T) {
	m := New(Config{})
	m.TLB.Insert(TLBEntry{VPN: 1, PPN: 1, Flags: isa.TLBRead}) // read-only, minPL 0
	m.PSW |= isa.PSWV
	if _, tr := m.translate(1<<12, accessRead); tr != isa.TrapNone {
		t.Errorf("read trap = %v", tr)
	}
	if _, tr := m.translate(1<<12, accessWrite); tr != isa.TrapAccess {
		t.Errorf("write trap = %v, want access", tr)
	}
	// minPL 1 page: PL 2 denied, PL 1 allowed, PL 0 always allowed.
	m.TLB.Insert(TLBEntry{VPN: 2, PPN: 2, Flags: isa.TLBRead | 1<<isa.TLBPLShift})
	m.SetPL(2)
	if _, tr := m.translate(2<<12, accessRead); tr != isa.TrapAccess {
		t.Errorf("PL2 read = %v, want access trap", tr)
	}
	m.SetPL(1)
	if _, tr := m.translate(2<<12, accessRead); tr != isa.TrapNone {
		t.Errorf("PL1 read = %v, want none", tr)
	}
	m.SetPL(0)
	if _, tr := m.translate(2<<12, accessRead); tr != isa.TrapNone {
		t.Errorf("PL0 read = %v, want none", tr)
	}
}

func TestPTLBPurges(t *testing.T) {
	m := New(Config{})
	m.TLB.Insert(TLBEntry{VPN: 1, PPN: 1, Flags: isa.TLBRead})
	m.TLB.Purge()
	if len(m.TLB.Entries()) != 0 {
		t.Error("TLB not purged")
	}
	if m.TLB.Stats.Purges != 1 {
		t.Error("purge not counted")
	}
}

func TestProbeInstruction(t *testing.T) {
	m := load(t, `
		li r1, 0x1000
		probe r3, r1, 0
		halt
	`, Config{})
	run(t, m, 10)
	if m.Regs[3] != 1 {
		t.Errorf("probe real-mode RAM = %d, want 1", m.Regs[3])
	}
	// MMIO probe at PL3 in real mode: denied.
	m2 := New(Config{})
	m2.SetPL(3)
	m2.Regs[1] = m2.Config().MMIOBase
	m2.StorePhys32(0, isa.MustEncode(isa.Inst{Op: isa.OpPROBE, Rd: 3, R1: 1, Imm: 0}))
	m2.Step()
	if m2.Regs[3] != 0 {
		t.Errorf("probe MMIO at PL3 = %d, want 0", m2.Regs[3])
	}
}

// mmioRecorder is a test MMIO device.
type mmioRecorder struct {
	loads  []uint32
	stores []uint32
	val    uint32
}

func (d *mmioRecorder) MMIOLoad(addr uint32, size int) (uint32, error) {
	d.loads = append(d.loads, addr)
	return d.val, nil
}

func (d *mmioRecorder) MMIOStore(addr uint32, size int, v uint32) error {
	d.stores = append(d.stores, addr)
	d.val = v
	return nil
}

func TestMMIOAccess(t *testing.T) {
	dev := &mmioRecorder{val: 0x55}
	m := load(t, `
		li  r1, 0xF0000000
		ldw r2, 0x10(r1)
		stw r2, 0x14(r1)
		halt
	`, Config{})
	m.Bus = dev
	run(t, m, 10)
	if m.Regs[2] != 0x55 {
		t.Errorf("MMIO load = %#x", m.Regs[2])
	}
	if len(dev.loads) != 1 || dev.loads[0] != 0x10 {
		t.Errorf("loads = %v", dev.loads)
	}
	if len(dev.stores) != 1 || dev.stores[0] != 0x14 || dev.val != 0x55 {
		t.Errorf("stores = %v val = %#x", dev.stores, dev.val)
	}
}

func TestMMIODeniedAbovePL0(t *testing.T) {
	dev := &mmioRecorder{}
	m := load(t, `
		li  r1, 0xF0000000
		ldw r2, 0(r1)
		halt
	`, Config{})
	m.Bus = dev
	m.SetPL(1)
	res := run(t, m, 10)
	if res.Trap != isa.TrapAccess {
		t.Errorf("trap = %v, want access (MMIO needs PL 0)", res.Trap)
	}
	if len(dev.loads) != 0 {
		t.Error("device touched despite trap")
	}
}

func TestMMIOWithoutBusMachineChecks(t *testing.T) {
	m := load(t, `
		li  r1, 0xF0000000
		ldw r2, 0(r1)
		halt
	`, Config{})
	res := run(t, m, 10)
	if res.Trap != isa.TrapMachine {
		t.Errorf("trap = %v, want machine", res.Trap)
	}
}

func TestBadPhysicalAddressMachineChecks(t *testing.T) {
	m := load(t, `
		li  r1, 0x00800000   ; beyond default 8 MiB
		ldw r2, 0(r1)
		halt
	`, Config{})
	res := run(t, m, 10)
	if res.Trap != isa.TrapMachine {
		t.Errorf("trap = %v, want machine", res.Trap)
	}
}

func TestDigestDeterministicAndSensitive(t *testing.T) {
	mk := func() *Machine {
		return load(t, `
			addi r1, r0, 42
			halt
		`, Config{})
	}
	a, b := mk(), mk()
	run(t, a, 10)
	run(t, b, 10)
	if a.Digest() != b.Digest() {
		t.Error("identical runs produced different digests")
	}
	if a.DigestMemory() != b.DigestMemory() {
		t.Error("identical runs produced different memory digests")
	}
	b.Regs[5] = 1
	if a.Digest() == b.Digest() {
		t.Error("digest insensitive to register change")
	}
	c := mk()
	run(t, c, 10)
	c.WriteBytes(0x100, []byte{1})
	if a.DigestMemory() == c.DigestMemory() {
		t.Error("memory digest insensitive to memory change")
	}
}

// TestRandomTLBDivergence reproduces the paper's §3.2 observation: two
// processors with non-deterministic TLB replacement, fed the SAME
// reference string, end up with DIFFERENT TLB contents — so a TLB miss
// trap occurs on one and not the other, breaking the Ordinary Instruction
// Assumption.
func TestRandomTLBDivergence(t *testing.T) {
	mkTLB := func(seed int64) *TLB {
		return NewTLB(4, NewRandomPolicy(seed))
	}
	refString := []uint32{1, 2, 3, 4, 5, 6, 7, 8, 1, 9, 2, 10, 3, 11}
	runRefs := func(tlb *TLB) []bool {
		var hits []bool
		for _, vpn := range refString {
			_, hit := tlb.Lookup(vpn)
			if !hit {
				tlb.Insert(TLBEntry{VPN: vpn, PPN: vpn, Flags: isa.TLBRead})
			}
			hits = append(hits, hit)
		}
		return hits
	}
	a := runRefs(mkTLB(1))
	b := runRefs(mkTLB(2))
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("expected divergent hit/miss patterns with different chip seeds")
	}
	// And with a deterministic policy, identical seeds or not, behaviour
	// is identical (the hypervisor's TLB-takeover fix relies on this).
	c := runRefs(NewTLB(4, NewLRUPolicy(4)))
	d := runRefs(NewTLB(4, NewLRUPolicy(4)))
	for i := range c {
		if c[i] != d[i] {
			t.Fatal("LRU policy diverged")
		}
	}
}

func TestTLBReplacementPolicies(t *testing.T) {
	// LRU: fill 2-entry TLB, touch entry 1, insert third: evicts LRU.
	tlb := NewTLB(2, NewLRUPolicy(2))
	tlb.Insert(TLBEntry{VPN: 1, PPN: 1})
	tlb.Insert(TLBEntry{VPN: 2, PPN: 2})
	tlb.Lookup(1) // touch 1
	tlb.Insert(TLBEntry{VPN: 3, PPN: 3})
	if _, ok := tlb.Probe(2); ok {
		t.Error("LRU should have evicted vpn 2")
	}
	if _, ok := tlb.Probe(1); !ok {
		t.Error("LRU evicted recently used vpn 1")
	}
	// Round robin cycles.
	rr := NewTLB(2, NewRoundRobinPolicy())
	rr.Insert(TLBEntry{VPN: 1})
	rr.Insert(TLBEntry{VPN: 2})
	rr.Insert(TLBEntry{VPN: 3})
	rr.Insert(TLBEntry{VPN: 4})
	if _, ok := rr.Probe(3); !ok {
		t.Error("round robin evicted wrong slot")
	}
	// Insert with same VPN replaces in place.
	rr.Insert(TLBEntry{VPN: 4, PPN: 9})
	e, _ := rr.Probe(4)
	if e.PPN != 9 {
		t.Error("same-VPN insert did not replace")
	}
}

func TestITLBIInstruction(t *testing.T) {
	m := load(t, `
		li r1, (7 << 12) | 7    ; vpn 7, RWX, minPL 0
		li r2, (3 << 12)
		itlbi r1, r2
		halt
	`, Config{})
	run(t, m, 10)
	e, ok := m.TLB.Probe(7)
	if !ok {
		t.Fatal("entry not inserted")
	}
	if e.PPN != 3 || e.Flags&isa.TLBRead == 0 || e.Flags&isa.TLBWrite == 0 || e.Flags&isa.TLBExec == 0 {
		t.Errorf("entry = %+v", e)
	}
}

func TestStatsCounting(t *testing.T) {
	m := load(t, `
		addi r1, r0, 1
		ldw r2, 0x100(r0)
		stw r2, 0x104(r0)
		b next
	next:
		mfctl r3, iva
		halt
	`, Config{})
	run(t, m, 20)
	if m.Stats.Loads != 1 || m.Stats.Stores != 1 {
		t.Errorf("loads/stores = %d/%d", m.Stats.Loads, m.Stats.Stores)
	}
	if m.Stats.Branches != 1 {
		t.Errorf("branches = %d", m.Stats.Branches)
	}
	if m.Stats.Privileged == 0 {
		t.Error("privileged instructions not counted")
	}
	if m.Stats.Instructions != 6 {
		t.Errorf("instructions = %d, want 6", m.Stats.Instructions)
	}
}

func TestPCAlignmentTrap(t *testing.T) {
	m := New(Config{})
	m.PC = 2
	res := m.Step()
	if res.Trap != isa.TrapAlign {
		t.Errorf("trap = %v, want align", res.Trap)
	}
}

// Determinism property: two identical machines running the same program
// remain in identical states (digest per step) — the Ordinary Instruction
// Assumption holds for PA-lite with a deterministic TLB policy.
func TestLockstepDeterminismProperty(t *testing.T) {
	src := `
		addi r1, r0, 0
		addi r2, r0, 1
	loop:
		add  r3, r1, r2
		mov  r1, r2
		mov  r2, r3
		slti r4, r3, 10000
		stw  r3, 0x200(r0)
		ldw  r5, 0x200(r0)
		bne  r4, r0, loop
		halt
	`
	a := load(t, src, Config{})
	b := load(t, src, Config{})
	for i := 0; i < 100000; i++ {
		ra := a.Step()
		rb := b.Step()
		if ra != rb {
			t.Fatalf("step %d: results differ: %+v vs %+v", i, ra, rb)
		}
		if a.Digest() != b.Digest() {
			t.Fatalf("step %d: state digests differ", i)
		}
		if ra.Halted {
			break
		}
	}
}
