// Seeded differential fuzzing of the superblock trace layer: randomly
// generated instruction pages — ALU-dense, branch-dense, memory-dense,
// privileged/resync-heavy, and virtual-mode permission-trap mixes —
// are driven through the Step and Run dispatch paths on identical
// machines. Architected digests are compared at every chunk boundary
// and full statistics (including TLB replacement state, the strictest
// observable) at the end. Seeds are fixed, so any failure reproduces.
//
// Every generated program installs real interruption handlers at the
// vector table, so trap-dense mixes keep making forward progress: the
// default handler skips the faulting instruction and returns, the
// virtual-mode mix remaps TLB misses and retries, and the interval
// timer re-arms itself. Trap delivery, RFI, ITLBI and PTLB are all
// resync-class instructions, so these mixes constantly enter and leave
// traces mid-page — exactly the seams where the trace executor's
// recency bookkeeping has to replay Step's TLB touch order.
package machine_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/machine"
)

const (
	fuzzIVA      = 0x1000 // vector table base (physical)
	fuzzTimerVal = 1777   // interval-timer reload used by the virt mix
)

// fuzzVectors emits the interruption vector table at fuzzIVA. Every
// slot is exactly isa.VectorStride bytes. The default handler bumps the
// saved instruction address past the trapping instruction and returns;
// with remapMiss, the two TLB-miss slots instead identity-map the
// faulting page read/write/execute and retry; with timerReload, the
// interval-timer slot re-arms the timer. Handlers run untranslated at
// PL 0 (DeliverTrap semantics) and own r21/r22.
func fuzzVectors(remapMiss, timerReload bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, ".org %#x\n", fuzzIVA)
	for t := 0; t < isa.NumTrapCodes; t++ {
		switch {
		case remapMiss && (isa.Trap(t) == isa.TrapITLBMiss || isa.Trap(t) == isa.TrapDTLBMiss):
			b.WriteString(`	mfctl r21, cr21   ; faulting address (IOR)
	srli r21, r21, 12
	slli r21, r21, 12 ; page base
	ori r22, r21, 7   ; identity map, R|W|X
	itlbi r22, r21
	rfi
	.space 8
`)
		case timerReload && isa.Trap(t) == isa.TrapITimer:
			fmt.Fprintf(&b, "\tli r21, %d\n\tmtctl itmr, r21\n\trfi\n\t.space 16\n", fuzzTimerVal)
		default:
			b.WriteString(`	mfctl r21, cr23   ; saved PC (IIA)
	addi r21, r21, 4
	mtctl cr23, r21   ; skip the trapping instruction
	rfi
	.space 16
`)
		}
	}
	b.WriteString(".align 4096\n") // boot lands on the next page
	return b.String()
}

// fuzzGen builds one random program around the shared skeleton:
// vectors, a boot stub that points IVA at them, then a counted loop
// over the mix-specific body. Bodies may clobber r1..r15 freely;
// r16-r19 hold data-page bases, r20 is the loop counter, r21/r22
// belong to the trap handlers.
type fuzzGen struct {
	r *rand.Rand
	b strings.Builder
}

func (g *fuzzGen) f(format string, a ...any) { fmt.Fprintf(&g.b, "\t"+format+"\n", a...) }
func (g *fuzzGen) label(l string)            { g.b.WriteString(l + ":\n") }
func (g *fuzzGen) reg() int                  { return 1 + g.r.Intn(15) }

var fuzzALUOps = []string{"add", "sub", "and", "or", "xor", "sll", "srl", "sra", "slt", "sltu", "mul"}
var fuzzALUImm = []string{"addi", "andi", "ori", "xori", "slti"}

func (g *fuzzGen) alu() {
	switch g.r.Intn(10) {
	case 0, 1:
		g.f("%s r%d, r%d, %d", fuzzALUImm[g.r.Intn(len(fuzzALUImm))], g.reg(), g.reg(), g.r.Intn(4001)-2000)
	case 2:
		g.f("%s r%d, r%d, %d", []string{"slli", "srli", "srai"}[g.r.Intn(3)], g.reg(), g.reg(), g.r.Intn(32))
	case 3:
		// Divide/remainder; a zero divisor raises an arithmetic trap
		// that the skip handler swallows on both paths.
		g.f("%s r%d, r%d, r%d", []string{"div", "rem"}[g.r.Intn(2)], g.reg(), g.reg(), g.reg())
	case 4:
		g.f("lui r%d, %d", g.reg(), g.r.Intn(1<<16))
	default:
		g.f("%s r%d, r%d, r%d", fuzzALUOps[g.r.Intn(len(fuzzALUOps))], g.reg(), g.reg(), g.reg())
	}
}

// mem emits one load or store through base register rb, aligned for its
// width (misaligned accesses are emitted by the virt mix explicitly).
func (g *fuzzGen) mem(rb int) {
	off := g.r.Intn(1024) * 4
	switch g.r.Intn(6) {
	case 0:
		g.f("ldw r%d, %d(r%d)", g.reg(), off, rb)
	case 1:
		g.f("stw r%d, %d(r%d)", g.reg(), off, rb)
	case 2:
		g.f("ldh r%d, %d(r%d)", g.reg(), off+2*g.r.Intn(2), rb)
	case 3:
		g.f("sth r%d, %d(r%d)", g.reg(), off+2*g.r.Intn(2), rb)
	case 4:
		g.f("ldb r%d, %d(r%d)", g.reg(), off+g.r.Intn(4), rb)
	default:
		g.f("stb r%d, %d(r%d)", g.reg(), off+g.r.Intn(4), rb)
	}
}

// boot emits the common prologue: IVA setup, data-page bases, loop
// counter. Extra setup (TLB mappings, timer) is passed through.
func (g *fuzzGen) boot(extra func()) {
	g.label("boot")
	g.f("li r1, %#x", fuzzIVA)
	g.f("mtctl cr14, r1") // IVA
	g.f("li r16, 0x10000")
	g.f("li r17, 0x11000")
	if extra != nil {
		extra()
	}
	g.f("li r20, 4000")
	g.label("loop")
}

func (g *fuzzGen) close() string {
	g.f("addi r20, r20, -1")
	g.f("bne r20, r0, loop")
	g.f("halt")
	return g.b.String()
}

// genALU: straight-line arithmetic, the densest trace-fusion case.
func genALU(r *rand.Rand) string {
	g := &fuzzGen{r: r}
	g.boot(nil)
	for i := 0; i < 120+r.Intn(120); i++ {
		g.alu()
	}
	return g.close()
}

// genBranch: short forward branches every few instructions, including
// compare+branch pairs eligible for fusion. Traces stay tiny and chain
// within the page.
func genBranch(r *rand.Rand) string {
	g := &fuzzGen{r: r}
	g.boot(nil)
	next := 0
	for i := 0; i < 60+r.Intn(60); i++ {
		g.alu()
		if r.Intn(2) == 0 {
			l := fmt.Sprintf("f%d", next)
			next++
			if r.Intn(2) == 0 {
				g.f("slti r%d, r%d, %d", g.reg(), g.reg(), r.Intn(200)-100)
			}
			br := []string{"beq", "bne", "blt", "bge", "bltu", "bgeu"}[r.Intn(6)]
			g.f("%s r%d, r%d, %s", br, g.reg(), g.reg(), l)
			for n := r.Intn(3); n >= 0; n-- {
				g.alu()
			}
			g.label(l)
		}
	}
	return g.close()
}

// genMem: load/store-dense over two physical data pages, stressing the
// executor's cached-translation path and its hit accounting.
func genMem(r *rand.Rand) string {
	g := &fuzzGen{r: r}
	g.boot(nil)
	for i := 0; i < 100+r.Intn(100); i++ {
		if r.Intn(3) == 0 {
			g.alu()
		} else {
			g.mem(16 + r.Intn(2))
		}
	}
	return g.close()
}

// genPriv: privileged and resync-class instructions (CR moves, TLB
// inserts and purges, probes, the odd BREAK) interleaved with plain
// arithmetic. Every resync instruction ends the enclosing trace, so
// this mix exercises constant trace entry/exit and ineligible pages.
func genPriv(r *rand.Rand) string {
	g := &fuzzGen{r: r}
	g.boot(nil)
	for i := 0; i < 100+r.Intn(100); i++ {
		if r.Intn(10) < 6 {
			g.alu()
			continue
		}
		switch r.Intn(6) {
		case 0:
			// Readable CRs: IVA, ISR, IOR, IPSW, IIA, EIEM, CPUID.
			g.f("mfctl r%d, cr%d", g.reg(), []int{14, 20, 21, 22, 23, 24, 27}[r.Intn(7)])
		case 1:
			g.f("mtctl cr24, r%d", g.reg()) // EIEM: any value is inert here
		case 2:
			g.f("itlbi r%d, r%d", g.reg(), g.reg()) // untranslated mode: inert mapping
		case 3:
			g.f("ptlb")
		case 4:
			g.f("probe r%d, r%d, %d", g.reg(), g.reg(), r.Intn(2))
		default:
			g.f("break %d", r.Intn(32)) // skip handler swallows it
		}
	}
	return g.close()
}

// genVirt: virtual addressing over a deliberately undersized TLB. Boot
// maps two code pages (execute-only), a read/write data page and a
// read-only page, arms the interval timer, and RFIs into translated
// mode. The body mixes legal accesses with stores to the read-only
// page (permission traps), touches of an unmapped page (TLB-miss
// remaps), and misaligned accesses (alignment traps). With fewer TLB
// slots than live pages, every iteration churns the replacement state,
// so any divergence in the trace executor's touch order surfaces as a
// TLB statistics or digest mismatch.
func genVirt(r *rand.Rand) string {
	g := &fuzzGen{r: r}
	g.label("boot")
	g.f("li r1, %#x", fuzzIVA)
	g.f("mtctl cr14, r1")
	for _, m := range []struct{ page, flags int }{
		{0x3000, 5}, {0x4000, 5}, // code: R|X
		{0x8000, 3}, // data: R|W
		{0x9000, 1}, // data: R only
	} {
		g.f("li r1, %#x", m.page|m.flags)
		g.f("li r2, %#x", m.page)
		g.f("itlbi r1, r2")
	}
	g.f("li r16, 0x8000") // read/write
	g.f("li r17, 0x9000") // read-only
	g.f("li r18, 0xA000") // unmapped
	g.f("li r20, 4000")
	g.f("li r1, %d", fuzzTimerVal)
	g.f("mtctl itmr, r1")
	g.f("li r1, %d", isa.PSWV)
	g.f("mtctl cr22, r1") // IPSW: translation on, PL 0
	g.f("li r1, vbody")
	g.f("mtctl cr23, r1") // IIA
	g.f("rfi")

	body := func(n int) {
		for i := 0; i < n; i++ {
			switch r.Intn(10) {
			case 0:
				g.f("stw r%d, %d(r17)", g.reg(), 4*r.Intn(1024)) // permission trap
			case 1:
				g.mem(18) // TLB miss, remapped by the handler
			case 2:
				g.f("ldw r%d, %d(r16)", g.reg(), 4*r.Intn(1023)+1+r.Intn(2)) // alignment trap
			case 3, 4, 5:
				g.mem(16)
			case 6:
				g.f("ldw r%d, %d(r17)", g.reg(), 4*r.Intn(1024)) // read-only page read: legal
			default:
				g.alu()
			}
		}
	}
	g.b.WriteString(".align 4096\n") // first virtual code page (0x3000)
	g.label("vbody")
	body(80 + r.Intn(80))
	g.f("b vbody2")
	g.b.WriteString(".align 4096\n") // second virtual code page (0x4000)
	g.label("vbody2")
	body(40 + r.Intn(40))
	g.f("addi r20, r20, -1")
	g.f("bne r20, r0, vbody")
	g.f("halt")
	return g.b.String()
}

// fuzzDiff assembles vectors+program, boots two identical machines, and
// drives one with Step and one with Run, comparing at every chunk.
func fuzzDiff(t *testing.T, cfg machine.Config, src string, chunk, limit uint64) {
	t.Helper()
	p, err := asm.Assemble("fuzz", src)
	if err != nil {
		t.Fatalf("assemble: %v\n%s", err, src)
	}
	entry := p.MustSymbol("boot")
	offCfg := cfg
	offCfg.NoTraces = true
	// Triangle: Step reference, Run with traces, Run without traces.
	a, b, c := machine.New(cfg), machine.New(cfg), machine.New(offCfg)
	a.LoadProgram(p.Origin, p.Words, entry)
	b.LoadProgram(p.Origin, p.Words, entry)
	c.LoadProgram(p.Origin, p.Words, entry)

	for epoch := 0; a.Cycles() < limit && !a.Halted(); epoch++ {
		stepChunk(a, chunk)
		runChunk(b, chunk)
		runChunk(c, chunk)
		if a.Cycles() != b.Cycles() || a.Cycles() != c.Cycles() {
			t.Fatalf("epoch %d: cycles diverge: step=%d run=%d run-notrace=%d",
				epoch, a.Cycles(), b.Cycles(), c.Cycles())
		}
		if a.Digest() != b.Digest() || a.Digest() != c.Digest() {
			t.Fatalf("epoch %d (cycle %d): state digests diverge: step pc=%#x run pc=%#x run-notrace pc=%#x",
				epoch, a.Cycles(), a.PC, b.PC, c.PC)
		}
		if epoch%8 == 0 && (a.DigestMemory() != b.DigestMemory() || a.DigestMemory() != c.DigestMemory()) {
			t.Fatalf("epoch %d (cycle %d): memory digests diverge", epoch, a.Cycles())
		}
	}
	for _, m := range []*machine.Machine{b, c} {
		if a.Halted() != m.Halted() {
			t.Fatalf("halt state diverges: step=%v run=%v", a.Halted(), m.Halted())
		}
		if a.DigestMemory() != m.DigestMemory() {
			t.Fatalf("final memory digests diverge")
		}
		if a.Stats != m.Stats {
			t.Fatalf("instruction statistics diverge:\nstep: %+v\nrun:  %+v", a.Stats, m.Stats)
		}
		if a.TLB.Stats != m.TLB.Stats {
			t.Fatalf("TLB statistics diverge:\nstep: %+v\nrun:  %+v", a.TLB.Stats, m.TLB.Stats)
		}
	}
}

func TestTraceFuzzDifferential(t *testing.T) {
	mixes := []struct {
		name string
		cfg  machine.Config
		vec  string
		gen  func(*rand.Rand) string
	}{
		{"alu", machine.Config{}, fuzzVectors(false, false), genALU},
		{"branch", machine.Config{}, fuzzVectors(false, false), genBranch},
		{"mem", machine.Config{}, fuzzVectors(false, false), genMem},
		{"priv", machine.Config{}, fuzzVectors(false, false), genPriv},
		{"virt", machine.Config{TLBSize: 4}, fuzzVectors(true, true), genVirt},
		{"virt-random-tlb", machine.Config{TLBSize: 4, TLBPolicy: "random", TLBSeed: 99},
			fuzzVectors(true, true), genVirt},
	}
	chunks := []uint64{97, 769, 1021}
	for _, mix := range mixes {
		for seed := int64(1); seed <= 3; seed++ {
			name := fmt.Sprintf("%s/seed%d", mix.name, seed)
			t.Run(name, func(t *testing.T) {
				src := mix.vec + mix.gen(rand.New(rand.NewSource(seed*7919+int64(len(mix.name)))))
				fuzzDiff(t, mix.cfg, src, chunks[seed%int64(len(chunks))], 120_000)
			})
		}
	}
}
