// Differential tests for the translation cache: every way a cached
// page's contents can change out from under the batched executor —
// self-modifying code, stores from another page, DMA, and TLB rewrites
// that redirect the same virtual page to different physical contents —
// must leave Run bit-identical to Step.
package machine_test

import (
	"fmt"
	"testing"

	"repro/internal/asm"
	"repro/internal/machine"
)

// word assembles a single instruction and returns its encoding.
func word(t *testing.T, src string) uint32 {
	t.Helper()
	p, err := asm.Assemble("word.s", src)
	if err != nil {
		t.Fatal(err)
	}
	return p.Words[0]
}

// diffSource drives one machine per path (Step reference vs batched
// Run) over the same program, comparing digests at every chunk and full
// state at the end. mutate, when set, is applied identically to both
// machines between chunks (models DMA).
func diffSource(t *testing.T, src string, chunk, limit uint64, mutate func(step int, m *machine.Machine)) {
	t.Helper()
	p, err := asm.Assemble("diff.s", src)
	if err != nil {
		t.Fatal(err)
	}
	a, b := machine.New(machine.Config{}), machine.New(machine.Config{})
	for _, m := range []*machine.Machine{a, b} {
		m.LoadProgram(p.Origin, p.Words, p.Origin)
	}
	for i := 0; a.Cycles() < limit && !a.Halted(); i++ {
		stepChunk(a, chunk)
		runChunk(b, chunk)
		if a.Cycles() != b.Cycles() {
			t.Fatalf("chunk %d: cycles diverge: step=%d run=%d", i, a.Cycles(), b.Cycles())
		}
		if a.Digest() != b.Digest() {
			t.Fatalf("chunk %d (cycle %d): digests diverge: step pc=%#x run pc=%#x",
				i, a.Cycles(), a.PC, b.PC)
		}
		if mutate != nil {
			mutate(i, a)
			mutate(i, b)
		}
	}
	if a.Halted() != b.Halted() {
		t.Fatalf("halt state diverges: step=%v run=%v", a.Halted(), b.Halted())
	}
	if a.DigestMemory() != b.DigestMemory() {
		t.Fatal("final memory digests diverge")
	}
	if a.Stats != b.Stats {
		t.Fatalf("statistics diverge:\nstep: %+v\nrun:  %+v", a.Stats, b.Stats)
	}
	if a.TLB.Stats != b.TLB.Stats {
		t.Fatalf("TLB statistics diverge:\nstep: %+v\nrun:  %+v", a.TLB.Stats, b.TLB.Stats)
	}
}

// TestRunDifferentialSelfModifyingCode stores into the page being
// executed: the patched slot sits a few instructions ahead of the
// store, so the invalidation must take effect within the same batch.
func TestRunDifferentialSelfModifyingCode(t *testing.T) {
	w1 := word(t, "addi r3, r3, 1")
	w2 := word(t, "xor  r3, r3, r5")
	src := fmt.Sprintf(`
		la   r6, site
		li   r7, %#x
		li   r8, %#x
		addi r5, r0, 60
	loop:
		stw  r7, 0(r6)
	site:
		nop              ; overwritten by the store two words back
		stw  r8, 0(r6)
		xor  r7, r7, r8  ; swap the two variants for the next pass
		xor  r8, r7, r8
		xor  r7, r7, r8
		addi r5, r5, -1
		bne  r5, r0, loop
		halt
	`, w1, w2)
	for _, chunk := range []uint64{1, 3, 7, 64, 1021} {
		diffSource(t, src, chunk, 4_000_000, nil)
	}
}

// TestRunDifferentialCrossPageStore executes a subroutine on a separate
// page and patches its body from the first page: a store from one page
// must invalidate the decoded image of another.
func TestRunDifferentialCrossPageStore(t *testing.T) {
	w1 := word(t, "addi r3, r3, 1")
	w2 := word(t, "xor  r3, r3, r5")
	src := fmt.Sprintf(`
		la   r6, sub
		li   r7, %#x
		li   r8, %#x
		addi r5, r0, 40
	loop:
		stw  r7, 0(r6)
		bl   r9, sub
		stw  r8, 0(r6)
		bl   r9, sub
		addi r5, r5, -1
		bne  r5, r0, loop
		halt
	.org 0x1000
	sub:
		nop              ; patched from the other page
		bv   r9
	`, w1, w2)
	for _, chunk := range []uint64{2, 5, 257, 4096} {
		diffSource(t, src, chunk, 4_000_000, nil)
	}
}

// TestRunDifferentialDMAIntoCachedPage models a device writing into a
// page that has been executed (WriteBytes, the DMA path): both paths
// must observe the new instructions at the same instruction boundary.
func TestRunDifferentialDMAIntoCachedPage(t *testing.T) {
	// The guest spins incrementing r3; DMA rewrites the loop body
	// between chunks, alternating increment sizes, and finally plants a
	// HALT.
	incr := func(k int) []byte {
		p := asm.MustAssemble("dma.s", fmt.Sprintf(`
		loop:
			addi r3, r3, %d
			addi r4, r4, 1
			b    loop
		`, k))
		out := make([]byte, 4*len(p.Words))
		for i, w := range p.Words {
			out[4*i] = byte(w)
			out[4*i+1] = byte(w >> 8)
			out[4*i+2] = byte(w >> 16)
			out[4*i+3] = byte(w >> 24)
		}
		return out
	}
	halt := asm.MustAssemble("halt.s", "halt").Words[0]
	diffSource(t, `
	loop:
		addi r3, r3, 1
		addi r4, r4, 1
		b    loop
	`, 173, 20_000, func(step int, m *machine.Machine) {
		switch {
		case step < 40:
			m.WriteBytes(0, incr(step%7+1))
		case step == 40:
			m.StorePhys32(0, halt)
		}
	})
}

// TestRunDifferentialTLBRemapMidBatch runs in virtual mode and remaps
// the EXECUTING virtual page to a different physical page mid-batch
// with ITLBI: the very next fetch must come from the new frame's
// decoded image. Both frames hold code of identical layout but
// different arithmetic, so any stale fetch diverges the digest.
func TestRunDifferentialTLBRemapMidBatch(t *testing.T) {
	copyBody := func(k, m, other int) string {
		return fmt.Sprintf(`
		li   r9, 0x10007     ; VA page 0x10, perms R|W|X, min PL 0
		li   r10, %#x        ; the other frame
		addi r5, r0, 5
	lp%d:
		addi r3, r3, %d
		addi r5, r5, -1
		bne  r5, r0, lp%d
		itlbi r9, r10        ; remap our own page: next fetch = other frame
		addi r3, r3, %d      ; executed only in the frame mapped AFTER a remap
		halt
		`, other, k, k, k, m)
	}
	src := `
		; real-mode prologue: map VA 0x10000 -> PA 0x1000 (frame A),
		; then enter virtual mode at VA 0x10000 via RFI.
		li   r1, 0x10007
		li   r2, 0x1000
		itlbi r1, r2
		li   r3, 8           ; IPSW: PSW.V, PL 0
		mtctl ipsw, r3
		li   r3, 0x10000
		mtctl iia, r3
		addi r3, r0, 0       ; clear the work register
		rfi
	.org 0x1000
	` + copyBody(1, 100, 0x2000) + `
	.org 0x2000
	` + copyBody(2, 1000, 0x1000)
	for _, chunk := range []uint64{1, 2, 3, 64, 4096} {
		diffSource(t, src, chunk, 4_000_000, nil)
	}
}

// TestRunDifferentialPTLBMidBatch purges the TLB mid-batch while in
// virtual mode: the subsequent fetch must miss identically on both
// paths, and after the trap handler reinstalls the mapping, execution
// continues from the (still valid) decoded page.
func TestRunDifferentialPTLBMidBatch(t *testing.T) {
	src := `
		; Trap vectors live at PA 0 (IVA = 0, stride 32 bytes). The
		; ITLB-miss handler (slot 3, 0x60) reinstalls the mapping and
		; retries; it is 6 instructions, fitting the 8-instruction slot.
		b    boot
	.org 0x60            ; TrapITLBMiss vector
		li   r1, 0x10007
		li   r2, 0x1000
		itlbi r1, r2
		rfi
	.org 0x200
	boot:
		li   r1, 0x10007
		li   r2, 0x1000
		itlbi r1, r2
		li   r3, 8
		mtctl ipsw, r3
		li   r3, 0x10000
		mtctl iia, r3
		rfi
	.org 0x1000
		addi r5, r0, 20
	lp:
		addi r3, r3, 3
		ptlb                 ; purge: the NEXT fetch takes an ITLB miss
		addi r3, r3, 5
		addi r5, r5, -1
		bne  r5, r0, lp
		halt
	`
	for _, chunk := range []uint64{1, 2, 7, 129, 4096} {
		diffSource(t, src, chunk, 4_000_000, nil)
	}
}

// TestRunDifferentialStoreWithinLiveTrace stores into an instruction
// slot a few words AHEAD of the store inside one straight-line run: by
// the time the store retires, the trace executor has already lowered
// the remaining instructions of the superblock, so it must notice the
// overwrite (generation check), abandon the stale tail, and resync so
// the patched instruction executes its new decoding — exactly as Step
// does on its next fetch. The patch alternates between a plain ALU op
// and BV (an absolute jump that skips two instructions), so a stale
// tail diverges both the digest and the retired-instruction mix.
func TestRunDifferentialStoreWithinLiveTrace(t *testing.T) {
	wALU := word(t, "addi r3, r3, 7")
	wBV := word(t, "bv   r9")
	src := fmt.Sprintf(`
		la   r6, site
		la   r9, over
		li   r7, %#x
		li   r8, %#x
		addi r5, r0, 200
	loop:
		stw  r7, 0(r6)   ; patch six words ahead, inside this superblock
		addi r3, r3, 1
		add  r4, r4, r3
		xor  r4, r4, r3
		sub  r4, r4, r3
		slt  r2, r4, r3
	site:
		nop              ; becomes ADDI or BV on alternate passes
		addi r3, r3, 11
		addi r3, r3, 13
	over:
		xor  r7, r7, r8  ; swap variants for the next pass
		xor  r8, r7, r8
		xor  r7, r7, r8
		addi r5, r5, -1
		bne  r5, r0, loop
		halt
	`, wALU, wBV)
	for _, chunk := range []uint64{1, 3, 7, 64, 1021, 8191} {
		diffSource(t, src, chunk, 4_000_000, nil)
	}
}

// TestRunDifferentialCrossPageStoreIntoTracedCode patches the INNER
// LOOP of a subroutine on another page — code hot enough to have its
// own compiled, chained traces — and immediately calls back into it,
// all within one large batch: the store must drop the other page's
// trace records, and the recompiled trace must decode the patched
// word. (The companion TestRunDifferentialCrossPageStore patches a
// straight-line callee; this one targets a trace that loops on
// itself, the chaining executor's specialized case.)
func TestRunDifferentialCrossPageStoreIntoTracedCode(t *testing.T) {
	w1 := word(t, "addi r3, r3, 1")
	w2 := word(t, "addi r3, r3, 100")
	src := fmt.Sprintf(`
		la   r6, site2
		li   r7, %#x
		li   r8, %#x
		addi r5, r0, 120
	loop:
		stw  r7, 0(r6)
		bl   r9, sub
		stw  r8, 0(r6)
		bl   r9, sub
		addi r5, r5, -1
		bne  r5, r0, loop
		halt
	.org 0x1000
	sub:
		addi r10, r0, 6
	sloop:
		add  r4, r4, r10
	site2:
		nop              ; patched from the other page
		addi r10, r10, -1
		bne  r10, r0, sloop
		bv   r9
	`, w1, w2)
	for _, chunk := range []uint64{2, 5, 257, 4096, 16384} {
		diffSource(t, src, chunk, 4_000_000, nil)
	}
}
