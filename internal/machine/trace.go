package machine

import (
	"repro/internal/isa"
)

// Superblock traces: straight-line runs of decoded instructions fused
// into records with lowered dispatch, executed whole by Run between
// async-condition checks. A trace starts at an entry slot, extends
// through trace-eligible instructions (plain ALU, memory, branches),
// and ends before the first instruction that can invalidate hoisted
// state — privileged and resync-class ops, GATE, BREAK, PROBE, MFTOD,
// WFI, HALT, DIAG — or at an unconditional transfer, the page end, or
// the length cap. Because no trace contains a privileged or resync
// instruction, the per-instruction privilege and resync bit tests of
// the fast loop are discharged once, at build time, for the whole run.
//
// Lowering precomputes what Step derives per instruction: immediates
// are sign-extended (LUI pre-shifted), branch targets become offsets
// from the trace entry address, compare+branch pairs fuse into one op,
// and every op carries its instruction index and the class-statistic
// counts retired before it, so any exit point can reconstruct exact
// Stats and the exact PC without per-instruction bookkeeping.
//
// Equivalence with Step is maintained by construction:
//
//   - the executor only enters a trace when the whole trace fits in the
//     current budget (recovery counter and interval timer included), so
//     epoch boundaries and timer fire points land between traces exactly
//     where Step would put them;
//   - data accesses replicate translate/loadPhys/storePhys including
//     TLB recency (flushPending + touch + hit/miss counts) and the
//     deferred fetch-touch re-arm;
//   - stores check the page generation counter after every write, so
//     self-modifying code exits the trace the moment it overwrites any
//     covered slot (the store itself retires, like Step);
//   - traps reconstruct the faulting PC and StepResult (Inst/Raw
//     included) from the op's position, leaving architected state
//     exactly as Step would.
//
// Traces live in the decodedPage and are dropped by the same stores
// that invalidate decoded slots (see invalidateWord), and wholesale by
// WriteBytes and snapshot restore.

// Exit kinds from runTraces.
const (
	// texStep: no instruction retired; the caller must take the exact
	// per-instruction path (and retire at least one instruction before
	// retrying trace dispatch, or the two paths would ping-pong).
	texStep = iota
	// texResync: one or more instructions retired and PC is set; the
	// caller re-evaluates async conditions and hoisted state.
	texResync
	// texTrap: a synchronous trap is staged in m.tres (Inst/Raw set);
	// retired-prefix statistics are already flushed.
	texTrap
)

const (
	// traceMaxInstrs caps trace length in instructions.
	traceMaxInstrs = 64
	// traceIneligible marks an entry slot whose instruction cannot
	// start a trace, so repeated probes stay O(1).
	traceIneligible = 0xFFFF
	// traceVisited marks an entry slot seen once by trace dispatch.
	// Compilation happens on the second visit, so one-shot code (boot
	// paths, rarely-taken handlers) never pays the compiler; the first
	// visit runs on the exact per-instruction path instead.
	traceVisited = 0xFFFE
)

// Lowered op kinds. The zero value is invalid so a zeroed op is never
// executable.
const (
	tBAD uint8 = iota
	tNOP
	tADD
	tSUB
	tAND
	tOR
	tXOR
	tSLL
	tSRL
	tSRA
	tSLT
	tSLTU
	tMUL
	tDIV
	tREM
	tADDI
	tANDI
	tORI
	tXORI
	tSLTI
	tSLTIU
	tSLLI
	tSRLI
	tSRAI
	tLI // LUI with the <<11 folded into imm
	tLDW
	tLDH
	tLDB
	tSTW
	tSTH
	tSTB
	tBEQ
	tBNE
	tBLT
	tBGE
	tBLTU
	tBGEU
	tBL
	tBV
	tFADDIBEQ // fused ALU+branch: ALU result written, then compared to 0
	tFADDIBNE
	tFANDIBEQ
	tFANDIBNE
	tFSLTIBEQ
	tFSLTIBNE
)

// traceOp is one lowered operation (16 bytes). pos is the instruction
// index of the op within its trace (fused ops span pos and pos+1);
// ld/st/br are the load/store/branch counts retired BEFORE the op, so
// exits need no per-op counters. imm is the precomputed immediate —
// for plain branches and BL, the taken-target byte offset from the
// trace entry address. aux is the fused-branch taken offset, or BL's
// link offset.
type traceOp struct {
	kind       uint8
	rd, r1, r2 uint8
	ld, st, br uint8
	pos        uint8
	imm        uint32
	aux        uint32
}

// trace is one superblock: the lowered ops plus whole-trace totals for
// the common run-to-the-end exit.
type trace struct {
	ops                     []traceOp
	ilen                    uint32 // instructions retired when no side exit is taken
	loads, stores, branches uint32
}

// dropTraces discards every trace on the page and bumps the generation
// counter so a running executor notices mid-trace. Entry marks
// (including ineligible ones) reset too: the code that earned them has
// been overwritten.
func (pg *decodedPage) dropTraces() {
	pg.gen++
	clear(pg.traceAt[:])
	// The dropped records are NOT recycled here: a drop can happen under
	// a running trace (a store from inside it), and in a concurrent
	// process another machine could grab and mutate a pooled record the
	// executor is still reading. Recycling happens only at machine death
	// (Release), when no reader can remain.
	pg.traces = nil
	pg.cover = [instsPerPage / 64]uint64{}
}

// traceFor returns the trace entered at slot, building it on first
// probe, or nil when the slot cannot start a trace.
func (m *Machine) traceFor(pg *decodedPage, base, slot uint32) *trace {
	switch ti := pg.traceAt[slot]; ti {
	case 0:
		pg.traceAt[slot] = traceVisited
		return nil
	case traceVisited:
		return m.buildTrace(pg, base, slot)
	case traceIneligible:
		return nil
	default:
		return pg.traces[ti-1]
	}
}

// peekInst returns the decoded instruction at slot via the decoded-page
// cache, filling it if needed. ok=false means the word is illegal.
func (m *Machine) peekInst(pg *decodedPage, base, slot uint32) (isa.Inst, bool) {
	if pg.valid[slot>>6]&(1<<(slot&63)) != 0 {
		return pg.insts[slot], true
	}
	in, _, ok := m.fill(pg, base, slot)
	return in, ok
}

// aluRegKind maps register-ALU opcodes to trace kinds (tBAD otherwise).
func aluRegKind(op isa.Op) uint8 {
	switch op {
	case isa.OpADD:
		return tADD
	case isa.OpSUB:
		return tSUB
	case isa.OpAND:
		return tAND
	case isa.OpOR:
		return tOR
	case isa.OpXOR:
		return tXOR
	case isa.OpSLL:
		return tSLL
	case isa.OpSRL:
		return tSRL
	case isa.OpSRA:
		return tSRA
	case isa.OpSLT:
		return tSLT
	case isa.OpSLTU:
		return tSLTU
	case isa.OpMUL:
		return tMUL
	}
	return tBAD
}

// aluImmKind maps immediate-ALU opcodes to trace kinds (tBAD otherwise).
func aluImmKind(op isa.Op) uint8 {
	switch op {
	case isa.OpADDI:
		return tADDI
	case isa.OpANDI:
		return tANDI
	case isa.OpORI:
		return tORI
	case isa.OpXORI:
		return tXORI
	case isa.OpSLTI:
		return tSLTI
	case isa.OpSLTIU:
		return tSLTIU
	case isa.OpSLLI:
		return tSLLI
	case isa.OpSRLI:
		return tSRLI
	case isa.OpSRAI:
		return tSRAI
	case isa.OpLUI:
		return tLI
	}
	return tBAD
}

// fusedKind returns the fused compare+branch kind for (aluOp, brOp), or
// tBAD when the pair does not fuse.
func fusedKind(alu, br isa.Op) uint8 {
	var base uint8
	switch alu {
	case isa.OpADDI:
		base = tFADDIBEQ
	case isa.OpANDI:
		base = tFANDIBEQ
	case isa.OpSLTI:
		base = tFSLTIBEQ
	default:
		return tBAD
	}
	switch br {
	case isa.OpBEQ:
		return base
	case isa.OpBNE:
		return base + 1
	}
	return tBAD
}

// buildTrace compiles the superblock entered at slot entry, registers
// it on the page, and returns it — or marks the entry ineligible and
// returns nil when the first instruction cannot be lowered.
func (m *Machine) buildTrace(pg *decodedPage, base, entry uint32) *trace {
	tr := grabTrace()
	ops := tr.ops
	var ld, st, br uint8
	pos := uint8(0)
	slot := entry
	stop := false
	for !stop && pos < traceMaxInstrs && slot < instsPerPage {
		in, ok := m.peekInst(pg, base, slot)
		if !ok {
			break
		}
		op := traceOp{
			rd: uint8(in.Rd), r1: uint8(in.R1), r2: uint8(in.R2),
			ld: ld, st: st, br: br, pos: pos,
		}
		width := uint8(1)
		switch {
		case aluRegKind(in.Op) != tBAD:
			if in.Rd == 0 {
				op.kind = tNOP // r0-destination ALU retires with no effect
			} else {
				op.kind = aluRegKind(in.Op)
			}
		case in.Op == isa.OpDIV || in.Op == isa.OpREM:
			op.kind = tDIV
			if in.Op == isa.OpREM {
				op.kind = tREM
			}
		case aluImmKind(in.Op) != tBAD:
			if in.Rd == 0 {
				op.kind = tNOP
				break
			}
			// Compare+branch fusion: ALU writes rd, next instruction
			// branches on rd vs r0. The write is kept; the pair retires
			// as two instructions.
			if pos+1 < traceMaxInstrs && slot+1 < instsPerPage {
				if nx, ok2 := m.peekInst(pg, base, slot+1); ok2 && nx.R1 == in.Rd && nx.R2 == 0 {
					if fk := fusedKind(in.Op, nx.Op); fk != tBAD {
						op.kind = fk
						op.imm = uint32(in.Imm)
						op.aux = uint32(int32(pos)+2+nx.Imm) * 4
						width = 2
						br++
						break
					}
				}
			}
			op.kind = aluImmKind(in.Op)
			op.imm = uint32(in.Imm)
			if in.Op == isa.OpLUI {
				op.imm = uint32(in.Imm) << 11
			}
		case in.Op == isa.OpLDW || in.Op == isa.OpLDH || in.Op == isa.OpLDB:
			switch in.Op {
			case isa.OpLDW:
				op.kind = tLDW
			case isa.OpLDH:
				op.kind = tLDH
			default:
				op.kind = tLDB
			}
			op.imm = uint32(in.Imm)
			ld++
		case in.Op == isa.OpSTW || in.Op == isa.OpSTH || in.Op == isa.OpSTB:
			switch in.Op {
			case isa.OpSTW:
				op.kind = tSTW
			case isa.OpSTH:
				op.kind = tSTH
			default:
				op.kind = tSTB
			}
			op.imm = uint32(in.Imm)
			st++
		case in.Op == isa.OpBEQ || in.Op == isa.OpBNE || in.Op == isa.OpBLT ||
			in.Op == isa.OpBGE || in.Op == isa.OpBLTU || in.Op == isa.OpBGEU:
			switch in.Op {
			case isa.OpBEQ:
				op.kind = tBEQ
			case isa.OpBNE:
				op.kind = tBNE
			case isa.OpBLT:
				op.kind = tBLT
			case isa.OpBGE:
				op.kind = tBGE
			case isa.OpBLTU:
				op.kind = tBLTU
			default:
				op.kind = tBGEU
			}
			op.imm = uint32(int32(pos)+1+in.Imm) * 4
			br++
			// Same-register BEQ/BGE/BGEU always take: the fall-through
			// is dead, so the trace ends here.
			if in.R1 == in.R2 && (in.Op == isa.OpBEQ || in.Op == isa.OpBGE || in.Op == isa.OpBGEU) {
				stop = true
			}
		case in.Op == isa.OpBL:
			op.kind = tBL
			op.imm = uint32(int32(pos)+1+in.Imm) * 4
			op.aux = (uint32(pos) + 1) * 4
			br++
			stop = true
		case in.Op == isa.OpBV:
			op.kind = tBV
			br++
			stop = true
		case in.Op == isa.OpNOP:
			op.kind = tNOP
		default:
			// Privileged, resync-class, GATE, BREAK, PROBE, MFTOD, WFI,
			// HALT, DIAG: terminators — never inside a trace.
			stop = true
			continue
		}
		ops = append(ops, op)
		pos += width
		slot += uint32(width)
	}
	if len(ops) == 0 {
		pg.traceAt[entry] = traceIneligible
		tracePool.Put(tr)
		return nil
	}
	tr.ops, tr.ilen = ops, uint32(pos)
	tr.loads, tr.stores, tr.branches = uint32(ld), uint32(st), uint32(br)
	pg.traces = append(pg.traces, tr)
	pg.traceAt[entry] = uint16(len(pg.traces))
	for s := entry; s < slot; s++ {
		pg.cover[s>>6] |= 1 << (s & 63)
	}
	return tr
}
