// Differential tests: the batched Run path must be bit-for-bit
// indistinguishable from the single-instruction Step path — identical
// architected state, digests, statistics, TLB replacement behaviour and
// instruction counts — for every guest workload and for targeted
// recovery-counter / interval-timer / TLB-pressure scenarios.
package machine_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/guest"
	"repro/internal/isa"
	"repro/internal/machine"
)

// stepChunk advances m by up to n retired instructions on the reference
// path: Step in a loop, traps dispatched through the hardware
// interruption sequence (old bare-metal semantics).
func stepChunk(m *machine.Machine, n uint64) {
	target := m.Cycles() + n
	for m.Cycles() < target && !m.Halted() {
		res := m.Step()
		if res.Trap != isa.TrapNone {
			m.DeliverTrap(res.Trap, res.ISR, res.IOR)
		}
	}
}

// runChunk advances m by up to n retired instructions on the batched
// path, dispatching traps identically.
func runChunk(m *machine.Machine, n uint64) {
	target := m.Cycles() + n
	for m.Cycles() < target && !m.Halted() {
		rr := m.Run(target - m.Cycles())
		if rr.Trap != isa.TrapNone {
			m.DeliverTrap(rr.Trap, rr.ISR, rr.IOR)
		}
	}
}

// diffWorkload boots the guest kernel with workload w on two identical
// machines and drives one with Step, the other with Run, comparing full
// state at every chunk boundary (a stand-in for epoch boundaries) and
// memory + statistics at the end.
func diffWorkload(t *testing.T, cfg machine.Config, w guest.Workload, chunk, limit uint64) {
	t.Helper()
	p := guest.Program()
	a, b := machine.New(cfg), machine.New(cfg)
	for _, m := range []*machine.Machine{a, b} {
		m.LoadProgram(p.Origin, p.Words, 0)
		guest.Configure(m, w)
	}

	for epoch := 0; a.Cycles() < limit && !a.Halted(); epoch++ {
		stepChunk(a, chunk)
		runChunk(b, chunk)
		if a.Cycles() != b.Cycles() {
			t.Fatalf("epoch %d: cycles diverge: step=%d run=%d", epoch, a.Cycles(), b.Cycles())
		}
		if a.Digest() != b.Digest() {
			t.Fatalf("epoch %d (cycle %d): state digests diverge: step pc=%#x run pc=%#x",
				epoch, a.Cycles(), a.PC, b.PC)
		}
		if epoch%8 == 0 && a.DigestMemory() != b.DigestMemory() {
			t.Fatalf("epoch %d (cycle %d): memory digests diverge", epoch, a.Cycles())
		}
	}

	if a.Halted() != b.Halted() {
		t.Fatalf("halt state diverges: step=%v run=%v", a.Halted(), b.Halted())
	}
	if a.DigestMemory() != b.DigestMemory() {
		t.Fatalf("final memory digests diverge")
	}
	if a.Stats != b.Stats {
		t.Fatalf("instruction statistics diverge:\nstep: %+v\nrun:  %+v", a.Stats, b.Stats)
	}
	if a.TLB.Stats != b.TLB.Stats {
		t.Fatalf("TLB statistics diverge:\nstep: %+v\nrun:  %+v", a.TLB.Stats, b.TLB.Stats)
	}
	if a.Halted() {
		ra, rb := guest.ReadResult(a), guest.ReadResult(b)
		if ra != rb {
			t.Fatalf("guest results diverge:\nstep: %+v\nrun:  %+v", ra, rb)
		}
	}
}

func TestRunDifferentialCPUWorkload(t *testing.T) {
	// Virtual memory, timer interrupts via the interval timer, the
	// guest's software TLB-miss handler — the paper's CPU benchmark.
	diffWorkload(t, machine.Config{}, guest.CPUIntensive(4000), 769, 4_000_000)
}

func TestRunDifferentialMemoryStride(t *testing.T) {
	// 32-page stride against an 8-entry TLB: constant miss/insert churn
	// makes any deviation in per-fetch recency (LRU) or statistics
	// diverge within a few evictions.
	diffWorkload(t, machine.Config{TLBSize: 8, TLBPolicy: "lru"},
		guest.MemoryStride(6000), 1021, 4_000_000)
}

func TestRunDifferentialMemoryStrideRandomTLB(t *testing.T) {
	// Random replacement draws from a chip-private stream: the draw
	// sequence (and hence TLB contents) only matches if both paths make
	// exactly the same inserts in the same order.
	diffWorkload(t, machine.Config{TLBSize: 8, TLBPolicy: "random", TLBSeed: 42},
		guest.MemoryStride(6000), 512, 4_000_000)
}

func TestRunDifferentialDiskWorkloadTrapPath(t *testing.T) {
	// With no bus wired, the guest's MMIO doorbell machine-checks and
	// the guest panics — identical trap cascades on both paths.
	diffWorkload(t, machine.Config{}, guest.DiskWrite(2, 512), 257, 4_000_000)
}

// TestRunDifferentialRecoveryCounter exercises the epoch mechanism the
// hypervisor relies on: PSW.R armed, the recovery counter counting down
// mid-batch, the trap surfacing before the instruction after expiry.
func TestRunDifferentialRecoveryCounter(t *testing.T) {
	src := `
	loop:
		addi r1, r1, 1
		xor  r2, r2, r1
		slli r3, r1, 2
		add  r2, r2, r3
		b    loop
	`
	p, err := asm.Assemble("rctr.s", src)
	if err != nil {
		t.Fatal(err)
	}
	a, b := machine.New(machine.Config{}), machine.New(machine.Config{})
	for _, m := range []*machine.Machine{a, b} {
		m.LoadProgram(p.Origin, p.Words, 0)
		m.PSW |= isa.PSWR
	}

	// Sweep awkward epoch lengths, including re-arm mid-run.
	for _, el := range []uint64{1, 2, 3, 7, 100, 255, 256, 257, 1000} {
		a.CRs[isa.CRRCTR] = uint32(el)
		b.CRs[isa.CRRCTR] = uint32(el)
		beforeA, beforeB := a.Cycles(), b.Cycles()

		var trapA isa.Trap
		for {
			res := a.Step()
			if res.Trap != isa.TrapNone {
				trapA = res.Trap
				break
			}
		}
		rr := b.Run(4 * el) // budget beyond the epoch: the counter must stop it
		if rr.Trap != trapA || trapA != isa.TrapRecovery {
			t.Fatalf("EL=%d: traps differ: step=%v run=%v", el, trapA, rr.Trap)
		}
		if got, want := a.Cycles()-beforeA, el; got != want {
			t.Fatalf("EL=%d: step retired %d, want %d", el, got, want)
		}
		if got := b.Cycles() - beforeB; got != rr.Executed || got != el {
			t.Fatalf("EL=%d: run retired %d (reported %d), want %d", el, got, rr.Executed, el)
		}
		if a.Digest() != b.Digest() {
			t.Fatalf("EL=%d: digests diverge after recovery trap", el)
		}
	}
}

// TestRunDifferentialIntervalTimer checks that a timer interrupt raised
// by retirement mid-batch surfaces at the same instruction boundary on
// both paths.
func TestRunDifferentialIntervalTimer(t *testing.T) {
	src := `
	loop:
		addi r1, r1, 1
		b    loop
	`
	p, err := asm.Assemble("itmr.s", src)
	if err != nil {
		t.Fatal(err)
	}
	for _, itmr := range []uint32{1, 2, 5, 77, 500} {
		a, b := machine.New(machine.Config{}), machine.New(machine.Config{})
		for _, m := range []*machine.Machine{a, b} {
			m.LoadProgram(p.Origin, p.Words, 0)
			m.PSW |= isa.PSWI
			m.CRs[isa.CRITMR] = itmr
			m.CRs[isa.CREIEM] = 1
		}
		var trapA isa.Trap
		for {
			res := a.Step()
			if res.Trap != isa.TrapNone {
				trapA = res.Trap
				break
			}
		}
		rr := b.Run(uint64(itmr) * 10)
		if rr.Trap != trapA || trapA != isa.TrapExtIntr {
			t.Fatalf("ITMR=%d: traps differ: step=%v run=%v", itmr, trapA, rr.Trap)
		}
		if a.Cycles() != b.Cycles() {
			t.Fatalf("ITMR=%d: trap boundary differs: step=%d run=%d", itmr, a.Cycles(), b.Cycles())
		}
		if a.Digest() != b.Digest() {
			t.Fatalf("ITMR=%d: digests diverge", itmr)
		}
	}
}

// TestRunBudgetExpiry checks the instruction-count exit: Run(n) retires
// exactly n instructions with a zero StepResult, matching n Steps.
func TestRunBudgetExpiry(t *testing.T) {
	src := `
	loop:
		addi r1, r1, 1
		xor  r2, r2, r1
		b    loop
	`
	p, err := asm.Assemble("budget.s", src)
	if err != nil {
		t.Fatal(err)
	}
	a, b := machine.New(machine.Config{}), machine.New(machine.Config{})
	a.LoadProgram(p.Origin, p.Words, 0)
	b.LoadProgram(p.Origin, p.Words, 0)
	for _, n := range []uint64{0, 1, 2, 3, 100, 4096} {
		for i := uint64(0); i < n; i++ {
			a.Step()
		}
		rr := b.Run(n)
		if rr.StepResult != (machine.StepResult{}) {
			t.Fatalf("Run(%d): non-empty StepResult %+v", n, rr.StepResult)
		}
		if rr.Executed != n {
			t.Fatalf("Run(%d): executed %d", n, rr.Executed)
		}
		if a.Digest() != b.Digest() || a.Cycles() != b.Cycles() {
			t.Fatalf("Run(%d): state diverges from %d Steps", n, n)
		}
	}
}
