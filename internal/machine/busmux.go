package machine

import (
	"fmt"
	"sort"
)

// BusMux routes MMIO accesses within the machine's MMIO window to
// multiple devices by offset range. It implements MMIOHandler.
type BusMux struct {
	ranges []busRange
}

type busRange struct {
	base, size uint32
	h          MMIOHandler
	name       string
}

// NewBusMux returns an empty multiplexer.
func NewBusMux() *BusMux { return &BusMux{} }

// Map attaches a device at [base, base+size) within the MMIO window.
// Offsets passed to the device are relative to base. Overlapping ranges
// panic (wiring error).
func (b *BusMux) Map(name string, base, size uint32, h MMIOHandler) {
	for _, r := range b.ranges {
		if base < r.base+r.size && r.base < base+size {
			panic(fmt.Sprintf("machine: MMIO range %s [%#x,%#x) overlaps %s [%#x,%#x)",
				name, base, base+size, r.name, r.base, r.base+r.size))
		}
	}
	b.ranges = append(b.ranges, busRange{base: base, size: size, h: h, name: name})
	sort.Slice(b.ranges, func(i, j int) bool { return b.ranges[i].base < b.ranges[j].base })
}

// find locates the device covering off.
func (b *BusMux) find(off uint32) (busRange, bool) {
	for _, r := range b.ranges {
		if off >= r.base && off-r.base < r.size {
			return r, true
		}
	}
	return busRange{}, false
}

// MMIOLoad implements MMIOHandler.
func (b *BusMux) MMIOLoad(off uint32, size int) (uint32, error) {
	r, ok := b.find(off)
	if !ok {
		return 0, fmt.Errorf("machine: no device at MMIO offset %#x", off)
	}
	return r.h.MMIOLoad(off-r.base, size)
}

// MMIOStore implements MMIOHandler.
func (b *BusMux) MMIOStore(off uint32, size int, v uint32) error {
	r, ok := b.find(off)
	if !ok {
		return fmt.Errorf("machine: no device at MMIO offset %#x", off)
	}
	return r.h.MMIOStore(off-r.base, size, v)
}
