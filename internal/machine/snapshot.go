package machine

// This file implements deterministic capture and restore of complete
// machine state, the substrate of the snapshot/state-transfer subsystem:
// a repaired processor rejoining the replica set receives the acting
// coordinator's machine image (Bressoud & Schneider §5 assume failed
// components are repaired and reintegrated; VMware FT ships live VM
// state the same way), and a checkpointed session verifies its replayed
// state against the captured one.
//
// The capture is exhaustive over ARCHITECTED and MICROARCHITECTURAL
// state that can influence future execution or timing: registers, PC,
// PSW, control registers, all of physical RAM, the halt latch, the
// retired-instruction counter, statistics, and the full TLB including
// replacement-policy recency state (LRU stamps, round-robin cursor) and
// the deferred fetch-touch slot. It deliberately EXCLUDES derived
// caches: the decoded-page translation cache and the word-decode memo
// are pure functions of RAM contents and instruction words, so
// RestoreState drops them and they rebuild on demand — restoring into a
// machine that previously executed different code is safe.

import (
	"bytes"
	"fmt"

	"repro/internal/isa"
)

// TLBSlotState is one captured TLB slot with its recency stamp.
type TLBSlotState struct {
	Entry TLBEntry
	// LastUse is the LRU policy's recency stamp for the slot (zero for
	// non-LRU policies).
	LastUse uint64
}

// TLBState is the complete captured TLB: contents, replacement-policy
// state and statistics.
type TLBState struct {
	// Policy is the replacement policy name ("lru", "roundrobin",
	// "random"). Restore requires the target machine to use the same
	// policy; "random" is not restorable (its stream is chip-private,
	// modelling the §3.2 nondeterminism — there is nothing deterministic
	// to transfer).
	Policy string
	Slots  []TLBSlotState
	// Stamp is the LRU policy's clock.
	Stamp uint64
	// Next is the round-robin policy's cursor.
	Next int
	// Pending is the deferred fetch-touch slot (-1 none) — part of the
	// recency order, so it must travel with the contents.
	Pending int
	Stats   TLBStats
}

// State is a complete, self-contained capture of one machine. All
// fields are deep copies; mutating the source machine after capture
// does not alter the State.
type State struct {
	MemBytes uint32
	Regs     [isa.NumRegs]uint32
	PC       uint32
	PSW      uint32
	CRs      [isa.NumCRs]uint32
	Halted   bool
	Cycles   uint64
	Stats    Stats
	// Mem is the full physical RAM image.
	Mem []byte
	TLB TLBState
}

// CaptureState snapshots the machine. Read-only: capture has no effect
// on subsequent execution.
func (m *Machine) CaptureState() State {
	s := State{
		MemBytes: m.cfg.MemBytes,
		Regs:     m.Regs,
		PC:       m.PC,
		PSW:      m.PSW,
		CRs:      m.CRs,
		Halted:   m.halted,
		Cycles:   m.cycles,
		Stats:    m.Stats,
		Mem:      make([]byte, m.memSize),
	}
	// Materialize RAM page-wise: COW-shared frames copy out the same
	// bytes a private machine would hold, so a capture is identical
	// regardless of backing.
	for i, fr := range m.frames {
		base := uint32(i) << isa.PageShift
		n := m.memSize - base
		if n > isa.PageSize {
			n = isa.PageSize
		}
		copy(s.Mem[base:], fr[:n])
	}
	s.TLB = m.TLB.captureState()
	return s
}

// RestoreState overwrites the machine's state with a capture. The
// target must be configured compatibly (same RAM size, TLB geometry and
// replacement policy); the decoded-page cache and decode memo are
// invalidated, and the machine's own CPUID is preserved — processor
// identity belongs to the chip, not the transferred virtual-machine
// state (the hypervisor virtualizes CPUID anyway).
func (m *Machine) RestoreState(s State) error {
	if s.MemBytes != m.memSize {
		return fmt.Errorf("machine: restore: RAM size %d into machine with %d", s.MemBytes, m.memSize)
	}
	if len(s.Mem) != int(m.memSize) {
		return fmt.Errorf("machine: restore: image has %d RAM bytes, want %d", len(s.Mem), m.memSize)
	}
	if err := m.TLB.checkRestorable(s.TLB); err != nil {
		return err
	}
	m.Regs = s.Regs
	m.PC = s.PC
	m.PSW = s.PSW
	m.CRs = s.CRs
	m.CRs[isa.CRCPUID] = m.cfg.CPUID // chip identity stays local
	m.halted = s.Halted
	m.cycles = s.Cycles
	m.Stats = s.Stats
	// Restore RAM page-wise. Over a base image, pages whose restored
	// contents equal the shared frame stay (or become again) shared —
	// restoring a capture of a lightly diverged machine re-deduplicates
	// it — and only differing pages hold (or fault) a private frame.
	for i := range m.frames {
		idx := uint32(i)
		base := idx << isa.PageShift
		n := m.memSize - base
		if n > isa.PageSize {
			n = isa.PageSize
		}
		src := s.Mem[base : base+n]
		if m.img != nil {
			shared := &m.img.frames[i].data
			if bytes.Equal(src, shared[:n]) {
				if m.ownedPage(idx) {
					framePool.Put(m.frames[i])
					m.frames[i] = shared
					m.owned[idx>>6] &^= 1 << (idx & 63)
				}
				continue
			}
			m.faultPage(idx)
		}
		copy(m.frames[i][:n], src)
	}
	// The decoded-page cache is derived from RAM: drop it wholesale so
	// stale images of the previous contents cannot be dispatched.
	for i := range m.pages {
		m.pages[i] = nil
	}
	m.TLB.restoreState(s.TLB)
	return nil
}

// captureState snapshots the TLB including policy recency state.
func (t *TLB) captureState() TLBState {
	s := TLBState{
		Policy:  t.policy.Name(),
		Slots:   make([]TLBSlotState, len(t.slots)),
		Pending: t.pending,
		Stats:   t.Stats,
	}
	for i, e := range t.slots {
		s.Slots[i].Entry = e
	}
	switch p := t.policy.(type) {
	case *LRUPolicy:
		s.Stamp = p.stamp
		for i := range s.Slots {
			s.Slots[i].LastUse = p.last[i]
		}
	case *RoundRobinPolicy:
		s.Next = p.next
	}
	return s
}

// checkRestorable verifies geometry and policy compatibility.
func (t *TLB) checkRestorable(s TLBState) error {
	if len(s.Slots) != len(t.slots) {
		return fmt.Errorf("machine: restore: TLB has %d slots, capture has %d", len(t.slots), len(s.Slots))
	}
	if s.Policy != t.policy.Name() {
		return fmt.Errorf("machine: restore: TLB policy %q into machine with %q", s.Policy, t.policy.Name())
	}
	if s.Policy == "random" {
		return fmt.Errorf("machine: restore: random TLB replacement is chip-private and not restorable")
	}
	return nil
}

// restoreState overwrites the TLB from a capture (pre-validated).
func (t *TLB) restoreState(s TLBState) {
	for i := range t.slots {
		t.slots[i] = s.Slots[i].Entry
	}
	t.pending = s.Pending
	t.Stats = s.Stats
	switch p := t.policy.(type) {
	case *LRUPolicy:
		p.stamp = s.Stamp
		for i := range p.last {
			p.last[i] = s.Slots[i].LastUse
		}
	case *RoundRobinPolicy:
		p.next = s.Next
	}
}
