package device

import "testing"

func TestWindowContains(t *testing.T) {
	w := Window{Base: 0x1000, Size: 0x20}
	for off, want := range map[uint32]bool{
		0x0FFF: false, 0x1000: true, 0x101F: true, 0x1020: false, 0x0: false,
	} {
		if got := w.Contains(off); got != want {
			t.Errorf("Contains(%#x) = %v, want %v", off, got, want)
		}
	}
}

func TestCompletionWireSize(t *testing.T) {
	if got := (Completion{}).WireSize(); got != 32 {
		t.Errorf("empty completion wire size = %d, want 32", got)
	}
	if got := (Completion{Data: make([]byte, 8192)}).WireSize(); got != 32+8192 {
		t.Errorf("8 KiB completion wire size = %d", got)
	}
}

func TestU32RoundTrip(t *testing.T) {
	b := AppendU32(nil, 0xDEADBEEF)
	b = AppendU32(b, 7)
	v, rest, ok := ReadU32(b)
	if !ok || v != 0xDEADBEEF {
		t.Fatalf("first read = %#x ok=%v", v, ok)
	}
	v, rest, ok = ReadU32(rest)
	if !ok || v != 7 || len(rest) != 0 {
		t.Fatalf("second read = %d ok=%v rest=%d", v, ok, len(rest))
	}
	if _, _, ok := ReadU32(rest); ok {
		t.Error("read past end succeeded")
	}
}
