// Package device defines the generic virtual-device contract between
// the platform's environment devices and the hypervisor's shadow layer.
// The paper states its protocols (P1–P8) over environment instructions
// and interrupts in general; this package is the corresponding
// abstraction in the reproduction: every memory-mapped device — the
// dual-ported SCSI disks, the console/terminal, anything added later —
// presents the same three faces:
//
//   - a REAL register bank on the node's MMIO bus (machine.MMIOHandler,
//     wired by the platform), which only an I/O-active hypervisor or a
//     bare machine touches;
//   - a SHADOW register bank (Shadow) inside each hypervisor: the
//     virtual device the guest programs. Shadow state evolves as a
//     deterministic function of the guest's instruction stream plus the
//     completion records delivered at epoch boundaries, so it is
//     identical on every replica by construction;
//   - deterministic COMPLETION records (Completion): the environment
//     data a device interrupt carries. The I/O-active hypervisor
//     captures one when the real device raises its line (rule P1),
//     forwards it to the backups ([E, Int]), and every replica applies
//     it to its shadow at the epoch boundary (P2/P5/P6).
//
// The shadow-device equivalence argument: the guest can only observe a
// device through MMIO loads, which the hypervisor serves from shadow
// state; shadow state changes only on guest stores (deterministic) and
// on Apply of completion records (identical on every replica, because
// the records travel in the epoch stream). Therefore the guest's view
// of every device is part of the replicated state machine, and the
// Environment Instruction Assumption holds for any device wired through
// this layer — which is what lets the hypervisor treat N disks and a
// terminal exactly like the original single adapter.
package device

// NoLine marks a Window without an interrupt line (pure-output devices
// that never raise completions).
const NoLine uint = ^uint(0)

// Window describes one device binding on a node: where its register
// bank sits in the MMIO space and how its interrupts arrive. Windows
// are wired identically on every replica (the platform builds all
// nodes from one device table), and ID is the stable name snapshots
// and state transfers match devices by.
type Window struct {
	// ID is the stable device identifier ("disk0", "console", ...),
	// unique within a node.
	ID string
	// Base is the register bank's offset within the MMIO space.
	Base uint32
	// Size is the register bank's size in bytes.
	Size uint32
	// Line is the external interrupt line completions arrive on
	// (NoLine for devices that never interrupt).
	Line uint
	// Unsolicited marks an input device: its interrupts announce
	// environment events (arriving terminal input) rather than
	// completions of operations this hypervisor issued. The I/O-active
	// hypervisor captures them; a backup ignores its own copies (rule
	// P3) and receives the records through the epoch stream instead.
	Unsolicited bool
}

// Contains reports whether the window covers MMIO offset off.
func (w Window) Contains(off uint32) bool {
	return off >= w.Base && off-w.Base < w.Size
}

// Completion is a device-generic completion/environment record: the
// payload of one device interrupt, captured once by the I/O-active
// hypervisor and applied identically by every replica at an epoch
// boundary. It is what the replication layer's [E, Int] messages carry.
type Completion struct {
	// Status is the device status to apply at delivery.
	Status uint32
	// Addr is the guest-physical address the payload applies to
	// (DMA target); zero when Data applies to shadow state only.
	Addr uint32
	// Data is the environment payload: DMA contents for a disk read,
	// arrived bytes for terminal input.
	Data []byte
	// Seq is the input-stream watermark for unsolicited records: the
	// highest environment sequence number Data covers. Applying the
	// record consumes the real device's pending input through Seq, so
	// a replica that never captured the bytes itself still retires
	// them (consume-on-apply is idempotent on the capturing node).
	Seq uint32
}

// WireSize estimates the record's size in bytes for the link timing
// model: a fixed header plus the environment payload (an 8 KiB disk
// read becomes the paper's 9-frame Ethernet transfer).
func (c Completion) WireSize() int { return 32 + len(c.Data) }

// Effect classifies a guest store to a shadow device.
type Effect uint8

const (
	// EffectNone: the store only updated shadow register state.
	EffectNone Effect = iota
	// EffectOutput: the store carries environment output (a console
	// byte). The hypervisor forwards it to the real device when I/O is
	// active, and suppresses — but records — it on a backup (§2.2
	// case i), so a promoted backup can re-emit the failover epoch's
	// suppressed output exactly once (ordinal dedup at the device).
	EffectOutput
	// EffectStart: the store starts an I/O operation (a doorbell). The
	// hypervisor latches it outstanding (the set rule P7 covers) and,
	// when I/O is active, programs the real device from shadow state.
	EffectStart
)

// Bus is a shadow's window onto its node's REAL register bank: loads
// and stores are window-relative and word-sized, routed through the
// machine's MMIO bus exactly as a hypervisor's own accesses are.
type Bus interface {
	Load(off uint32) uint32
	Store(off uint32, v uint32)
}

// Memory is a shadow's window onto guest physical memory, for applying
// DMA payloads and capturing DMA sources.
type Memory interface {
	ReadBytes(pa uint32, n int) []byte
	WriteBytes(pa uint32, data []byte)
}

// Shadow is the guest-visible register model of one device — the part
// of the virtual machine the hypervisor interposes between the guest
// and the real hardware. Implementations must be deterministic: Load
// and Store may depend only on shadow state and their arguments, and
// environment values may enter shadow state only through Apply.
type Shadow interface {
	// Load serves a guest MMIO load from shadow state. It may mutate
	// shadow state deterministically (e.g. popping a delivered input
	// FIFO).
	Load(off uint32) uint32

	// Store applies a guest MMIO store to shadow state and classifies
	// its effect for the hypervisor.
	Store(off uint32, v uint32) Effect

	// Output forwards an EffectOutput store to the real device, tagged
	// with its ordinal for environment-side dedup. Called only by an
	// I/O-active hypervisor (mid-epoch) or at promotion when the
	// failover epoch's suppressed output is re-emitted.
	Output(bus Bus, off, v uint32, ordinal uint32)

	// Start programs the real device from shadow state (an EffectStart
	// store on an I/O-active hypervisor).
	Start(bus Bus)

	// Capture snoops the real device after its interrupt line rose and
	// builds the completion record (acknowledging the device as a real
	// driver would). ok=false means there was nothing to capture.
	Capture(bus Bus, mem Memory) (c Completion, ok bool)

	// Apply applies a delivered completion record to shadow state and
	// guest memory — identically on every replica. bus reaches the
	// real window for environment reconciliation (consume-on-apply of
	// input the record proves was captured).
	Apply(c Completion, mem Memory, bus Bus)

	// Recover returns the completion records to synthesize when this
	// node finishes a failover epoch — the device-generic rule P7:
	// an UNCERTAIN completion when an operation is outstanding, the
	// drained pending input of an unsolicited device. buffered holds
	// the completion records already awaiting delivery for this device
	// (forwarded by the dead coordinator for the failover epoch, per
	// P6) — input they cover is NOT pending, it will be applied with
	// them. uncertain reports how many of the returned records are
	// uncertain completions (P7 proper, for protocol statistics).
	Recover(bus Bus, mem Memory, outstanding bool, buffered []Completion) (recs []Completion, uncertain int)

	// MarshalState serializes the complete shadow register state;
	// UnmarshalState restores it (state transfer and checkpointing).
	// The encoding must be deterministic.
	MarshalState() []byte
	UnmarshalState(data []byte) error
}

// Encoding helpers for MarshalState implementations (little-endian,
// fixed width — the snapshot layer's conventions without importing it).

// AppendU32 appends v little-endian.
func AppendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// ReadU32 reads a little-endian uint32, returning the rest.
func ReadU32(b []byte) (uint32, []byte, bool) {
	if len(b) < 4 {
		return 0, nil, false
	}
	v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	return v, b[4:], true
}
