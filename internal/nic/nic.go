// Package nic models a virtual network adapter on the generic device
// layer — the step from "replicated virtual machine" to "fault-tolerant
// network service". Like the console and the dual-ported disks, the NIC
// is ONE shared environment object (the network the clients live on)
// with a Port per processor, and the paper's I/O discipline applies at
// frame granularity:
//
//   - TX (guest output): the guest assembles a reply frame word by word
//     into the adapter's transmit buffer and rings a doorbell to emit
//     it. Every TX store is an environment OUTPUT (device.EffectOutput):
//     under replication only the I/O-active hypervisor's stores reach
//     the shared adapter — a backup suppresses and records its own —
//     and each store carries an output ordinal so a promoted backup's
//     re-emission of the failover epoch's suppressed stores is
//     deduplicated by high-water mark. Because the transmit buffer and
//     the watermark live in the SHARED adapter (there is one acting
//     writer at a time), a frame assembled half by the dead coordinator
//     and half by its successor is emitted exactly once, bit-identical
//     to the unreplicated run.
//
//   - RX (environment input): request frames arriving from the client
//     population get a global sequence number and land in every port's
//     pending queue, raising each host's interrupt line. The I/O-active
//     hypervisor captures pending frames as completion records (rule
//     P1) and forwards them in the epoch stream; every replica applies
//     them at the boundary, consuming its own port through the record's
//     watermark. After a failover, rule P7's generalization drains the
//     promoted port's still-pending frames — requests the environment
//     delivered but no replica consumed are redelivered, not lost.
//
//   - EXACTLY-ONCE requests: clients retransmit on timeout (they must
//     observe a failover blackout, not mask it), so the adapter dedups
//     arriving frames by request ID the way any reliable transport's
//     receiver does. A retransmission of an already-answered request is
//     answered from the reply log without involving the guest; a
//     retransmission of a queued request is dropped. The guest
//     therefore serves each logical request exactly once, and the reply
//     transcript of a replicated run is byte-identical to the bare
//     run's.
package nic

import (
	"hash/fnv"
)

// Register offsets (word registers within the NIC window).
const (
	RegTxData     uint32 = 0x00 // write: append payload word to the TX frame
	RegTxDoorbell uint32 = 0x04 // write: emit TX frame of <value> words
	RegStatus     uint32 = 0x08 // read: bit0 TX ready (always), bit1 RX frame pending
	RegRxData     uint32 = 0x0C // read: pop next word of the head RX frame
	RegRxLen      uint32 = 0x10 // read: words remaining in the head RX frame
	RegRxSeq      uint32 = 0x14 // read: global sequence of the head RX frame
	RegRxConsume  uint32 = 0x18 // write: retire RX frames with sequence <= value
	RegOutSeq     uint32 = 0x1C // write: output ordinal for the NEXT TX store

	// Window is the size of the NIC register bank.
	Window uint32 = 0x20
)

// Status register bits.
const (
	StatusTxReady uint32 = 1 << 0 // transmit buffer always accepts
	StatusRxAvail uint32 = 1 << 1 // a complete RX frame is pending
)

// frame is one framed message with its global RX sequence number (TX
// frames carry seq 0; they are logged, not queued).
type frame struct {
	seq   uint32
	words []uint32
}

// Stats counts shared-adapter activity.
type Stats struct {
	// Requests is the number of distinct request frames accepted.
	Requests uint64
	// Retransmits is the number of duplicate request frames suppressed
	// (client retransmissions during a blackout, mostly).
	Retransmits uint64
	// Replayed counts retransmissions answered from the reply log
	// (request already served; the guest is not involved again).
	Replayed uint64
	// TxFrames is the number of frames the guest emitted.
	TxFrames uint64
	// TxWords counts payload words across all emitted frames.
	TxWords uint64
}

// NIC is the SHARED network environment: one client-facing wire, one
// reply transcript, multi-ported like the paper's dual-ported disk via
// Port. All mutable state that must survive a processor failstop —
// the partially-assembled TX frame, the output-ordinal watermark, the
// request dedup table, the reply log — lives here, on the environment
// side of the I/O Device Accessibility Assumption.
type NIC struct {
	Stats Stats

	// txBuf is the transmit frame being assembled by the acting
	// writer's RegTxData stores (shared: a successor resumes exactly
	// where the dead coordinator's last deduplicated store left off).
	txBuf []uint32

	// highWater is the output-ordinal dedup watermark: a tagged TX
	// store with ordinal <= highWater is a retransmission (a promoted
	// backup re-emitting the failover epoch's suppressed output) and is
	// dropped.
	highWater uint32

	// tx is the reply transcript: every emitted frame, length-prefixed,
	// little-endian. Byte-compared between bare and replicated runs.
	tx []byte

	// replyFor logs the reply frame emitted for each request ID, so a
	// retransmission of an answered request is served from the log.
	replyFor map[uint32][]uint32
	// seenReq marks request IDs accepted (queued or answered).
	seenReq map[uint32]bool

	nextSeq uint32 // RX frame sequence numbers assigned so far
	ports   []*Port

	// OnIngress, when set, observes every accepted request frame as it
	// is delivered to the ports (session event streams).
	OnIngress func(seq uint32, words []uint32)
	// OnTx, when set, observes every emitted frame (the client
	// simulator's reply path).
	OnTx func(words []uint32)
}

// New returns an idle network adapter.
func New() *NIC {
	return &NIC{replyFor: map[uint32][]uint32{}, seenReq: map[uint32]bool{}}
}

// NewPort attaches one processor's endpoint. irq (optional) raises the
// host's external interrupt line when a frame arrives.
func (n *NIC) NewPort(irq func()) *Port {
	p := &Port{n: n, irq: irq}
	n.ports = append(n.ports, p)
	return p
}

// Ingress delivers one request frame from the client network. words[0]
// is the request ID; the rest is payload. Duplicates (client
// retransmissions) never reach a port: a duplicate of an answered
// request returns the logged reply for environment-side redelivery, a
// duplicate of a still-queued request returns nil (the original will be
// answered). Accepted frames get the next global sequence number and
// land in every port's pending queue.
func (n *NIC) Ingress(words []uint32) (reply []uint32, accepted bool) {
	if len(words) == 0 {
		return nil, false
	}
	id := words[0]
	if n.seenReq[id] {
		n.Stats.Retransmits++
		if r := n.replyFor[id]; r != nil {
			n.Stats.Replayed++
			return r, false
		}
		return nil, false
	}
	n.seenReq[id] = true
	n.Stats.Requests++
	n.nextSeq++
	f := frame{seq: n.nextSeq, words: append([]uint32(nil), words...)}
	for _, p := range n.ports {
		p.push(f)
	}
	if n.OnIngress != nil {
		n.OnIngress(f.seq, f.words)
	}
	return nil, true
}

// txWord appends one payload word to the shared transmit buffer,
// honoring the ordinal dedup watermark (ordinal 0 = untagged store from
// a bare machine, always applied).
func (n *NIC) txWord(ordinal, v uint32) {
	if !n.passOrdinal(ordinal) {
		return
	}
	n.txBuf = append(n.txBuf, v)
}

// txDoorbell emits the assembled frame, declared to hold v words.
func (n *NIC) txDoorbell(ordinal, v uint32) {
	if !n.passOrdinal(ordinal) {
		return
	}
	words := n.txBuf
	if int(v) < len(words) {
		words = words[len(words)-int(v):]
	}
	f := append([]uint32(nil), words...)
	n.txBuf = n.txBuf[:0]
	n.Stats.TxFrames++
	n.Stats.TxWords += uint64(len(f))
	n.tx = appendFrame(n.tx, f)
	if len(f) > 0 {
		n.replyFor[f[0]] = f
	}
	if n.OnTx != nil {
		n.OnTx(f)
	}
}

// passOrdinal applies the output-ordinal high-water dedup (the console's
// exactly-once rule, at TX-store granularity).
func (n *NIC) passOrdinal(ordinal uint32) bool {
	if ordinal != 0 {
		if ordinal <= n.highWater {
			return false // re-emission of output the environment already saw
		}
		n.highWater = ordinal
	}
	return true
}

// appendFrame length-prefixes and appends a frame, little-endian.
func appendFrame(b []byte, words []uint32) []byte {
	b = appendU32(b, uint32(len(words)))
	for _, w := range words {
		b = appendU32(b, w)
	}
	return b
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// Replies returns the reply transcript so far: every emitted frame,
// length-prefixed, little-endian. The service-level correctness
// criterion is that this is byte-identical between a bare run and any
// replicated run — across failover, reintegration and save/restore.
func (n *NIC) Replies() string { return string(n.tx) }

// StateDigest returns a deterministic hash of the adapter's dynamic
// state: transcript, transmit buffer, watermarks, dedup and reply
// tables, and every port's pending frames (snapshot verification).
func (n *NIC) StateDigest() uint64 {
	h := fnv.New64a()
	h.Write(n.tx)
	var b [4]byte
	put := func(vs ...uint32) {
		for _, v := range vs {
			b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
			h.Write(b[:])
		}
	}
	put(n.highWater, n.nextSeq, uint32(len(n.txBuf)))
	put(n.txBuf...)
	put(uint32(n.Stats.Requests), uint32(n.Stats.Retransmits), uint32(n.Stats.Replayed),
		uint32(n.Stats.TxFrames), uint32(n.Stats.TxWords))
	// seenReq/replyFor are keyed by request ID; fold them order-free so
	// no map iteration order leaks into the digest (commutative XOR of
	// per-entry hashes).
	var fold uint64
	for id := range n.seenReq {
		e := fnv.New64a()
		var eb [4]byte
		eb[0], eb[1], eb[2], eb[3] = byte(id), byte(id>>8), byte(id>>16), byte(id>>24)
		e.Write(eb[:])
		if r := n.replyFor[id]; r != nil {
			for _, w := range r {
				eb[0], eb[1], eb[2], eb[3] = byte(w), byte(w>>8), byte(w>>16), byte(w>>24)
				e.Write(eb[:])
			}
		}
		fold ^= e.Sum64()
	}
	put(uint32(fold), uint32(fold>>32), uint32(len(n.ports)))
	for _, p := range n.ports {
		put(uint32(len(p.fifo)))
		for _, f := range p.fifo {
			put(f.seq, uint32(len(f.words)))
			put(f.words...)
		}
		if p.Detached {
			put(1)
		} else {
			put(0)
		}
		put(p.outSeq)
	}
	return h.Sum64()
}

// Port is one processor's view of the network adapter: a register bank
// on the host's MMIO bus (machine.MMIOHandler semantics for its
// window).
type Port struct {
	n    *NIC
	irq  func()
	fifo []frame

	// outSeq is a pending explicit output ordinal (set by RegOutSeq,
	// consumed by the next TX store; 0 = untagged).
	outSeq uint32

	// Detached is set when the host has failstopped: arriving frames
	// stop raising its interrupt line (no interrupt reaches a dead
	// host).
	Detached bool
}

// push files one arriving frame.
func (p *Port) push(f frame) {
	p.fifo = append(p.fifo, f)
	if p.irq != nil && !p.Detached {
		p.irq()
	}
}

// consume retires pending frames with sequence <= seq.
func (p *Port) consume(seq uint32) {
	i := 0
	for i < len(p.fifo) && p.fifo[i].seq <= seq {
		i++
	}
	if i > 0 {
		rest := copy(p.fifo, p.fifo[i:])
		for j := rest; j < len(p.fifo); j++ {
			p.fifo[j] = frame{}
		}
		p.fifo = p.fifo[:rest]
	}
}

// Pending reports how many frames await consumption (tests).
func (p *Port) Pending() int { return len(p.fifo) }

// CloneFrom copies the source port's pending frames into this (empty,
// newly created) port. A port created for a reintegrated node
// (AddBackup) must start from the acting coordinator's view of the
// wire: frames the environment delivered before this port existed but
// that the replica set has not yet consumed would otherwise be
// invisible to the joiner — lost if it is later promoted. Cloning at
// creation time keeps the two ports in lockstep from here on, because
// both see the same arrivals and both retire through the same applied
// completion watermarks.
func (p *Port) CloneFrom(src *Port) {
	p.fifo = append(p.fifo[:0], src.fifo...)
}

// MMIOLoad implements machine.MMIOHandler.
func (p *Port) MMIOLoad(off uint32, size int) (uint32, error) {
	switch off {
	case RegTxData, RegTxDoorbell, RegRxConsume, RegOutSeq:
		return 0, nil
	case RegStatus:
		s := StatusTxReady
		if len(p.fifo) > 0 {
			s |= StatusRxAvail
		}
		return s, nil
	case RegRxData:
		if len(p.fifo) == 0 {
			return 0, nil
		}
		f := &p.fifo[0]
		v := f.words[0]
		f.words = f.words[1:]
		if len(f.words) == 0 {
			rest := copy(p.fifo, p.fifo[1:])
			p.fifo[rest] = frame{}
			p.fifo = p.fifo[:rest]
		}
		return v, nil
	case RegRxLen:
		if len(p.fifo) == 0 {
			return 0, nil
		}
		return uint32(len(p.fifo[0].words)), nil
	case RegRxSeq:
		if len(p.fifo) == 0 {
			return 0, nil
		}
		return p.fifo[0].seq, nil
	}
	return 0, errBadReg(off)
}

// MMIOStore implements machine.MMIOHandler.
func (p *Port) MMIOStore(off uint32, size int, v uint32) error {
	switch off {
	case RegTxData:
		ord := p.outSeq
		p.outSeq = 0
		p.n.txWord(ord, v)
		return nil
	case RegTxDoorbell:
		ord := p.outSeq
		p.outSeq = 0
		p.n.txDoorbell(ord, v)
		return nil
	case RegStatus, RegRxData, RegRxLen, RegRxSeq:
		return nil // read-only / ignored
	case RegRxConsume:
		p.consume(v)
		return nil
	case RegOutSeq:
		p.outSeq = v
		return nil
	}
	return errBadReg(off)
}

// StateDigest hashes the port's dynamic state (snapshot verification).
func (p *Port) StateDigest() uint64 {
	h := fnv.New64a()
	var b [4]byte
	put := func(vs ...uint32) {
		for _, v := range vs {
			b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
			h.Write(b[:])
		}
	}
	put(uint32(len(p.fifo)))
	for _, f := range p.fifo {
		put(f.seq, uint32(len(f.words)))
		put(f.words...)
	}
	if p.Detached {
		put(1)
	} else {
		put(0)
	}
	put(p.outSeq)
	return h.Sum64()
}

type badReg uint32

func (b badReg) Error() string { return "nic: bad register offset" }

func errBadReg(off uint32) error { return badReg(off) }
