package nic

import (
	"testing"

	"repro/internal/device"
)

// memStub satisfies device.Memory (the NIC never touches guest memory).
type memStub struct{}

func (memStub) ReadBytes(pa uint32, n int) []byte { return make([]byte, n) }
func (memStub) WriteBytes(pa uint32, data []byte) {}

// portBus adapts a Port to device.Bus for shadow tests.
type portBus struct{ p *Port }

func (b portBus) Load(off uint32) uint32 {
	v, err := b.p.MMIOLoad(off, 4)
	if err != nil {
		panic(err)
	}
	return v
}
func (b portBus) Store(off uint32, v uint32) {
	if err := b.p.MMIOStore(off, 4, v); err != nil {
		panic(err)
	}
}

func TestIngressDedupAndReplyLog(t *testing.T) {
	n := New()
	p := n.NewPort(nil)

	if _, accepted := n.Ingress([]uint32{1, 10, 20}); !accepted {
		t.Fatal("first delivery of request 1 not accepted")
	}
	if reply, accepted := n.Ingress([]uint32{1, 10, 20}); accepted || reply != nil {
		t.Fatalf("queued duplicate: accepted=%v reply=%v", accepted, reply)
	}
	if p.Pending() != 1 {
		t.Fatalf("port pending = %d, want 1", p.Pending())
	}

	// Guest answers request 1 through the port (bare-machine path).
	bus := portBus{p}
	bus.Store(RegTxData, 1)
	bus.Store(RegTxData, 0xABCD)
	bus.Store(RegTxDoorbell, 2)
	if n.Stats.TxFrames != 1 {
		t.Fatalf("TxFrames = %d, want 1", n.Stats.TxFrames)
	}

	reply, accepted := n.Ingress([]uint32{1, 10, 20})
	if accepted || len(reply) != 2 || reply[0] != 1 || reply[1] != 0xABCD {
		t.Fatalf("answered duplicate: accepted=%v reply=%v", accepted, reply)
	}
	if n.Stats.Retransmits != 2 || n.Stats.Replayed != 1 {
		t.Fatalf("stats = %+v", n.Stats)
	}
}

func TestOutputOrdinalDedup(t *testing.T) {
	n := New()
	p := n.NewPort(nil)
	bus := portBus{p}
	sh := NewShadow()

	// Acting writer emits words 1..3 of a frame with ordinals 1..3.
	sh.Output(bus, RegTxData, 100, 1)
	sh.Output(bus, RegTxData, 200, 2)
	// A promoted successor replays ordinals 1..2 (already seen), then
	// continues with fresh ordinals.
	sh.Output(bus, RegTxData, 100, 1)
	sh.Output(bus, RegTxData, 200, 2)
	sh.Output(bus, RegTxData, 300, 3)
	sh.Output(bus, RegTxDoorbell, 3, 4)

	if n.Stats.TxFrames != 1 || n.Stats.TxWords != 3 {
		t.Fatalf("stats = %+v, want one 3-word frame", n.Stats)
	}
	want := string([]byte{3, 0, 0, 0, 100, 0, 0, 0, 200, 0, 0, 0, 44, 1, 0, 0})
	if n.Replies() != want {
		t.Fatalf("transcript = %x, want %x", n.Replies(), want)
	}
}

func TestCaptureApplyRoundTrip(t *testing.T) {
	n := New()
	pa := n.NewPort(nil) // acting node's port
	pb := n.NewPort(nil) // backup node's port
	n.Ingress([]uint32{7, 1, 2, 3})
	n.Ingress([]uint32{8, 4})

	shA, shB := NewShadow(), NewShadow()
	c, ok := shA.Capture(portBus{pa}, memStub{})
	if !ok {
		t.Fatal("capture found nothing")
	}
	if c.Seq != 2 {
		t.Fatalf("capture watermark = %d, want 2", c.Seq)
	}
	if pa.Pending() != 0 {
		t.Fatalf("acting port still pending %d frames", pa.Pending())
	}

	// Both replicas apply the record; the backup's port is retired by
	// the consume watermark.
	shA.Apply(c, memStub{}, portBus{pa})
	shB.Apply(c, memStub{}, portBus{pb})
	if pb.Pending() != 0 {
		t.Fatalf("backup port still pending %d frames after apply", pb.Pending())
	}

	// Both shadows now serve identical frames to their guests.
	for _, sh := range []*Shadow{shA, shB} {
		if got := sh.Load(RegRxLen); got != 4 {
			t.Fatalf("head frame len = %d, want 4", got)
		}
		var words []uint32
		for j := 0; j < 4; j++ {
			words = append(words, sh.Load(RegRxData))
		}
		if words[0] != 7 || words[3] != 3 {
			t.Fatalf("head frame = %v", words)
		}
		if got := sh.Load(RegRxLen); got != 2 {
			t.Fatalf("second frame len = %d, want 2", got)
		}
	}
}

func TestRecoverSkipsBufferedCoverage(t *testing.T) {
	n := New()
	p := n.NewPort(nil)
	n.Ingress([]uint32{1, 11})
	n.Ingress([]uint32{2, 22})
	n.Ingress([]uint32{3, 33})

	sh := NewShadow()
	// A record covering frames <= 2 is already awaiting delivery.
	buffered := []device.Completion{{Seq: 2}}
	recs, unc := sh.Recover(portBus{p}, memStub{}, false, buffered)
	if unc != 0 || len(recs) != 1 {
		t.Fatalf("recover: %d recs, %d uncertain", len(recs), unc)
	}
	if recs[0].Seq != 3 {
		t.Fatalf("recovered watermark = %d, want 3", recs[0].Seq)
	}
	var fresh Shadow
	fresh.Apply(recs[0], memStub{}, portBus{p})
	if got := fresh.Load(RegRxData); got != 3 {
		t.Fatalf("recovered frame id = %d, want 3", got)
	}
}

func TestShadowMarshalRoundTrip(t *testing.T) {
	n := New()
	p := n.NewPort(nil)
	n.Ingress([]uint32{9, 1, 2})
	sh := NewShadow()
	c, _ := sh.Capture(portBus{p}, memStub{})
	sh.Apply(c, memStub{}, portBus{p})
	sh.Load(RegRxData) // partially consumed head frame

	var back Shadow
	if err := back.UnmarshalState(sh.MarshalState()); err != nil {
		t.Fatal(err)
	}
	if got, want := back.Load(RegRxLen), sh.Load(RegRxLen); got != want {
		t.Fatalf("restored head len = %d, want %d", got, want)
	}
}

func TestPortCloneFrom(t *testing.T) {
	n := New()
	p0 := n.NewPort(nil)
	n.Ingress([]uint32{1, 5})
	n.Ingress([]uint32{2, 6})
	joiner := n.NewPort(nil)
	if joiner.Pending() != 0 {
		t.Fatal("fresh port should start empty")
	}
	joiner.CloneFrom(p0)
	if joiner.Pending() != 2 {
		t.Fatalf("cloned port pending = %d, want 2", joiner.Pending())
	}
	joiner.consume(1)
	if joiner.Pending() != 1 || p0.Pending() != 2 {
		t.Fatal("clone must not alias the source fifo")
	}
}
