package nic

import (
	"fmt"

	"repro/internal/device"
)

// Shadow is the hypervisor-side virtual network adapter: the
// guest-visible register bank. TX stores are classified EffectOutput
// (the hypervisor gates them on I/O-activity and tags them with output
// ordinals); RX frames become visible to the guest only when a captured
// completion record is applied at an epoch boundary — so a request
// frame, like a disk completion or terminal input, arrives on every
// replica at the same instruction-stream position.
type Shadow struct {
	rx []frame // delivered frames awaiting guest reads
}

// NewShadow returns an empty virtual adapter.
func NewShadow() *Shadow { return &Shadow{} }

var _ device.Shadow = (*Shadow)(nil)

// Load implements device.Shadow. Reading RegRxData pops the delivered
// head frame word by word — a deterministic shadow-state mutation
// (every replica executes the same loads).
func (s *Shadow) Load(off uint32) uint32 {
	switch off {
	case RegStatus:
		v := StatusTxReady
		if len(s.rx) > 0 {
			v |= StatusRxAvail
		}
		return v
	case RegRxData:
		if len(s.rx) == 0 {
			return 0
		}
		f := &s.rx[0]
		v := f.words[0]
		f.words = f.words[1:]
		if len(f.words) == 0 {
			rest := copy(s.rx, s.rx[1:])
			s.rx[rest] = frame{}
			s.rx = s.rx[:rest]
		}
		return v
	case RegRxLen:
		if len(s.rx) == 0 {
			return 0
		}
		return uint32(len(s.rx[0].words))
	case RegRxSeq:
		if len(s.rx) == 0 {
			return 0
		}
		return s.rx[0].seq
	}
	return 0
}

// Store implements device.Shadow: TX stores are environment output.
func (s *Shadow) Store(off uint32, v uint32) device.Effect {
	if off == RegTxData || off == RegTxDoorbell {
		return device.EffectOutput
	}
	return device.EffectNone
}

// Output implements device.Shadow: forward one TX store to the real
// adapter, tagged with its ordinal so re-emission after a failover
// cannot duplicate words the environment already saw.
func (s *Shadow) Output(bus device.Bus, off, v uint32, ordinal uint32) {
	bus.Store(RegOutSeq, ordinal)
	bus.Store(off, v)
}

// Start implements device.Shadow (the NIC has no EffectStart doorbell;
// the TX doorbell is itself an output store).
func (s *Shadow) Start(bus device.Bus) {}

// Capture implements device.Shadow: drain the port's pending request
// frames into one completion record. Data packs whole frames as
// [seq, nwords, words...] little-endian; Seq is the highest frame
// sequence drained (the consume-on-apply watermark).
func (s *Shadow) Capture(bus device.Bus, mem device.Memory) (device.Completion, bool) {
	var c device.Completion
	for bus.Load(RegStatus)&StatusRxAvail != 0 {
		seq := bus.Load(RegRxSeq)
		n := bus.Load(RegRxLen)
		if n == 0 {
			break // defensive: a frame always holds >= 1 word
		}
		c.Data = device.AppendU32(c.Data, seq)
		c.Data = device.AppendU32(c.Data, n)
		for j := uint32(0); j < n; j++ {
			c.Data = device.AppendU32(c.Data, bus.Load(RegRxData))
		}
		c.Seq = seq
	}
	if len(c.Data) == 0 {
		return device.Completion{}, false
	}
	c.Status = StatusRxAvail
	return c, true
}

// Apply implements device.Shadow: make the delivered frames visible to
// the guest and retire the real port's pending frames through the
// record's watermark (a no-op on the node that captured them).
func (s *Shadow) Apply(c device.Completion, mem device.Memory, bus device.Bus) {
	data := c.Data
	for len(data) > 0 {
		var f frame
		var ok bool
		f, data, ok = readFrame(data)
		if !ok {
			break
		}
		s.rx = append(s.rx, f)
	}
	bus.Store(RegRxConsume, c.Seq)
}

// readFrame decodes one [seq, nwords, words...] frame.
func readFrame(data []byte) (frame, []byte, bool) {
	seq, rest, ok := device.ReadU32(data)
	if !ok {
		return frame{}, nil, false
	}
	n, rest, ok := device.ReadU32(rest)
	if !ok {
		return frame{}, nil, false
	}
	f := frame{seq: seq, words: make([]uint32, 0, n)}
	for j := uint32(0); j < n; j++ {
		var w uint32
		w, rest, ok = device.ReadU32(rest)
		if !ok {
			return frame{}, nil, false
		}
		f.words = append(f.words, w)
	}
	return f, rest, true
}

// Recover implements device.Shadow: at failover, request frames the
// environment delivered but no replica consumed are still pending on
// this node's port — capture them now so the promoted virtual machine
// serves them. Frames covered by records already awaiting delivery (the
// dead coordinator captured and forwarded them for the failover epoch)
// are drained but NOT re-captured: they arrive with those records.
// (These are environment events, not uncertain completions: count 0.)
func (s *Shadow) Recover(bus device.Bus, mem device.Memory, outstanding bool, buffered []device.Completion) ([]device.Completion, int) {
	var covered uint32
	for _, b := range buffered {
		if b.Seq > covered {
			covered = b.Seq
		}
	}
	var c device.Completion
	for bus.Load(RegStatus)&StatusRxAvail != 0 {
		seq := bus.Load(RegRxSeq)
		n := bus.Load(RegRxLen)
		if n == 0 {
			break // defensive: a frame always holds >= 1 word
		}
		if seq <= covered {
			for j := uint32(0); j < n; j++ {
				bus.Load(RegRxData) // will be applied with its forwarded record
			}
			continue
		}
		c.Data = device.AppendU32(c.Data, seq)
		c.Data = device.AppendU32(c.Data, n)
		for j := uint32(0); j < n; j++ {
			c.Data = device.AppendU32(c.Data, bus.Load(RegRxData))
		}
		c.Seq = seq
	}
	if len(c.Data) == 0 {
		return nil, 0
	}
	c.Status = StatusRxAvail
	return []device.Completion{c}, 0
}

// MarshalState implements device.Shadow.
func (s *Shadow) MarshalState() []byte {
	b := device.AppendU32(nil, uint32(len(s.rx)))
	for _, f := range s.rx {
		b = device.AppendU32(b, f.seq)
		b = device.AppendU32(b, uint32(len(f.words)))
		for _, w := range f.words {
			b = device.AppendU32(b, w)
		}
	}
	return b
}

// UnmarshalState implements device.Shadow.
func (s *Shadow) UnmarshalState(data []byte) error {
	n, rest, ok := device.ReadU32(data)
	if !ok {
		return fmt.Errorf("nic: shadow state malformed (%d bytes)", len(data))
	}
	rx := make([]frame, 0, n)
	for j := uint32(0); j < n; j++ {
		var f frame
		f, rest, ok = readFrame(rest)
		if !ok {
			return fmt.Errorf("nic: shadow state truncated (frame %d of %d)", j, n)
		}
		rx = append(rx, f)
	}
	if len(rest) != 0 {
		return fmt.Errorf("nic: shadow state has %d trailing bytes", len(rest))
	}
	s.rx = rx
	return nil
}
