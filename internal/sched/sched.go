// Package sched provides the fleet work-stealing scheduler: a
// deterministic-by-construction fan-out of an index space [0, n) over a
// fixed worker count. Each worker owns a contiguous index range and
// pops from its low end; a worker that drains its range steals the
// upper half of a victim's remaining range and continues. Results are
// slotted by index, so output is byte-identical at any worker count —
// scheduling decides only WHEN fn(i) runs, never what it computes.
//
// Compared to the shared-counter fan-out in internal/harness, range
// splitting keeps each worker on a contiguous run of indices (shard i
// and i+1 usually share a base image and pooled buffers) and contends
// on a per-worker word instead of one global counter; stealing in half
// ranges rebalances when per-index cost is wildly uneven, as it is for
// fleet shards with randomized fault schedules.
package sched

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// wrange is one worker's index range, packed hi<<32|lo into a single
// word so pop and steal race through CAS only.
type wrange struct {
	bits atomic.Uint64
	// pad keeps neighbouring ranges off one cache line.
	_ [7]uint64
}

func pack(lo, hi uint32) uint64 { return uint64(hi)<<32 | uint64(lo) }

func unpack(b uint64) (lo, hi uint32) { return uint32(b), uint32(b >> 32) }

// pop claims the next index from the low end of the range.
func (r *wrange) pop() (int, bool) {
	for {
		b := r.bits.Load()
		lo, hi := unpack(b)
		if lo >= hi {
			return 0, false
		}
		if r.bits.CompareAndSwap(b, pack(lo+1, hi)) {
			return int(lo), true
		}
	}
}

// steal removes the upper half (rounded up) of the range and returns
// it. Stealing from the top keeps the victim's locality run intact.
func (r *wrange) steal() (lo, hi uint32, ok bool) {
	for {
		b := r.bits.Load()
		vlo, vhi := unpack(b)
		if vlo >= vhi {
			return 0, 0, false
		}
		take := (vhi - vlo + 1) / 2
		if r.bits.CompareAndSwap(b, pack(vlo, vhi-take)) {
			return vhi - take, vhi, true
		}
	}
}

// Workers resolves a worker-count request: n < 1 means all cores.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n), fanned across the given
// number of workers (resolved via Workers). Every index runs exactly
// once; a panic in fn stops the fan-out early and re-panics on the
// caller's goroutine. workers == 1 runs inline with no goroutines.
func ForEach(workers, n int, fn func(int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	ranges := make([]wrange, workers)
	// Initial split: contiguous, near-equal ranges covering [0, n).
	for w := 0; w < workers; w++ {
		lo := uint32(w * n / workers)
		hi := uint32((w + 1) * n / workers)
		ranges[w].bits.Store(pack(lo, hi))
	}

	var (
		wg       sync.WaitGroup
		panicked atomic.Value
		stop     atomic.Bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.Store(fmt.Sprintf("%v", r))
					stop.Store(true)
				}
			}()
			self := &ranges[w]
			for !stop.Load() {
				if i, ok := self.pop(); ok {
					fn(i)
					continue
				}
				// Own range drained: steal the upper half of the first
				// victim with work and adopt it as the new own range.
				// A worker exits only with an empty range, so every
				// index is drained by whichever worker owns it last.
				stolen := false
				for d := 1; d < workers; d++ {
					if lo, hi, ok := ranges[(w+d)%workers].steal(); ok {
						self.bits.Store(pack(lo, hi))
						stolen = true
						break
					}
				}
				if !stolen {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(fmt.Sprintf("sched: worker: %v", p))
	}
}
