package sched

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// Every index must run exactly once, at any worker count, including
// counts above, below and equal to n.
func TestForEachExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16, 100} {
		for _, n := range []int{0, 1, 2, 5, 64, 1000} {
			counts := make([]int32, n)
			ForEach(workers, n, func(i int) {
				atomic.AddInt32(&counts[i], 1)
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

// Wildly uneven per-index cost must still complete every index (the
// stealing path): one expensive index at the front of each range.
func TestForEachUnevenCost(t *testing.T) {
	const n = 200
	var total atomic.Int64
	ForEach(4, n, func(i int) {
		if i%50 == 0 {
			time.Sleep(5 * time.Millisecond)
		}
		total.Add(int64(i) + 1)
	})
	if want := int64(n * (n + 1) / 2); total.Load() != want {
		t.Fatalf("sum = %d, want %d", total.Load(), want)
	}
}

// A panic in fn propagates to the caller and stops the fan-out.
func TestForEachPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("panic value %v does not carry the original", r)
		}
	}()
	ForEach(4, 100, func(i int) {
		if i == 10 {
			panic("boom")
		}
	})
}

// Slot-ordered output is identical at any worker count (the
// determinism contract fleet runs rely on).
func TestForEachDeterministicSlots(t *testing.T) {
	const n = 500
	run := func(workers int) []uint64 {
		out := make([]uint64, n)
		ForEach(workers, n, func(i int) {
			v := uint64(i)
			for k := 0; k < 100; k++ {
				v = v*6364136223846793005 + 1442695040888963407
			}
			out[i] = v
		})
		return out
	}
	serial := run(1)
	parallel := run(runtime.GOMAXPROCS(0))
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("slot %d differs between worker counts", i)
		}
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("explicit worker count not respected")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) || Workers(-1) != runtime.GOMAXPROCS(0) {
		t.Fatal("n < 1 must resolve to all cores")
	}
}
