// Package snapshot implements the deterministic, versioned binary
// serialization behind the session checkpoint and backup-reintegration
// subsystems: complete machine state (RAM, registers, TLB with
// replacement recency, recovery counter — all control registers travel),
// hypervisor virtualization state, and replication-layer protocol state
// (epoch archive tail, sequence/acknowledgement watermarks, pending
// interrupt and environment buffers).
//
// Determinism is a hard requirement, not a nicety: a state-transfer
// blob's byte length is charged to the simulated link (so its size must
// be a pure function of the state), and snapshot verification compares
// independently produced encodings byte for byte. Every encoder here
// therefore emits fields in a fixed order, sorts anything map-shaped,
// and uses fixed-width little-endian integers.
//
// Format discipline: every top-level blob opens with an 8-byte magic
// and a format version word, and closes with an FNV-64a checksum of
// everything before it. Readers reject unknown magics, foreign
// versions (ErrVersion) and checksum mismatches up front — a snapshot
// from a different build of this code fails loudly, never by silently
// reconstructing a diverged simulation.
package snapshot

import (
	"errors"
	"fmt"
	"hash/fnv"
)

// FormatVersion is the current snapshot format. Bump it whenever any
// encoder in this package (or a capture struct it serializes) changes
// shape; readers reject every other version.
//
// Version history: 1 = the original single-adapter layout; 2 = the
// generic device layer (per-device shadow sections keyed by stable
// device ID, device-generic completion records with input watermarks,
// suppressed-output buffers, multi-disk and terminal configuration);
// 3 = the network service (NIC/client-load session configuration,
// per-node NIC port digests and the shared nic capture section);
// 4 = the output-commit engine (epoch/start/time-tagged suppressed
// output entries, coordinator commit-window and release watermark,
// frame-decoded end-message fields, output-commit configuration and
// stats counters).
const FormatVersion = 4

// ErrVersion reports a snapshot written by a different format version.
// Errors wrapping it are returned by NewReader; test with errors.Is.
var ErrVersion = errors.New("snapshot: format version mismatch")

// ErrCorrupt reports a snapshot that fails structural validation
// (magic, checksum, truncation, or malformed section framing).
var ErrCorrupt = errors.New("snapshot: corrupt or truncated data")

// Writer accumulates a deterministic binary encoding.
type Writer struct {
	buf []byte
}

// NewWriter starts a blob with the given 8-byte magic and the current
// format version.
func NewWriter(magic string) *Writer {
	if len(magic) != 8 {
		panic(fmt.Sprintf("snapshot: magic %q must be 8 bytes", magic))
	}
	w := &Writer{}
	w.buf = append(w.buf, magic...)
	w.U32(FormatVersion)
	return w
}

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) {
	w.buf = append(w.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) {
	w.U32(uint32(v))
	w.U32(uint32(v >> 32))
}

// I64 appends a little-endian int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int appends an int as a 64-bit value.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Bytes appends a length-prefixed byte slice.
func (w *Writer) Bytes(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Len reports the number of bytes written so far (checksum excluded).
func (w *Writer) Len() int { return len(w.buf) }

// Finish appends the checksum trailer and returns the complete blob.
// The Writer must not be used afterwards.
func (w *Writer) Finish() []byte {
	h := fnv.New64a()
	h.Write(w.buf)
	w.U64(h.Sum64())
	return w.buf
}

// Reader decodes a blob produced by Writer. Errors are sticky: after
// the first failure every accessor returns zero values and Err reports
// the failure.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader validates the blob's magic, version and checksum and
// positions a reader after the header.
func NewReader(blob []byte, magic string) (*Reader, error) {
	if len(magic) != 8 {
		panic(fmt.Sprintf("snapshot: magic %q must be 8 bytes", magic))
	}
	if len(blob) < 8+4+8 {
		return nil, fmt.Errorf("%w: %d bytes", ErrCorrupt, len(blob))
	}
	if string(blob[:8]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q (want %q)", ErrCorrupt, blob[:8], magic)
	}
	body, trailer := blob[:len(blob)-8], blob[len(blob)-8:]
	h := fnv.New64a()
	h.Write(body)
	want := h.Sum64()
	got := uint64(0)
	for i := 7; i >= 0; i-- {
		got = got<<8 | uint64(trailer[i])
	}
	if got != want {
		return nil, fmt.Errorf("%w: checksum %#x, computed %#x", ErrCorrupt, got, want)
	}
	r := &Reader{b: body, off: 8}
	v := r.U32()
	if r.err != nil {
		return nil, r.err
	}
	if v != FormatVersion {
		return nil, fmt.Errorf("%w: snapshot is format %d, this build reads %d", ErrVersion, v, FormatVersion)
	}
	return r, nil
}

// fail latches the first error.
func (r *Reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated at offset %d", ErrCorrupt, r.off)
	}
}

// Err returns the sticky decode error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining reports how many body bytes are left.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	b := r.b[r.off:]
	r.off += 4
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	lo := r.U32()
	hi := r.U32()
	return uint64(lo) | uint64(hi)<<32
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int encoded by Writer.Int.
func (r *Reader) Int() int { return int(r.I64()) }

// Bytes reads a length-prefixed byte slice (a copy).
func (r *Reader) Bytes() []byte {
	n := int(r.U32())
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.fail()
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b[r.off:])
	r.off += n
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := int(r.U32())
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.fail()
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}
